(* Adversary fuzzing: the Indistinguishability Lemma and the round/UP
   machinery checked against RANDOM programs — arbitrary mixtures of LL, SC,
   validate, swap and move with value-dependent branching and coin tosses,
   far outside the well-behaved wakeup corpus.  This exercises every UP
   update rule (swap chains, unsuccessful SCs reading round-r knowledge,
   moves into registers that are then read or swapped) in random
   combinations. *)

open Lowerbound
open Program.Syntax

(* ---- random program atoms ---- *)

type atom =
  | A_ll of int
  | A_sc of int * int
  | A_validate of int
  | A_swap of int * int
  | A_move of int * int
  | A_toss
  | A_branch of int
      (* read a register; branch on the parity of what it holds: even ->
         LL the next register, odd -> swap it.  Couples control flow to
         values, so schedules genuinely change behaviour. *)

let atom_to_program atom rest =
  match atom with
  | A_ll r ->
    let* _ = Program.ll r in
    rest
  | A_sc (r, v) ->
    let* _ = Program.sc r (Value.Int v) in
    rest
  | A_validate r ->
    let* _ = Program.validate r in
    rest
  | A_swap (r, v) ->
    let* _ = Program.swap r (Value.Int v) in
    rest
  | A_move (src, dst) ->
    let* () = Program.move ~src ~dst in
    rest
  | A_toss ->
    let* _ = Program.toss_bounded 3 in
    rest
  | A_branch r ->
    let* v = Program.read r in
    let even = match v with Value.Int k -> k mod 2 = 0 | _ -> true in
    if even then
      let* _ = Program.ll (r + 1) in
      rest
    else
      let* _ = Program.swap (r + 1) (Value.Int 99) in
      rest

let program_of_atoms atoms = List.fold_right atom_to_program atoms (Program.return 0)

let gen_atom regs =
  QCheck.Gen.(
    int_range 0 (regs - 1) >>= fun r ->
    int_range 0 9 >>= fun v ->
    oneofl
      [
        A_ll r;
        A_sc (r, v);
        A_validate r;
        A_swap (r, v);
        A_move (r, (r + 1 + (v mod (regs - 1))) mod regs);
        A_toss;
        A_branch r;
      ])

(* A system: n processes, each a short random atom list. *)
let gen_system =
  QCheck.Gen.(
    int_range 2 4 >>= fun n ->
    let regs = 4 in
    list_repeat n (list_size (int_range 1 6) (gen_atom regs)) >|= fun atom_lists ->
    (n, atom_lists))

let print_system (n, atom_lists) =
  let atom_str = function
    | A_ll r -> Printf.sprintf "LL R%d" r
    | A_sc (r, v) -> Printf.sprintf "SC R%d %d" r v
    | A_validate r -> Printf.sprintf "val R%d" r
    | A_swap (r, v) -> Printf.sprintf "swap R%d %d" r v
    | A_move (s, d) -> Printf.sprintf "move R%d->R%d" s d
    | A_toss -> "toss"
    | A_branch r -> Printf.sprintf "branch R%d" r
  in
  Printf.sprintf "n=%d; %s" n
    (String.concat " | " (List.map (fun l -> String.concat ", " (List.map atom_str l)) atom_lists))

let arb_system = QCheck.make ~print:print_system gen_system

let inits = [ (0, Value.Int 0); (1, Value.Int 0); (2, Value.Int 0); (3, Value.Int 0); (4, Value.Int 0) ]

let execute (n, atom_lists) seed =
  let programs = Array.of_list (List.map program_of_atoms atom_lists) in
  let program_of pid = programs.(pid) in
  let assignment = Coin.uniform ~seed in
  let run = All_run.execute ~n ~program_of ~assignment ~inits ~max_rounds:100 () in
  (run, program_of, assignment)

(* ---- properties ---- *)

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb_system f)

let fuzz_lemma_5_1 =
  prop "fuzz: Lemma 5.1 on random programs" (fun system ->
      let run, _, _ = execute system 7 in
      let n = fst system in
      run.All_run.outcome = All_run.Terminating
      && Upsets.lemma_5_1_holds (Upsets.compute ~n run.All_run.rounds))

let fuzz_indistinguishability =
  prop "fuzz: Lemma 5.2 on random programs" (fun system ->
      let n = fst system in
      let run, program_of, assignment = execute system 11 in
      let upsets = Upsets.compute ~n run.All_run.rounds in
      List.for_all
        (fun pid ->
          let r = min (All_run.ops_of run ~pid) (All_run.num_rounds run) in
          let s = Upsets.of_process upsets ~r ~pid in
          let s_run =
            S_run.execute ~n ~program_of ~assignment ~inits ~s ~all_run:run ~upsets ()
          in
          Indistinguishability.check ~n ~all_run:run ~s_run ~upsets = [])
        (List.init n (fun i -> i)))

let fuzz_appendix_claims =
  prop "fuzz: appendix claims A.1-A.9 on random programs" (fun system ->
      let n = fst system in
      let run, program_of, assignment = execute system 17 in
      let upsets = Upsets.compute ~n run.All_run.rounds in
      List.for_all
        (fun pid ->
          let r = min (All_run.ops_of run ~pid) (All_run.num_rounds run) in
          let s = Upsets.of_process upsets ~r ~pid in
          let s_run =
            S_run.execute ~n ~program_of ~assignment ~inits ~s ~all_run:run ~upsets ()
          in
          Claims.check ~n ~all_run:run ~s_run ~upsets = [])
        (List.init n (fun i -> i)))

let fuzz_round_invariants =
  prop "fuzz: round structure invariants" (fun system ->
      let n = fst system in
      let run, _, _ = execute system 13 in
      List.for_all
        (fun (round : int Round.t) ->
          (* Each participant that did not terminate during phase 1 has
             exactly one event, with phases weakly ordered 2,3,4,5 along the
             event list. *)
          let event_pids = List.map (fun e -> e.Round.pid) round.Round.events in
          let one_event_each =
            List.for_all
              (fun pid -> List.length (List.filter (( = ) pid) event_pids) <= 1)
              (List.init n (fun i -> i))
            && List.for_all (fun pid -> List.mem pid round.Round.participants) event_pids
          in
          let phases = List.map (fun e -> e.Round.phase) round.Round.events in
          let rec sorted = function
            | a :: (b :: _ as rest) -> a <= b && sorted rest
            | [ _ ] | [] -> true
          in
          (* The move schedule is secretive and complete for the round's
             move spec. *)
          let sigma_ok =
            Lb_secretive.Source_movers.is_secretive round.Round.move_spec round.Round.sigma
          in
          (* Phase tags match operation kinds. *)
          let kinds_ok =
            List.for_all
              (fun e ->
                match Op.kind e.Round.invocation, e.Round.phase with
                | Op.Read, 2 | Op.Move_kind, 3 | Op.Swap_kind, 4 | Op.Sc_kind, 5 -> true
                | _, _ -> false)
              round.Round.events
          in
          one_event_each && sorted phases && sigma_ok && kinds_ok)
        run.All_run.rounds)

let fuzz_deterministic_replay =
  prop "fuzz: (All, A)-run is replayable" (fun system ->
      let run1, _, _ = execute system 5 in
      let run2, _, _ = execute system 5 in
      List.length run1.All_run.rounds = List.length run2.All_run.rounds
      && List.for_all2
           (fun (a : int Round.t) (b : int Round.t) ->
             List.length a.Round.events = List.length b.Round.events
             && List.for_all2
                  (fun (x : Round.event) (y : Round.event) ->
                    x.Round.pid = y.Round.pid
                    && Op.equal_invocation x.Round.invocation y.Round.invocation
                    && Op.equal_response x.Round.response y.Round.response)
                  a.Round.events b.Round.events)
           run1.All_run.rounds run2.All_run.rounds)

let fuzz_s_run_full_replay =
  prop "fuzz: S = everyone replays the (All, A)-run" (fun system ->
      let n = fst system in
      let run, program_of, assignment = execute system 3 in
      let upsets = Upsets.compute ~n run.All_run.rounds in
      let s_run =
        S_run.execute ~n ~program_of ~assignment ~inits ~s:(Ids.range n) ~all_run:run ~upsets ()
      in
      s_run.S_run.results = run.All_run.results)

(* ---- fault-engine properties ----

   The fault layer must be invisible at rate 0 and must implement the weak
   LL/SC semantics exactly at any rate: a spuriously failed SC changes
   nothing and keeps the Pset intact. *)

let run_system (n, atom_lists) ~memory =
  let programs = Array.of_list (List.map program_of_atoms atom_lists) in
  List.iter (fun (r, v) -> Memory.set_init memory r v) inits;
  let sys = System.create ~memory ~assignment:(Coin.uniform ~seed:23) ~n (fun pid -> programs.(pid)) in
  let outcome = System.run sys Scheduler.round_robin ~fuel:10_000 in
  (outcome, System.results sys)

let fuzz_rate_zero_is_identity =
  prop "fuzz: rate-0 fault engine is bit-identical" (fun system ->
      let m_plain = Memory.create () in
      let plain = run_system system ~memory:m_plain in
      let m_armed = Memory.create () in
      let engine = Fault_engine.instantiate ~seed:9 (Fault_plan.spurious_sc_rate 0.0) in
      Fault_engine.arm engine m_armed;
      let armed = run_system system ~memory:m_armed in
      plain = armed
      && Memory.snapshot m_plain = Memory.snapshot m_armed
      && Fault_engine.spurious_injected engine = 0)

let invocations_of_atoms atoms =
  List.filter_map
    (function
      | A_ll r -> Some (Op.Ll r)
      | A_sc (r, v) -> Some (Op.Sc (r, Value.Int v))
      | A_validate r -> Some (Op.Validate r)
      | A_swap (r, v) -> Some (Op.Swap (r, Value.Int v))
      | A_move (s, d) -> if s = d then None else Some (Op.Move (s, d))
      | A_toss | A_branch _ -> None)
    atoms

let fuzz_spurious_preserves_psets =
  prop "fuzz: spurious SC failures preserve Psets" (fun (n, atom_lists) ->
      let memory = Memory.create () in
      List.iter (fun (r, v) -> Memory.set_init memory r v) inits;
      let engine = Fault_engine.instantiate ~seed:5 (Fault_plan.spurious_sc_rate 1.0) in
      Fault_engine.arm engine memory;
      let streams = List.mapi (fun pid atoms -> (pid, invocations_of_atoms atoms)) atom_lists in
      let observed = ref 0 in
      let ok = ref true in
      (* Round-robin over the per-process invocation streams. *)
      let rec drive streams =
        match streams with
        | [] -> ()
        | (pid, inv :: rest) :: others ->
          let before =
            match inv with
            | Op.Sc (r, _) -> Some (r, Memory.peek memory r, Memory.pset memory r)
            | _ -> None
          in
          let response = Memory.apply memory ~pid inv in
          (match before, response with
          | Some (r, value, pset), Op.Flagged (flag, answered) when Ids.mem pid pset ->
            (* Would-be-successful SC: at rate 1.0 it must have failed
               spuriously — returning the old value, writing nothing,
               keeping the Pset. *)
            incr observed;
            ok :=
              !ok && (not flag)
              && Value.equal answered value
              && Value.equal (Memory.peek memory r) value
              && Ids.equal (Memory.pset memory r) pset
          | _ -> ());
          drive (others @ [ (pid, rest) ])
        | (_, []) :: others -> drive others
      in
      drive streams;
      ignore n;
      !ok && Fault_engine.spurious_injected engine = !observed)

let suite =
  [
    fuzz_lemma_5_1;
    fuzz_indistinguishability;
    fuzz_appendix_claims;
    fuzz_round_invariants;
    fuzz_deterministic_replay;
    fuzz_s_run_full_replay;
    fuzz_rate_zero_is_identity;
    fuzz_spurious_preserves_psets;
  ]
