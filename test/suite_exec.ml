(* The domain pool: Pool.map must be observationally List.map at every job
   count — same results in the same order, same merged metrics, same
   absorbed trace, same (lowest-index) exception — with parallelism purely
   a wall-clock concern. *)

open Lowerbound

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

(* ---- result determinism ---- *)

let arb_input =
  QCheck.make
    ~print:(fun (jobs, xs) ->
      Printf.sprintf "jobs=%d [%s]" jobs (String.concat ";" (List.map string_of_int xs)))
    QCheck.Gen.(
      let* jobs = 1 -- 6 in
      let* xs = list_size (0 -- 40) (0 -- 1000) in
      return (jobs, xs))

let t_map_is_list_map =
  prop "Pool.map ~jobs:k f = List.map f (any k)" arb_input (fun (jobs, xs) ->
      let f x = (x * 37) mod 101 in
      Pool.map ~jobs f xs = List.map f xs)

let t_mapi_is_list_mapi =
  prop "Pool.mapi ~jobs:k f = List.mapi f (any k)" arb_input (fun (jobs, xs) ->
      let f i x = (i * 1000) + x in
      Pool.mapi ~jobs f xs = List.mapi f xs)

let t_jobs_zero_is_auto () =
  let xs = List.init 20 Fun.id in
  Alcotest.(check (list int))
    "jobs:0 resolves to auto and preserves order" xs
    (Pool.map ~jobs:0 Fun.id xs)

let t_negative_jobs_rejected () =
  Alcotest.check_raises "negative jobs" (Invalid_argument "Pool: negative jobs -2")
    (fun () -> ignore (Pool.map ~jobs:(-2) Fun.id [ 1; 2 ]))

(* ---- metrics determinism ---- *)

(* Each task increments a counter, observes its input in a histogram and
   sets a gauge.  The merged registry must serialize identically at any job
   count: counters add, histograms add, gauges take the last task's value. *)
let run_metered ~jobs xs =
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      ignore
        (Pool.map ~jobs
           (fun x ->
             let m = Metrics.current () in
             Metrics.incr m "exec.tasks";
             Metrics.incr ~by:x m "exec.weight";
             Metrics.observe_int m "exec.input" x;
             Metrics.set_gauge m "exec.last" (float_of_int x);
             x)
           xs));
  Json.to_string (Metrics.to_json registry)

let t_metrics_merge_deterministic =
  prop "merged metrics identical at jobs 1 vs k" arb_input (fun (jobs, xs) ->
      run_metered ~jobs:1 xs = run_metered ~jobs xs)

(* ---- trace determinism ---- *)

let run_traced ~jobs xs =
  let tracer = Tracer.ring () in
  Tracer.with_tracer tracer (fun () ->
      ignore
        (Pool.map ~jobs
           (fun x ->
             Tracer.record (Event.Round { index = x });
             x)
           xs));
  List.map (fun (s : Event.stamped) -> (s.Event.at, Json.to_string (Event.to_json s)))
    (Tracer.events tracer)

let t_trace_absorb_deterministic =
  prop "absorbed trace identical at jobs 1 vs k" arb_input (fun (jobs, xs) ->
      run_traced ~jobs:1 xs = run_traced ~jobs xs)

let t_untraced_workers_stay_untraced () =
  (* A worker domain must not inherit the parent's tracer: with no tracer
     installed in the parent either, tasks recording events are no-ops. *)
  let before = Tracer.installed () in
  ignore
    (Pool.map ~jobs:3
       (fun x ->
         Alcotest.(check bool) "task sees no ambient tracer" false (Tracer.active ());
         x)
       (List.init 8 Fun.id));
  Alcotest.(check bool)
    "parent tracer untouched"
    (Option.is_none before)
    (Option.is_none (Tracer.installed ()))

(* ---- experiment tables are job-count-invariant ---- *)

let t_tables_jobs_invariant () =
  (* Small-sweep experiment tables must be byte-identical at jobs 1 vs 4 —
     the end-to-end guarantee the parallel engine makes. *)
  List.iter
    (fun (name, at_jobs) ->
      let render t = Format.asprintf "%a" Lb_experiments.Table.pp t in
      Alcotest.(check string)
        (name ^ " identical at jobs 1 vs 4")
        (render (at_jobs 1))
        (render (at_jobs 4)))
    [
      ("e1", fun jobs -> Lb_experiments.Experiments.e1 ~jobs ~ns:[ 4; 16 ] ());
      ("e2", fun jobs -> Lb_experiments.Experiments.e2 ~jobs ~specs:8 ());
      ("e5", fun jobs -> Lb_experiments.Experiments.e5 ~jobs ~ns:[ 4; 16 ] ());
      ("e9", fun jobs -> Lb_experiments.Experiments.e9 ~jobs ~ns:[ 2; 16 ] ());
      ("e12", fun jobs -> Lb_experiments.Experiments.e12 ~jobs ~ns:[ 2; 16 ] ());
    ]

(* ---- exception determinism ---- *)

let t_first_error_wins () =
  (* Whichever domain finishes first, the exception that surfaces is the
     lowest-indexed failing task's. *)
  for jobs = 1 to 4 do
    match
      Pool.map ~jobs
        (fun x -> if x mod 5 = 2 then failwith (string_of_int x) else x)
        (List.init 30 Fun.id)
    with
    | _ -> Alcotest.fail "expected Failure"
    | exception Failure s -> Alcotest.(check string) "lowest failing index" "2" s
  done

let t_survivors_still_merge () =
  (* Tasks after a failure still run, and their metrics still land. *)
  let registry = Metrics.create () in
  (try
     Metrics.with_registry registry (fun () ->
         ignore
           (Pool.map ~jobs:3
              (fun x ->
                Metrics.incr (Metrics.current ()) "exec.ran";
                if x = 0 then failwith "boom" else x)
              (List.init 12 Fun.id)))
   with Failure _ -> ());
  Alcotest.(check int) "all tasks ran and merged" 12
    (Metrics.counter_value registry "exec.ran")

let suite =
  [
    t_map_is_list_map;
    t_mapi_is_list_mapi;
    Alcotest.test_case "jobs:0 means auto" `Quick t_jobs_zero_is_auto;
    Alcotest.test_case "negative jobs rejected" `Quick t_negative_jobs_rejected;
    t_metrics_merge_deterministic;
    t_trace_absorb_deterministic;
    Alcotest.test_case "workers start untraced" `Quick t_untraced_workers_stay_untraced;
    Alcotest.test_case "tables identical jobs 1 vs 4" `Slow t_tables_jobs_invariant;
    Alcotest.test_case "lowest-index exception wins" `Quick t_first_error_wins;
    Alcotest.test_case "completed tasks merge despite failure" `Quick t_survivors_still_merge;
  ]
