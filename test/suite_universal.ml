(* Tests for the universal constructions: codec, correctness under many
   schedules, cost accounting vs. the analytic bounds, and the direct
   (non-oblivious) constant-time implementations. *)

open Lowerbound

let value = Alcotest.testable Value.pp Value.equal

(* ---- Codec ---- *)

let desc pid seq op = { Codec.Desc.pid; seq; op }

let test_desc_roundtrip () =
  let d = desc 3 7 (Value.Str "op") in
  let d' = Codec.Desc.decode (Codec.Desc.encode d) in
  Alcotest.(check int) "pid" 3 d'.Codec.Desc.pid;
  Alcotest.(check int) "seq" 7 d'.Codec.Desc.seq;
  Alcotest.check value "op" (Value.Str "op") d'.Codec.Desc.op;
  Alcotest.(check (pair int int)) "key" (3, 7) (Codec.Desc.key d)

let test_dset_union () =
  let a = Codec.Dset.add Codec.Dset.empty (desc 1 0 Value.Unit) in
  let b = Codec.Dset.add Codec.Dset.empty (desc 0 0 Value.Unit) in
  let u = Codec.Dset.union a b in
  Alcotest.(check int) "cardinal" 2 (Codec.Dset.cardinal u);
  Alcotest.(check bool) "mem (1,0)" true (Codec.Dset.mem u (1, 0));
  Alcotest.(check bool) "subset" true (Codec.Dset.subset a u);
  (* Union is idempotent and ordered by key. *)
  Alcotest.check value "idempotent" u (Codec.Dset.union u u);
  match Codec.Dset.decode u with
  | [ d1; d2 ] ->
    Alcotest.(check int) "sorted first" 0 d1.Codec.Desc.pid;
    Alcotest.(check int) "sorted second" 1 d2.Codec.Desc.pid
  | _ -> Alcotest.fail "shape"

let test_root_absorb () =
  let spec = Counters.fetch_inc ~bits:62 in
  let root = Codec.Root.decode (Codec.Root.initial spec.Spec.init) in
  let batch = [ desc 1 0 Value.Unit; desc 0 0 Value.Unit ] in
  let root = Codec.Root.absorb spec root batch in
  (* Applied in key order: p0 first. *)
  Alcotest.check value "p0 response" (Value.Int 0)
    (Option.get (Codec.Root.find_response root ~key:(0, 0)));
  Alcotest.check value "p1 response" (Value.Int 1)
    (Option.get (Codec.Root.find_response root ~key:(1, 0)));
  Alcotest.check value "state" (Value.Int 2) root.Codec.Root.state;
  (* Re-absorbing the same batch is a no-op. *)
  let root' = Codec.Root.absorb spec root batch in
  Alcotest.check value "idempotent state" (Value.Int 2) root'.Codec.Root.state;
  Alcotest.(check bool) "is_done" true (Codec.Root.is_done root' ~key:(1, 0));
  (* Encoding round-trips. *)
  let root'' = Codec.Root.decode (Codec.Root.encode root') in
  Alcotest.check value "roundtrip response" (Value.Int 1)
    (Option.get (Codec.Root.find_response root'' ~key:(1, 0)))

(* ---- codec properties over random structured values ---- *)

let gen_value =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Value.Unit;
        map (fun b -> Value.Bool b) bool;
        map (fun n -> Value.Int n) small_int;
        map (fun s -> Value.Str s) (string_size (int_range 0 6));
        map (fun (w, seed) -> Value.Bits (Bitvec.random (Random.State.make [| seed |]) ~width:(1 + (w mod 70))))
          (pair small_nat int);
      ]
  in
  sized_size (int_range 0 3) @@ fix (fun self size ->
      if size = 0 then scalar
      else
        oneof
          [
            scalar;
            map2 (fun a b -> Value.Pair (a, b)) (self (size - 1)) (self (size - 1));
            map (fun vs -> Value.List vs) (list_size (int_range 0 3) (self (size - 1)));
          ])

let arb_value = QCheck.make ~print:Value.to_string gen_value

(* Structural laws of Value itself, over deep random values. *)
let prop_value_laws =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"value equal/compare laws" (QCheck.pair arb_value arb_value)
       (fun (a, b) ->
         Value.equal a a
         && Value.compare a a = 0
         && Value.equal a b = (Value.compare a b = 0)
         && Value.compare a b = -Value.compare b a
         && Value.size a >= 1))

let arb_desc =
  QCheck.make
    ~print:(fun (d : Codec.Desc.t) ->
      Printf.sprintf "(p%d,#%d,%s)" d.Codec.Desc.pid d.Codec.Desc.seq
        (Value.to_string d.Codec.Desc.op))
    QCheck.Gen.(
      map3
        (fun pid seq op -> { Codec.Desc.pid = pid mod 16; seq = seq mod 8; op })
        small_nat small_nat gen_value)

let prop_desc_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"desc encode/decode roundtrip" arb_desc (fun d ->
         let d' = Codec.Desc.decode (Codec.Desc.encode d) in
         Codec.Desc.compare d d' = 0 && Value.equal d.Codec.Desc.op d'.Codec.Desc.op))

(* For set/absorb laws the system invariant matters: a (pid, seq) key
   identifies one operation instance, so the op must be a function of the
   key — otherwise "same key, different op" produces spurious
   counterexamples no execution can produce. *)
let arb_keyed_desc =
  QCheck.map
    (fun (d : Codec.Desc.t) ->
      { d with Codec.Desc.op = Value.Int ((100 * d.Codec.Desc.pid) + d.Codec.Desc.seq) })
    arb_desc

let prop_dset_union_laws =
  let arb = QCheck.(triple (list_of_size (QCheck.Gen.int_range 0 6) arb_keyed_desc)
                      (list_of_size (QCheck.Gen.int_range 0 6) arb_keyed_desc)
                      (list_of_size (QCheck.Gen.int_range 0 6) arb_keyed_desc)) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"dset union: commutative, associative, idempotent" arb
       (fun (xs, ys, zs) ->
         let enc ds = List.fold_left Codec.Dset.add Codec.Dset.empty ds in
         let a = enc xs and b = enc ys and c = enc zs in
         let ( + ) = Codec.Dset.union in
         Value.equal (a + b) (b + a)
         && Value.equal (a + (b + c)) (a + b + c)
         && Value.equal (a + a) a
         && Codec.Dset.subset a (a + b)))

let prop_absorb_batch_order_irrelevant =
  (* Absorbing a batch is independent of the batch's presentation order
     (keys are sorted internally) and re-absorption is the identity. *)
  let arb = QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 8) arb_keyed_desc) int) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"root absorb: order-independent and idempotent" arb
       (fun (descs, seed) ->
         (* Make ops valid for a swap object (any value is a legal op). *)
         let spec = Misc_types.swap_object ~init:(Value.Int 0) in
         let root = Codec.Root.decode (Codec.Root.initial spec.Spec.init) in
         let shuffled =
           let st = Random.State.make [| seed |] in
           List.map (fun d -> (Random.State.bits st, d)) descs
           |> List.sort compare |> List.map snd
         in
         let a = Codec.Root.absorb spec root descs in
         let b = Codec.Root.absorb spec root shuffled in
         let idempotent = Codec.Root.absorb spec a descs in
         Value.equal (Codec.Root.encode a) (Codec.Root.encode b)
         && Value.equal (Codec.Root.encode a) (Codec.Root.encode idempotent)))

(* ---- generic construction correctness ---- *)

let constructions =
  [ Adt_tree.construction; Herlihy.construction; Consensus_list.construction ]

let schedulers =
  [
    ("round-robin", Scheduler.round_robin);
    ("random-3", Scheduler.random ~seed:3);
    ("random-99", Scheduler.random ~seed:99);
  ]

let test_counter_correctness () =
  (* n processes, two increments each: the multiset of responses must be
     exactly {0, .., 2n-1} — nothing lost, nothing duplicated. *)
  List.iter
    (fun (c : Iface.t) ->
      List.iter
        (fun (sched_name, scheduler) ->
          List.iter
            (fun n ->
              let result =
                Harness.run ~construction:c ~spec:(Counters.fetch_inc ~bits:62) ~n
                  ~ops:(fun _ -> [ Value.Unit; Value.Unit ])
                  ~scheduler ()
              in
              let label = Printf.sprintf "%s/%s n=%d" c.Iface.name sched_name n in
              Alcotest.(check bool) (label ^ " completed") true result.Harness.completed;
              let responses =
                List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response)
                  result.Harness.stats
                |> List.sort Int.compare
              in
              Alcotest.(check (list int)) (label ^ " responses") (List.init (2 * n) (fun i -> i))
                responses)
            [ 1; 2; 3; 8; 16 ])
        schedulers)
    constructions

let test_cost_never_exceeds_prediction () =
  List.iter
    (fun (c : Iface.t) ->
      List.iter
        (fun (sched_name, scheduler) ->
          List.iter
            (fun n ->
              let result =
                Harness.run ~construction:c ~spec:(Counters.fetch_inc ~bits:62) ~n
                  ~ops:(fun _ -> [ Value.Unit; Value.Unit; Value.Unit ])
                  ~scheduler ()
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s n=%d: %d <= %d" c.Iface.name sched_name n
                   result.Harness.max_cost (c.Iface.worst_case ~n))
                true
                (result.Harness.max_cost <= c.Iface.worst_case ~n))
            [ 1; 2; 5; 9; 16; 33 ])
        schedulers)
    constructions

let test_adt_cost_exact_when_solo () =
  (* A single process pays exactly the deterministic worst case. *)
  List.iter
    (fun n ->
      let layout = Layout.create () in
      let handle = Adt_tree.construction.Iface.create layout ~n (Counters.fetch_inc ~bits:62) in
      let memory = Memory.create () in
      Layout.install layout memory;
      let result = Harness.run_handle ~memory ~handle ~n:1 ~ops:(fun _ -> [ Value.Unit ]) () in
      Alcotest.(check int)
        (Printf.sprintf "solo cost at tree size %d" n)
        (Adt_tree.construction.Iface.worst_case ~n)
        result.Harness.max_cost)
    [ 1; 2; 4; 16; 128 ]

let test_linearizable_under_random_schedules () =
  (* Queue and CAS objects through both constructions under several seeds;
     check full linearizability (small n keeps the checker fast). *)
  List.iter
    (fun (c : Iface.t) ->
      List.iter
        (fun seed ->
          let spec = Containers.queue in
          let result =
            Harness.run ~construction:c ~spec ~n:4
              ~ops:(fun pid -> [ Containers.op_enq (Value.Int pid); Containers.op_deq ])
              ~scheduler:(Scheduler.random ~seed) ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s queue seed %d" c.Iface.name seed)
            true
            (Harness.check_linearizable ~spec result))
        [ 1; 2; 3; 4; 5 ])
    constructions

let test_wide_object_through_construction () =
  (* The n-bit fetch&and object (the paper's Theorem 6.2 item 2) through the
     tree: every process clears its own bit; final state must have the first
     n bits cleared. *)
  let n = 10 in
  let spec = Bitwise.fetch_and ~bits:n in
  let result =
    Harness.run ~construction:Adt_tree.construction ~spec ~n
      ~ops:(fun pid -> [ Value.Bits (Bitvec.set (Bitvec.ones n) pid false) ])
      ()
  in
  Alcotest.(check bool) "completed" true result.Harness.completed;
  (* Exactly one process observed all-but-one bits cleared... weaker, robust
     check: every response is a vector with its own bit still set. *)
  List.iter
    (fun (s : Harness.op_stat) ->
      Alcotest.(check bool) "own bit set in old value" true
        (Bitvec.get (Value.to_bits s.Harness.response) s.Harness.pid))
    result.Harness.stats

let test_multi_use_sequences () =
  (* Longer per-process sequences: seq numbers, helping and response lookup
     stay consistent over many batches. *)
  List.iter
    (fun (c : Iface.t) ->
      let n = 5 and k = 8 in
      let result =
        Harness.run ~construction:c ~spec:(Counters.fetch_inc ~bits:62) ~n
          ~ops:(fun _ -> List.init k (fun _ -> Value.Unit))
          ~scheduler:(Scheduler.random ~seed:17) ()
      in
      Alcotest.(check bool) (c.Iface.name ^ " completed") true result.Harness.completed;
      let responses =
        List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response) result.Harness.stats
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) (c.Iface.name ^ " all distinct") (List.init (n * k) (fun i -> i))
        responses;
      (* Per-process responses are increasing (a process's later op sees a
         later state). *)
      List.iter
        (fun pid ->
          let mine =
            List.filter (fun (s : Harness.op_stat) -> s.Harness.pid = pid) result.Harness.stats
            |> List.sort (fun (a : Harness.op_stat) b -> compare a.Harness.seq b.Harness.seq)
            |> List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response)
          in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | [ _ ] | [] -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s p%d increasing" c.Iface.name pid)
            true (increasing mine))
        (List.init n (fun i -> i)))
    constructions

let test_oblivious_flag () =
  List.iter
    (fun (c : Iface.t) ->
      Alcotest.(check bool) (c.Iface.name ^ " oblivious") true c.Iface.oblivious)
    constructions

let test_consensus_cell_is_consensus () =
  (* The consensus cells really decide: under every scheduler, per-process
     response sequences replay one shared total order of decided operations
     (checked indirectly by correctness above); here check the one-shot
     consensus building block directly — concurrent proposals all return the
     same winner, which is one of the proposals. *)
  List.iter
    (fun seed ->
      let spec = Misc_types.consensus in
      let result =
        Harness.run ~construction:Consensus_list.construction ~spec ~n:5
          ~ops:(fun pid -> [ Misc_types.op_propose (Value.Int pid) ])
          ~scheduler:(Scheduler.random ~seed) ()
      in
      let decisions =
        List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response)
          result.Harness.stats
        |> List.sort_uniq Int.compare
      in
      match decisions with
      | [ v ] -> Alcotest.(check bool) "winner among proposals" true (v >= 0 && v < 5)
      | _ -> Alcotest.failf "seed %d: %d distinct decisions" seed (List.length decisions))
    [ 1; 2; 3; 4 ]

let test_levels () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "levels %d" n) expected (Adt_tree.levels n))
    [ (1, 1); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (1024, 10) ]

let test_snapshot_through_constructions () =
  (* The n-segment snapshot through each construction: each process updates
     its own segment then scans; a process's scan must show its own update
     (it happened before, on the same process). *)
  List.iter
    (fun (c : Iface.t) ->
      let n = 4 in
      let spec = Misc_types.snapshot ~n in
      let result =
        Harness.run ~construction:c ~spec ~n
          ~ops:(fun pid -> [ Misc_types.op_update ~segment:pid (Value.Int pid); Misc_types.op_scan ])
          ~scheduler:(Scheduler.random ~seed:21) ()
      in
      Alcotest.(check bool) (c.Iface.name ^ " completed") true result.Harness.completed;
      List.iter
        (fun (s : Harness.op_stat) ->
          if Value.equal s.Harness.op Misc_types.op_scan then
            let segments = Value.to_list s.Harness.response in
            Alcotest.(check bool)
              (Printf.sprintf "%s p%d sees own update" c.Iface.name s.Harness.pid)
              true
              (Value.equal (List.nth segments s.Harness.pid) (Value.Int s.Harness.pid)))
        result.Harness.stats;
      Alcotest.(check bool) (c.Iface.name ^ " linearizable") true
        (Harness.check_linearizable ~spec result))
    constructions

let test_harness_cost_accounting () =
  (* Completed runs: the per-operation costs sum to the memory's total
     shared-op count — nothing is double-counted or lost. *)
  List.iter
    (fun (c : Iface.t) ->
      let result =
        Harness.run ~construction:c ~spec:(Counters.fetch_inc ~bits:62) ~n:5
          ~ops:(fun _ -> [ Value.Unit; Value.Unit ])
          ~scheduler:(Scheduler.random ~seed:13) ()
      in
      Alcotest.(check bool) "completed" true result.Harness.completed;
      let sum = List.fold_left (fun acc (s : Harness.op_stat) -> acc + s.Harness.cost) 0 result.Harness.stats in
      Alcotest.(check int) (c.Iface.name ^ " costs sum to total") result.Harness.total_shared_ops sum)
    constructions

(* ---- direct constructions ---- *)

let test_direct_cas_basic () =
  let layout = Layout.create () in
  let handle = Direct.compare_and_swap layout ~init:(Value.Int 0) in
  let memory = Memory.create () in
  Layout.install layout memory;
  let result =
    Harness.run_handle ~memory ~handle ~n:8
      ~ops:(fun pid ->
        [ Misc_types.op_cas ~expected:(Value.Int 0) ~new_:(Value.pair (Value.Int pid) Value.unit) ])
      ()
  in
  Alcotest.(check bool) "completed" true result.Harness.completed;
  Alcotest.(check bool) "constant cost" true (result.Harness.max_cost <= 2);
  let winners =
    List.filter
      (fun (s : Harness.op_stat) -> Value.to_bool (fst (Value.to_pair s.Harness.response)))
      result.Harness.stats
  in
  Alcotest.(check int) "exactly one CAS wins" 1 (List.length winners);
  Alcotest.(check bool) "linearizable" true
    (Harness.check_linearizable ~spec:(Misc_types.compare_and_swap ~init:(Value.Int 0)) result)

let test_direct_cas_cost_independent_of_n () =
  List.iter
    (fun n ->
      let layout = Layout.create () in
      let handle = Direct.compare_and_swap layout ~init:(Value.Int 0) in
      let memory = Memory.create () in
      Layout.install layout memory;
      let result =
        Harness.run_handle ~memory ~handle ~n
          ~ops:(fun pid ->
            [
              Misc_types.op_cas ~expected:(Value.Int 0)
                ~new_:(Value.pair (Value.Int pid) Value.unit);
            ])
          ~scheduler:(Scheduler.random ~seed:5) ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "cost <= 2 at n=%d" n)
        true (result.Harness.max_cost <= 2))
    [ 1; 4; 32; 128; 512 ]

let test_fetch_inc_retry_contention () =
  (* Under round-robin all n processes contend: someone's retry count grows
     with n — the non-wait-free ablation. *)
  let run n =
    let layout = Layout.create () in
    let handle = Direct.fetch_inc_retry layout () in
    let memory = Memory.create () in
    Layout.install layout memory;
    let result =
      Harness.run_handle ~memory ~handle ~n ~ops:(fun _ -> [ Value.Unit ]) ()
    in
    Alcotest.(check bool) "completed" true result.Harness.completed;
    let responses =
      List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response) result.Harness.stats
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "correct counter" (List.init n (fun i -> i)) responses;
    result.Harness.max_cost
  in
  let c4 = run 4 and c32 = run 32 in
  Alcotest.(check bool) "contention grows" true (c32 > c4);
  Alcotest.(check bool) "solo is 2 ops" true (run 1 = 2)

(* ---- complexity sweeps ---- *)

let test_sweep_shapes () =
  let rows =
    Complexity.sweep ~construction:Adt_tree.construction
      ~spec_of:(fun _ -> Counters.fetch_inc ~bits:62)
      ~ops_of:(fun ~n:_ _ -> [ Value.Unit ])
      ~ns:[ 2; 4; 8; 16 ] ()
  in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  List.iter
    (fun (r : Complexity.row) ->
      Alcotest.(check bool) "measured <= predicted" true (r.Complexity.measured_worst <= r.Complexity.predicted);
      Alcotest.(check bool) "lower bound <= measured" true
        (r.Complexity.lower_bound <= r.Complexity.measured_worst);
      Alcotest.(check bool) "linearizable" true r.Complexity.linearizable)
    rows;
  (* Θ(log n): doubling n adds a constant (8) to the tree's worst case. *)
  match rows with
  | [ r2; r4; r8; r16 ] ->
    Alcotest.(check int) "step 2->4" 8 (r4.Complexity.measured_worst - r2.Complexity.measured_worst);
    Alcotest.(check int) "step 4->8" 8 (r8.Complexity.measured_worst - r4.Complexity.measured_worst);
    Alcotest.(check int) "step 8->16" 8
      (r16.Complexity.measured_worst - r8.Complexity.measured_worst)
  | _ -> Alcotest.fail "shape"

let suite =
  [
    Alcotest.test_case "desc roundtrip" `Quick test_desc_roundtrip;
    Alcotest.test_case "dset union" `Quick test_dset_union;
    Alcotest.test_case "root absorb" `Quick test_root_absorb;
    prop_value_laws;
    prop_desc_roundtrip;
    prop_dset_union_laws;
    prop_absorb_batch_order_irrelevant;
    Alcotest.test_case "counter correctness" `Slow test_counter_correctness;
    Alcotest.test_case "cost never exceeds prediction" `Slow test_cost_never_exceeds_prediction;
    Alcotest.test_case "adt solo cost exact" `Quick test_adt_cost_exact_when_solo;
    Alcotest.test_case "linearizable under random schedules" `Slow
      test_linearizable_under_random_schedules;
    Alcotest.test_case "wide object through construction" `Quick
      test_wide_object_through_construction;
    Alcotest.test_case "multi-use sequences" `Slow test_multi_use_sequences;
    Alcotest.test_case "oblivious flags" `Quick test_oblivious_flag;
    Alcotest.test_case "consensus cells decide" `Quick test_consensus_cell_is_consensus;
    Alcotest.test_case "snapshot through constructions" `Slow test_snapshot_through_constructions;
    Alcotest.test_case "harness cost accounting" `Quick test_harness_cost_accounting;
    Alcotest.test_case "tree levels" `Quick test_levels;
    Alcotest.test_case "direct CAS basic" `Quick test_direct_cas_basic;
    Alcotest.test_case "direct CAS cost independent of n" `Quick
      test_direct_cas_cost_independent_of_n;
    Alcotest.test_case "fetch&inc retry contention" `Quick test_fetch_inc_retry_contention;
    Alcotest.test_case "complexity sweep shapes" `Quick test_sweep_shapes;
  ]
