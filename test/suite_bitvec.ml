(* Unit and property tests for the Bitvec substrate: the k-bit words backing
   the paper's n-bit fetch&and / fetch&or / fetch&multiply objects. *)

open Lowerbound

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

(* Widths that cross limb boundaries (limbs are 16 bits). *)
let widths = [ 1; 2; 7; 15; 16; 17; 31; 32; 33; 48; 61; 62; 63; 64; 65; 100; 128; 200 ]

let test_zero_ones () =
  List.iter
    (fun k ->
      check_int (Printf.sprintf "zero width %d" k) k (Bitvec.width (Bitvec.zero k));
      check "zero is_zero" true (Bitvec.is_zero (Bitvec.zero k));
      check_int (Printf.sprintf "ones popcount %d" k) k (Bitvec.popcount (Bitvec.ones k));
      check "ones not zero" false (Bitvec.is_zero (Bitvec.ones k)))
    widths

let test_of_to_int () =
  List.iter
    (fun v ->
      let b = Bitvec.of_int ~width:62 v in
      Alcotest.(check (option int)) (Printf.sprintf "roundtrip %d" v) (Some v)
        (Bitvec.to_int_opt b))
    [ 0; 1; 2; 255; 65535; 65536; 123456789; max_int / 2 ]

let test_of_int_truncates () =
  (* of_int reduces modulo 2^width. *)
  let b = Bitvec.of_int ~width:4 255 in
  Alcotest.(check (option int)) "255 mod 16" (Some 15) (Bitvec.to_int_opt b);
  let b = Bitvec.of_int ~width:8 256 in
  Alcotest.(check (option int)) "256 mod 256" (Some 0) (Bitvec.to_int_opt b)

let test_get_set () =
  let b = Bitvec.zero 40 in
  let b = Bitvec.set b 0 true in
  let b = Bitvec.set b 17 true in
  let b = Bitvec.set b 39 true in
  check "bit 0" true (Bitvec.get b 0);
  check "bit 17" true (Bitvec.get b 17);
  check "bit 39" true (Bitvec.get b 39);
  check "bit 16" false (Bitvec.get b 16);
  check_int "popcount" 3 (Bitvec.popcount b);
  let b = Bitvec.set b 17 false in
  check "bit 17 cleared" false (Bitvec.get b 17);
  check_int "popcount after clear" 2 (Bitvec.popcount b)

let test_bounds () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bitvec: width 0 must be positive")
    (fun () -> ignore (Bitvec.zero 0));
  Alcotest.check_raises "negative bit" (Invalid_argument "Bitvec: bit -1 out of range for width 8")
    (fun () -> ignore (Bitvec.get (Bitvec.zero 8) (-1)));
  Alcotest.check_raises "bit = width" (Invalid_argument "Bitvec: bit 8 out of range for width 8")
    (fun () -> ignore (Bitvec.get (Bitvec.zero 8) 8))

let test_mismatched_widths () =
  Alcotest.check_raises "add widths" (Invalid_argument "Bitvec.add: widths 8 and 9 differ")
    (fun () -> ignore (Bitvec.add (Bitvec.zero 8) (Bitvec.zero 9)))

let test_add_small () =
  let v a = Bitvec.of_int ~width:8 a in
  Alcotest.check bv "3+5" (v 8) (Bitvec.add (v 3) (v 5));
  Alcotest.check bv "255+1 wraps" (v 0) (Bitvec.add (v 255) (v 1));
  Alcotest.check bv "succ 255" (v 0) (Bitvec.succ (v 255))

let test_mul_small () =
  let v a = Bitvec.of_int ~width:8 a in
  Alcotest.check bv "3*5" (v 15) (Bitvec.mul (v 3) (v 5));
  Alcotest.check bv "16*16 wraps" (v 0) (Bitvec.mul (v 16) (v 16));
  Alcotest.check bv "17*15" (v 255) (Bitvec.mul (v 17) (v 15))

let test_mul_wide () =
  (* Cross-limb carries: with x = 2^64 - 1 in 128 bits, check the identities
     (x+1)·x = x² + x and (x+1)·x = x << 64 (since x+1 = 2^64). *)
  let w = 128 in
  let x = Bitvec.lognot (Bitvec.shift_left (Bitvec.ones w) 64) in
  let lhs = Bitvec.mul (Bitvec.succ x) x in
  Alcotest.check bv "(x+1)x = x^2 + x" lhs (Bitvec.add (Bitvec.mul x x) x);
  Alcotest.check bv "(x+1)x = x<<64" (Bitvec.shift_left x 64) lhs

let test_shift_left () =
  let v = Bitvec.of_int ~width:70 1 in
  let s = Bitvec.shift_left v 69 in
  check "bit 69" true (Bitvec.get s 69);
  check_int "popcount" 1 (Bitvec.popcount s);
  Alcotest.check bv "shift out" (Bitvec.zero 70) (Bitvec.shift_left v 70);
  Alcotest.check bv "shift by 0" v (Bitvec.shift_left v 0)

let test_logic_small () =
  let v a = Bitvec.of_int ~width:8 a in
  Alcotest.check bv "and" (v 0b1000) (Bitvec.logand (v 0b1100) (v 0b1010));
  Alcotest.check bv "or" (v 0b1110) (Bitvec.logor (v 0b1100) (v 0b1010));
  Alcotest.check bv "xor" (v 0b0110) (Bitvec.logxor (v 0b1100) (v 0b1010));
  Alcotest.check bv "not" (v 0b11110011) (Bitvec.lognot (v 0b00001100))

let test_complement_bit () =
  let b = Bitvec.zero 33 in
  let b1 = Bitvec.complement_bit b 32 in
  check "flipped" true (Bitvec.get b1 32);
  Alcotest.check bv "involution" b (Bitvec.complement_bit b1 32)

let test_compare_order () =
  let v a = Bitvec.of_int ~width:32 a in
  check "lt" true (Bitvec.compare (v 3) (v 5) < 0);
  check "gt" true (Bitvec.compare (v 70000) (v 5) > 0);
  check_int "eq" 0 (Bitvec.compare (v 42) (v 42));
  check "width order" true (Bitvec.compare (Bitvec.zero 8) (Bitvec.zero 9) < 0)

let test_to_string () =
  Alcotest.(check string) "small" "0x1f/8" (Bitvec.to_string (Bitvec.of_int ~width:8 31));
  Alcotest.(check string) "zero" "0x0/8" (Bitvec.to_string (Bitvec.zero 8))

(* ---- set-view helpers (the Ids hot path) ---- *)

let test_resize () =
  let b = Bitvec.of_int ~width:8 0b1011 in
  let grown = Bitvec.resize b ~width:40 in
  check_int "grow keeps width" 40 (Bitvec.width grown);
  Alcotest.(check (option int)) "grow zero-pads" (Some 0b1011) (Bitvec.to_int_opt grown);
  let shrunk = Bitvec.resize b ~width:2 in
  Alcotest.(check (option int)) "shrink truncates" (Some 0b11) (Bitvec.to_int_opt shrunk);
  Alcotest.check bv "same width is identity" b (Bitvec.resize b ~width:8)

let test_set_grow () =
  let b = Bitvec.set_grow (Bitvec.zero 1) 70 true in
  check "distant bit set" true (Bitvec.get b 70);
  check "width grew past the bit" true (Bitvec.width b > 70);
  check_int "only that bit" 1 (Bitvec.popcount b);
  (* Within the current width it is plain set. *)
  Alcotest.check bv "no growth needed" (Bitvec.set (Bitvec.zero 8) 3 true)
    (Bitvec.set_grow (Bitvec.zero 8) 3 true)

let test_top_bit () =
  Alcotest.(check (option int)) "zero has none" None (Bitvec.top_bit (Bitvec.zero 64));
  let b = Bitvec.set (Bitvec.set (Bitvec.zero 100) 3 true) 77 true in
  Alcotest.(check (option int)) "highest set index" (Some 77) (Bitvec.top_bit b);
  Alcotest.(check (option int)) "bit 0" (Some 0)
    (Bitvec.top_bit (Bitvec.of_int ~width:33 1))

let test_trim () =
  (* Same bit set at different widths trims to one canonical vector —
     what lets Ids use structural equality. *)
  let at_width w = Bitvec.set (Bitvec.set_grow (Bitvec.zero w) 21 true) 4 true in
  Alcotest.check bv "widths collapse" (Bitvec.trim (at_width 22)) (Bitvec.trim (at_width 200));
  check_int "trimmed width is top_bit + 1" 22 (Bitvec.width (Bitvec.trim (at_width 90)));
  check_int "zero trims to width 1" 1 (Bitvec.width (Bitvec.trim (Bitvec.zero 128)))

let test_fold_set () =
  let b = List.fold_left (fun b i -> Bitvec.set_grow b i true) (Bitvec.zero 1) [ 5; 0; 63; 64; 130 ] in
  Alcotest.(check (list int)) "ascending indices" [ 0; 5; 63; 64; 130 ]
    (List.rev (Bitvec.fold_set (fun i acc -> i :: acc) b []));
  Alcotest.(check (list int)) "empty fold" []
    (Bitvec.fold_set (fun i acc -> i :: acc) (Bitvec.zero 64) [])

(* ---- properties ---- *)

let gen_width = QCheck.Gen.oneofl widths

let arb_pair_same_width =
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ ", " ^ Bitvec.to_string b)
    QCheck.Gen.(
      gen_width >>= fun w ->
      map2
        (fun s1 s2 ->
          let st1 = Random.State.make [| s1 |] and st2 = Random.State.make [| s2 |] in
          (Bitvec.random st1 ~width:w, Bitvec.random st2 ~width:w))
        int int)

let arb_triple_same_width =
  QCheck.make
    ~print:(fun (a, b, c) ->
      String.concat ", " [ Bitvec.to_string a; Bitvec.to_string b; Bitvec.to_string c ])
    QCheck.Gen.(
      gen_width >>= fun w ->
      map3
        (fun s1 s2 s3 ->
          let r s = Bitvec.random (Random.State.make [| s |]) ~width:w in
          (r s1, r s2, r s3))
        int int int)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

let properties =
  [
    prop "add commutes" arb_pair_same_width (fun (a, b) ->
        Bitvec.equal (Bitvec.add a b) (Bitvec.add b a));
    prop "mul commutes" arb_pair_same_width (fun (a, b) ->
        Bitvec.equal (Bitvec.mul a b) (Bitvec.mul b a));
    prop "add associates" arb_triple_same_width (fun (a, b, c) ->
        Bitvec.equal (Bitvec.add a (Bitvec.add b c)) (Bitvec.add (Bitvec.add a b) c));
    prop "mul associates" arb_triple_same_width (fun (a, b, c) ->
        Bitvec.equal (Bitvec.mul a (Bitvec.mul b c)) (Bitvec.mul (Bitvec.mul a b) c));
    prop "mul distributes" arb_triple_same_width (fun (a, b, c) ->
        Bitvec.equal (Bitvec.mul a (Bitvec.add b c))
          (Bitvec.add (Bitvec.mul a b) (Bitvec.mul a c)));
    prop "mul by one" arb_pair_same_width (fun (a, _) ->
        Bitvec.equal a (Bitvec.mul a (Bitvec.one (Bitvec.width a))));
    prop "mul by two is shift" arb_pair_same_width (fun (a, _) ->
        Bitvec.equal
          (Bitvec.mul a (Bitvec.of_int ~width:(Bitvec.width a) 2))
          (Bitvec.shift_left a 1));
    prop "and idempotent" arb_pair_same_width (fun (a, _) ->
        Bitvec.equal a (Bitvec.logand a a));
    prop "de morgan" arb_pair_same_width (fun (a, b) ->
        Bitvec.equal
          (Bitvec.lognot (Bitvec.logand a b))
          (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)));
    prop "double complement" arb_pair_same_width (fun (a, _) ->
        Bitvec.equal a (Bitvec.lognot (Bitvec.lognot a)));
    prop "xor self is zero" arb_pair_same_width (fun (a, _) ->
        Bitvec.is_zero (Bitvec.logxor a a));
    prop "add ones is pred" arb_pair_same_width (fun (a, _) ->
        (* a + (2^k - 1) = a - 1 mod 2^k; adding 1 back recovers a. *)
        Bitvec.equal a (Bitvec.succ (Bitvec.add a (Bitvec.ones (Bitvec.width a)))));
    prop "popcount and/or inclusion-exclusion" arb_pair_same_width (fun (a, b) ->
        Bitvec.popcount (Bitvec.logand a b) + Bitvec.popcount (Bitvec.logor a b)
        = Bitvec.popcount a + Bitvec.popcount b);
    prop "compare antisymmetric" arb_pair_same_width (fun (a, b) ->
        Bitvec.compare a b = -Bitvec.compare b a);
    prop "equal iff compare zero" arb_pair_same_width (fun (a, b) ->
        Bitvec.equal a b = (Bitvec.compare a b = 0));
  ]

(* ---- Ids: the dense/sparse pid-set built on Bitvec ---- *)

module Iset = Set.Make (Int)

(* Id pools: small (always dense), straddling the 2^16 dense limit (forces
   the sparse fallback), and mixed so unions/inters cross representations. *)
let arb_id_lists =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "[%s] [%s]"
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))
    QCheck.Gen.(
      let id =
        oneof
          [ 0 -- 40; return 65535; 65536 -- 65600; return ((1 lsl 16) - 1); 100_000 -- 100_050 ]
      in
      pair (list_size (0 -- 25) id) (list_size (0 -- 25) id))

let ids_prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name arb_id_lists (fun (a, b) ->
         f (Ids.of_list a, Iset.of_list a) (Ids.of_list b, Iset.of_list b)))

let same ids iset = Ids.elements ids = Iset.elements iset

let ids_properties =
  [
    ids_prop "of_list/elements matches Set" (fun (ia, sa) _ -> same ia sa);
    ids_prop "union matches Set" (fun (ia, sa) (ib, sb) ->
        same (Ids.union ia ib) (Iset.union sa sb));
    ids_prop "inter matches Set" (fun (ia, sa) (ib, sb) ->
        same (Ids.inter ia ib) (Iset.inter sa sb));
    ids_prop "diff matches Set" (fun (ia, sa) (ib, sb) ->
        same (Ids.diff ia ib) (Iset.diff sa sb));
    ids_prop "subset matches Set" (fun (ia, sa) (ib, sb) ->
        Ids.subset ia ib = Iset.subset sa sb);
    ids_prop "equal iff same elements" (fun (ia, sa) (ib, sb) ->
        Ids.equal ia ib = Iset.equal sa sb);
    ids_prop "add/remove/mem match Set" (fun (ia, sa) _ ->
        same (Ids.add 7 ia) (Iset.add 7 sa)
        && same (Ids.remove 7 ia) (Iset.remove 7 sa)
        && Ids.mem 7 ia = Iset.mem 7 sa
        && Ids.cardinal ia = Iset.cardinal sa);
    ids_prop "filter/choose/max match Set" (fun (ia, sa) _ ->
        let even x = x mod 2 = 0 in
        same (Ids.filter even ia) (Iset.filter even sa)
        && Ids.choose_opt ia = Iset.min_elt_opt sa
        && Ids.max_elt_opt ia = Iset.max_elt_opt sa);
  ]

let test_ids_canonical () =
  (* The same contents reached along different op sequences — including a
     detour through a sparse id — are structurally equal, so Ids values can
     key Hashtbls via polymorphic equality. *)
  let direct = Ids.of_list [ 1; 4 ] in
  let via_sparse = Ids.remove 100_000 (Ids.of_list [ 4; 100_000; 1 ]) in
  let via_churn = Ids.remove 9 (Ids.add 9 (Ids.add 4 (Ids.singleton 1))) in
  Alcotest.(check bool) "sparse detour" true (direct = via_sparse);
  Alcotest.(check bool) "dense churn" true (direct = via_churn);
  Alcotest.(check bool) "empty after drain" true
    (Ids.remove 70_000 (Ids.singleton 70_000) = Ids.empty);
  Alcotest.check_raises "negative id" (Invalid_argument "Ids: negative process id -3")
    (fun () -> ignore (Ids.add (-3) Ids.empty))

let test_ids_range () =
  Alcotest.(check (list int)) "range 4" [ 0; 1; 2; 3 ] (Ids.elements (Ids.range 4));
  Alcotest.(check (list int)) "range 0" [] (Ids.elements (Ids.range 0));
  Alcotest.(check int) "fold counts" 4 (Ids.fold (fun _ n -> n + 1) (Ids.range 4) 0)

let ids_tests =
  ids_properties
  @ [
      Alcotest.test_case "Ids canonical across representations" `Quick test_ids_canonical;
      Alcotest.test_case "Ids.range" `Quick test_ids_range;
    ]

let suite =
  [
    Alcotest.test_case "zero/ones basics" `Quick test_zero_ones;
    Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
    Alcotest.test_case "of_int truncates" `Quick test_of_int_truncates;
    Alcotest.test_case "get/set" `Quick test_get_set;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "mismatched widths" `Quick test_mismatched_widths;
    Alcotest.test_case "add small" `Quick test_add_small;
    Alcotest.test_case "mul small" `Quick test_mul_small;
    Alcotest.test_case "mul wide carries" `Quick test_mul_wide;
    Alcotest.test_case "shift_left" `Quick test_shift_left;
    Alcotest.test_case "boolean ops" `Quick test_logic_small;
    Alcotest.test_case "complement_bit" `Quick test_complement_bit;
    Alcotest.test_case "compare order" `Quick test_compare_order;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "resize" `Quick test_resize;
    Alcotest.test_case "set_grow" `Quick test_set_grow;
    Alcotest.test_case "top_bit" `Quick test_top_bit;
    Alcotest.test_case "trim canonicalizes" `Quick test_trim;
    Alcotest.test_case "fold_set" `Quick test_fold_set;
  ]
  @ properties
  @ ids_tests
