(* The horizontal-scale layer (lib/service): shard ownership, the
   router/fleet, the latency histogram, and the load generator's
   deterministic schedule.

   The load-bearing properties:
   - ownership is a total, pure function of (content key, N): every key
     has exactly one owner in [0, N), the same on every call — which is
     what makes rerouting after a worker (or whole-fleet) restart
     stable;
   - the router is protocol-transparent: a client sees the same keyed
     ok/cached replies it would get from a single server, and resends
     land as cache hits on the owning worker;
   - the topology a router reports matches the pure ownership map;
   - the loadgen schedule is a pure function of its config, and
     histogram quantiles are a pure function of the added multiset. *)

open Lb_service
module Json = Lb_observe.Json
module Metrics = Lb_observe.Metrics

let prop ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let status_of json =
  Option.value ~default:"?" (Option.bind (Json.member "status" json) Json.to_str_opt)

(* ---- ownership ---- *)

let t_owner_total_and_stable =
  prop "owner: total, in range, deterministic"
    (QCheck.make
       ~print:(fun (tag, shards) -> Printf.sprintf "%S / %d shards" tag shards)
       QCheck.Gen.(pair (string_size ~gen:printable (1 -- 16)) (1 -- 8)))
    (fun (tag, shards) ->
      let r = Request.echo tag in
      let o = Shard.owner_of_request ~shards r in
      o >= 0 && o < shards
      && o = Shard.owner_of_request ~shards r
      && o = Shard.owner ~shards (Request.key r))

let t_owner_single_shard_owns_all =
  prop "owner: one shard owns every key"
    (QCheck.make QCheck.Gen.(string_size ~gen:printable (1 -- 16)))
    (fun tag -> Shard.owner ~shards:1 (Request.key (Request.echo tag)) = 0)

let t_worker_transports_distinct () =
  List.iter
    (fun base ->
      let ws = List.init 5 (fun i -> Shard.worker_transport ~base i) in
      let strs = List.map Transport.to_string ws in
      Alcotest.(check int) "worker addresses are distinct" 5
        (List.length (List.sort_uniq compare strs));
      Alcotest.(check bool) "no worker collides with the router" false
        (List.mem (Transport.to_string base) strs))
    [
      Transport.Unix_socket "/tmp/lbshard-base.sock";
      Transport.Tcp { host = "127.0.0.1"; port = 9000 };
    ]

(* ---- the in-process fleet ---- *)

let fresh_executor _shard =
  Executor.create ~cache:(Cache.create ~capacity:64 ()) ~compute:Catalog.compute ()

(* A 3-shard fleet on ephemeral loopback TCP (every listener gets its own
   kernel-assigned port — the resolved-address plumbing is part of what's
   under test): requests round-trip, resends are cache hits on the owning
   worker, and the topology probe's per-shard forwarded counts equal the
   pure ownership map's. *)
let t_fleet_end_to_end () =
  let shards = 3 in
  let fleet =
    Router.launch_fleet ~shards
      ~transport:(Transport.Tcp { host = "127.0.0.1"; port = 0 })
      ~executor_of:fresh_executor
      ~log:(fun _ -> ())
      ()
  in
  let transport = fleet.Router.address in
  let reqs =
    List.init 12 (fun i -> Request.echo ~size:8 ~work:2 (Printf.sprintf "fleet-%d" i))
  in
  let finally () = ignore (fleet.Router.stop ()) in
  Fun.protect ~finally (fun () ->
      Alcotest.(check int) "fleet resolved one address per shard" shards
        (List.length fleet.Router.shards);
      (match Client.request ~transport ~timeout_s:30.0 reqs with
      | Error e -> Alcotest.fail (Client.error_message e)
      | Ok replies ->
        Alcotest.(check int) "every request answered" 12 (List.length replies);
        List.iter
          (fun r -> Alcotest.(check string) "routed reply ok" "ok" (status_of r))
          replies);
      (match Client.request ~transport ~timeout_s:30.0 reqs with
      | Error e -> Alcotest.fail (Client.error_message e)
      | Ok replies ->
        List.iter
          (fun r ->
            Alcotest.(check bool) "resend is a cache hit on the owning worker" true
              (Option.bind (Json.member "cached" r) Json.to_bool_opt = Some true))
          replies);
      let expected = Array.make shards 0 in
      List.iter
        (fun r ->
          let o = Shard.owner_of_request ~shards r in
          expected.(o) <- expected.(o) + 2)
        reqs;
      match
        Client.call ~transport ~timeout_s:10.0 [ Json.Obj [ ("op", Json.Str "shards") ] ]
      with
      | Ok [ reply ] -> (
        let data =
          match Json.member "data" reply with
          | Some d -> d
          | None -> Alcotest.fail "shards probe carries no data"
        in
        Alcotest.(check int) "topology reports the shard count" shards
          (Option.value ~default:(-1) (Option.bind (Json.member "shards" data) Json.to_int_opt));
        match Json.member "workers" data with
        | Some (Json.Arr ws) ->
          Alcotest.(check int) "one topology row per worker" shards (List.length ws);
          List.iteri
            (fun i w ->
              Alcotest.(check int)
                (Printf.sprintf "shard %d forwarded = pure ownership count" i)
                expected.(i)
                (Option.value ~default:(-1)
                   (Option.bind (Json.member "forwarded" w) Json.to_int_opt)))
            ws
        | _ -> Alcotest.fail "workers array missing")
      | Ok _ | Error _ -> Alcotest.fail "shards probe failed");
  (* stop () already ran; relaunch the same topology with fresh caches and
     replay the same batch — the per-shard distribution must be identical,
     because ownership is a function of the key, not of fleet history.
     This is the restart-stability contract. *)
  let fleet2 =
    Router.launch_fleet ~shards
      ~transport:(Transport.Tcp { host = "127.0.0.1"; port = 0 })
      ~executor_of:fresh_executor
      ~log:(fun _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () -> ignore (fleet2.Router.stop ()))
    (fun () ->
      match Client.request ~transport:fleet2.Router.address ~timeout_s:30.0 reqs with
      | Error e -> Alcotest.fail (Client.error_message e)
      | Ok replies ->
        List.iter
          (fun r ->
            Alcotest.(check string) "replayed batch ok on the restarted fleet" "ok"
              (status_of r))
          replies);
  ()

(* A router whose single worker is unreachable must answer with typed,
   keyed error replies — never hang, never drop the connection. *)
let t_router_dead_worker_typed_errors () =
  let tmp = Filename.temp_file "lbshard_rt" "" in
  Sys.remove tmp;
  let listen = Transport.Unix_socket (tmp ^ ".sock") in
  let resolved = Atomic.make None in
  let router =
    Domain.spawn (fun () ->
        try
          Metrics.with_registry (Metrics.create ()) (fun () ->
              ignore
                (Router.route ~transport:listen
                   ~workers:[ Transport.Unix_socket "/nonexistent/lbshard-worker.sock" ]
                   ~worker_timeout_s:2.0
                   ~ready:(fun t -> Atomic.set resolved (Some t))
                   ~log:(fun _ -> ())
                   ()))
        with _ -> ())
  in
  let rec await k =
    match Atomic.get resolved with
    | Some t -> t
    | None ->
      if k = 0 then failwith "router never bound"
      else begin
        Unix.sleepf 0.01;
        await (k - 1)
      end
  in
  let transport = await 500 in
  let finally () =
    (try
       ignore
         (Client.call ~transport ~timeout_s:5.0 [ Json.Obj [ ("op", Json.Str "shutdown") ] ])
     with _ -> ());
    Domain.join router
  in
  Fun.protect ~finally (fun () ->
      let req = Request.echo "dead-worker" in
      match Client.request ~transport ~timeout_s:15.0 [ req ] with
      | Error e -> Alcotest.fail (Client.error_message e)
      | Ok [ reply ] ->
        Alcotest.(check string) "unreachable shard yields a typed error" "error"
          (status_of reply);
        Alcotest.(check bool) "the error reply carries the request key" true
          (Option.bind (Json.member "key" reply) Json.to_str_opt = Some (Request.key req))
      | Ok _ -> Alcotest.fail "expected exactly one reply")

(* ---- the latency histogram ---- *)

let t_histogram_quantiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i *. 0.001)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check bool) "p50 within bucket tolerance of 50ms" true
    (Float.abs (Histogram.quantile h 0.5 -. 0.050) /. 0.050 < 0.05);
  Alcotest.(check (float 1e-12)) "q=1 is the exact max" 0.1 (Histogram.quantile h 1.0);
  Alcotest.(check (float 1e-12)) "q=0 is the exact min" 0.001 (Histogram.quantile h 0.0);
  (try
     ignore (Histogram.quantile h 1.5);
     Alcotest.fail "q outside [0,1] must raise"
   with Invalid_argument _ -> ());
  Alcotest.(check (float 0.0)) "empty histogram quantile is 0" 0.0
    (Histogram.quantile (Histogram.create ()) 0.9)

let t_histogram_merge_deterministic () =
  (* Interleave one value stream into two histograms; their merge must
     agree with the histogram that saw everything — the structure is a
     pure function of the multiset, not of arrival order. *)
  let xs = List.init 200 (fun i -> float_of_int (i * 7919 mod 200) *. 0.0005) in
  let a = Histogram.create () and b = Histogram.create () and whole = Histogram.create () in
  List.iteri
    (fun i v ->
      Histogram.add (if i mod 2 = 0 then a else b) v;
      Histogram.add whole v)
    xs;
  let merged = Histogram.merge a b in
  Alcotest.(check int) "counts add under merge" 200 (Histogram.count merged);
  Alcotest.(check (float 1e-12)) "sums add under merge" (Histogram.sum whole)
    (Histogram.sum merged);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "q=%g agrees with the unsplit stream" q)
        (Histogram.quantile whole q) (Histogram.quantile merged q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

(* Adversarial latency values for the property tests: exact log-linear
   bucket boundaries (1e-6 * 1.04^k) and their floating-point
   neighbours — the values where an off-by-one in the bucket index or
   an open/closed boundary mix-up would surface — plus the documented
   clamp cases (NaN, negative) and far-tail values. *)
let gen_latency =
  QCheck.Gen.(
    oneof
      [
        (let* k = 0 -- 220 in
         let* nudge = oneofl [ Float.pred; Fun.id; Float.succ ] in
         return (nudge (1e-6 *. (1.04 ** float_of_int k))));
        oneofl [ 0.0; 1e-6; -1.0; Float.nan; 5000.0 ];
        float_bound_inclusive 0.5;
      ])

let histogram_of vs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) vs;
  h

let quantile_grid = [ 0.0; 0.001; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let t_histogram_merge_splits =
  prop "histogram: merge = unsplit stream at every split, boundary values"
    (QCheck.make
       ~print:QCheck.Print.(pair (list float) (list float))
       QCheck.Gen.(pair (list_size (0 -- 60) gen_latency) (list_size (0 -- 60) gen_latency)))
    (fun (xs, ys) ->
      let merged = Histogram.merge (histogram_of xs) (histogram_of ys) in
      let whole = histogram_of (xs @ ys) in
      Histogram.count merged = Histogram.count whole
      && Float.abs (Histogram.sum merged -. Histogram.sum whole)
         <= 1e-9 *. (1.0 +. Float.abs (Histogram.sum whole))
      && List.for_all
           (fun q ->
             (* buckets, count, min and max merge exactly, so quantiles
                must agree to the last bit, not within tolerance. *)
             Float.equal (Histogram.quantile merged q) (Histogram.quantile whole q))
           quantile_grid)

let t_histogram_quantile_monotone =
  prop "histogram: quantile is monotone in q"
    (QCheck.make
       ~print:QCheck.Print.(triple (list float) float float)
       QCheck.Gen.(
         triple
           (list_size (0 -- 60) gen_latency)
           (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (vs, qa, qb) ->
      let h = histogram_of vs in
      Histogram.quantile h (Float.min qa qb) <= Histogram.quantile h (Float.max qa qb))

let t_histogram_quantiles_bounded =
  prop "histogram: every quantile lies in the observed [min, max]"
    (QCheck.make
       ~print:QCheck.Print.(pair (list float) float)
       QCheck.Gen.(pair (list_size (1 -- 60) gen_latency) (float_bound_inclusive 1.0)))
    (fun (vs, q) ->
      let h = histogram_of vs in
      let v = Histogram.quantile h q in
      Histogram.quantile h 0.0 <= v && v <= Histogram.quantile h 1.0)

(* ---- the load generator's schedule ---- *)

let t_loadgen_schedule_deterministic () =
  let cfg =
    { Loadgen.default with clients = 2; requests_per_client = 40; warmup = 5; seed = 9 }
  in
  let a = Loadgen.schedule cfg ~client:0 in
  Alcotest.(check bool) "same seed, same schedule" true (a = Loadgen.schedule cfg ~client:0);
  Alcotest.(check int) "warmup + measured requests" 45 (List.length a);
  Alcotest.(check bool) "different seed, different schedule" false
    (a = Loadgen.schedule { cfg with seed = 10 } ~client:0);
  Alcotest.(check bool) "different client, different schedule" false
    (a = Loadgen.schedule cfg ~client:1)

let t_loadgen_mix_respects_ratio () =
  let cfg =
    { Loadgen.default with hit_ratio = 0.0; hot_tags = 4; requests_per_client = 50; warmup = 0 }
  in
  let keys schedule = List.sort_uniq compare (List.map Request.key schedule) in
  Alcotest.(check int) "hit_ratio 0: every key distinct (all misses)" 50
    (List.length (keys (Loadgen.schedule cfg ~client:0)));
  Alcotest.(check bool) "hit_ratio 1: keys drawn from the hot pool" true
    (List.length (keys (Loadgen.schedule { cfg with hit_ratio = 1.0 } ~client:0)) <= 4)

(* The generator against a real (single-server-equivalent) 1-shard fleet:
   every measured request lands, and the bench payload rows carry the
   shard label. *)
let t_loadgen_against_fleet () =
  let fleet =
    Router.launch_fleet ~shards:1
      ~transport:(Transport.Tcp { host = "127.0.0.1"; port = 0 })
      ~executor_of:fresh_executor
      ~log:(fun _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () -> ignore (fleet.Router.stop ()))
    (fun () ->
      let cfg =
        {
          Loadgen.default with
          clients = 2;
          requests_per_client = 15;
          warmup = 2;
          work = 50;
          timeout_s = 30.0;
        }
      in
      let r = Loadgen.run ~transport:fleet.Router.address ~shards:1 cfg in
      Alcotest.(check int) "all measured requests recorded" 30 r.Loadgen.measured;
      Alcotest.(check int) "no errors against a healthy fleet" 0 r.Loadgen.errors;
      Alcotest.(check bool) "throughput is positive" true (r.Loadgen.throughput_rps > 0.0);
      match Loadgen.bench_payload r with
      | Json.Obj fields -> (
        match List.assoc_opt "benchmarks" fields with
        | Some (Json.Arr rows) ->
          let names =
            List.filter_map
              (fun row -> Option.bind (Json.member "name" row) Json.to_str_opt)
              rows
          in
          List.iter
            (fun suffix ->
              Alcotest.(check bool)
                (Printf.sprintf "bench row loadgen/1shard/%s present" suffix)
                true
                (List.mem (Printf.sprintf "loadgen/1shard/%s" suffix) names))
            [ "p50"; "p99"; "p999"; "mean" ]
        | _ -> Alcotest.fail "bench payload has no benchmarks array")
      | _ -> Alcotest.fail "bench payload is not an object")

let suite =
  [
    t_owner_total_and_stable;
    t_owner_single_shard_owns_all;
    Alcotest.test_case "shard: worker addresses derive distinct" `Quick
      t_worker_transports_distinct;
    Alcotest.test_case "fleet: route, cache on owner, topology = ownership map" `Slow
      t_fleet_end_to_end;
    Alcotest.test_case "router: unreachable shard yields typed keyed errors" `Slow
      t_router_dead_worker_typed_errors;
    Alcotest.test_case "histogram: quantiles, exact extremes, validation" `Quick
      t_histogram_quantiles;
    Alcotest.test_case "histogram: merge agrees with the unsplit stream" `Quick
      t_histogram_merge_deterministic;
    t_histogram_merge_splits;
    t_histogram_quantile_monotone;
    t_histogram_quantiles_bounded;
    Alcotest.test_case "loadgen: schedule is a pure function of the config" `Quick
      t_loadgen_schedule_deterministic;
    Alcotest.test_case "loadgen: hit ratio shapes the key population" `Quick
      t_loadgen_mix_respects_ratio;
    Alcotest.test_case "loadgen: a fleet run measures every request" `Slow
      t_loadgen_against_fleet;
  ]
