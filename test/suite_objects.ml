(* Tests for the sequential object specifications, the atomic oracle, and
   the linearizability checker. *)

open Lowerbound

let value = Alcotest.testable Value.pp Value.equal

let apply_all spec ops = Spec.run_sequential spec ops

(* ---- counters ---- *)

let test_fetch_inc () =
  let spec = Counters.fetch_inc ~bits:62 in
  let responses, final = apply_all spec [ Value.Unit; Value.Unit; Value.Unit ] in
  Alcotest.(check (list int)) "responses are old values" [ 0; 1; 2 ]
    (List.map Value.to_int responses);
  Alcotest.check value "final" (Value.Int 3) final

let test_fetch_inc_wraps () =
  let spec = Counters.fetch_inc ~bits:2 in
  let responses, final = apply_all spec [ Value.Unit; Value.Unit; Value.Unit; Value.Unit ] in
  Alcotest.(check (list int)) "wraps mod 4" [ 0; 1; 2; 3 ] (List.map Value.to_int responses);
  Alcotest.check value "wrapped to 0" (Value.Int 0) final

let test_fetch_inc_bad_bits () =
  Alcotest.check_raises "bits 63" (Invalid_argument "Counters: bits = 63 outside [1, 62]")
    (fun () -> ignore (Counters.fetch_inc ~bits:63))

let test_fetch_add () =
  let spec = Counters.fetch_add ~bits:8 in
  let responses, final = apply_all spec [ Value.Int 200; Value.Int 100 ] in
  Alcotest.(check (list int)) "old values" [ 0; 200 ] (List.map Value.to_int responses);
  Alcotest.check value "wraps mod 256" (Value.Int 44) final

let test_read_inc () =
  let spec = Counters.read_inc ~bits:62 in
  let responses, final =
    apply_all spec [ Counters.op_read; Counters.op_inc; Counters.op_inc; Counters.op_read ]
  in
  (match responses with
  | [ r1; a1; a2; r2 ] ->
    Alcotest.check value "read 0" (Value.Int 0) r1;
    Alcotest.check value "inc acks" Value.Unit a1;
    Alcotest.check value "inc acks" Value.Unit a2;
    Alcotest.check value "read 2" (Value.Int 2) r2
  | _ -> Alcotest.fail "shape");
  Alcotest.check value "final" (Value.Int 2) final

(* ---- bitwise ---- *)

let test_fetch_and () =
  let spec = Bitwise.fetch_and ~bits:8 in
  let mask = Value.Bits (Bitvec.of_int ~width:8 0b11111110) in
  let responses, final = apply_all spec [ mask; mask ] in
  (match List.map Value.to_bits responses with
  | [ r1; r2 ] ->
    Alcotest.(check bool) "first sees all ones" true (Bitvec.equal r1 (Bitvec.ones 8));
    Alcotest.(check bool) "second sees bit cleared" false (Bitvec.get r2 0)
  | _ -> Alcotest.fail "shape");
  Alcotest.(check bool) "final bit 0 clear" false (Bitvec.get (Value.to_bits final) 0)

let test_fetch_or_int_operand () =
  let spec = Bitwise.fetch_or ~bits:8 in
  let responses, final = apply_all spec [ Value.Int 0b101; Value.Int 0b010 ] in
  Alcotest.(check int) "first old" 0
    (Option.get (Bitvec.to_int_opt (Value.to_bits (List.hd responses))));
  Alcotest.(check int) "final" 0b111 (Option.get (Bitvec.to_int_opt (Value.to_bits final)))

let test_fetch_complement () =
  let spec = Bitwise.fetch_complement ~bits:8 in
  let _, final = apply_all spec [ Value.Int 3; Value.Int 3; Value.Int 5 ] in
  let v = Value.to_bits final in
  Alcotest.(check bool) "bit 3 flipped twice" false (Bitvec.get v 3);
  Alcotest.(check bool) "bit 5 flipped once" true (Bitvec.get v 5)

let test_fetch_multiply () =
  let spec = Bitwise.fetch_multiply ~bits:8 in
  let responses, final = apply_all spec [ Value.Int 2; Value.Int 2; Value.Int 2 ] in
  Alcotest.(check (list int)) "powers of two" [ 1; 2; 4 ]
    (List.map (fun r -> Option.get (Bitvec.to_int_opt (Value.to_bits r))) responses);
  Alcotest.(check int) "final 8" 8 (Option.get (Bitvec.to_int_opt (Value.to_bits final)))

let test_bitwise_width_mismatch () =
  let spec = Bitwise.fetch_and ~bits:8 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitwise: operand width 9 does not match object width 8") (fun () ->
      ignore (spec.Spec.apply spec.Spec.init (Value.Bits (Bitvec.ones 9))))

(* ---- containers ---- *)

let test_queue_fifo () =
  let spec = Containers.queue in
  let responses, final =
    apply_all spec
      [
        Containers.op_enq (Value.Int 1);
        Containers.op_enq (Value.Int 2);
        Containers.op_deq;
        Containers.op_deq;
        Containers.op_deq;
      ]
  in
  (match responses with
  | [ _; _; d1; d2; d3 ] ->
    Alcotest.check value "fifo 1" (Value.Int 1) d1;
    Alcotest.check value "fifo 2" (Value.Int 2) d2;
    Alcotest.check value "empty" (Value.Str "empty") d3
  | _ -> Alcotest.fail "shape");
  Alcotest.check value "final empty" (Value.List []) final

let test_stack_lifo () =
  let spec = Containers.stack in
  let responses, _ =
    apply_all spec
      [
        Containers.op_push (Value.Int 1);
        Containers.op_push (Value.Int 2);
        Containers.op_pop;
        Containers.op_pop;
        Containers.op_pop;
      ]
  in
  match responses with
  | [ _; _; p1; p2; p3 ] ->
    Alcotest.check value "lifo 2" (Value.Int 2) p1;
    Alcotest.check value "lifo 1" (Value.Int 1) p2;
    Alcotest.check value "empty" (Value.Str "empty") p3
  | _ -> Alcotest.fail "shape"

let test_preloaded_containers () =
  let q = Containers.queue_with_items 3 in
  let responses, _ = apply_all q [ Containers.op_deq; Containers.op_deq; Containers.op_deq ] in
  Alcotest.(check (list int)) "queue order 1..3" [ 1; 2; 3 ] (List.map Value.to_int responses);
  let s = Containers.stack_with_items 3 in
  let responses, _ = apply_all s [ Containers.op_pop; Containers.op_pop; Containers.op_pop ] in
  Alcotest.(check (list int)) "stack pops 1..3 (n at bottom)" [ 1; 2; 3 ]
    (List.map Value.to_int responses)

(* ---- misc types ---- *)

let test_swap_object () =
  let spec = Misc_types.swap_object ~init:(Value.Int 0) in
  let responses, final = apply_all spec [ Value.Int 5; Value.Int 9 ] in
  Alcotest.(check (list int)) "old values" [ 0; 5 ] (List.map Value.to_int responses);
  Alcotest.check value "final" (Value.Int 9) final

let test_test_and_set () =
  let spec = Misc_types.test_and_set in
  let responses, _ =
    apply_all spec [ Misc_types.op_test_set; Misc_types.op_test_set; Misc_types.op_reset ]
  in
  match responses with
  | [ r1; r2; r3 ] ->
    Alcotest.check value "first sees false" (Value.Bool false) r1;
    Alcotest.check value "second sees true" (Value.Bool true) r2;
    Alcotest.check value "reset acks" Value.Unit r3
  | _ -> Alcotest.fail "shape"

let test_compare_and_swap_spec () =
  let spec = Misc_types.compare_and_swap ~init:(Value.Int 0) in
  let responses, final =
    apply_all spec
      [
        Misc_types.op_cas ~expected:(Value.Int 0) ~new_:(Value.Int 1);
        Misc_types.op_cas ~expected:(Value.Int 0) ~new_:(Value.Int 2);
        Misc_types.op_cas ~expected:(Value.Int 1) ~new_:(Value.Int 3);
      ]
  in
  (match responses with
  | [ r1; r2; r3 ] ->
    Alcotest.check value "first wins" (Value.pair (Value.bool true) (Value.Int 0)) r1;
    Alcotest.check value "second fails" (Value.pair (Value.bool false) (Value.Int 1)) r2;
    Alcotest.check value "third wins" (Value.pair (Value.bool true) (Value.Int 1)) r3
  | _ -> Alcotest.fail "shape");
  Alcotest.check value "final" (Value.Int 3) final

let test_consensus () =
  let spec = Misc_types.consensus in
  let responses, _ =
    apply_all spec [ Misc_types.op_propose (Value.Int 5); Misc_types.op_propose (Value.Int 9) ]
  in
  Alcotest.(check (list int)) "first proposal decides" [ 5; 5 ] (List.map Value.to_int responses)

let test_snapshot () =
  let spec = Misc_types.snapshot ~n:3 in
  let responses, final =
    apply_all spec
      [
        Misc_types.op_scan;
        Misc_types.op_update ~segment:1 (Value.Str "x");
        Misc_types.op_scan;
        Misc_types.op_update ~segment:0 (Value.Int 7);
        Misc_types.op_scan;
      ]
  in
  (match responses with
  | [ s1; u1; s2; _; s3 ] ->
    Alcotest.check value "initial scan" (Value.List [ Value.Unit; Value.Unit; Value.Unit ]) s1;
    Alcotest.check value "update acks" Value.Unit u1;
    Alcotest.check value "scan sees update" (Value.List [ Value.Unit; Value.Str "x"; Value.Unit ]) s2;
    Alcotest.check value "scan sees both" (Value.List [ Value.Int 7; Value.Str "x"; Value.Unit ]) s3
  | _ -> Alcotest.fail "shape");
  Alcotest.check value "final state" (Value.List [ Value.Int 7; Value.Str "x"; Value.Unit ]) final;
  Alcotest.check_raises "segment range" (Invalid_argument "snapshot: segment 3 out of range")
    (fun () -> ignore (spec.Spec.apply spec.Spec.init (Misc_types.op_update ~segment:3 Value.Unit)))

(* ---- atomic ---- *)

let test_atomic () =
  let o = Atomic.create (Counters.fetch_inc ~bits:62) in
  Alcotest.check value "first" (Value.Int 0) (Atomic.apply o Value.Unit);
  Alcotest.check value "second" (Value.Int 1) (Atomic.apply o Value.Unit);
  Alcotest.(check int) "applied" 2 (Atomic.applied o);
  Alcotest.check value "state" (Value.Int 2) (Atomic.state o)

(* ---- linearizability checker ---- *)

let e ~pid ~op ~resp ~inv ~res = History.entry ~pid ~op ~response:resp ~invoked:inv ~responded:res

let test_lin_sequential_ok () =
  let spec = Counters.fetch_inc ~bits:62 in
  let h =
    [
      e ~pid:0 ~op:Value.Unit ~resp:(Value.Int 0) ~inv:1 ~res:2;
      e ~pid:1 ~op:Value.Unit ~resp:(Value.Int 1) ~inv:3 ~res:4;
    ]
  in
  Alcotest.(check bool) "sequential ok" true (History.is_linearizable spec h)

let test_lin_sequential_wrong_order () =
  let spec = Counters.fetch_inc ~bits:62 in
  let h =
    [
      (* The later operation claims the earlier response: impossible. *)
      e ~pid:0 ~op:Value.Unit ~resp:(Value.Int 1) ~inv:1 ~res:2;
      e ~pid:1 ~op:Value.Unit ~resp:(Value.Int 0) ~inv:3 ~res:4;
    ]
  in
  Alcotest.(check bool) "rejected" false (History.is_linearizable spec h)

let test_lin_concurrent_either_order () =
  let spec = Counters.fetch_inc ~bits:62 in
  (* Two overlapping increments: responses 1 then 0 are fine because they
     were concurrent. *)
  let h =
    [
      e ~pid:0 ~op:Value.Unit ~resp:(Value.Int 1) ~inv:1 ~res:10;
      e ~pid:1 ~op:Value.Unit ~resp:(Value.Int 0) ~inv:2 ~res:9;
    ]
  in
  Alcotest.(check bool) "concurrent reorder ok" true (History.is_linearizable spec h)

let test_lin_duplicate_response_rejected () =
  let spec = Counters.fetch_inc ~bits:62 in
  let h =
    [
      e ~pid:0 ~op:Value.Unit ~resp:(Value.Int 0) ~inv:1 ~res:10;
      e ~pid:1 ~op:Value.Unit ~resp:(Value.Int 0) ~inv:2 ~res:9;
    ]
  in
  Alcotest.(check bool) "duplicate responses rejected" false (History.is_linearizable spec h)

let test_lin_queue_witness () =
  let spec = Containers.queue in
  let h =
    [
      e ~pid:0 ~op:(Containers.op_enq (Value.Int 7)) ~resp:Value.Unit ~inv:1 ~res:4;
      e ~pid:1 ~op:Containers.op_deq ~resp:(Value.Int 7) ~inv:2 ~res:5;
    ]
  in
  match History.linearization spec h with
  | Some [ first; second ] ->
    Alcotest.(check int) "enq first" 0 first.History.pid;
    Alcotest.(check int) "deq second" 1 second.History.pid
  | Some _ | None -> Alcotest.fail "expected a 2-entry witness"

let test_lin_queue_deq_before_enq_rejected () =
  let spec = Containers.queue in
  let h =
    [
      (* Dequeue strictly precedes the enqueue in real time but returns its
         value. *)
      e ~pid:1 ~op:Containers.op_deq ~resp:(Value.Int 7) ~inv:1 ~res:2;
      e ~pid:0 ~op:(Containers.op_enq (Value.Int 7)) ~resp:Value.Unit ~inv:3 ~res:4;
    ]
  in
  Alcotest.(check bool) "real-time order enforced" false (History.is_linearizable spec h)

let test_lin_empty_history () =
  Alcotest.(check bool) "empty ok" true
    (History.is_linearizable (Counters.fetch_inc ~bits:62) [])

let test_entry_validation () =
  Alcotest.check_raises "responded < invoked"
    (Invalid_argument "History.entry: responded before invoked") (fun () ->
      ignore (e ~pid:0 ~op:Value.Unit ~resp:Value.Unit ~inv:5 ~res:4))

(* Property: histories generated by the atomic oracle under random
   interleavings of invocation order are always linearizable. *)
let prop_atomic_histories_linearizable =
  let open QCheck in
  let arb = make ~print:string_of_int Gen.int in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"atomic oracle histories linearizable" arb (fun seed ->
         let st = Random.State.make [| seed |] in
         let spec = Counters.fetch_inc ~bits:62 in
         let o = Atomic.create spec in
         let clock = ref 0 in
         let entries =
           List.init 6 (fun pid ->
               incr clock;
               let invoked = !clock in
               let response = Atomic.apply o Value.Unit in
               (* Random extra delay before the response is visible. *)
               clock := !clock + 1 + Random.State.int st 3;
               e ~pid ~op:Value.Unit ~resp:response ~inv:invoked ~res:!clock)
         in
         History.is_linearizable spec entries))

let suite =
  [
    Alcotest.test_case "fetch&inc" `Quick test_fetch_inc;
    Alcotest.test_case "fetch&inc wraps" `Quick test_fetch_inc_wraps;
    Alcotest.test_case "fetch&inc bad bits" `Quick test_fetch_inc_bad_bits;
    Alcotest.test_case "fetch&add" `Quick test_fetch_add;
    Alcotest.test_case "read+inc" `Quick test_read_inc;
    Alcotest.test_case "fetch&and" `Quick test_fetch_and;
    Alcotest.test_case "fetch&or int operand" `Quick test_fetch_or_int_operand;
    Alcotest.test_case "fetch&complement" `Quick test_fetch_complement;
    Alcotest.test_case "fetch&multiply" `Quick test_fetch_multiply;
    Alcotest.test_case "bitwise width mismatch" `Quick test_bitwise_width_mismatch;
    Alcotest.test_case "queue FIFO" `Quick test_queue_fifo;
    Alcotest.test_case "stack LIFO" `Quick test_stack_lifo;
    Alcotest.test_case "preloaded containers" `Quick test_preloaded_containers;
    Alcotest.test_case "swap object" `Quick test_swap_object;
    Alcotest.test_case "test&set" `Quick test_test_and_set;
    Alcotest.test_case "compare&swap spec" `Quick test_compare_and_swap_spec;
    Alcotest.test_case "consensus" `Quick test_consensus;
    Alcotest.test_case "snapshot" `Quick test_snapshot;
    Alcotest.test_case "atomic oracle" `Quick test_atomic;
    Alcotest.test_case "lin: sequential ok" `Quick test_lin_sequential_ok;
    Alcotest.test_case "lin: wrong order rejected" `Quick test_lin_sequential_wrong_order;
    Alcotest.test_case "lin: concurrent reorder ok" `Quick test_lin_concurrent_either_order;
    Alcotest.test_case "lin: duplicate responses rejected" `Quick
      test_lin_duplicate_response_rejected;
    Alcotest.test_case "lin: queue witness" `Quick test_lin_queue_witness;
    Alcotest.test_case "lin: real-time enforced" `Quick test_lin_queue_deq_before_enq_rejected;
    Alcotest.test_case "lin: empty history" `Quick test_lin_empty_history;
    Alcotest.test_case "entry validation" `Quick test_entry_validation;
    prop_atomic_histories_linearizable;
  ]
