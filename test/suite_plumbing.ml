(* Small-surface tests for the plumbing helpers that larger suites use
   indirectly: Op classification, Round accessors, Engine validation,
   Explore run predicates, and the pretty-printers (smoke: they must not
   raise and must mention the key facts). *)

open Lowerbound
open Program.Syntax

(* ---- Op ---- *)

let test_op_kind_and_registers () =
  Alcotest.(check bool) "ll read" true (Op.kind (Op.Ll 3) = Op.Read);
  Alcotest.(check bool) "validate read" true (Op.kind (Op.Validate 3) = Op.Read);
  Alcotest.(check bool) "swap kind" true (Op.kind (Op.Swap (1, Value.Unit)) = Op.Swap_kind);
  Alcotest.(check bool) "sc kind" true (Op.kind (Op.Sc (1, Value.Unit)) = Op.Sc_kind);
  Alcotest.(check bool) "move kind" true (Op.kind (Op.Move (1, 2)) = Op.Move_kind);
  Alcotest.(check (list int)) "move registers" [ 1; 2 ] (Op.registers (Op.Move (1, 2)));
  Alcotest.(check (list int)) "sc registers" [ 4 ] (Op.registers (Op.Sc (4, Value.Unit)));
  Alcotest.(check int) "move target is dst" 2 (Op.target (Op.Move (1, 2)));
  Alcotest.(check int) "ll target" 7 (Op.target (Op.Ll 7))

let test_op_response_accessors () =
  Alcotest.(check bool) "value_of Value" true
    (Value.equal (Op.value_of (Op.Value (Value.Int 3))) (Value.Int 3));
  Alcotest.(check bool) "value_of Flagged" true
    (Value.equal (Op.value_of (Op.Flagged (false, Value.Str "x"))) (Value.Str "x"));
  Alcotest.(check bool) "flag_of" false (Op.flag_of (Op.Flagged (false, Value.Unit)));
  Alcotest.check_raises "value_of Ack" (Invalid_argument "Op.value_of: Ack carries no value")
    (fun () -> ignore (Op.value_of Op.Ack));
  Alcotest.check_raises "flag_of Value" (Invalid_argument "Op.flag_of: response carries no flag")
    (fun () -> ignore (Op.flag_of (Op.Value Value.Unit)))

let test_op_pp () =
  Alcotest.(check string) "pp ll" "LL(R3)" (Format.asprintf "%a" Op.pp_invocation (Op.Ll 3));
  Alcotest.(check string) "pp move" "move(R1, R2)"
    (Format.asprintf "%a" Op.pp_invocation (Op.Move (1, 2)));
  Alcotest.(check string) "pp ack" "ack" (Format.asprintf "%a" Op.pp_response Op.Ack)

(* ---- Round accessors ---- *)

let sample_run () =
  let program_of = function
    | 0 ->
      let* _ = Program.swap 0 (Value.Int 1) in
      Program.return 0
    | 1 ->
      let* _ = Program.swap 0 (Value.Int 2) in
      Program.return 0
    | _ ->
      let* _ = Program.ll 0 in
      let* ok = Program.sc_flag 0 (Value.Int 9) in
      Program.return (if ok then 1 else 0)
  in
  All_run.execute ~n:3 ~program_of ~inits:[ (0, Value.Int 0) ] ~max_rounds:5 ()

let test_round_accessors () =
  let run = sample_run () in
  let r1 = All_run.round run 1 in
  (* Round 1: p2's LL (phase 2) then p0, p1 swaps (phase 4) in id order. *)
  Alcotest.(check (list int)) "swappers in order" [ 0; 1 ] (Round.swappers r1 ~reg:0);
  Alcotest.(check int) "phase 2 count" 1 (List.length (Round.events_in_phase r1 2));
  Alcotest.(check int) "phase 4 count" 2 (List.length (Round.events_in_phase r1 4));
  Alcotest.(check (option int)) "no successful SC round 1" None (Round.successful_sc r1 ~reg:0);
  (* Round 2: p2's SC — it fails because the swaps invalidated its link. *)
  let r2 = All_run.round run 2 in
  Alcotest.(check (option int)) "SC failed" None (Round.successful_sc r2 ~reg:0);
  Alcotest.(check int) "p2 lost" 0 (List.assoc 2 run.All_run.results);
  Alcotest.check_raises "unknown pid" (Invalid_argument "Round.obs: unknown pid 9") (fun () ->
      ignore (Round.obs r1 9))

let test_all_run_round_bounds () =
  let run = sample_run () in
  Alcotest.check_raises "round 0" (Invalid_argument "All_run.round: no round 0") (fun () ->
      ignore (All_run.round run 0));
  Alcotest.check_raises "beyond" (Invalid_argument "All_run.round: no round 99") (fun () ->
      ignore (All_run.round run 99))

(* ---- Explore helpers ---- *)

let test_steppers_before_first_one () =
  let run =
    {
      Explore.events =
        [
          Explore.Stepped (0, Op.Ll 0, Op.Value Value.Unit);
          Explore.Returned (0, 0);
          Explore.Stepped (1, Op.Ll 0, Op.Value Value.Unit);
          Explore.Returned (1, 1);
        ];
      results = [ (0, 0); (1, 1) ];
    }
  in
  (match Explore.steppers_before_first_one run with
  | Some stepped -> Alcotest.(check bool) "both stepped" true (Ids.equal stepped (Ids.of_list [ 0; 1 ]))
  | None -> Alcotest.fail "expected Some");
  let no_one = { Explore.events = [ Explore.Returned (0, 0) ]; results = [ (0, 0) ] } in
  Alcotest.(check bool) "none returned 1" true
    (Explore.steppers_before_first_one no_one = None)

let test_wakeup_ok_cases () =
  let stepped pid = Explore.Stepped (pid, Op.Ll 0, Op.Value Value.Unit) in
  let good =
    {
      Explore.events = [ stepped 0; stepped 1; Explore.Returned (0, 1); Explore.Returned (1, 0) ];
      results = [ (0, 1); (1, 0) ];
    }
  in
  Alcotest.(check bool) "good run" true (Explore.wakeup_ok ~n:2 good);
  let premature =
    {
      Explore.events = [ stepped 0; Explore.Returned (0, 1); stepped 1; Explore.Returned (1, 0) ];
      results = [ (0, 1); (1, 0) ];
    }
  in
  Alcotest.(check bool) "premature 1" false (Explore.wakeup_ok ~n:2 premature);
  let nobody =
    {
      Explore.events = [ stepped 0; stepped 1; Explore.Returned (0, 0); Explore.Returned (1, 0) ];
      results = [ (0, 0); (1, 0) ];
    }
  in
  Alcotest.(check bool) "nobody returned 1" false (Explore.wakeup_ok ~n:2 nobody);
  let bad_value = { good with Explore.results = [ (0, 1); (1, 7) ] } in
  Alcotest.(check bool) "bad return value" false (Explore.wakeup_ok ~n:2 bad_value)

(* ---- pretty-printer smoke ---- *)

let contains = Astring_contains.contains

let test_pp_smoke () =
  let run = sample_run () in
  let round_str = Format.asprintf "%a" Round.pp (All_run.round run 1) in
  Alcotest.(check bool) "round pp mentions swap" true (contains round_str "swap");
  let report = Lowerbound.analyze_entry Corpus.naive ~n:4 ~max_rounds:100 in
  let report_str = Format.asprintf "%a" Lower_bound.pp_report report in
  Alcotest.(check bool) "report mentions winner" true (contains report_str "winner");
  Alcotest.(check bool) "report mentions bound" true (contains report_str "bound met");
  let profile_str =
    let m = Memory.create ~log:true () in
    ignore (Memory.apply m ~pid:0 (Op.Ll 0));
    Format.asprintf "%a" Profile.pp (Profile.of_memory m)
  in
  Alcotest.(check bool) "profile mentions registers" true (contains profile_str "top registers")

(* ---- Layout.reserve_tail ---- *)

let test_reserve_tail () =
  let l = Layout.create () in
  let a = Layout.alloc l ~init:Value.Unit in
  let base = Layout.reserve_tail l in
  Alcotest.(check int) "tail after allocs" (a + 1) base;
  Alcotest.check_raises "closed" (Invalid_argument "Layout.alloc: layout closed by reserve_tail")
    (fun () -> ignore (Layout.alloc l ~init:Value.Unit))

let suite =
  [
    Alcotest.test_case "op kinds and registers" `Quick test_op_kind_and_registers;
    Alcotest.test_case "op response accessors" `Quick test_op_response_accessors;
    Alcotest.test_case "op pretty-printing" `Quick test_op_pp;
    Alcotest.test_case "round accessors" `Quick test_round_accessors;
    Alcotest.test_case "all-run round bounds" `Quick test_all_run_round_bounds;
    Alcotest.test_case "steppers before first 1" `Quick test_steppers_before_first_one;
    Alcotest.test_case "wakeup_ok cases" `Quick test_wakeup_ok_cases;
    Alcotest.test_case "pretty-printer smoke" `Quick test_pp_smoke;
    Alcotest.test_case "layout reserve_tail" `Quick test_reserve_tail;
  ]
