(* Tests for the conformance subsystem: typed histories with pending
   operations, the Wing-Gong linearizability checker, the program-rewrite
   mutation engine, the ddmin shrinker, and the schedule fuzzer built on
   top of all four. *)

open Lowerbound

let fetch_inc =
  match Schedule_fuzz.find_type "fetch-inc" with
  | Some ot -> ot
  | None -> Alcotest.fail "fetch-inc object type missing"

let herlihy =
  match Conformance.find_construction "herlihy" with
  | Some c -> c
  | None -> Alcotest.fail "herlihy construction missing"

let inc = Value.unit

let completed ?(ghost = false) ~pid ~seq ~invoked ~responded response =
  {
    Conf_history.pid;
    seq;
    op = inc;
    invoked;
    outcome = Conf_history.Completed { response; responded };
    ghost;
  }

let pending ?(ghost = false) ~pid ~seq ~invoked () =
  { Conf_history.pid; seq; op = inc; invoked; outcome = Conf_history.Pending; ghost }

(* ---- history construction ---- *)

let test_history_of_events () =
  let e at event = { Event.at; event } in
  let events =
    [
      e 0 (Event.Op_invoked { pid = 0; seq = 0; op = inc });
      e 1 (Event.Op_invoked { pid = 1; seq = 0; op = inc });
      e 2 (Event.Op_completed { pid = 0; seq = 0; op = inc; response = Value.Int 0; cost = 3 });
      e 3 (Event.Op_failed { pid = 1; seq = 0; op = inc; reason = "gave up"; cost = 9 });
      e 4 (Event.Op_invoked { pid = 0; seq = 1; op = inc });
      (* An unrelated event between lifecycle events must be ignored. *)
      e 5 (Event.Round { index = 1 });
    ]
  in
  let h = Conf_history.of_events ~restarted:[ (1, 0) ] events in
  Alcotest.(check int) "four ops (one a restart ghost)" 4 (List.length h);
  Alcotest.(check int) "one completed" 1 (List.length (Conf_history.completed h));
  Alcotest.(check int) "three pending" 3 (List.length (Conf_history.pending h));
  let ghosts = List.filter (fun (o : Conf_history.op) -> o.Conf_history.ghost) h in
  (match ghosts with
  | [ g ] ->
    Alcotest.(check (pair int int)) "ghost doubles pid 1's lost attempt" (1, 0)
      (g.Conf_history.pid, g.Conf_history.seq)
  | _ -> Alcotest.failf "expected exactly one ghost, got %d" (List.length ghosts));
  (* Ascending invocation order is the representation invariant. *)
  let invocations = List.map (fun (o : Conf_history.op) -> o.Conf_history.invoked) h in
  Alcotest.(check bool) "sorted by invocation" true
    (List.sort compare invocations = invocations)

let test_history_result_event_agreement () =
  (* The same run, seen through the harness result and through the tracer's
     op-lifecycle events, must induce the same history shape: identical
     (pid, seq, completed?) multisets and identical responses. *)
  let spec = fetch_inc.Schedule_fuzz.spec_of ~n:2 in
  let tracer = Tracer.ring ~capacity:4096 () in
  let result =
    Tracer.with_tracer tracer (fun () ->
        Harness.run ~construction:herlihy ~spec ~n:2
          ~ops:(fun _pid -> [ inc; inc ])
          ~scheduler:Scheduler.round_robin ())
  in
  let from_result = Conf_history.of_result result in
  let from_events = Conf_history.of_events (Tracer.events tracer) in
  let shape h =
    List.map
      (fun (o : Conf_history.op) ->
        ( o.Conf_history.pid,
          o.Conf_history.seq,
          match o.Conf_history.outcome with
          | Conf_history.Completed { response; _ } -> Some response
          | Conf_history.Pending -> None ))
      h
    |> List.sort compare
  in
  Alcotest.(check bool) "result and events induce the same history" true
    (shape from_result = shape from_events);
  Alcotest.(check int) "all four ops completed" 4
    (List.length (Conf_history.completed from_result))

(* ---- the linearizability checker ---- *)

let spec2 = fetch_inc.Schedule_fuzz.spec_of ~n:2

let test_linearize_witness () =
  (* Two overlapping fetch&incs returning 0 and 1 — linearizable, and the
     witness must order the 0-response first. *)
  let h =
    [
      completed ~pid:0 ~seq:0 ~invoked:0 ~responded:5 (Value.Int 1);
      completed ~pid:1 ~seq:0 ~invoked:1 ~responded:4 (Value.Int 0);
    ]
  in
  match Linearize.check spec2 h with
  | Linearize.Linearizable { witness; _ } ->
    Alcotest.(check (list (pair int int)))
      "witness order: the 0-response linearizes first"
      [ (1, 0); (0, 0) ]
      (List.map (fun (s : Linearize.step) -> (s.Linearize.pid, s.Linearize.seq)) witness)
  | v -> Alcotest.failf "expected a witness, got %a" Linearize.pp_verdict v

let test_linearize_violation_certificate () =
  (* Two overlapping fetch&incs both returning 0: certified violation, and
     already the two-response prefix is bad. *)
  let h =
    [
      completed ~pid:0 ~seq:0 ~invoked:0 ~responded:4 (Value.Int 0);
      completed ~pid:1 ~seq:0 ~invoked:1 ~responded:5 (Value.Int 0);
    ]
  in
  (match Linearize.check spec2 h with
  | Linearize.Not_linearizable { bad_prefix; completed; _ } ->
    Alcotest.(check int) "both responses needed" 2 bad_prefix;
    Alcotest.(check int) "completed count" 2 completed
  | v -> Alcotest.failf "expected a violation, got %a" Linearize.pp_verdict v);
  Alcotest.(check bool) "is_linearizable agrees" false (Linearize.is_linearizable spec2 h)

let test_linearize_pending_takes_effect () =
  (* pid 1's op never responded (crash), yet pid 0 observed its increment:
     only linearizable because the pending op may have taken effect. *)
  let h =
    [
      pending ~pid:1 ~seq:0 ~invoked:0 ();
      completed ~pid:0 ~seq:0 ~invoked:1 ~responded:3 (Value.Int 1);
    ]
  in
  Alcotest.(check bool) "pending effect explains the response" true
    (Linearize.is_linearizable spec2 h);
  (* Without the pending op the same response is a violation. *)
  Alcotest.(check bool) "without it, violation" false
    (Linearize.is_linearizable spec2
       [ completed ~pid:0 ~seq:0 ~invoked:1 ~responded:3 (Value.Int 1) ])

let test_linearize_ghost_double_effect () =
  (* A crash-recovery restart: the completed retry returned 1, and another
     process saw the counter at 2.  Only the ghost occurrence (the lost
     first attempt also applied) explains both responses. *)
  let with_ghost =
    [
      pending ~ghost:true ~pid:1 ~seq:0 ~invoked:0 ();
      completed ~pid:1 ~seq:0 ~invoked:1 ~responded:4 (Value.Int 1);
      completed ~pid:0 ~seq:0 ~invoked:2 ~responded:5 (Value.Int 2);
    ]
  in
  Alcotest.(check bool) "ghost double effect is linearizable" true
    (Linearize.is_linearizable spec2 with_ghost);
  Alcotest.(check bool) "without the ghost it is not" false
    (Linearize.is_linearizable spec2 (List.tl with_ghost))

let test_linearize_budget () =
  match Linearize.check ~max_states:1 spec2
          [
            completed ~pid:0 ~seq:0 ~invoked:0 ~responded:3 (Value.Int 0);
            completed ~pid:1 ~seq:0 ~invoked:1 ~responded:4 (Value.Int 0);
          ]
  with
  | Linearize.Budget_exhausted { budget; _ } -> Alcotest.(check int) "budget echoed" 1 budget
  | v -> Alcotest.failf "expected budget exhaustion, got %a" Linearize.pp_verdict v

(* Differential: on complete histories the general checker and the simple
   one in Lb_objects.History agree, across a seeded corpus of random
   overlapping fetch&inc histories with perturbed responses. *)
let test_linearize_differential =
  let gen =
    QCheck.Gen.(
      let* n_ops = 1 -- 4 in
      let* raw =
        list_size (return n_ops)
          (let* pid = 0 -- 2 and* start = 0 -- 6 and* len = 1 -- 6 and* resp = 0 -- 3 in
           return (pid, start, len, resp))
      in
      return raw)
  in
  let print raw =
    String.concat ";"
      (List.map
         (fun (p, s, l, r) -> Printf.sprintf "pid%d@[%d,%d]->%d" p s (s + l) r)
         raw)
  in
  let arb = QCheck.make ~print gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"general checker = simple checker (complete histories)"
       arb (fun raw ->
         (* Distinct (pid, seq): number ops per pid in order. *)
         let seqs = Hashtbl.create 8 in
         let entries =
           List.map
             (fun (pid, start, len, resp) ->
               let seq = try Hashtbl.find seqs pid with Not_found -> 0 in
               Hashtbl.replace seqs pid (seq + 1);
               History.entry ~pid ~op:inc ~response:(Value.Int resp) ~invoked:start
                 ~responded:(start + len))
             raw
         in
         let simple = History.is_linearizable spec2 entries in
         let general = Linearize.is_linearizable spec2 (Linearize.of_entries entries) in
         simple = general))

(* ---- the mutation rewriter ---- *)

let test_mutate_rewrite () =
  (* Rewrite Sc -> Validate with the response post-mapped to a failure
     flag; interpret both programs against a stub memory and check the
     mutant saw the rewritten operation and the original continuation the
     post-mapped response. *)
  let open Program.Syntax in
  let program =
    let* v = Program.ll 0 in
    let* ok = Program.sc_flag 0 (Value.Int (Value.to_int v + 1)) in
    Program.return ok
  in
  let rule = function
    | Op.Sc (r, _) -> (Op.Validate r, fun resp -> Op.Flagged (false, Op.value_of resp))
    | inv -> (inv, Fun.id)
  in
  let interpret prog =
    let issued = ref [] in
    let rec go = function
      | Program.Return x -> (x, List.rev !issued)
      | Program.Toss k -> go (k 0)
      | Program.Op (inv, k) ->
        issued := inv :: !issued;
        let resp =
          match inv with
          | Op.Ll _ -> Op.Value (Value.Int 7)
          | Op.Sc _ | Op.Validate _ -> Op.Flagged (true, Value.Int 7)
          | Op.Swap _ -> Op.Value (Value.Int 7)
          | Op.Move _ | Op.Write _ | Op.Fence -> Op.Ack
        in
        go (k resp)
    in
    go prog
  in
  let original_result, original_ops = interpret program in
  let mutant_result, mutant_ops = interpret (Mutate.rewrite rule program) in
  Alcotest.(check bool) "original SC succeeds" true original_result;
  Alcotest.(check bool) "mutant sees the post-mapped failure" false mutant_result;
  (match original_ops with
  | [ Op.Ll 0; Op.Sc (0, _) ] -> ()
  | _ -> Alcotest.fail "original issues LL then SC");
  match mutant_ops with
  | [ Op.Ll 0; Op.Validate 0 ] -> ()
  | _ -> Alcotest.fail "mutant issues LL then Validate"

(* ---- the shrinker ---- *)

let test_shrink_minimize () =
  let test l = List.mem 3 l && List.mem 7 l in
  let input = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let out = Shrink.minimize ~test input in
  Alcotest.(check (list int)) "exactly the two needed elements" [ 3; 7 ] out;
  Alcotest.(check bool) "1-minimal" true (Shrink.is_one_minimal ~test out);
  Alcotest.(check (list int)) "deterministic" out (Shrink.minimize ~test input);
  (* Uninteresting input comes back unchanged. *)
  Alcotest.(check (list int)) "non-failing input unchanged" [ 1; 2 ]
    (Shrink.ddmin ~test [ 1; 2 ])

let test_shrink_one_minimality_general =
  (* For an arbitrary monotone-ish predicate (needs every member of a
     target set), minimize always lands on exactly the target set. *)
  let gen =
    QCheck.Gen.(
      let* size = 1 -- 25 in
      let* needed = list_size (1 -- 4) (0 -- 24) in
      return (size, List.sort_uniq compare needed))
  in
  let arb =
    QCheck.make
      ~print:(fun (s, need) ->
        Printf.sprintf "size=%d need=%s" s
          (String.concat "," (List.map string_of_int need)))
      gen
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"minimize finds the exact witness set" arb
       (fun (size, needed) ->
         let needed = List.filter (fun x -> x < size) needed in
         QCheck.assume (needed <> []);
         let input = List.init size Fun.id in
         let test l = List.for_all (fun x -> List.mem x l) needed in
         Shrink.minimize ~test input = needed))

(* ---- the fuzzer ---- *)

let test_fuzz_clean_cell_passes () =
  let cell =
    Schedule_fuzz.check_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"none"
      ~plan:Fault_plan.none ~n:3 ~ops:3 ~schedules:50 ~seed:11 ~max_states:200_000 ()
  in
  Alcotest.(check bool) "herlihy/fetch-inc conforms" true (Schedule_fuzz.cell_ok cell);
  Alcotest.(check int) "all schedules ran" 50 cell.Schedule_fuzz.runs;
  Alcotest.(check int) "all passed" 50 cell.Schedule_fuzz.passed;
  Alcotest.(check bool) "no counterexample" true
    (cell.Schedule_fuzz.counterexample = None)

let test_fuzz_replay_deterministic () =
  let run =
    Schedule_fuzz.run_once ~construction:herlihy ~ot:fetch_inc ~plan:Fault_plan.none ~n:3
      ~ops:3 ~seed:42 ~max_states:200_000 ~scheduler:(Scheduler.random ~seed:42) ()
  in
  Alcotest.(check bool) "random run passes" true (run.Schedule_fuzz.verdict = Schedule_fuzz.Pass);
  Alcotest.(check bool) "schedule recorded" true (run.Schedule_fuzz.schedule <> []);
  let replayed =
    Schedule_fuzz.replay ~construction:herlihy ~ot:fetch_inc ~plan:Fault_plan.none ~n:3
      ~ops:3 ~seed:42 ~max_states:200_000 run.Schedule_fuzz.schedule
  in
  Alcotest.(check bool) "replay reproduces the verdict" true
    (Schedule_fuzz.same_class run.Schedule_fuzz.verdict replayed.Schedule_fuzz.verdict);
  Alcotest.(check (list int)) "replay follows the recorded schedule"
    run.Schedule_fuzz.schedule replayed.Schedule_fuzz.schedule

let test_fuzz_kills_mutant () =
  (* The canonical mutant: dropping SC validation makes lost updates
     schedulable, the fuzzer finds one, and the shrunk counterexample is
     locally minimal and replays deterministically. *)
  let mutant =
    match Mutate.find "drop-sc-validation" with
    | Some m -> m
    | None -> Alcotest.fail "drop-sc-validation mutant missing"
  in
  let cell =
    Conformance.hunt_mutant ~construction:herlihy ~mutant ~n:4 ~ops:4 ~schedules:500
      ~seed:1 ~max_states:200_000 ()
  in
  Alcotest.(check bool) "mutant fired" true (cell.Conformance.fired > 0);
  match cell.Conformance.outcome with
  | Conformance.Killed { minimized_len; _ } ->
    Alcotest.(check bool) "killed with a non-empty minimized schedule" true
      (minimized_len > 0);
    Alcotest.(check bool) "gate counts it as killed" true (Conformance.mutant_killed cell);
    (* Determinism of the whole hunt, shrink included. *)
    let again =
      Conformance.hunt_mutant ~construction:herlihy ~mutant ~n:4 ~ops:4 ~schedules:500
        ~seed:1 ~max_states:200_000 ()
    in
    Alcotest.(check bool) "hunt is deterministic" true
      (again.Conformance.outcome = cell.Conformance.outcome)
  | Conformance.Survived { runs } -> Alcotest.failf "mutant survived %d runs" runs
  | Conformance.Not_applicable -> Alcotest.fail "mutant reported as not applicable"

let test_fuzz_shrunk_counterexample_certified () =
  (* Drive the shrinker through a real failing run and check its two
     certificates: local minimality and deterministic replay. *)
  let mutant =
    match Mutate.find "drop-sc-validation" with
    | Some m -> m
    | None -> Alcotest.fail "drop-sc-validation mutant missing"
  in
  let mutated, _fired = Mutate.wrap mutant herlihy in
  let rec first_failure seed =
    if seed > 500 then Alcotest.fail "no failing schedule in 500 seeds"
    else
      let run =
        Schedule_fuzz.run_once ~construction:mutated ~ot:fetch_inc ~plan:Fault_plan.none
          ~n:4 ~ops:4 ~seed ~max_states:200_000 ~scheduler:(Scheduler.random ~seed) ()
      in
      match run.Schedule_fuzz.verdict with
      | Schedule_fuzz.Fail _ -> (seed, run)
      | _ -> first_failure (seed + 1)
  in
  let seed, run = first_failure 1 in
  let cx =
    Schedule_fuzz.shrink_failure ~construction:mutated ~ot:fetch_inc ~plan:Fault_plan.none
      ~n:4 ~ops:4 ~seed ~max_states:200_000 run
  in
  Alcotest.(check bool) "minimized no longer than original" true
    (List.length cx.Schedule_fuzz.minimized <= List.length cx.Schedule_fuzz.original);
  Alcotest.(check bool) "locally minimal" true cx.Schedule_fuzz.locally_minimal;
  Alcotest.(check bool) "replay-deterministic" true cx.Schedule_fuzz.deterministic;
  Alcotest.(check bool) "minimized verdict is still a failure" true
    (match cx.Schedule_fuzz.minimized_verdict with Schedule_fuzz.Fail _ -> true | _ -> false)

let test_fuzz_crash_stop_in_flight_pending () =
  (* Regression: a crash-stopped pid's in-flight operation never responds,
     but a helping construction can complete it on the crashed process's
     behalf, making its effect visible in other responses.  The harness
     result must surface that operation (result.in_flight), the history
     must carry it as a pending occurrence, and the cell must conform —
     without it these runs were falsely flagged not-linearizable. *)
  let plan = Fault_plan.crash_stop ~pid:0 ~after:2 in
  let spec = fetch_inc.Schedule_fuzz.spec_of ~n:3 in
  let engine = Fault_engine.instantiate ~seed:1 plan in
  let layout = Layout.create () in
  let handle = herlihy.Iface.create layout ~n:3 spec in
  let memory = Memory.create () in
  Layout.install layout memory;
  Fault_engine.arm engine memory;
  let result =
    Harness.run_handle ~memory ~handle ~n:3
      ~ops:(fun _pid -> [ inc; inc ])
      ~scheduler:Scheduler.round_robin ~hooks:(Fault_engine.hooks engine) ()
  in
  Alcotest.(check bool) "crashed pid left an op in flight" true
    (List.exists (fun (i : Harness.op_in_flight) -> i.Harness.pid = 0) result.Harness.in_flight);
  let h = Conf_history.of_result result in
  Alcotest.(check bool) "the in-flight op is pending in the history" true
    (List.exists
       (fun (o : Conf_history.op) ->
         o.Conf_history.pid = 0 && (not o.Conf_history.ghost)
         && o.Conf_history.outcome = Conf_history.Pending)
       h);
  Alcotest.(check bool) "the faulted history is linearizable" true
    (Linearize.is_linearizable (fetch_inc.Schedule_fuzz.spec_of ~n:3) h);
  let cell =
    Schedule_fuzz.check_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"crash-stop"
      ~plan ~n:3 ~ops:2 ~schedules:30 ~seed:5 ~max_states:200_000 ()
  in
  Alcotest.(check bool) "crash-stop runs conform" true (Schedule_fuzz.cell_ok cell)

let test_fuzz_faulted_cell_not_failing () =
  (* Under a crash-recovery plan the checker must absorb restarts (ghost
     occurrences) without declaring violations. *)
  let plan = Fault_plan.crash_recover ~pid:0 ~after:3 ~restart:6 in
  let cell =
    Schedule_fuzz.check_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"crash-recover"
      ~plan ~n:3 ~ops:2 ~schedules:30 ~seed:5 ~max_states:200_000 ()
  in
  Alcotest.(check bool) "crash-recovery runs conform" true (Schedule_fuzz.cell_ok cell)

let test_conform_report_json () =
  let report =
    {
      Conformance.cells =
        [
          Schedule_fuzz.check_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"none"
            ~plan:Fault_plan.none ~n:2 ~ops:2 ~schedules:5 ~seed:3 ~max_states:200_000 ();
        ];
      mutants = [];
    }
  in
  Alcotest.(check bool) "report ok" true (Conformance.ok report);
  (* The JSON encoding round-trips through the printer/parser. *)
  let json = Conformance.json_of_report report in
  match Json.parse (Json.to_string json) with
  | Ok j -> Alcotest.(check bool) "JSON round-trip" true (j = json)
  | Error e -> Alcotest.failf "report JSON unparsable: %s" e

(* Satellite: the matrices fan their cells across Exec.Pool, and every
   cell is a pure function of (key, seed) with the pool preserving
   order — so the rendered report must be byte-identical at any job
   count.  This is what lets `lowerbound conform --jobs N` claim the
   same verdict as a sequential run. *)
let test_matrix_jobs_invariant () =
  let run jobs =
    let mutants =
      Conformance.mutation_matrix ~jobs ~constructions:[ herlihy ] ~n:2 ~ops:2 ~schedules:5
        ~seed:7 ~max_states:60_000 ()
    in
    let cells =
      Conformance.fuzz_matrix ~jobs ~constructions:[ herlihy ] ~types:[ fetch_inc ] ~n:2
        ~ops:2 ~schedules:5 ~seed:7 ~max_states:60_000 ()
    in
    Json.to_string (Conformance.json_of_report { Conformance.cells; mutants })
  in
  let sequential = run 1 in
  Alcotest.(check string) "jobs=3 report = sequential report" sequential (run 3);
  Alcotest.(check string) "jobs=0 (auto) report = sequential report" sequential (run 0)

(* ---- bounded-exhaustive certification ---- *)

let test_exhaustive_certifies_cell () =
  (* The whole in-bound schedule space of herlihy/fetch-inc at n=2 under
     the default pre-emption bound: every schedule passes, and the walk
     is deterministic, so the counts pin the exploration itself. *)
  let cert =
    Exhaustive.certify_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"none"
      ~plan:Fault_plan.none ~n:2 ~ops:1 ~seed:42 ~max_states:200_000 ()
  in
  Alcotest.(check bool) "cell certified" true (Exhaustive.cert_ok cert);
  Alcotest.(check int) "182 in-bound schedules" 182
    cert.Exhaustive.xc_stats.Sched_tree.schedules;
  Alcotest.(check int) "132 schedules elided by the bound" 132
    cert.Exhaustive.xc_stats.Sched_tree.elided;
  Alcotest.(check bool) "bound truncation reported" true
    (not (Sched_tree.exhaustive cert.Exhaustive.xc_stats));
  Alcotest.(check bool) "no counterexample" true
    (cert.Exhaustive.xc_counterexample = None)

let test_exhaustive_impure_plan_degrades () =
  (* A non-empty fault plan makes every step blocking: nothing commutes,
     the walk degrades to bounded enumeration — but still completes and
     still certifies (crash-stopped ops are pending, not violations). *)
  let plan = Fault_plan.crash_stop ~pid:0 ~after:2 in
  Alcotest.(check bool) "crash-stop plan is impure" false (Exhaustive.pure plan);
  let cert =
    Exhaustive.certify_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"crash-stop"
      ~plan ~n:2 ~ops:1 ~seed:42
      ~bounds:{ Sched_tree.no_bounds with preempt = Some 1 }
      ~max_states:200_000 ()
  in
  Alcotest.(check bool) "faulted cell certified" true (Exhaustive.cert_ok cert);
  Alcotest.(check bool) "walk ran" true (cert.Exhaustive.xc_stats.Sched_tree.schedules > 0)

let test_exhaustive_kills_mutants () =
  (* The exhaustive kill is a stronger claim than the fuzzer's: SOME
     in-bound schedule fails, found by systematic walk, not sampling. *)
  List.iter
    (fun name ->
      let mutant =
        match Mutate.find name with
        | Some m -> m
        | None -> Alcotest.failf "%s mutant missing" name
      in
      let mc =
        Exhaustive.certify_mutant ~construction:herlihy ~mutant ~n:3 ~ops:1 ~seed:42
          ~max_states:200_000 ()
      in
      Alcotest.(check bool) (name ^ " fired") true (mc.Exhaustive.xm_fired > 0);
      Alcotest.(check bool) (name ^ " killed in-bounds") true
        (Exhaustive.mutant_cert_killed mc);
      match mc.Exhaustive.xm_cert.Exhaustive.xc_counterexample with
      | None -> Alcotest.fail (name ^ ": killed but no counterexample")
      | Some cx ->
        Alcotest.(check bool) (name ^ ": counterexample is locally minimal") true
          cx.Schedule_fuzz.locally_minimal)
    [ "drop-sc-validation"; "stale-ll"; "lost-sc-write"; "lost-swap-write" ]

let test_exhaustive_report_json () =
  let report =
    {
      Exhaustive.certs =
        [
          Exhaustive.certify_cell ~construction:herlihy ~ot:fetch_inc ~plan_name:"none"
            ~plan:Fault_plan.none ~n:2 ~ops:1 ~seed:3
            ~bounds:{ Sched_tree.no_bounds with preempt = Some 1 }
            ~max_states:200_000 ();
        ];
      mutants = [];
    }
  in
  Alcotest.(check bool) "report ok" true (Exhaustive.ok report);
  let json = Exhaustive.json_of_report report in
  match Json.parse (Json.to_string json) with
  | Ok j -> Alcotest.(check bool) "JSON round-trip" true (j = json)
  | Error e -> Alcotest.failf "exhaustive report JSON unparsable: %s" e

let suite =
  [
    Alcotest.test_case "history: of_events lifecycle + ghosts" `Quick test_history_of_events;
    Alcotest.test_case "history: result and events agree" `Quick
      test_history_result_event_agreement;
    Alcotest.test_case "linearize: witness on overlap" `Quick test_linearize_witness;
    Alcotest.test_case "linearize: certified violation" `Quick
      test_linearize_violation_certificate;
    Alcotest.test_case "linearize: pending may take effect" `Quick
      test_linearize_pending_takes_effect;
    Alcotest.test_case "linearize: restart ghost double effect" `Quick
      test_linearize_ghost_double_effect;
    Alcotest.test_case "linearize: explicit budget exhaustion" `Quick test_linearize_budget;
    test_linearize_differential;
    Alcotest.test_case "mutate: rewrite swaps the operation" `Quick test_mutate_rewrite;
    Alcotest.test_case "shrink: ddmin + sweep minimize" `Quick test_shrink_minimize;
    test_shrink_one_minimality_general;
    Alcotest.test_case "fuzz: clean cell passes" `Quick test_fuzz_clean_cell_passes;
    Alcotest.test_case "fuzz: recorded schedule replays" `Quick test_fuzz_replay_deterministic;
    Alcotest.test_case "fuzz: drop-sc-validation is killed" `Slow test_fuzz_kills_mutant;
    Alcotest.test_case "fuzz: counterexample is minimal + deterministic" `Slow
      test_fuzz_shrunk_counterexample_certified;
    Alcotest.test_case "fuzz: crash-stopped op is pending, not a violation" `Quick
      test_fuzz_crash_stop_in_flight_pending;
    Alcotest.test_case "fuzz: crash-recovery plan conforms" `Quick
      test_fuzz_faulted_cell_not_failing;
    Alcotest.test_case "conform: report gate + JSON" `Quick test_conform_report_json;
    Alcotest.test_case "conform: matrices invariant under --jobs" `Slow
      test_matrix_jobs_invariant;
    Alcotest.test_case "exhaustive: clean cell certified, counts pinned" `Quick
      test_exhaustive_certifies_cell;
    Alcotest.test_case "exhaustive: impure plan degrades but certifies" `Quick
      test_exhaustive_impure_plan_degrades;
    Alcotest.test_case "exhaustive: every mutant killed in-bounds" `Slow
      test_exhaustive_kills_mutants;
    Alcotest.test_case "exhaustive: report gate + JSON" `Quick test_exhaustive_report_json;
  ]
