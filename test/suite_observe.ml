(* The observability layer: JSON codec, trace events, the ambient tracer,
   JSONL trace files, trace diffing, the metrics registry and BENCH
   artifacts.

   The two load-bearing properties:
   - tracing is an observer — a run with a tracer installed computes exactly
     what the same run computes untraced (verdicts, costs, responses);
   - traces are faithful artifacts — every event round-trips through JSONL
     bit-exactly, so the diff of two same-seed runs is empty and a
     cross-seed diff pinpoints the first divergence. *)

open Lowerbound

(* ---- generators ---- *)

let gen_bits =
  QCheck.Gen.(
    let* width = 1 -- 24 in
    let* bits = list_size (return width) bool in
    return
      (List.fold_left
         (fun (bv, i) b -> (Bitvec.set bv i b, i + 1))
         (Bitvec.zero width, 0) bits
      |> fst))

let gen_value =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        let leaf =
          oneof
            [
              return Value.unit;
              map Value.bool bool;
              map Value.int (map (fun k -> k - 500_000) (0 -- 1_000_000));
              map Value.str (string_size ~gen:printable (0 -- 12));
              map Value.bits gen_bits;
            ]
        in
        if size = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              (1, map2 Value.pair (self (size / 2)) (self (size / 2)));
              (1, map Value.list (list_size (0 -- 3) (self (size / 3))));
            ]))

let gen_invocation =
  QCheck.Gen.(
    let* reg = 0 -- 30 in
    oneof
      [
        return (Op.Ll reg);
        map (fun v -> Op.Sc (reg, v)) gen_value;
        return (Op.Validate reg);
        map (fun v -> Op.Swap (reg, v)) gen_value;
        map (fun dst -> Op.Move (reg, reg + 1 + dst)) (0 -- 5);
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Op.Value v) gen_value;
        map2 (fun b v -> Op.Flagged (b, v)) bool gen_value;
        return Op.Ack;
      ])

let gen_pids = QCheck.Gen.(list_size (0 -- 6) (0 -- 40))

let gen_event =
  QCheck.Gen.(
    oneof
      [
        (let* pid = 0 -- 40 and* invocation = gen_invocation and* response = gen_response
         and* spurious = bool in
         return (Event.Shared_access { pid; invocation; response; spurious }));
        (let* pid = 0 -- 40 and* idx = 0 -- 1000 and* outcome = 0 -- 1_000_000 in
         return (Event.Coin_toss { pid; idx; outcome }));
        (let* step = 0 -- 10_000 and* chosen = 0 -- 40 and* runnable = gen_pids in
         return (Event.Sched { step; chosen; runnable }));
        map (fun index -> Event.Round { index }) (1 -- 10_000);
        (let* pid = 0 -- 40 and* step = 0 -- 10_000 in
         return (Event.Crash { pid; step }));
        (let* pid = 0 -- 40 and* step = 0 -- 10_000 in
         return (Event.Recovery { pid; step }));
        (let* pid = 0 -- 40 and* seq = 0 -- 100 and* op = gen_value in
         return (Event.Op_invoked { pid; seq; op }));
        (let* pid = 0 -- 40 and* seq = 0 -- 100 and* op = gen_value
         and* response = gen_value and* cost = 0 -- 10_000 in
         return (Event.Op_completed { pid; seq; op; response; cost }));
        (let* pid = 0 -- 40 and* seq = 0 -- 100 and* op = gen_value
         and* reason = string_size ~gen:printable (0 -- 20) and* cost = 0 -- 10_000 in
         return (Event.Op_failed { pid; seq; op; reason; cost }));
        (let* outcome =
           oneofl [ Event.All_terminated; Event.Out_of_fuel; Event.Stalled ]
         and* steps = 0 -- 10_000
         and* ops = list_size (0 -- 6) (pair (0 -- 40) (0 -- 1000))
         and* unfinished = gen_pids in
         return (Event.Run_end { outcome; steps; ops; unfinished }));
      ])

let gen_stamped =
  QCheck.Gen.(
    let* at = 0 -- 1_000_000 and* event = gen_event in
    return { Event.at; event })

let pp_stamped_string e = Format.asprintf "%a" Event.pp_stamped e

let qcheck ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ---- JSON codec ---- *)

let test_json_roundtrip_cases () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 1.5;
      Json.Str "hello \"world\"\nwith\tescapes\x01 and \xc3\xa9";
      Json.Arr [ Json.Int 1; Json.Null; Json.Str "x" ];
      Json.Obj [ ("a", Json.Arr []); ("b", Json.Obj [ ("c", Json.Bool false) ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      match Json.parse s with
      | Ok j' -> Alcotest.(check bool) s true (Json.equal j j')
      | Error e -> Alcotest.failf "%s: parse error %s" s e)
    cases;
  (* Pretty output parses back to the same tree. *)
  let j = Json.Obj [ ("xs", Json.Arr [ Json.Int 1; Json.Int 2 ]); ("ok", Json.Bool true) ] in
  (match Json.parse (Json.to_string ~pretty:true j) with
  | Ok j' -> Alcotest.(check bool) "pretty round-trip" true (Json.equal j j')
  | Error e -> Alcotest.failf "pretty parse error %s" e);
  (* Unicode escapes decode to UTF-8. *)
  match Json.parse {|"éA"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escape" "\xc3\xa9A" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape did not parse to a string"

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{'a':1}" ]

let test_event_roundtrip =
  qcheck "event JSONL round-trip"
    (QCheck.make ~print:pp_stamped_string gen_stamped)
    (fun e ->
      match Event.of_json (Event.to_json e) with
      | Ok e' -> Event.equal_stamped e e'
      | Error msg -> QCheck.Test.fail_reportf "of_json: %s" msg)

let test_event_kinds () =
  Alcotest.(check (list string))
    "kinds"
    [ "access"; "toss"; "sched"; "round"; "crash"; "recovery"; "invoke"; "complete";
      "give-up"; "end"; "service" ]
    Event.kinds

(* ---- tracer ---- *)

let spurious_plan = Fault_plan.spurious_sc_rate 0.2

let certify_run () =
  Faults.run ~target:Adt_tree.construction ~plan:spurious_plan ~n:6 ~seed:3
    ~ops_per_process:2 ()

let report_fingerprint (r : Faults.report) =
  ( Faults.status_string r.Faults.status,
    r.Faults.total_shared_ops,
    r.Faults.spurious_injected,
    r.Faults.restarts,
    List.map
      (fun (s : Harness.op_stat) -> (s.Harness.pid, s.Harness.seq, s.Harness.cost, Value.to_string s.Harness.response))
      r.Faults.raw.Harness.stats )

let test_tracing_does_not_perturb () =
  let untraced = report_fingerprint (certify_run ()) in
  let tracer = Tracer.ring () in
  let traced = Tracer.with_tracer tracer (fun () -> report_fingerprint (certify_run ())) in
  Alcotest.(check bool) "identical verdicts and costs" true (untraced = traced);
  Alcotest.(check bool) "trace is non-empty" true (Tracer.emitted tracer > 0)

let test_tracer_off_is_inert () =
  Alcotest.(check bool) "inactive by default" false (Tracer.active ());
  Tracer.record (Event.Round { index = 1 });
  Alcotest.(check bool) "record without tracer is a no-op" true (Tracer.installed () = None)

let test_ring_capacity () =
  let tracer = Tracer.ring ~capacity:4 () in
  List.iter (fun i -> Tracer.emit tracer (Event.Round { index = i })) [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check int) "emitted" 6 (Tracer.emitted tracer);
  Alcotest.(check int) "dropped" 2 (Tracer.dropped tracer);
  let kept =
    List.map
      (fun (e : Event.stamped) ->
        match e.Event.event with Event.Round { index } -> index | _ -> -1)
      (Tracer.events tracer)
  in
  Alcotest.(check (list int)) "keeps the most recent" [ 3; 4; 5; 6 ] kept

let trace_of_seed seed =
  let tracer = Tracer.ring () in
  let (_ : Faults.report) =
    Tracer.with_tracer tracer (fun () ->
        Faults.run ~target:Adt_tree.construction ~plan:spurious_plan ~n:6 ~seed
          ~ops_per_process:2 ())
  in
  Tracer.events tracer

let test_trace_file_roundtrip () =
  let events = trace_of_seed 3 in
  Alcotest.(check bool) "recorded something" true (events <> []);
  let path = Filename.temp_file "lb-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_file.save path events;
      match Trace_file.load path with
      | Ok loaded ->
        Alcotest.(check int) "same length" (List.length events) (List.length loaded);
        Alcotest.(check bool) "bit-identical" true
          (List.for_all2 Event.equal_stamped events loaded)
      | Error msg -> Alcotest.failf "load: %s" msg)

let test_trace_file_load_error () =
  let path = Filename.temp_file "lb-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"at\":0,\"kind\":\"round\",\"index\":1}\nnot json\n";
      close_out oc;
      match Trace_file.load path with
      | Ok _ -> Alcotest.fail "corrupt line should be a hard error"
      | Error msg ->
        Alcotest.(check bool) "error names the line" true
          (Astring_contains.contains msg ":2:"))

let test_trace_diff () =
  let a = trace_of_seed 3 and b = trace_of_seed 3 and c = trace_of_seed 4 in
  Alcotest.(check bool) "same seed: empty diff" true (Trace_diff.compute a b = []);
  let entries = Trace_diff.compute a c in
  Alcotest.(check bool) "different seed: non-empty diff" true (entries <> []);
  (* Filtering to a kind neither trace lacks still diffs deterministically;
     filtering to an absent kind yields an empty diff. *)
  Alcotest.(check bool) "absent kind filters to empty" true
    (Trace_diff.compute ~kinds:[ "crash" ] a c = [])

let test_trace_diff_suffix () =
  let e i = { Event.at = i; event = Event.Round { index = i } } in
  match Trace_diff.compute [ e 0; e 1 ] [ e 0 ] with
  | [ Trace_diff.Only { side = Trace_diff.Left; index = 1; _ } ] -> ()
  | entries -> Alcotest.failf "unexpected diff: %d entries" (List.length entries)

(* A trace that stops exactly at the run-end marker agrees with one that
   captured the marker: the lone trailing Run_end surplus is a recorder
   boundary, not a divergence — on either side.  Anything more than that
   single marker (an extra event before it, or a marker plus a surplus)
   still diffs. *)
let test_trace_diff_run_end_boundary () =
  let round i = { Event.at = i; event = Event.Round { index = i } } in
  let run_end at =
    {
      Event.at;
      event = Event.Run_end { outcome = Event.All_terminated; steps = at; ops = []; unfinished = [] };
    }
  in
  let body = [ round 0; round 1 ] in
  Alcotest.(check bool) "left trailing run-end forgiven" true
    (Trace_diff.compute (body @ [ run_end 2 ]) body = []);
  Alcotest.(check bool) "right trailing run-end forgiven" true
    (Trace_diff.compute body (body @ [ run_end 2 ]) = []);
  Alcotest.(check bool) "divergence before the marker still reported" true
    (Trace_diff.compute (body @ [ run_end 2 ]) [ round 0; round 9 ] <> []);
  Alcotest.(check bool) "surplus beyond the marker still reported" true
    (Trace_diff.compute (body @ [ round 2; run_end 3 ]) body <> []);
  (* Equal traces that both end in the marker stay an empty diff. *)
  Alcotest.(check bool) "identical run-end-terminated traces agree" true
    (Trace_diff.compute (body @ [ run_end 2 ]) (body @ [ run_end 2 ]) = [])

(* ---- metrics ---- *)

let test_metrics_basics () =
  let reg = Metrics.create () in
  Metrics.incr reg "a";
  Metrics.incr ~by:4 reg "a";
  Alcotest.(check int) "counter" 5 (Metrics.counter_value reg "a");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value reg "zzz");
  Metrics.set_gauge reg "g" 2.5;
  Metrics.set_gauge reg "g" 7.0;
  Alcotest.(check (option (float 0.0))) "gauge last-write-wins" (Some 7.0)
    (Metrics.gauge_value reg "g");
  Metrics.declare_histogram reg "h" ~bounds:[ 1.0; 10.0 ];
  List.iter (Metrics.observe reg "h") [ 0.5; 5.0; 50.0 ];
  (match Metrics.histogram reg "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 3 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 55.5 h.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 0.5 h.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 50.0 h.Metrics.max;
    (* Two declared bounds plus the implicit +inf overflow bucket. *)
    Alcotest.(check (list int)) "bucket counts" [ 1; 1; 1 ]
      (List.map snd h.Metrics.buckets));
  Alcotest.(check (list string)) "names sorted" [ "a"; "g"; "h" ] (Metrics.names reg);
  Alcotest.check_raises "kind mismatch" (Invalid_argument "Metrics: \"a\" is not a gauge")
    (fun () -> Metrics.set_gauge reg "a" 1.0)

let test_metrics_isolation () =
  let reg = Metrics.create () in
  Metrics.with_registry reg (fun () -> Metrics.incr (Metrics.current ()) "x");
  Alcotest.(check int) "inner registry saw it" 1 (Metrics.counter_value reg "x");
  Alcotest.(check bool) "restored" true (Metrics.current () != reg);
  Metrics.reset reg;
  Alcotest.(check (list string)) "reset forgets" [] (Metrics.names reg)

let test_metrics_to_json () =
  let reg = Metrics.create () in
  Metrics.incr reg "c";
  Metrics.set_gauge reg "g" 1.5;
  Metrics.observe_int reg "h" 3;
  let j = Metrics.to_json reg in
  let field path =
    match Json.member path j with Some x -> x | None -> Alcotest.failf "missing %s" path
  in
  Alcotest.(check (option int)) "counter" (Some 1)
    (Option.bind (Json.member "c" (field "counters")) Json.to_int_opt);
  Alcotest.(check (option (float 0.0))) "gauge" (Some 1.5)
    (Option.bind (Json.member "g" (field "gauges")) Json.to_float_opt);
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "serialises and parses" true (Json.equal j j')
  | Error e -> Alcotest.failf "metrics json: %s" e

let arb_workload =
  QCheck.make
    ~print:(fun (n, k) -> Printf.sprintf "n=%d ops=%d" n k)
    QCheck.Gen.(pair (1 -- 6) (1 -- 3))

let test_histogram_matches_harness =
  qcheck ~count:40 "harness.op_cost histogram matches exact per-op costs" arb_workload
    (fun (n, ops_per_process) ->
      let reg = Metrics.create () in
      let result =
        Metrics.with_registry reg (fun () ->
            Harness.run ~construction:Adt_tree.construction
              ~spec:(Counters.fetch_inc ~bits:62) ~n
              ~ops:(fun _ -> List.init ops_per_process (fun _ -> Value.unit))
              ())
      in
      let costs = List.map (fun (s : Harness.op_stat) -> s.Harness.cost) result.Harness.stats in
      match Metrics.histogram reg "harness.op_cost" with
      | None -> QCheck.Test.fail_report "no harness.op_cost histogram"
      | Some h ->
        h.Metrics.count = List.length costs
        && h.Metrics.sum = float_of_int (List.fold_left ( + ) 0 costs)
        && (costs = [] || h.Metrics.max = float_of_int (List.fold_left max 0 costs))
        && Metrics.counter_value reg "harness.ops_completed" = List.length costs)

(* ---- BENCH artifacts ---- *)

let test_bench_out_append_read () =
  let dir = Filename.temp_file "lb-bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check bool) "fresh read is empty" true
        (Bench_out.read ~dir ~suite:"t" () = Ok []);
      let path1 = Bench_out.append ~dir ~suite:"t" ~meta:[ ("k", Json.Int 1) ] (Json.Str "a") in
      let (_ : string) = Bench_out.append ~dir ~suite:"t" (Json.Str "b") in
      Alcotest.(check string) "path" (Filename.concat dir "BENCH_t.json") path1;
      match Bench_out.read ~dir ~suite:"t" () with
      | Error e -> Alcotest.failf "read: %s" e
      | Ok snapshots ->
        Alcotest.(check int) "two snapshots" 2 (List.length snapshots);
        let datum s = Option.bind (Json.member "data" s) Json.to_str_opt in
        Alcotest.(check (list (option string))) "order preserved" [ Some "a"; Some "b" ]
          (List.map datum snapshots);
        Alcotest.(check (option int)) "meta spliced" (Some 1)
          (Option.bind (Json.member "k" (List.hd snapshots)) Json.to_int_opt);
        Alcotest.(check (option string)) "suite recorded" (Some "t")
          (Option.bind (Json.member "suite" (List.hd snapshots)) Json.to_str_opt))

let test_bench_out_corrupt_starts_fresh () =
  let dir = Filename.temp_file "lb-bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let oc = open_out (Bench_out.path ~dir ~suite:"t" ()) in
      output_string oc "not json at all";
      close_out oc;
      let (_ : string) = Bench_out.append ~dir ~suite:"t" (Json.Str "x") in
      match Bench_out.read ~dir ~suite:"t" () with
      | Ok [ s ] ->
        Alcotest.(check (option string)) "fresh trajectory" (Some "x")
          (Option.bind (Json.member "data" s) Json.to_str_opt)
      | Ok l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)
      | Error e -> Alcotest.failf "read: %s" e)

(* ---- the benchmark regression gate ---- *)

let test_bench_gate_regression_fails () =
  let baseline = [ ("fast", 100.0); ("slow", 100.0) ] in
  let current = [ ("fast", 110.0); ("slow", 200.0) ] in
  let verdict = Bench_gate.compare ~tolerance:0.30 ~baseline ~current in
  Alcotest.(check bool) "regression fails the gate" false (Bench_gate.ok verdict);
  (match verdict.Bench_gate.compared with
  | [ fast; slow ] ->
    Alcotest.(check bool) "within tolerance passes" false fast.Bench_gate.regressed;
    Alcotest.(check bool) "2x is a regression" true slow.Bench_gate.regressed;
    Alcotest.(check (float 1e-9)) "ratio" 2.0 slow.Bench_gate.ratio
  | _ -> Alcotest.fail "expected two comparisons");
  (* Speedups never fail, whatever the magnitude. *)
  let verdict = Bench_gate.compare ~tolerance:0.30 ~baseline ~current:[ ("fast", 1.0); ("slow", 1.0) ] in
  Alcotest.(check bool) "speedup passes" true (Bench_gate.ok verdict)

(* The tolerance boundary, as a property: a current reading of exactly
   baseline * (1 + tolerance) passes the gate, and nudging it past the
   boundary by a visible epsilon fails it — for arbitrary positive
   baselines and tolerances.  This is why the gate compares
   [current > baseline * (1 + tolerance)] multiplicatively instead of
   re-deriving the bound from the rounded ratio. *)
let t_bench_gate_tolerance_boundary =
  let arb =
    QCheck.make
      ~print:(fun (b, t) -> Printf.sprintf "baseline=%g tolerance=%g" b t)
      QCheck.Gen.(
        let* base = float_range 1e-3 1e12 and* tol = float_range 0.0 2.0 in
        return (base, tol))
  in
  qcheck ~count:500 "bench gate: exact tolerance passes, over it fails" arb
    (fun (base, tolerance) ->
      let boundary = base *. (1.0 +. tolerance) in
      let eps = boundary *. 0.01 in
      let at = Bench_gate.compare ~tolerance ~baseline:[ ("b", base) ] ~current:[ ("b", boundary) ]
      and over =
        Bench_gate.compare ~tolerance ~baseline:[ ("b", base) ]
          ~current:[ ("b", boundary +. eps) ]
      in
      Bench_gate.ok at && not (Bench_gate.ok over))

let test_bench_gate_added_benchmark_warns () =
  (* The satellite fix: a current benchmark with no baseline entry yet (a
     newly added one) must warn, not fail — otherwise adding a benchmark
     breaks CI until its baseline is committed. *)
  let baseline = [ ("old", 100.0) ] in
  let current = [ ("old", 100.0); ("service e5 cold request", 5.0e9) ] in
  let verdict = Bench_gate.compare ~tolerance:0.30 ~baseline ~current in
  Alcotest.(check bool) "new benchmark cannot fail the gate" true (Bench_gate.ok verdict);
  Alcotest.(check (list string)) "but is reported" [ "service e5 cold request" ]
    verdict.Bench_gate.added;
  let report = Format.asprintf "%a" Bench_gate.pp verdict in
  Alcotest.(check bool) "as a warning" true (Astring_contains.contains report "warning")

let test_bench_gate_missing_benchmark_warns () =
  let baseline = [ ("kept", 100.0); ("renamed", 100.0) ] in
  let current = [ ("kept", 100.0) ] in
  let verdict = Bench_gate.compare ~tolerance:0.30 ~baseline ~current in
  Alcotest.(check bool) "missing benchmark cannot fail the gate" true (Bench_gate.ok verdict);
  Alcotest.(check (list string)) "but is reported" [ "renamed" ] verdict.Bench_gate.missing

let test_bench_gate_payload_extraction () =
  let payload =
    Json.Obj
      [
        ( "benchmarks",
          Json.Arr
            [
              Json.Obj [ ("name", Json.Str "a"); ("ns_per_run", Json.Float 1.5) ];
              Json.Obj [ ("name", Json.Str "b"); ("ns_per_run", Json.Int 2) ];
              Json.Obj [ ("name", Json.Str "no-ns") ];
              Json.Str "not an object";
            ] );
      ]
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "ill-shaped entries skipped"
    [ ("a", 1.5); ("b", 2.0) ]
    (Bench_gate.benchmarks_of_payload payload);
  Alcotest.(check (list (pair string (float 1e-9))))
    "payload without benchmarks" []
    (Bench_gate.benchmarks_of_payload Json.Null)

let suite =
  [
    Alcotest.test_case "json: round-trips" `Quick test_json_roundtrip_cases;
    Alcotest.test_case "json: rejects malformed input" `Quick test_json_rejects;
    test_event_roundtrip;
    Alcotest.test_case "event: kind tags" `Quick test_event_kinds;
    Alcotest.test_case "tracer: does not perturb runs" `Quick test_tracing_does_not_perturb;
    Alcotest.test_case "tracer: off is inert" `Quick test_tracer_off_is_inert;
    Alcotest.test_case "tracer: ring keeps the newest" `Quick test_ring_capacity;
    Alcotest.test_case "trace file: JSONL round-trip" `Quick test_trace_file_roundtrip;
    Alcotest.test_case "trace file: corrupt line is a hard error" `Quick
      test_trace_file_load_error;
    Alcotest.test_case "trace diff: same seed empty, cross-seed not" `Quick test_trace_diff;
    Alcotest.test_case "trace diff: length mismatch" `Quick test_trace_diff_suffix;
    Alcotest.test_case "trace diff: run-end capture boundary is forgiven" `Quick
      test_trace_diff_run_end_boundary;
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick test_metrics_basics;
    Alcotest.test_case "metrics: registry isolation" `Quick test_metrics_isolation;
    Alcotest.test_case "metrics: to_json" `Quick test_metrics_to_json;
    test_histogram_matches_harness;
    Alcotest.test_case "bench out: append/read trajectory" `Quick test_bench_out_append_read;
    Alcotest.test_case "bench out: corrupt file starts fresh" `Quick
      test_bench_out_corrupt_starts_fresh;
    Alcotest.test_case "bench gate: only regressions fail" `Quick
      test_bench_gate_regression_fails;
    t_bench_gate_tolerance_boundary;
    Alcotest.test_case "bench gate: new benchmark warns, not fails" `Quick
      test_bench_gate_added_benchmark_warns;
    Alcotest.test_case "bench gate: missing benchmark warns, not fails" `Quick
      test_bench_gate_missing_benchmark_warns;
    Alcotest.test_case "bench gate: payload extraction" `Quick
      test_bench_gate_payload_extraction;
  ]
