(* End-to-end: the full experiment suite (reduced sweeps) must pass — this
   is the executable form of every lemma and theorem in the paper. *)

let test_quick_suite () =
  List.iter
    (fun (table : Lb_experiments.Table.t) ->
      if not table.Lb_experiments.Table.pass then
        Alcotest.failf "%s (%s) failed:@.%a" table.Lb_experiments.Table.id
          table.Lb_experiments.Table.title Lb_experiments.Table.pp table)
    (Lb_experiments.Experiments.all ~quick:true ())

let test_registry_complete () =
  Alcotest.(check (list string)) "ids"
    [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11"; "e12"; "e13"; "e14" ]
    Lb_experiments.Experiments.ids;
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " resolvable") true
        (Lb_experiments.Experiments.by_id id <> None))
    Lb_experiments.Experiments.ids;
  Alcotest.(check bool) "unknown id" true (Lb_experiments.Experiments.by_id "e99" = None)

let test_table_rendering () =
  let table =
    {
      Lb_experiments.Table.id = "T";
      title = "demo";
      header = [ "a"; "bb" ];
      rows = [ [ "1"; "2" ]; [ "333"; "4" ] ];
      notes = [ "a note" ];
      pass = true;
    }
  in
  let rendered = Format.asprintf "%a" Lb_experiments.Table.pp table in
  Alcotest.(check bool) "has banner" true
    (Astring_contains.contains rendered "== T: demo [PASS]");
  Alcotest.(check bool) "has note" true (Astring_contains.contains rendered "note: a note")

let test_chart_rendering () =
  let chart =
    Lb_experiments.Chart.render ~width:16 ~height:5
      [
        { Lb_experiments.Chart.label = "linear"; mark = 'l'; points = [ (2, 2); (4, 4); (8, 8) ] };
        { Lb_experiments.Chart.label = "flat"; mark = 'f'; points = [ (2, 0); (4, 0); (8, 0) ] };
      ]
  in
  Alcotest.(check bool) "has legend" true (Astring_contains.contains chart "l = linear");
  Alcotest.(check bool) "has axis" true (Astring_contains.contains chart "n = 2, 4, 8");
  Alcotest.(check bool) "max label" true (Astring_contains.contains chart "8 |");
  (* Top-right corner is the linear series' maximum. *)
  let first_line = List.hd (String.split_on_char '\n' chart) in
  Alcotest.(check bool) "peak plotted" true
    (String.length first_line > 0 && first_line.[String.length first_line - 1] = 'l');
  Alcotest.check_raises "empty chart" (Invalid_argument "Chart.render: no points") (fun () ->
      ignore (Lb_experiments.Chart.render []))

let suite =
  [
    Alcotest.test_case "chart rendering" `Quick test_chart_rendering;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "quick experiment suite passes" `Slow test_quick_suite;
  ]
