(* Tests for Section 4: move specs, source/movers semantics, and the
   secretive complete schedule construction (Lemmas 4.1 and 4.2). *)

open Lowerbound

(* ---- Move_spec ---- *)

let test_spec_basics () =
  let spec = Move_spec.of_list [ (3, (0, 1)); (1, (2, 3)) ] in
  Alcotest.(check (list int)) "procs sorted" [ 1; 3 ] (Move_spec.procs spec);
  Alcotest.(check int) "size" 2 (Move_spec.size spec);
  Alcotest.(check bool) "mem" true (Move_spec.mem spec 3);
  Alcotest.(check bool) "not mem" false (Move_spec.mem spec 2);
  Alcotest.(check (pair int int)) "op_of" (0, 1) (Move_spec.op_of spec 3);
  Alcotest.(check (list int)) "sources" [ 0; 2 ] (Move_spec.sources spec);
  Alcotest.(check (list int)) "destinations" [ 1; 3 ] (Move_spec.destinations spec)

let test_spec_duplicate () =
  Alcotest.check_raises "duplicate pid"
    (Invalid_argument "Move_spec.of_list: duplicate process p1") (fun () ->
      ignore (Move_spec.of_list [ (1, (0, 1)); (1, (2, 3)) ]))

let test_spec_restrict () =
  let spec = Move_spec.of_list [ (0, (0, 1)); (1, (1, 2)); (2, (2, 3)) ] in
  let sub = Move_spec.restrict spec ~keep:(fun p -> p <> 1) in
  Alcotest.(check (list int)) "restricted" [ 0; 2 ] (Move_spec.procs sub)

(* ---- Source_movers ---- *)

let test_source_movers_example () =
  (* The paper's introduction example: p_i moves R_i -> R_{i+1}.  Scheduling
     in id order chains everything: movers(R_n) has n processes. *)
  let n = 5 in
  let spec = Move_spec.of_list (List.init n (fun i -> (i, (i, i + 1)))) in
  let chain = Source_movers.eval spec (List.init n (fun i -> i)) in
  Alcotest.(check int) "source of R5 is R0" 0 (Source_movers.source chain 5);
  Alcotest.(check (list int)) "movers chain" [ 0; 1; 2; 3; 4 ] (Source_movers.movers chain 5);
  Alcotest.(check int) "max movers" 5 (Source_movers.max_movers chain);
  (* The even-before-odd schedule from the paper keeps chains short. *)
  let evens = List.filter (fun i -> i mod 2 = 0) (List.init n (fun i -> i)) in
  let odds = List.filter (fun i -> i mod 2 = 1) (List.init n (fun i -> i)) in
  let alt = Source_movers.eval spec (evens @ odds) in
  Alcotest.(check bool) "alternating is secretive" true (Source_movers.max_movers alt <= 2);
  (* R_i receives R_{i-1}'s original value if i odd, R_{i-2}'s if i even. *)
  Alcotest.(check int) "R4 source" 2 (Source_movers.source alt 4);
  Alcotest.(check int) "R3 source" 2 (Source_movers.source alt 3)

let test_source_movers_untouched () =
  let spec = Move_spec.of_list [ (0, (1, 2)) ] in
  let s = Source_movers.eval spec [ 0 ] in
  Alcotest.(check int) "untouched source" 9 (Source_movers.source s 9);
  Alcotest.(check (list int)) "untouched movers" [] (Source_movers.movers s 9);
  (* Source register of a move keeps its own identity. *)
  Alcotest.(check int) "src unchanged" 1 (Source_movers.source s 1)

let test_source_movers_overwrite () =
  (* Two moves into the same register: only the last one counts. *)
  let spec = Move_spec.of_list [ (0, (5, 9)); (1, (6, 9)) ] in
  let s = Source_movers.eval spec [ 0; 1 ] in
  Alcotest.(check int) "last wins" 6 (Source_movers.source s 9);
  Alcotest.(check (list int)) "movers is last chain" [ 1 ] (Source_movers.movers s 9)

let test_append_errors () =
  let spec = Move_spec.of_list [ (0, (0, 1)) ] in
  let s = Source_movers.start spec in
  Source_movers.append s 0;
  Alcotest.check_raises "double schedule"
    (Invalid_argument "Source_movers.append: p0 already scheduled") (fun () ->
      Source_movers.append s 0);
  Alcotest.check_raises "unknown process"
    (Invalid_argument "Source_movers.append: p7 not in move spec") (fun () ->
      Source_movers.append s 7)

let test_is_complete () =
  let spec = Move_spec.of_list [ (0, (0, 1)); (1, (1, 2)) ] in
  Alcotest.(check bool) "complete" true (Source_movers.is_complete spec [ 1; 0 ]);
  Alcotest.(check bool) "missing" false (Source_movers.is_complete spec [ 1 ]);
  Alcotest.(check bool) "foreign" false (Source_movers.is_complete spec [ 1; 0; 2 ])

(* ---- Secretive construction (Lemma 4.1) ---- *)

let check_secretive name spec =
  let sigma = Secretive.build spec in
  Alcotest.(check bool)
    (name ^ ": complete")
    true
    (Source_movers.is_complete spec sigma);
  Alcotest.(check bool) (name ^ ": secretive") true (Source_movers.is_secretive spec sigma)

let test_build_chain () =
  (* The adversarial chain topology that defeats the id-order schedule. *)
  List.iter
    (fun n ->
      check_secretive
        (Printf.sprintf "chain %d" n)
        (Move_spec.of_list (List.init n (fun i -> (i, (i, i + 1))))))
    [ 1; 2; 3; 7; 32; 101 ]

let test_build_reverse_chain () =
  List.iter
    (fun n ->
      check_secretive
        (Printf.sprintf "reverse chain %d" n)
        (Move_spec.of_list (List.init n (fun i -> (i, (i + 1, i))))))
    [ 1; 2; 3; 7; 32 ]

let test_build_star () =
  (* Everyone moves into the same register. *)
  check_secretive "star-in" (Move_spec.of_list (List.init 20 (fun i -> (i, (i + 1, 0)))));
  (* Everyone moves out of the same register. *)
  check_secretive "star-out" (Move_spec.of_list (List.init 20 (fun i -> (i, (0, i + 1)))))

let test_build_cycle () =
  (* R0 -> R1 -> ... -> R(n-1) -> R0: no fresh-source exit, stage 1 still
     schedules group by group. *)
  List.iter
    (fun n ->
      check_secretive
        (Printf.sprintf "cycle %d" n)
        (Move_spec.of_list (List.init n (fun i -> (i, (i, (i + 1) mod n))))))
    [ 2; 3; 5; 16; 33 ]

let test_self_moves_rejected () =
  (* Self-moves would falsify Lemma 4.1 (three self-moves into one register
     chain three movers under every schedule), so the model excludes them. *)
  Alcotest.check_raises "self move"
    (Invalid_argument "Move_spec.of_list: p0 has self-move R3->R3") (fun () ->
      ignore (Move_spec.of_list [ (0, (3, 3)) ]))

let test_build_empty () =
  Alcotest.(check (list int)) "empty spec" [] (Secretive.build Move_spec.empty)

let test_build_checked_ok () =
  let spec = Move_spec.of_list (List.init 10 (fun i -> (i, (i, i + 1)))) in
  Alcotest.(check int) "checked returns schedule" 10 (List.length (Secretive.build_checked spec))

(* Property: Lemma 4.1 over random specs with varied register-space shapes. *)
let arb_spec =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 60 >>= fun n ->
      (* Register space smaller than n forces collisions. *)
      int_range 1 (max 1 (n / 2 + 1)) >>= fun regs ->
      let reg = int_range 0 regs in
      list_repeat n (pair reg reg) >|= fun ops ->
      (* Self-moves are excluded from the model; nudge collisions apart. *)
      let fix (src, dst) = if src = dst then (src, dst + 1) else (src, dst) in
      Move_spec.of_list (List.mapi (fun i op -> (i, fix op)) ops))
  in
  make ~print:(fun spec -> Format.asprintf "%a" Move_spec.pp spec) gen

let prop_lemma_4_1 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Lemma 4.1: build yields secretive complete schedule"
       arb_spec (fun spec ->
         let sigma = Secretive.build spec in
         Source_movers.is_complete spec sigma && Source_movers.is_secretive spec sigma))

(* Property: Lemma 4.2 — scheduling any superset of movers(R) (as a
   subsequence of sigma) preserves source(R). *)
let prop_lemma_4_2 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"Lemma 4.2: movers subset preserves source"
       QCheck.(pair arb_spec (QCheck.make QCheck.Gen.int))
       (fun (spec, seed_arb) ->
         let sigma = Secretive.build spec in
         let full = Source_movers.eval spec sigma in
         let st = Random.State.make [| seed_arb |] in
         (* For every destination register: restrict sigma to its movers plus
            a random sprinkle of other processes; source must be unchanged. *)
         List.for_all
           (fun reg ->
             let movers = Source_movers.movers full reg in
             let keep p = List.mem p movers || Random.State.bool st in
             let sub = List.filter keep sigma in
             let restricted = Source_movers.eval spec sub in
             Source_movers.source restricted reg = Source_movers.source full reg)
           (Move_spec.destinations spec)))

(* Property: determinism of the construction. *)
let prop_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"build is deterministic" arb_spec (fun spec ->
         Secretive.build spec = Secretive.build spec))

let suite =
  [
    Alcotest.test_case "move spec basics" `Quick test_spec_basics;
    Alcotest.test_case "move spec duplicate" `Quick test_spec_duplicate;
    Alcotest.test_case "move spec restrict" `Quick test_spec_restrict;
    Alcotest.test_case "source/movers: paper example" `Quick test_source_movers_example;
    Alcotest.test_case "source/movers: untouched registers" `Quick test_source_movers_untouched;
    Alcotest.test_case "source/movers: overwrite" `Quick test_source_movers_overwrite;
    Alcotest.test_case "append errors" `Quick test_append_errors;
    Alcotest.test_case "is_complete" `Quick test_is_complete;
    Alcotest.test_case "build: chain" `Quick test_build_chain;
    Alcotest.test_case "build: reverse chain" `Quick test_build_reverse_chain;
    Alcotest.test_case "build: star" `Quick test_build_star;
    Alcotest.test_case "build: cycle" `Quick test_build_cycle;
    Alcotest.test_case "self moves rejected" `Quick test_self_moves_rejected;
    Alcotest.test_case "build: empty" `Quick test_build_empty;
    Alcotest.test_case "build_checked" `Quick test_build_checked_ok;
    prop_lemma_4_1;
    prop_lemma_4_2;
    prop_deterministic;
  ]
