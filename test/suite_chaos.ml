(* Chaos subsystem tests: the plan grammar, the seeded engine's
   determinism, and the drills themselves — every drill green at the CI
   seed, and the negative controls pinned red, so we know the drills can
   fail.  The drills boot real servers in domains, so the whole suite is
   [`Slow] apart from the pure grammar/engine cases. *)

open Lb_service
module Json = Lb_observe.Json
module Metrics = Lb_observe.Metrics

(* ---- the plan grammar ---- *)

let t_grammar_roundtrip () =
  List.iter
    (fun name ->
      match Chaos.of_name name with
      | Some plan ->
        Alcotest.(check string)
          (Printf.sprintf "%S resolves to itself" name)
          (Chaos.name (List.assoc name Chaos.named))
          (Chaos.name plan)
      | None -> Alcotest.fail (Printf.sprintf "named plan %S did not parse" name))
    Chaos.plan_names;
  Alcotest.(check bool) "unknown plans are None, not exceptions" true
    (Chaos.of_name "voltage-spike" = None);
  Alcotest.(check bool) "empty string is not a plan" true (Chaos.of_name "" = None)

let t_grammar_compose () =
  match Chaos.of_name "drop+garble" with
  | None -> Alcotest.fail "'+'-joined plans must compose"
  | Some plan ->
    let kinds =
      List.map
        (fun i -> Format.asprintf "%a" Chaos.pp_injector i)
        (Chaos.injectors plan)
    in
    Alcotest.(check int) "both constituents present" 2 (List.length kinds);
    Alcotest.(check bool) "drop then garble, in order" true
      (match kinds with [ d; g ] -> (String.length d > 0) && String.length g > 0 | _ -> false)

let t_constructors_validate () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "short_write rejects max_bytes < 1" true
    (raises (fun () -> Chaos.short_write ~max_bytes:0));
  Alcotest.(check bool) "occurrence lists are 1-based" true
    (raises (fun () -> Chaos.drop_reply ~at:[ 0 ]));
  Alcotest.(check bool) "occurrence lists are non-empty" true
    (raises (fun () -> Chaos.garble_reply ~at:[]));
  Alcotest.(check bool) "delays are positive" true
    (raises (fun () -> Chaos.delay_reply ~at:[ 1 ] ~delay_s:0.0))

(* ---- the seeded engine ---- *)

(* Identical seed + identical reply stream ⇒ identical actions, garbled
   bytes included.  This is what makes a failing drill replayable. *)
let t_engine_deterministic () =
  Metrics.with_registry (Metrics.create ()) (fun () ->
      let plan =
        Chaos.compose
          [
            Chaos.short_write ~max_bytes:8;
            Chaos.drop_reply ~at:[ 2 ];
            Chaos.garble_reply ~at:[ 3; 5 ];
            Chaos.delay_reply ~at:[ 4 ] ~delay_s:0.01;
          ]
      in
      let lines = List.init 6 (fun i -> Printf.sprintf "{\"reply\":%d,\"pad\":\"xxxx\"}" i) in
      let trace engine =
        List.map
          (fun line ->
            let act = Chaos.on_reply engine line in
            (act.Chaos.data, act.Chaos.delay_s, act.Chaos.crash_after))
          lines
      in
      let e1 = Chaos.instantiate ~seed:42 plan and e2 = Chaos.instantiate ~seed:42 plan in
      let r1 = trace e1 and r2 = trace e2 in
      Alcotest.(check bool) "same seed, same actions (garbling included)" true (r1 = r2);
      Alcotest.(check int) "same injection count" (Chaos.injections e1) (Chaos.injections e2);
      Alcotest.(check bool) "the plan fired" true (Chaos.injections e1 > 0);
      (* A different seed must still drop/delay at the same occurrences —
         only the random garble bytes may move. *)
      let e3 = Chaos.instantiate ~seed:43 plan in
      let r3 = trace e3 in
      Alcotest.(check bool) "occurrence schedule is seed-independent" true
        (List.for_all2
           (fun (d1, s1, c1) (d3, s3, c3) ->
             Option.is_some d1 = Option.is_some d3 && s1 = s3 && c1 = c3)
           r1 r3))

let t_engine_write_cap () =
  let e = Chaos.instantiate (Chaos.compose [ Chaos.short_write ~max_bytes:8 ]) in
  Alcotest.(check (option int)) "cap surfaces to the writer" (Some 8) (Chaos.write_cap e);
  let e' = Chaos.instantiate (Chaos.drop_reply ~at:[ 1 ]) in
  Alcotest.(check (option int)) "no cap without short-write" None (Chaos.write_cap e')

let t_engine_journal_truncate () =
  Metrics.with_registry (Metrics.create ()) (fun () ->
      let e = Chaos.instantiate (Chaos.truncate_journal ~at:[ 2 ]) in
      let line = "{\"key\":\"k\",\"response\":{\"v\":1}}" in
      (match Chaos.on_journal e line with
      | `Line -> ()
      | `Partial_then_crash _ -> Alcotest.fail "append #1 should pass through");
      match Chaos.on_journal e line with
      | `Partial_then_crash prefix ->
        Alcotest.(check bool) "a strict, non-empty prefix is written" true
          (String.length prefix > 0
          && String.length prefix < String.length line
          && String.sub line 0 (String.length prefix) = prefix)
      | `Line -> Alcotest.fail "append #2 must be torn")

(* ---- the drills ---- *)

let t_drills_all_green () =
  List.iter
    (fun name ->
      match Drill.run ~seed:1 name with
      | Error msg -> Alcotest.fail msg
      | Ok report ->
        if not report.Drill.passed then
          Alcotest.fail
            (Format.asprintf "drill %s failed:@ %a" name Drill.pp_report report);
        Alcotest.(check bool)
          (Printf.sprintf "drill %s did real work" name)
          true
          (report.Drill.requests > 0 && report.Drill.acked > 0))
    Drill.names

(* Negative controls: each robustness mechanism, when disabled, must turn
   at least one drill red.  A drill suite that cannot fail proves
   nothing. *)
let t_drill_fails_without_retries () =
  match Drill.run ~seed:1 ~retry_attempts:1 "drop-connection" with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    Alcotest.(check bool) "no retry budget ⇒ dropped replies are fatal" false
      report.Drill.passed

let t_drill_fails_without_supervision () =
  match Drill.run ~seed:1 ~supervise:false "crash-mid-batch" with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    Alcotest.(check bool) "no supervisor ⇒ a crash ends the service" false
      report.Drill.passed

let t_drill_unknown_name () =
  match Drill.run "seagull-attack" with
  | Error msg ->
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "the error names the roster" true
      (List.for_all (contains msg) Drill.names)
  | Ok _ -> Alcotest.fail "unknown drills must be typed errors"

(* Same drill, same seed ⇒ the same report, wall-clock aside.  This is the
   replayability contract `lowerbound chaos --seed` advertises. *)
let t_drill_seed_replay () =
  let strip json =
    match json with
    | Json.Obj fields -> Json.Obj (List.remove_assoc "elapsed_s" fields)
    | other -> other
  in
  match (Drill.run ~seed:7 "garble", Drill.run ~seed:7 "garble") with
  | Ok a, Ok b ->
    Alcotest.(check string) "reports replay byte-for-byte"
      (Json.to_string (strip (Drill.report_json a)))
      (Json.to_string (strip (Drill.report_json b)))
  | _ -> Alcotest.fail "garble drill failed to run"

(* The robustness invariants are transport-independent: the same crash
   drill that passes over a Unix socket must pass over loopback TCP
   (ephemeral port, resolved through the drill's ready plumbing). *)
let t_drill_tcp_transport () =
  match Drill.run ~seed:1 ~transport:`Tcp "crash-mid-batch" with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    Alcotest.(check bool) "crash drill holds over TCP" true report.Drill.passed;
    Alcotest.(check string) "the report records its transport" "tcp"
      report.Drill.transport

let suite =
  [
    Alcotest.test_case "grammar: named plans round-trip" `Quick t_grammar_roundtrip;
    Alcotest.test_case "grammar: '+' composes plans" `Quick t_grammar_compose;
    Alcotest.test_case "grammar: constructors validate their arguments" `Quick
      t_constructors_validate;
    Alcotest.test_case "engine: seeded actions are deterministic" `Quick
      t_engine_deterministic;
    Alcotest.test_case "engine: write cap surfaces to the server" `Quick t_engine_write_cap;
    Alcotest.test_case "engine: journal appends are torn on schedule" `Quick
      t_engine_journal_truncate;
    Alcotest.test_case "drills: the full roster is green at seed 1" `Slow t_drills_all_green;
    Alcotest.test_case "drills: dropping the retry budget fails drop-connection" `Slow
      t_drill_fails_without_retries;
    Alcotest.test_case "drills: disabling supervision fails crash-mid-batch" `Slow
      t_drill_fails_without_supervision;
    Alcotest.test_case "drills: unknown names are typed errors" `Quick t_drill_unknown_name;
    Alcotest.test_case "drills: seed replay reproduces the report" `Slow t_drill_seed_replay;
    Alcotest.test_case "drills: crash-mid-batch holds over TCP" `Slow t_drill_tcp_transport;
  ]
