(* Tests for the litmus catalog: the programs that pin SC, TSO and PSO
   apart.  Each verdict here is computed by exhaustive DPOR enumeration
   (flushes in the decision alphabet), so these are certificates about the
   simulator's memory models, not samples. *)

open Lowerbound

let find_exn name =
  match Litmus.find name with
  | Some t -> t
  | None -> Alcotest.failf "litmus test %s missing from the catalog" name

let test_find () =
  Alcotest.(check bool) "case-insensitive lookup" true
    ((find_exn "sb").Litmus.name = "SB" && (find_exn "IRIW").Litmus.name = "IRIW");
  Alcotest.(check bool) "unknown name" true (Litmus.find "nope" = None);
  Alcotest.(check int) "catalog size" 8 (List.length Litmus.catalog)

(* The headline: every catalog test matches its expected per-model
   admissibility, the outcome lattice holds on every test, and the catalog
   pairwise-separates all three models.  This is the tentpole's gate — if a
   store-buffer regression collapses TSO into SC (or MP stops separating TSO
   from PSO), it fails here before it fails in CI. *)
let test_catalog_certified () =
  let verdicts = Litmus.check_all () in
  List.iter
    (fun (v : Litmus.verdict) ->
      Alcotest.(check bool) (v.Litmus.test.Litmus.name ^ " ok") true v.Litmus.ok;
      Alcotest.(check bool) (v.Litmus.test.Litmus.name ^ " lattice") true v.Litmus.lattice_ok)
    verdicts;
  Alcotest.(check bool) "all ok" true (Litmus.all_ok verdicts);
  Alcotest.(check bool) "models pairwise distinguished" true
    (Litmus.distinguishes_all_models verdicts)

(* Pinned outcome-set cardinalities for the two separating tests.  SB gains
   exactly one outcome (r0 = r1 = 0) when store buffering appears; MP gains
   exactly one (flag seen, data missed) only when buffers go per-register. *)
let outcome_counts name =
  let t = find_exn name in
  List.map
    (fun model -> Litmus.Outcomes.cardinal (Litmus.outcomes t ~model))
    Memory_model.all

let test_pinned_outcome_counts () =
  Alcotest.(check (list int)) "SB: 3 under SC, 4 under TSO/PSO" [ 3; 4; 4 ]
    (outcome_counts "SB");
  Alcotest.(check (list int)) "MP: 4 only under PSO" [ 3; 3; 4 ] (outcome_counts "MP");
  Alcotest.(check (list int)) "SB+fence: SC everywhere" [ 3; 3; 3 ]
    (outcome_counts "SB+fence");
  Alcotest.(check (list int)) "LB: forbidden everywhere" [ 3; 3; 3 ] (outcome_counts "LB")

(* The SB relaxed outcome, surgically: present under TSO, absent under SC. *)
let test_sb_relaxed_outcome_membership () =
  let sb = find_exn "SB" in
  let mem model = Litmus.Outcomes.mem sb.Litmus.relaxed_outcome (Litmus.outcomes sb ~model) in
  Alcotest.(check bool) "SC forbids" false (mem Memory_model.SC);
  Alcotest.(check bool) "TSO admits" true (mem Memory_model.TSO);
  Alcotest.(check bool) "PSO admits" true (mem Memory_model.PSO)

(* A deliberately wrong expectation must produce a failing verdict: the
   checker is live, not vacuously green. *)
let test_wrong_expectation_fails () =
  let sb = find_exn "SB" in
  let lying = { sb with Litmus.admits = (fun _ -> false) } in
  let v = Litmus.check lying in
  Alcotest.(check bool) "mismatch detected" false v.Litmus.ok;
  Alcotest.(check bool) "the TSO cell is the mismatch" true
    (List.exists
       (fun (c : Litmus.cell) -> c.Litmus.model = Memory_model.TSO && not (Litmus.cell_ok c))
       v.Litmus.cells)

let suite =
  [
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "catalog certified" `Slow test_catalog_certified;
    Alcotest.test_case "pinned outcome counts" `Quick test_pinned_outcome_counts;
    Alcotest.test_case "sb relaxed outcome membership" `Quick
      test_sb_relaxed_outcome_membership;
    Alcotest.test_case "wrong expectation fails" `Quick test_wrong_expectation_fails;
  ]
