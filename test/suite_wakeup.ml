(* Tests for the wakeup problem: specification checking, the Theorem 6.2
   reductions (against the oracle and compiled through both universal
   constructions), the direct and randomized algorithms, and the cheaters. *)

open Lowerbound

(* ---- problem checker ---- *)

let run_entry (entry : Corpus.entry) ~n ?(seed = 0) () =
  let program_of, inits = entry.Corpus.make ~n in
  let assignment = if entry.Corpus.randomized then Coin.uniform ~seed else Coin.constant 0 in
  All_run.execute ~n ~program_of ~assignment ~inits ~max_rounds:4_000 ()

let test_checker_accepts_correct () =
  List.iter
    (fun entry ->
      List.iter
        (fun n ->
          let run = run_entry entry ~n () in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d terminating" entry.Corpus.name n)
            true
            (run.All_run.outcome = All_run.Terminating);
          match Problem.check run with
          | [] -> ()
          | issue :: _ ->
            Alcotest.failf "%s n=%d: %a" entry.Corpus.name n Problem.pp_issue issue)
        [ 1; 2; 3; 8 ])
    [ Corpus.naive; Corpus.post_collect; Corpus.move_collect; Corpus.tree_collect;
      Corpus.two_counter; Corpus.backoff_collect; Corpus.log_wakeup ]

let test_checker_flags_nobody () =
  (* An "algorithm" in which everyone returns 0 violates condition 2. *)
  let program_of _pid =
    Program.bind (Program.ll 0) (fun _ -> Program.return 0)
  in
  let run = All_run.execute ~n:3 ~program_of ~max_rounds:10 () in
  match Problem.check run with
  | [ Problem.Nobody_returned_one ] -> ()
  | issues -> Alcotest.failf "expected Nobody_returned_one, got %d issues" (List.length issues)

let test_checker_flags_bad_return () =
  let program_of _pid = Program.return 7 in
  let run = All_run.execute ~n:2 ~program_of ~max_rounds:10 () in
  Alcotest.(check bool) "bad return flagged" true
    (List.exists
       (function Problem.Bad_return (_, 7) -> true | _ -> false)
       (Problem.check run))

(* ---- reductions against the sequential oracle ---- *)

let test_reductions_oracle_all_orders () =
  (* For every reduction and several arrival orders: exactly the last
     arriver returns 1 (single-use recipes) — validates the decision rules
     themselves, independent of any shared-memory machinery. *)
  let orders n = [ List.init n (fun i -> i); List.rev (List.init n (fun i -> i)) ] in
  List.iter
    (fun (red : Reductions.t) ->
      List.iter
        (fun n ->
          List.iter
            (fun order ->
              let oracle = Atomic.create (red.Reductions.spec ~n) in
              let results = Array.make n (-1) in
              List.iter
                (fun pid ->
                  match Reductions.oracle_program red ~n oracle ~pid with
                  | Program.Return v -> results.(pid) <- v
                  | Program.Toss _ | Program.Op _ ->
                    Alcotest.fail "oracle program should not touch shared memory")
                order;
              let winners = Array.to_list results |> List.filter (fun v -> v = 1) in
              let label =
                Printf.sprintf "%s n=%d order=%s" red.Reductions.name n
                  (String.concat "," (List.map string_of_int order))
              in
              Alcotest.(check int) (label ^ ": one winner") 1 (List.length winners);
              (* And the winner is the last arriver. *)
              let last = List.nth order (n - 1) in
              Alcotest.(check int) (label ^ ": last wins") 1 results.(last))
            (orders n))
        [ 1; 2; 3; 5; 9 ])
    Reductions.all

(* ---- reductions compiled through universal constructions ---- *)

let test_reductions_compiled_satisfy_wakeup () =
  List.iter
    (fun construction ->
      List.iter
        (fun (red : Reductions.t) ->
          List.iter
            (fun n ->
              let program_of, inits = Reductions.program red ~construction ~n in
              let run = All_run.execute ~n ~program_of ~inits ~max_rounds:4_000 () in
              let label =
                Printf.sprintf "%s via %s n=%d" red.Reductions.name
                  construction.Iface.name n
              in
              Alcotest.(check bool) (label ^ " terminating") true
                (run.All_run.outcome = All_run.Terminating);
              (match Problem.check run with
              | [] -> ()
              | issue :: _ -> Alcotest.failf "%s: %a" label Problem.pp_issue issue);
              let winners = List.filter (fun (_, v) -> v = 1) run.All_run.results in
              (* Single-use recipes have distinct responses, so exactly one
                 process can observe the winning pattern; read+inc (two
                 uses) legitimately allows several late readers to see n. *)
              if red.Reductions.uses = 1 then
                Alcotest.(check int) (label ^ " one winner") 1 (List.length winners)
              else
                Alcotest.(check bool) (label ^ " some winner") true (winners <> []))
            [ 1; 2; 4; 6 ])
        Reductions.all)
    [ Adt_tree.construction; Herlihy.construction ]

let test_reductions_compiled_under_random_schedule () =
  (* Wakeup correctness is not adversary-specific: run the compiled
     reductions under random schedules via the generic System executor. *)
  List.iter
    (fun (red : Reductions.t) ->
      List.iter
        (fun seed ->
          let n = 5 in
          let program_of, inits =
            Reductions.program red ~construction:Adt_tree.construction ~n
          in
          let memory = Memory.create () in
          List.iter (fun (r, v) -> Memory.set_init memory r v) inits;
          let sys = System.create ~memory ~n program_of in
          let outcome = System.run sys (Scheduler.random ~seed) ~fuel:100_000 in
          let label = Printf.sprintf "%s seed=%d" red.Reductions.name seed in
          Alcotest.(check bool) (label ^ " finished") true (outcome = System.All_terminated);
          let winners =
            Array.to_list (System.results sys) |> List.filter (fun v -> v = Some 1)
          in
          if red.Reductions.uses = 1 then
            Alcotest.(check int) (label ^ " one winner") 1 (List.length winners)
          else Alcotest.(check bool) (label ^ " some winner") true (winners <> []))
        [ 1; 2; 3 ])
    Reductions.all

(* ---- worst-case bounds of the corpus ---- *)

let test_corpus_worst_cases_hold () =
  List.iter
    (fun (entry : Corpus.entry) ->
      match entry.Corpus.worst_case with
      | None -> ()
      | Some bound ->
        List.iter
          (fun n ->
            let run = run_entry entry ~n ~seed:3 () in
            Alcotest.(check bool)
              (Printf.sprintf "%s n=%d: %d <= %d" entry.Corpus.name n
                 run.All_run.max_shared_ops (bound ~n))
              true
              (run.All_run.max_shared_ops <= bound ~n))
          [ 2; 4; 8; 16 ])
    (Corpus.correct_algorithms ())

let test_log_wakeup_is_logarithmic () =
  (* The tight upper bound: the fetch&inc-via-tree wakeup costs at most
     8 log2 n + 9 per process even under the adversary — compare with the
     naive collect's linear growth. *)
  let max_ops entry n =
    let run = run_entry entry ~n () in
    run.All_run.max_shared_ops
  in
  let log_64 = max_ops Corpus.log_wakeup 64 in
  let log_256 = max_ops Corpus.log_wakeup 256 in
  let naive_64 = max_ops Corpus.naive 64 in
  let naive_256 = max_ops Corpus.naive 256 in
  Alcotest.(check bool) "tree sublinear step" true (log_256 - log_64 <= 20);
  Alcotest.(check bool) "naive linear step" true (naive_256 - naive_64 >= 256);
  Alcotest.(check bool) "tree beats naive at 256" true (log_256 < naive_256)

(* ---- randomized algorithms use their coins ---- *)

let test_randomized_actually_tosses () =
  let program_of, inits = Randomized.two_counter ~n:4 in
  let run =
    All_run.execute ~n:4 ~program_of ~assignment:(Coin.uniform ~seed:5) ~inits ~max_rounds:1_000 ()
  in
  let final = List.nth run.All_run.rounds (All_run.num_rounds run - 1) in
  List.iter
    (fun (pid, obs) ->
      Alcotest.(check bool) (Printf.sprintf "p%d tossed" pid) true (obs.Round.tosses >= 1))
    final.Round.procs

let test_randomized_correct_across_seeds () =
  List.iter
    (fun seed ->
      let run = run_entry Corpus.two_counter ~n:6 ~seed () in
      match Problem.check run with
      | [] -> ()
      | issue :: _ -> Alcotest.failf "seed %d: %a" seed Problem.pp_issue issue)
    (List.init 15 (fun i -> i))

(* ---- cheaters violate the spec ---- *)

let test_blind_cheater_s_run_violates () =
  (* Directly inspect the violating (S, A)-run produced by the analysis. *)
  let entry = List.hd (Corpus.cheaters ~n_hint:16) in
  let report = Lowerbound.analyze_entry entry ~n:16 ~max_rounds:100 in
  match report.Lower_bound.violation with
  | Some v ->
    Alcotest.(check int) "winner is p0" 0 v.Lower_bound.winner;
    Alcotest.(check int) "15 silent" 15 (Ids.cardinal v.Lower_bound.silent)
  | None -> Alcotest.fail "blind cheater not caught"

let test_cheater_below_log_bound () =
  (* The fixed-k cheater's measured complexity is below the lower bound —
     which is exactly why it cannot be correct. *)
  let entries = Corpus.cheaters ~n_hint:256 in
  let fixed = List.nth entries 1 in
  let report = Lowerbound.analyze_entry fixed ~n:256 ~max_rounds:100 in
  Alcotest.(check bool) "below bound" false report.Lower_bound.bound_met;
  Alcotest.(check bool) "violation found" true (report.Lower_bound.violation <> None)

let suite =
  [
    Alcotest.test_case "checker accepts correct algorithms" `Slow test_checker_accepts_correct;
    Alcotest.test_case "checker flags nobody-returned-one" `Quick test_checker_flags_nobody;
    Alcotest.test_case "checker flags bad returns" `Quick test_checker_flags_bad_return;
    Alcotest.test_case "reductions vs oracle, all orders" `Quick test_reductions_oracle_all_orders;
    Alcotest.test_case "compiled reductions satisfy wakeup" `Slow
      test_reductions_compiled_satisfy_wakeup;
    Alcotest.test_case "compiled reductions under random schedules" `Slow
      test_reductions_compiled_under_random_schedule;
    Alcotest.test_case "corpus worst cases hold" `Slow test_corpus_worst_cases_hold;
    Alcotest.test_case "log-wakeup is logarithmic" `Slow test_log_wakeup_is_logarithmic;
    Alcotest.test_case "randomized algorithms toss" `Quick test_randomized_actually_tosses;
    Alcotest.test_case "randomized correct across seeds" `Slow
      test_randomized_correct_across_seeds;
    Alcotest.test_case "blind cheater S-run violates" `Quick test_blind_cheater_s_run_violates;
    Alcotest.test_case "fixed cheater below bound" `Quick test_cheater_below_log_bound;
  ]
