(* Tests for the Section 5 machinery: the Figure-2 adversary, UP sets,
   (S, A)-runs, the indistinguishability lemma, and the Theorem 6.1 engine. *)

open Lowerbound
open Program.Syntax

let ids = Alcotest.testable Ids.pp Ids.equal

(* ---- Round structure of the (All, A)-run ---- *)

(* A process that does LL, then SC, then returns. *)
let ll_sc_program _pid =
  let* v = Program.ll 0 in
  let* ok = Program.sc_flag 0 (Value.Int (Value.to_int v + 1)) in
  Program.return (if ok then 1 else 0)

let test_all_run_phases () =
  let run =
    All_run.execute ~n:3 ~program_of:ll_sc_program ~inits:[ (0, Value.Int 0) ] ~max_rounds:10 ()
  in
  Alcotest.(check bool) "terminating" true (run.All_run.outcome = All_run.Terminating);
  Alcotest.(check int) "two rounds" 2 (All_run.num_rounds run);
  (* Round 1: all three LL (phase 2).  Round 2: all three SC (phase 5),
     only p0 succeeds. *)
  let r1 = All_run.round run 1 and r2 = All_run.round run 2 in
  Alcotest.(check int) "r1 all in phase 2" 3 (List.length (Round.events_in_phase r1 2));
  Alcotest.(check int) "r2 all in phase 5" 3 (List.length (Round.events_in_phase r2 5));
  Alcotest.(check (option int)) "p0's SC wins (id order)" (Some 0)
    (Round.successful_sc r2 ~reg:0);
  (* Results: exactly one process returns 1 here (p0); the others lost. *)
  Alcotest.(check int) "p0 won" 1 (List.assoc 0 run.All_run.results);
  Alcotest.(check int) "p1 lost" 0 (List.assoc 1 run.All_run.results)

let test_all_run_round_limit () =
  let rec spin _pid =
    let* _ = Program.ll 0 in
    spin 0
  in
  let run = All_run.execute ~n:2 ~program_of:(fun p -> spin p) ~max_rounds:7 () in
  Alcotest.(check bool) "round limit" true (run.All_run.outcome = All_run.Round_limit);
  Alcotest.(check int) "7 rounds" 7 (All_run.num_rounds run)

let test_all_run_mixed_phases () =
  (* p0 swaps, p1 moves, p2 LLs: one round, phases ordered read < move <
     swap. *)
  let program_of = function
    | 0 ->
      let* _ = Program.swap 0 (Value.Int 9) in
      Program.return 0
    | 1 ->
      let* () = Program.move ~src:1 ~dst:0 in
      Program.return 0
    | _ ->
      let* _ = Program.ll 0 in
      Program.return 0
  in
  let run =
    All_run.execute ~n:3 ~program_of
      ~inits:[ (0, Value.Int 0); (1, Value.Int 5) ]
      ~max_rounds:5 ()
  in
  let r1 = All_run.round run 1 in
  let phases = List.map (fun e -> e.Round.phase) r1.Round.events in
  Alcotest.(check (list int)) "phase order" [ 2; 3; 4 ] phases;
  (* Move spec captured. *)
  Alcotest.(check (list int)) "move group" [ 1 ] (Move_spec.procs r1.Round.move_spec);
  Alcotest.(check (list int)) "sigma" [ 1 ] r1.Round.sigma;
  (* The swap (phase 4) lands after the move (phase 3): R0 = 9 at end. *)
  match Round.reg_state r1 0 with
  | Some (v, _) -> Alcotest.(check int) "swap last" 9 (Value.to_int v)
  | None -> Alcotest.fail "R0 missing from snapshot"

let test_termination_round () =
  let run =
    All_run.execute ~n:3 ~program_of:ll_sc_program ~inits:[ (0, Value.Int 0) ] ~max_rounds:10 ()
  in
  Alcotest.(check (option int)) "p0 terminates in round 2" (Some 2)
    (All_run.termination_round run ~pid:0);
  Alcotest.(check int) "p0 ops" 2 (All_run.ops_of run ~pid:0)

(* ---- UP sets ---- *)

let test_up_initial () =
  let run = All_run.execute ~n:4 ~program_of:ll_sc_program ~inits:[ (0, Value.Int 0) ] ~max_rounds:10 () in
  let up = Upsets.compute ~n:4 run.All_run.rounds in
  Alcotest.check ids "UP(p2, 0)" (Ids.singleton 2) (Upsets.of_process up ~r:0 ~pid:2);
  Alcotest.check ids "UP(R0, 0)" Ids.empty (Upsets.of_register up ~r:0 ~reg:0)

let test_up_ll_then_sc () =
  (* After round 1 (all LL): UP(p, 1) = {p} (register was empty).  After
     round 2 (all SC, p0 wins): UP(R0, 2) = UP(p0, 1) = {p0}; an
     unsuccessful SC by q joins UP(R0, 2). *)
  let run = All_run.execute ~n:3 ~program_of:ll_sc_program ~inits:[ (0, Value.Int 0) ] ~max_rounds:10 () in
  let up = Upsets.compute ~n:3 run.All_run.rounds in
  Alcotest.check ids "UP(p1, 1)" (Ids.singleton 1) (Upsets.of_process up ~r:1 ~pid:1);
  Alcotest.check ids "UP(R0, 2)" (Ids.singleton 0) (Upsets.of_register up ~r:2 ~reg:0);
  (* p0's successful SC joins UP(R0, 1) = {} — stays {p0}. *)
  Alcotest.check ids "UP(p0, 2)" (Ids.singleton 0) (Upsets.of_process up ~r:2 ~pid:0);
  (* p1's unsuccessful SC joins UP(R0, 2) = {p0}. *)
  Alcotest.check ids "UP(p1, 2)" (Ids.of_list [ 0; 1 ]) (Upsets.of_process up ~r:2 ~pid:1)

let test_up_swap_chain () =
  (* Both processes swap the same register in one round: the second swapper
     learns the first's knowledge (rule: swap immediately after q). *)
  let program_of pid =
    let* old = Program.swap 0 (Value.Int pid) in
    Program.return (Value.to_int old)
  in
  let run = All_run.execute ~n:2 ~program_of ~inits:[ (0, Value.Int 42) ] ~max_rounds:5 () in
  let up = Upsets.compute ~n:2 run.All_run.rounds in
  (* p0 swaps first: learns UP(R0, 0) = {} -> {p0}.  p1 swaps second: learns
     UP(p0, 0) = {p0} -> {p0, p1}.  Register: last swapper p1's knowledge at
     r-1 = {p1}. *)
  Alcotest.check ids "first swapper" (Ids.singleton 0) (Upsets.of_process up ~r:1 ~pid:0);
  Alcotest.check ids "second swapper" (Ids.of_list [ 0; 1 ]) (Upsets.of_process up ~r:1 ~pid:1);
  Alcotest.check ids "register gets last swapper's" (Ids.singleton 1)
    (Upsets.of_register up ~r:1 ~reg:0)

let test_up_move_rule () =
  (* p0 moves R1 -> R0 in round 1; p1 LLs R0 in round 2 and learns the
     source's and the mover's knowledge. *)
  let program_of = function
    | 0 ->
      let* () = Program.move ~src:1 ~dst:0 in
      Program.return 0
    | _ ->
      (* p1 idles one round on a private register, then reads R0. *)
      let* _ = Program.ll 5 in
      let* v = Program.read 0 in
      Program.return (Value.to_int v)
  in
  let run = All_run.execute ~n:2 ~program_of ~inits:[ (1, Value.Int 7) ] ~max_rounds:5 () in
  let up = Upsets.compute ~n:2 run.All_run.rounds in
  (* Round 1: R0 receives a move: UP(R0,1) = UP(R1,0) ∪ UP(p0,0) = {p0};
     the mover itself learns nothing. *)
  Alcotest.check ids "mover learns nothing" (Ids.singleton 0) (Upsets.of_process up ~r:1 ~pid:0);
  Alcotest.check ids "moved-into register" (Ids.singleton 0) (Upsets.of_register up ~r:1 ~reg:0);
  (* Round 2: p1 validates R0 and learns {p0}. *)
  Alcotest.check ids "reader learns mover" (Ids.of_list [ 0; 1 ])
    (Upsets.of_process up ~r:2 ~pid:1)

let test_lemma_5_1_on_corpus () =
  List.iter
    (fun (entry : Corpus.entry) ->
      List.iter
        (fun n ->
          let program_of, inits = entry.Corpus.make ~n in
          let run = All_run.execute ~n ~program_of ~inits ~max_rounds:2_000 () in
          let up = Upsets.compute ~n run.All_run.rounds in
          Alcotest.(check bool)
            (Printf.sprintf "lemma 5.1: %s n=%d" entry.Corpus.name n)
            true (Upsets.lemma_5_1_holds up))
        [ 2; 5; 8 ])
    [ Corpus.naive; Corpus.log_wakeup ]

(* ---- (S, A)-runs and indistinguishability ---- *)

let indist_check_entry (entry : Corpus.entry) ~n ~seed =
  let program_of, inits = entry.Corpus.make ~n in
  let assignment = Coin.uniform ~seed in
  let run = All_run.execute ~n ~program_of ~assignment ~inits ~max_rounds:2_000 () in
  let upsets = Upsets.compute ~n run.All_run.rounds in
  (* Check the lemma for several subsets S: each process's final UP set, and
     the full set. *)
  let subsets =
    Ids.range n
    :: List.init n (fun pid ->
           let r = min (All_run.ops_of run ~pid) (All_run.num_rounds run) in
           Upsets.of_process upsets ~r ~pid)
  in
  List.iter
    (fun s ->
      let s_run = S_run.execute ~n ~program_of ~assignment ~inits ~s ~all_run:run ~upsets () in
      let failures = Indistinguishability.check ~n ~all_run:run ~s_run ~upsets in
      if failures <> [] then
        Alcotest.failf "%s n=%d S=%s: %a" entry.Corpus.name n (Ids.to_string s)
          Indistinguishability.pp_failure (List.hd failures);
      let claim_failures = Claims.check ~n ~all_run:run ~s_run ~upsets in
      if claim_failures <> [] then
        Alcotest.failf "%s n=%d S=%s: %a" entry.Corpus.name n (Ids.to_string s)
          Claims.pp_failure (List.hd claim_failures))
    subsets

let test_indistinguishability_corpus () =
  List.iter
    (fun entry ->
      List.iter (fun n -> indist_check_entry entry ~n ~seed:11) [ 2; 4; 7 ])
    ([ Corpus.naive; Corpus.post_collect; Corpus.move_collect; Corpus.tree_collect;
       Corpus.two_counter; Corpus.backoff_collect; Corpus.log_wakeup ]
    @ Corpus.cheaters ~n_hint:7)

let test_s_run_full_set_equals_all_run () =
  (* With S = everyone, the (S, A)-run replays the (All, A)-run exactly. *)
  let program_of, inits = Corpus.naive.Corpus.make ~n:5 in
  let run = All_run.execute ~n:5 ~program_of ~inits ~max_rounds:1_000 () in
  let upsets = Upsets.compute ~n:5 run.All_run.rounds in
  let s_run =
    S_run.execute ~n:5 ~program_of ~inits ~s:(Ids.range 5) ~all_run:run ~upsets ()
  in
  Alcotest.(check int) "same rounds" (All_run.num_rounds run) (S_run.num_rounds s_run);
  Alcotest.(check bool) "same results" true (s_run.S_run.results = run.All_run.results);
  Alcotest.check ids "everyone stepped" (Ids.range 5) (S_run.steppers s_run)

let test_s_run_restricts_steppers () =
  (* For the blind cheater, S = {winner}: only the winner steps in the
     (S, A)-run. *)
  let program_of, inits = Cheaters.blind ~n:6 in
  let run = All_run.execute ~n:6 ~program_of ~inits ~max_rounds:100 () in
  let upsets = Upsets.compute ~n:6 run.All_run.rounds in
  let s = Upsets.of_process upsets ~r:1 ~pid:0 in
  Alcotest.check ids "S = {p0}" (Ids.singleton 0) s;
  let s_run = S_run.execute ~n:6 ~program_of ~inits ~s ~all_run:run ~upsets () in
  Alcotest.check ids "only p0 stepped" (Ids.singleton 0) (S_run.steppers s_run);
  Alcotest.(check bool) "p0 still returns 1" true
    (List.exists (fun (pid, v) -> pid = 0 && v = 1) s_run.S_run.results)

(* ---- Theorem 6.1 analysis ---- *)

let test_ceil_log4 () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "ceil_log4 %d" n) expected (Lower_bound.ceil_log4 n))
    [ (1, 0); (2, 1); (4, 1); (5, 2); (16, 2); (17, 3); (64, 3); (65, 4); (256, 4) ]

let test_analyze_correct_algorithms () =
  List.iter
    (fun (entry : Corpus.entry) ->
      List.iter
        (fun n ->
          let report = Lowerbound.analyze_entry entry ~n ~max_rounds:2_000 in
          let label fmt = Printf.sprintf "%s n=%d: %s" entry.Corpus.name n fmt in
          Alcotest.(check bool) (label "terminating") true report.Lower_bound.terminating;
          Alcotest.(check bool) (label "someone returned 1") true
            report.Lower_bound.someone_returned_one;
          Alcotest.(check bool) (label "lemma 5.1") true report.Lower_bound.lemma_5_1;
          Alcotest.(check int) (label "S is everyone") n report.Lower_bound.s_size;
          Alcotest.(check bool) (label "bound met") true report.Lower_bound.bound_met;
          Alcotest.(check int)
            (label "no indist failures")
            0
            (List.length report.Lower_bound.indist_failures);
          Alcotest.(check bool) (label "no violation") true
            (report.Lower_bound.violation = None))
        [ 2; 4; 8; 16 ])
    [ Corpus.naive; Corpus.log_wakeup ]

let test_analyze_catches_cheaters () =
  List.iter
    (fun n ->
      List.iter
        (fun (entry : Corpus.entry) ->
          if not entry.Corpus.randomized then begin
            let report = Lowerbound.analyze_entry entry ~n ~max_rounds:1_000 in
            match report.Lower_bound.violation with
            | Some v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d: silent nonempty" entry.Corpus.name n)
                false (Ids.is_empty v.Lower_bound.silent)
            | None ->
              Alcotest.failf "%s n=%d: cheater not caught" entry.Corpus.name n
          end)
        (Corpus.cheaters ~n_hint:n))
    [ 32; 64; 256 ]

let test_analyze_lucky_cheater_seeded () =
  (* The randomized cheater is caught on a seed where someone draws outcome
     0 (probability 1 - (3/4)^n over processes). *)
  let entry = List.find (fun e -> e.Corpus.name = "cheater-lucky") (Corpus.cheaters ~n_hint:64) in
  let caught = ref false in
  for seed = 1 to 20 do
    if not !caught then begin
      let report = Lowerbound.analyze_entry_seeded entry ~n:64 ~seed ~max_rounds:1_000 in
      if report.Lower_bound.violation <> None then caught := true
    end
  done;
  Alcotest.(check bool) "caught on some seed" true !caught

let test_estimate_randomized () =
  let e =
    let program_of_factory ~n = Corpus.two_counter.Corpus.make ~n in
    let program_of, inits = program_of_factory ~n:16 in
    Lower_bound.estimate ~n:16 ~program_of ~inits ~seeds:(List.init 10 (fun i -> i))
      ~max_rounds:2_000 ()
  in
  Alcotest.(check int) "all terminated" 10 e.Lower_bound.terminated;
  Alcotest.(check bool) "expected >= c log4 n" true
    (e.Lower_bound.mean_winner_ops >= e.Lower_bound.expected_bound);
  Alcotest.(check bool) "min over seeds >= log4 n" true
    (float_of_int e.Lower_bound.min_winner_ops >= Lower_bound.log4 16)

let test_estimate_partial_termination () =
  (* Lemma 3.1 with c < 1: each process first tosses a coin in {0..3}; on 0
     it spins forever, otherwise it runs the naive collect.  A toss
     assignment yields a terminating (All, A)-run iff no process draws 0,
     so the termination rate estimates (3/4)^n. *)
  let n = 4 in
  let collect, inits = Direct_algorithms.naive_collect ~n in
  let program_of pid =
    let* outcome = Program.toss_bounded 4 in
    if outcome = 0 then
      let rec spin () =
        let* _ = Program.ll 5 in
        spin ()
      in
      spin ()
    else collect pid
  in
  let seeds = List.init 120 (fun i -> i) in
  let e = Lower_bound.estimate ~n ~program_of ~inits ~seeds ~max_rounds:200 () in
  let analytic = (3.0 /. 4.0) ** float_of_int n (* ~ 0.316 *) in
  Alcotest.(check bool) "some runs diverge" true (e.Lower_bound.terminated < 120);
  Alcotest.(check bool) "some runs terminate" true (e.Lower_bound.terminated > 0);
  Alcotest.(check bool) "rate near (3/4)^n" true
    (abs_float (e.Lower_bound.termination_rate -. analytic) < 0.15);
  (* Lemma 3.1: the expected complexity clears the c-scaled floor. *)
  Alcotest.(check bool) "expected >= c log4 n" true
    (e.Lower_bound.mean_winner_ops >= e.Lower_bound.expected_bound)

(* ---- negative tests: the checkers can actually fail ---- *)

let test_indist_checker_detects_divergence () =
  (* Replay the (S, A)-run of a randomized algorithm with a DIFFERENT toss
     assignment: the runs genuinely diverge and the checker must say so. *)
  let n = 4 in
  let program_of, inits = Corpus.two_counter.Corpus.make ~n in
  let run =
    All_run.execute ~n ~program_of ~assignment:(Coin.uniform ~seed:1) ~inits ~max_rounds:500 ()
  in
  let upsets = Upsets.compute ~n run.All_run.rounds in
  let s_run =
    S_run.execute ~n ~program_of
      ~assignment:(Coin.uniform ~seed:999) (* wrong on purpose *)
      ~inits ~s:(Ids.range n) ~all_run:run ~upsets ()
  in
  let failures = Indistinguishability.check ~n ~all_run:run ~s_run ~upsets in
  Alcotest.(check bool) "divergence detected" true (failures <> [])

let test_claims_checker_detects_divergence () =
  let n = 4 in
  let program_of, inits = Corpus.two_counter.Corpus.make ~n in
  let run =
    All_run.execute ~n ~program_of ~assignment:(Coin.uniform ~seed:1) ~inits ~max_rounds:500 ()
  in
  let upsets = Upsets.compute ~n run.All_run.rounds in
  let s_run =
    S_run.execute ~n ~program_of ~assignment:(Coin.uniform ~seed:999) ~inits ~s:(Ids.range n)
      ~all_run:run ~upsets ()
  in
  Alcotest.(check bool) "claims divergence detected" true
    (Claims.check ~n ~all_run:run ~s_run ~upsets <> [])

(* ---- the remaining UP rules, pinned by hand-crafted scenarios ---- *)

let test_up_register_unchanged_rule () =
  (* Register rule 4: no successful SC, no swap, no move into R in round r
     => UP(R, r) = UP(R, r-1). *)
  let program_of = function
    | 0 ->
      (* p0 installs knowledge {p0} into R0 in round 2 via a successful SC,
         then stops. *)
      let* _ = Program.ll 0 in
      let* _ = Program.sc 0 (Value.Int 1) in
      Program.return 0
    | _ ->
      (* p1 keeps LL-ing a different register for a while. *)
      let rec busy k =
        if k = 0 then Program.return 0
        else
          let* _ = Program.ll 7 in
          busy (k - 1)
      in
      busy 6
  in
  let run =
    All_run.execute ~n:2 ~program_of ~inits:[ (0, Value.Int 0); (7, Value.Int 0) ]
      ~max_rounds:10 ()
  in
  let up = Upsets.compute ~n:2 run.All_run.rounds in
  let expected = Ids.singleton 0 in
  (* R0 untouched from round 3 on: its UP set must stay {p0} verbatim. *)
  List.iter
    (fun r ->
      Alcotest.check (Alcotest.testable Ids.pp Ids.equal)
        (Printf.sprintf "UP(R0, %d)" r)
        expected
        (Upsets.of_register up ~r ~reg:0))
    [ 2; 3; 4; 5 ]

let test_up_first_swap_after_move_rule () =
  (* Process rule 4: p's first swap on R in a round where a move lands in R
     joins the source's and the movers' knowledge (p's swap returns what the
     move put there). *)
  let program_of = function
    | 0 ->
      (* p0: LL R5 in round 1 (gains nothing), move R5 -> R3 in round 2. *)
      let* _ = Program.ll 5 in
      let* () = Program.move ~src:5 ~dst:3 in
      Program.return 0
    | _ ->
      (* p1: LL R9 in round 1 (idle), swap on R3 in round 2 — same round as
         the move, and swaps fire after moves. *)
      let* _ = Program.ll 9 in
      let* old = Program.swap 3 (Value.Int 77) in
      Program.return (Value.to_int old)
  in
  let run =
    All_run.execute ~n:2 ~program_of
      ~inits:[ (3, Value.Int 0); (5, Value.Int 42); (9, Value.Int 0) ]
      ~max_rounds:10 ()
  in
  (* p1's swap returned the moved value. *)
  Alcotest.(check int) "swap saw moved value" 42 (List.assoc 1 run.All_run.results);
  let up = Upsets.compute ~n:2 run.All_run.rounds in
  (* After round 2, p1 knows the mover p0. *)
  Alcotest.check (Alcotest.testable Ids.pp Ids.equal) "UP(p1, 2)" (Ids.of_list [ 0; 1 ])
    (Upsets.of_process up ~r:2 ~pid:1)

let suite =
  [
    Alcotest.test_case "all-run phases" `Quick test_all_run_phases;
    Alcotest.test_case "all-run round limit" `Quick test_all_run_round_limit;
    Alcotest.test_case "all-run mixed phases" `Quick test_all_run_mixed_phases;
    Alcotest.test_case "termination round" `Quick test_termination_round;
    Alcotest.test_case "UP initial" `Quick test_up_initial;
    Alcotest.test_case "UP: LL then SC" `Quick test_up_ll_then_sc;
    Alcotest.test_case "UP: swap chain" `Quick test_up_swap_chain;
    Alcotest.test_case "UP: move rule" `Quick test_up_move_rule;
    Alcotest.test_case "Lemma 5.1 on corpus" `Quick test_lemma_5_1_on_corpus;
    Alcotest.test_case "Lemma 5.2 on corpus" `Slow test_indistinguishability_corpus;
    Alcotest.test_case "S-run with S=all replays" `Quick test_s_run_full_set_equals_all_run;
    Alcotest.test_case "S-run restricts steppers" `Quick test_s_run_restricts_steppers;
    Alcotest.test_case "ceil_log4" `Quick test_ceil_log4;
    Alcotest.test_case "Theorem 6.1: correct algorithms" `Slow test_analyze_correct_algorithms;
    Alcotest.test_case "Theorem 6.1: cheaters caught" `Slow test_analyze_catches_cheaters;
    Alcotest.test_case "lucky cheater caught on a seed" `Slow test_analyze_lucky_cheater_seeded;
    Alcotest.test_case "randomized estimate (Lemma 3.1)" `Slow test_estimate_randomized;
    Alcotest.test_case "partial termination (c < 1)" `Slow test_estimate_partial_termination;
    Alcotest.test_case "indist checker detects divergence" `Quick
      test_indist_checker_detects_divergence;
    Alcotest.test_case "claims checker detects divergence" `Quick
      test_claims_checker_detects_divergence;
    Alcotest.test_case "UP rule: register unchanged" `Quick test_up_register_unchanged_rule;
    Alcotest.test_case "UP rule: first swap after move" `Quick
      test_up_first_swap_after_move_rule;
  ]
