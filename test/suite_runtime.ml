(* Tests for the runtime: coins, the program monad, processes, systems and
   generic schedulers. *)

open Lowerbound
open Program.Syntax

let value = Alcotest.testable Value.pp Value.equal

(* ---- Coin ---- *)

let test_coin_constant () =
  let a = Coin.constant 7 in
  Alcotest.(check int) "constant" 7 (a ~pid:3 ~idx:12)

let test_coin_uniform_deterministic () =
  let a = Coin.uniform ~seed:1 and b = Coin.uniform ~seed:1 in
  for pid = 0 to 5 do
    for idx = 0 to 5 do
      Alcotest.(check int) "replayable" (a ~pid ~idx) (b ~pid ~idx)
    done
  done

let test_coin_uniform_nonneg_and_varied () =
  let a = Coin.uniform ~seed:99 in
  let outcomes = List.init 64 (fun i -> a ~pid:(i mod 8) ~idx:(i / 8)) in
  List.iter (fun o -> Alcotest.(check bool) "non-negative" true (o >= 0)) outcomes;
  let distinct = List.sort_uniq Int.compare outcomes in
  Alcotest.(check bool) "not constant" true (List.length distinct > 32)

let test_coin_bounded () =
  let a = Coin.bounded ~bound:3 (Coin.uniform ~seed:5) in
  for i = 0 to 50 do
    let o = a ~pid:0 ~idx:i in
    Alcotest.(check bool) "in range" true (o >= 0 && o < 3)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Coin.bounded: bound must be positive")
    (fun () ->
      let _ : Coin.assignment = Coin.bounded ~bound:0 (Coin.constant 0) in
      ())

(* ---- Program ---- *)

let run_program ?(assignment = Coin.constant 0) ?(inits = []) program =
  let memory = Memory.create ~default:(Value.Int 0) () in
  List.iter (fun (r, v) -> Memory.set_init memory r v) inits;
  let p = Process.create ~id:0 program in
  let result = Process.run_solo p memory assignment ~fuel:10_000 in
  (result, memory, p)

let test_program_pure () =
  let result, _, p = run_program (Program.return 42) in
  Alcotest.(check int) "pure" 42 result;
  Alcotest.(check int) "no ops" 0 (Process.shared_ops p);
  Alcotest.(check int) "no tosses" 0 (Process.num_tosses p)

let test_program_ll_swap () =
  let program =
    let* v = Program.ll 0 in
    let* old = Program.swap 1 v in
    Program.return (Value.to_int old)
  in
  let result, memory, p = run_program ~inits:[ (0, Value.Int 5); (1, Value.Int 9) ] program in
  Alcotest.(check int) "swap returned old" 9 result;
  Alcotest.check value "swapped in" (Value.Int 5) (Memory.peek memory 1);
  Alcotest.(check int) "two ops" 2 (Process.shared_ops p)

let test_program_sc_validate () =
  let program =
    let* _ = Program.ll 0 in
    let* ok1 = Program.sc_flag 0 (Value.Int 1) in
    let* ok2 = Program.sc_flag 0 (Value.Int 2) in
    let* linked, v = Program.validate 0 in
    Program.return (ok1, ok2, linked, Value.to_int v)
  in
  let (ok1, ok2, linked, v), _, _ = run_program program in
  Alcotest.(check bool) "first SC succeeds" true ok1;
  Alcotest.(check bool) "second SC fails (link consumed)" false ok2;
  Alcotest.(check bool) "not linked" false linked;
  Alcotest.(check int) "value" 1 v

let test_program_read_does_not_link () =
  let program =
    let* _ = Program.read 0 in
    let* ok = Program.sc_flag 0 (Value.Int 1) in
    Program.return ok
  in
  let ok, _, _ = run_program program in
  Alcotest.(check bool) "read is not LL" false ok

let test_program_move () =
  let program =
    let* () = Program.move ~src:0 ~dst:1 in
    Program.read 1
  in
  let result, _, _ = run_program ~inits:[ (0, Value.Str "x") ] program in
  Alcotest.check value "moved" (Value.Str "x") result

let test_program_toss () =
  let program =
    let* a = Program.toss in
    let* b = Program.toss_bounded 10 in
    Program.return (a, b)
  in
  let (a, b), _, p = run_program ~assignment:(Coin.of_fun (fun _ idx -> 100 + idx)) program in
  Alcotest.(check int) "first toss" 100 a;
  Alcotest.(check int) "second toss mod 10" 1 b;
  Alcotest.(check int) "tosses counted" 2 (Process.num_tosses p)

let test_program_iter_fold_map () =
  let program =
    let* () = Program.iter_list (fun r -> Program.move ~src:9 ~dst:r) [ 0; 1; 2 ] in
    let* sum =
      Program.fold_list
        (fun acc r ->
          let* v = Program.read r in
          Program.return (acc + Value.to_int v))
        0 [ 0; 1; 2 ]
    in
    let* values = Program.map_list (fun r -> Program.read r) [ 0; 1 ] in
    Program.return (sum, List.length values)
  in
  let (sum, len), _, _ = run_program ~inits:[ (9, Value.Int 7) ] program in
  Alcotest.(check int) "fold sum" 21 sum;
  Alcotest.(check int) "map length" 2 len

let test_retry_until () =
  (* Succeeds on attempt 3. *)
  let attempts = ref 0 in
  let program =
    Program.retry_until ~max_attempts:5 (fun () ->
        incr attempts;
        let* _ = Program.read 0 in
        Program.return (if !attempts = 3 then Some !attempts else None))
  in
  let result, _, p = run_program program in
  Alcotest.(check int) "result" 3 result;
  Alcotest.(check int) "ops = attempts" 3 (Process.shared_ops p)

let test_retry_exhaustion () =
  let program =
    Program.retry_until ~max_attempts:2 (fun () ->
        let* _ = Program.read 0 in
        Program.return None)
  in
  Alcotest.check_raises "exhausted" (Failure "Program.retry_until: 2 attempts exhausted")
    (fun () -> ignore (run_program program))

let test_pending_op () =
  let program = Program.ll 3 in
  (match Program.pending_op program with
  | Some inv -> Alcotest.(check bool) "LL pending" true (Op.equal_invocation inv (Op.Ll 3))
  | None -> Alcotest.fail "expected pending op");
  Alcotest.(check bool) "toss not pending" true
    (Program.pending_op Program.toss = None);
  Alcotest.(check bool) "return is done" true (Program.is_done (Program.return ()))

(* ---- Process ---- *)

let test_process_history () =
  let program =
    let* _ = Program.ll 0 in
    let* _ = Program.sc 0 (Value.Int 1) in
    Program.return 0
  in
  let _, _, p = run_program program in
  match Process.history p with
  | [ h1; h2 ] ->
    Alcotest.(check bool) "first LL" true (Op.equal_invocation h1.Process.invocation (Op.Ll 0));
    Alcotest.(check bool) "second SC" true
      (Op.equal_invocation h2.Process.invocation (Op.Sc (0, Value.Int 1)))
  | h -> Alcotest.failf "expected 2 history entries, got %d" (List.length h)

let test_process_tosses_recorded () =
  let program =
    let* a = Program.toss in
    let* b = Program.toss in
    Program.return (a + b)
  in
  let memory = Memory.create () in
  let p = Process.create ~id:2 program in
  let assignment = Coin.of_fun (fun pid idx -> (10 * pid) + idx) in
  ignore (Process.run_solo p memory assignment ~fuel:10);
  Alcotest.(check (list int)) "toss outcomes" [ 20; 21 ] (Process.tosses p)

let test_exec_without_pending () =
  let p = Process.create ~id:0 (Program.return 1) in
  Alcotest.(check bool) "terminated" true (Process.is_terminated p);
  Alcotest.check_raises "no pending op"
    (Invalid_argument "Process.exec_op: p0 has no pending operation") (fun () ->
      ignore (Process.exec_op p (Memory.create ()) ~round:1))

let test_run_solo_fuel () =
  (* An infinite LL loop must hit the fuel bound. *)
  let rec spin () =
    let* _ = Program.ll 0 in
    spin ()
  in
  let p = Process.create ~id:0 (spin ()) in
  Alcotest.check_raises "fuel" (Failure "Process.run_solo: p0 did not finish within fuel")
    (fun () -> ignore (Process.run_solo p (Memory.create ()) (Coin.constant 0) ~fuel:5))

(* ---- System + schedulers ---- *)

let incrementer _pid =
  let* v = Program.ll 0 in
  let* ok = Program.sc_flag 0 (Value.Int (Value.to_int v + 1)) in
  Program.return (if ok then 1 else 0)

let test_system_round_robin () =
  let memory = Memory.create ~default:(Value.Int 0) () in
  let sys = System.create ~memory ~n:4 incrementer in
  let outcome = System.run sys Scheduler.round_robin ~fuel:1_000 in
  Alcotest.(check bool) "terminated" true (outcome = System.All_terminated);
  (* Under round-robin all LL first, then all SC: exactly one SC wins. *)
  let winners =
    Array.to_list (System.results sys) |> List.filter (fun r -> r = Some 1) |> List.length
  in
  Alcotest.(check int) "one winner" 1 winners;
  Alcotest.check value "counter" (Value.Int 1) (Memory.peek memory 0)

let test_system_sequential_schedule () =
  (* The fixed scheduler running each process to completion in turn lets every
     SC succeed. *)
  let memory = Memory.create ~default:(Value.Int 0) () in
  let sys = System.create ~memory ~n:3 incrementer in
  let sequence = [ 0; 0; 1; 1; 2; 2 ] in
  let outcome = System.run sys (Scheduler.fixed sequence) ~fuel:100 in
  Alcotest.(check bool) "terminated" true (outcome = System.All_terminated);
  Alcotest.check value "counter 3" (Value.Int 3) (Memory.peek memory 0);
  Array.iter (fun r -> Alcotest.(check (option int)) "all won" (Some 1) r) (System.results sys)

let test_system_stalls () =
  let memory = Memory.create ~default:(Value.Int 0) () in
  let sys = System.create ~memory ~n:2 incrementer in
  let outcome = System.run sys (Scheduler.fixed [ 0 ]) ~fuel:100 in
  Alcotest.(check bool) "stalled" true (outcome = System.Stalled)

let test_system_out_of_fuel () =
  let rec spin _pid =
    let* _ = Program.ll 0 in
    spin 0
  in
  let sys = System.create ~n:2 (fun pid -> spin pid) in
  let outcome = System.run sys Scheduler.round_robin ~fuel:10 in
  Alcotest.(check bool) "out of fuel" true (outcome = System.Out_of_fuel)

let test_run_diagnosed () =
  (* run_diagnosed reports who was scheduled last, per-process op counts
     (the paper's t(p, R)) and who never finished. *)
  let memory = Memory.create ~default:(Value.Int 0) () in
  let sys = System.create ~memory ~n:3 incrementer in
  let d = System.run_diagnosed sys (Scheduler.fixed [ 0; 0; 1; 1 ]) ~fuel:100 in
  Alcotest.(check bool) "stalled" true (d.System.outcome = System.Stalled);
  Alcotest.(check int) "four steps" 4 d.System.steps;
  Alcotest.(check (option int)) "last scheduled" (Some 1) d.System.last_scheduled;
  Alcotest.(check (list (pair int int))) "t(p, R)" [ (0, 2); (1, 2); (2, 0) ]
    d.System.ops_per_process;
  Alcotest.(check (list int)) "p2 unfinished" [ 2 ] d.System.unfinished;
  (* run is run_diagnosed's outcome. *)
  let sys2 = System.create ~memory:(Memory.create ~default:(Value.Int 0) ()) ~n:3 incrementer in
  Alcotest.(check bool) "run agrees" true
    (System.run sys2 (Scheduler.fixed [ 0; 0; 1; 1 ]) ~fuel:100 = System.Stalled)

let test_crash_scheduler () =
  let memory = Memory.create ~default:(Value.Int 0) () in
  let sys = System.create ~memory ~n:4 incrementer in
  let dead = Ids.of_list [ 1; 3 ] in
  let outcome = System.run sys (Scheduler.crash ~dead Scheduler.round_robin) ~fuel:1_000 in
  (* The dead processes never run, so the run stalls once the live ones
     finish. *)
  Alcotest.(check bool) "stalled" true (outcome = System.Stalled);
  Alcotest.(check (option int)) "p1 never ran" None (System.results sys).(1);
  Alcotest.(check bool) "p0 ran" true ((System.results sys).(0) <> None)

let test_random_scheduler_deterministic () =
  let run seed =
    let memory = Memory.create ~default:(Value.Int 0) () in
    let sys = System.create ~memory ~n:4 incrementer in
    ignore (System.run sys (Scheduler.random ~seed) ~fuel:1_000);
    Array.to_list (System.results sys)
  in
  Alcotest.(check bool) "same seed same run" true (run 7 = run 7)

let test_result_exn () =
  let sys = System.create ~n:1 (fun _ -> Program.return 9) in
  ignore (System.run sys Scheduler.round_robin ~fuel:10);
  Alcotest.(check int) "result" 9 (System.result_exn sys 0);
  let sys2 = System.create ~n:1 incrementer in
  Alcotest.check_raises "still running" (Invalid_argument "System.result_exn: p0 still running")
    (fun () -> ignore (System.result_exn sys2 0))

(* ---- relaxed memory: flush pseudo-pids and quiescence ---- *)

let test_relaxed_flush_scheduling () =
  let memory = Memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) () in
  let program pid =
    if pid = 0 then
      let* () = Program.write 1 (Value.Int 7) in
      Program.return 0
    else
      let* a = Program.read 1 in
      let* b = Program.read 1 in
      Program.return ((10 * Value.to_int a) + Value.to_int b)
  in
  let sys = System.create ~memory ~n:2 program in
  System.step sys ~pid:0;
  (* p0's buffered write of R1 is flush pseudo-pid n*(1+r)+p = 2*2+0 = 4. *)
  Alcotest.(check (list int)) "flush joins the schedulable set" [ 1; 4 ] (System.runnable sys);
  Alcotest.check value "not yet visible" (Value.Int 0) (Memory.peek memory 1);
  System.step sys ~pid:1;
  Alcotest.(check (list int)) "flush still pending" [ 1; 4 ] (System.runnable sys);
  System.step sys ~pid:4;
  Alcotest.check value "flush applied the write" (Value.Int 7) (Memory.peek memory 1);
  Alcotest.(check (list int)) "only p1 left" [ 1 ] (System.runnable sys);
  System.step sys ~pid:1;
  Alcotest.(check (list int)) "all terminated" [] (System.runnable sys);
  Alcotest.(check int) "p1 read 0 before the flush, 7 after" 7 (System.result_exn sys 1)

let test_relaxed_quiescent_drain () =
  (* When every process has returned, leftover buffers drain on the spot:
     their order is no longer observable, so no scheduling choice remains. *)
  let memory = Memory.create ~model:Memory_model.PSO ~default:(Value.Int 0) () in
  let program _pid =
    let* () = Program.write 0 (Value.Int 1) in
    let* () = Program.write 1 (Value.Int 2) in
    Program.return 0
  in
  let sys = System.create ~memory ~n:1 program in
  System.step sys ~pid:0;
  System.step sys ~pid:0;
  Alcotest.(check (list int)) "quiescent" [] (System.runnable sys);
  Alcotest.check value "R0 drained" (Value.Int 1) (Memory.peek memory 0);
  Alcotest.check value "R1 drained" (Value.Int 2) (Memory.peek memory 1)

let test_sc_never_schedules_flushes () =
  let memory = Memory.create ~default:(Value.Int 0) () in
  let program _pid =
    let* () = Program.write 0 (Value.Int 1) in
    Program.return 0
  in
  let sys = System.create ~memory ~n:2 program in
  Alcotest.(check (list int)) "plain pids only" [ 0; 1 ] (System.runnable sys);
  System.step sys ~pid:0;
  Alcotest.check value "write immediate under SC" (Value.Int 1) (Memory.peek memory 0)

let suite =
  [
    Alcotest.test_case "coin constant" `Quick test_coin_constant;
    Alcotest.test_case "coin uniform deterministic" `Quick test_coin_uniform_deterministic;
    Alcotest.test_case "coin uniform varied" `Quick test_coin_uniform_nonneg_and_varied;
    Alcotest.test_case "coin bounded" `Quick test_coin_bounded;
    Alcotest.test_case "program pure" `Quick test_program_pure;
    Alcotest.test_case "program LL/swap" `Quick test_program_ll_swap;
    Alcotest.test_case "program SC/validate" `Quick test_program_sc_validate;
    Alcotest.test_case "read does not link" `Quick test_program_read_does_not_link;
    Alcotest.test_case "program move" `Quick test_program_move;
    Alcotest.test_case "program toss" `Quick test_program_toss;
    Alcotest.test_case "iter/fold/map combinators" `Quick test_program_iter_fold_map;
    Alcotest.test_case "retry_until" `Quick test_retry_until;
    Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
    Alcotest.test_case "pending_op introspection" `Quick test_pending_op;
    Alcotest.test_case "process history" `Quick test_process_history;
    Alcotest.test_case "process tosses recorded" `Quick test_process_tosses_recorded;
    Alcotest.test_case "exec without pending raises" `Quick test_exec_without_pending;
    Alcotest.test_case "run_solo fuel" `Quick test_run_solo_fuel;
    Alcotest.test_case "system round robin" `Quick test_system_round_robin;
    Alcotest.test_case "system sequential schedule" `Quick test_system_sequential_schedule;
    Alcotest.test_case "system stalls" `Quick test_system_stalls;
    Alcotest.test_case "system out of fuel" `Quick test_system_out_of_fuel;
    Alcotest.test_case "run diagnostics" `Quick test_run_diagnosed;
    Alcotest.test_case "crash scheduler" `Quick test_crash_scheduler;
    Alcotest.test_case "random scheduler deterministic" `Quick test_random_scheduler_deterministic;
    Alcotest.test_case "result_exn" `Quick test_result_exn;
    Alcotest.test_case "relaxed flush scheduling" `Quick test_relaxed_flush_scheduling;
    Alcotest.test_case "relaxed quiescent drain" `Quick test_relaxed_quiescent_drain;
    Alcotest.test_case "sc never schedules flushes" `Quick test_sc_never_schedules_flushes;
  ]
