(* Tests for Value: the structured, unbounded register contents. *)

open Lowerbound

let value = Alcotest.testable Value.pp Value.equal

let samples =
  [
    Value.Unit;
    Value.Bool true;
    Value.Bool false;
    Value.Int 0;
    Value.Int (-7);
    Value.Int max_int;
    Value.Str "";
    Value.Str "hello";
    Value.Pair (Value.Int 1, Value.Str "x");
    Value.List [];
    Value.List [ Value.Int 1; Value.Int 2 ];
    Value.Bits (Bitvec.ones 17);
    Value.Pair (Value.List [ Value.Unit ], Value.Pair (Value.Bool true, Value.Int 3));
  ]

let test_equal_reflexive () =
  List.iter (fun v -> Alcotest.check value (Value.to_string v) v v) samples

let test_equal_distinct () =
  (* All samples are pairwise distinct. *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check bool)
              (Printf.sprintf "distinct %d %d" i j)
              false (Value.equal a b))
        samples)
    samples

let test_compare_total_order () =
  (* compare agrees with equal and is antisymmetric and transitive over the
     sample set. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Value.compare a b in
          Alcotest.(check bool) "antisym" true (c = -Value.compare b a);
          Alcotest.(check bool) "equal iff zero" true (Value.equal a b = (c = 0)))
        samples)
    samples;
  let sorted = List.sort Value.compare samples in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if Value.compare a b <= 0 && Value.compare b c <= 0 then
                Alcotest.(check bool) "transitive" true (Value.compare a c <= 0))
            sorted)
        sorted)
    sorted

let test_accessors () =
  Alcotest.(check int) "to_int" 42 (Value.to_int (Value.int 42));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check string) "to_str" "s" (Value.to_str (Value.str "s"));
  let a, b = Value.to_pair (Value.pair (Value.int 1) (Value.int 2)) in
  Alcotest.check value "pair fst" (Value.int 1) a;
  Alcotest.check value "pair snd" (Value.int 2) b;
  let x, y, z = Value.to_triple (Value.triple (Value.int 1) (Value.int 2) (Value.int 3)) in
  Alcotest.check value "triple 1" (Value.int 1) x;
  Alcotest.check value "triple 2" (Value.int 2) y;
  Alcotest.check value "triple 3" (Value.int 3) z;
  Alcotest.(check int) "list len" 2 (List.length (Value.to_list (Value.list [ Value.unit; Value.unit ])))

let test_accessor_errors () =
  Alcotest.check_raises "to_int on Str" (Invalid_argument "Value: expected Int, got \"x\"")
    (fun () -> ignore (Value.to_int (Value.str "x")));
  Alcotest.check_raises "to_pair on Unit" (Invalid_argument "Value: expected Pair, got ()")
    (fun () -> ignore (Value.to_pair Value.unit))

let test_size () =
  Alcotest.(check int) "scalar" 1 (Value.size (Value.int 5));
  Alcotest.(check int) "pair" 3 (Value.size (Value.pair Value.unit Value.unit));
  Alcotest.(check int) "list" 3 (Value.size (Value.list [ Value.unit; Value.unit ]));
  Alcotest.(check int) "bits counts words" 16 (Value.size (Value.bits (Bitvec.ones 1000)));
  Alcotest.(check int) "small bits" 1 (Value.size (Value.bits (Bitvec.ones 8)))

let test_pp () =
  Alcotest.(check string) "unit" "()" (Value.to_string Value.unit);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "pair" "(1, true)"
    (Value.to_string (Value.pair (Value.int 1) (Value.bool true)))

let suite =
  [
    Alcotest.test_case "equal reflexive" `Quick test_equal_reflexive;
    Alcotest.test_case "samples pairwise distinct" `Quick test_equal_distinct;
    Alcotest.test_case "compare total order" `Quick test_compare_total_order;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "accessor errors" `Quick test_accessor_errors;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
