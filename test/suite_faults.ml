(* Fault injection: wait-freedom of the universal constructions.

   A wait-free implementation guarantees that a process completes its
   operation in a bounded number of its own steps regardless of the other
   processes — including when they crash mid-operation.  We crash processes
   after a prefix of their steps and check the survivors finish, within
   their analytic bounds, with mutually consistent responses. *)

open Lowerbound

(* A scheduler that stops scheduling [pid] after it has taken [steps] steps
   (crash-stop mid-operation), delegating to round-robin otherwise. *)
let crash_after ~pid ~steps =
  let taken = ref 0 in
  fun ~step ~runnable ->
    let alive = if !taken >= steps then List.filter (fun p -> p <> pid) runnable else runnable in
    match Scheduler.round_robin ~step ~runnable:alive with
    | Some p ->
      if p = pid then incr taken;
      Some p
    | None -> None

let distinct_ints l = List.length (List.sort_uniq Int.compare l) = List.length l

let run_with_crash (construction : Iface.t) ~n ~crash_steps =
  let result =
    Harness.run ~construction ~spec:(Counters.fetch_inc ~bits:62) ~n
      ~ops:(fun _ -> [ Value.Unit ])
      ~scheduler:(crash_after ~pid:0 ~steps:crash_steps)
      ~fuel:(64 * n * construction.Iface.worst_case ~n)
      ()
  in
  (* p0 crashed, so the run cannot complete p0's operation... unless the
     crash point was late enough that it already finished. *)
  let finished_pids = List.map (fun (s : Harness.op_stat) -> s.Harness.pid) result.Harness.stats in
  let survivors = List.filter (fun p -> p <> 0) (List.init n (fun i -> i)) in
  (result, finished_pids, survivors)

let test_survivors_complete () =
  List.iter
    (fun (construction : Iface.t) ->
      List.iter
        (fun crash_steps ->
          List.iter
            (fun n ->
              let result, finished, survivors = run_with_crash construction ~n ~crash_steps in
              let label =
                Printf.sprintf "%s n=%d crash@%d" construction.Iface.name n crash_steps
              in
              List.iter
                (fun p ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: p%d finished" label p)
                    true (List.mem p finished))
                survivors;
              (* Survivors stay within the wait-free bound. *)
              List.iter
                (fun (s : Harness.op_stat) ->
                  if s.Harness.pid <> 0 then
                    Alcotest.(check bool)
                      (Printf.sprintf "%s: p%d within bound" label s.Harness.pid)
                      true
                      (s.Harness.cost <= construction.Iface.worst_case ~n))
                result.Harness.stats)
            [ 3; 5; 8 ])
        [ 1; 2; 5; 9 ])
    [ Adt_tree.construction; Herlihy.construction ]

let test_crashed_op_helped_or_lost_atomically () =
  (* The crashed process's increment either took effect (a helper applied
     its announced descriptor) or it did not — never half: survivors'
     responses are distinct and form a prefix-with-one-hole of 0..n-1. *)
  List.iter
    (fun (construction : Iface.t) ->
      List.iter
        (fun crash_steps ->
          let n = 6 in
          let result, _, _ = run_with_crash construction ~n ~crash_steps in
          let survivor_responses =
            List.filter_map
              (fun (s : Harness.op_stat) ->
                if s.Harness.pid = 0 then None else Some (Value.to_int s.Harness.response))
              result.Harness.stats
          in
          let label = Printf.sprintf "%s crash@%d" construction.Iface.name crash_steps in
          Alcotest.(check int) (label ^ ": all survivors responded") (n - 1)
            (List.length survivor_responses);
          Alcotest.(check bool) (label ^ ": distinct") true (distinct_ints survivor_responses);
          let sorted = List.sort Int.compare survivor_responses in
          let applied_without_p0 = List.init (n - 1) (fun i -> i) in
          let applied_with_p0_somewhere =
            (* p0's op applied at some point k: survivors see 0..n-1 minus k. *)
            List.exists
              (fun hole ->
                sorted = List.filter (fun v -> v <> hole) (List.init n (fun i -> i)))
              (List.init n (fun i -> i))
          in
          Alcotest.(check bool)
            (label ^ ": consistent counter")
            true
            (sorted = applied_without_p0 || applied_with_p0_somewhere))
        [ 1; 2; 3; 4; 6; 10 ])
    [ Adt_tree.construction; Herlihy.construction ]

let test_multiple_crashes () =
  (* Crash all but one process immediately: the lone survivor still finishes
     solo within its bound. *)
  List.iter
    (fun (construction : Iface.t) ->
      let n = 8 in
      let dead = Ids.of_list [ 0; 1; 2; 3; 4; 5; 6 ] in
      let result =
        Harness.run ~construction ~spec:(Counters.fetch_inc ~bits:62) ~n
          ~ops:(fun _ -> [ Value.Unit ])
          ~scheduler:(Scheduler.crash ~dead Scheduler.round_robin)
          ()
      in
      let mine =
        List.filter (fun (s : Harness.op_stat) -> s.Harness.pid = 7) result.Harness.stats
      in
      match mine with
      | [ s ] ->
        Alcotest.(check int) (construction.Iface.name ^ ": survivor sees 0") 0
          (Value.to_int s.Harness.response);
        Alcotest.(check bool) (construction.Iface.name ^ ": within bound") true
          (s.Harness.cost <= construction.Iface.worst_case ~n)
      | _ -> Alcotest.failf "%s: survivor did not finish exactly once" construction.Iface.name)
    [ Adt_tree.construction; Herlihy.construction ]

let test_retry_loop_not_wait_free_under_lockstep () =
  (* Contrast: the direct retry loop is only lock-free.  Under a pure
     lockstep schedule with enough processes, some process exhausts a small
     retry budget — the wait-freedom failure made visible. *)
  let layout = Layout.create () in
  let handle = Direct.fetch_inc_retry layout ~max_attempts:3 () in
  let memory = Memory.create () in
  Layout.install layout memory;
  let blew_up =
    try
      let _ =
        Harness.run_handle ~memory ~handle ~n:8 ~ops:(fun _ -> [ Value.Unit ]) ()
      in
      false
    with Failure message -> message = "Program.retry_until: 3 attempts exhausted"
  in
  Alcotest.(check bool) "retry budget exhausted under contention" true blew_up

let suite =
  [
    Alcotest.test_case "survivors complete after crash" `Slow test_survivors_complete;
    Alcotest.test_case "crashed op helped or lost atomically" `Slow
      test_crashed_op_helped_or_lost_atomically;
    Alcotest.test_case "lone survivor of 7 crashes" `Quick test_multiple_crashes;
    Alcotest.test_case "retry loop is not wait-free" `Quick
      test_retry_loop_not_wait_free_under_lockstep;
  ]
