(* Fault injection: wait-freedom of the universal constructions under
   adversity, via the lb_faults plan/engine/certification stack.

   A wait-free implementation guarantees that a process completes its
   operation in a bounded number of its own steps regardless of the other
   processes — including when they crash mid-operation, recover and retry,
   or suffer spurious SC failures (weak LL/SC).  Certification runs a
   workload under a declarative fault plan and returns a structured verdict
   instead of raising; these tests pin down the verdicts. *)

open Lowerbound

let certifiable = [ Adt_tree.construction; Herlihy.construction ]

let crash_plan ~crash_steps = Fault_plan.crash_stop ~pid:0 ~after:crash_steps

let process_report (r : Faults.report) pid =
  List.find (fun (p : Faults.process_report) -> p.Faults.pid = pid) r.Faults.processes

let test_survivors_complete () =
  List.iter
    (fun (construction : Iface.t) ->
      List.iter
        (fun crash_steps ->
          List.iter
            (fun n ->
              let label =
                Printf.sprintf "%s n=%d crash@%d" construction.Iface.name n crash_steps
              in
              let r =
                Faults.run ~target:construction ~plan:(crash_plan ~crash_steps) ~n ()
              in
              Alcotest.(check bool) (label ^ ": certified") true (Faults.certified r);
              List.iter
                (fun pid ->
                  let p = process_report r pid in
                  Alcotest.(check int) (Printf.sprintf "%s: p%d finished" label pid) 1
                    p.Faults.completed;
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: p%d within bound" label pid)
                    true p.Faults.within_bound)
                (List.init (n - 1) (fun i -> i + 1)))
            [ 3; 5; 8 ])
        [ 1; 2; 5; 9 ])
    certifiable

let test_crashed_op_helped_or_lost_atomically () =
  (* The crashed process's increment either took effect (a helper applied
     its announced descriptor) or it did not — never half.  [Faults.run]
     checks exactly this under crash plans: survivors' responses are
     distinct and form 0..max with at most one hole per in-flight crash. *)
  List.iter
    (fun (construction : Iface.t) ->
      List.iter
        (fun crash_steps ->
          let r = Faults.run ~target:construction ~plan:(crash_plan ~crash_steps) ~n:6 () in
          let label = Printf.sprintf "%s crash@%d" construction.Iface.name crash_steps in
          Alcotest.(check bool) (label ^ ": consistent counter") true r.Faults.consistent;
          Alcotest.(check bool) (label ^ ": certified") true (Faults.certified r))
        [ 1; 2; 3; 4; 6; 10 ])
    certifiable

let test_multiple_crashes () =
  (* Crash all but one process before their first step: the lone survivor
     still finishes solo, sees 0, and stays within its bound. *)
  List.iter
    (fun (construction : Iface.t) ->
      let n = 8 in
      let plan =
        Fault_plan.compose ~name:"crash-all-but-p7"
          (List.init 7 (fun pid -> Fault_plan.crash_stop ~pid ~after:0))
      in
      let r = Faults.run ~target:construction ~plan ~n () in
      Alcotest.(check bool) (construction.Iface.name ^ ": certified") true (Faults.certified r);
      match List.filter (fun (s : Harness.op_stat) -> s.Harness.pid = 7) r.Faults.raw.Harness.stats with
      | [ s ] ->
        Alcotest.(check int) (construction.Iface.name ^ ": survivor sees 0") 0
          (Value.to_int s.Harness.response);
        Alcotest.(check bool) (construction.Iface.name ^ ": within bound") true
          (s.Harness.cost <= construction.Iface.worst_case ~n)
      | _ -> Alcotest.failf "%s: survivor did not finish exactly once" construction.Iface.name)
    certifiable

let test_all_targets_certified_under_crash_stop () =
  (* The acceptance sweep: every certifiable target (including the direct
     retry loop) survives the named crash-stop plan at several sizes. *)
  List.iter
    (fun n ->
      let plan = Option.get (Fault_plan.of_name ~n "crash-stop") in
      List.iter
        (fun (target : Iface.t) ->
          let r = Faults.run ~target ~plan ~n () in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d certified under crash-stop" target.Iface.name n)
            true (Faults.certified r))
        Fault_targets.all)
    [ 4; 8 ]

let test_crash_recovery_reinvokes () =
  (* Crash-recovery: p0 loses its volatile state mid-operation, comes back,
     and re-invokes the operation from scratch with the same descriptor.
     The dedup in the constructions makes this idempotent, so the run stays
     consistent and p0 completes within the relaxed (2x) bound. *)
  List.iter
    (fun (construction : Iface.t) ->
      let n = 6 in
      let plan = Fault_plan.crash_recover ~pid:0 ~after:2 ~restart:(6 * n) in
      let r = Faults.run ~target:construction ~plan ~n () in
      let label = construction.Iface.name in
      Alcotest.(check bool) (label ^ ": certified") true (Faults.certified r);
      Alcotest.(check bool) (label ^ ": restarted") true (r.Faults.restarts >= 1);
      let p0 = process_report r 0 in
      Alcotest.(check int) (label ^ ": recovered p0 completed") 1 p0.Faults.completed;
      Alcotest.(check bool) (label ^ ": recovered within relaxed bound") true
        p0.Faults.within_bound;
      Alcotest.(check bool) (label ^ ": consistent") true r.Faults.consistent)
    certifiable

let test_spurious_sc_surgical () =
  (* Solo run, direct target: the first would-be-successful SC is failed
     spuriously; the retry loop absorbs it at the cost of one extra LL/SC
     pair.  Deterministic — no rates involved. *)
  let plan = Fault_plan.spurious_sc_at ~pid:0 ~at:[ 1 ] in
  let r = Faults.run ~target:Fault_targets.direct ~plan ~n:1 () in
  Alcotest.(check int) "exactly one injection" 1 r.Faults.spurious_injected;
  let p0 = process_report r 0 in
  Alcotest.(check int) "p0 completed" 1 p0.Faults.completed;
  Alcotest.(check int) "one retry: LL SC LL SC" 4 p0.Faults.max_cost;
  Alcotest.(check bool) "still certified" true (Faults.certified r);
  Alcotest.(check int) "injection attributed to p0" 1 p0.Faults.spurious_sc

let test_spurious_sc_exhausts_retry () =
  (* Rate 1.0: every would-be-successful SC fails, so the bounded retry
     loops exhaust and give up.  Certification reports the give-ups
     (graceful degradation) instead of crashing: DEGRADED, not VIOLATED. *)
  let n = 4 in
  let plan = Fault_plan.spurious_sc_rate 1.0 in
  let r = Faults.run ~target:Fault_targets.direct ~plan ~n () in
  Alcotest.(check bool) "some operations gave up" true (r.Faults.failures <> []);
  List.iter
    (fun (f : Harness.op_failure) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "failure reason mentions the give-up" true
        (contains f.Harness.reason "gave up"))
    r.Faults.failures;
  Alcotest.(check bool) "degraded, not violated" true (r.Faults.status = Faults.Degraded);
  Alcotest.(check bool) "still certified (reported gracefully)" true (Faults.certified r);
  (* Give-ups still cost shared ops: they count toward t(R). *)
  List.iter
    (fun (f : Harness.op_failure) ->
      Alcotest.(check bool) "give-up cost accounted" true (f.Harness.cost > 0))
    r.Faults.failures

let test_delay_and_stall_windows () =
  (* Bounded adversarial windows (starved process, stalled memory region)
     delay completion but cannot break wait-freedom: once the window
     expires everyone finishes, certified. *)
  List.iter
    (fun plan_name ->
      let n = 4 in
      let plan = Option.get (Fault_plan.of_name ~n plan_name) in
      List.iter
        (fun (target : Iface.t) ->
          let r = Faults.run ~target ~plan ~n () in
          let label = Printf.sprintf "%s under %s" target.Iface.name plan_name in
          Alcotest.(check bool) (label ^ ": certified") true (Faults.certified r);
          List.iter
            (fun (p : Faults.process_report) ->
              Alcotest.(check int)
                (Printf.sprintf "%s: p%d completed" label p.Faults.pid)
                1 p.Faults.completed)
            r.Faults.processes)
        [ Adt_tree.construction; Fault_targets.direct ])
    [ "delay"; "stall" ]

let test_retry_loop_not_wait_free_under_lockstep () =
  (* Contrast: the direct retry loop is only lock-free.  Under a pure
     lockstep schedule with enough processes, some process exhausts a small
     retry budget — the wait-freedom failure made visible.  The harness
     captures the raise as a structured op_failure (graceful degradation)
     instead of letting it kill the run. *)
  let layout = Layout.create () in
  let handle = Direct.fetch_inc_retry layout ~max_attempts:3 () in
  let memory = Memory.create () in
  Layout.install layout memory;
  let result = Harness.run_handle ~memory ~handle ~n:8 ~ops:(fun _ -> [ Value.Unit ]) () in
  Alcotest.(check bool) "retry budget exhausted under contention" true
    (List.exists
       (fun (f : Harness.op_failure) ->
         f.Harness.reason = "Program.retry_until: 3 attempts exhausted")
       result.Harness.failures);
  (* The other processes were not taken down by the failed one. *)
  Alcotest.(check bool) "the rest completed" true
    (List.length result.Harness.stats + List.length result.Harness.failures = 8)

(* ---- wakeup certification ---- *)

let test_wakeup_graceful_under_crashes () =
  (* An honest wakeup algorithm under crashes: wakeup becomes unattainable,
     and the honest survivors decline to claim it — DEGRADED, no false
     claim. *)
  let n = 6 in
  let entry = Option.get (Corpus.find "naive-collect") in
  let plan = Option.get (Fault_plan.of_name ~n "crash-stop") in
  let r = Faults.run_wakeup ~algorithm:entry.Corpus.name ~make:entry.Corpus.make ~plan ~n () in
  Alcotest.(check bool) "degraded" true (r.Faults.wstatus = Faults.Degraded);
  Alcotest.(check bool) "no false claim" false r.Faults.false_claim;
  Alcotest.(check (list int)) "nobody woke" [] r.Faults.woke

let test_wakeup_cheater_false_claim () =
  (* The blind cheater claims wakeup after a single LL.  Crash another
     process before its first step: the claim is now a concrete condition-
     (3) violation — someone returned 1 while p1 never took a step. *)
  let n = 4 in
  let plan = Fault_plan.crash_stop ~pid:1 ~after:0 in
  let r =
    Faults.run_wakeup ~algorithm:"cheater-blind"
      ~make:(fun ~n -> Cheaters.blind ~n)
      ~plan ~n ()
  in
  Alcotest.(check bool) "violated" true (r.Faults.wstatus = Faults.Violated);
  Alcotest.(check bool) "false claim detected" true r.Faults.false_claim

let test_cheater_plan_duals_are_graceful () =
  (* The dual framing: keep the algorithm honest (naive collect) and move
     each cheater's truncation into the environment as a crash plan.  The
     honest algorithm never produces a false claim under any of them —
     cheating is algorithmic, not environmental. *)
  let n = 6 in
  let entry = Option.get (Corpus.find "naive-collect") in
  List.iter
    (fun plan ->
      let r =
        Faults.run_wakeup ~algorithm:entry.Corpus.name ~make:entry.Corpus.make ~plan ~n ()
      in
      let label = Fault_plan.name plan in
      Alcotest.(check bool) (label ^ ": no false claim") false r.Faults.false_claim;
      Alcotest.(check bool) (label ^ ": not violated") true (r.Faults.wstatus <> Faults.Violated))
    [
      Cheaters.blind_plan ~n;
      Cheaters.fixed_ops_plan ~k:4 ~n;
      Cheaters.lucky_plan ~threshold:2 ~seed:3 ~n;
    ]

let test_plan_grammar () =
  let n = 8 in
  let composed = Option.get (Fault_plan.of_name ~n "crash-stop+spurious-sc") in
  Alcotest.(check bool) "composed has crash" true (Fault_plan.has_crash composed);
  Alcotest.(check bool) "composed has spurious" true (Fault_plan.has_spurious composed);
  Alcotest.(check bool) "unknown plan rejected" true (Fault_plan.of_name ~n "bogus" = None);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " resolves")
        true
        (Fault_plan.of_name ~n name <> None))
    Fault_plan.plan_names

let suite =
  [
    Alcotest.test_case "survivors complete after crash" `Slow test_survivors_complete;
    Alcotest.test_case "crashed op helped or lost atomically" `Slow
      test_crashed_op_helped_or_lost_atomically;
    Alcotest.test_case "lone survivor of 7 crashes" `Quick test_multiple_crashes;
    Alcotest.test_case "all targets certified under crash-stop" `Quick
      test_all_targets_certified_under_crash_stop;
    Alcotest.test_case "crash-recovery re-invokes idempotently" `Quick
      test_crash_recovery_reinvokes;
    Alcotest.test_case "surgical spurious SC absorbed by one retry" `Quick
      test_spurious_sc_surgical;
    Alcotest.test_case "spurious SC storm degrades gracefully" `Quick
      test_spurious_sc_exhausts_retry;
    Alcotest.test_case "delay and stall windows expire" `Quick test_delay_and_stall_windows;
    Alcotest.test_case "retry loop is not wait-free" `Quick
      test_retry_loop_not_wait_free_under_lockstep;
    Alcotest.test_case "honest wakeup degrades gracefully under crashes" `Quick
      test_wakeup_graceful_under_crashes;
    Alcotest.test_case "cheater under crash is a false claim" `Quick
      test_wakeup_cheater_false_claim;
    Alcotest.test_case "cheater plan duals are graceful" `Quick
      test_cheater_plan_duals_are_graceful;
    Alcotest.test_case "plan grammar" `Quick test_plan_grammar;
  ]
