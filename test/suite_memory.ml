(* Tests for the shared-memory semantics of Section 3: LL, SC, validate,
   swap, move over registers with (value, Pset) state. *)

open Lowerbound

let value = Alcotest.testable Value.pp Value.equal
let response = Alcotest.testable Op.pp_response Op.equal_response

let test_initial_default () =
  let m = Memory.create () in
  Alcotest.check value "unset register" Value.Unit (Memory.peek m 7);
  let m = Memory.create ~default:(Value.Int 0) () in
  Alcotest.check value "custom default" (Value.Int 0) (Memory.peek m 7)

let test_set_init () =
  let m = Memory.create () in
  Memory.set_init m 3 (Value.Int 9);
  Alcotest.check value "init value" (Value.Int 9) (Memory.peek m 3);
  Alcotest.(check int) "init does not count" 0 (Memory.total_ops m)

let test_ll_returns_and_links () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  Alcotest.check response "LL returns value" (Op.Value (Value.Int 5))
    (Memory.apply m ~pid:2 (Op.Ll 0));
  Alcotest.(check bool) "linked" true (Ids.mem 2 (Memory.pset m 0));
  Alcotest.(check bool) "others not linked" false (Ids.mem 1 (Memory.pset m 0))

let test_sc_success () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  Alcotest.check response "SC succeeds with old value" (Op.Flagged (true, Value.Int 5))
    (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 6)));
  Alcotest.check value "value updated" (Value.Int 6) (Memory.peek m 0);
  Alcotest.(check bool) "pset cleared" true (Ids.is_empty (Memory.pset m 0))

let test_sc_without_ll_fails () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  Alcotest.check response "SC fails" (Op.Flagged (false, Value.Int 5))
    (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 6)));
  Alcotest.check value "value unchanged" (Value.Int 5) (Memory.peek m 0)

let test_sc_invalidated_by_other_sc () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  ignore (Memory.apply m ~pid:2 (Op.Ll 0));
  ignore (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 6)));
  (* p2's link died with p1's successful SC; the failed SC returns the
     *current* value (the paper's strengthened response). *)
  Alcotest.check response "p2 SC fails with current value" (Op.Flagged (false, Value.Int 6))
    (Memory.apply m ~pid:2 (Op.Sc (0, Value.Int 7)));
  Alcotest.check value "p1's write stands" (Value.Int 6) (Memory.peek m 0)

let test_validate () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  Alcotest.check response "validate without link" (Op.Flagged (false, Value.Int 5))
    (Memory.apply m ~pid:1 (Op.Validate 0));
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  Alcotest.check response "validate with link" (Op.Flagged (true, Value.Int 5))
    (Memory.apply m ~pid:1 (Op.Validate 0));
  (* validate does not disturb the link: SC still succeeds. *)
  Alcotest.check response "SC after validate" (Op.Flagged (true, Value.Int 5))
    (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 6)))

let test_swap () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  Alcotest.check response "swap returns old" (Op.Value (Value.Int 5))
    (Memory.apply m ~pid:2 (Op.Swap (0, Value.Int 9)));
  Alcotest.check value "swapped" (Value.Int 9) (Memory.peek m 0);
  (* Swap kills links: p1's SC must now fail. *)
  Alcotest.check response "SC after swap fails" (Op.Flagged (false, Value.Int 9))
    (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 6)))

let test_move () =
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Int 5);
  Memory.set_init m 1 (Value.Int 7);
  ignore (Memory.apply m ~pid:3 (Op.Ll 1));
  ignore (Memory.apply m ~pid:3 (Op.Ll 0));
  Alcotest.check response "move acks" Op.Ack (Memory.apply m ~pid:2 (Op.Move (0, 1)));
  Alcotest.check value "dst got src value" (Value.Int 5) (Memory.peek m 1);
  Alcotest.check value "src unchanged" (Value.Int 5) (Memory.peek m 0);
  (* Move clears the destination's Pset but leaves the source's intact. *)
  Alcotest.(check bool) "dst pset cleared" true (Ids.is_empty (Memory.pset m 1));
  Alcotest.(check bool) "src pset kept" true (Ids.mem 3 (Memory.pset m 0))

let test_move_chain () =
  (* The introduction's example: moves R0 -> R1 -> R2 executed in order
     propagate R0's original value to R2. *)
  let m = Memory.create () in
  Memory.set_init m 0 (Value.Str "origin");
  Memory.set_init m 1 (Value.Str "b");
  Memory.set_init m 2 (Value.Str "c");
  ignore (Memory.apply m ~pid:0 (Op.Move (0, 1)));
  ignore (Memory.apply m ~pid:1 (Op.Move (1, 2)));
  Alcotest.check value "chained" (Value.Str "origin") (Memory.peek m 2)

let test_counting () =
  let m = Memory.create () in
  ignore (Memory.apply m ~pid:0 (Op.Ll 0));
  ignore (Memory.apply m ~pid:0 (Op.Sc (0, Value.Int 1)));
  ignore (Memory.apply m ~pid:1 (Op.Validate 0));
  Alcotest.(check int) "p0 ops" 2 (Memory.ops_of m ~pid:0);
  Alcotest.(check int) "p1 ops" 1 (Memory.ops_of m ~pid:1);
  Alcotest.(check int) "p2 ops" 0 (Memory.ops_of m ~pid:2);
  Alcotest.(check int) "total" 3 (Memory.total_ops m);
  Alcotest.(check int) "max" 2 (Memory.max_ops m)

let test_log () =
  let m = Memory.create ~log:true () in
  ignore (Memory.apply m ~pid:0 (Op.Ll 4));
  ignore (Memory.apply m ~pid:1 (Op.Swap (4, Value.Int 2)));
  match Memory.events m with
  | [ e1; e2 ] ->
    Alcotest.(check int) "first pid" 0 e1.Memory.pid;
    Alcotest.(check bool) "first is LL" true (Op.equal_invocation e1.Memory.invocation (Op.Ll 4));
    Alcotest.(check int) "second pid" 1 e2.Memory.pid
  | events -> Alcotest.failf "expected 2 events, got %d" (List.length events)

let test_log_disabled () =
  let m = Memory.create () in
  ignore (Memory.apply m ~pid:0 (Op.Ll 4));
  Alcotest.(check int) "no events" 0 (List.length (Memory.events m))

let test_snapshot_touched () =
  let m = Memory.create () in
  Memory.set_init m 5 (Value.Int 1);
  ignore (Memory.apply m ~pid:0 (Op.Ll 2));
  Alcotest.(check (list int)) "touched sorted" [ 2; 5 ] (Memory.touched m);
  match Memory.snapshot m with
  | [ (2, (v2, p2)); (5, (v5, _)) ] ->
    Alcotest.check value "R2 default" Value.Unit v2;
    Alcotest.(check bool) "R2 pset" true (Ids.mem 0 p2);
    Alcotest.check value "R5 value" (Value.Int 1) v5
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_negative_register () =
  let m = Memory.create () in
  Alcotest.check_raises "negative index" (Invalid_argument "Memory: negative register index -1")
    (fun () -> ignore (Memory.apply m ~pid:0 (Op.Ll (-1))))

let test_self_move () =
  (* Self-moves are excluded from the model (they would break Lemma 4.1);
     the dedicated exception carries the culprit and the register. *)
  let m = Memory.create () in
  Memory.set_init m 3 (Value.Int 9);
  Alcotest.check_raises "self-move rejected" (Memory.Self_move { pid = 4; reg = 3 }) (fun () ->
      ignore (Memory.apply m ~pid:4 (Op.Move (3, 3))));
  (* The rejected operation neither counts nor changes anything. *)
  Alcotest.(check int) "not counted" 0 (Memory.ops_of m ~pid:4);
  Alcotest.check value "unchanged" (Value.Int 9) (Memory.peek m 3)

let test_largest_value_size () =
  let m = Memory.create () in
  ignore (Memory.apply m ~pid:0 (Op.Swap (0, Value.List [ Value.Int 1; Value.Int 2 ])));
  Alcotest.(check int) "size" 3 (Memory.largest_value_size m)

let test_growth () =
  (* The dense register array and the per-pid counter array both grow on
     demand; registers at or above the dense limit (2^20) spill into the
     sparse table with identical semantics. *)
  let m = Memory.create ~default:(Value.Int 0) () in
  let sparse_reg = 1 lsl 21 in
  List.iter
    (fun r ->
      ignore (Memory.apply m ~pid:(r mod 5000) (Op.Ll r));
      ignore (Memory.apply m ~pid:(r mod 5000) (Op.Sc (r, Value.Int r))))
    [ 0; 63; 64; 4095; 4096; 250_000; sparse_reg ];
  Alcotest.check value "dense high register" (Value.Int 250_000) (Memory.peek m 250_000);
  Alcotest.check value "sparse register" (Value.Int sparse_reg) (Memory.peek m sparse_reg);
  Alcotest.check response "sparse register validates" (Op.Flagged (false, Value.Int sparse_reg))
    (Memory.apply m ~pid:1 (Op.Validate sparse_reg));
  Alcotest.(check int) "high pid counted" 2 (Memory.ops_of m ~pid:(sparse_reg mod 5000));
  Alcotest.(check int) "untouched pid" 0 (Memory.ops_of m ~pid:4999);
  Alcotest.(check int) "total" 15 (Memory.total_ops m);
  Alcotest.(check (list int)) "touched spans both stores"
    [ 0; 63; 64; 4095; 4096; 250_000; sparse_reg ]
    (Memory.touched m)

(* Layout *)

let test_layout () =
  let l = Layout.create ~base:10 () in
  let a = Layout.alloc l ~init:(Value.Int 1) in
  let arr = Layout.alloc_array l ~len:3 ~init:Value.Unit in
  Alcotest.(check int) "first" 10 a;
  Alcotest.(check (array int)) "array" [| 11; 12; 13 |] arr;
  Alcotest.(check int) "next" 14 (Layout.next_free l);
  let m = Memory.create ~default:(Value.Bool false) () in
  Layout.install l m;
  Alcotest.check value "installed" (Value.Int 1) (Memory.peek m 10);
  Alcotest.check value "installed array" Value.Unit (Memory.peek m 12)

(* Register module directly *)

let test_register () =
  let r = Register.create (Value.Int 1) in
  Register.link r 4;
  Alcotest.(check bool) "linked" true (Register.linked r 4);
  let copy = Register.copy r in
  Register.write r (Value.Int 2);
  Alcotest.(check bool) "write clears" false (Register.linked r 4);
  Alcotest.(check bool) "copy independent" true (Register.linked copy 4);
  Alcotest.check value "copy value" (Value.Int 1) (Register.value copy)

(* Property: a process's SC succeeds iff no successful SC/swap/move-into hit
   the register since its last LL. *)
let prop_sc_semantics =
  let open QCheck in
  let gen_ops =
    Gen.(
      list_size (int_range 1 40)
        (oneof
           [
             map (fun p -> `Ll (p mod 3)) small_nat;
             map2 (fun p v -> `Sc (p mod 3, v)) small_nat small_nat;
             map (fun p -> `Validate (p mod 3)) small_nat;
             map2 (fun p v -> `Swap (p mod 3, v)) small_nat small_nat;
             map (fun p -> `Move (p mod 3)) small_nat;
           ]))
  in
  let arb = make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l)) gen_ops in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"SC success matches link model" arb (fun ops ->
         let m = Memory.create ~default:(Value.Int 0) () in
         (* Model: set of pids whose link on R0 is valid. *)
         let model = ref Ids.empty in
         List.for_all
           (fun op ->
             match op with
             | `Ll p ->
               ignore (Memory.apply m ~pid:p (Op.Ll 0));
               model := Ids.add p !model;
               true
             | `Validate p ->
               let resp = Memory.apply m ~pid:p (Op.Validate 0) in
               Op.flag_of resp = Ids.mem p !model
             | `Sc (p, v) ->
               let resp = Memory.apply m ~pid:p (Op.Sc (0, Value.Int v)) in
               let expected = Ids.mem p !model in
               if expected then model := Ids.empty;
               Op.flag_of resp = expected
             | `Swap (p, v) ->
               ignore (Memory.apply m ~pid:p (Op.Swap (0, Value.Int v)));
               model := Ids.empty;
               true
             | `Move p ->
               ignore (Memory.apply m ~pid:p (Op.Move (1, 0)));
               model := Ids.empty;
               true)
           ops))

(* ---- Profile ---- *)

let test_profile () =
  let m = Memory.create ~default:(Value.Int 0) ~log:true () in
  ignore (Memory.apply m ~pid:0 (Op.Ll 0));
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  ignore (Memory.apply m ~pid:0 (Op.Sc (0, Value.Int 1)));
  ignore (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 2)));
  ignore (Memory.apply m ~pid:0 (Op.Swap (3, Value.Int 9)));
  ignore (Memory.apply m ~pid:0 (Op.Move (3, 4)));
  ignore (Memory.apply m ~pid:1 (Op.Validate 4));
  let p = Profile.of_memory m in
  Alcotest.(check int) "total" 7 p.Profile.total;
  Alcotest.(check int) "processes" 2 p.Profile.distinct_processes;
  Alcotest.(check (float 0.001)) "sc rate" 0.5 p.Profile.sc_success_rate;
  Alcotest.(check (option int)) "hottest" (Some 0) p.Profile.hottest;
  let r0 = List.find (fun (s : Profile.register_stats) -> s.Profile.reg = 0) p.Profile.registers in
  Alcotest.(check int) "R0 accesses" 4 r0.Profile.accesses;
  Alcotest.(check int) "R0 ll" 2 r0.Profile.ll;
  Alcotest.(check int) "R0 sc ok" 1 r0.Profile.sc_success;
  Alcotest.(check int) "R0 sc fail" 1 r0.Profile.sc_fail;
  let r4 = List.find (fun (s : Profile.register_stats) -> s.Profile.reg = 4) p.Profile.registers in
  Alcotest.(check int) "R4 moves in" 1 r4.Profile.moves_in;
  Alcotest.(check int) "R4 validates" 1 r4.Profile.validates;
  (* Kind totals. *)
  Alcotest.(check int) "reads" 3 (List.assoc Op.Read p.Profile.per_kind);
  Alcotest.(check int) "scs" 2 (List.assoc Op.Sc_kind p.Profile.per_kind)

let test_profile_empty () =
  let p = Profile.of_events [] in
  Alcotest.(check int) "empty total" 0 p.Profile.total;
  Alcotest.(check (option int)) "no hottest" None p.Profile.hottest;
  Alcotest.(check (float 0.001)) "rate defaults to 1" 1.0 p.Profile.sc_success_rate

(* ---- multi-object coexistence through one layout ---- *)

let test_layout_isolates_constructions () =
  (* Two independent objects (different constructions) in ONE memory: the
     layout hands out disjoint registers, so runs do not interfere. *)
  let layout = Layout.create () in
  let tree = Adt_tree.construction.Iface.create layout ~n:3 (Counters.fetch_inc ~bits:62) in
  let cas = Direct.compare_and_swap layout ~init:(Value.Int 0) in
  let memory = Memory.create () in
  Layout.install layout memory;
  let result_tree =
    Harness.run_handle ~memory ~handle:tree ~n:3 ~ops:(fun _ -> [ Value.Unit ]) ()
  in
  let result_cas =
    Harness.run_handle ~memory ~handle:cas ~n:3
      ~ops:(fun pid ->
        [ Misc_types.op_cas ~expected:(Value.Int 0) ~new_:(Value.pair (Value.Int pid) Value.unit) ])
      ()
  in
  let tree_responses =
    List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response)
      result_tree.Harness.stats
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "counter clean" [ 0; 1; 2 ] tree_responses;
  let winners =
    List.filter
      (fun (s : Harness.op_stat) -> Value.to_bool (fst (Value.to_pair s.Harness.response)))
      result_cas.Harness.stats
  in
  Alcotest.(check int) "one CAS winner" 1 (List.length winners)

(* ---- store buffers: the TSO / PSO axis ---- *)

let test_write_sc_immediate () =
  (* Under SC a plain write applies instantly and kills links, like the
     paper's other write-kind operations. *)
  let m = Memory.create ~default:(Value.Int 0) () in
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  Alcotest.check response "write acks" Op.Ack (Memory.apply m ~pid:0 (Op.Write (0, Value.Int 7)));
  Alcotest.check value "visible immediately" (Value.Int 7) (Memory.peek m 0);
  Alcotest.(check bool) "links killed" true (Ids.is_empty (Memory.pset m 0));
  Alcotest.(check (list (pair int int))) "nothing to flush" [] (Memory.flushable m)

let test_tso_write_buffers () =
  let m = Memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) () in
  ignore (Memory.apply m ~pid:0 (Op.Write (0, Value.Int 1)));
  Alcotest.check value "shared memory unchanged" (Value.Int 0) (Memory.peek m 0);
  (* Own plain read sees the buffered value; another process's does not. *)
  Alcotest.check response "own read hits buffer" (Op.Flagged (false, Value.Int 1))
    (Memory.apply m ~pid:0 (Op.Validate 0));
  Alcotest.check response "other read misses buffer" (Op.Flagged (false, Value.Int 0))
    (Memory.apply m ~pid:1 (Op.Validate 0));
  Alcotest.(check (list (pair int int))) "one flush enabled" [ (0, 0) ] (Memory.flushable m);
  Memory.flush m ~pid:0 ~reg:0;
  Alcotest.check value "flushed" (Value.Int 1) (Memory.peek m 0);
  Alcotest.(check (list (pair int int))) "buffer empty" [] (Memory.flushable m)

let test_tso_fifo () =
  (* TSO: one FIFO per process — only the oldest entry is flushable, and
     flushing out of order is a programming error. *)
  let m = Memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) () in
  ignore (Memory.apply m ~pid:0 (Op.Write (0, Value.Int 1)));
  ignore (Memory.apply m ~pid:0 (Op.Write (1, Value.Int 2)));
  Alcotest.(check (list (pair int int))) "head only" [ (0, 0) ] (Memory.flushable m);
  Alcotest.check_raises "non-head flush rejected"
    (Invalid_argument "Memory.flush: TSO head of p0's buffer is R0, not R1") (fun () ->
      Memory.flush m ~pid:0 ~reg:1);
  Memory.flush m ~pid:0 ~reg:0;
  Alcotest.(check (list (pair int int))) "next head" [ (0, 1) ] (Memory.flushable m)

let test_pso_per_register () =
  (* PSO: distinct registers flush independently — the flag can overtake the
     data, which is exactly what the MP litmus test observes. *)
  let m = Memory.create ~model:Memory_model.PSO ~default:(Value.Int 0) () in
  ignore (Memory.apply m ~pid:0 (Op.Write (0, Value.Int 1)));
  ignore (Memory.apply m ~pid:0 (Op.Write (1, Value.Int 2)));
  Alcotest.(check (list (pair int int)))
    "both registers flushable" [ (0, 0); (0, 1) ] (Memory.flushable m);
  Memory.flush m ~pid:0 ~reg:1;
  Alcotest.check value "flag landed first" (Value.Int 2) (Memory.peek m 1);
  Alcotest.check value "data still buffered" (Value.Int 0) (Memory.peek m 0);
  (* Same register stays FIFO: two writes to R0 flush oldest-first. *)
  ignore (Memory.apply m ~pid:0 (Op.Write (0, Value.Int 9)));
  Memory.flush m ~pid:0 ~reg:0;
  Alcotest.check value "oldest write of R0 first" (Value.Int 1) (Memory.peek m 0);
  Memory.flush m ~pid:0 ~reg:0;
  Alcotest.check value "then the newer" (Value.Int 9) (Memory.peek m 0)

let test_fences_drain () =
  (* Every synchronisation operation drains the issuing process's buffer
     before acting; Fence drains and does nothing else. *)
  List.iter
    (fun (name, inv) ->
      let m = Memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) () in
      ignore (Memory.apply m ~pid:0 (Op.Write (2, Value.Int 5)));
      ignore (Memory.apply m ~pid:0 inv);
      Alcotest.check value (name ^ " drained the buffer") (Value.Int 5) (Memory.peek m 2);
      Alcotest.(check (list (pair int int))) (name ^ " left nothing buffered") []
        (Memory.flushable m))
    [
      ("ll", Op.Ll 0);
      ("sc", Op.Sc (0, Value.Int 1));
      ("swap", Op.Swap (0, Value.Int 1));
      ("move", Op.Move (0, 1));
      ("fence", Op.Fence);
    ];
  (* ...but only the issuing process's: p1's fence leaves p0's buffer. *)
  let m = Memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) () in
  ignore (Memory.apply m ~pid:0 (Op.Write (2, Value.Int 5)));
  ignore (Memory.apply m ~pid:1 Op.Fence);
  Alcotest.(check (list (pair int int))) "p0 still buffered" [ (0, 2) ] (Memory.flushable m)

let test_flush_kills_links () =
  (* The write's link-kill happens when it lands, not when it is issued: a
     link taken between issue and flush dies at flush time. *)
  let m = Memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) () in
  ignore (Memory.apply m ~pid:0 (Op.Write (0, Value.Int 1)));
  ignore (Memory.apply m ~pid:1 (Op.Ll 0));
  Alcotest.(check bool) "link survives the buffered write" true (Ids.mem 1 (Memory.pset m 0));
  Memory.flush m ~pid:0 ~reg:0;
  Alcotest.(check bool) "link dies at flush" true (Ids.is_empty (Memory.pset m 0));
  Alcotest.check response "p1's SC fails" (Op.Flagged (false, Value.Int 1))
    (Memory.apply m ~pid:1 (Op.Sc (0, Value.Int 9)))

let test_pure_memory_buffers_match () =
  (* The persistent model-checking memory implements the identical buffer
     semantics: drive the same relaxed script through both and compare. *)
  List.iter
    (fun model ->
      let m = Memory.create ~model ~default:(Value.Int 0) () in
      let pm = ref (Pure_memory.create ~model ~default:(Value.Int 0) ~inits:[] ()) in
      let script =
        [
          (0, Op.Write (0, Value.Int 1)); (0, Op.Write (1, Value.Int 2));
          (1, Op.Validate 0); (0, Op.Validate 0); (1, Op.Ll 1);
          (0, Op.Write (0, Value.Int 3)); (1, Op.Sc (1, Value.Int 9)); (0, Op.Fence);
          (1, Op.Swap (0, Value.Int 4));
        ]
      in
      List.iter
        (fun (pid, inv) ->
          let rm = Memory.apply m ~pid inv in
          let rp, pm' = Pure_memory.apply !pm ~pid inv in
          pm := pm';
          Alcotest.check response
            (Printf.sprintf "%s: same response" (Memory_model.to_string model)) rm rp)
        script;
      List.iter
        (fun r ->
          Alcotest.check value
            (Printf.sprintf "%s: same R%d" (Memory_model.to_string model) r)
            (Memory.peek m r) (Pure_memory.peek !pm r))
        [ 0; 1; 2 ];
      Alcotest.(check (list (pair int int)))
        (Memory_model.to_string model ^ ": same flushable set")
        (Memory.flushable m)
        (Pure_memory.flushable !pm))
    [ Memory_model.TSO; Memory_model.PSO ]

let test_model_strings () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Memory_model.to_string m ^ " roundtrips") true
        (Memory_model.of_string (Memory_model.to_string m) = Ok m))
    Memory_model.all;
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Memory_model.of_string "weird"));
  Alcotest.(check bool) "lattice: SC <= TSO <= PSO" true
    (Memory_model.weaker_or_equal Memory_model.SC Memory_model.TSO
    && Memory_model.weaker_or_equal Memory_model.TSO Memory_model.PSO
    && not (Memory_model.weaker_or_equal Memory_model.PSO Memory_model.TSO))

let suite =
  [
    Alcotest.test_case "initial default" `Quick test_initial_default;
    Alcotest.test_case "set_init" `Quick test_set_init;
    Alcotest.test_case "LL returns and links" `Quick test_ll_returns_and_links;
    Alcotest.test_case "SC success" `Quick test_sc_success;
    Alcotest.test_case "SC without LL fails" `Quick test_sc_without_ll_fails;
    Alcotest.test_case "SC invalidated by other SC" `Quick test_sc_invalidated_by_other_sc;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "swap" `Quick test_swap;
    Alcotest.test_case "move" `Quick test_move;
    Alcotest.test_case "move chain" `Quick test_move_chain;
    Alcotest.test_case "op counting" `Quick test_counting;
    Alcotest.test_case "event log" `Quick test_log;
    Alcotest.test_case "log disabled" `Quick test_log_disabled;
    Alcotest.test_case "snapshot/touched" `Quick test_snapshot_touched;
    Alcotest.test_case "negative register rejected" `Quick test_negative_register;
    Alcotest.test_case "self-move rejected" `Quick test_self_move;
    Alcotest.test_case "largest value size" `Quick test_largest_value_size;
    Alcotest.test_case "store growth and sparse spill" `Quick test_growth;
    Alcotest.test_case "layout allocator" `Quick test_layout;
    Alcotest.test_case "register module" `Quick test_register;
    prop_sc_semantics;
    Alcotest.test_case "access profile" `Quick test_profile;
    Alcotest.test_case "empty profile" `Quick test_profile_empty;
    Alcotest.test_case "layout isolates constructions" `Quick test_layout_isolates_constructions;
    Alcotest.test_case "write under SC is immediate" `Quick test_write_sc_immediate;
    Alcotest.test_case "tso write buffers" `Quick test_tso_write_buffers;
    Alcotest.test_case "tso buffer is fifo" `Quick test_tso_fifo;
    Alcotest.test_case "pso buffers per register" `Quick test_pso_per_register;
    Alcotest.test_case "fences drain" `Quick test_fences_drain;
    Alcotest.test_case "flush kills links" `Quick test_flush_kills_links;
    Alcotest.test_case "pure memory matches buffers" `Quick test_pure_memory_buffers_match;
    Alcotest.test_case "memory model strings + lattice" `Quick test_model_strings;
  ]
