(* The experiment service layer (lib/service): request content hashing,
   the LRU + JSONL result cache, the batching executor (cache hits,
   in-flight dedup, error isolation, timeouts) and the Unix-socket server
   under concurrent clients.

   The load-bearing properties:
   - the content hash is a function of the computation, not its encoding —
     invariant under JSON field reordering and under the jobs knob;
   - a cache round-trip (store -> journal -> reload -> serve) yields the
     byte-identical payload a fresh computation produces;
   - a batch computes each distinct uncached key exactly once, whatever
     mix of duplicates and cache hits surrounds it. *)

open Lb_service
module Json = Lb_observe.Json
module Metrics = Lb_observe.Metrics

let prop ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ---- generators ---- *)

let gen_request =
  QCheck.Gen.(
    let* jobs = 1 -- 4 in
    let* spec =
      oneof
        [
          (let* id = oneofl [ "e1"; "e5"; "e7"; "e14"; "nonsense" ] in
           let* quick = bool in
           return (Request.experiment ~quick id));
          (let* target = oneofl [ "direct"; "adt-tree"; "naive-collect" ] in
           let* plan = oneofl [ "crash-stop"; "spurious-sc"; "chaos" ] in
           let* n = 2 -- 16 in
           let* ops = 1 -- 3 in
           let* seed = 0 -- 99 in
           return (Request.certify ~n ~ops ~seed ~target ~plan ()));
          (let* tag = string_size ~gen:printable (1 -- 12) in
           let* size = 0 -- 64 in
           return (Request.echo ~size tag));
        ]
    in
    return (Request.with_jobs spec jobs))

let arb_request = QCheck.make ~print:Request.describe gen_request

(* Small arbitrary JSON payloads for cache round-trips. *)
let gen_payload =
  QCheck.Gen.(
    let* pass = bool in
    let* n = 0 -- 1000 in
    let* s = string_size ~gen:printable (0 -- 20) in
    let* xs = list_size (0 -- 5) (0 -- 50) in
    return
      (Json.Obj
         [
           ("pass", Json.Bool pass);
           ("n", Json.Int n);
           ("title", Json.Str s);
           ("rows", Json.Arr (List.map (fun x -> Json.Int x) xs));
         ]))

(* ---- request hashing ---- *)

let t_roundtrip =
  prop "of_json (to_json r) = r" arb_request (fun r ->
      Request.of_json (Request.to_json r) = Ok r)

let t_key_ignores_jobs =
  prop "key invariant under jobs" arb_request (fun r ->
      Request.key r = Request.key (Request.with_jobs r 7)
      && Request.equal r (Request.with_jobs r 7))

let t_key_ignores_field_order =
  prop "key invariant under JSON field reordering (+ jobs)"
    (QCheck.make
       ~print:(fun (r, _) -> Request.describe r)
       QCheck.Gen.(
         let* r = gen_request in
         let* fields =
           match Request.to_json r with
           | Json.Obj fields -> shuffle_l fields
           | _ -> return []
         in
         return (r, fields)))
    (fun (r, shuffled) ->
      let shuffled =
        (* Also perturb the jobs value, not just its position. *)
        List.map
          (function "jobs", _ -> ("jobs", Json.Int 5) | field -> field)
          shuffled
      in
      match Request.of_json (Json.Obj shuffled) with
      | Ok r' -> Request.key r' = Request.key r
      | Error _ -> false)

let t_distinct_requests_distinct_keys () =
  let keys =
    List.map Request.key
      [
        Request.experiment "e1";
        Request.experiment ~quick:true "e1";
        Request.experiment "e2";
        Request.certify ~target:"direct" ~plan:"crash-stop" ();
        Request.certify ~target:"direct" ~plan:"chaos" ();
        Request.certify ~target:"direct" ~plan:"crash-stop" ~seed:2 ();
      ]
  in
  Alcotest.(check int)
    "six distinct computations, six distinct keys" 6
    (List.length (List.sort_uniq compare keys))

let t_of_json_defaults () =
  match Json.parse {|{"kind":"certify","plan":"chaos","target":"direct"}|} with
  | Error msg -> Alcotest.fail msg
  | Ok json ->
    Alcotest.(check bool)
      "omitted fields take their defaults" true
      (Request.of_json json = Ok (Request.certify ~target:"direct" ~plan:"chaos" ()))

(* ---- cache ---- *)

let payload_a = Json.Obj [ ("v", Json.Int 1) ]
let payload_b = Json.Obj [ ("v", Json.Int 2) ]
let payload_c = Json.Obj [ ("v", Json.Int 3) ]

let t_cache_hit_miss () =
  let cache = Cache.create ~capacity:4 () in
  Alcotest.(check bool) "miss before store" true (Cache.find cache "k1" = None);
  Cache.store cache ~key:"k1" ~request:Json.Null payload_a;
  Alcotest.(check bool) "hit after store" true (Cache.find cache "k1" = Some payload_a);
  Cache.store cache ~key:"k1" ~request:Json.Null payload_b;
  Alcotest.(check bool) "store refreshes" true (Cache.find cache "k1" = Some payload_b);
  Alcotest.(check int) "refresh does not grow" 1 (Cache.length cache)

let t_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 () in
  Cache.store cache ~key:"a" ~request:Json.Null payload_a;
  Cache.store cache ~key:"b" ~request:Json.Null payload_b;
  ignore (Cache.find cache "a");
  (* "b" is now least recently used; storing "c" must evict it. *)
  Cache.store cache ~key:"c" ~request:Json.Null payload_c;
  Alcotest.(check bool) "recently used survives" true (Cache.mem cache "a");
  Alcotest.(check bool) "LRU evicted" false (Cache.mem cache "b");
  Alcotest.(check bool) "new entry present" true (Cache.mem cache "c");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions cache)

let with_temp_file f =
  let path = Filename.temp_file "lbsvc_cache" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let t_cache_journal_reload () =
  with_temp_file (fun path ->
      Sys.remove path;
      let cache = Cache.create ~capacity:8 ~path () in
      Cache.store cache ~key:"k1" ~request:Json.Null payload_a;
      Cache.store cache ~key:"k2" ~request:Json.Null payload_b;
      Cache.store cache ~key:"k1" ~request:Json.Null payload_c;
      Cache.close cache;
      let reloaded = Cache.create ~capacity:8 ~path () in
      Alcotest.(check int) "three journal lines replayed" 3 (Cache.loaded reloaded);
      Alcotest.(check int) "no corruption" 0 (Cache.corrupt reloaded);
      Alcotest.(check int) "two live keys" 2 (Cache.length reloaded);
      Alcotest.(check bool) "last store of k1 wins" true
        (Cache.find reloaded "k1" = Some payload_c);
      Alcotest.(check bool) "k2 survives" true (Cache.find reloaded "k2" = Some payload_b);
      Cache.close reloaded)

let t_cache_corrupt_recovery () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc
        ({|{"key":"good1","request":null,"response":{"v":1}}|} ^ "\n"
        ^ "this is not json\n"
        ^ {|{"no_key_field":true,"response":{"v":9}}|} ^ "\n"
        ^ {|{"key":"good2","request":null,"response":{"v":2}}|} ^ "\n"
        ^ {|{"key":"trunc","request":null,"resp|});
      (* no trailing newline: a crash mid-append *)
      close_out oc;
      let cache = Cache.create ~capacity:8 ~path () in
      Alcotest.(check int) "two good lines" 2 (Cache.loaded cache);
      Alcotest.(check int) "three damaged lines skipped" 3 (Cache.corrupt cache);
      Alcotest.(check bool) "good entries served" true
        (Cache.find cache "good1" = Some payload_a && Cache.find cache "good2" = Some payload_b);
      (* The survivor of a damaged journal must still accept stores. *)
      Cache.store cache ~key:"k3" ~request:Json.Null payload_c;
      Cache.close cache;
      let reloaded = Cache.create ~capacity:8 ~path () in
      Alcotest.(check bool) "append after damage round-trips" true
        (Cache.find reloaded "k3" = Some payload_c);
      Cache.close reloaded)

let t_cache_roundtrip_byte_identical =
  prop ~count:100 "journal round-trip is byte-identical"
    (QCheck.make ~print:Json.to_string gen_payload)
    (fun payload ->
      with_temp_file (fun path ->
          Sys.remove path;
          let cache = Cache.create ~path () in
          Cache.store cache ~key:"k" ~request:Json.Null payload;
          Cache.close cache;
          let reloaded = Cache.create ~path () in
          let found = Cache.find reloaded "k" in
          Cache.close reloaded;
          match found with
          | Some payload' -> Json.to_string payload' = Json.to_string payload
          | None -> false))

(* ---- executor ---- *)

(* A deterministic toy computation that counts its invocations. *)
let counting_compute calls ~jobs:_ (r : Request.t) =
  incr calls;
  Ok (Json.Obj [ ("echo", Json.Str (Request.describe r)) ])

let r1 = Request.experiment "e1"
let r2 = Request.experiment "e2"

let t_executor_dedup_and_cache () =
  let calls = ref 0 in
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      let cache = Cache.create () in
      let executor = Executor.create ~cache ~compute:(counting_compute calls) () in
      let responses = Executor.run_batch executor [ r1; r1; r2 ] in
      Alcotest.(check int) "three responses" 3 (List.length responses);
      Alcotest.(check int) "two computations for three requests" 2 !calls;
      (match responses with
      | [ a; b; c ] ->
        Alcotest.(check bool) "first r1 computed" false (a.Executor.cached || a.Executor.deduped);
        Alcotest.(check bool) "second r1 deduped in flight" true b.Executor.deduped;
        Alcotest.(check bool) "r2 computed" false (c.Executor.cached || c.Executor.deduped);
        Alcotest.(check bool) "dup payload identical" true (a.Executor.outcome = b.Executor.outcome)
      | _ -> Alcotest.fail "wrong arity");
      (* Second batch: everything cached, no further computation. *)
      let responses = Executor.run_batch executor [ r1; r2 ] in
      Alcotest.(check int) "no recomputation" 2 !calls;
      Alcotest.(check bool) "both served from cache" true
        (List.for_all (fun r -> r.Executor.cached) responses);
      Alcotest.(check int) "hits" 2 (Metrics.counter_value registry "service.hits");
      Alcotest.(check int) "misses" 2 (Metrics.counter_value registry "service.misses");
      Alcotest.(check int) "dedups" 1 (Metrics.counter_value registry "service.dedup_inflight");
      Alcotest.(check int) "requests" 5 (Metrics.counter_value registry "service.requests"))

let t_executor_error_isolation () =
  let compute ~jobs:_ (r : Request.t) =
    match r.Request.spec with
    | Request.Experiment { id = "e1"; _ } -> failwith "boom"
    | _ -> Ok Json.Null
  in
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      let cache = Cache.create () in
      let executor = Executor.create ~cache ~compute () in
      match Executor.run_batch executor [ r1; r2 ] with
      | [ a; b ] ->
        (match a.Executor.outcome with
        | Executor.Error msg ->
          Alcotest.(check bool) "exception captured" true
            (Astring_contains.contains msg "boom")
        | _ -> Alcotest.fail "expected an error outcome");
        Alcotest.(check bool) "sibling request unaffected" true
          (b.Executor.outcome = Executor.Ok Json.Null);
        Alcotest.(check int) "errors counted" 1 (Metrics.counter_value registry "service.errors");
        Alcotest.(check bool) "failed result not cached" false
          (Cache.mem cache a.Executor.key)
      | _ -> Alcotest.fail "wrong arity")

let t_executor_timeout () =
  let compute ~jobs:_ (r : Request.t) =
    match r.Request.spec with
    | Request.Experiment { id = "e1"; _ } ->
      (* Allocate so the SIGALRM poll point is reached promptly. *)
      let rec spin acc = if Sys.opaque_identity !acc < 0 then Ok Json.Null else spin (ref (!acc + 1)) in
      spin (ref 0)
    | _ -> Ok Json.Null
  in
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      let cache = Cache.create () in
      let executor = Executor.create ~timeout_s:0.2 ~cache ~compute () in
      match Executor.run_batch executor [ r1; r2 ] with
      | [ a; b ] ->
        Alcotest.(check bool) "runaway request timed out" true
          (a.Executor.outcome = Executor.Timeout);
        Alcotest.(check bool) "sibling still served" true
          (b.Executor.outcome = Executor.Ok Json.Null);
        Alcotest.(check int) "timeout counted" 1
          (Metrics.counter_value registry "service.timeouts")
      | _ -> Alcotest.fail "wrong arity")

(* Cache round-trip against the real catalog: save -> reload -> serve must
   be byte-identical to a fresh computation (quick e1 keeps it fast). *)
let t_catalog_roundtrip_byte_identical () =
  let req = Request.experiment ~quick:true "e1" in
  let fresh =
    match Catalog.compute ~jobs:1 req with
    | Ok payload -> Json.to_string payload
    | Error msg -> Alcotest.fail msg
  in
  with_temp_file (fun path ->
      Sys.remove path;
      let cache = Cache.create ~path () in
      let executor = Executor.create ~cache ~compute:Catalog.compute () in
      ignore (Executor.run_batch executor [ req ]);
      Cache.close cache;
      let cache = Cache.create ~path () in
      let executor = Executor.create ~cache ~compute:Catalog.compute () in
      match Executor.run_batch executor [ req ] with
      | [ { Executor.cached = true; outcome = Executor.Ok payload; _ } ] ->
        Alcotest.(check string) "reloaded-cache serve = fresh computation" fresh
          (Json.to_string payload);
        Cache.close cache
      | _ -> Alcotest.fail "expected one cache hit after reload")

let t_catalog_unknown () =
  (match Catalog.compute ~jobs:1 (Request.experiment "e99") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown experiment must be an error");
  match Catalog.compute ~jobs:1 (Request.certify ~target:"direct" ~plan:"no-such-plan" ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown plan must be an error"

(* ---- the server under concurrent clients ---- *)

let connect transport =
  match Transport.connect transport with
  | Ok fd -> fd
  | Error reason -> failwith ("connect: " ^ reason)

let send_line fd json =
  let line = Json.to_string json ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line))

let recv_lines fd wanted =
  let buf = Buffer.create 1024 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let count () =
    let n = ref 0 in
    String.iter (fun c -> if c = '\n' then incr n) (Buffer.contents buf);
    !n
  in
  while count () < wanted && Unix.gettimeofday () < deadline do
    match Unix.select [ fd ] [] [] 1.0 with
    | [], _, _ -> ()
    | _ ->
      let bytes = Bytes.create 65536 in
      let n = Unix.read fd bytes 0 (Bytes.length bytes) in
      if n = 0 then raise Exit else Buffer.add_subbytes buf bytes 0 n
  done;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> match Json.parse l with Ok j -> j | Error e -> failwith e)

let status_of json =
  Option.value ~default:"?" (Option.bind (Json.member "status" json) Json.to_str_opt)

(* Run a toy-compute server in its own domain (Unix.fork is off the table:
   the exec suite has already spawned domains by the time this suite runs)
   and hand the test body its live transport — a scratch Unix socket by
   default, an ephemeral loopback TCP port with [~tcp:true] (resolved
   race-free through the server's [ready] callback).  The server domain
   gets a fresh metrics registry — the DLS default is one global registry,
   which the parent's earlier tests have already written service.* counts
   into. *)
let with_toy_server ?(capacity = 64) ?chaos ?max_queue ?(tcp = false) body =
  let tmp = Filename.temp_file "lbsvc_srv" "" in
  Sys.remove tmp;
  let socket = tmp ^ ".sock" in
  let listen =
    if tcp then Transport.Tcp { host = "127.0.0.1"; port = 0 }
    else Transport.Unix_socket socket
  in
  let resolved = Atomic.make None in
  let server =
    Domain.spawn (fun () ->
        try
          Metrics.with_registry (Metrics.create ()) (fun () ->
              let cache = Cache.create ~capacity () in
              let calls = ref 0 in
              let executor = Executor.create ~cache ~compute:(counting_compute calls) () in
              ignore
                (Server.serve ~transport:listen ~executor ?chaos ?max_queue
                   ~ready:(fun t -> Atomic.set resolved (Some t)) ()))
        with _ -> ())
  in
  let rec await k =
    match Atomic.get resolved with
    | Some t -> t
    | None ->
      if k = 0 then failwith "toy server never bound its transport"
      else begin
        Unix.sleepf 0.01;
        await (k - 1)
      end
  in
  let transport = await 500 in
  let finally () =
    (try
       ignore
         (Client.call ~transport ~timeout_s:2.0 [ Json.Obj [ ("op", Json.Str "shutdown") ] ])
     with _ -> ());
    Domain.join server;
    if Sys.file_exists socket then Sys.remove socket
  in
  Fun.protect ~finally (fun () ->
      Alcotest.(check bool) "server came up" true (Client.wait_ready ~transport ());
      body transport)

(* Fire a randomized mix of requests from several simultaneously connected
   clients (duplicates included, written before any responses are read, so
   the server coalesces across clients), and check every response plus the
   hit/miss/dedup accounting. *)
let t_server_concurrent_fuzz () =
  with_toy_server (fun transport ->
        let pool =
          [|
            Request.experiment "e1"; Request.experiment "e2";
            Request.certify ~target:"direct" ~plan:"crash-stop" ();
          |]
        in
        let rand = Random.State.make [| 0xC0FFEE |] in
        let total = ref 0 in
        for _round = 1 to 3 do
          (* Connect all clients first, write every request, then read: the
             requests are genuinely in flight together. *)
          let clients =
            List.init 3 (fun _ ->
                let fd = connect transport in
                let reqs =
                  List.init
                    (1 + Random.State.int rand 4)
                    (fun _ -> pool.(Random.State.int rand (Array.length pool)))
                in
                List.iter (fun r -> send_line fd (Request.to_json r)) reqs;
                total := !total + List.length reqs;
                (fd, reqs))
          in
          List.iter
            (fun (fd, reqs) ->
              let responses = recv_lines fd (List.length reqs) in
              Alcotest.(check int) "one response per request" (List.length reqs)
                (List.length responses);
              List.iter2
                (fun req response ->
                  Alcotest.(check string) "status ok" "ok" (status_of response);
                  let echoed =
                    Option.bind (Json.member "data" response) (Json.member "echo")
                  in
                  Alcotest.(check bool) "payload echoes the request" true
                    (echoed = Some (Json.Str (Request.describe req))))
                reqs responses;
              Unix.close fd)
            clients
        done;
        (* The accounting must balance: every request was a hit, a fresh
           computation, or an in-flight dedup; distinct keys bound misses. *)
        match Client.call ~transport ~timeout_s:5.0 [ Json.Obj [ ("op", Json.Str "metrics") ] ] with
        | Error e -> Alcotest.fail (Client.error_message e)
        | Ok [ response ] ->
          let counter name =
            match
              Option.bind (Json.member "data" response) (fun d ->
                  Option.bind (Json.member "counters" d) (fun c ->
                      Option.bind (Json.member name c) Json.to_int_opt))
            with
            | Some v -> v
            | None -> 0
          in
          let hits = counter "service.hits"
          and misses = counter "service.misses"
          and dedups = counter "service.dedup_inflight" in
          Alcotest.(check int) "hits + misses + dedups = requests" !total
            (hits + misses + dedups);
          Alcotest.(check bool) "each distinct key computed at most once" true (misses <= 3);
          Alcotest.(check int) "no errors" 0 (counter "service.errors")
        | Ok _ -> Alcotest.fail "expected one metrics response")

let t_server_rejects_garbage () =
  with_toy_server (fun transport ->
      let fd = connect transport in
      ignore (Unix.write_substring fd "not json at all\n" 0 16);
      send_line fd (Json.Obj [ ("kind", Json.Str "experiment") ]);
      (* missing id *)
      send_line fd (Request.to_json r1);
      let responses = recv_lines fd 3 in
      (match List.map status_of responses with
      | [ "error"; "error"; "ok" ] -> ()
      | other ->
        Alcotest.fail
          (Printf.sprintf "expected error;error;ok, got %s" (String.concat ";" other)));
      Unix.close fd)

(* ---- client resilience against malformed servers ---- *)

(* A single-shot fake server: accept one connection, drain whatever the
   client wrote (until a newline or the peer stops sending), run [script]
   on the connection, close.  Lets each test scripts an arbitrary broken
   reply without touching the real server. *)
let with_fake_server script body =
  let tmp = Filename.temp_file "lbsvc_fake" "" in
  Sys.remove tmp;
  let socket = tmp ^ ".sock" in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 1;
  let server =
    Domain.spawn (fun () ->
        try
          let fd, _ = Unix.accept listener in
          let bytes = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd bytes 0 (Bytes.length bytes) with
            | 0 -> ()
            | n -> if not (Bytes.contains (Bytes.sub bytes 0 n) '\n') then drain ()
            | exception Unix.Unix_error _ -> ()
          in
          drain ();
          (try script fd with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        with _ -> ())
  in
  let finally () =
    Domain.join server;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    if Sys.file_exists socket then Sys.remove socket
  in
  Fun.protect ~finally (fun () -> body (Transport.Unix_socket socket))

let raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))
let ping = Json.Obj [ ("op", Json.Str "ping") ]

let t_client_truncated_reply () =
  with_fake_server
    (fun fd -> raw fd "{\"status\":\"ok\",\"da")
    (fun transport ->
      match Client.call ~transport ~timeout_s:5.0 [ ping ] with
      | Error Client.Closed -> ()
      | Error e ->
        Alcotest.fail ("expected Closed, got " ^ Client.error_message e)
      | Ok _ -> Alcotest.fail "truncated reply must not parse as a response")

let t_client_non_json_reply () =
  with_fake_server
    (fun fd -> raw fd "this is not json\n")
    (fun transport ->
      match Client.call ~transport ~timeout_s:5.0 [ ping ] with
      | Error (Client.Bad_line { line; _ }) ->
        Alcotest.(check string) "offending line preserved" "this is not json" line
      | Error e ->
        Alcotest.fail ("expected Bad_line, got " ^ Client.error_message e)
      | Ok _ -> Alcotest.fail "non-JSON reply must not parse as a response")

let t_client_unknown_key_reply () =
  with_fake_server
    (fun fd -> raw fd "{\"key\":\"deadbeef\",\"status\":\"ok\"}\n")
    (fun transport ->
      match Client.request ~transport ~timeout_s:5.0 [ Request.experiment "e1" ] with
      | Error (Client.Unknown_key { key; _ }) ->
        Alcotest.(check string) "stray key reported" "deadbeef" key
      | Error e ->
        Alcotest.fail ("expected Unknown_key, got " ^ Client.error_message e)
      | Ok _ -> Alcotest.fail "a reply keyed by an unknown hash must be rejected")

let t_client_timeout_and_connect () =
  (* A server that accepts and then never replies -> Timeout. *)
  with_fake_server
    (fun _fd -> Unix.sleepf 0.3)
    (fun transport ->
      match Client.call ~transport ~timeout_s:0.1 [ ping ] with
      | Error (Client.Timeout s) -> Alcotest.(check (float 1e-9)) "deadline echoed" 0.1 s
      | Error e -> Alcotest.fail ("expected Timeout, got " ^ Client.error_message e)
      | Ok _ -> Alcotest.fail "a mute server cannot satisfy the call");
  (* No socket at all -> Connect, not an exception. *)
  match
    Client.call
      ~transport:(Transport.Unix_socket "/nonexistent/lbsvc.sock")
      ~timeout_s:1.0 [ ping ]
  with
  | Error (Client.Connect _) -> ()
  | Error e -> Alcotest.fail ("expected Connect, got " ^ Client.error_message e)
  | Ok _ -> Alcotest.fail "connecting to a missing socket cannot succeed"

(* Seeded fuzz: whatever bytes the server sends back, the client returns a
   typed result — it never raises and never hangs past its deadline. *)
let t_client_garbage_fuzz () =
  let rand = Random.State.make [| 0xBADF00D |] in
  for _case = 1 to 12 do
    let len = Random.State.int rand 80 in
    let reply =
      String.init len (fun _ -> Char.chr (32 + Random.State.int rand 95))
      ^ if Random.State.bool rand then "\n" else ""
    in
    with_fake_server
      (fun fd -> raw fd reply)
      (fun transport ->
        match Client.call ~transport ~timeout_s:5.0 [ ping ] with
        | Ok _ | Error _ -> ()
        | exception e ->
          Alcotest.fail
            (Printf.sprintf "client raised %s on reply %S" (Printexc.to_string e) reply))
  done

(* ---- robustness satellites: short writes, torn journals, retries ---- *)

(* Regression for the short-write bug: write_line must deliver a reply far
   larger than the socket's send buffer intact, however many write
   syscalls that takes.  A concurrent reader domain drains the other end
   so the blocking writes can make progress. *)
let t_write_line_short_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let blob = String.concat "" (List.init 8000 (fun i -> Printf.sprintf "x%d" i)) in
  let json = Json.Obj [ ("status", Json.Str "ok"); ("blob", Json.Str blob) ] in
  let expected = Json.to_string json ^ "\n" in
  let reader =
    Domain.spawn (fun () ->
        let buf = Buffer.create (String.length expected) in
        let bytes = Bytes.create 65536 in
        let rec go () =
          if Buffer.length buf < String.length expected then
            match Unix.read b bytes 0 (Bytes.length bytes) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf bytes 0 n;
              go ()
        in
        go ();
        Buffer.contents buf)
  in
  Server.write_line a json;
  Unix.close a;
  let got = Domain.join reader in
  Unix.close b;
  Alcotest.(check int) "every byte delivered" (String.length expected) (String.length got);
  Alcotest.(check bool) "byte-identical line" true (String.equal got expected)

(* Property: tearing the journal's final record (a crash mid-append) loses
   at most that one record — every earlier entry reloads, nothing raises,
   and the survivor still accepts appends. *)
let t_cache_truncated_tail =
  prop ~count:50 "torn final journal record loses at most that record"
    (QCheck.make
       QCheck.Gen.(
         let* payloads = list_size (1 -- 5) gen_payload in
         let* cut = 2 -- 10_000 in
         return (payloads, cut)))
    (fun (payloads, cut) ->
      with_temp_file (fun path ->
          Sys.remove path;
          let cache = Cache.create ~path ~fsync:true () in
          List.iteri
            (fun i p -> Cache.store cache ~key:(Printf.sprintf "k%d" i) ~request:Json.Null p)
            payloads;
          Cache.sync cache;
          Cache.close cache;
          let contents = In_channel.with_open_bin path In_channel.input_all in
          let len = String.length contents in
          (* Bytes of the final record including its newline. *)
          let last_line_len =
            match String.rindex_from_opt contents (len - 2) '\n' with
            | Some nl -> len - nl - 1
            | None -> len
          in
          (* Tear off the trailing newline plus at least one byte of the
             record — possibly the whole record. *)
          let torn = 2 + (cut mod (max 1 (last_line_len - 1))) in
          Unix.truncate path (max 0 (len - torn));
          let n = List.length payloads in
          let reloaded = Cache.create ~path () in
          let earlier_ok =
            List.for_all
              (fun i ->
                Cache.find reloaded (Printf.sprintf "k%d" i)
                = Some (List.nth payloads i))
              (List.init (n - 1) Fun.id)
          in
          let corrupt_ok = Cache.corrupt reloaded <= 1 in
          (* The survivor must still journal appends cleanly. *)
          Cache.store reloaded ~key:"fresh" ~request:Json.Null payload_a;
          Cache.close reloaded;
          let again = Cache.create ~path () in
          let append_ok = Cache.find again "fresh" = Some payload_a in
          Cache.close again;
          earlier_ok && corrupt_ok && append_ok))

let t_cache_snapshot_compact () =
  with_temp_file (fun path ->
      Sys.remove path;
      let cache = Cache.create ~capacity:2 ~path () in
      Cache.store cache ~key:"a" ~request:(Json.Str "ra") payload_a;
      Cache.store cache ~key:"b" ~request:(Json.Str "rb") payload_b;
      Cache.store cache ~key:"a" ~request:(Json.Str "ra") payload_c;
      ignore (Cache.find cache "a");
      (* "b" is LRU; "c" evicts it.  The journal now holds 4 lines for 2
         live entries — exactly the dead weight compaction drops. *)
      Cache.store cache ~key:"c" ~request:(Json.Str "rc") payload_b;
      let snapshot = Json.to_string (Cache.snapshot_json cache) in
      Alcotest.(check bool) "snapshot is key-sorted live entries" true
        (Cache.snapshot cache = [ ("a", payload_c); ("c", payload_b) ]);
      Cache.compact cache;
      let lines =
        In_channel.with_open_bin path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "compacted journal: one line per live entry" 2 (List.length lines);
      (* Compaction must not break the append channel. *)
      Cache.store cache ~key:"d" ~request:(Json.Str "rd") payload_a;
      Cache.close cache;
      let reloaded = Cache.create ~capacity:4 ~path () in
      Alcotest.(check int) "no corruption after compact+append" 0 (Cache.corrupt reloaded);
      Alcotest.(check bool) "post-compact reload serves the snapshot" true
        (Cache.find reloaded "a" = Some payload_c && Cache.find reloaded "d" = Some payload_a);
      Cache.close reloaded;
      ignore snapshot)

let t_backoff_schedule () =
  let r = { Client.default_retry with Client.seed = 7 } in
  List.iter
    (fun k ->
      let d1 = Client.backoff_s r ~failures:k and d2 = Client.backoff_s r ~failures:k in
      Alcotest.(check (float 0.0)) "deterministic in (policy, failures)" d1 d2;
      let base =
        Float.min r.Client.max_delay_s
          (r.Client.base_delay_s *. (r.Client.multiplier ** float_of_int (k - 1)))
      in
      let lo = base *. (1.0 -. (r.Client.jitter /. 2.0))
      and hi = base *. (1.0 +. (r.Client.jitter /. 2.0)) in
      Alcotest.(check bool)
        (Printf.sprintf "failure %d within the jitter band" k)
        true
        (d1 >= lo -. 1e-9 && d1 <= hi +. 1e-9))
    [ 1; 2; 3; 4; 5; 6; 10 ];
  let r' = { r with Client.seed = 8 } in
  Alcotest.(check bool) "seed moves the schedule" true
    (List.exists
       (fun k -> Client.backoff_s r ~failures:k <> Client.backoff_s r' ~failures:k)
       [ 1; 2; 3; 4; 5 ])

(* A fake server that misbehaves differently on successive connections:
   one accept + script per expected client attempt. *)
let with_fake_server_seq scripts body =
  let tmp = Filename.temp_file "lbsvc_fakeseq" "" in
  Sys.remove tmp;
  let socket = tmp ^ ".sock" in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 8;
  let server =
    Domain.spawn (fun () ->
        List.iter
          (fun script ->
            match Unix.accept listener with
            | fd, _ ->
              let bytes = Bytes.create 4096 in
              let rec drain () =
                match Unix.read fd bytes 0 (Bytes.length bytes) with
                | 0 -> ()
                | n -> if not (Bytes.contains (Bytes.sub bytes 0 n) '\n') then drain ()
                | exception Unix.Unix_error _ -> ()
              in
              drain ();
              (try script fd with _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
            | exception _ -> ())
          scripts)
  in
  let finally () =
    Domain.join server;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    if Sys.file_exists socket then Sys.remove socket
  in
  Fun.protect ~finally (fun () -> body (Transport.Unix_socket socket))

let fast_retry attempts =
  { Client.default_retry with Client.attempts; base_delay_s = 0.01; max_delay_s = 0.05 }

(* The retrying client survives a garbled line, then a dropped connection,
   and lands on the third attempt — with exactly two retries recorded. *)
let t_client_retry_recovers () =
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      with_fake_server_seq
        [
          (fun fd -> raw fd "}}}garbled\n");
          (fun _fd -> ());
          (fun fd -> raw fd "{\"status\":\"ok\"}\n");
        ]
        (fun transport ->
          match Client.call_retry ~transport ~timeout_s:5.0 ~retry:(fast_retry 4) [ ping ] with
          | Ok [ reply ] -> Alcotest.(check string) "third attempt lands" "ok" (status_of reply)
          | Ok _ -> Alcotest.fail "wrong reply arity"
          | Error e -> Alcotest.fail ("retry should have recovered: " ^ Client.error_message e)));
  Alcotest.(check int) "two retries recorded" 2
    (Metrics.counter_value registry "service.retries")

let t_client_retry_overload () =
  (* One overload refusal, then served: call_retry backs off and recovers. *)
  with_fake_server_seq
    [
      (fun fd -> raw fd "{\"status\":\"overload\",\"retry_after_s\":0.05}\n");
      (fun fd -> raw fd "{\"status\":\"ok\"}\n");
    ]
    (fun transport ->
      match Client.call_retry ~transport ~timeout_s:5.0 ~retry:(fast_retry 3) [ ping ] with
      | Ok [ reply ] -> Alcotest.(check string) "served after backoff" "ok" (status_of reply)
      | Ok _ | Error _ -> Alcotest.fail "expected recovery after one overload");
  (* Refused every time: the typed Overload surfaces once the budget is spent. *)
  with_fake_server_seq
    [
      (fun fd -> raw fd "{\"status\":\"overload\",\"retry_after_s\":0.05}\n");
      (fun fd -> raw fd "{\"status\":\"overload\",\"retry_after_s\":0.05}\n");
    ]
    (fun transport ->
      match Client.call_retry ~transport ~timeout_s:5.0 ~retry:(fast_retry 2) [ ping ] with
      | Error (Client.Overload { attempts }) -> Alcotest.(check int) "budget echoed" 2 attempts
      | Error e -> Alcotest.fail ("expected Overload, got " ^ Client.error_message e)
      | Ok _ -> Alcotest.fail "a permanently overloaded server cannot satisfy the call")

let t_client_out_of_order_replies () =
  (* Replies for a batch arriving in the wrong order are still accepted —
     responses are keyed, and key-set validation is what the client pins. *)
  let ra = Request.echo "ooo-a" and rb = Request.echo "ooo-b" in
  with_fake_server
    (fun fd ->
      raw fd
        (Printf.sprintf "{\"key\":%S,\"status\":\"ok\"}\n{\"key\":%S,\"status\":\"ok\"}\n"
           (Request.key rb) (Request.key ra)))
    (fun transport ->
      match Client.request ~transport ~timeout_s:5.0 [ ra; rb ] with
      | Ok replies -> Alcotest.(check int) "both keyed replies accepted" 2 (List.length replies)
      | Error e -> Alcotest.fail ("expected acceptance: " ^ Client.error_message e))

(* Idempotency under resends: a dropped reply forces a retry of an
   already-executed request, and the cache — not a second execution —
   serves it.  misses = 1 is the proof. *)
let t_client_never_double_executes () =
  let engine = Chaos.instantiate ~seed:3 (Chaos.drop_reply ~at:[ 1 ]) in
  with_toy_server ~chaos:engine (fun transport ->
      let req = Request.echo "idempotent" in
      (match Client.request_retry ~transport ~timeout_s:5.0 ~retry:(fast_retry 5) [ req ] with
      | Ok [ reply ] -> Alcotest.(check string) "recovered after drop" "ok" (status_of reply)
      | Ok _ | Error _ -> Alcotest.fail "retry should recover the dropped reply");
      (match Client.request_retry ~transport ~timeout_s:5.0 ~retry:(fast_retry 5) [ req ] with
      | Ok [ reply ] -> Alcotest.(check string) "second call ok" "ok" (status_of reply)
      | Ok _ | Error _ -> Alcotest.fail "second call should be a cache hit");
      match Client.call ~transport ~timeout_s:5.0 [ Json.Obj [ ("op", Json.Str "metrics") ] ] with
      | Ok [ response ] ->
        let counter name =
          match
            Option.bind (Json.member "data" response) (fun d ->
                Option.bind (Json.member "counters" d) (fun c ->
                    Option.bind (Json.member name c) Json.to_int_opt))
          with
          | Some v -> v
          | None -> 0
        in
        Alcotest.(check int) "executed exactly once despite resends" 1
          (counter "service.misses");
        Alcotest.(check int) "resends served from the cache" 2 (counter "service.hits")
      | Ok _ | Error _ -> Alcotest.fail "metrics fetch failed")

let t_server_overload_backpressure () =
  with_toy_server ~max_queue:1 (fun transport ->
      let reqs = List.init 3 (fun i -> Request.echo (Printf.sprintf "ovl-%d" i)) in
      (match Client.request ~transport ~timeout_s:5.0 reqs with
      | Error e -> Alcotest.fail (Client.error_message e)
      | Ok replies ->
        let statuses = List.map status_of replies in
        Alcotest.(check int) "every request answered" 3 (List.length replies);
        Alcotest.(check bool) "the excess was refused, typed" true
          (List.mem "overload" statuses);
        Alcotest.(check bool) "the admitted prefix was served" true (List.mem "ok" statuses));
      (* One at a time, the retrying client lands everything. *)
      List.iter
        (fun r ->
          match Client.request_retry ~transport ~timeout_s:5.0 ~retry:(fast_retry 5) [ r ] with
          | Ok [ reply ] -> Alcotest.(check string) "served" "ok" (status_of reply)
          | Ok _ | Error _ -> Alcotest.fail "individual request should succeed")
        reqs)

let t_catalog_echo_deterministic () =
  let req = Request.echo ~size:10 "tag" in
  match (Catalog.compute ~jobs:1 req, Catalog.compute ~jobs:4 req) with
  | Ok a, Ok b ->
    Alcotest.(check string) "echo is jobs-invariant and deterministic" (Json.to_string a)
      (Json.to_string b);
    Alcotest.(check bool) "fill has the requested size" true
      (match Option.bind (Json.member "fill" a) Json.to_str_opt with
      | Some fill -> String.length fill = 10
      | None -> false)
  | _ -> Alcotest.fail "echo compute cannot fail"

let t_catalog_echo_work () =
  let req = Request.echo ~size:4 ~work:5 "w" in
  match (Catalog.compute ~jobs:1 req, Catalog.compute ~jobs:4 req) with
  | Ok a, Ok b ->
    Alcotest.(check string) "work digest is jobs-invariant and deterministic"
      (Json.to_string a) (Json.to_string b);
    Alcotest.(check bool) "digest present when work > 0" true (Json.member "digest" a <> None)
  | _ -> Alcotest.fail "echo compute cannot fail"

(* Transport parity: the byte stream a client reads is transport-agnostic.
   Prime the same request on a Unix-socket server and on a TCP server;
   the second (cache-hit) reply carries elapsed_s = 0.0 exactly, so the
   raw reply lines must be byte-identical across the two transports. *)
let recv_raw_line fd =
  let buf = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while not (String.contains (Buffer.contents buf) '\n') do
    if Unix.gettimeofday () > deadline then failwith "raw reply timeout";
    match Unix.select [ fd ] [] [] 1.0 with
    | [], _, _ -> ()
    | _ ->
      let bytes = Bytes.create 4096 in
      let n = Unix.read fd bytes 0 (Bytes.length bytes) in
      if n = 0 then failwith "eof before reply" else Buffer.add_subbytes buf bytes 0 n
  done;
  let s = Buffer.contents buf in
  String.sub s 0 (String.index s '\n')

let t_tcp_unix_parity () =
  let req = Request.echo ~size:32 ~work:3 "transport-parity" in
  let second_reply transport =
    (match Client.request ~transport ~timeout_s:15.0 [ req ] with
    | Ok [ r ] -> Alcotest.(check string) "prime ok" "ok" (status_of r)
    | Ok _ | Error _ -> Alcotest.fail "prime request failed");
    let fd = connect transport in
    send_line fd (Request.to_json req);
    let line = recv_raw_line fd in
    Unix.close fd;
    line
  in
  let via_unix = ref "" and via_tcp = ref "" in
  with_toy_server (fun transport -> via_unix := second_reply transport);
  with_toy_server ~tcp:true (fun transport -> via_tcp := second_reply transport);
  Alcotest.(check bool) "a reply actually arrived" true (String.length !via_unix > 0);
  Alcotest.(check string) "cache-hit replies are byte-identical across transports"
    !via_unix !via_tcp

(* ---- the transport address grammar ----

   The parser must never guess: colon-bearing hosts need brackets,
   prefix-less strings fall back to a socket path unless they are
   unambiguously HOST:PORT, and the printer keeps the round-trip
   [of_string (to_string t) = Ok t] by construction (falling back to
   the explicit "unix:"/"tcp:" prefix whenever the plain rendering
   would parse as something else). *)

let transport_t = Alcotest.testable Transport.pp ( = )

let t_transport_grammar () =
  let ok s expect =
    Alcotest.(check (result transport_t string)) s (Ok expect) (Transport.of_string s)
  in
  let err s =
    match Transport.of_string s with
    | Error _ -> ()
    | Ok t -> Alcotest.failf "%S must not parse (got %s)" s (Transport.to_string t)
  in
  ok "localhost:8080" (Transport.Tcp { host = "localhost"; port = 8080 });
  ok "[::1]:80" (Transport.Tcp { host = "::1"; port = 80 });
  ok "tcp:[fe80::2]:443" (Transport.Tcp { host = "fe80::2"; port = 443 });
  ok "tcp:db.internal:5432" (Transport.Tcp { host = "db.internal"; port = 5432 });
  ok "tcp:localhost:0" (Transport.Tcp { host = "localhost"; port = 0 });
  (* paths, not truncated TCP guesses *)
  ok "::1" (Transport.Unix_socket "::1");
  ok "host:" (Transport.Unix_socket "host:");
  ok "a:b:1" (Transport.Unix_socket "a:b:1");
  ok "/var/run/app.sock:8080" (Transport.Unix_socket "/var/run/app.sock:8080");
  ok "unix:/var/run/app.sock:8080" (Transport.Unix_socket "/var/run/app.sock:8080");
  ok "unix:localhost:80" (Transport.Unix_socket "localhost:80");
  ok "/tmp/lb.sock" (Transport.Unix_socket "/tmp/lb.sock");
  (* malformed or ambiguous: errors, never guesses *)
  err "";
  err "tcp:";
  err "unix:";
  err "tcp:a:b:1";
  err "tcp:host";
  err "tcp:host:";
  err "tcp::80";
  err "tcp:host:70000";
  err "tcp:host:8o80";
  err "[::1]80";
  err "[]:80"

let print_transport = function
  | Transport.Unix_socket p -> Printf.sprintf "Unix_socket %S" p
  | Transport.Tcp { host; port } -> Printf.sprintf "Tcp {host = %S; port = %d}" host port

let gen_transport =
  QCheck.Gen.(
    let host_char = oneofl [ 'a'; 'z'; 'A'; '0'; '9'; '.'; '-'; ':' ] in
    let path_char = oneofl [ 'a'; 'z'; '/'; ':'; '.'; '-'; '0'; '9'; '['; ']'; '_' ] in
    oneof
      [
        (let* path = string_size ~gen:path_char (1 -- 20) in
         return (Transport.Unix_socket path));
        (let* host = string_size ~gen:host_char (1 -- 12) in
         let* port = 0 -- 65535 in
         return (Transport.Tcp { host; port }));
        (* paths engineered to collide with the address grammar *)
        (let* prefix = oneofl [ "unix:"; "tcp:"; "localhost:80"; "::1"; "[::1]:80" ] in
         let* suffix = string_size ~gen:path_char (0 -- 8) in
         return (Transport.Unix_socket (prefix ^ suffix)));
        (* hosts that shadow the prefixes or carry colons *)
        (let* host = oneofl [ "unix"; "tcp"; "::1"; "fe80::2"; "a.b-c" ] in
         let* port = 0 -- 65535 in
         return (Transport.Tcp { host; port }));
      ])

let t_transport_roundtrip =
  prop ~count:500 "transport: of_string (to_string t) = Ok t"
    (QCheck.make ~print:print_transport gen_transport)
    (fun t -> Transport.of_string (Transport.to_string t) = Ok t)

let t_transport_parse_total =
  prop ~count:500 "transport: parsing is total and parse-print-parse stable"
    (QCheck.make
       ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:printable (0 -- 24)))
    (fun s ->
      (* No input raises, and anything that parses re-parses to itself. *)
      match Transport.of_string s with
      | Error _ -> true
      | Ok t -> Transport.of_string (Transport.to_string t) = Ok t)

let suite =
  [
    Alcotest.test_case "request: distinct requests, distinct keys" `Quick
      t_distinct_requests_distinct_keys;
    Alcotest.test_case "request: of_json fills defaults" `Quick t_of_json_defaults;
    t_roundtrip;
    t_key_ignores_jobs;
    t_key_ignores_field_order;
    Alcotest.test_case "cache: hit/miss/refresh" `Quick t_cache_hit_miss;
    Alcotest.test_case "cache: LRU eviction" `Quick t_cache_lru_eviction;
    Alcotest.test_case "cache: journal reload" `Quick t_cache_journal_reload;
    Alcotest.test_case "cache: corrupt journal recovery" `Quick t_cache_corrupt_recovery;
    t_cache_roundtrip_byte_identical;
    Alcotest.test_case "executor: in-flight dedup + cache" `Quick t_executor_dedup_and_cache;
    Alcotest.test_case "executor: one poisoned request cannot sink a batch" `Quick
      t_executor_error_isolation;
    Alcotest.test_case "executor: per-request timeout (sequential)" `Quick t_executor_timeout;
    Alcotest.test_case "catalog: save -> reload -> serve = fresh computation" `Slow
      t_catalog_roundtrip_byte_identical;
    Alcotest.test_case "catalog: unknown ids are errors, not crashes" `Quick t_catalog_unknown;
    Alcotest.test_case "server: concurrent client fuzz" `Slow t_server_concurrent_fuzz;
    Alcotest.test_case "server: malformed lines get error responses" `Quick
      t_server_rejects_garbage;
    Alcotest.test_case "client: truncated reply is a typed error" `Quick
      t_client_truncated_reply;
    Alcotest.test_case "client: non-JSON reply is a typed error" `Quick
      t_client_non_json_reply;
    Alcotest.test_case "client: unknown reply key is a typed error" `Quick
      t_client_unknown_key_reply;
    Alcotest.test_case "client: timeout and connect failures are typed" `Quick
      t_client_timeout_and_connect;
    Alcotest.test_case "client: garbage reply fuzz never raises" `Quick t_client_garbage_fuzz;
    Alcotest.test_case "server: write_line survives a tiny send buffer" `Quick
      t_write_line_short_writes;
    t_cache_truncated_tail;
    Alcotest.test_case "cache: snapshot + compact keep only live entries" `Quick
      t_cache_snapshot_compact;
    Alcotest.test_case "client: backoff is deterministic and jitter-bounded" `Quick
      t_backoff_schedule;
    Alcotest.test_case "client: retry recovers across misbehaving connections" `Quick
      t_client_retry_recovers;
    Alcotest.test_case "client: overload refusals are retried, then typed" `Quick
      t_client_retry_overload;
    Alcotest.test_case "client: out-of-order keyed replies are accepted" `Quick
      t_client_out_of_order_replies;
    Alcotest.test_case "client: resends never double-execute (cache proves it)" `Quick
      t_client_never_double_executes;
    Alcotest.test_case "server: admission control refuses the excess, typed" `Quick
      t_server_overload_backpressure;
    Alcotest.test_case "catalog: echo payloads are deterministic" `Quick
      t_catalog_echo_deterministic;
    Alcotest.test_case "catalog: echo work digest is deterministic" `Quick
      t_catalog_echo_work;
    Alcotest.test_case "server: TCP and Unix-socket replies are byte-identical" `Slow
      t_tcp_unix_parity;
    Alcotest.test_case "transport: address grammar pins" `Quick t_transport_grammar;
    t_transport_roundtrip;
    t_transport_parse_total;
  ]
