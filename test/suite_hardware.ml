(* Tests for the hardware backend (lib/hardware): the Atomic LL/SC
   memory against the simulator's semantics, the ring-buffer recorder,
   the domain-per-process harness, and the bridge into the conformance
   checker.

   The load-bearing properties:
   - Hw_memory.apply and Memory.apply agree response-for-response on any
     single-domain operation sequence (the differential test scripts
     every interesting LL/SC/VL/swap/move interleaving across pids);
   - a solo hardware run of each universal construction reports exactly
     the simulator's per-op shared-access costs — the cross-validation
     of the two worlds;
   - a genuinely concurrent hardware run of each construction produces a
     history the Wing–Gong checker certifies linearizable, with
     fetch&inc responses forming a permutation (the acceptance criterion
     of the hardware backend);
   - the recorder flushes oldest-first and counts wraparound losses;
   - equal wall-clock stamps map to equal history ranks, so the history
     never asserts a real-time precedence that was not observed. *)

open Lowerbound

let spec = Counters.fetch_inc ~bits:62

let construction name =
  match Fault_targets.find name with
  | Some c -> c
  | None -> Alcotest.fail (name ^ " construction missing")

let hw_constructions = [ "adt-tree"; "herlihy"; "direct" ]

(* ---- differential memory semantics ---- *)

(* Replay one invocation on both memories and compare responses. *)
let agree ~sim ~hw ~pid inv ctx =
  let sim_r = Memory.apply sim ~pid inv in
  let hw_r = Hw_memory.apply hw ~pid inv in
  Alcotest.(check bool)
    (Printf.sprintf "%s: p%d %s agrees" ctx pid (Format.asprintf "%a" Op.pp_invocation inv))
    true
    (Op.equal_response sim_r hw_r)

let test_memory_differential () =
  let sim = Memory.create () in
  let hw = Hw_memory.create ~registers:8 ~n:3 () in
  let a = agree ~sim ~hw in
  (* Plain LL/SC success, then SC without a fresh link fails. *)
  a ~pid:0 (Op.Ll 0) "ll";
  a ~pid:0 (Op.Sc (0, Value.Int 1)) "sc succeeds after ll";
  a ~pid:0 (Op.Sc (0, Value.Int 2)) "second sc fails (link consumed)";
  (* An intervening write breaks the link. *)
  a ~pid:1 (Op.Ll 0) "p1 links";
  a ~pid:0 (Op.Ll 0) "p0 links";
  a ~pid:0 (Op.Sc (0, Value.Int 3)) "p0 wins";
  a ~pid:1 (Op.Sc (0, Value.Int 4)) "p1 loses: p0 wrote in between";
  (* Validate: true while linked, false after any write. *)
  a ~pid:2 (Op.Validate 0) "validate without link";
  a ~pid:2 (Op.Ll 0) "p2 links";
  a ~pid:2 (Op.Validate 0) "validate with link";
  a ~pid:0 (Op.Swap (0, Value.Int 9)) "swap returns the old value";
  a ~pid:2 (Op.Validate 0) "validate after swap: link broken";
  a ~pid:2 (Op.Sc (0, Value.Int 5)) "sc after swap fails";
  (* Swap breaks the swapper's own link too. *)
  a ~pid:0 (Op.Ll 1) "p0 links R1";
  a ~pid:0 (Op.Swap (1, Value.Int 7)) "p0 swaps R1";
  a ~pid:0 (Op.Sc (1, Value.Int 8)) "own swap broke the link";
  (* Move copies src to dst and breaks dst links. *)
  a ~pid:1 (Op.Ll 2) "p1 links R2";
  a ~pid:0 (Op.Move (0, 2)) "move R0 -> R2";
  a ~pid:1 (Op.Validate 2) "move broke R2 links";
  a ~pid:1 (Op.Ll 2) "R2 now holds R0's value";
  (* Counts agree per pid. *)
  List.iter
    (fun pid ->
      Alcotest.(check int)
        (Printf.sprintf "p%d access count" pid)
        (Memory.ops_of sim ~pid) (Hw_memory.ops_of hw ~pid))
    [ 0; 1; 2 ]

let test_memory_self_move_raises () =
  let hw = Hw_memory.create ~registers:4 ~n:1 () in
  Alcotest.check_raises "self-move raises like the simulator"
    (Memory.Self_move { pid = 0; reg = 2 })
    (fun () -> ignore (Hw_memory.apply hw ~pid:0 (Op.Move (2, 2))))

let test_memory_capacity_checked () =
  let hw = Hw_memory.create ~registers:4 ~n:1 () in
  match Hw_memory.apply hw ~pid:0 (Op.Ll 4) with
  | _ -> Alcotest.fail "out-of-range register must raise"
  | exception Invalid_argument _ -> ()

(* ---- the ring-buffer recorder ---- *)

let entry_seqs r = List.map (fun (e : Hw_recorder.entry) -> e.seq) (Hw_recorder.entries r)

let record_n r count =
  for seq = 0 to count - 1 do
    Hw_recorder.record r ~seq ~op:Value.unit ~response:(Value.Int seq)
      ~invoked:(float_of_int seq) ~responded:(float_of_int seq +. 0.5) ~cost:seq
  done

let test_recorder_flush_order () =
  let r = Hw_recorder.create ~capacity:8 in
  record_n r 5;
  Alcotest.(check int) "total" 5 (Hw_recorder.total r);
  Alcotest.(check int) "nothing dropped" 0 (Hw_recorder.dropped r);
  Alcotest.(check (list int)) "oldest first, recording order" [ 0; 1; 2; 3; 4 ] (entry_seqs r);
  let e = List.nth (Hw_recorder.entries r) 2 in
  Alcotest.(check int) "cost preserved" 2 e.Hw_recorder.cost;
  Alcotest.(check bool) "stamps preserved" true
    (e.Hw_recorder.invoked = 2.0 && e.Hw_recorder.responded = 2.5)

let test_recorder_wraparound () =
  let r = Hw_recorder.create ~capacity:4 in
  record_n r 7;
  Alcotest.(check int) "total counts overwritten records" 7 (Hw_recorder.total r);
  Alcotest.(check int) "three dropped" 3 (Hw_recorder.dropped r);
  Alcotest.(check (list int)) "retained suffix, oldest first" [ 3; 4; 5; 6 ] (entry_seqs r)

let test_recorder_exact_capacity () =
  let r = Hw_recorder.create ~capacity:4 in
  record_n r 4;
  Alcotest.(check int) "full ring, nothing dropped" 0 (Hw_recorder.dropped r);
  Alcotest.(check (list int)) "all four in order" [ 0; 1; 2; 3 ] (entry_seqs r)

(* ---- timestamp ranking ---- *)

let stat ~pid ~seq ~invoked ~responded response =
  {
    Hw_harness.pid;
    seq;
    op = Value.unit;
    response;
    invoked_s = invoked;
    responded_s = responded;
    cost = 1;
  }

let test_equal_stamps_share_rank () =
  (* Two ops with byte-identical windows, plus one strictly later: the
     equal stamps must collapse to equal ranks (fabricating an order
     would assert a precedence never observed), while genuinely distinct
     stamps keep their order. *)
  let h =
    Hw_harness.history_of
      ~stats:
        [
          stat ~pid:0 ~seq:0 ~invoked:1.0 ~responded:2.0 (Value.Int 0);
          stat ~pid:1 ~seq:0 ~invoked:1.0 ~responded:2.0 (Value.Int 1);
          stat ~pid:0 ~seq:1 ~invoked:3.0 ~responded:4.0 (Value.Int 2);
        ]
      ~failures:[]
  in
  let invoked pid seq =
    let op =
      List.find (fun (o : Conf_history.op) -> o.pid = pid && o.seq = seq) h
    in
    op.invoked
  in
  let responded pid seq =
    let op =
      List.find (fun (o : Conf_history.op) -> o.pid = pid && o.seq = seq) h
    in
    match op.outcome with
    | Conf_history.Completed { responded; _ } -> responded
    | Conf_history.Pending -> Alcotest.fail "expected a completed op"
  in
  Alcotest.(check int) "equal invocations, equal ranks" (invoked 0 0) (invoked 1 0);
  Alcotest.(check int) "equal responses, equal ranks" (responded 0 0) (responded 1 0);
  Alcotest.(check bool) "later op ranks later" true (invoked 0 1 > responded 0 0);
  (* And the overlap is checker-visible: with both orders possible the
     history linearizes whichever way the responses demand. *)
  Alcotest.(check bool) "overlapping history linearizable" true
    (Linearize.is_linearizable spec h)

let test_failures_become_pending () =
  let h =
    Hw_harness.history_of
      ~stats:[ stat ~pid:0 ~seq:0 ~invoked:1.0 ~responded:2.0 (Value.Int 0) ]
      ~failures:
        [ { Hw_harness.pid = 1; seq = 0; op = Value.unit; reason = "gave up"; invoked_s = 1.5 } ]
  in
  Alcotest.(check int) "two ops" 2 (List.length h);
  Alcotest.(check int) "one pending" 1 (List.length (Conf_history.pending h));
  Alcotest.(check bool) "give-up may or may not have taken effect" true
    (Linearize.is_linearizable spec h)

(* ---- solo cross-validation: hardware costs = simulator costs ---- *)

let test_solo_costs_match_simulator () =
  List.iter
    (fun name ->
      let c = construction name in
      let ops _ = List.init 8 (fun _ -> Value.unit) in
      let hw = Hw_harness.run ~construction:c ~spec ~n:1 ~ops () in
      let sim = Harness.run ~construction:c ~spec ~n:1 ~ops () in
      let hw_costs = List.map (fun (s : Hw_harness.op_stat) -> s.cost) hw.Hw_harness.stats in
      let sim_costs = List.map (fun (s : Harness.op_stat) -> s.Harness.cost) sim.Harness.stats in
      Alcotest.(check (list int))
        (name ^ ": solo per-op shared-access costs match the simulator")
        sim_costs hw_costs;
      let hw_responses =
        List.map (fun (s : Hw_harness.op_stat) -> s.response) hw.Hw_harness.stats
      in
      Alcotest.(check (list int))
        (name ^ ": solo responses are the counter sequence")
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        (List.map Value.to_int hw_responses))
    hw_constructions

(* ---- concurrent runs: the acceptance criterion ---- *)

let test_concurrent_histories_linearizable () =
  List.iter
    (fun name ->
      let c = construction name in
      let n = 4 and per = 8 in
      let result =
        Hw_harness.run ~construction:c ~spec ~n
          ~ops:(fun _ -> List.init per (fun _ -> Value.unit))
          ~seed:1 ()
      in
      let completed = List.length result.Hw_harness.stats in
      let failed = List.length result.Hw_harness.failures in
      Alcotest.(check int) (name ^ ": every op completed or gave up") (n * per)
        (completed + failed);
      Alcotest.(check int) (name ^ ": no recorder losses") 0 result.Hw_harness.dropped;
      (match Hw_harness.check ~max_states:500_000 ~spec result with
      | Linearize.Linearizable _ -> ()
      | Linearize.Not_linearizable _ ->
        Alcotest.fail (name ^ ": hardware history is not linearizable")
      | Linearize.Budget_exhausted _ ->
        Alcotest.fail (name ^ ": checker budget exhausted at this size"));
      (* The wait-free constructions cannot give up; when nothing gave
         up, fetch&inc responses must be a permutation of 0..N-1. *)
      if failed = 0 then begin
        let responses =
          List.map (fun (s : Hw_harness.op_stat) -> Value.to_int s.response)
            result.Hw_harness.stats
          |> List.sort Int.compare
        in
        Alcotest.(check (list int))
          (name ^ ": responses form a permutation")
          (List.init (n * per) Fun.id) responses
      end;
      if name <> "direct" then
        Alcotest.(check int) (name ^ ": wait-free, nothing gave up") 0 failed)
    hw_constructions

let test_concurrent_costs_within_worst_case () =
  (* The paper's bounds hold per operation on hardware exactly as in the
     simulator: cost accounting is the same counter. *)
  List.iter
    (fun name ->
      let c = construction name in
      let n = 4 in
      let result =
        Hw_harness.run ~construction:c ~spec ~n
          ~ops:(fun _ -> List.init 8 (fun _ -> Value.unit))
          ~seed:1 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: max cost %d within worst case %d" name
           result.Hw_harness.max_cost (c.Iface.worst_case ~n))
        true
        (result.Hw_harness.max_cost <= c.Iface.worst_case ~n))
    [ "adt-tree"; "herlihy" ]

(* ---- wakeup algorithms on hardware ---- *)

let test_wakeup_on_hardware () =
  List.iter
    (fun name ->
      match Corpus.find name with
      | None -> Alcotest.fail (name ^ " missing from the corpus")
      | Some entry ->
        let w = Hw_harness.run_wakeup ~make:entry.Corpus.make ~n:4 ~seed:1 () in
        Alcotest.(check (list string)) (name ^ ": wakeup conditions hold") []
          w.Hw_harness.issues;
        Alcotest.(check int) (name ^ ": every process decided") 4
          (List.length w.Hw_harness.results))
    [ "naive-collect"; "post-collect"; "move-collect"; "tree-collect"; "two-counter" ]

(* ---- bench rows ---- *)

let test_bench_row_shape () =
  let row =
    Hw_bench.measure ~check:true ~construction:(construction "direct") ~n:2
      ~ops_per_process:8 ~seed:1 ()
  in
  Alcotest.(check string) "row name" "hardware/direct/2" (Hw_bench.row_name row);
  Alcotest.(check int) "accounts for every op" 16
    (row.Hw_bench.completed + row.Hw_bench.failed);
  Alcotest.(check bool) "history checked" true (row.Hw_bench.linearizable <> None);
  (* The payload is Bench_gate-compatible: names + ns_per_run parse back. *)
  let parsed = Bench_gate.benchmarks_of_payload (Hw_bench.payload [ row ]) in
  match parsed with
  | [ (name, ns) ] ->
    Alcotest.(check string) "gate sees the row" "hardware/direct/2" name;
    Alcotest.(check bool) "ns_per_run non-negative" true (ns >= 0.0)
  | _ -> Alcotest.fail "payload must expose exactly one gated benchmark"

let suite =
  [
    Alcotest.test_case "memory: differential semantics vs simulator" `Quick
      test_memory_differential;
    Alcotest.test_case "memory: self-move raises" `Quick test_memory_self_move_raises;
    Alcotest.test_case "memory: register capacity checked" `Quick test_memory_capacity_checked;
    Alcotest.test_case "recorder: flush is oldest-first" `Quick test_recorder_flush_order;
    Alcotest.test_case "recorder: wraparound keeps newest, counts dropped" `Quick
      test_recorder_wraparound;
    Alcotest.test_case "recorder: exact capacity drops nothing" `Quick
      test_recorder_exact_capacity;
    Alcotest.test_case "history: equal stamps share a rank" `Quick
      test_equal_stamps_share_rank;
    Alcotest.test_case "history: give-ups become pending ops" `Quick
      test_failures_become_pending;
    Alcotest.test_case "solo run matches simulator costs exactly" `Quick
      test_solo_costs_match_simulator;
    Alcotest.test_case "concurrent histories certified linearizable" `Quick
      test_concurrent_histories_linearizable;
    Alcotest.test_case "concurrent costs within paper worst cases" `Quick
      test_concurrent_costs_within_worst_case;
    Alcotest.test_case "wakeup algorithms run on domains" `Quick test_wakeup_on_hardware;
    Alcotest.test_case "bench rows are Bench_gate-compatible" `Quick test_bench_row_shape;
  ]
