let () =
  Alcotest.run "lowerbound"
    [
      ("bitvec", Suite_bitvec.suite);
      ("value", Suite_value.suite);
      ("memory", Suite_memory.suite);
      ("runtime", Suite_runtime.suite);
      ("secretive", Suite_secretive.suite);
      ("adversary", Suite_adversary.suite);
      ("objects", Suite_objects.suite);
      ("universal", Suite_universal.suite);
      ("wakeup", Suite_wakeup.suite);
      ("explore", Suite_explore.suite);
      ("litmus", Suite_litmus.suite);
      ("faults", Suite_faults.suite);
      ("extensions", Suite_extensions.suite);
      ("fuzz", Suite_fuzz.suite);
      ("plumbing", Suite_plumbing.suite);
      ("observe", Suite_observe.suite);
      ("exec", Suite_exec.suite);
      ("experiments", Suite_experiments.suite);
      ("service", Suite_service.suite);
      ("shard", Suite_shard.suite);
      ("chaos", Suite_chaos.suite);
      ("conformance", Suite_conformance.suite);
      ("hardware", Suite_hardware.suite);
    ]
