(* Tests for the exhaustive-interleaving model checker, and exhaustive
   verification of the small-system properties it makes checkable: wakeup
   correctness under EVERY schedule, LL/SC atomicity, CAS linearizability. *)

open Lowerbound
open Program.Syntax

(* ---- Pure_memory agrees with the mutable memory ---- *)

let prop_pure_matches_mutable =
  let open QCheck in
  let gen_ops =
    Gen.(
      list_size (int_range 1 30)
        (oneof
           [
             map2 (fun p r -> `Ll (p mod 3, r mod 3)) small_nat small_nat;
             map3 (fun p r v -> `Sc (p mod 3, r mod 3, v)) small_nat small_nat small_nat;
             map2 (fun p r -> `Validate (p mod 3, r mod 3)) small_nat small_nat;
             map3 (fun p r v -> `Swap (p mod 3, r mod 3, v)) small_nat small_nat small_nat;
             map2 (fun p r -> `Move (p mod 3, r mod 3)) small_nat small_nat;
           ]))
  in
  let arb = make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l)) gen_ops in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"pure memory = mutable memory" arb (fun ops ->
         let mutable_mem = Memory.create ~default:(Value.Int 0) () in
         let pure = ref (Pure_memory.create ~default:(Value.Int 0) ~inits:[] ()) in
         List.for_all
           (fun op ->
             let inv =
               match op with
               | `Ll (_, r) -> Op.Ll r
               | `Sc (_, r, v) -> Op.Sc (r, Value.Int v)
               | `Validate (_, r) -> Op.Validate r
               | `Swap (_, r, v) -> Op.Swap (r, Value.Int v)
               | `Move (_, r) -> Op.Move (r, r + 1)
             in
             let pid =
               match op with
               | `Ll (p, _) | `Sc (p, _, _) | `Validate (p, _) | `Swap (p, _, _) | `Move (p, _)
                 -> p
             in
             let resp_mut = Memory.apply mutable_mem ~pid inv in
             let resp_pure, pure' = Pure_memory.apply !pure ~pid inv in
             pure := pure';
             Op.equal_response resp_mut resp_pure
             && List.for_all
                  (fun r ->
                    Value.equal (Memory.peek mutable_mem r) (Pure_memory.peek !pure r)
                    && Ids.equal (Memory.pset mutable_mem r) (Pure_memory.pset !pure r))
                  [ 0; 1; 2; 3 ])
           ops))

(* ---- basic explorer behaviour ---- *)

let test_run_counts () =
  (* Two processes, two ops each: C(4,2) = 6 interleavings. *)
  let two_ops _pid =
    let* _ = Program.ll 0 in
    let* _ = Program.ll 0 in
    Program.return 0
  in
  let count = Explore.iter ~n:2 ~program_of:two_ops ~f:(fun _ -> ()) () in
  Alcotest.(check int) "6 interleavings" 6 count;
  (* Three processes, one op each: 3! = 6. *)
  let one_op _pid =
    let* _ = Program.ll 0 in
    Program.return 0
  in
  let count = Explore.iter ~n:3 ~program_of:one_op ~f:(fun _ -> ()) () in
  Alcotest.(check int) "3! schedules" 6 count

let test_coin_branching () =
  (* One process, two tosses over {0,1}: 4 runs, results = sums. *)
  let program _pid =
    let* a = Program.toss_bounded 2 in
    let* b = Program.toss_bounded 2 in
    let* _ = Program.ll 0 in
    Program.return ((10 * a) + b)
  in
  let results = ref [] in
  let count =
    Explore.iter ~n:1 ~program_of:program ~coin_range:[ 0; 1 ]
      ~f:(fun run -> results := List.map snd run.Explore.results @ !results)
      ()
  in
  Alcotest.(check int) "4 coin combinations" 4 count;
  Alcotest.(check (list int)) "all outcomes" [ 0; 1; 10; 11 ] (List.sort compare !results)

let test_limit () =
  let chunky _pid =
    let rec loop k = if k = 0 then Program.return 0 else
      let* _ = Program.ll 0 in
      loop (k - 1)
    in
    loop 6
  in
  Alcotest.check_raises "limit enforced" (Explore.Limit_exceeded 10) (fun () ->
      ignore (Explore.iter ~n:3 ~program_of:chunky ~max_runs:10 ~f:(fun _ -> ()) ()))

let test_events_order () =
  let program pid =
    let* _ = Program.ll pid in
    Program.return pid
  in
  let saw_valid = ref true in
  ignore
    (Explore.iter ~n:2 ~program_of:program
       ~f:(fun run ->
         (* Each run: 2 steps and 2 returns, each return right after its
            step. *)
         match run.Explore.events with
         | [ Explore.Stepped (a, _, _); Explore.Returned (a', _); Explore.Stepped (b, _, _);
             Explore.Returned (b', _) ] ->
           if not (a = a' && b = b' && a <> b) then saw_valid := false
         | _ -> saw_valid := false)
       ());
  Alcotest.(check bool) "event shapes" true !saw_valid

(* ---- exhaustive LL/SC atomicity ---- *)

let test_exhaustive_llsc_one_winner () =
  (* n processes each LL then SC: in EVERY interleaving, the number of
     successful SCs equals the number of "rounds" where an LL-SC pair is
     uninterrupted... the invariant checked: at least one SC succeeds, and
     successful SC count <= n, and the final counter equals that count. *)
  let program _pid =
    let* v = Program.ll 0 in
    let* ok = Program.sc_flag 0 (Value.Int (Value.to_int v + 1)) in
    Program.return (if ok then 1 else 0)
  in
  let ok =
    Explore.for_all ~n:3 ~program_of:program ~inits:[ (0, Value.Int 0) ]
      ~f:(fun run ->
        let winners = List.length (List.filter (fun (_, v) -> v = 1) run.Explore.results) in
        winners >= 1 && winners <= 3)
      ()
  in
  Alcotest.(check bool) "1..n winners in every interleaving" true ok;
  (* And there exists a schedule where everyone wins (sequential), and one
     where exactly one wins (lockstep). *)
  let wins k run = List.length (List.filter (fun (_, v) -> v = 1) run.Explore.results) = k in
  Alcotest.(check bool) "some schedule: all win" true
    (Explore.exists ~n:3 ~program_of:program ~inits:[ (0, Value.Int 0) ] ~f:(wins 3) ());
  Alcotest.(check bool) "some schedule: one wins" true
    (Explore.exists ~n:3 ~program_of:program ~inits:[ (0, Value.Int 0) ] ~f:(wins 1) ())

(* ---- exhaustive wakeup verification ---- *)

let exhaustive_wakeup name entry ~n ~coin_range ~max_runs =
  let program_of, inits = entry.Corpus.make ~n in
  let ok =
    Explore.for_all ~n ~program_of ~inits ~coin_range ~max_runs
      ~f:(Explore.wakeup_ok ~n) ()
  in
  Alcotest.(check bool) (name ^ ": wakeup holds in every interleaving") true ok

let test_exhaustive_naive () =
  exhaustive_wakeup "naive n=2" Corpus.naive ~n:2 ~coin_range:[ 0 ] ~max_runs:200_000;
  exhaustive_wakeup "naive n=3" Corpus.naive ~n:3 ~coin_range:[ 0 ] ~max_runs:200_000

let test_exhaustive_post_collect () =
  exhaustive_wakeup "post-collect n=2" Corpus.post_collect ~n:2 ~coin_range:[ 0 ]
    ~max_runs:200_000;
  exhaustive_wakeup "post-collect n=3" Corpus.post_collect ~n:3 ~coin_range:[ 0 ]
    ~max_runs:200_000

let test_exhaustive_move_collect () =
  exhaustive_wakeup "move-collect n=2" Corpus.move_collect ~n:2 ~coin_range:[ 0 ]
    ~max_runs:200_000

let test_exhaustive_tree_collect () =
  (* 10 ops per process at n = 2: C(20, 10) = 184756 interleavings. *)
  exhaustive_wakeup "tree-collect n=2" Corpus.tree_collect ~n:2 ~coin_range:[ 0 ]
    ~max_runs:200_000

let test_exhaustive_two_counter () =
  (* Randomized: branch over both coin outcomes too. *)
  exhaustive_wakeup "two-counter n=2" Corpus.two_counter ~n:2 ~coin_range:[ 0; 1 ]
    ~max_runs:200_000

let test_exhaustive_cheater_found () =
  (* The blind cheater violates wakeup in SOME (indeed every) interleaving
     at n >= 2. *)
  let program_of, inits = Cheaters.blind ~n:2 in
  Alcotest.(check bool) "violation exists" true
    (Explore.exists ~n:2 ~program_of ~inits
       ~f:(fun run -> not (Explore.wakeup_ok ~n:2 run))
       ())

(* ---- reduced exploration agrees with full exploration ---- *)

(* The reduction contract: strictly fewer schedules, identical set of
   distinct (results, wakeup verdict) outcomes. *)
let outcome run ~n =
  (List.sort compare run.Explore.results, Explore.wakeup_ok ~n run)

let reduced_agrees ?(strict = true) name entry ~n ~coin_range =
  let program_of, inits = entry.Corpus.make ~n in
  let full = ref [] in
  let reduced = ref [] in
  let full_count =
    Explore.iter ~n ~program_of ~inits ~coin_range
      ~f:(fun run -> full := outcome run ~n :: !full)
      ()
  in
  let stats =
    Explore.iter_reduced ~n ~program_of ~inits ~coin_range
      ~f:(fun run -> reduced := outcome run ~n :: !reduced)
      ()
  in
  let distinct l = List.sort_uniq compare l in
  Alcotest.(check int)
    (name ^ ": stats.runs counts the callback") (List.length !reduced) stats.Explore.runs;
  Alcotest.(check bool)
    (name ^ ": same distinct outcomes") true
    (distinct !full = distinct !reduced);
  if strict then
    Alcotest.(check bool)
      (Printf.sprintf "%s: strictly fewer schedules (%d < %d)" name stats.Explore.runs
         full_count)
      true
      (stats.Explore.runs < full_count)

let test_reduced_corpus () =
  reduced_agrees "naive n=2" Corpus.naive ~n:2 ~coin_range:[ 0 ];
  reduced_agrees "naive n=3" Corpus.naive ~n:3 ~coin_range:[ 0 ];
  reduced_agrees "post-collect n=2" Corpus.post_collect ~n:2 ~coin_range:[ 0 ];
  reduced_agrees "post-collect n=3" Corpus.post_collect ~n:3 ~coin_range:[ 0 ];
  reduced_agrees "move-collect n=2" Corpus.move_collect ~n:2 ~coin_range:[ 0 ];
  reduced_agrees "tree-collect n=2" Corpus.tree_collect ~n:2 ~coin_range:[ 0 ];
  reduced_agrees "two-counter n=2" Corpus.two_counter ~n:2 ~coin_range:[ 0; 1 ]

let test_reduced_finds_cheater () =
  (* The pruned schedule set still contains a witness of every distinct
     verdict — the blind cheater's violation survives reduction. *)
  let program_of, inits = Cheaters.blind ~n:2 in
  Alcotest.(check bool) "violation survives reduction" false
    (Explore.for_all_reduced ~n:2 ~program_of ~inits
       ~f:(Explore.wakeup_ok ~n:2) ())

let test_reduced_wakeup_verdicts () =
  (* for_all_reduced gives the same verdict as for_all on the whole corpus
     at n=2. *)
  List.iter
    (fun (name, entry) ->
      let program_of, inits = entry.Corpus.make ~n:2 in
      let coin_range = [ 0; 1 ] in
      let expected =
        Explore.for_all ~n:2 ~program_of ~inits ~coin_range
          ~f:(Explore.wakeup_ok ~n:2) ()
      in
      let got =
        Explore.for_all_reduced ~n:2 ~program_of ~inits ~coin_range
          ~f:(Explore.wakeup_ok ~n:2) ()
      in
      Alcotest.(check bool) (name ^ ": reduced verdict = full verdict") expected got)
    [
      ("naive", Corpus.naive);
      ("post-collect", Corpus.post_collect);
      ("move-collect", Corpus.move_collect);
      ("two-counter", Corpus.two_counter);
    ]

(* ---- reduction under an active fault plan ---- *)

(* Program-level encoding of [Fault_plan.spurious_sc_at ~pid ~at]: the
   k-th SC of [pid] (1-based, for k in [at]) is replaced by a Validate on
   the same register whose response is forced to [Flagged (false,
   current)] — exactly the memory semantics of a spurious SC failure: no
   write, link (Pset) kept, failure flag returned.  Encoding the fault in
   the program lets the exhaustive explorer, which has no fault engine of
   its own, branch over every schedule of the {e faulted} execution. *)
let inject_spurious ~pid ~at program_of p =
  if p <> pid then program_of p
  else
    let rec go k prog =
      match prog with
      | Program.Return _ -> prog
      | Program.Toss cont -> Program.Toss (fun o -> go k (cont o))
      | Program.Op (Op.Sc (r, _), cont) when List.mem k at ->
        Program.Op
          ( Op.Validate r,
            fun resp -> go (k + 1) (cont (Op.Flagged (false, Op.value_of resp))) )
      | Program.Op ((Op.Sc _ as inv), cont) ->
        Program.Op (inv, fun resp -> go (k + 1) (cont resp))
      | Program.Op (inv, cont) -> Program.Op (inv, fun resp -> go k (cont resp))
    in
    go 1 (program_of p)

let reduced_agrees_on name ~n ~coin_range ~program_of ~inits =
  let full = ref [] and reduced = ref [] in
  let full_count =
    Explore.iter ~n ~program_of ~inits ~coin_range
      ~f:(fun run -> full := outcome run ~n :: !full)
      ()
  in
  let stats =
    Explore.iter_reduced ~n ~program_of ~inits ~coin_range
      ~f:(fun run -> reduced := outcome run ~n :: !reduced)
      ()
  in
  let distinct l = List.sort_uniq compare l in
  Alcotest.(check bool)
    (name ^ ": same distinct outcomes under faults") true
    (distinct !full = distinct !reduced);
  Alcotest.(check bool)
    (Printf.sprintf "%s: no more schedules than full (%d <= %d)" name stats.Explore.runs
       full_count)
    true
    (stats.Explore.runs <= full_count)

let test_reduced_under_fault_plan () =
  (* The spuriously failed SC changes the independence structure (an SC
     becomes a read-kind Validate), so this is precisely where a wrong
     sleep-set would diverge from full exploration.  tree-collect is the
     one corpus algorithm that both issues SCs and tolerates their
     failure (its merge loop ignores the flag); naive-collect and
     two-counter size their SC retry budget at exactly [n], a bound
     sound for genuine interference but overrun by one spurious
     failure. *)
  (let program_of, inits = Corpus.tree_collect.Corpus.make ~n:2 in
   let program_of = inject_spurious ~pid:0 ~at:[ 1; 2 ] program_of in
   reduced_agrees_on "tree-collect n=2 + spurious-sc@0:1,2" ~n:2 ~coin_range:[ 0 ]
     ~program_of ~inits);
  (* And on a raw LL/SC race, the fault's effect is total: with its only
     SC forced spurious, pid 0 can never win, under full and reduced
     exploration alike. *)
  let race _pid =
    let* v = Program.ll 0 in
    let* ok = Program.sc_flag 0 (Value.Int (Value.to_int v + 1)) in
    Program.return (if ok then 1 else 0)
  in
  let program_of = inject_spurious ~pid:0 ~at:[ 1 ] race in
  let inits = [ (0, Value.Int 0) ] in
  let zero_never_wins run = not (List.mem (0, 1) run.Explore.results) in
  Alcotest.(check bool) "full: pid 0 never wins" true
    (Explore.for_all ~n:2 ~program_of ~inits ~f:zero_never_wins ());
  Alcotest.(check bool) "reduced: pid 0 never wins" true
    (Explore.for_all_reduced ~n:2 ~program_of ~inits ~f:zero_never_wins ());
  reduced_agrees_on "ll/sc race + spurious-sc@0:1" ~n:2 ~coin_range:[ 0 ] ~program_of ~inits

(* ---- exhaustive CAS linearizability ---- *)

let test_exhaustive_cas () =
  (* Every interleaving of 3 concurrent CAS(0 -> tagged pid): exactly one
     succeeds, and the linearizability checker accepts the history built
     from the run's event order. *)
  let layout = Layout.create () in
  let handle = Direct.compare_and_swap layout ~init:(Value.Int 0) in
  let program_of pid =
    handle.Iface.apply ~pid ~seq:0
      (Misc_types.op_cas ~expected:(Value.Int 0) ~new_:(Value.pair (Value.Int pid) Value.unit))
  in
  let spec = Misc_types.compare_and_swap ~init:(Value.Int 0) in
  let ok =
    Explore.for_all ~n:3 ~program_of ~inits:(Layout.inits layout)
      ~f:(fun run ->
        let winners =
          List.filter (fun (_, v) -> Value.to_bool (fst (Value.to_pair v))) run.Explore.results
        in
        (* Build a sequential-looking history from return order: each op
           invoked at time 0-ish and responding in event order is too
           coarse; instead use per-process first-step and return positions
           from the event list. *)
        let position p =
          let rec go i first_step = function
            | [] -> (Option.value ~default:0 first_step, i)
            | Explore.Stepped (pid, _, _) :: rest when pid = p && first_step = None ->
              go (i + 1) (Some i) rest
            | Explore.Returned (pid, _) :: _ when pid = p -> (Option.value ~default:i first_step, i)
            | _ :: rest -> go (i + 1) first_step rest
          in
          go 0 None run.Explore.events
        in
        let history =
          List.map
            (fun (pid, response) ->
              let invoked, responded = position pid in
              History.entry ~pid
                ~op:
                  (Misc_types.op_cas ~expected:(Value.Int 0)
                     ~new_:(Value.pair (Value.Int pid) Value.unit))
                ~response ~invoked ~responded)
            run.Explore.results
        in
        List.length winners = 1 && History.is_linearizable spec history)
      ()
  in
  Alcotest.(check bool) "every interleaving: one winner + linearizable" true ok

(* ---- dynamic partial-order reduction ---- *)

(* Soundness of the DPOR walk: on arbitrary small programs, both oracle
   modes (stateless and stateful) reproduce full exploration's set of
   distinct outcomes.  Programs mix every invocation kind plus a coin
   toss, so the dependency relation, the happens-before race filter, and
   the coin-sibling expansion are all exercised. *)
let prop_dpor_agrees =
  let open QCheck in
  let gen_step =
    Gen.(
      oneof
        [
          map (fun r -> `Ll (r mod 3)) small_nat;
          map2 (fun r v -> `Sc (r mod 3, v mod 5)) small_nat small_nat;
          map (fun r -> `Validate (r mod 3)) small_nat;
          map2 (fun r v -> `Swap (r mod 3, v mod 5)) small_nat small_nat;
          map (fun r -> `Move (r mod 3)) small_nat;
          return `Toss;
        ])
  in
  let gen_program = Gen.(pair (list_size (int_range 1 4) gen_step) (list_size (int_range 1 4) gen_step)) in
  let print (a, b) = Printf.sprintf "<%d,%d steps>" (List.length a) (List.length b) in
  let vint (v : Value.t) = Hashtbl.hash v land 0xffff in
  let program_of_steps steps =
    let open Program.Syntax in
    let rec go acc = function
      | [] -> Program.return acc
      | `Ll r :: rest ->
        let* v = Program.ll r in
        go ((31 * acc) + vint v) rest
      | `Sc (r, v) :: rest ->
        let* ok = Program.sc_flag r (Value.Int v) in
        go ((31 * acc) + Bool.to_int ok) rest
      | `Validate r :: rest ->
        let* ok, v = Program.validate r in
        go ((31 * acc) + Bool.to_int ok + vint v) rest
      | `Swap (r, v) :: rest ->
        let* old = Program.swap r (Value.Int v) in
        go ((31 * acc) + vint old) rest
      | `Move r :: rest ->
        let* () = Program.move ~src:r ~dst:((r + 1) mod 3) in
        go acc rest
      | `Toss :: rest ->
        let* c = Program.toss_bounded 2 in
        go ((31 * acc) + c) rest
    in
    go 0 steps
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"dpor outcomes = full outcomes" (make ~print gen_program)
       (fun (s0, s1) ->
         let program_of pid = program_of_steps (if pid = 0 then s0 else s1) in
         let coin_range = [ 0; 1 ] in
         let collect iter =
           let acc = ref [] in
           ignore (iter ~f:(fun run -> acc := outcome run ~n:2 :: !acc));
           List.sort_uniq compare !acc
         in
         let full = collect (fun ~f -> Explore.iter ~n:2 ~program_of ~coin_range ~f ()) in
         let dpor =
           collect (fun ~f ->
               Explore.iter_dpor ~n:2 ~program_of ~coin_range ~dedup:false ~f ())
         in
         let dedup =
           collect (fun ~f ->
               Explore.iter_dpor ~n:2 ~program_of ~coin_range ~dedup:true ~f ())
         in
         full = dpor && full = dedup))

(* The canonical-count property: with state dedup on, the surviving
   schedule set has one representative per covered class, and the DPOR
   walk lands on exactly [iter_reduced]'s counts — the two reductions
   agree not just on outcomes but on size. *)
let test_dpor_corpus_agreement () =
  List.iter
    (fun (name, entry, n, coin_range) ->
      let program_of, inits = (entry : Corpus.entry).Corpus.make ~n in
      let reduced = ref [] in
      let stats =
        Explore.iter_reduced ~n ~program_of ~inits ~coin_range
          ~f:(fun run -> reduced := outcome run ~n :: !reduced)
          ()
      in
      let dpor = ref [] in
      let dstats =
        Explore.iter_dpor ~n ~program_of ~inits ~coin_range ~dedup:true
          ~f:(fun run -> dpor := outcome run ~n :: !dpor)
          ()
      in
      let distinct l = List.sort_uniq compare l in
      Alcotest.(check int)
        (name ^ ": dpor+dedup schedule count = reduced count")
        stats.Explore.runs dstats.Sched_tree.schedules;
      Alcotest.(check bool) (name ^ ": same distinct outcomes") true
        (distinct !reduced = distinct !dpor))
    [
      ("naive n=2", Corpus.naive, 2, [ 0 ]);
      ("naive n=3", Corpus.naive, 3, [ 0 ]);
      ("post-collect n=2", Corpus.post_collect, 2, [ 0 ]);
      ("move-collect n=2", Corpus.move_collect, 2, [ 0 ]);
      ("two-counter n=2", Corpus.two_counter, 2, [ 0; 1 ]);
    ]

(* The headline reduction: on tree-collect n=2, sleep-set POR explores
   100 schedules; the pre-emption-bounded DPOR walk explores strictly
   fewer, reports exactly what the bound elided, and still reproduces
   the identical outcome set (empirically — bounding is unsound in
   general, which is why [stats.elided] exists). *)
let test_dpor_bounded_tree_collect () =
  let program_of, inits = Corpus.tree_collect.Corpus.make ~n:2 in
  let reduced = ref [] in
  let stats =
    Explore.iter_reduced ~n:2 ~program_of ~inits ~coin_range:[ 0 ]
      ~f:(fun run -> reduced := outcome run ~n:2 :: !reduced)
      ()
  in
  let check_bounded ~preempt ~dedup =
    let dpor = ref [] in
    let bounds = { Sched_tree.no_bounds with preempt = Some preempt } in
    let dstats =
      Explore.iter_dpor ~n:2 ~program_of ~inits ~coin_range:[ 0 ] ~bounds ~dedup
        ~f:(fun run -> dpor := outcome run ~n:2 :: !dpor)
        ()
    in
    let distinct l = List.sort_uniq compare l in
    Alcotest.(check bool)
      (Printf.sprintf "preempt<=%d: strictly fewer schedules (%d < %d)" preempt
         dstats.Sched_tree.schedules stats.Explore.runs)
      true
      (dstats.Sched_tree.schedules < stats.Explore.runs);
    Alcotest.(check bool)
      (Printf.sprintf "preempt<=%d: truncation is reported" preempt)
      true
      (dstats.Sched_tree.elided > 0 && not (Sched_tree.exhaustive dstats));
    Alcotest.(check bool)
      (Printf.sprintf "preempt<=%d: identical outcome set" preempt)
      true
      (distinct !reduced = distinct !dpor)
  in
  check_bounded ~preempt:1 ~dedup:false;
  check_bounded ~preempt:2 ~dedup:true

let test_dpor_limit () =
  (* Satellite regression: the run cap surfaces as [Limit_exceeded], like
     [iter] and [iter_reduced] — not as a silent truncation. *)
  let program_of, inits = Corpus.naive.Corpus.make ~n:3 in
  Alcotest.check_raises "dpor limit enforced" (Explore.Limit_exceeded 10) (fun () ->
      ignore
        (Explore.iter_dpor ~n:3 ~program_of ~inits ~dedup:false ~max_runs:10
           ~f:(fun _ -> ())
           ()))

let test_dpor_finds_cheater () =
  (* Witness preservation: every distinct verdict survives the reduction,
     so the blind cheater's wakeup violation is still found. *)
  let program_of, inits = Cheaters.blind ~n:2 in
  List.iter
    (fun dedup ->
      Alcotest.(check bool)
        (Printf.sprintf "violation survives dpor (dedup=%b)" dedup)
        false
        (Explore.for_all_dpor ~n:2 ~program_of ~inits ~dedup
           ~f:(Explore.wakeup_ok ~n:2) ()))
    [ false; true ]

(* ---- weak memory models: store buffers in the explorer ---- *)

(* Random two-process programs over plain writes, fences and the fencing
   LL/SC repertoire — the alphabet where the models actually differ. *)
let gen_relaxed_program =
  let open QCheck in
  let gen_step =
    Gen.(
      oneof
        [
          map2 (fun r v -> `Write (r mod 2, v mod 3)) small_nat small_nat;
          return `Fence;
          map (fun r -> `Read (r mod 2)) small_nat;
          map2 (fun r v -> `Swap (r mod 2, v mod 3)) small_nat small_nat;
          map (fun r -> `Ll (r mod 2)) small_nat;
        ])
  in
  let gen = Gen.(pair (list_size (int_range 1 3) gen_step) (list_size (int_range 1 3) gen_step)) in
  make ~print:(fun (a, b) -> Printf.sprintf "<%d,%d relaxed steps>" (List.length a) (List.length b)) gen

let relaxed_program_of_steps steps =
  let open Program.Syntax in
  let vint (v : Value.t) = Hashtbl.hash v land 0xffff in
  let rec go acc = function
    | [] -> Program.return acc
    | `Write (r, v) :: rest ->
      let* () = Program.write r (Value.Int v) in
      go acc rest
    | `Fence :: rest ->
      let* () = Program.fence in
      go acc rest
    | `Read r :: rest ->
      let* v = Program.read r in
      go ((31 * acc) + vint v) rest
    | `Swap (r, v) :: rest ->
      let* old = Program.swap r (Value.Int v) in
      go ((31 * acc) + vint old) rest
    | `Ll r :: rest ->
      let* v = Program.ll r in
      go ((31 * acc) + vint v) rest
  in
  go 0 steps

let relaxed_outcomes ?model ?eager_flush program_of =
  let acc = ref [] in
  ignore
    (Explore.iter ~n:2 ~program_of ?model ?eager_flush
       ~f:(fun run -> acc := List.sort compare run.Explore.results :: !acc)
       ());
  List.sort_uniq compare !acc

(* Satellite: scheduling every flush immediately after its write collapses
   each relaxed model back to SC — the store buffer only matters when the
   scheduler can delay it. *)
let prop_eager_flush_is_sc =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"eager-flush relaxed outcomes = SC outcomes"
       gen_relaxed_program (fun (s0, s1) ->
         let program_of pid = relaxed_program_of_steps (if pid = 0 then s0 else s1) in
         let sc = relaxed_outcomes ~model:Memory_model.SC program_of in
         List.for_all
           (fun model -> relaxed_outcomes ~model ~eager_flush:true program_of = sc)
           [ Memory_model.TSO; Memory_model.PSO ]))

(* Satellite: the model lattice on arbitrary programs — weakening the model
   only ever adds outcomes, never removes one. *)
let prop_model_lattice =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"outcome lattice: SC <= TSO <= PSO"
       gen_relaxed_program (fun (s0, s1) ->
         let program_of pid = relaxed_program_of_steps (if pid = 0 then s0 else s1) in
         let subset a b = List.for_all (fun o -> List.mem o b) a in
         let of_model model = relaxed_outcomes ~model program_of in
         let sc = of_model Memory_model.SC
         and tso = of_model Memory_model.TSO
         and pso = of_model Memory_model.PSO in
         subset sc tso && subset tso pso))

(* Satellite: DPOR soundness extends to the flush alphabet — under TSO and
   PSO the reduced walk reproduces full exploration's outcome set, with and
   without state dedup. *)
let prop_dpor_agrees_relaxed =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"dpor outcomes = full outcomes (tso/pso)"
       gen_relaxed_program (fun (s0, s1) ->
         let program_of pid = relaxed_program_of_steps (if pid = 0 then s0 else s1) in
         List.for_all
           (fun model ->
             let full = relaxed_outcomes ~model program_of in
             List.for_all
               (fun dedup ->
                 let acc = ref [] in
                 ignore
                   (Explore.iter_dpor ~n:2 ~program_of ~model ~dedup
                      ~f:(fun run -> acc := List.sort compare run.Explore.results :: !acc)
                      ());
                 List.sort_uniq compare !acc = full)
               [ false; true ])
           [ Memory_model.TSO; Memory_model.PSO ]))

(* The SB shape, directly under the full explorer: the relaxed outcome
   r0 = r1 = 0 appears under TSO/PSO and never under SC — the same claim the
   litmus suite certifies through the DPOR path, checked here through the
   naive path so the two enumeration engines guard each other. *)
let sb_program_of pid =
  let* () = Program.write pid (Value.Int 1) in
  let* v = Program.read (1 - pid) in
  Program.return (Value.to_int v)

let test_full_iter_store_buffering () =
  let inits = [ (0, Value.Int 0); (1, Value.Int 0) ] in
  let admits model =
    Explore.exists ~n:2 ~program_of:sb_program_of ~inits ~model
      ~f:(fun run -> List.sort compare run.Explore.results = [ (0, 0); (1, 0) ])
      ()
  in
  Alcotest.(check bool) "SC forbids r0=r1=0" false (admits Memory_model.SC);
  Alcotest.(check bool) "TSO admits r0=r1=0" true (admits Memory_model.TSO);
  Alcotest.(check bool) "PSO admits r0=r1=0" true (admits Memory_model.PSO)

(* Pinned reduction row: on SB under TSO the flush alphabet inflates the
   full interleaving count to 74 schedules; DPOR covers the identical
   outcome set in 64.  The reduction is modest here by design — SB is all
   conflicts (every step touches a register the other process reads), and
   the mandatory flush-absorption siblings (Sched_tree.also) add branches
   plain DPOR would not — but a drop in either number is a reduction
   improvement worth noticing and a rise is a regression. *)
let test_dpor_relaxed_reduction_pinned () =
  let inits = [ (0, Value.Int 0); (1, Value.Int 0) ] in
  let full = ref [] in
  let full_count =
    Explore.iter ~n:2 ~program_of:sb_program_of ~inits ~model:Memory_model.TSO
      ~f:(fun run -> full := List.sort compare run.Explore.results :: !full)
      ()
  in
  let dpor = ref [] in
  let dstats =
    Explore.iter_dpor ~n:2 ~program_of:sb_program_of ~inits ~model:Memory_model.TSO
      ~dedup:false
      ~f:(fun run -> dpor := List.sort compare run.Explore.results :: !dpor)
      ()
  in
  Alcotest.(check int) "SB/TSO full interleavings" 74 full_count;
  Alcotest.(check int) "SB/TSO dpor schedules" 64 dstats.Sched_tree.schedules;
  Alcotest.(check bool) "same outcome set" true
    (List.sort_uniq compare !full = List.sort_uniq compare !dpor);
  Alcotest.(check bool) "dpor strictly reduces" true
    (dstats.Sched_tree.schedules < full_count)

(* Satellite regression: a buffered-but-unflushed write must keep two
   states distinct.  [canonical] alone equates "write in flight" with
   "write never issued" — [canonical_full] (the dedup key) does not. *)
let test_canonical_full_distinguishes_buffers () =
  let pm = Pure_memory.create ~model:Memory_model.TSO ~default:(Value.Int 0) ~inits:[] () in
  let resp, buffered = Pure_memory.apply pm ~pid:0 (Op.Write (0, Value.Int 1)) in
  Alcotest.(check bool) "write acked" true (resp = Op.Ack);
  Alcotest.(check bool) "canonical alone collides" true
    (Pure_memory.canonical buffered = Pure_memory.canonical pm);
  Alcotest.(check bool) "canonical_full separates" false
    (Pure_memory.canonical_full buffered = Pure_memory.canonical_full pm);
  let flushed = Pure_memory.flush buffered ~pid:0 ~reg:0 in
  Alcotest.(check bool) "flush changes canonical" false
    (Pure_memory.canonical flushed = Pure_memory.canonical pm);
  Alcotest.(check bool) "flushed state has empty buffers" true
    (Pure_memory.canonical_full flushed = (Pure_memory.canonical flushed, []))

let suite =
  [
    prop_pure_matches_mutable;
    Alcotest.test_case "interleaving counts" `Quick test_run_counts;
    Alcotest.test_case "coin branching" `Quick test_coin_branching;
    Alcotest.test_case "run limit" `Quick test_limit;
    Alcotest.test_case "event order" `Quick test_events_order;
    Alcotest.test_case "exhaustive LL/SC winners" `Quick test_exhaustive_llsc_one_winner;
    Alcotest.test_case "exhaustive wakeup: naive" `Slow test_exhaustive_naive;
    Alcotest.test_case "exhaustive wakeup: post-collect" `Slow test_exhaustive_post_collect;
    Alcotest.test_case "exhaustive wakeup: move-collect" `Slow test_exhaustive_move_collect;
    Alcotest.test_case "exhaustive wakeup: tree-collect" `Slow test_exhaustive_tree_collect;
    Alcotest.test_case "exhaustive wakeup: two-counter" `Slow test_exhaustive_two_counter;
    Alcotest.test_case "exhaustive cheater violation" `Quick test_exhaustive_cheater_found;
    Alcotest.test_case "reduced = full outcomes (corpus)" `Slow test_reduced_corpus;
    Alcotest.test_case "reduced finds cheater" `Quick test_reduced_finds_cheater;
    Alcotest.test_case "reduced verdicts (corpus n=2)" `Slow test_reduced_wakeup_verdicts;
    Alcotest.test_case "reduced = full under a fault plan" `Slow test_reduced_under_fault_plan;
    Alcotest.test_case "exhaustive CAS linearizability" `Slow test_exhaustive_cas;
    prop_dpor_agrees;
    Alcotest.test_case "dpor+dedup counts = reduced counts (corpus)" `Slow
      test_dpor_corpus_agreement;
    Alcotest.test_case "bounded dpor beats sleep-set POR (tree-collect)" `Slow
      test_dpor_bounded_tree_collect;
    Alcotest.test_case "dpor run limit" `Quick test_dpor_limit;
    Alcotest.test_case "dpor finds cheater" `Quick test_dpor_finds_cheater;
    prop_eager_flush_is_sc;
    prop_model_lattice;
    prop_dpor_agrees_relaxed;
    Alcotest.test_case "full iter: store buffering" `Quick test_full_iter_store_buffering;
    Alcotest.test_case "dpor reduction under tso (pinned)" `Quick
      test_dpor_relaxed_reduction_pinned;
    Alcotest.test_case "canonical_full keeps buffered states apart" `Quick
      test_canonical_full_distinguishes_buffers;
  ]
