(* Tests for the Section-7 RMW extension: memory semantics, the unit-cost
   universal construction, and the one-operation wakeup. *)

open Lowerbound

let value = Alcotest.testable Value.pp Value.equal

let test_rmw_memory () =
  let m = Rmw.Mem.create () in
  Rmw.Mem.set_init m 0 (Value.Int 5);
  let old = Rmw.Mem.rmw m ~pid:2 ~reg:0 (fun v -> Value.Int (Value.to_int v * 10)) in
  Alcotest.check value "returns old" (Value.Int 5) old;
  Alcotest.check value "applied f" (Value.Int 50) (Rmw.Mem.peek m 0);
  Alcotest.(check int) "counted" 1 (Rmw.Mem.ops_of m ~pid:2);
  Alcotest.(check int) "others zero" 0 (Rmw.Mem.ops_of m ~pid:0);
  Alcotest.check value "unset register" Value.Unit (Rmw.Mem.peek m 9)

let run_ops handle ~inits ~n ops_of schedule =
  Rmw.run_system ~n
    ~program_of:(fun pid -> Rmw.apply handle ~op:(ops_of pid))
    ~inits ~schedule

(* Every object type, implemented in exactly one shared op, matches the
   sequential specification applied in schedule order. *)
let test_unit_cost_universal_all_types () =
  let cases =
    [
      (Counters.fetch_inc ~bits:62, (fun _ -> Value.Unit));
      (Bitwise.fetch_or ~bits:8, fun pid -> Value.Int (1 lsl pid));
      (Containers.queue_with_items 4, fun _ -> Containers.op_deq);
      (Misc_types.consensus, fun pid -> Misc_types.op_propose (Value.Int pid));
    ]
  in
  List.iter
    (fun (spec, ops_of) ->
      let n = 4 in
      let schedule = [ 2; 0; 3; 1 ] in
      let handle = Rmw.create ~reg:0 spec in
      let memory, results = run_ops handle ~inits:[ (0, Rmw.init handle) ] ~n ops_of schedule in
      Alcotest.(check int) (spec.Spec.name ^ ": unit cost") 1 (Rmw.Mem.max_ops memory);
      (* Reference: the sequential spec applied in schedule order. *)
      let expected, _ = Spec.run_sequential spec (List.map ops_of schedule) in
      List.iter2
        (fun pid expected_resp ->
          Alcotest.check value
            (Printf.sprintf "%s: p%d response" spec.Spec.name pid)
            expected_resp (List.assoc pid results))
        schedule expected)
    cases

let test_rmw_wakeup_all_schedules () =
  (* One op per process means schedules are permutations; check a few:
     exactly the last scheduled process returns 1. *)
  let n = 5 in
  let program_of, inits = Rmw.wakeup ~n ~reg:0 in
  List.iter
    (fun schedule ->
      let memory, results = Rmw.run_system ~n ~program_of ~inits ~schedule in
      Alcotest.(check int) "unit cost" 1 (Rmw.Mem.max_ops memory);
      let winners = List.filter (fun (_, v) -> v = 1) results in
      Alcotest.(check (list (pair int int))) "last scheduled wins"
        [ (List.nth schedule (n - 1), 1) ]
        winners)
    [ [ 0; 1; 2; 3; 4 ]; [ 4; 3; 2; 1; 0 ]; [ 2; 0; 4; 1; 3 ] ]

let test_rmw_schedule_validation () =
  let program_of, inits = Rmw.wakeup ~n:3 ~reg:0 in
  Alcotest.check_raises "unfinished" (Failure "Rmw.run_system: schedule left processes unfinished")
    (fun () -> ignore (Rmw.run_system ~n:3 ~program_of ~inits ~schedule:[ 0; 1 ]));
  (* Extra schedule entries for terminated processes are skipped. *)
  let _, results = Rmw.run_system ~n:3 ~program_of ~inits ~schedule:[ 0; 0; 1; 1; 2 ] in
  Alcotest.(check int) "all terminated" 3 (List.length results)

let test_e12_passes () =
  let table = Lb_experiments.Experiments.e12 ~ns:[ 2; 8; 64 ] () in
  Alcotest.(check bool) "E12" true table.Lb_experiments.Table.pass

let suite =
  [
    Alcotest.test_case "RMW memory semantics" `Quick test_rmw_memory;
    Alcotest.test_case "unit-cost universal, all types" `Quick test_unit_cost_universal_all_types;
    Alcotest.test_case "RMW wakeup over schedules" `Quick test_rmw_wakeup_all_schedules;
    Alcotest.test_case "schedule validation" `Quick test_rmw_schedule_validation;
    Alcotest.test_case "experiment E12" `Quick test_e12_passes;
  ]
