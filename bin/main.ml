(* The `lowerbound` command-line tool.

   Subcommands:
     exp [IDS..]       run experiment tables (default: all)
     analyze NAME -n N run the Theorem 6.1 adversary analysis on one corpus
                       algorithm and print the full report
     corpus            list the wakeup algorithm corpus
     trace NAME -n N   print the round-by-round (All, A)-run of an algorithm
     sweep CONSTR      complexity sweep of a universal construction
     faults TARGET     certify wait-freedom under an injected fault plan
     serve             run the batching request server on a Unix socket
     request [SPECS..] send requests (or control ops) to a running server *)

open Lowerbound
open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logging =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* --jobs/-j: 1 = sequential (the determinism baseline), 0 = auto
   (LOWERBOUND_JOBS or the machine's recommended domain count).  Tables and
   traces are identical at every value — see docs/PERFORMANCE.md. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"J"
        ~doc:
          "Domains to fan independent work across (1 = sequential, 0 = auto from \
           $(b,LOWERBOUND_JOBS) or the CPU count).  Results are identical at every value.")

let resolve_jobs jobs = if jobs = 0 then Pool.default_jobs () else jobs

(* ---- exp ---- *)

let exp_cmd =
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1 .. e11).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced-size sweeps (fast).")
  in
  let run () ids quick jobs =
    let jobs = resolve_jobs jobs in
    let tables =
      match ids with
      | [] -> Lb_experiments.Experiments.all ~jobs ~quick ()
      | ids ->
        List.map
          (fun id ->
            match Lb_experiments.Experiments.by_id ~jobs id with
            | Some f -> f ()
            | None -> failwith (Printf.sprintf "unknown experiment %s" id))
          ids
    in
    List.iter (fun t -> Format.printf "%a@.@." Lb_experiments.Table.pp t) tables;
    if List.for_all (fun t -> t.Lb_experiments.Table.pass) tables then 0 else 1
  in
  let term = Term.(const run $ logging $ ids_arg $ quick $ jobs_arg) in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run experiment tables (the paper's results as measurements).")
    term

(* ---- corpus ---- *)

let corpus_cmd =
  let run () =
    Format.printf "correct wakeup algorithms:@.";
    List.iter
      (fun (e : Corpus.entry) ->
        Format.printf "  %-35s randomized=%b%s@." e.Corpus.name e.Corpus.randomized
          (match e.Corpus.worst_case with
          | Some b -> Printf.sprintf "  worst case at n=64: %d" (b ~n:64)
          | None -> ""))
      (Corpus.correct_algorithms ());
    Format.printf "cheaters (failure injection):@.";
    List.iter
      (fun (e : Corpus.entry) -> Format.printf "  %-35s randomized=%b@." e.Corpus.name e.Corpus.randomized)
      (Corpus.cheaters ~n_hint:64);
    0
  in
  Cmd.v (Cmd.info "corpus" ~doc:"List the wakeup algorithm corpus.") Term.(const run $ logging)

(* ---- shared args ---- *)

let n_arg =
  Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Toss-assignment seed.")

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ALGORITHM" ~doc:"Corpus entry name (see `lowerbound corpus`).")

let find_entry name =
  match Corpus.find name with
  | Some e -> e
  | None -> (
    match List.find_opt (fun (e : Corpus.entry) -> e.Corpus.name = name) (Corpus.cheaters ~n_hint:64) with
    | Some e -> e
    | None -> failwith (Printf.sprintf "unknown algorithm %S (try `lowerbound corpus`)" name))

(* ---- analyze ---- *)

let analyze_cmd =
  let run () name n seed =
    let entry = find_entry name in
    let report =
      if entry.Corpus.randomized then Lowerbound.analyze_entry_seeded entry ~n ~seed ~max_rounds:40_000
      else Lowerbound.analyze_entry entry ~n ~max_rounds:40_000
    in
    Format.printf "%a@." Lower_bound.pp_report report;
    if report.Lower_bound.violation = None then 0 else 3
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Theorem 6.1 analysis: run the adversary, compute UP sets, build the (S, A)-run and \
          report the forced complexity (exit 3 when a wakeup violation is found — i.e. for \
          cheaters).")
    Term.(const run $ logging $ name_arg $ n_arg $ seed_arg)

(* ---- trace ---- *)

let trace_cmd =
  let rounds_arg =
    Arg.(value & opt int 10 & info [ "rounds" ] ~docv:"R" ~doc:"Max rounds to print.")
  in
  let args_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ARG"
          ~doc:"A corpus algorithm name — or, with $(b,--diff), two trace files (JSONL).")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:"Record the run's structured event trace to $(docv) as JSONL (one event per line).")
  in
  let events_flag =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:"Print the structured event stream instead of the round-by-round view.")
  in
  let kinds_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "kinds" ] ~docv:"KINDS"
          ~doc:"Comma-separated event kinds to keep (with --events or --diff): access, toss, \
                sched, round, crash, recovery, invoke, complete, give-up, end.")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:"Diff two recorded traces positionally; exit 1 when they differ, 0 when \
                identical.")
  in
  let check_kinds = function
    | None -> ()
    | Some ks ->
      List.iter
        (fun k ->
          if not (List.mem k Event.kinds) then
            failwith
              (Printf.sprintf "unknown event kind %S (one of: %s)" k
                 (String.concat ", " Event.kinds)))
        ks
  in
  let keep kinds (e : Event.stamped) =
    match kinds with None -> true | Some ks -> List.mem (Event.kind e.Event.event) ks
  in
  let run_diff kinds = function
    | [ left_path; right_path ] ->
      let load path =
        match Trace_file.load path with Ok events -> events | Error msg -> failwith msg
      in
      let entries = Trace_diff.compute ?kinds (load left_path) (load right_path) in
      if entries = [] then begin
        Format.printf "traces are identical (0 differences)@.";
        0
      end
      else begin
        Format.printf "%a@." Trace_diff.pp entries;
        Format.printf "(%d difference(s))@." (List.length entries);
        1
      end
    | args ->
      failwith (Printf.sprintf "--diff takes exactly two trace files, got %d" (List.length args))
  in
  let run_record name n seed max_print record events kinds =
    let entry = find_entry name in
    let program_of, inits = entry.Corpus.make ~n in
    let assignment = if entry.Corpus.randomized then Coin.uniform ~seed else Coin.constant 0 in
    let tracer = Tracer.ring () in
    let run =
      Tracer.with_tracer tracer (fun () ->
          All_run.execute ~n ~program_of ~assignment ~inits ~max_rounds:40_000 ())
    in
    let recorded = List.filter (keep kinds) (Tracer.events tracer) in
    (match record with
    | Some path ->
      Trace_file.save path recorded;
      Format.printf "(recorded %d events to %s" (List.length recorded) path;
      if Tracer.dropped tracer > 0 then
        Format.printf "; ring dropped the oldest %d" (Tracer.dropped tracer);
      Format.printf ")@."
    | None -> ());
    if events then List.iter (fun e -> Format.printf "%a@." Event.pp_stamped e) recorded
    else
      List.iteri
        (fun i round -> if i < max_print then Format.printf "%a@." Round.pp round)
        run.All_run.rounds;
    Format.printf "(%d rounds total; results: %s)@." (All_run.num_rounds run)
      (String.concat ", "
         (List.map (fun (p, v) -> Printf.sprintf "p%d=%d" p v) run.All_run.results));
    0
  in
  let run () args n seed max_print record events kinds diff =
    check_kinds kinds;
    if diff then run_diff kinds args
    else
      match args with
      | [ name ] -> run_record name n seed max_print record events kinds
      | _ -> failwith "trace takes exactly one algorithm name (or two files with --diff)"
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Print the round-by-round (All, A)-run of a corpus algorithm; record its structured \
          event trace ($(b,--record)), pretty-print and filter the events ($(b,--events), \
          $(b,--kinds)), or diff two recorded traces ($(b,--diff)).")
    Term.(
      const run $ logging $ args_arg $ n_arg $ seed_arg $ rounds_arg $ record_arg $ events_flag
      $ kinds_arg $ diff_flag)

(* ---- sweep ---- *)

let sweep_cmd =
  let constr_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("adt-tree", `Adt); ("herlihy", `Herlihy); ("consensus-list", `Consensus) ]))
          None
      & info [] ~docv:"CONSTRUCTION" ~doc:"adt-tree, herlihy or consensus-list.")
  in
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 2; 4; 8; 16; 32; 64; 128; 256 ]
      & info [ "ns" ] ~docv:"NS" ~doc:"Comma-separated process counts.")
  in
  let run () which ns =
    let construction =
      match which with
      | `Adt -> Adt_tree.construction
      | `Herlihy -> Herlihy.construction
      | `Consensus -> Consensus_list.construction
    in
    let rows =
      Complexity.sweep ~construction
        ~spec_of:(fun _ -> Counters.fetch_inc ~bits:62)
        ~ops_of:(fun ~n:_ _ -> [ Value.Unit ])
        ~ns ()
    in
    Format.printf "%a@."
      (Complexity.pp_table
         ~header:(Printf.sprintf "%s / fetch&inc, worst-case shared ops per operation"
                    construction.Iface.name))
      rows;
    0
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Measure a universal construction's shared-access cost over n.")
    Term.(const run $ logging $ constr_arg $ ns_arg)

(* ---- upsets ---- *)

let upsets_cmd =
  let rounds_arg =
    Arg.(value & opt int 12 & info [ "rounds" ] ~docv:"R" ~doc:"Max rounds to display.")
  in
  let run () name n seed max_print =
    let entry = find_entry name in
    let program_of, inits = entry.Corpus.make ~n in
    let assignment = if entry.Corpus.randomized then Coin.uniform ~seed else Coin.constant 0 in
    let run = All_run.execute ~n ~program_of ~assignment ~inits ~max_rounds:40_000 () in
    let upsets = Upsets.compute ~n run.All_run.rounds in
    Format.printf
      "UP-set growth for %s at n = %d (Lemma 5.1 bound: |UP(X, r)| <= 4^r):@.@.%5s | %12s | %9s | %s@."
      name n "round" "4^r (cap n)" "max |UP|" "per-process |UP(p, r)|";
    Format.printf "%s@." (String.make 72 '-');
    let rounds = min (Upsets.rounds upsets) max_print in
    for r = 0 to rounds do
      let pow = if r >= 16 then n else min n (1 lsl (2 * r)) in
      let sizes =
        List.init n (fun pid -> Ids.cardinal (Upsets.of_process upsets ~r ~pid))
      in
      Format.printf "%5d | %12d | %9d | %s@." r pow (Upsets.max_size upsets ~r)
        (String.concat " " (List.map string_of_int sizes))
    done;
    if Upsets.rounds upsets > rounds then
      Format.printf "... (%d more rounds)@." (Upsets.rounds upsets - rounds);
    Format.printf "@.lemma 5.1 holds over the whole run: %b@." (Upsets.lemma_5_1_holds upsets);
    0
  in
  Cmd.v
    (Cmd.info "upsets"
       ~doc:
         "Show the round-by-round growth of the UP knowledge sets along the (All, A)-run — \
          the mechanism that forces the log4 n bound.")
    Term.(const run $ logging $ name_arg $ n_arg $ seed_arg $ rounds_arg)

(* ---- profile ---- *)

let profile_cmd =
  let constr_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("adt-tree", `Adt); ("herlihy", `Herlihy); ("consensus-list", `Consensus) ]))
          None
      & info [] ~docv:"CONSTRUCTION" ~doc:"adt-tree, herlihy or consensus-list.")
  in
  let run () which n =
    let construction =
      match which with
      | `Adt -> Adt_tree.construction
      | `Herlihy -> Herlihy.construction
      | `Consensus -> Consensus_list.construction
    in
    let layout = Layout.create () in
    let handle = construction.Iface.create layout ~n (Counters.fetch_inc ~bits:62) in
    let memory = Memory.create ~log:true () in
    Layout.install layout memory;
    let result =
      Harness.run_handle ~memory ~handle ~n ~ops:(fun _ -> [ Value.Unit; Value.Unit ]) ()
    in
    Format.printf "%s, %d processes x 2 fetch&inc each (round-robin):@.%a@."
      construction.Iface.name n Profile.pp (Profile.of_memory memory);
    Format.printf "worst op cost: %d (analytic bound %d)@." result.Harness.max_cost
      (construction.Iface.worst_case ~n);
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Contention profile (per-register access statistics) of a universal construction.")
    Term.(const run $ logging $ constr_arg $ n_arg)

(* ---- faults ---- *)

let faults_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "What to certify: $(b,adt-tree), $(b,herlihy), $(b,consensus-list), $(b,direct) \
             (a fetch&increment construction), $(b,all) for every construction, or a wakeup \
             corpus entry name (see `lowerbound corpus`).")
  in
  let plan_arg =
    Arg.(
      value & opt string "crash-stop"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: a named plan, several joined with $(b,+) (e.g. \
             $(b,crash-stop+spurious-sc)), or $(b,all) to sweep every named plan.")
  in
  let ops_arg =
    Arg.(
      value & opt int 1
      & info [ "ops" ] ~docv:"K" ~doc:"Operations per process (construction targets only).")
  in
  let run () target n seed plan_name ops jobs =
    let jobs = resolve_jobs jobs in
    let plans =
      if plan_name = "all" then Fault_plan.named ~n |> List.map snd
      else
        match Fault_plan.of_name ~n plan_name with
        | Some p -> [ p ]
        | None ->
          failwith
            (Printf.sprintf "unknown plan %S (one of: %s; join with '+', or 'all')" plan_name
               (String.concat ", " Fault_plan.plan_names))
    in
    (* Certifications fan across domains; the reports print sequentially in
       plan-matrix order afterwards, so the output is job-count-invariant. *)
    let certify_construction t plan () =
      let r = Faults.run ~target:t ~plan ~n ~seed ~ops_per_process:ops () in
      ((fun () -> Format.printf "%a@." Faults.pp_report r), r.Faults.status)
    in
    let certify_wakeup (entry : Corpus.entry) plan () =
      let r =
        Faults.run_wakeup ~algorithm:entry.Corpus.name ~make:entry.Corpus.make ~plan ~n ~seed
          ~randomized:entry.Corpus.randomized ()
      in
      ((fun () -> Format.printf "%a@." Faults.pp_wakeup_report r), r.Faults.wstatus)
    in
    let matrix =
      match target with
      | "all" ->
        List.concat_map
          (fun t -> List.map (certify_construction t) plans)
          Fault_targets.all
      | _ -> (
        match Fault_targets.find target with
        | Some t -> List.map (certify_construction t) plans
        | None ->
          let entry = find_entry target in
          List.map (certify_wakeup entry) plans)
    in
    let reports = Pool.map ~jobs (fun certify -> certify ()) matrix in
    let statuses = List.map (fun (print, status) -> print (); status) reports in
    let count s = List.length (List.filter (( = ) s) statuses) in
    Format.printf "@.certified: %d  degraded: %d  violated: %d@." (count Faults.Certified)
      (count Faults.Degraded) (count Faults.Violated);
    if count Faults.Violated = 0 then 0 else 3
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Certify wait-freedom under adversity: run a construction (or wakeup algorithm) under \
          a fault plan — crashes, crash-recovery, spurious SC failures, delays, stalled \
          regions — and report a structured per-process verdict (exit 3 on a certification \
          violation).")
    Term.(const run $ logging $ target_arg $ n_arg $ seed_arg $ plan_arg $ ops_arg $ jobs_arg)

(* ---- conform ---- *)

let conform_cmd =
  let target_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TARGET"
          ~doc:
            "Construction to check: $(b,adt-tree), $(b,herlihy), $(b,consensus-list), \
             $(b,direct), or $(b,all).")
  in
  let cn_arg =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")
  in
  let type_arg =
    Arg.(
      value & opt string "all"
      & info [ "type" ] ~docv:"TYPE"
          ~doc:"Object type to fuzz (e.g. $(b,fetch-inc), $(b,queue)), or $(b,all).")
  in
  let plan_arg =
    Arg.(
      value & opt string "none"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan to fuzz under: a named plan, several joined with $(b,+), or $(b,all) \
             to sweep every named plan.")
  in
  let ops_arg =
    Arg.(value & opt int 4 & info [ "ops" ] ~docv:"K" ~doc:"Operations per process.")
  in
  let schedules_arg =
    Arg.(
      value & opt int 1000
      & info [ "schedules" ] ~docv:"S" ~doc:"Random schedules per (construction, type, plan) cell.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-states" ] ~docv:"B" ~doc:"Linearizability checker state budget per history.")
  in
  let mutate_flag =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Mutation-testing mode: inject each known construction bug (dropped SC validation, \
             stale LL, lost SC/swap writes) and require the checker to kill every applicable \
             mutant.")
  in
  let exhaustive_flag =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Bounded-exhaustive mode: instead of sampling random schedules, walk every \
             in-bound interleaving of each cell with bounded DPOR (see docs/EXPLORATION.md).  \
             The report states how many schedules the bounds elided; with no bound flags, a \
             pre-emption bound of 2 applies.")
  in
  let preempt_bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "preempt-bound" ] ~docv:"K"
          ~doc:"Max pre-emptive context switches per schedule ($(b,--exhaustive)).")
  in
  let fair_bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fair-bound" ] ~docv:"D"
          ~doc:"Max step-count lead over the least-stepped enabled process ($(b,--exhaustive)).")
  in
  let len_bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "len-bound" ] ~docv:"L"
          ~doc:"Max scheduling decisions per schedule ($(b,--exhaustive)).")
  in
  let max_schedules_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-schedules" ] ~docv:"M"
          ~doc:"Abort an $(b,--exhaustive) walk past this many runs (safety valve, an error).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Also write the report to $(docv) as JSON.")
  in
  let model_arg =
    Arg.(
      value & opt string "sc"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Memory model to run every cell under: $(b,sc) (default), $(b,tso) or $(b,pso).               The constructions use only the fencing LL/SC repertoire, so conformance must              survive relaxation unchanged — see docs/MEMORY_MODELS.md.")
  in
  let run () target n seed typ plan_name ops schedules max_states mutate exhaustive preempt
      fair len max_schedules report_file model_name jobs =
    let jobs = resolve_jobs jobs in
    let model =
      match Memory_model.of_string model_name with
      | Ok m -> m
      | Error msg -> failwith msg
    in
    let constructions =
      if target = "all" then Conformance.constructions
      else
        match Conformance.find_construction target with
        | Some c -> [ c ]
        | None ->
          failwith
            (Printf.sprintf "unknown construction %S (adt-tree, herlihy, consensus-list, direct, all)"
               target)
    in
    let types () =
      if typ = "all" then Schedule_fuzz.object_types
      else
        match Schedule_fuzz.find_type typ with
        | Some t -> [ t ]
        | None ->
          failwith
            (Printf.sprintf "unknown object type %S (one of: %s, or all)" typ
               (String.concat ", " Schedule_fuzz.type_names))
    in
    let plans () =
      if plan_name = "all" then Fault_plan.named ~n
      else
        match Fault_plan.of_name ~n plan_name with
        | Some p -> [ (plan_name, p) ]
        | None ->
          failwith
            (Printf.sprintf "unknown plan %S (one of: %s; join with '+', or 'all')" plan_name
               (String.concat ", " Fault_plan.plan_names))
    in
    let write_json path json =
      let oc = open_out path in
      output_string oc (Json.to_string ~pretty:true json);
      output_string oc "\n";
      close_out oc;
      Format.printf "report written to %s@." path
    in
    if exhaustive then begin
      let bounds =
        if preempt = None && fair = None && len = None then Exhaustive.default_bounds
        else { Sched_tree.preempt; fair; length = len }
      in
      let report =
        if mutate then
          {
            Exhaustive.certs = [];
            mutants =
              Exhaustive.mutant_matrix ~jobs ~constructions ~model ~n ~ops ~seed ~bounds
                ~max_schedules ~max_states ();
          }
        else
          {
            Exhaustive.certs =
              Exhaustive.matrix ~jobs ~constructions ~types:(types ()) ~plans:(plans ())
                ~model ~n ~ops ~seed ~bounds ~max_schedules ~max_states ();
            mutants = [];
          }
      in
      Format.printf "%a@." Exhaustive.pp_report report;
      Option.iter (fun path -> write_json path (Exhaustive.json_of_report report)) report_file;
      if Exhaustive.ok report then 0 else 3
    end
    else begin
      let report =
        if mutate then
          {
            Conformance.cells = [];
            mutants =
              Conformance.mutation_matrix ~jobs ~constructions ~model ~n ~ops ~schedules
                ~seed ~max_states ();
          }
        else
          {
            Conformance.cells =
              Conformance.fuzz_matrix ~jobs ~constructions ~types:(types ()) ~plans:(plans ())
                ~model ~n ~ops ~schedules ~seed ~max_states ();
            mutants = [];
          }
      in
      Format.printf "%a@." Conformance.pp_report report;
      Option.iter (fun path -> write_json path (Conformance.json_of_report report)) report_file;
      if Conformance.ok report then 0 else 3
    end
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Conformance-check the universal constructions: fuzz seeded random schedules (and \
          fault plans) through each construction and object type, check every history for \
          linearizability, shrink any counterexample to a locally-minimal schedule (exit 3 on \
          violation).  With $(b,--mutate), verify the checker catches seeded bugs.  With \
          $(b,--exhaustive), replace sampling by a bounded-exhaustive DPOR walk of the \
          schedule space.")
    Term.(
      const run $ logging $ target_arg $ cn_arg $ seed_arg $ type_arg $ plan_arg $ ops_arg
      $ schedules_arg $ max_states_arg $ mutate_flag $ exhaustive_flag $ preempt_bound_arg
      $ fair_bound_arg $ len_bound_arg $ max_schedules_arg $ report_arg $ model_arg
      $ jobs_arg)

(* ---- hw ---- *)

let hw_cmd =
  let construction_arg =
    Arg.(
      value & opt string "all"
      & info [ "construction" ] ~docv:"CONSTR"
          ~doc:
            "Construction to run on hardware: $(b,adt-tree), $(b,herlihy), $(b,direct), or \
             $(b,all).")
  in
  let hn_arg =
    Arg.(
      value & opt int 4
      & info [ "n" ] ~docv:"N"
          ~doc:"Domains (= processes).  Beyond the core count they timeshare.")
  in
  let ops_arg =
    Arg.(value & opt int 64 & info [ "ops" ] ~docv:"K" ~doc:"Operations per process.")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Certify the recorded history with the Wing–Gong linearizability checker (exit 3 \
             on a violation or a blown state budget).")
  in
  let bench_flag =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Sweep n over {1,2,4,8} ∪ {available domains} and append \
             $(b,hardware/<construction>/<n>) rows to BENCH_hardware.json.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 500_000
      & info [ "max-states" ] ~docv:"B" ~doc:"Linearizability checker state budget.")
  in
  let wakeup_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wakeup" ] ~docv:"ALGORITHM"
          ~doc:"Run a wakeup-corpus algorithm on hardware instead of a construction.")
  in
  let constructions_of name =
    let hw_targets =
      List.filter (fun (c : Iface.t) -> c.Iface.name <> "consensus-list") Fault_targets.all
    in
    if name = "all" then hw_targets
    else
      match Fault_targets.find name with
      | Some c -> [ c ]
      | None ->
        failwith (Printf.sprintf "unknown construction %S (adt-tree, herlihy, direct, all)" name)
  in
  let run_wakeup name n seed =
    match Corpus.find name with
    | None -> failwith (Printf.sprintf "unknown wakeup algorithm %S (see `lowerbound corpus`)" name)
    | Some entry ->
      let w = Hw_harness.run_wakeup ~make:entry.Corpus.make ~n ~seed () in
      Format.printf "%s on hardware, n=%d: results %s  (%.3f ms, %d shared ops, max/pid %d)@."
        entry.Corpus.name n
        (String.concat " "
           (List.map (fun (p, r) -> Printf.sprintf "p%d:%d" p r) w.Hw_harness.results))
        (w.Hw_harness.welapsed_s *. 1e3) w.Hw_harness.wtotal_shared_ops
        w.Hw_harness.wmax_shared_ops;
      if w.Hw_harness.issues = [] then begin
        Format.printf "wakeup conditions OK (bits decided; someone returned 1)@.";
        0
      end
      else begin
        List.iter (fun i -> Format.printf "ISSUE: %s@." i) w.Hw_harness.issues;
        3
      end
  in
  let run () construction n ops seed check bench max_states wakeup =
    match wakeup with
    | Some name -> run_wakeup name n seed
    | None ->
      let constructions = constructions_of construction in
      if bench then begin
        let rows =
          Hw_bench.sweep ~ops_per_process:ops ~seed ~check ~constructions
            ~ns:(Hw_bench.default_ns ()) ()
        in
        Format.printf "row                      | ns/op       | ops/s      | max cost | lin@.";
        Format.printf "%s@." (String.make 72 '-');
        List.iter
          (fun (r : Hw_bench.row) ->
            Format.printf "%-24s | %11.1f | %10.0f | %8d | %s@." (Hw_bench.row_name r)
              r.Hw_bench.ns_per_op r.Hw_bench.ops_per_s r.Hw_bench.max_cost
              (match r.Hw_bench.linearizable with
              | Some true -> "yes"
              | Some false -> "NO"
              | None -> "-"))
          rows;
        let path = Hw_bench.append rows in
        Format.printf "appended %d rows to %s@." (List.length rows) path;
        if List.exists (fun (r : Hw_bench.row) -> r.Hw_bench.linearizable = Some false) rows
        then 3
        else 0
      end
      else begin
        let spec = Hw_bench.spec in
        let verdicts =
          List.map
            (fun (c : Iface.t) ->
              let result =
                Hw_harness.run ~construction:c ~spec ~n
                  ~ops:(fun _ -> List.init ops (fun _ -> Value.Unit))
                  ~seed ()
              in
              let completed = List.length result.Hw_harness.stats in
              Format.printf
                "%-15s n=%d: %d/%d ops completed, %d gave up — %.3f ms, %.0f ops/s, cost \
                 max %d mean %.1f@."
                c.Iface.name n completed ((n * ops) ) (List.length result.Hw_harness.failures)
                (result.Hw_harness.elapsed_s *. 1e3)
                (if result.Hw_harness.elapsed_s > 0.0 then
                   float_of_int completed /. result.Hw_harness.elapsed_s
                 else 0.0)
                result.Hw_harness.max_cost result.Hw_harness.mean_cost;
              if not check then true
              else begin
                match Hw_harness.check ~max_states ~spec result with
                | Linearize.Linearizable { stats; _ } ->
                  Format.printf "  history linearizable (%d states explored)@."
                    stats.Linearize.states;
                  true
                | Linearize.Not_linearizable { bad_prefix; _ } ->
                  Format.printf "  history NOT linearizable (bad prefix %d)@." bad_prefix;
                  false
                | Linearize.Budget_exhausted { budget; _ } ->
                  Format.printf "  checker budget exhausted (%d states)@." budget;
                  false
              end)
            constructions
        in
        if List.for_all Fun.id verdicts then 0 else 3
      end
  in
  Cmd.v
    (Cmd.info "hw"
       ~doc:
         "Run the universal constructions (or a wakeup algorithm) as native multicore code: \
          one OCaml domain per process against Atomic LL/SC registers (Blelloch–Wei tagged \
          indirection).  $(b,--check) certifies the recorded history with the simulator-side \
          linearizability checker; $(b,--bench) records wall-clock latency/throughput curves \
          into BENCH_hardware.json.")
    Term.(
      const run $ logging $ construction_arg $ hn_arg $ ops_arg $ seed_arg $ check_flag
      $ bench_flag $ max_states_arg $ wakeup_arg)

(* ---- explore ---- *)

let explore_cmd =
  let max_runs_arg =
    Arg.(
      value & opt int 500_000
      & info [ "max-runs" ] ~docv:"K" ~doc:"Abort if more interleavings than this.")
  in
  let reduced_flag =
    Arg.(
      value & flag
      & info [ "reduced" ]
          ~doc:
            "Use sleep-set + state-dedup reduction: explores a schedule subset covering every \
             distinct (results, wakeup verdict) outcome, and reports how many subtrees were \
             pruned.  Sound for the wakeup check; orders of magnitude fewer schedules.")
  in
  let run () name n max_runs reduced =
    let entry = find_entry name in
    let program_of, inits = entry.Corpus.make ~n in
    let coin_range = if entry.Corpus.randomized then [ 0; 1 ] else [ 0 ] in
    let violations = ref 0 in
    let check run = if not (Explore.wakeup_ok ~n run) then incr violations in
    (try
       if reduced then begin
         let stats =
           Explore.iter_reduced ~n ~program_of ~inits ~coin_range ~max_runs ~f:check ()
         in
         Format.printf
           "%s at n = %d (reduced): %d schedules explored (%d sleep-set prunes, %d revisited \
            states cut), %d wakeup violations -> %s@."
           name n stats.Explore.runs stats.Explore.sleep_pruned stats.Explore.dedup_pruned
           !violations
           (if !violations = 0 then "VERIFIED" else "VIOLATED")
       end
       else begin
         let count =
           Explore.iter ~n ~program_of ~inits ~coin_range ~max_runs ~f:check ()
         in
         Format.printf "%s at n = %d: %d interleavings, %d wakeup violations -> %s@." name n
           count !violations
           (if !violations = 0 then "VERIFIED" else "VIOLATED")
       end
     with Explore.Limit_exceeded k ->
       Format.printf "state space exceeds %d runs; reduce n or raise --max-runs@." k);
    if !violations = 0 then 0 else 3
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively verify a wakeup algorithm over every interleaving (and coin outcome) at \
          a small n (exit 3 if violations are found); $(b,--reduced) prunes commuting and \
          revisited schedules first.")
    Term.(const run $ logging $ name_arg $ n_arg $ max_runs_arg $ reduced_flag)

(* ---- litmus ---- *)

let litmus_cmd =
  let test_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"TEST"
          ~doc:
            "Litmus test to run ($(b,SB), $(b,SB+fence), $(b,SB+rmw), $(b,MP), \
             $(b,MP+fence), $(b,MP+rmw), $(b,LB), $(b,IRIW)) or $(b,all).")
  in
  let max_runs_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-runs" ] ~docv:"K"
          ~doc:"Abort a per-model DPOR walk past this many runs (an error).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Also write the report to $(docv) as JSON.")
  in
  let json_of_outcome o =
    Json.Arr (List.map (fun (_, v) -> Json.Int v) o)
  in
  let json_of_cell (c : Litmus.cell) =
    Json.(
      Obj
        [
          ("model", Str (Memory_model.to_string c.Litmus.model));
          ("outcomes", Int c.Litmus.outcome_count);
          ("admitted", Bool c.Litmus.admitted);
          ("expected", Bool c.Litmus.expected);
          ("sc_equal", Bool c.Litmus.sc_equal);
          ("ok", Bool (Litmus.cell_ok c));
        ])
  in
  let json_of_verdict (v : Litmus.verdict) =
    Json.(
      Obj
        [
          ("name", Str v.Litmus.test.Litmus.name);
          ("description", Str v.Litmus.test.Litmus.description);
          ("relaxed_outcome", json_of_outcome v.Litmus.test.Litmus.relaxed_outcome);
          ("cells", Arr (List.map json_of_cell v.Litmus.cells));
          ("lattice_ok", Bool v.Litmus.lattice_ok);
          ("ok", Bool v.Litmus.ok);
        ])
  in
  let run () test max_runs report_file =
    let whole_catalog = test = "all" in
    let tests =
      if whole_catalog then Litmus.catalog
      else
        match Litmus.find test with
        | Some t -> [ t ]
        | None ->
          failwith
            (Printf.sprintf "unknown litmus test %S (one of: %s, or all)" test
               (String.concat ", " (List.map (fun t -> t.Litmus.name) Litmus.catalog)))
    in
    let verdicts = List.map (Litmus.check ~max_runs) tests in
    List.iter (fun v -> Format.printf "%a@.@." Litmus.pp_verdict v) verdicts;
    (* Pairwise separation is a property of the catalog, not of one test. *)
    let distinguishes = whole_catalog && Litmus.distinguishes_all_models verdicts in
    let ok = Litmus.all_ok verdicts && ((not whole_catalog) || distinguishes) in
    if whole_catalog then
      Format.printf "models pairwise distinguished: %b@." distinguishes;
    Format.printf "litmus: %d test%s x %d models -> %s@." (List.length verdicts)
      (if List.length verdicts = 1 then "" else "s")
      (List.length Memory_model.all)
      (if ok then "PASS" else "MISMATCH");
    Option.iter
      (fun path ->
        let json =
          Json.(
            Obj
              [
                ("tests", Arr (List.map json_of_verdict verdicts));
                ("distinguishes_all_models", Bool distinguishes);
                ("ok", Bool ok);
              ])
        in
        let oc = open_out path in
        output_string oc (Json.to_string ~pretty:true json);
        output_string oc "\n";
        close_out oc;
        Format.printf "report written to %s@." path)
      report_file;
    if ok then 0 else 3
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Run the memory-model litmus suite: enumerate each test's exact outcome set under \
          SC, TSO and PSO by exhaustive DPOR (flushes in the decision alphabet) and compare \
          against the expected admissibility of its relaxed outcome — SB must separate SC \
          from TSO/PSO, MP must separate TSO from PSO, fenced variants must restore SC \
          (exit 3 on any mismatch).")
    Term.(const run $ logging $ test_arg $ max_runs_arg $ report_arg)

(* ---- serve / request: the experiment service layer (lib/service) ---- *)

(* Service addresses parse through Transport.of_string: a bare path is a
   Unix-domain socket, HOST:PORT (or tcp:HOST:PORT) is TCP.  [--socket]/[-s]
   stay as aliases so pre-TCP invocations keep working. *)
let transport_of_string_exn s =
  match Lb_service.Transport.of_string s with
  | Ok t -> t
  | Error msg ->
    Format.eprintf "bad address %S: %s@." s msg;
    exit 2

let listen_arg =
  Arg.(
    value
    & opt string "lowerbound.sock"
    & info [ "listen"; "socket"; "s" ] ~docv:"ADDR"
        ~doc:
          "Address to serve on: a Unix-domain socket path, or $(i,HOST):$(i,PORT) (equally \
           $(b,tcp:)$(i,HOST):$(i,PORT)) for TCP.  TCP port 0 asks the kernel for a free \
           port (printed in the startup line).")

let connect_arg =
  Arg.(
    value
    & opt string "lowerbound.sock"
    & info [ "connect"; "socket"; "s" ] ~docv:"ADDR"
        ~doc:
          "Server address: a Unix-domain socket path, or $(i,HOST):$(i,PORT) (equally \
           $(b,tcp:)$(i,HOST):$(i,PORT)) for TCP.")

let serve_cmd =
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Append-only JSONL result-cache journal: reloaded at startup (corrupt lines \
             skipped), appended on every store — identical requests are then served without \
             recomputation across server restarts.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "capacity" ] ~docv:"K" ~doc:"In-memory LRU capacity (entries).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-request computation deadline (enforced via SIGALRM when the executor is \
             sequential, i.e. $(b,--jobs 1); advisory at higher job counts).")
  in
  let max_requests_arg =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"K"
          ~doc:"Stop after answering $(docv) requests (0 = serve until shutdown).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Stream the structured event trace of every computation the server performs to \
             $(docv) as JSONL.")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "silent" ] ~doc:"Suppress per-batch progress lines.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 0
      & info [ "max-queue" ] ~docv:"K"
          ~doc:
            "Admission bound: batches deeper than $(docv) are refused with typed \
             \"overload\" responses the retrying client backs off on (0 = unbounded).")
  in
  let fsync_flag =
    Arg.(
      value & flag
      & info [ "fsync" ]
          ~doc:
            "fsync the cache journal at every batch boundary, making acknowledged results \
             machine-crash durable (default: flush to the OS only).")
  in
  let supervise_flag =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run under the crash supervisor: a server crash is recovered by reloading the \
             cache journal, compacting it, and binding a fresh generation.")
  in
  let chaos_plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"PLAN"
          ~doc:
            "Inject a named chaos plan (joined with '+') into replies and journal appends — \
             see `lowerbound chaos --list-plans`.  For drills and tests, not production.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"SEED" ~doc:"Seed for the $(b,--chaos) engine.")
  in
  let run () address cache capacity timeout max_requests trace quiet jobs max_queue fsync
      supervise chaos_plan chaos_seed =
    let transport = transport_of_string_exn address in
    let jobs = resolve_jobs jobs in
    let chaos =
      Option.map
        (fun name ->
          match Lb_service.Chaos.of_name name with
          | Some plan -> Lb_service.Chaos.instantiate ~seed:chaos_seed plan
          | None ->
            Format.eprintf "unknown chaos plan %S (one of: %s, joined with '+')@." name
              (String.concat ", " Lb_service.Chaos.plan_names);
            exit 2)
        chaos_plan
    in
    let max_queue = if max_queue > 0 then Some max_queue else None in
    let first_boot = ref true in
    let executor_of () =
      let c = Lb_service.Cache.create ~capacity ?path:cache ~fsync ?chaos () in
      if
        !first_boot
        && (Lb_service.Cache.loaded c > 0 || Lb_service.Cache.corrupt c > 0)
      then
        Format.printf "(cache: reloaded %d entries, skipped %d corrupt lines)@."
          (Lb_service.Cache.loaded c) (Lb_service.Cache.corrupt c);
      if not !first_boot then Lb_service.Cache.compact c;
      first_boot := false;
      Lb_service.Executor.create ~jobs ?timeout_s:timeout ~cache:c
        ~compute:Lb_service.Catalog.compute ()
    in
    let max_requests = if max_requests > 0 then Some max_requests else None in
    let log = if quiet then fun _ -> () else fun line -> Format.printf "%s@." line in
    let serve () =
      if supervise then
        let s =
          Lb_service.Server.supervise ~transport ~executor_of ?max_requests ?chaos
            ?max_queue ~log ()
        in
        (s.Lb_service.Server.last, s.Lb_service.Server.recoveries)
      else
        ( Lb_service.Server.serve ~transport ~executor:(executor_of ()) ?max_requests
            ?chaos ?max_queue ~log (),
          0 )
    in
    let stats, recoveries =
      match trace with
      | None -> serve ()
      | Some path ->
        let oc = open_out path in
        let tracer = Tracer.on_channel oc in
        let stats = Tracer.with_tracer tracer serve in
        Tracer.flush tracer;
        close_out oc;
        stats
    in
    Format.printf "served %d request(s) in %d batch(es) over %d connection(s)%s@."
      stats.Lb_service.Server.served stats.Lb_service.Server.batches
      stats.Lb_service.Server.clients
      (if recoveries > 0 then Printf.sprintf ", recovered from %d crash(es)" recoveries
       else "");
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the experiment service: a batching line-JSON request server over a Unix-domain \
          socket or TCP ($(b,--listen)) with a content-keyed result cache — concurrently \
          queued requests coalesce into one batch, identical in-flight requests compute \
          once, and cached requests never recompute.  $(b,--supervise), $(b,--max-queue) \
          and $(b,--fsync) arm the robustness layer (docs/ROBUSTNESS.md).")
    Term.(
      const run $ logging $ listen_arg $ cache_arg $ capacity_arg $ timeout_arg
      $ max_requests_arg $ trace_arg $ quiet_flag $ jobs_arg $ max_queue_arg $ fsync_flag
      $ supervise_flag $ chaos_plan_arg $ chaos_seed_arg)

let request_cmd =
  let specs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SPEC"
          ~doc:
            "Experiment ids to request (e1 .. e14), each served from the cache when \
             possible.")
  in
  let quick_flag =
    Arg.(value & flag & info [ "quick" ] ~doc:"Request the reduced-size sweeps.")
  in
  let certify_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "certify" ] ~docv:"TARGET"
          ~doc:"Also request one certification run of $(docv) (see `lowerbound faults`).")
  in
  let plan_arg =
    Arg.(
      value & opt string "crash-stop"
      & info [ "plan" ] ~docv:"PLAN" ~doc:"Fault plan for $(b,--certify).")
  in
  let ops_arg =
    Arg.(
      value & opt int 1
      & info [ "ops" ] ~docv:"K" ~doc:"Operations per process for $(b,--certify).")
  in
  let conform_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "conform" ] ~docv:"TARGET"
          ~doc:"Also request one conformance fuzz cell of $(docv) (see `lowerbound conform`).")
  in
  let otype_arg =
    Arg.(
      value & opt string "fetch-inc"
      & info [ "otype" ] ~docv:"TYPE" ~doc:"Object type for $(b,--conform).")
  in
  let schedules_arg =
    Arg.(
      value & opt int 200
      & info [ "schedules" ] ~docv:"S" ~doc:"Random schedules for $(b,--conform).")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Fetch the server's metrics registry snapshot (the service.* family included).")
  in
  let ping_flag = Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip a ping.") in
  let shutdown_flag =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to shut down gracefully.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 600.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Client-side response deadline.")
  in
  let raw_flag =
    Arg.(
      value & flag
      & info [ "raw" ] ~doc:"Print raw response JSON lines instead of the summary rendering.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Total attempts per call (default 1 = no retry).  With $(docv) > 1 the whole \
             batch is resent under exponential backoff on any failure or overload refusal — \
             safe because request keys are content hashes, so resends are cache hits.")
  in
  let run () address specs quick certify conform otype schedules plan ops n seed metrics
      ping shutdown timeout raw retries jobs =
    let transport = transport_of_string_exn address in
    let requests =
      List.map
        (fun id -> Lb_service.Request.with_jobs (Lb_service.Request.experiment ~quick id) jobs)
        specs
      @ (match certify with
        | None -> []
        | Some target ->
          [
            Lb_service.Request.with_jobs
              (Lb_service.Request.certify ~n ~ops ~seed ~target ~plan ())
              jobs;
          ])
      @
      match conform with
      | None -> []
      | Some target ->
        [
          Lb_service.Request.with_jobs
            (Lb_service.Request.conform ~otype ~plan:"none" ~n:4 ~ops:4 ~schedules ~seed
               ~target ())
            jobs;
        ]
    in
    let control =
      (if ping then [ Json.Obj [ ("op", Json.Str "ping") ] ] else [])
      @ (if metrics then [ Json.Obj [ ("op", Json.Str "metrics") ] ] else [])
      @ if shutdown then [ Json.Obj [ ("op", Json.Str "shutdown") ] ] else []
    in
    let lines = List.map Lb_service.Request.to_json requests @ control in
    if lines = [] then begin
      Format.printf "nothing to send (give experiment ids, --certify, --metrics, --ping or \
                     --shutdown)@.";
      2
    end
    else
      let call lines =
        if retries > 1 then
          Lb_service.Client.call_retry ~transport ~timeout_s:timeout
            ~retry:{ Lb_service.Client.default_retry with Lb_service.Client.attempts = retries }
            lines
        else Lb_service.Client.call ~transport ~timeout_s:timeout lines
      in
      match call lines with
      | Error e ->
        Format.printf "request failed: %s@." (Lb_service.Client.error_message e);
        1
      | Ok responses ->
        let ok = ref true in
        List.iter
          (fun response ->
            if raw then Format.printf "%s@." (Json.to_string response)
            else begin
              let str name =
                Option.value ~default:"?"
                  (Option.bind (Json.member name response) Json.to_str_opt)
              in
              let flag name =
                Option.value ~default:false
                  (Option.bind (Json.member name response) Json.to_bool_opt)
              in
              match str "status" with
              | "ok" when Json.member "op" response <> None -> (
                match Json.member "data" response with
                | Some data -> Format.printf "%s@." (Json.to_string ~pretty:true data)
                | None -> Format.printf "ok: %s@." (str "op"))
              | "ok" ->
                let served =
                  if flag "cached" then "cache hit"
                  else if flag "deduped" then "deduped in-flight"
                  else "computed"
                in
                let elapsed =
                  Option.value ~default:0.0
                    (Option.bind (Json.member "elapsed_s" response) Json.to_float_opt)
                in
                Format.printf "ok (%s, %.3fs, key %s)@." served elapsed (str "key");
                (match Json.member "data" response with
                | Some data ->
                  Format.printf "%s@." (Json.to_string ~pretty:true data);
                  (match Option.bind (Json.member "pass" data) Json.to_bool_opt with
                  | Some false -> ok := false
                  | _ -> ())
                | None -> ())
              | "timeout" ->
                ok := false;
                Format.printf "TIMEOUT (key %s)@." (str "key")
              | "overload" ->
                ok := false;
                Format.printf "OVERLOADED (key %s) — retry later or raise --retries@."
                  (str "key")
              | _ ->
                ok := false;
                Format.printf "ERROR: %s@." (str "error")
            end)
          responses;
        if !ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send a batch of requests to a running `lowerbound serve` (or a `lowerbound shard` \
          router) over its Unix socket or TCP address ($(b,--connect)) and print the \
          responses (exit 1 on any error, timeout or failing table).")
    Term.(
      const run $ logging $ connect_arg $ specs_arg $ quick_flag $ certify_arg $ conform_arg
      $ otype_arg $ schedules_arg $ plan_arg $ ops_arg $ n_arg $ seed_arg $ metrics_flag
      $ ping_flag $ shutdown_flag $ timeout_arg $ raw_flag $ retries_arg $ jobs_arg)

let chaos_cmd =
  let drills_arg =
    Arg.(
      value & opt string "all"
      & info [ "drills" ] ~docv:"NAMES"
          ~doc:"Comma-separated drill names, or $(b,all) (see $(b,--list)).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the drill reports to $(docv) as a JSON array.")
  in
  let retry_attempts_arg =
    Arg.(
      value & opt int 8
      & info [ "retry-attempts" ] ~docv:"K"
          ~doc:
            "Client retry budget per drill request.  A negative-control knob: at 1 the \
             drop-connection drill must fail.")
  in
  let no_supervise_flag =
    Arg.(
      value & flag
      & info [ "no-supervise" ]
          ~doc:
            "Run the drills without the crash supervisor.  A negative-control knob: the \
             crash drills must fail.")
  in
  let no_bench_flag =
    Arg.(
      value & flag
      & info [ "no-bench" ] ~doc:"Skip appending the drill stats to BENCH_service.json.")
  in
  let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List drill names and exit.") in
  let list_plans_flag =
    Arg.(value & flag & info [ "list-plans" ] ~doc:"List named chaos plans and exit.")
  in
  let tcp_flag =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:
            "Run the drills over an ephemeral loopback TCP port instead of a Unix socket — \
             the robustness invariants are transport-independent and must hold on both.")
  in
  let run () seed drills report retry_attempts no_supervise no_bench list list_plans tcp =
    if list then begin
      List.iter (fun n -> Format.printf "%s@." n) Lb_service.Drill.names;
      0
    end
    else if list_plans then begin
      List.iter (fun n -> Format.printf "%s@." n) Lb_service.Chaos.plan_names;
      0
    end
    else begin
      let wanted =
        if drills = "all" then Lb_service.Drill.names
        else
          String.split_on_char ',' drills |> List.map String.trim
          |> List.filter (fun s -> s <> "")
      in
      match List.find_opt (fun n -> not (List.mem n Lb_service.Drill.names)) wanted with
      | Some unknown ->
        Format.eprintf "unknown drill %S (one of: %s)@." unknown
          (String.concat ", " Lb_service.Drill.names);
        2
      | None ->
        let reports =
          List.map
            (fun name ->
              match
                Lb_service.Drill.run ~seed ~retry_attempts ~supervise:(not no_supervise)
                  ~transport:(if tcp then `Tcp else `Unix)
                  name
              with
              | Ok r ->
                Format.printf "%a@." Lb_service.Drill.pp_report r;
                r
              | Error msg ->
                (* Unreachable: names were validated above. *)
                Format.eprintf "%s@." msg;
                exit 2)
            wanted
        in
        let report_json =
          Json.Arr (List.map Lb_service.Drill.report_json reports)
        in
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Json.to_string ~pretty:true report_json);
            output_char oc '\n';
            close_out oc;
            Format.printf "report written to %s@." path)
          report;
        let failed = List.filter (fun r -> not r.Lb_service.Drill.passed) reports in
        if not no_bench then begin
          let path =
            Bench_out.append ~suite:"service"
              ~meta:
                [
                  ("kind", Json.Str "chaos-drills");
                  ("seed", Json.Int seed);
                  ("transport", Json.Str (if tcp then "tcp" else "unix"));
                ]
              (Json.Obj
                 [
                   ("drills", report_json);
                   ("passed", Json.Int (List.length reports - List.length failed));
                   ("total", Json.Int (List.length reports));
                 ])
          in
          Format.printf "drill stats appended to %s@." path
        end;
        Format.printf "%d/%d drills passed@."
          (List.length reports - List.length failed)
          (List.length reports);
        if failed = [] then 0 else 3
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the seeded chaos drills: each boots a supervised server with one injected \
          failure mode (short writes, dropped/garbled/delayed replies, crashes mid-batch, \
          torn journal appends, overload floods) and asserts the robustness invariants — \
          every request terminates, no acknowledged result is lost, the recovered cache is \
          byte-identical to a clean run (exit 3 on any failing drill).")
    Term.(
      const run $ logging $ seed_arg $ drills_arg $ report_arg $ retry_attempts_arg
      $ no_supervise_flag $ no_bench_flag $ list_flag $ list_plans_flag $ tcp_flag)

let shard_cmd =
  let shards_arg =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N"
          ~doc:"Worker count: shard $(i,i) of $(docv) owns the keys with content hash mod \
                $(docv) = $(i,i).")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Give each worker a persistent cache journal at $(docv)/shard-$(i,i).jsonl \
             (created if missing); without it workers cache in memory only.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "capacity" ] ~docv:"K" ~doc:"Per-worker in-memory LRU capacity (entries).")
  in
  let max_requests_arg =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"K"
          ~doc:
            "Stop the fleet after forwarding $(docv) requests (0 = route until shutdown).")
  in
  let status_flag =
    Arg.(
      value & flag
      & info [ "status" ]
          ~doc:
            "Instead of launching: send the router-only $(b,{\"op\": \"shards\"}) probe to a \
             running router at the given address and print the fleet topology (per-worker \
             address, connectivity, forwarded counts, live metrics).")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "silent" ] ~doc:"Suppress router progress lines.")
  in
  let run () address shards cache_dir capacity jobs max_requests status quiet =
    let transport = transport_of_string_exn address in
    if status then begin
      match
        Lb_service.Client.call ~transport ~timeout_s:10.0
          [ Json.Obj [ ("op", Json.Str "shards") ] ]
      with
      | Error e ->
        Format.printf "status failed: %s@." (Lb_service.Client.error_message e);
        1
      | Ok responses ->
        List.iter
          (fun r -> Format.printf "%s@." (Json.to_string ~pretty:true r))
          responses;
        0
    end
    else begin
      if shards < 1 then begin
        Format.eprintf "--shards must be >= 1@.";
        exit 2
      end;
      (* Workers are OS processes: there is no channel to learn a
         kernel-assigned port back from a child, so a TCP fleet needs an
         explicit router port (workers then take port+1+i). *)
      (match transport with
      | Lb_service.Transport.Tcp { port = 0; _ } ->
        Format.eprintf
          "a TCP shard fleet needs an explicit router port (workers listen on port+1+i)@.";
        exit 2
      | _ -> ());
      Option.iter
        (fun dir ->
          try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
        cache_dir;
      let jobs = resolve_jobs jobs in
      let workers =
        List.init shards (fun i -> Lb_service.Shard.worker_transport ~base:transport i)
      in
      let exe = Sys.executable_name in
      let pids =
        List.mapi
          (fun i wt ->
            let argv =
              [ exe; "serve"; "--listen"; Lb_service.Transport.to_string wt;
                "--capacity"; string_of_int capacity; "--jobs"; string_of_int jobs;
                "--supervise"; "--silent" ]
              @ (match cache_dir with
                | None -> []
                | Some dir ->
                  [ "--cache"; Filename.concat dir (Printf.sprintf "shard-%d.jsonl" i) ])
            in
            Unix.create_process exe (Array.of_list argv) Unix.stdin Unix.stdout Unix.stderr)
          workers
      in
      let reap () = List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids in
      if
        not
          (List.for_all
             (fun wt -> Lb_service.Client.wait_ready ~transport:wt ())
             workers)
      then begin
        Format.eprintf "a shard worker never came up@.";
        List.iter
          (fun wt ->
            ignore
              (Lb_service.Client.call ~transport:wt ~timeout_s:2.0
                 [ Json.Obj [ ("op", Json.Str "shutdown") ] ]))
          workers;
        reap ();
        1
      end
      else begin
        let log = if quiet then fun _ -> () else fun line -> Format.printf "%s@." line in
        let max_requests = if max_requests > 0 then Some max_requests else None in
        let ready t =
          if not quiet then
            Format.printf "router on %s over %d shard(s)@."
              (Lb_service.Transport.to_string t) shards
        in
        let stats =
          Lb_service.Router.route ~transport ~workers ?max_requests ~ready ~log ()
        in
        (* Belt and braces: route shuts workers down on shutdown/max-requests,
           but a signal stop leaves them serving — tell them again, then reap. *)
        List.iter
          (fun wt ->
            ignore
              (Lb_service.Client.call ~transport:wt ~timeout_s:2.0
                 [ Json.Obj [ ("op", Json.Str "shutdown") ] ]))
          workers;
        reap ();
        Format.printf
          "router: forwarded %d request(s) in %d batch(es) over %d connection(s), %d \
           reconnect(s)@."
          stats.Lb_service.Router.forwarded stats.Lb_service.Router.batches
          stats.Lb_service.Router.clients stats.Lb_service.Router.reconnects;
        0
      end
    end
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run an N-process sharded deployment: N supervised `lowerbound serve` workers (one \
          OS process each, own cache journal) behind a router that owns the public address \
          and forwards every request to the worker owning its content-hash slice (hash mod \
          N).  Clients cannot tell a router from a single server.  $(b,--status) inspects a \
          running fleet.  See docs/SCALING.md.")
    Term.(
      const run $ logging $ listen_arg $ shards_arg $ cache_dir_arg $ capacity_arg
      $ jobs_arg $ max_requests_arg $ status_flag $ quiet_flag)

let loadgen_cmd =
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Measure an already-running server or router at $(docv) instead of spawning \
             fleets (label the run with $(b,--shards)).")
  in
  let shards_label_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "With $(b,--connect): the worker count behind the address — only labels the \
             bench rows (loadgen/$(docv)shard/...).")
  in
  let spawn_arg =
    Arg.(
      value & opt string "1,3"
      & info [ "spawn-shards" ] ~docv:"LIST"
          ~doc:
            "Comma-separated shard counts: for each, spawn an in-process fleet (workers + \
             router, fresh caches), measure it, and tear it down — the default `1,3` \
             records the scaling pair docs/SCALING.md reads.  Ignored with $(b,--connect).")
  in
  let tcp_flag =
    Arg.(
      value & flag
      & info [ "tcp" ]
          ~doc:"Spawn fleets on ephemeral loopback TCP ports instead of Unix sockets.")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"C" ~doc:"Concurrent closed-loop clients.")
  in
  let requests_arg =
    Arg.(
      value & opt int 100
      & info [ "requests" ] ~docv:"K" ~doc:"Measured requests per client.")
  in
  let warmup_arg =
    Arg.(
      value & opt int 10
      & info [ "warmup" ] ~docv:"K"
          ~doc:"Leading requests per client excluded from the statistics.")
  in
  let hit_ratio_arg =
    Arg.(
      value & opt float 0.5
      & info [ "hit-ratio" ] ~docv:"P"
          ~doc:
            "Probability in [0,1] that a request draws a shared hot tag (a cache hit once \
             warm) rather than a unique tag (a guaranteed miss costing $(b,--work)).")
  in
  let hot_tags_arg =
    Arg.(value & opt int 16 & info [ "hot-tags" ] ~docv:"K" ~doc:"Size of the hot-tag pool.")
  in
  let size_arg =
    Arg.(value & opt int 256 & info [ "size" ] ~docv:"BYTES" ~doc:"Echo payload fill size.")
  in
  let work_arg =
    Arg.(
      value & opt int 2000
      & info [ "work" ] ~docv:"K"
          ~doc:"Digest-chain rounds per cache miss — the knob that makes misses \
                compute-bound.")
  in
  let experiments_flag =
    Arg.(
      value & flag
      & info [ "experiments" ] ~doc:"Mix ~2% quick experiment requests into the schedule.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "capacity" ] ~docv:"K" ~doc:"Per-worker LRU capacity for spawned fleets.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-reply client deadline.")
  in
  let no_bench_flag =
    Arg.(
      value & flag
      & info [ "no-bench" ] ~doc:"Skip appending the results to BENCH_service.json.")
  in
  let run () connect shards_label spawn tcp clients requests warmup hit_ratio hot_tags size
      work experiments seed timeout capacity no_bench =
    let cfg =
      {
        Lb_service.Loadgen.clients;
        requests_per_client = requests;
        warmup;
        hit_ratio;
        hot_tags;
        size;
        work;
        experiments;
        seed;
        timeout_s = timeout;
      }
    in
    (try ignore (Lb_service.Loadgen.schedule cfg ~client:0)
     with Invalid_argument msg ->
       Format.eprintf "%s@." msg;
       exit 2);
    let results =
      match connect with
      | Some address ->
        let transport = transport_of_string_exn address in
        [ Lb_service.Loadgen.run ~transport ~shards:shards_label cfg ]
      | None ->
        let counts =
          String.split_on_char ',' spawn |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s ->
                 match int_of_string_opt s with
                 | Some n when n >= 1 -> n
                 | _ ->
                   Format.eprintf "bad --spawn-shards entry %S@." s;
                   exit 2)
        in
        if counts = [] then begin
          Format.eprintf "--spawn-shards is empty@.";
          exit 2
        end;
        List.map
          (fun n ->
            let base =
              if tcp then Lb_service.Transport.Tcp { host = "127.0.0.1"; port = 0 }
              else
                Lb_service.Transport.Unix_socket
                  (Filename.concat (Filename.get_temp_dir_name ())
                     (Printf.sprintf "lb-loadgen-%d-%d.sock" (Unix.getpid ()) n))
            in
            let executor_of _shard =
              Lb_service.Executor.create ~jobs:1
                ~cache:(Lb_service.Cache.create ~capacity ())
                ~compute:Lb_service.Catalog.compute ()
            in
            let fleet =
              Lb_service.Router.launch_fleet ~shards:n ~transport:base ~executor_of
                ~log:(fun _ -> ())
                ()
            in
            Fun.protect
              ~finally:(fun () -> ignore (fleet.Lb_service.Router.stop ()))
              (fun () ->
                Format.printf "measuring %d shard(s) at %s ...@." n
                  (Lb_service.Transport.to_string fleet.Lb_service.Router.address);
                Lb_service.Loadgen.run ~transport:fleet.Lb_service.Router.address
                  ~shards:n cfg))
          counts
    in
    List.iter (fun r -> Format.printf "%a@." Lb_service.Loadgen.pp_result r) results;
    if not no_bench then begin
      let rows r =
        match Lb_service.Loadgen.bench_payload r with
        | Json.Obj fields -> (
          match List.assoc_opt "benchmarks" fields with
          | Some (Json.Arr rows) -> rows
          | _ -> [])
        | _ -> []
      in
      let payload =
        Json.Obj
          [
            ("benchmarks", Json.Arr (List.concat_map rows results));
            ("loadgen", Json.Arr (List.map Lb_service.Loadgen.result_json results));
          ]
      in
      let path =
        Bench_out.append ~suite:"service"
          ~meta:[ ("kind", Json.Str "loadgen"); ("seed", Json.Int seed) ]
          payload
      in
      Format.printf "loadgen rows appended to %s@." path
    end;
    if List.for_all (fun r -> r.Lb_service.Loadgen.errors = 0) results then 0 else 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Run the seeded closed-loop load generator: C concurrent clients drive a \
          deterministic hit/miss request schedule at a server or shard router, recording \
          throughput and p50/p99/p999 latency into BENCH_service.json as \
          loadgen/<N>shard/* rows the bench gate can baseline.  By default spawns \
          in-process 1-shard and 3-shard fleets to record the scaling pair; \
          $(b,--connect) measures a deployment you already started.  See docs/SCALING.md \
          for methodology and how to read the rows.")
    Term.(
      const run $ logging $ connect_arg $ shards_label_arg $ spawn_arg $ tcp_flag
      $ clients_arg $ requests_arg $ warmup_arg $ hit_ratio_arg $ hot_tags_arg $ size_arg
      $ work_arg $ experiments_flag $ seed_arg $ timeout_arg $ capacity_arg
      $ no_bench_flag)

let main_cmd =
  let doc =
    "Executable reproduction of Jayanti's PODC 1998 \\(Omega\\)(log n) lower bound for \
     randomized implementations of shared objects from LL/SC/validate/move/swap."
  in
  Cmd.group
    (Cmd.info "lowerbound" ~version:"1.0.0" ~doc)
    [
      exp_cmd; corpus_cmd; analyze_cmd; trace_cmd; sweep_cmd; explore_cmd; litmus_cmd;
      profile_cmd; upsets_cmd; faults_cmd; conform_cmd; hw_cmd; serve_cmd; request_cmd;
      chaos_cmd; shard_cmd; loadgen_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
