# Convenience targets; everything here is also runnable as plain dune
# commands (see README.md).

.PHONY: all test bench coverage clean

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- quick

# Coverage is opt-in: the instrumented build lives in its own workspace
# (dune-workspace.coverage) so regular builds never pay for it, and the
# target refuses to run unless COVERAGE=1 makes the intent explicit.
# Requires `opam install bisect_ppx`.
coverage:
ifeq ($(COVERAGE),1)
	find . -name 'bisect*.coverage' -delete
	dune runtest --force --workspace dune-workspace.coverage \
	  --instrument-with bisect_ppx
	bisect-ppx-report summary
else
	@echo "coverage is gated: run 'COVERAGE=1 make coverage'"; exit 1
endif

clean:
	dune clean
	find . -name 'bisect*.coverage' -delete
