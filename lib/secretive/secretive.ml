let build spec =
  let state = Source_movers.start spec in
  let scheduled = Hashtbl.create 16 in
  (* Unscheduled processes grouped by destination register. *)
  let by_dest = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let _, dst = Move_spec.op_of spec p in
      let group = Option.value ~default:[] (Hashtbl.find_opt by_dest dst) in
      Hashtbl.replace by_dest dst (p :: group))
    (Move_spec.procs spec);
  let schedule p =
    Source_movers.append state p;
    Hashtbl.replace scheduled p ()
  in
  (* Stage 1: one pass in id order; freshness is monotone so no revisiting is
     needed. *)
  List.iter
    (fun p ->
      if not (Hashtbl.mem scheduled p) then begin
        let src, dst = Move_spec.op_of spec p in
        if Source_movers.movers_len state src = 0 then begin
          let group = Option.value ~default:[] (Hashtbl.find_opt by_dest dst) in
          let others =
            group
            |> List.filter (fun q -> q <> p && not (Hashtbl.mem scheduled q))
            |> List.sort Int.compare
          in
          List.iter schedule others;
          schedule p;
          Hashtbl.remove by_dest dst
        end
      end)
    (Move_spec.procs spec);
  (* Stage 2: the leftovers, in id order. *)
  List.iter
    (fun p -> if not (Hashtbl.mem scheduled p) then schedule p)
    (Move_spec.procs spec);
  Source_movers.scheduled state

let build_checked spec =
  let sigma = build spec in
  assert (Source_movers.is_secretive spec sigma);
  sigma
