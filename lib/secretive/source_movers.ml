type t = {
  spec : Move_spec.t;
  (* Only registers whose (source, movers) differ from the default (r, [])
     appear in the table.  Movers chains are stored newest-first. *)
  state : (int, int * int list) Hashtbl.t;
  mutable order : int list; (* scheduled processes, newest first *)
  mutable seen : (int, unit) Hashtbl.t;
}

let start spec = { spec; state = Hashtbl.create 16; order = []; seen = Hashtbl.create 16 }

let lookup t r = Option.value ~default:(r, []) (Hashtbl.find_opt t.state r)

let append t p =
  if Hashtbl.mem t.seen p then
    invalid_arg (Printf.sprintf "Source_movers.append: p%d already scheduled" p);
  let src, dst =
    match Move_spec.op_of t.spec p with
    | op -> op
    | exception Not_found ->
      invalid_arg (Printf.sprintf "Source_movers.append: p%d not in move spec" p)
  in
  let src_source, src_movers = lookup t src in
  Hashtbl.replace t.state dst (src_source, p :: src_movers);
  Hashtbl.replace t.seen p ();
  t.order <- p :: t.order

let scheduled t = List.rev t.order
let source t r = fst (lookup t r)
let movers t r = List.rev (snd (lookup t r))
let movers_len t r = List.length (snd (lookup t r))

let max_movers t =
  Hashtbl.fold (fun _ (_, chain) acc -> max acc (List.length chain)) t.state 0

let eval spec sigma =
  let t = start spec in
  List.iter (append t) sigma;
  t

let is_complete spec sigma =
  List.sort Int.compare sigma = Move_spec.procs spec

let is_secretive spec sigma =
  is_complete spec sigma && max_movers (eval spec sigma) <= 2
