type t = (int * (int * int)) list (* sorted by pid, no duplicates *)

let of_list entries =
  List.iter
    (fun (p, (src, dst)) ->
      if src = dst then
        invalid_arg
          (Printf.sprintf "Move_spec.of_list: p%d has self-move R%d->R%d" p src dst))
    entries;
  let sorted = List.sort (fun (p, _) (q, _) -> Int.compare p q) entries in
  let rec check = function
    | (p, _) :: ((q, _) :: _ as rest) ->
      if p = q then invalid_arg (Printf.sprintf "Move_spec.of_list: duplicate process p%d" p)
      else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let empty = []
let procs t = List.map fst t
let size = List.length
let mem t p = List.mem_assoc p t
let op_of t p = List.assoc p t

let uniq_sorted xs = List.sort_uniq Int.compare xs
let sources t = uniq_sorted (List.map (fun (_, (src, _)) -> src) t)
let destinations t = uniq_sorted (List.map (fun (_, (_, dst)) -> dst) t)
let restrict t ~keep = List.filter (fun (p, _) -> keep p) t

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (p, (src, dst)) -> Format.fprintf ppf "p%d: R%d->R%d" p src dst))
    t
