(** Construction of secretive complete schedules (Figure 1 / Lemma 4.1).

    A schedule [σ] is {e complete} w.r.t. a move spec [(S, f)] when every
    process of [S] appears exactly once, and {e secretive} when additionally
    every register's movers chain has length at most two.  Lemma 4.1 states a
    secretive complete schedule always exists; [build] constructs one.

    The construction follows the paper's two stages.  Stage one repeatedly
    picks an unscheduled process [p] whose source register is still {e fresh}
    (no movers), and schedules {e all} unscheduled processes whose destination
    equals [p]'s destination, [p] last — leaving that destination with the
    single mover [p], permanently.  Freshness is monotone (a register with
    movers never loses them), so a single pass in id order implements the
    loop.  Stage two schedules the remaining processes (whose sources are all
    stable single-mover registers) in id order. *)

val build : Move_spec.t -> int list
(** A secretive complete schedule for the spec.  Deterministic: ties are
    broken by process id. *)

val build_checked : Move_spec.t -> int list
(** [build] plus an assertion that the result satisfies
    {!Source_movers.is_secretive} — used by the adversary, where a
    non-secretive schedule would silently break the UP-set accounting. *)
