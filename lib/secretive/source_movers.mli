(** The [source] / [movers] semantics of move schedules (Section 4).

    For a schedule [σ] (a sequence of processes from a move spec [(S, f)],
    each appearing at most once) and a register [R]:
    - [source R σ] is the register whose {e original} value ends up in [R]
      after the moves of [σ] execute in order;
    - [movers R σ] is the chain of processes whose moves, in order, carried
      that value into [R].

    Inductively: [source R λ = R], [movers R λ = []]; appending process [p]
    with [f p = (src, dst)] sets [source dst := source src],
    [movers dst := movers src ++ [p]] (values taken {e before} the append)
    and leaves every other register unchanged. *)

type t
(** Mutable evaluation state for a schedule built left to right. *)

val start : Move_spec.t -> t

val append : t -> int -> unit
(** Append one process of the spec to the schedule.  Raises
    [Invalid_argument] if the process is not in the spec or was already
    scheduled. *)

val scheduled : t -> int list
(** The schedule so far, in order. *)

val source : t -> int -> int
(** [source t r] — defaults to [r] itself for untouched registers. *)

val movers : t -> int -> int list
(** [movers t r] — empty for untouched registers. *)

val movers_len : t -> int -> int

val max_movers : t -> int
(** Maximum movers-chain length over all registers. *)

(** {1 Whole-schedule evaluation} *)

val eval : Move_spec.t -> int list -> t
(** [eval spec σ] replays [σ] from scratch. *)

val is_complete : Move_spec.t -> int list -> bool
(** Every process of the spec appears exactly once. *)

val is_secretive : Move_spec.t -> int list -> bool
(** Complete and every register has at most two movers (the paper's
    definition of a secretive complete schedule). *)
