(** Move specifications — the paper's pairs [(S, f)].

    [S] is the set of processes that each have one pending move operation and
    [f p = (src, dst)] says process [p]'s operation is [move(src, dst)]. *)

type t

val of_list : (int * (int * int)) list -> t
(** [of_list [(p, (src, dst)); ...]].  Raises [Invalid_argument] on duplicate
    process ids or on a self-move ([src = dst]).

    Self-moves are excluded from the model: under the paper's inductive
    [movers] definition a self-move keeps the register's source but appends
    a mover, so three self-moves into one register yield a three-process
    movers chain under {e every} schedule, contradicting Lemma 4.1 — the
    paper's construction implicitly assumes the two registers of a move are
    distinct.  (A self-move is a no-op on the value anyway.) *)

val empty : t
val procs : t -> int list
(** The set [S], sorted by id. *)

val size : t -> int
val mem : t -> int -> bool

val op_of : t -> int -> int * int
(** [(src, dst)] of the given process; raises [Not_found] if absent. *)

val sources : t -> int list
(** Sorted, deduplicated source registers. *)

val destinations : t -> int list
(** Sorted, deduplicated destination registers. *)

val restrict : t -> keep:(int -> bool) -> t
(** Sub-specification keeping only processes satisfying [keep]. *)

val pp : Format.formatter -> t -> unit
