open Lb_observe

type stats = { served : int; batches : int; clients : int }

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received but not yet terminated by '\n'. *)
}

(* Split the complete lines off a client's receive buffer, leaving any
   trailing partial line in place. *)
let drain_lines client =
  let data = Buffer.contents client.buf in
  let lines = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub data !start (i - !start) :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear client.buf;
  Buffer.add_substring client.buf data !start (String.length data - !start);
  List.rev !lines

(* Write the whole string, however many syscalls it takes.  [single_write]
   rather than [write]: the latter loops internally and can report fewer
   bytes than it wrote when interrupted mid-loop, which is unrecoverable —
   with single_write a short count is exactly the unwritten suffix.  [cap]
   (chaos) bounds each chunk, simulating a tiny send buffer. *)
let write_all ?cap fd s =
  let len = String.length s in
  let chunk = match cap with Some c -> max 1 c | None -> len in
  let off = ref 0 in
  while !off < len do
    match Unix.single_write_substring fd s !off (min chunk (len - !off)) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_line fd json =
  let line = Json.to_string json ^ "\n" in
  try write_all fd line
  with Unix.Unix_error _ -> () (* client gone mid-reply: drop, keep serving *)

let error_response msg =
  Json.Obj [ ("status", Json.Str "error"); ("error", Json.Str msg) ]

let rec split_at n = function
  | x :: tl when n > 0 ->
    let a, b = split_at (n - 1) tl in
    (x :: a, b)
  | l -> ([], l)

let serve ~transport ~executor ?max_requests ?chaos ?max_queue ?ready
    ?(log = fun _ -> ()) () =
  Option.iter
    (fun q -> if q < 1 then invalid_arg (Printf.sprintf "Server: max_queue %d < 1" q))
    max_queue;
  let listen_fd, transport = Transport.listen transport in
  Option.iter (fun f -> f transport) ready;
  (* Ignore SIGPIPE (a vanished client must not kill the server) and turn
     SIGINT/SIGTERM into a graceful-stop flag, restoring all three
     afterwards so in-process callers (tests) keep their handlers. *)
  let stop = ref false in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let on_stop = Sys.Signal_handle (fun _ -> stop := true) in
  let old_int = Sys.signal Sys.sigint on_stop in
  let old_term = Sys.signal Sys.sigterm on_stop in
  let clients = ref [] in
  let served = ref 0 and batches = ref 0 and accepted = ref 0 in
  let close_client c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  (* Batch replies go through the chaos engine (control and overload
     replies do not: drills need a reliable side channel, and exempting
     them keeps the engine's reply numbering deterministic).  The journal
     append for a stored result happens inside [Executor.run_batch],
     strictly before the reply is written here — so an {e acknowledged}
     result is always already durable, which is the invariant the crash
     drills assert. *)
  let write_reply c resp =
    let line = Json.to_string (Executor.response_to_json resp) ^ "\n" in
    match chaos with
    | None -> ( try write_all c.fd line with Unix.Unix_error _ -> ())
    | Some engine -> (
      let action = Chaos.on_reply engine line in
      if action.Chaos.delay_s > 0.0 then Unix.sleepf action.Chaos.delay_s;
      (match action.Chaos.data with
      | None -> close_client c
      | Some data -> (
        try write_all ?cap:(Chaos.write_cap engine) c.fd data
        with Unix.Unix_error _ -> ()));
      match action.Chaos.crash_after with
      | Some reason -> raise (Chaos.Server_crash reason)
      | None -> ())
  in
  let handle_line c line queue =
    if String.trim line = "" then queue
    else
      match Json.parse line with
      | Error msg ->
        write_line c.fd (error_response ("bad request line: " ^ msg));
        queue
      | Ok json -> (
        match Option.bind (Json.member "op" json) Json.to_str_opt with
        | Some "ping" ->
          write_line c.fd (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "ping") ]);
          queue
        | Some "metrics" ->
          write_line c.fd
            (Json.Obj
               [
                 ("status", Json.Str "ok");
                 ("op", Json.Str "metrics");
                 ("data", Metrics.to_json (Metrics.current ()));
               ]);
          queue
        | Some "shutdown" ->
          write_line c.fd (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "shutdown") ]);
          stop := true;
          queue
        | Some other ->
          write_line c.fd (error_response (Printf.sprintf "unknown op %S" other));
          queue
        | None -> (
          match Request.of_json json with
          | Ok request -> (c, request) :: queue
          | Error msg ->
            write_line c.fd (error_response msg);
            queue))
  in
  (* Admission control: a batch deeper than [max_queue] would hold every
     caller hostage to the slowest computation, so the excess (latest
     arrivals first dropped) is refused with a typed overload response the
     retrying client backs off on.  Refusals bypass the executor entirely —
     nothing computed, nothing cached, nothing counted as served. *)
  let admit queue =
    match max_queue with
    | Some bound when List.length queue > bound ->
      let admitted, rejected = split_at bound queue in
      let m = Metrics.current () in
      List.iter
        (fun (c, req) ->
          Metrics.incr m "service.overload_rejections";
          Tracer.record (Event.Service { op = "overload"; detail = Request.describe req });
          write_line c.fd (Executor.response_to_json (Executor.overload_response req)))
        rejected;
      log (Printf.sprintf "overload: refused %d of %d queued" (List.length rejected)
             (List.length queue));
      admitted
    | _ -> queue
  in
  log (Printf.sprintf "listening on %s" (Transport.to_string transport));
  (try
     while not !stop do
       let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
       let readable =
         (* The timeout bounds how long a signal waits to be noticed. *)
         match Unix.select fds [] [] 0.25 with
         | readable, _, _ -> readable
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
       in
       (* Accept new connections. *)
       if List.memq listen_fd readable then begin
         match Unix.accept listen_fd with
         | fd, _ ->
           Transport.configure transport fd;
           incr accepted;
           clients := { fd; buf = Buffer.create 256 } :: !clients
         | exception Unix.Unix_error _ -> ()
       end;
       (* Read every ready client; collect the batch.  Requests queue in
          (client, arrival) order so responses can be written back per
          client in the order its requests were sent. *)
       let queue = ref [] in
       List.iter
         (fun c ->
           if List.memq c.fd readable then begin
             let bytes = Bytes.create 65536 in
             match Unix.read c.fd bytes 0 (Bytes.length bytes) with
             | 0 -> close_client c
             | n ->
               Buffer.add_subbytes c.buf bytes 0 n;
               List.iter (fun line -> queue := handle_line c line !queue) (drain_lines c)
             | exception Unix.Unix_error _ -> close_client c
           end)
         !clients;
       let queue = admit (List.rev !queue) in
       if queue <> [] then begin
         incr batches;
         let responses = Executor.run_batch executor (List.map snd queue) in
         Cache.sync (Executor.cache executor);
         List.iter2 (fun (c, _) resp -> write_reply c resp) queue responses;
         served := !served + List.length responses;
         log
           (Printf.sprintf "batch of %d (%d served total, cache %d/%d)" (List.length queue)
              !served
              (Cache.length (Executor.cache executor))
              (Cache.capacity (Executor.cache executor)));
         match max_requests with
         | Some limit when !served >= limit -> stop := true
         | _ -> ()
       end
     done
   with exn ->
     (* Restore the world before propagating: the server must never leak
        its socket file or signal handlers — a {!Chaos.Server_crash} takes
        this path too, on its way to the supervisor. *)
     List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Transport.cleanup transport;
     Sys.set_signal Sys.sigpipe old_pipe;
     Sys.set_signal Sys.sigint old_int;
     Sys.set_signal Sys.sigterm old_term;
     raise exn);
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Transport.cleanup transport;
  Cache.close (Executor.cache executor);
  Sys.set_signal Sys.sigpipe old_pipe;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  log (Printf.sprintf "shutdown after %d requests in %d batches" !served !batches);
  { served = !served; batches = !batches; clients = !accepted }

type supervised = { last : stats; recoveries : int }

let supervise ~transport ~executor_of ?max_requests ?(max_restarts = 100) ?chaos ?max_queue
    ?ready ?(log = fun _ -> ()) () =
  if max_restarts < 0 then invalid_arg "Server.supervise: max_restarts < 0";
  let recoveries = ref 0 in
  (* Pin the address the first generation resolved (a TCP port 0 becomes a
     concrete port), so every restarted generation rebinds the {e same}
     endpoint and clients keep a stable address across crashes. *)
  let bound = ref transport in
  let ready t =
    bound := t;
    Option.iter (fun f -> f t) ready
  in
  let rec generation () =
    let executor = executor_of () in
    match serve ~transport:!bound ~executor ?max_requests ?chaos ?max_queue ~ready ~log () with
    | stats -> { last = stats; recoveries = !recoveries }
    | exception Chaos.Server_crash reason ->
      (* [serve]'s cleanup already ran (fds closed, socket unlinked,
         handlers restored) but the crashed generation's journal channel is
         still open — close it before the next generation reopens the
         file. *)
      Cache.close (Executor.cache executor);
      if !recoveries >= max_restarts then
        failwith
          (Printf.sprintf "Server.supervise: gave up after %d restarts (last crash: %s)"
             max_restarts reason);
      incr recoveries;
      Metrics.incr (Metrics.current ()) "service.recoveries";
      Tracer.record (Event.Service { op = "recovery"; detail = reason });
      log (Printf.sprintf "crash (%s); recovering, restart #%d" reason !recoveries);
      generation ()
  in
  generation ()
