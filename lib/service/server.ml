open Lb_observe

type stats = { served : int; batches : int; clients : int }

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received but not yet terminated by '\n'. *)
}

(* Split the complete lines off a client's receive buffer, leaving any
   trailing partial line in place. *)
let drain_lines client =
  let data = Buffer.contents client.buf in
  let lines = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub data !start (i - !start) :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear client.buf;
  Buffer.add_substring client.buf data !start (String.length data - !start);
  List.rev !lines

let write_line fd json =
  let line = Json.to_string json ^ "\n" in
  try ignore (Unix.write_substring fd line 0 (String.length line))
  with Unix.Unix_error _ -> () (* client gone mid-reply: drop, keep serving *)

let error_response msg =
  Json.Obj [ ("status", Json.Str "error"); ("error", Json.Str msg) ]

let serve ~socket ~executor ?max_requests ?(log = fun _ -> ()) () =
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  if Sys.file_exists socket then Unix.unlink socket;
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  (* Ignore SIGPIPE (a vanished client must not kill the server) and turn
     SIGINT/SIGTERM into a graceful-stop flag, restoring all three
     afterwards so in-process callers (tests) keep their handlers. *)
  let stop = ref false in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let on_stop = Sys.Signal_handle (fun _ -> stop := true) in
  let old_int = Sys.signal Sys.sigint on_stop in
  let old_term = Sys.signal Sys.sigterm on_stop in
  let clients = ref [] in
  let served = ref 0 and batches = ref 0 and accepted = ref 0 in
  let close_client c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_line c line queue =
    if String.trim line = "" then queue
    else
      match Json.parse line with
      | Error msg ->
        write_line c.fd (error_response ("bad request line: " ^ msg));
        queue
      | Ok json -> (
        match Option.bind (Json.member "op" json) Json.to_str_opt with
        | Some "ping" ->
          write_line c.fd (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "ping") ]);
          queue
        | Some "metrics" ->
          write_line c.fd
            (Json.Obj
               [
                 ("status", Json.Str "ok");
                 ("op", Json.Str "metrics");
                 ("data", Metrics.to_json (Metrics.current ()));
               ]);
          queue
        | Some "shutdown" ->
          write_line c.fd (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "shutdown") ]);
          stop := true;
          queue
        | Some other ->
          write_line c.fd (error_response (Printf.sprintf "unknown op %S" other));
          queue
        | None -> (
          match Request.of_json json with
          | Ok request -> (c, request) :: queue
          | Error msg ->
            write_line c.fd (error_response msg);
            queue))
  in
  log (Printf.sprintf "listening on %s" socket);
  (try
     while not !stop do
       let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
       let readable =
         (* The timeout bounds how long a signal waits to be noticed. *)
         match Unix.select fds [] [] 0.25 with
         | readable, _, _ -> readable
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
       in
       (* Accept new connections. *)
       if List.memq listen_fd readable then begin
         match Unix.accept listen_fd with
         | fd, _ ->
           incr accepted;
           clients := { fd; buf = Buffer.create 256 } :: !clients
         | exception Unix.Unix_error _ -> ()
       end;
       (* Read every ready client; collect the batch.  Requests queue in
          (client, arrival) order so responses can be written back per
          client in the order its requests were sent. *)
       let queue = ref [] in
       List.iter
         (fun c ->
           if List.memq c.fd readable then begin
             let bytes = Bytes.create 65536 in
             match Unix.read c.fd bytes 0 (Bytes.length bytes) with
             | 0 -> close_client c
             | n ->
               Buffer.add_subbytes c.buf bytes 0 n;
               List.iter (fun line -> queue := handle_line c line !queue) (drain_lines c)
             | exception Unix.Unix_error _ -> close_client c
           end)
         !clients;
       let queue = List.rev !queue in
       if queue <> [] then begin
         incr batches;
         let responses = Executor.run_batch executor (List.map snd queue) in
         List.iter2
           (fun (c, _) resp -> write_line c.fd (Executor.response_to_json resp))
           queue responses;
         served := !served + List.length responses;
         log
           (Printf.sprintf "batch of %d (%d served total, cache %d/%d)" (List.length queue)
              !served
              (Cache.length (Executor.cache executor))
              (Cache.capacity (Executor.cache executor)));
         match max_requests with
         | Some limit when !served >= limit -> stop := true
         | _ -> ()
       end
     done
   with exn ->
     (* Restore the world before propagating: the server must never leak
        its socket file or signal handlers. *)
     List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     if Sys.file_exists socket then Unix.unlink socket;
     Sys.set_signal Sys.sigpipe old_pipe;
     Sys.set_signal Sys.sigint old_int;
     Sys.set_signal Sys.sigterm old_term;
     raise exn);
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  Cache.close (Executor.cache executor);
  Sys.set_signal Sys.sigpipe old_pipe;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  log (Printf.sprintf "shutdown after %d requests in %d batches" !served !batches);
  { served = !served; batches = !batches; clients = !accepted }
