(** Keyspace ownership for the sharded deployment: which worker owns
    which content-hash slice.

    The service's request {!Request.key} is an MD5 hex digest of the
    canonical request — a content hash.  Sharding reuses it as the
    partition key: worker [owner ~shards key] owns the key, computed as
    the key's leading 32 hash bits modulo the shard count.  The
    invariant (docs/SCALING.md) is {e total, disjoint, stable}
    ownership:

    - total: every key has exactly one owner in [0 .. shards-1];
    - disjoint: ownership is a pure function of [(shards, key)], so two
      routers over the same fleet agree, and no request can be computed
      (or cached) on two workers;
    - stable: a worker crash and supervised restart changes nothing —
      the key routes to the {e same} shard, whose reloaded journal
      already holds every result it acknowledged.

    Because the key already forces [jobs := 1] and is invariant under
    JSON field reordering, any two encodings of the same computation
    land on the same shard — the router never splits a deduplicatable
    pair across workers. *)

val owner : shards:int -> string -> int
(** [owner ~shards key] is the owning worker index in [0 .. shards-1]:
    the key's first 8 hex characters parsed as an integer, modulo
    [shards].  A non-hex prefix (foreign keys are hashed, not rejected)
    falls back to [Hashtbl.hash] of the key.  Raises [Invalid_argument]
    when [shards < 1]. *)

val owner_of_request : shards:int -> Request.t -> int
(** [owner ~shards (Request.key r)]. *)

val worker_transport : base:Transport.t -> int -> Transport.t
(** The conventional address of worker [i] under a router bound at
    [base]: [PATH-shard-I] for a Unix socket, [host:(port+1+I)] for TCP.
    A TCP base with port [0] yields port [0] for every worker — each
    then binds its own kernel-assigned port, resolved through the
    server's [ready] callback (how {!Router.launch_fleet} wires an
    all-ephemeral fleet). *)
