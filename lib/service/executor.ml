open Lb_observe

type t = {
  jobs : int;
  timeout_s : float option;
  cache_ : Cache.t;
  compute : jobs:int -> Request.t -> (Json.t, string) result;
}

let create ?(jobs = 1) ?timeout_s ~cache ~compute () =
  let jobs = if jobs = 0 then Lb_exec.Pool.default_jobs () else jobs in
  if jobs < 0 then invalid_arg (Printf.sprintf "Executor: negative jobs %d" jobs);
  { jobs; timeout_s; cache_ = cache; compute }

type outcome = Ok of Json.t | Error of string | Timeout | Overload

type response = {
  request : Request.t;
  key : string;
  outcome : outcome;
  cached : bool;
  deduped : bool;
  elapsed_s : float;
}

exception Timed_out

(* A SIGALRM deadline around one sequential computation.  Only armed when
   the executor runs at jobs = 1: a signal raised while the pool is joining
   helper domains would abandon them mid-merge, so parallel executors treat
   the timeout as advisory (see the .mli). *)
let with_deadline seconds f =
  match seconds with
  | None -> f ()
  | Some s when s <= 0.0 -> f ()
  | Some s ->
    let previous =
      Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timed_out))
    in
    let disarm () =
      ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.0; it_interval = 0.0 });
      Sys.set_signal Sys.sigalrm previous
    in
    ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = s; it_interval = 0.0 });
    Fun.protect ~finally:disarm f

let metric name = "service." ^ name

let run_batch t requests =
  let m = Metrics.current () in
  let total = List.length requests in
  Metrics.incr ~by:total m (metric "requests");
  Metrics.set_gauge m (metric "queue_depth") (float_of_int total);
  let keyed = List.map (fun r -> (Request.key r, r)) requests in
  (* Classify in request order: cache hit / first miss of a key / in-flight
     duplicate of an earlier miss. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let classified =
    List.map
      (fun (key, r) ->
        match Cache.find t.cache_ key with
        | Some payload -> (key, r, `Hit payload)
        | None ->
          if Hashtbl.mem seen key then (key, r, `Dup)
          else begin
            Hashtbl.add seen key ();
            (key, r, `Miss)
          end)
      keyed
  in
  let misses =
    List.filter_map (fun (key, r, c) -> if c = `Miss then Some (key, r) else None) classified
  in
  (* The computation's own fan-out: honour the request's jobs hint only when
     the executor is sequential — nested pools stay sequential inside. *)
  let inner_jobs (r : Request.t) = if t.jobs = 1 then max 1 r.Request.jobs else 1 in
  let deadline = if t.jobs = 1 then t.timeout_s else None in
  let computed =
    Lb_exec.Pool.map ~jobs:t.jobs
      (fun (key, r) ->
        let t0 = Unix.gettimeofday () in
        let outcome =
          try
            with_deadline deadline (fun () ->
                match t.compute ~jobs:(inner_jobs r) r with
                | Stdlib.Ok payload -> Ok payload
                | Stdlib.Error msg -> Error msg)
          with
          | Timed_out -> Timeout
          | exn -> Error (Printexc.to_string exn)
        in
        (key, outcome, Unix.gettimeofday () -. t0))
      misses
  in
  List.iter
    (fun (key, outcome, _) ->
      match outcome with
      | Ok payload ->
        let request =
          match List.assoc_opt key keyed with
          | Some r -> Request.to_json r
          | None -> Json.Null
        in
        Cache.store t.cache_ ~key ~request payload
      | Error _ | Timeout | Overload -> ())
    computed;
  let responses =
    List.map
      (fun (key, r, c) ->
        match c with
        | `Hit payload ->
          Metrics.incr m (metric "hits");
          { request = r; key; outcome = Ok payload; cached = true; deduped = false;
            elapsed_s = 0.0 }
        | `Miss | `Dup -> (
          let deduped = c = `Dup in
          if deduped then Metrics.incr m (metric "dedup_inflight")
          else Metrics.incr m (metric "misses");
          match List.find_opt (fun (k, _, _) -> k = key) computed with
          | Some (_, outcome, elapsed) ->
            (match outcome with
            | Ok _ | Overload -> ()
            | Error _ -> Metrics.incr m (metric "errors")
            | Timeout -> Metrics.incr m (metric "timeouts"));
            { request = r; key; outcome; cached = false; deduped;
              elapsed_s = (if deduped then 0.0 else elapsed) }
          | None ->
            (* Unreachable: every miss key is in [computed]. *)
            Metrics.incr m (metric "errors");
            { request = r; key; outcome = Error "internal: lost computation"; cached = false;
              deduped; elapsed_s = 0.0 }))
      classified
  in
  List.iter
    (fun resp -> Metrics.observe m (metric "latency_ms") (resp.elapsed_s *. 1000.0))
    responses;
  Metrics.set_gauge m (metric "queue_depth") 0.0;
  responses

let overload_response request =
  {
    request;
    key = Request.key request;
    outcome = Overload;
    cached = false;
    deduped = false;
    elapsed_s = 0.0;
  }

let response_to_json resp =
  let status, tail =
    match resp.outcome with
    | Ok payload -> ("ok", [ ("data", payload) ])
    | Error msg -> ("error", [ ("error", Json.Str msg) ])
    | Timeout -> ("timeout", [])
    | Overload -> ("overload", [ ("retry_after_s", Json.Float 0.05) ])
  in
  Json.Obj
    ([
       ("status", Json.Str status);
       ("key", Json.Str resp.key);
       ("cached", Json.Bool resp.cached);
       ("deduped", Json.Bool resp.deduped);
       ("elapsed_s", Json.Float resp.elapsed_s);
       ("request", Request.to_json resp.request);
     ]
    @ tail)

let cache t = t.cache_
