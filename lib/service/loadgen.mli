(** A seeded closed-loop load generator for the request service.

    Each of [clients] concurrent clients holds one persistent connection
    ({!Transport.connect} — Unix socket or TCP, router or single server,
    the generator cannot tell) and drives its own deterministic request
    schedule closed-loop: the next request leaves only after the
    previous reply lands.  Latencies go into a per-client
    {!Histogram.t}; after the run the histograms merge and throughput is
    measured requests over the measured wall-clock window (warmup
    excluded).

    {b Determinism.}  The request {e schedule} is a pure function of the
    {!config} — every draw is hashed from [(seed, client, index)], so
    the same config replays the same tags in the same order against any
    endpoint.  The mix: with probability [hit_ratio] a request echoes
    one of [hot_tags] shared tags (a cache hit once warm), otherwise a
    tag unique to [(seed, client, index)] — a guaranteed miss costing
    [work] digest-chain rounds on the worker.  With [experiments] set,
    ~2% of requests carry quick experiment cargo instead.  Timings, of
    course, are not deterministic; only the schedule is.

    Results append to [BENCH_service.json] via {!bench_payload} as
    [loadgen/<N>shard/p50|p99|p999|mean] rows that {!Bench_gate} can
    baseline and compare — see docs/SCALING.md for how to read them. *)

type config = {
  clients : int;  (** concurrent closed-loop clients (>= 1). *)
  requests_per_client : int;  (** measured requests per client (>= 1). *)
  warmup : int;  (** leading requests per client excluded from stats. *)
  hit_ratio : float;  (** probability in [[0,1]] of drawing a hot tag. *)
  hot_tags : int;  (** size of the shared hot-tag pool (>= 1). *)
  size : int;  (** echo payload fill size in bytes. *)
  work : int;  (** digest-chain rounds per cache miss. *)
  experiments : bool;  (** mix in ~2% quick experiment requests. *)
  seed : int;  (** schedule seed. *)
  timeout_s : float;  (** per-reply deadline (> 0). *)
}

val default : config
(** 4 clients x 100 requests, 10 warmup, 50% hits over 16 hot tags,
    256 B / 2000 work echoes, no experiments, seed 1, 30 s timeout. *)

val schedule : config -> client:int -> Request.t list
(** The full (warmup + measured) request list client [client] will send
    — exposed so tests can pin schedule determinism.  Raises
    [Invalid_argument] on an invalid config. *)

type result = {
  config : config;
  shards : int;  (** the shard count this run was labelled with. *)
  measured : int;  (** requests in the measured window (all clients). *)
  errors : int;  (** measured requests with no ["ok"] reply. *)
  elapsed_s : float;  (** measured wall-clock window. *)
  throughput_rps : float;  (** [measured /. elapsed_s]. *)
  latency : Histogram.t;  (** merged measured latencies. *)
}

val run : transport:Transport.t -> ?shards:int -> config -> result
(** Run the generator against [transport].  [shards] (default 1) only
    labels the result for reporting — pass the actual worker count when
    driving a router so the bench rows land in the right series.
    A failed call is retried once on a fresh connection; a request whose
    retry also fails (or whose reply is not [status = "ok"]) counts in
    [errors] with its observed latency still recorded.  Raises
    [Invalid_argument] on an invalid config. *)

val result_json : result -> Lb_observe.Json.t
(** The full run record: config, counts, throughput, and the
    {!Histogram.to_json} latency summary. *)

val bench_payload : result -> Lb_observe.Json.t
(** A {!Bench_out} payload: [{benchmarks: [{name; ns_per_run}]}] rows
    ([loadgen/<N>shard/p50], [/p99], [/p999], [/mean]) plus the full
    {!result_json} under ["loadgen"]. *)

val pp_result : Format.formatter -> result -> unit
(** One human line: shard count, throughput, p50/p99/p999 (ms), errors. *)
