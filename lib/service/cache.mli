(** The content-keyed result cache: an in-memory LRU with an optional
    append-only on-disk JSONL journal.

    Entries are keyed by {!Request.key} content hashes and hold the
    response payload (a {!Lb_observe.Json.t} — an experiment table or a
    certification verdict).  The in-memory side is a bounded LRU: a
    {!find} touches the entry, a {!store} past capacity evicts the least
    recently used one.

    When created with a [path], every store {e appends} one JSONL line

    {v {"key": <hash>, "request": <canonical request>, "response": <payload>} v}

    and flushes, so the journal survives a crash at any point: reloading
    replays the lines oldest-first (the last occurrence of a key wins,
    capacity applies as usual) and {e skips} lines that are truncated,
    unparseable or missing fields, counting them in {!corrupt} instead of
    failing — a damaged cache file degrades to a smaller cache, never to a
    dead server.  The journal is a log, not a snapshot: it is never
    rewritten in place, and re-stores of a key simply append a newer
    line. *)

open Lb_observe

type t

val create : ?capacity:int -> ?path:string -> unit -> t
(** [capacity] defaults to 256 entries (raises [Invalid_argument] when
    [< 1]).  With [path], an existing journal is reloaded first and the
    file is then opened for appending (created if absent). *)

val find : t -> string -> Json.t option
(** Lookup by content hash; a hit makes the entry most-recently-used. *)

val mem : t -> string -> bool
(** [mem] does {e not} touch LRU order. *)

val store : t -> key:string -> request:Json.t -> Json.t -> unit
(** Insert or refresh an entry (now most-recently-used), evicting the LRU
    entry if the capacity is exceeded, and journal the store when the
    cache is disk-backed. *)

val length : t -> int
(** Live entries currently in memory. *)

val capacity : t -> int
(** The LRU bound this cache was created with. *)

val evictions : t -> int
(** Entries dropped by LRU eviction since creation. *)

val loaded : t -> int
(** Journal lines successfully replayed at creation (0 for memory-only). *)

val corrupt : t -> int
(** Journal lines skipped as damaged at creation. *)

val path : t -> string option
(** The journal path, when disk-backed. *)

val close : t -> unit
(** Flush and close the journal channel (idempotent; no-op when
    memory-only).  The cache remains usable in memory afterwards, but
    further stores are no longer journalled. *)
