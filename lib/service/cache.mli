(** The content-keyed result cache: an in-memory LRU with an optional
    append-only on-disk JSONL journal.

    Entries are keyed by {!Request.key} content hashes and hold the
    response payload (a {!Lb_observe.Json.t} — an experiment table or a
    certification verdict).  The in-memory side is a bounded LRU: a
    {!find} touches the entry, a {!store} past capacity evicts the least
    recently used one.

    When created with a [path], every store {e appends} one JSONL line

    {v {"key": <hash>, "request": <canonical request>, "response": <payload>} v}

    and flushes, so the journal survives a crash at any point: reloading
    replays the lines oldest-first (the last occurrence of a key wins,
    capacity applies as usual) and {e skips} lines that are truncated,
    unparseable or missing fields, counting them in {!corrupt} instead of
    failing — a damaged cache file degrades to a smaller cache, never to a
    dead server.  The journal is a log, not a snapshot: it is only
    rewritten by an explicit {!compact}, and re-stores of a key simply
    append a newer line.

    Durability has two notches.  By default every append is flushed to
    the OS (survives a process crash); with [~fsync:true], {!sync} —
    which the server calls at each batch boundary — additionally
    [fsync]s the journal fd (survives a machine crash, at a
    per-batch rather than per-store cost).

    A {!Chaos.engine} ([?chaos]) interposes on appends to simulate a
    crash mid-write: the journal is left ending in a torn record, and
    {!Chaos.Server_crash} propagates to the supervisor.  Reload treats
    that torn tail exactly like any other damaged line. *)

open Lb_observe

type t

val create : ?capacity:int -> ?path:string -> ?fsync:bool -> ?chaos:Chaos.engine -> unit -> t
(** [capacity] defaults to 256 entries (raises [Invalid_argument] when
    [< 1]).  With [path], an existing journal is reloaded first and the
    file is then opened for appending (created if absent); a torn final
    record is newline-terminated so subsequent appends start clean.
    [fsync] (default [false]) arms {!sync}.  [chaos] interposes the
    engine's {!Chaos.on_journal} hook on every append. *)

val find : t -> string -> Json.t option
(** Lookup by content hash; a hit makes the entry most-recently-used. *)

val mem : t -> string -> bool
(** [mem] does {e not} touch LRU order. *)

val store : t -> key:string -> request:Json.t -> Json.t -> unit
(** Insert or refresh an entry (now most-recently-used), evicting the LRU
    entry if the capacity is exceeded, and journal the store when the
    cache is disk-backed. *)

val length : t -> int
(** Live entries currently in memory. *)

val capacity : t -> int
(** The LRU bound this cache was created with. *)

val evictions : t -> int
(** Entries dropped by LRU eviction since creation. *)

val loaded : t -> int
(** Journal lines successfully replayed at creation (0 for memory-only). *)

val corrupt : t -> int
(** Journal lines skipped as damaged at creation. *)

val path : t -> string option
(** The journal path, when disk-backed. *)

val sync : t -> unit
(** [fsync] the journal fd — a no-op unless the cache was created with
    [~fsync:true] and a [path].  The server calls this at every batch
    boundary, so acknowledged results are machine-crash durable without
    paying an fsync per store. *)

val snapshot : t -> (string * Json.t) list
(** The live entries in canonical (key-sorted) order — the basis of the
    chaos drills' byte-identity invariant: after any crash/recovery
    sequence, [snapshot] of the reloaded cache must equal the clean
    run's. *)

val snapshot_json : t -> Json.t
(** {!snapshot} as a single JSON object (keys sorted, so byte-comparable
    via [Json.to_string]). *)

val compact : t -> unit
(** Rewrite the journal to exactly the live entries, one line per key in
    sorted order, via write-to-temp + atomic rename.  Dead weight —
    superseded re-stores and LRU-evicted entries — is dropped.  The
    supervisor compacts after each crash recovery so restart cost is
    bounded by the cache size, not the crash count.  No-op when
    memory-only. *)

val close : t -> unit
(** Flush and close the journal channel (idempotent; no-op when
    memory-only).  The cache remains usable in memory afterwards, but
    further stores are no longer journalled. *)
