open Lb_observe

type spec =
  | Experiment of { id : string; quick : bool }
  | Certify of { target : string; plan : string; n : int; ops : int; seed : int }
  | Conform of {
      target : string;
      otype : string;
      plan : string;
      n : int;
      ops : int;
      schedules : int;
      seed : int;
    }
  | Echo of { tag : string; size : int; work : int }

type t = { spec : spec; jobs : int }

let experiment ?(quick = false) id =
  { spec = Experiment { id = String.lowercase_ascii id; quick }; jobs = 1 }

let certify ?(n = 8) ?(ops = 1) ?(seed = 1) ~target ~plan () =
  { spec = Certify { target; plan; n; ops; seed }; jobs = 1 }

let conform ?(otype = "fetch-inc") ?(plan = "none") ?(n = 4) ?(ops = 4) ?(schedules = 200)
    ?(seed = 1) ~target () =
  { spec = Conform { target; otype; plan; n; ops; schedules; seed }; jobs = 1 }

let echo ?(size = 0) ?(work = 0) tag =
  if size < 0 then invalid_arg "Request.echo: size < 0";
  if work < 0 then invalid_arg "Request.echo: work < 0";
  { spec = Echo { tag; size; work }; jobs = 1 }

let with_jobs t jobs = { t with jobs }

(* The canonical field order.  [kind] always comes first so a human reading
   the JSONL cache can tell entries apart at a glance; everything else is
   explicit — defaults never round-trip invisibly. *)
let to_json t =
  match t.spec with
  | Experiment { id; quick } ->
    Json.Obj
      [
        ("kind", Json.Str "experiment");
        ("id", Json.Str id);
        ("quick", Json.Bool quick);
        ("jobs", Json.Int t.jobs);
      ]
  | Certify { target; plan; n; ops; seed } ->
    Json.Obj
      [
        ("kind", Json.Str "certify");
        ("target", Json.Str target);
        ("plan", Json.Str plan);
        ("n", Json.Int n);
        ("ops", Json.Int ops);
        ("seed", Json.Int seed);
        ("jobs", Json.Int t.jobs);
      ]
  | Conform { target; otype; plan; n; ops; schedules; seed } ->
    Json.Obj
      [
        ("kind", Json.Str "conform");
        ("target", Json.Str target);
        ("otype", Json.Str otype);
        ("plan", Json.Str plan);
        ("n", Json.Int n);
        ("ops", Json.Int ops);
        ("schedules", Json.Int schedules);
        ("seed", Json.Int seed);
        ("jobs", Json.Int t.jobs);
      ]
  | Echo { tag; size; work } ->
    Json.Obj
      [
        ("kind", Json.Str "echo");
        ("tag", Json.Str tag);
        ("size", Json.Int size);
        ("work", Json.Int work);
        ("jobs", Json.Int t.jobs);
      ]

let of_json json =
  match json with
  | Json.Obj _ -> (
    let str name = Option.bind (Json.member name json) Json.to_str_opt in
    let int ~default name =
      match Option.bind (Json.member name json) Json.to_int_opt with
      | Some v -> v
      | None -> default
    in
    let bool ~default name =
      match Option.bind (Json.member name json) Json.to_bool_opt with
      | Some v -> v
      | None -> default
    in
    let jobs = int ~default:1 "jobs" in
    match str "kind" with
    | Some "experiment" -> (
      match str "id" with
      | Some id ->
        Ok
          {
            spec =
              Experiment { id = String.lowercase_ascii id; quick = bool ~default:false "quick" };
            jobs;
          }
      | None -> Error "experiment request lacks an \"id\" field")
    | Some "certify" -> (
      match (str "target", str "plan") with
      | Some target, Some plan ->
        Ok
          {
            spec =
              Certify
                {
                  target;
                  plan;
                  n = int ~default:8 "n";
                  ops = int ~default:1 "ops";
                  seed = int ~default:1 "seed";
                };
            jobs;
          }
      | None, _ -> Error "certify request lacks a \"target\" field"
      | _, None -> Error "certify request lacks a \"plan\" field")
    | Some "conform" -> (
      match str "target" with
      | Some target ->
        Ok
          {
            spec =
              Conform
                {
                  target;
                  otype =
                    (match str "otype" with Some s -> s | None -> "fetch-inc");
                  plan = (match str "plan" with Some s -> s | None -> "none");
                  n = int ~default:4 "n";
                  ops = int ~default:4 "ops";
                  schedules = int ~default:200 "schedules";
                  seed = int ~default:1 "seed";
                };
            jobs;
          }
      | None -> Error "conform request lacks a \"target\" field")
    | Some "echo" -> (
      match str "tag" with
      | Some tag ->
        let size = int ~default:0 "size" in
        let work = int ~default:0 "work" in
        if size < 0 then Error "echo request has a negative \"size\""
        else if work < 0 then Error "echo request has a negative \"work\""
        else Ok { spec = Echo { tag; size; work }; jobs }
      | None -> Error "echo request lacks a \"tag\" field")
    | Some other -> Error (Printf.sprintf "unknown request kind %S" other)
    | None -> Error "request lacks a \"kind\" field")
  | _ -> Error "request is not a JSON object"

(* MD5 (stdlib Digest) of the canonical serialisation with jobs forced to 1:
   stable across processes and OCaml versions, which Hashtbl.hash is not. *)
let key t = Digest.to_hex (Digest.string (Json.to_string (to_json { t with jobs = 1 })))

let describe t =
  match t.spec with
  | Experiment { id; quick } ->
    Printf.sprintf "experiment %s (%s)" id (if quick then "quick" else "full")
  | Certify { target; plan; n; ops; seed } ->
    Printf.sprintf "certify %s under %s, n=%d ops=%d seed=%d" target plan n ops seed
  | Conform { target; otype; plan; n; ops; schedules; seed } ->
    Printf.sprintf "conform %s/%s under %s, n=%d ops=%d schedules=%d seed=%d" target otype plan
      n ops schedules seed
  | Echo { tag; size; work } ->
    if work = 0 then Printf.sprintf "echo %s (%dB)" tag size
    else Printf.sprintf "echo %s (%dB, work=%d)" tag size work

let equal a b = a.spec = b.spec

let pp ppf t = Format.pp_print_string ppf (describe t)
