open Lb_observe

type entry = {
  mutable payload : Json.t;
  mutable request : Json.t;  (** the canonical request, kept for compaction. *)
  mutable used : int; (* recency tick *)
}

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable out : out_channel option;
  file : string option;
  fsync : bool;
  chaos : Chaos.engine option;
  mutable loaded : int;
  mutable corrupt : int;
  mutable evictions : int;
}

let touch t e =
  t.tick <- t.tick + 1;
  e.used <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    touch t e;
    Some e.payload
  | None -> None

let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  (* Scan for the stalest tick: O(capacity), and eviction only happens once
     the cache is full — fine at the few-hundred-entry capacities a result
     cache runs at, and free of the bookkeeping a linked list would need. *)
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, used) when used <= e.used -> acc
        | _ -> Some (key, e.used))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

let journal_line ~key ~request payload =
  Json.to_string
    (Json.Obj [ ("key", Json.Str key); ("request", request); ("response", payload) ])

let journal t ~key ~request payload =
  match t.out with
  | None -> ()
  | Some oc -> (
    let line = journal_line ~key ~request payload ^ "\n" in
    match t.chaos with
    | None ->
      output_string oc line;
      flush oc
    | Some engine -> (
      match Chaos.on_journal engine line with
      | `Line ->
        output_string oc line;
        flush oc
      | `Partial_then_crash prefix ->
        (* A torn record: the bytes a crash mid-append leaves behind.  The
           flush makes the damage durable before the simulated crash. *)
        output_string oc prefix;
        flush oc;
        raise (Chaos.Server_crash "chaos: journal truncated mid-append")))

let store_in_memory t ~key ~request payload =
  (match Hashtbl.find_opt t.tbl key with
  | Some e ->
    e.payload <- payload;
    e.request <- request;
    touch t e
  | None ->
    if Hashtbl.length t.tbl >= t.cap then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.add t.tbl key { payload; request; used = t.tick });
  ()

let store t ~key ~request payload =
  store_in_memory t ~key ~request payload;
  journal t ~key ~request payload

(* Reload: replay lines oldest-first; the last occurrence of a key wins and
   capacity applies exactly as for live stores.  Any damaged line — a
   truncated tail after a crash, editor mangling, a partial write — is
   counted and skipped. *)
let reload t path =
  let ic = open_in_bin path in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.parse line with
         | Ok json -> (
           match (Json.member "key" json, Json.member "response" json) with
           | Some key_j, Some payload -> (
             match Json.to_str_opt key_j with
             | Some key ->
               let request = Option.value ~default:Json.Null (Json.member "request" json) in
               store_in_memory t ~key ~request payload;
               t.loaded <- t.loaded + 1
             | None -> t.corrupt <- t.corrupt + 1)
           | _ -> t.corrupt <- t.corrupt + 1)
         | Error _ -> t.corrupt <- t.corrupt + 1
     done
   with End_of_file -> ());
  close_in ic

let create ?(capacity = 256) ?path ?(fsync = false) ?chaos () =
  if capacity < 1 then invalid_arg (Printf.sprintf "Cache: capacity %d < 1" capacity);
  let t =
    {
      cap = capacity;
      tbl = Hashtbl.create (min capacity 64);
      tick = 0;
      out = None;
      file = path;
      fsync;
      chaos;
      loaded = 0;
      corrupt = 0;
      evictions = 0;
    }
  in
  (match path with
  | None -> ()
  | Some p ->
    let truncated_tail =
      Sys.file_exists p
      &&
      (reload t p;
       let ic = open_in_bin p in
       let len = in_channel_length ic in
       let partial =
         len > 0
         &&
         (seek_in ic (len - 1);
          input_char ic <> '\n')
       in
       close_in ic;
       partial)
    in
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 p in
    (* A crash mid-append leaves a partial final line; terminate it so the
       next entry starts on its own line and reload skips the stub as one
       corrupt line instead of swallowing the entry glued to it. *)
    if truncated_tail then (
      output_char oc '\n';
      flush oc);
    t.out <- Some oc);
  t

let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let evictions t = t.evictions
let loaded t = t.loaded
let corrupt t = t.corrupt
let path t = t.file

let sync t =
  match t.out with
  | Some oc when t.fsync ->
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)
  | Some _ | None -> ()

(* Live entries in canonical (key-sorted) order: the basis of both
   compaction and the drills' byte-identity check. *)
let snapshot t =
  Hashtbl.fold (fun key e acc -> (key, e.payload) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_json t = Json.Obj (snapshot t)

let compact t =
  match t.file with
  | None -> ()
  | Some path ->
    (match t.out with
    | Some oc ->
      t.out <- None;
      close_out oc
    | None -> ());
    let entries =
      Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let tmp = path ^ ".compact.tmp" in
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
    List.iter
      (fun (key, e) ->
        output_string oc (journal_line ~key ~request:e.request e.payload);
        output_char oc '\n')
      entries;
    flush oc;
    if t.fsync then Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    (* Atomic swap: a crash during compaction leaves either the old journal
       or the new one, never a half-written mixture. *)
    Sys.rename tmp path;
    t.out <- Some (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path)

let close t =
  match t.out with
  | None -> ()
  | Some oc ->
    t.out <- None;
    close_out oc
