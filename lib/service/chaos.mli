(** Declarative, seeded chaos plans for the service layer.

    Where [Lb_faults.Fault_plan] injects adversity into the {e simulated}
    shared memory, a chaos plan injects adversity into the {e serving
    path}: the server's socket writes and the cache's journal appends.
    A plan is a named list of injectors — pure data, replayable from its
    occurrence indices and the engine seed — and the server ({!Server.serve}
    [?chaos]) and cache ({!Cache.create} [?chaos]) consult the instantiated
    {!engine} at each interposition point:

    - [short_write ~max_bytes]: cap every socket write syscall to
      [max_bytes] — a permanently tiny send buffer.  Invisible when the
      server's write loop is correct; fatal to code that assumes one
      [write] writes everything.
    - [drop_reply ~at]: at the [k]-th batch reply (1-based, for each [k]
      in [at]) the connection is closed instead of written — the client
      observes [Closed] mid-batch.
    - [garble_reply ~at]: the reply line is replaced by bytes that cannot
      parse as JSON — the client observes [Bad_line].
    - [delay_reply ~at ~delay_s]: the reply is written [delay_s] late —
      the client's per-attempt deadline fires first.
    - [crash_after_reply ~at]: after writing the reply the server raises
      {!Server_crash} mid-batch — some requests acked, the rest never
      answered, every connection dropped.  {!Server.supervise} recovers.
    - [truncate_journal ~at]: the [k]-th cache-journal append writes only
      a prefix of its line and then raises {!Server_crash} — the on-disk
      journal ends in a torn record, exactly what a real crash mid-append
      leaves behind.

    Control replies (ping/metrics/shutdown) are exempt: chaos targets the
    data path, and drills need a reliable side channel.

    The ['+']-joined plan grammar ({!of_name}, {!plan_names}) is shared
    with the fault layer via [Lb_faults.Fault_plan.parse_joined].  Every
    firing increments the [service.chaos_injections] metric and records a
    [Service] trace event, so a traced server shows injected adversity
    alongside the computations it interrupts. *)

type injector =
  | Short_write of { max_bytes : int }
  | Drop_reply of { at : int list }
  | Garble_reply of { at : int list }
  | Delay_reply of { at : int list; delay_s : float }
  | Crash_after_reply of { at : int list }
  | Truncate_journal of { at : int list }

type t
(** A named, immutable list of injectors. *)

exception Server_crash of string
(** The simulated server crash: raised at an injection point, caught by
    {!Server.supervise}, which recovers state from the journal and
    restarts the accept loop. *)

val none : t
val name : t -> string
val injectors : t -> injector list

(** {1 Constructors} — occurrence indices are 1-based and must be
    non-empty; [Invalid_argument] otherwise. *)

val short_write : max_bytes:int -> t
val drop_reply : at:int list -> t
val garble_reply : at:int list -> t
val delay_reply : at:int list -> delay_s:float -> t
val crash_after_reply : at:int list -> t
val truncate_journal : at:int list -> t

val compose : ?name:string -> t list -> t
(** Concatenate the injectors of several plans. *)

val pp_injector : Format.formatter -> injector -> unit
val pp : Format.formatter -> t -> unit

(** {1 The named plan grammar} *)

val named : (string * t) list
(** The built-in plans: [none], [short-write], [drop], [garble], [delay],
    [crash], [truncate], and the everything-at-once [havoc]. *)

val of_name : string -> t option
(** Parse a [--chaos] argument: a {!plan_names} entry or several joined
    with ["+"] (the grammar {!Lb_faults.Fault_plan.of_name} uses);
    [None] if any component is unknown. *)

val plan_names : string list

(** {1 The engine} — one mutable instantiation of a plan, shared by the
    server and its cache so occurrence counters survive restarts: a plan
    that crashes the server at reply #5 fires once, not once per
    generation. *)

type engine

val instantiate : ?seed:int -> t -> engine
(** [seed] (default 1) drives the garbled bytes; occurrences themselves
    are deterministic in the plan. *)

val plan_of : engine -> t
val injections : engine -> int
(** Injections fired so far — a drill that reports 0 never tested
    anything. *)

type reply_action = {
  data : string option;  (** [None]: drop the connection instead of replying. *)
  delay_s : float;  (** sleep this long before writing. *)
  crash_after : string option;
      (** [Some reason]: raise {!Server_crash} after handling the reply. *)
}

val on_reply : engine -> string -> reply_action
(** Account one batch-reply line (the newline-terminated wire form) and
    say what the server must do with it. *)

val write_cap : engine -> int option
(** The socket-write chunk cap, when the plan carries a [short_write]. *)

val on_journal : engine -> string -> [ `Line | `Partial_then_crash of string ]
(** Account one journal append.  [`Line]: append normally.
    [`Partial_then_crash prefix]: write only [prefix] (no newline), flush,
    and raise {!Server_crash} — a torn record. *)
