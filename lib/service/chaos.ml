open Lb_observe

type injector =
  | Short_write of { max_bytes : int }
  | Drop_reply of { at : int list }
  | Garble_reply of { at : int list }
  | Delay_reply of { at : int list; delay_s : float }
  | Crash_after_reply of { at : int list }
  | Truncate_journal of { at : int list }

type t = { name : string; injectors : injector list }

exception Server_crash of string

let none = { name = "none"; injectors = [] }
let name t = t.name
let injectors t = t.injectors

let check_at kind at =
  if at = [] || List.exists (fun k -> k <= 0) at then
    invalid_arg (Printf.sprintf "Chaos.%s: occurrence indices are 1-based" kind);
  List.sort_uniq Int.compare at

let pp_at at = String.concat "," (List.map string_of_int at)

let short_write ~max_bytes =
  if max_bytes < 1 then invalid_arg "Chaos.short_write: max_bytes < 1";
  {
    name = Printf.sprintf "short-write(%dB)" max_bytes;
    injectors = [ Short_write { max_bytes } ];
  }

let drop_reply ~at =
  let at = check_at "drop_reply" at in
  { name = Printf.sprintf "drop-reply(@{%s})" (pp_at at); injectors = [ Drop_reply { at } ] }

let garble_reply ~at =
  let at = check_at "garble_reply" at in
  {
    name = Printf.sprintf "garble-reply(@{%s})" (pp_at at);
    injectors = [ Garble_reply { at } ];
  }

let delay_reply ~at ~delay_s =
  let at = check_at "delay_reply" at in
  if delay_s <= 0.0 then invalid_arg "Chaos.delay_reply: delay_s <= 0";
  {
    name = Printf.sprintf "delay-reply(@{%s},%.2fs)" (pp_at at) delay_s;
    injectors = [ Delay_reply { at; delay_s } ];
  }

let crash_after_reply ~at =
  let at = check_at "crash_after_reply" at in
  {
    name = Printf.sprintf "crash-mid-batch(@{%s})" (pp_at at);
    injectors = [ Crash_after_reply { at } ];
  }

let truncate_journal ~at =
  let at = check_at "truncate_journal" at in
  {
    name = Printf.sprintf "journal-truncate(@{%s})" (pp_at at);
    injectors = [ Truncate_journal { at } ];
  }

let compose ?name plans =
  let injectors = List.concat_map (fun p -> p.injectors) plans in
  let name =
    match name with
    | Some n -> n
    | None -> (
      match plans with
      | [] -> "none"
      | _ -> String.concat " + " (List.map (fun p -> p.name) plans))
  in
  { name; injectors }

let pp_injector ppf = function
  | Short_write { max_bytes } ->
    Format.fprintf ppf "cap every socket write to %d bytes" max_bytes
  | Drop_reply { at } -> Format.fprintf ppf "drop the connection at reply #%s" (pp_at at)
  | Garble_reply { at } -> Format.fprintf ppf "garble reply #%s" (pp_at at)
  | Delay_reply { at; delay_s } ->
    Format.fprintf ppf "delay reply #%s by %.2fs" (pp_at at) delay_s
  | Crash_after_reply { at } ->
    Format.fprintf ppf "crash the server after reply #%s" (pp_at at)
  | Truncate_journal { at } ->
    Format.fprintf ppf "truncate journal append #%s mid-write and crash" (pp_at at)

let pp ppf t =
  match t.injectors with
  | [] -> Format.fprintf ppf "%s (no chaos)" t.name
  | injectors ->
    Format.fprintf ppf "%s:@ %a" t.name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_injector)
      injectors

(* ---- the named plan grammar (mirrors Fault_plan.named) ---- *)

let named =
  [
    ("none", none);
    ("short-write", short_write ~max_bytes:7);
    ("drop", compose ~name:"drop" [ drop_reply ~at:[ 1; 4 ] ]);
    ("garble", compose ~name:"garble" [ garble_reply ~at:[ 2 ] ]);
    ("delay", compose ~name:"delay" [ delay_reply ~at:[ 1 ] ~delay_s:0.3 ]);
    ("crash", compose ~name:"crash" [ crash_after_reply ~at:[ 2 ] ]);
    ("truncate", compose ~name:"truncate" [ truncate_journal ~at:[ 2 ] ]);
    ( "havoc",
      compose ~name:"havoc"
        [
          short_write ~max_bytes:16;
          drop_reply ~at:[ 2 ];
          garble_reply ~at:[ 4 ];
          delay_reply ~at:[ 6 ] ~delay_s:0.05;
          crash_after_reply ~at:[ 8 ];
          truncate_journal ~at:[ 3 ];
        ] );
  ]

let plan_names = List.map fst named

let of_name name =
  Lb_faults.Fault_plan.parse_joined ~table:named
    ~compose:(fun ~name plans -> compose ~name plans)
    name

(* ---- the seeded engine ---- *)

type engine = {
  plan : t;
  rand : Random.State.t;
  mutable replies : int;  (** batch-response lines the server has produced. *)
  mutable appends : int;  (** journal lines the cache has appended. *)
  mutable injections : int;
}

let instantiate ?(seed = 1) plan =
  { plan; rand = Random.State.make [| 0xC4A05; seed |]; replies = 0; appends = 0; injections = 0 }

let plan_of e = e.plan
let injections e = e.injections

let fired e detail =
  e.injections <- e.injections + 1;
  Metrics.incr (Metrics.current ()) "service.chaos_injections";
  Tracer.record (Event.Service { op = "chaos"; detail })

let write_cap e =
  List.fold_left
    (fun acc -> function
      | Short_write { max_bytes } -> (
        match acc with Some c -> Some (min c max_bytes) | None -> Some max_bytes)
      | Drop_reply _ | Garble_reply _ | Delay_reply _ | Crash_after_reply _
      | Truncate_journal _ ->
        acc)
    None e.plan.injectors

type reply_action = {
  data : string option;  (** [None]: drop the connection instead of replying. *)
  delay_s : float;
  crash_after : string option;  (** [Some reason]: raise {!Server_crash} after. *)
}

(* A reply garbled into bytes that can never parse as JSON (leading '}')
   and never contain a newline — the client sees one complete, broken
   line. *)
let garble e line =
  let len = min 24 (max 4 (String.length line / 4)) in
  "}garbled-"
  ^ String.init len (fun _ -> Char.chr (Char.code 'a' + Random.State.int e.rand 26))
  ^ "\n"

let on_reply e line =
  e.replies <- e.replies + 1;
  let k = e.replies in
  List.fold_left
    (fun act injector ->
      match injector with
      | Short_write { max_bytes } ->
        (* The cap itself is applied by the server's write loop; here it
           only counts as a firing (when this reply is long enough to be
           chunked), so a short-write drill reports its injections. *)
        if String.length line > max_bytes then
          fired e (Printf.sprintf "short-write cap %dB on reply #%d" max_bytes k);
        act
      | Drop_reply { at } when List.mem k at ->
        fired e (Printf.sprintf "drop-reply #%d" k);
        { act with data = None }
      | Garble_reply { at } when List.mem k at ->
        fired e (Printf.sprintf "garble-reply #%d" k);
        { act with data = (match act.data with None -> None | Some _ -> Some (garble e line)) }
      | Delay_reply { at; delay_s } when List.mem k at ->
        fired e (Printf.sprintf "delay-reply #%d (%.2fs)" k delay_s);
        { act with delay_s = act.delay_s +. delay_s }
      | Crash_after_reply { at } when List.mem k at ->
        fired e (Printf.sprintf "crash-mid-batch after reply #%d" k);
        { act with crash_after = Some (Printf.sprintf "chaos: crash after reply #%d" k) }
      | Drop_reply _ | Garble_reply _ | Delay_reply _ | Crash_after_reply _
      | Truncate_journal _ ->
        act)
    { data = Some line; delay_s = 0.0; crash_after = None }
    e.plan.injectors

let on_journal e line =
  e.appends <- e.appends + 1;
  let k = e.appends in
  let truncates =
    List.exists
      (function Truncate_journal { at } -> List.mem k at | _ -> false)
      e.plan.injectors
  in
  if truncates then begin
    fired e (Printf.sprintf "journal-truncate mid-append #%d" k);
    `Partial_then_crash (String.sub line 0 (max 1 (String.length line / 2)))
  end
  else `Line
