(** The request server: a hand-rolled accept loop over a Unix-domain
    socket, speaking line-delimited JSON.

    Protocol: a client connects, writes one JSON object per line, and
    receives one JSON response line per request, in order.  Lines that
    parse as a {!Request} are queued; everything queued when the loop
    wakes up — across {e all} connected clients — is drained as one
    {!Executor.run_batch}, which is where coalescing and in-flight
    deduplication happen: two clients asking for the same table while it
    is being scheduled get one computation.  Control lines

    {v {"op": "ping"} | {"op": "metrics"} | {"op": "shutdown"} v}

    are answered immediately ([metrics] returns the current
    {!Lb_observe.Metrics} registry snapshot — the [service.*] family
    included; [shutdown] answers, finishes nothing further and stops the
    loop).  Malformed lines get an ["error"] response rather than killing
    the connection.

    The loop multiplexes with [Unix.select] — no helper threads, no
    external dependencies — and shuts down gracefully on [SIGINT] /
    [SIGTERM] (current batch finished, every pending response written,
    socket file unlinked, cache journal flushed and closed). *)

type stats = {
  served : int;  (** requests answered (control lines excluded). *)
  batches : int;  (** coalesced batches drained. *)
  clients : int;  (** connections accepted over the server's lifetime. *)
}

val serve :
  socket:string ->
  executor:Executor.t ->
  ?max_requests:int ->
  ?log:(string -> unit) ->
  unit ->
  stats
(** Bind [socket] (an existing socket file is replaced), serve until a
    [shutdown] op, a signal, or — when [max_requests] is given — until
    that many requests have been answered.  [log] receives one-line
    progress notes (default: silent). *)
