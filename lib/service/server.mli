(** The request server: a hand-rolled accept loop over a {!Transport}
    address — a Unix-domain socket or a TCP endpoint — speaking
    line-delimited JSON.

    Protocol: a client connects, writes one JSON object per line, and
    receives one JSON response line per request, in order.  Lines that
    parse as a {!Request} are queued; everything queued when the loop
    wakes up — across {e all} connected clients — is drained as one
    {!Executor.run_batch}, which is where coalescing and in-flight
    deduplication happen: two clients asking for the same table while it
    is being scheduled get one computation.  Control lines

    {v {"op": "ping"} | {"op": "metrics"} | {"op": "shutdown"} v}

    are answered immediately ([metrics] returns the current
    {!Lb_observe.Metrics} registry snapshot — the [service.*] family
    included; [shutdown] answers, finishes nothing further and stops the
    loop).  Malformed lines get an ["error"] response rather than killing
    the connection.

    The loop multiplexes with [Unix.select] — no helper threads, no
    external dependencies — and shuts down gracefully on [SIGINT] /
    [SIGTERM] (current batch finished, every pending response written,
    socket file unlinked, cache journal flushed and closed).

    {b Robustness} (docs/ROBUSTNESS.md).  Replies are written with an
    explicit short-write-safe loop, so a tiny send buffer — real or
    injected by a {!Chaos} plan — only slows a reply, never corrupts it.
    With [max_queue], batches deeper than the bound are refused at
    admission with typed ["overload"] responses ([service.
    overload_rejections] counts them) instead of holding every caller
    hostage to the slowest computation.  With [chaos], batch replies and
    journal appends pass through the engine's injectors; an injected
    {!Chaos.Server_crash} unwinds through [serve]'s cleanup (fds closed,
    socket unlinked, handlers restored) and is caught by {!supervise},
    which rebuilds the executor — reloading the cache from its journal —
    and binds a fresh generation.  Because the journal append happens
    before the reply is written, an acknowledged result is always durable
    across such a crash. *)

type stats = {
  served : int;  (** requests answered (control lines and overload refusals excluded). *)
  batches : int;  (** coalesced batches drained. *)
  clients : int;  (** connections accepted over the server's lifetime. *)
}

val write_line : Unix.file_descr -> Lb_observe.Json.t -> unit
(** Write one newline-terminated JSON line, looping until every byte is
    written ([Unix.single_write] can stop short on nonblocking or
    small-buffer fds).  Swallows [Unix_error] — a vanished peer drops the
    line.  Exposed for tests and for tools speaking the wire protocol. *)

val serve :
  transport:Transport.t ->
  executor:Executor.t ->
  ?max_requests:int ->
  ?chaos:Chaos.engine ->
  ?max_queue:int ->
  ?ready:(Transport.t -> unit) ->
  ?log:(string -> unit) ->
  unit ->
  stats
(** Bind [transport] (an existing Unix socket file is replaced; a TCP
    port gets [SO_REUSEADDR]), serve until a [shutdown] op, a signal, or
    — when [max_requests] is given — until that many requests have been
    answered.  [ready] is called once the listener is bound, with the
    {e resolved} address (a {!Transport.Tcp} port 0 becomes the
    kernel-assigned port) — how tests and drills learn an ephemeral
    port race-free.  [chaos] interposes the engine on batch replies
    (control replies are exempt); [max_queue] (≥ 1, else
    [Invalid_argument]) arms admission control.  [log] receives one-line
    progress notes (default: silent).  May raise {!Chaos.Server_crash}
    (after restoring fds, socket file and signal handlers) — callers
    wanting recovery use {!supervise}. *)

type supervised = {
  last : stats;  (** the generation that exited cleanly. *)
  recoveries : int;  (** crashes recovered from (= restarts performed). *)
}

val supervise :
  transport:Transport.t ->
  executor_of:(unit -> Executor.t) ->
  ?max_requests:int ->
  ?max_restarts:int ->
  ?chaos:Chaos.engine ->
  ?max_queue:int ->
  ?ready:(Transport.t -> unit) ->
  ?log:(string -> unit) ->
  unit ->
  supervised
(** Run {!serve} generations until one exits cleanly, restarting on
    {!Chaos.Server_crash}: the crashed generation's cache journal is
    closed, [service.recoveries] is bumped, a [Service] recovery event is
    recorded, and [executor_of ()] builds the next generation's executor —
    typically {!Cache.create} on the same journal path (reloading every
    durable entry, including the acknowledged results of the crashed
    generation) followed by {!Cache.compact}.  The address the first
    generation resolved is pinned, so a {!Transport.Tcp} port 0 resolves
    once and every restarted generation rebinds the {e same} endpoint —
    clients keep a stable address across crashes ([SO_REUSEADDR] makes
    the immediate rebind legal).  [max_restarts] (default 100) bounds
    the crash loop; exceeding it raises [Failure].  [max_requests]
    applies per generation.  The same [chaos] engine should be threaded
    through both [serve] and the caches [executor_of] builds, so
    occurrence counters span restarts — a plan that crashes at reply #2
    fires once, not once per generation. *)
