(** The service transport: one address abstraction over Unix-domain
    sockets and TCP, used by every socket-touching layer — {!Server},
    {!Client}, {!Router}, {!Drill}, {!Loadgen} and the CLI.

    An address is either a filesystem socket path ({!Unix_socket}, the
    single-host default: no ports, no firewalls, kernel-enforced
    permissions) or a [host:port] endpoint ({!Tcp}, the scale-out
    transport: a router and its shard workers, or a remote load
    generator, reach the service over loopback or a real network).  The
    wire protocol above the transport — line-delimited JSON, one reply
    per request — is byte-identical on both; the TCP parity test in
    [suite_service] pins that the {e same request} yields the {e
    byte-identical reply} over either transport.

    {b Ephemeral ports.}  A {!Tcp} address with port [0] asks the kernel
    for a free port at {!listen} time; the resolved address (with the
    real port) is returned by {!listen} and handed to
    {!Server.serve}'s [?ready] callback, so tests and drills can bind
    race-free without guessing ports.

    {b Latency.}  TCP connections get [TCP_NODELAY] ({!configure}): the
    protocol is request/response with sub-millisecond computations, and
    Nagle-delaying a 200-byte reply behind a 40 ms timer would dominate
    every loadgen percentile. *)

type t =
  | Unix_socket of string  (** a filesystem socket path. *)
  | Tcp of { host : string; port : int }
      (** [host] is a numeric address or a resolvable name; [port] 0
          means "kernel-assigned" (resolved at {!listen}). *)

val of_string : string -> (t, string) result
(** Parse a CLI address argument:
    - ["tcp:HOST:PORT"] / ["tcp:[HOST]:PORT"] — explicitly TCP; the
      bracketed form is required when [HOST] itself contains [':'] (an
      IPv6 literal such as [::1]) — an unbracketed multi-colon remainder
      is an error, never a guess;
    - ["unix:PATH"] — explicitly a socket path (any [PATH], including
      ones containing [:digits]);
    - ["[HOST]:PORT"] — TCP with a bracketed (typically IPv6) host;
    - ["HOST:PORT"] (exactly one [':'], non-empty slash-free host,
      all-digit port) — TCP;
    - anything else — a Unix socket path.  In particular ["::1"] (no
      host before the colon), ["host:"] (trailing colon), ["a:b:1"]
      (two colons, unbracketed, no prefix) and ["/tmp/x.sock:8080"]
      (hostnames never contain ['/']) are socket paths: a path is the
      only reading that cannot silently drop information.

    [Error] on a malformed or out-of-range port, on a bare ["tcp:"] /
    ["unix:"] with an empty remainder, and on ambiguous or malformed
    bracketed forms.  The qcheck round-trip properties in
    [suite_service] pin [of_string (to_string t) = Ok t]. *)

val to_string : t -> string
(** The parseable rendering: the bare path for {!Unix_socket},
    [host:port] (or [\[host\]:port] for a colon-bearing host) for
    {!Tcp}.  When the plain form would parse back as something else — a
    socket path that itself looks like [host:port] or starts with a
    reserved prefix, a TCP host literally named ["unix"] — the explicit
    ["unix:"] / ["tcp:"] prefixed form is emitted instead, keeping
    [of_string (to_string t) = Ok t] by construction. *)

val pp : Format.formatter -> t -> unit

val listen : ?backlog:int -> t -> Unix.file_descr * t
(** Bind and listen ([backlog] defaults to 64).  For {!Unix_socket} an
    existing socket file is replaced.  For {!Tcp} the socket gets
    [SO_REUSEADDR] (a supervised restart must rebind the port
    immediately) and the returned transport carries the {e resolved}
    port — identical to the input unless the input port was 0.  Raises
    [Unix.Unix_error] on bind failure and [Failure] on an unresolvable
    host. *)

val connect : t -> (Unix.file_descr, string) result
(** Dial the address; the returned fd is connected and {!configure}d.
    All failures (unresolvable host, refused connection) come back as
    [Error reason], never as an exception. *)

val configure : t -> Unix.file_descr -> unit
(** Per-connection socket options for an {e accepted or connected} fd:
    [TCP_NODELAY] for {!Tcp}, nothing for {!Unix_socket}.  The server
    applies this to every accepted connection. *)

val cleanup : t -> unit
(** Remove the socket file of a {!Unix_socket} if it exists; a no-op for
    {!Tcp}.  Safe to call twice. *)
