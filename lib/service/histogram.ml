(* Log-linear latency histogram.  Bucket 0 holds everything at or below
   [v0]; bucket i (i >= 1) holds (v0 * ratio^(i-1), v0 * ratio^i]; the
   last bucket absorbs the tail.  With v0 = 1 microsecond and ~4%
   geometric spacing, 640 buckets span past an hour — every latency this
   service can produce — at a relative quantile error bounded by the
   spacing. *)

let v0 = 1e-6
let ratio = 1.04
let log_ratio = log ratio
let nbuckets = 640

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { buckets = Array.make nbuckets 0; count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let index v =
  if v <= v0 then 0
  else min (nbuckets - 1) (1 + int_of_float (log (v /. v0) /. log_ratio))

let add t v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  t.buckets.(index v) <- t.buckets.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum

(* The representative value of a bucket: its geometric midpoint, clamped
   into the observed [min, max] so quantiles never stray outside the
   data. *)
let representative t i =
  let mid = if i = 0 then v0 else v0 *. (ratio ** (float_of_int i -. 0.5)) in
  Float.max t.min_v (Float.min t.max_v mid)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg (Printf.sprintf "Histogram.quantile: %g not in [0,1]" q);
  if t.count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    (* The extreme ranks are exact: bucket midpoints are approximations,
       but the observed min and max are not. *)
    if rank = 1 then t.min_v
    else if rank = t.count then t.max_v
    else begin
    let seen = ref 0 and result = ref t.max_v in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + t.buckets.(i);
         if !seen >= rank then begin
           result := representative t i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
    end
  end

let merge a b =
  let out = create () in
  Array.iteri (fun i n -> out.buckets.(i) <- n + b.buckets.(i)) a.buckets;
  out.count <- a.count + b.count;
  out.sum <- a.sum +. b.sum;
  out.min_v <- Float.min a.min_v b.min_v;
  out.max_v <- Float.max a.max_v b.max_v;
  out

let to_json t =
  let q p = Lb_observe.Json.Float (quantile t p) in
  Lb_observe.Json.Obj
    [
      ("count", Lb_observe.Json.Int t.count);
      ("sum_s", Lb_observe.Json.Float t.sum);
      ("min_s", Lb_observe.Json.Float (if t.count = 0 then 0.0 else t.min_v));
      ("max_s", Lb_observe.Json.Float (if t.count = 0 then 0.0 else t.max_v));
      ("mean_s", Lb_observe.Json.Float (if t.count = 0 then 0.0 else t.sum /. float_of_int t.count));
      ("p50_s", q 0.5);
      ("p90_s", q 0.9);
      ("p99_s", q 0.99);
      ("p999_s", q 0.999);
    ]
