(** The shard router: the single public face of an N-worker fleet.

    The router accepts client connections on one {!Transport} address,
    speaks exactly the server's line-JSON protocol, and forwards each
    canonical request to the worker owning its content-hash slice
    ({!Shard.owner} — [hash mod N]).  Each worker is an ordinary
    {!Server} loop (usually under {!Server.supervise}) with its own
    cache journal; the router holds one persistent connection per
    worker, redialing and resending on failure — safe, because request
    keys are content hashes, so a resent line replays as a cache hit on
    the worker that already executed it.

    Per batch the router writes {e every} shard's slice before reading
    {e any} replies, so workers compute their slices concurrently —
    that phase split, not the router itself, is where the horizontal
    speedup on miss-heavy load comes from (docs/SCALING.md has the
    measured curve).

    Protocol notes.  [ping] and [metrics] are answered by the router
    itself; [shutdown] is forwarded to every worker before the router
    stops; the router-only op

    {v {"op": "shards"} v}

    returns the fleet topology: shard count, per-worker address,
    connection state, forwarded-request count, and each worker's live
    metrics snapshot (fetched over the wire; [null] for an unreachable
    worker).  Replies to a multi-request batch arrive grouped by shard,
    not in request submission order — they are keyed, and {!Client}
    validates by key set, not order.  A shard that stays unreachable
    after one redial yields typed ["error"] replies carrying the
    request key ([service.router_errors] counts them).

    Counters ([service.*], docs/OBSERVABILITY.md): [forwarded],
    [forwarded_shard<i>], [router_batches], [reconnects],
    [router_errors]. *)

type stats = {
  forwarded : int;  (** requests forwarded and answered via a worker. *)
  batches : int;  (** router batches drained. *)
  clients : int;  (** client connections accepted over the router's lifetime. *)
  reconnects : int;  (** worker redials performed ([service.reconnects]). *)
}

val route :
  transport:Transport.t ->
  workers:Transport.t list ->
  ?max_requests:int ->
  ?worker_timeout_s:float ->
  ?ready:(Transport.t -> unit) ->
  ?log:(string -> unit) ->
  unit ->
  stats
(** Bind [transport] and forward until a [shutdown] op, a signal, or —
    with [max_requests] — until that many requests have been forwarded
    (workers are then shut down too).  [workers] lists the worker
    addresses in shard order; shard [i] of [List.length workers] owns
    slice [i].  [worker_timeout_s] (default 600) bounds each wait for a
    worker's replies; past it the wire is redialed, the slice resent,
    and on a second failure the affected requests get typed error
    replies.  [ready] receives the resolved listen address (TCP port 0
    becomes the kernel-assigned port).  Raises [Invalid_argument] on an
    empty [workers]. *)

(** {1 The in-process fleet}

    For tests, drills and the load generator: the whole deployment —
    N supervised workers plus the router — inside one process, one
    domain each.  The CLI's [lowerbound shard] verb builds the same
    topology from OS processes instead. *)

type fleet = {
  address : Transport.t;  (** the router's resolved address — dial this. *)
  shards : Transport.t list;  (** resolved worker addresses, in shard order. *)
  stop : unit -> stats;
      (** shut the fleet down (router first, which forwards the shutdown
          to every worker), join every domain, and return the router's
          stats. *)
}

val launch_fleet :
  shards:int ->
  transport:Transport.t ->
  executor_of:(int -> Executor.t) ->
  ?max_queue:int ->
  ?log:(string -> unit) ->
  unit ->
  fleet
(** Launch [shards] supervised workers and a router at [transport].
    Worker [i] listens on {!Shard.worker_transport}[ ~base:transport i]
    and rebuilds its executor with [executor_of i] per generation — the
    caller decides cache capacity and journal path per shard there.  A
    TCP [transport] with port 0 gives {e every} listener (router and
    workers) its own kernel-assigned port; the resolved addresses are in
    the returned {!fleet}.  Blocks until every listener is bound.
    Raises [Invalid_argument] when [shards < 1] and [Failure] if a
    listener never binds. *)
