(** The canonical service request: what a client may ask the experiment
    server to compute.

    A request names either one experiment table (E1 .. E14, optionally at
    the reduced "quick" sweep sizes) or one fault-certification run (a
    target construction or wakeup corpus entry, a fault plan, a process
    count, an operation count and a seed), plus a [jobs] hint for how many
    domains the computation may fan across.

    Requests serialise to the line-delimited JSON protocol documented in
    docs/OBSERVABILITY.md.  {!of_json} accepts fields in {e any} order and
    fills defaults for omitted optional fields; {!to_json} always emits the
    one canonical field order.  The {!key} content hash is computed from
    the canonical serialisation with [jobs] forced to [1] — results are
    job-count-invariant throughout this repository (docs/PERFORMANCE.md),
    so two requests that differ only in [jobs] (or in JSON field order)
    are the {e same} cacheable computation and must collide. *)

open Lb_observe

type spec =
  | Experiment of { id : string; quick : bool }
      (** One experiment table: [id] is ["e1"] .. ["e14"] (lower case);
          [quick] selects the reduced sweep sizes. *)
  | Certify of { target : string; plan : string; n : int; ops : int; seed : int }
      (** One certification run: [target] is a construction name
          ([adt-tree], [herlihy], [consensus-list], [direct]) or a wakeup
          corpus entry; [plan] is a named fault plan (["+"]-composable). *)
  | Conform of {
      target : string;
      otype : string;
      plan : string;
      n : int;
      ops : int;
      schedules : int;
      seed : int;
    }
      (** One conformance fuzz cell: [schedules] seeded random schedules of
          construction [target] on object type [otype] under fault plan
          [plan], every history linearizability-checked, counterexamples
          shrunk (see {!Lb_conformance.Fuzz.check_cell}). *)
  | Echo of { tag : string; size : int; work : int }
      (** A deterministic request: the response repeats [tag] plus a
          [size]-byte fill derived from it, after [work] rounds of digest
          chaining (each round one MD5 over the previous digest — a pure
          CPU spin, [0] = free).  The chaos drills and the load generator
          use echoes as cheap, distinct, verifiable cargo — every
          invariant about caching, journalling and retries can be checked
          without paying for a real experiment, and [work] dials in a
          known per-miss compute cost so the sharding speedup is
          measurable. *)

type t = { spec : spec; jobs : int }

val experiment : ?quick:bool -> string -> t
(** [experiment id] at [jobs = 1]; the id is lowercased. *)

val certify : ?n:int -> ?ops:int -> ?seed:int -> target:string -> plan:string -> unit -> t
(** Defaults: [n = 8], [ops = 1], [seed = 1], [jobs = 1]. *)

val conform :
  ?otype:string ->
  ?plan:string ->
  ?n:int ->
  ?ops:int ->
  ?schedules:int ->
  ?seed:int ->
  target:string ->
  unit ->
  t
(** Defaults: [otype = "fetch-inc"], [plan = "none"], [n = 4], [ops = 4],
    [schedules = 200], [seed = 1], [jobs = 1]. *)

val echo : ?size:int -> ?work:int -> string -> t
(** [echo tag] with a [size]-byte payload fill and [work] digest-chain
    rounds (both default 0; raise [Invalid_argument] when negative),
    [jobs = 1]. *)

val with_jobs : t -> int -> t

val to_json : t -> Json.t
(** Canonical form: a fixed field order ([kind] first), every field
    explicit.  [of_json (to_json r) = Ok r]. *)

val of_json : Json.t -> (t, string) result
(** Tolerant parse: fields in any order, optional fields defaulted, unknown
    fields ignored (forward compatibility).  [Error] on a missing [kind] /
    [id] / [target] / [plan], or on a non-object. *)

val key : t -> string
(** The content hash (an MD5 hex digest of the canonical serialisation
    with [jobs := 1]) — the cache and in-flight-deduplication key.
    Invariant under JSON field reordering and under [jobs]. *)

val describe : t -> string
(** One-line human summary ("experiment e5 (full)", "certify direct under
    crash-stop, n=8 ops=1 seed=1"). *)

val equal : t -> t -> bool
(** Structural equality {e ignoring [jobs]} — precisely key equality. *)

val pp : Format.formatter -> t -> unit
