open Lb_observe

type report = {
  drill : string;
  seed : int;
  transport : string;
  passed : bool;
  failures : string list;
  requests : int;
  acked : int;
  retries : int;
  recoveries : int;
  overload_rejections : int;
  injections : int;
  elapsed_s : float;
}

(* One drill: a chaos plan, a client posture, and (for the overload drill)
   an admission bound to flood. *)
type spec = {
  dname : string;
  plan : Chaos.t;
  max_queue : int option;
  payload_size : int;
  client_timeout_s : float;
  flood : bool;
}

let specs =
  [
    (* Payloads far larger than the 7-byte write cap: the reply only
       arrives intact if the server's write loop is short-write-safe. *)
    { dname = "short-write"; plan = Chaos.short_write ~max_bytes:7; max_queue = None;
      payload_size = 2000; client_timeout_s = 5.0; flood = false };
    { dname = "drop-connection"; plan = Chaos.drop_reply ~at:[ 1; 4 ]; max_queue = None;
      payload_size = 64; client_timeout_s = 5.0; flood = false };
    { dname = "garble"; plan = Chaos.garble_reply ~at:[ 2 ]; max_queue = None;
      payload_size = 64; client_timeout_s = 5.0; flood = false };
    (* The reply is delayed past the client's per-attempt deadline, so the
       first attempt times out and a retry lands after the sleep. *)
    { dname = "delay"; plan = Chaos.delay_reply ~at:[ 1 ] ~delay_s:0.6; max_queue = None;
      payload_size = 64; client_timeout_s = 0.2; flood = false };
    { dname = "crash-mid-batch"; plan = Chaos.crash_after_reply ~at:[ 2; 5 ];
      max_queue = None; payload_size = 64; client_timeout_s = 5.0; flood = false };
    { dname = "journal-truncate"; plan = Chaos.truncate_journal ~at:[ 2 ]; max_queue = None;
      payload_size = 64; client_timeout_s = 5.0; flood = false };
    { dname = "overload"; plan = Chaos.none; max_queue = Some 2; payload_size = 64;
      client_timeout_s = 5.0; flood = true };
  ]

let names = List.map (fun s -> s.dname) specs

let distinct_tags = 6
let workload_len = 10

(* The drill cargo: seeded echo requests with deliberate duplicates
   (10 requests over 6 distinct keys), so caching and idempotency are
   exercised alongside the injected adversity. *)
let workload spec ~seed =
  List.init workload_len (fun i ->
      Request.echo ~size:spec.payload_size
        (Printf.sprintf "drill-%s-s%d-%d" spec.dname seed (i mod distinct_tags)))

let reply_status reply =
  Option.value ~default:"?" (Option.bind (Json.member "status" reply) Json.to_str_opt)

(* The clean run: the same workload pushed straight through an executor on
   a throwaway in-memory cache — no sockets, no chaos.  Its key → payload
   map and canonical snapshot are the ground truth every invariant below
   compares against. *)
let clean_run spec ~seed =
  let cache = Cache.create ~capacity:64 () in
  let executor = Executor.create ~cache ~compute:Catalog.compute () in
  let responses = Executor.run_batch executor (workload spec ~seed) in
  let map =
    List.filter_map
      (fun (r : Executor.response) ->
        match r.Executor.outcome with
        | Executor.Ok payload -> Some (r.Executor.key, payload)
        | _ -> None)
      responses
  in
  (map, Json.to_string (Cache.snapshot_json cache))

let run_spec spec ~seed ~retry_attempts ~supervise ~transport:kind =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt in
  let requests = ref 0 and acked = ref 0 in
  let clean_map, clean_snapshot = clean_run spec ~seed in
  (* Scratch space: a private directory so socket and journal paths cannot
     collide across concurrent drills. *)
  let dir =
    let base = Filename.temp_file "lb-drill" "" in
    Sys.remove base;
    Unix.mkdir base 0o700;
    base
  in
  let socket = Filename.concat dir "sock" in
  let journal = Filename.concat dir "journal.jsonl" in
  (* TCP drills listen on an ephemeral loopback port; the [ready] callback
     publishes the kernel-resolved address to the client side, so drills
     never guess (or collide on) port numbers. *)
  let listen =
    match kind with
    | `Unix -> Transport.Unix_socket socket
    | `Tcp -> Transport.Tcp { host = "127.0.0.1"; port = 0 }
  in
  let resolved = Atomic.make None in
  let ready t = Atomic.set resolved (Some t) in
  let engine = Chaos.instantiate ~seed spec.plan in
  let executor_of () =
    let cache = Cache.create ~capacity:64 ~path:journal ~fsync:true ~chaos:engine () in
    (* Recovery compaction: restart cost stays bounded by the cache size,
       not by how many crashes the journal has absorbed. *)
    Cache.compact cache;
    Executor.create ~cache ~compute:Catalog.compute ()
  in
  let srv_reg = Metrics.create () in
  let server =
    Domain.spawn (fun () ->
        Metrics.with_registry srv_reg (fun () ->
            try
              if supervise then
                Stdlib.Ok
                  (Server.supervise ~transport:listen ~executor_of ~max_restarts:10
                     ~chaos:engine ?max_queue:spec.max_queue ~ready ())
              else
                Stdlib.Ok
                  (let stats =
                     Server.serve ~transport:listen ~executor:(executor_of ())
                       ~chaos:engine ?max_queue:spec.max_queue ~ready ()
                   in
                   { Server.last = stats; recoveries = 0 })
            with exn -> Stdlib.Error (Printexc.to_string exn)))
  in
  let retry =
    { Client.attempts = retry_attempts; base_delay_s = 0.05; multiplier = 2.0;
      max_delay_s = 0.3; jitter = 0.25; seed }
  in
  let rec await_bound k =
    match Atomic.get resolved with
    | Some t -> Some t
    | None ->
      if k = 0 then None
      else begin
        Unix.sleepf 0.01;
        await_bound (k - 1)
      end
  in
  let transport =
    match await_bound 500 with
    | Some t -> t
    | None ->
      fail "server never bound its transport";
      listen
  in
  if not (Client.wait_ready ~transport ()) then fail "server never became ready";
  (* The overload drill first floods one batch past the admission bound:
     the typed Overload must surface once the budget is spent — requests
     terminate, they do not hang. *)
  if spec.flood then begin
    let batch =
      List.init distinct_tags (fun i ->
          Request.echo ~size:spec.payload_size
            (Printf.sprintf "drill-%s-s%d-%d" spec.dname seed i))
    in
    match
      Client.request_retry ~transport ~timeout_s:spec.client_timeout_s
        ~retry:{ retry with Client.attempts = 3 }
        batch
    with
    | Error (Client.Overload _) -> ()
    | Ok _ -> fail "flood batch of %d was admitted in full past max_queue" distinct_tags
    | Error e -> fail "flood batch failed unexpectedly: %s" (Client.error_message e)
  end;
  (* The workload proper: one request at a time through the retrying
     client.  Every request must end in an acknowledged payload identical
     to the clean run's. *)
  List.iter
    (fun req ->
      incr requests;
      let key = Request.key req in
      match Client.request_retry ~transport ~timeout_s:spec.client_timeout_s ~retry [ req ] with
      | Ok [ reply ] -> (
        match reply_status reply with
        | "ok" -> (
          incr acked;
          match (Json.member "data" reply, List.assoc_opt key clean_map) with
          | Some got, Some want when got = want -> ()
          | Some _, Some _ -> fail "payload for %s differs from the clean run" key
          | _ -> fail "reply for %s lacks data (or clean run lacks the key)" key)
        | other -> fail "request %s ended with status %S" key other)
      | Ok replies -> fail "request %s got %d replies, wanted 1" key (List.length replies)
      | Error e -> fail "request %s exhausted retries: %s" key (Client.error_message e))
    (workload spec ~seed);
  (* Stop the server (retried: a crash drill may be mid-restart). *)
  let rec stop k =
    if k = 0 then fail "shutdown was never acknowledged"
    else
      match
        Client.call ~transport ~timeout_s:2.0 [ Json.Obj [ ("op", Json.Str "shutdown") ] ]
      with
      | Ok _ -> ()
      | Error _ ->
        Unix.sleepf 0.05;
        stop (k - 1)
  in
  stop 40;
  (match Domain.join server with
  | Stdlib.Ok _ -> ()
  | Stdlib.Error msg -> fail "server died instead of shutting down: %s" msg);
  (* Invariants on the survivors: the journal must reload into a cache
     byte-identical to the clean run's — acknowledged results included —
     no matter what was injected. *)
  (if Sys.file_exists journal then begin
     let reloaded = Cache.create ~capacity:64 ~path:journal () in
     let snapshot = Json.to_string (Cache.snapshot_json reloaded) in
     Cache.close reloaded;
     if !acked > 0 && snapshot <> clean_snapshot then
       fail "post-recovery cache differs from the clean run (%d corrupt lines)"
         (Cache.corrupt reloaded)
   end
   else if !acked > 0 then fail "journal file vanished");
  if Chaos.injectors spec.plan <> [] && Chaos.injections engine = 0 then
    fail "chaos plan %s never fired — the drill tested nothing" (Chaos.name spec.plan);
  (match spec.max_queue with
  | Some _ when Metrics.counter_value srv_reg "service.overload_rejections" = 0 ->
    fail "admission control never rejected despite the flood"
  | _ -> ());
  (* Best-effort scratch cleanup. *)
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ journal; socket; journal ^ ".compact.tmp" ];
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let failures = List.rev !failures in
  {
    drill = spec.dname;
    seed;
    transport = (match kind with `Unix -> "unix" | `Tcp -> "tcp");
    passed = failures = [];
    failures;
    requests = !requests;
    acked = !acked;
    retries = Metrics.counter_value (Metrics.current ()) "service.retries";
    recoveries = Metrics.counter_value srv_reg "service.recoveries";
    overload_rejections = Metrics.counter_value srv_reg "service.overload_rejections";
    injections = Chaos.injections engine;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

let find name = List.find_opt (fun s -> s.dname = name) specs

let run ?(seed = 1) ?(retry_attempts = 8) ?(supervise = true) ?(transport = `Unix) name =
  match find name with
  | None ->
    Stdlib.Error
      (Printf.sprintf "unknown drill %S (one of: %s)" name (String.concat ", " names))
  | Some spec ->
    (* Each drill runs in its own metrics registry so [retries] counts
       just this drill's client, not whatever the caller accumulated. *)
    Stdlib.Ok
      (Metrics.with_registry (Metrics.create ()) (fun () ->
           run_spec spec ~seed ~retry_attempts ~supervise ~transport))

let run_all ?(seed = 1) ?(retry_attempts = 8) ?(supervise = true) ?(transport = `Unix) () =
  List.map
    (fun spec ->
      Metrics.with_registry (Metrics.create ()) (fun () ->
          run_spec spec ~seed ~retry_attempts ~supervise ~transport))
    specs

let report_json r =
  Json.Obj
    [
      ("drill", Json.Str r.drill);
      ("seed", Json.Int r.seed);
      ("transport", Json.Str r.transport);
      ("passed", Json.Bool r.passed);
      ("failures", Json.Arr (List.map (fun m -> Json.Str m) r.failures));
      ("requests", Json.Int r.requests);
      ("acked", Json.Int r.acked);
      ("retries", Json.Int r.retries);
      ("recoveries", Json.Int r.recoveries);
      ("overload_rejections", Json.Int r.overload_rejections);
      ("injections", Json.Int r.injections);
      ("elapsed_s", Json.Float r.elapsed_s);
    ]

let pp_report ppf r =
  Format.fprintf ppf "%-16s %s  req=%d acked=%d retries=%d recoveries=%d overload=%d inj=%d (%.2fs)"
    r.drill
    (if r.passed then "PASS" else "FAIL")
    r.requests r.acked r.retries r.recoveries r.overload_rejections r.injections r.elapsed_s;
  if not r.passed then
    List.iter (fun m -> Format.fprintf ppf "@.    - %s" m) r.failures
