type t = Unix_socket of string | Tcp of { host : string; port : int }

let tcp_of_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "TCP address %S lacks a :PORT suffix" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    if host = "" then Error (Printf.sprintf "TCP address %S lacks a host" s)
    else
      match int_of_string_opt port_s with
      | Some port when port >= 0 && port <= 65535 -> Ok (Tcp { host; port })
      | Some port -> Error (Printf.sprintf "port %d out of range" port)
      | None -> Error (Printf.sprintf "bad port %S" port_s))

let looks_like_hostport s =
  match String.rindex_opt s ':' with
  | None -> false
  | Some i ->
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    i > 0 && port <> "" && String.for_all (fun c -> c >= '0' && c <= '9') port

let of_string s =
  if s = "" then Error "empty address"
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    tcp_of_hostport (String.sub s 4 (String.length s - 4))
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_socket (String.sub s 5 (String.length s - 5)))
  else if looks_like_hostport s then tcp_of_hostport s
  else Ok (Unix_socket s)

let to_string = function
  | Unix_socket path -> path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let pp ppf t = Format.pp_print_string ppf (to_string t)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) -> failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (resolve_host host, port)

let domain = function Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let configure t fd =
  match t with
  | Unix_socket _ -> ()
  | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())

let listen ?(backlog = 64) t =
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (try
     (match t with
     | Unix_socket path -> if Sys.file_exists path then Unix.unlink path
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (sockaddr t);
     Unix.listen fd backlog
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  (* Resolve a kernel-assigned port back into the address so callers can
     hand clients something dialable. *)
  let resolved =
    match t with
    | Unix_socket _ -> t
    | Tcp { host; _ } -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp { host; port }
      | Unix.ADDR_UNIX _ -> t)
  in
  (fd, resolved)

let connect t =
  match Unix.socket (domain t) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (sockaddr t) with
    | () ->
      configure t fd;
      Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
    | exception Failure msg ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error msg)

let cleanup = function
  | Unix_socket path -> if Sys.file_exists path then ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()
