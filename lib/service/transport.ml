type t = Unix_socket of string | Tcp of { host : string; port : int }

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let port_of_string port_s =
  if not (is_digits port_s) then Error (Printf.sprintf "bad port %S" port_s)
  else
    match int_of_string_opt port_s with
    | Some port when port >= 0 && port <= 65535 -> Ok port
    | Some port -> Error (Printf.sprintf "port %d out of range" port)
    | None -> Error (Printf.sprintf "bad port %S" port_s)

let tcp ~host port_s =
  if host = "" then Error "TCP address lacks a host"
  else Result.map (fun port -> Tcp { host; port }) (port_of_string port_s)

(* "[HOST]:PORT" — the bracketed form that makes colon-bearing hosts
   (IPv6 literals like ::1) unambiguous.  The host is everything inside
   the outermost brackets ([rindex], so a ']' inside the host cannot
   truncate it). *)
let parse_bracketed s =
  match String.rindex_opt s ']' with
  | Some i when i >= 2 && i + 2 < String.length s && s.[i + 1] = ':' ->
    tcp ~host:(String.sub s 1 (i - 1)) (String.sub s (i + 2) (String.length s - i - 2))
  | Some _ | None -> Error (Printf.sprintf "malformed bracketed address %S (want [HOST]:PORT)" s)

(* "HOST:PORT" after an explicit tcp: prefix.  A host containing ':'
   must be bracketed: guessing which colon splits "fe80::1" would pick
   silently between host "fe80:" port 1 and a parse error depending on
   the suffix — exactly the last-colon heuristic bug this replaces. *)
let tcp_of_hostport s =
  if String.length s > 0 && s.[0] = '[' then parse_bracketed s
  else
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "TCP address %S lacks a :PORT suffix" s)
    | Some i ->
      if String.rindex s ':' <> i then
        Error
          (Printf.sprintf "ambiguous TCP address %S: bracket colon-bearing hosts as [HOST]:PORT"
             s)
      else tcp ~host:(String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))

(* The bare-address heuristic: exactly one ':', non-empty slash-free
   host, all-digit port.  "::1" (no host before the first colon),
   "host:" (empty port), "a:b:1" (two colons) and "/tmp/x.sock:8080"
   (hostnames never contain '/') all fall through to Unix_socket — a
   path is the only reading that cannot silently drop information. *)
let looks_like_hostport s =
  match String.index_opt s ':' with
  | None -> false
  | Some i ->
    String.rindex s ':' = i
    && i > 0
    && (not (String.contains (String.sub s 0 i) '/'))
    && is_digits (String.sub s (i + 1) (String.length s - i - 1))

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let of_string s =
  if s = "" then Error "empty address"
  else
    match strip_prefix ~prefix:"tcp:" s with
    | Some "" -> Error "tcp: prefix with no HOST:PORT"
    | Some rest -> tcp_of_hostport rest
    | None -> (
      match strip_prefix ~prefix:"unix:" s with
      | Some "" -> Error "unix: prefix with no path"
      | Some path -> Ok (Unix_socket path)
      | None ->
        if s.[0] = '[' then parse_bracketed s
        else if looks_like_hostport s then tcp_of_hostport s
        else Ok (Unix_socket s))

(* The round-trip invariant [of_string (to_string t) = Ok t] is kept by
   construction: render the plain form, and if parsing it back would not
   recover [t] (a socket path that looks like host:port or starts with a
   reserved prefix; a host named "unix"), fall back to the explicit
   prefixed form, which always parses to the intended constructor. *)
let to_string t =
  let plain =
    match t with
    | Unix_socket path -> path
    | Tcp { host; port } ->
      if String.contains host ':' then Printf.sprintf "[%s]:%d" host port
      else Printf.sprintf "%s:%d" host port
  in
  match of_string plain with
  | Ok t' when t' = t -> plain
  | Ok _ | Error _ -> (
    match t with
    | Unix_socket path -> "unix:" ^ path
    | Tcp _ -> "tcp:" ^ plain)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) -> failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (resolve_host host, port)

let domain = function Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let configure t fd =
  match t with
  | Unix_socket _ -> ()
  | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())

let listen ?(backlog = 64) t =
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (try
     (match t with
     | Unix_socket path -> if Sys.file_exists path then Unix.unlink path
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (sockaddr t);
     Unix.listen fd backlog
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  (* Resolve a kernel-assigned port back into the address so callers can
     hand clients something dialable. *)
  let resolved =
    match t with
    | Unix_socket _ -> t
    | Tcp { host; _ } -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp { host; port }
      | Unix.ADDR_UNIX _ -> t)
  in
  (fd, resolved)

let connect t =
  match Unix.socket (domain t) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (sockaddr t) with
    | () ->
      configure t fd;
      Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
    | exception Failure msg ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error msg)

let cleanup = function
  | Unix_socket path -> if Sys.file_exists path then ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()
