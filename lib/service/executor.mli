(** The batching executor: the cache-aware bridge between queued requests
    and the domain pool.

    [run_batch] takes every request currently queued (one coalesced batch)
    and serves it in three tiers:

    + {e cache hits} — requests whose {!Request.key} is already cached are
      answered immediately, without recomputation;
    + {e in-flight duplicates} — among the remaining requests, those with
      an identical key are collapsed onto one computation: the table is
      computed exactly once per distinct key, however many clients asked
      for it in the batch;
    + {e distinct misses} — fanned across {!Lb_exec.Pool.map} at the
      executor's job count, each task under the pool's per-task
      metrics/tracer capture (merged deterministically at join), then
      stored in the cache.

    Responses come back in request order.  A compute that raises is caught
    and reported as an [Error] response — one poisoned request must not
    take down a batch, let alone the server.

    Every batch publishes [service.*] metrics into the current
    {!Lb_observe.Metrics} registry: [service.requests], [service.hits],
    [service.misses], [service.dedup_inflight], [service.errors],
    [service.timeouts] (counters), [service.queue_depth] (gauge: the size
    of the batch being drained), and [service.latency_ms] (histogram, one
    observation per response).

    {b Timeouts.}  With [timeout_s] set and [jobs = 1], each computation
    runs under a [SIGALRM] interval-timer deadline and times out
    individually.  At [jobs > 1] signal delivery cannot safely interrupt
    sibling domains mid-join, so the deadline is not armed and the
    timeout is advisory only — the trade-off is documented rather than
    half-enforced. *)

open Lb_observe

type t

val create :
  ?jobs:int ->
  ?timeout_s:float ->
  cache:Cache.t ->
  compute:(jobs:int -> Request.t -> (Json.t, string) result) ->
  unit ->
  t
(** [jobs] (default 1) is the fan-out across distinct misses; [0] means
    {!Lb_exec.Pool.default_jobs}.  [compute ~jobs req] receives the job
    count the computation itself may use internally: the request's own
    [jobs] hint when the executor is sequential, [1] when the executor is
    already fanning out (nested pools stay sequential inside). *)

type outcome =
  | Ok of Json.t  (** the computed or cached payload. *)
  | Error of string
  | Timeout
  | Overload
      (** Refused at admission — the server's queue was already at its
          bound.  Never produced by {!run_batch}; the server constructs it
          via {!overload_response} {e before} the request is queued.  The
          wire status carries a [retry_after_s] hint and the retrying
          client backs off on it. *)

type response = {
  request : Request.t;
  key : string;
  outcome : outcome;
  cached : bool;  (** served from the cache without recomputation. *)
  deduped : bool;  (** collapsed onto another in-flight request's computation. *)
  elapsed_s : float;  (** this request's service time (≈0 for hits/dups). *)
}

val run_batch : t -> Request.t list -> response list
(** Serve one coalesced batch; responses in request order. *)

val overload_response : Request.t -> response
(** The admission-control refusal for [request]: outcome {!Overload},
    nothing computed, nothing cached. *)

val response_to_json : response -> Json.t
(** The wire form: [{"status": "ok"|"error"|"timeout"|"overload", "key",
    "cached", "deduped", "elapsed_s", "request", and
    "data" | "error" | "retry_after_s"}]. *)

val cache : t -> Cache.t
