open Lb_observe

let strs xs = Json.Arr (List.map (fun s -> Json.Str s) xs)
let ints xs = Json.Arr (List.map (fun i -> Json.Int i) xs)

let construction_report_json (r : Lb_faults.Certify.report) =
  Json.Obj
    [
      ("target", Json.Str r.Lb_faults.Certify.target);
      ("plan", Json.Str (Lb_faults.Fault_plan.name r.Lb_faults.Certify.plan));
      ("n", Json.Int r.Lb_faults.Certify.n);
      ("seed", Json.Int r.Lb_faults.Certify.seed);
      ("status", Json.Str (Lb_faults.Certify.status_string r.Lb_faults.Certify.status));
      ("certified", Json.Bool (Lb_faults.Certify.certified r));
      ("reasons", strs r.Lb_faults.Certify.reasons);
      ("notes", strs r.Lb_faults.Certify.notes);
      ("restarts", Json.Int r.Lb_faults.Certify.restarts);
      ("spurious_injected", Json.Int r.Lb_faults.Certify.spurious_injected);
      ("total_shared_ops", Json.Int r.Lb_faults.Certify.total_shared_ops);
      ("consistent", Json.Bool r.Lb_faults.Certify.consistent);
      ("consistency", Json.Str r.Lb_faults.Certify.consistency);
    ]

let wakeup_report_json (r : Lb_faults.Certify.wakeup_report) =
  Json.Obj
    [
      ("target", Json.Str r.Lb_faults.Certify.algorithm);
      ("plan", Json.Str (Lb_faults.Fault_plan.name r.Lb_faults.Certify.wplan));
      ("n", Json.Int r.Lb_faults.Certify.wn);
      ("seed", Json.Int r.Lb_faults.Certify.wseed);
      ("status", Json.Str (Lb_faults.Certify.status_string r.Lb_faults.Certify.wstatus));
      ("certified", Json.Bool (r.Lb_faults.Certify.wstatus <> Lb_faults.Certify.Violated));
      ("reasons", strs r.Lb_faults.Certify.wreasons);
      ("notes", strs r.Lb_faults.Certify.wnotes);
      ("woke", ints r.Lb_faults.Certify.woke);
      ("crashed", ints r.Lb_faults.Certify.crashed_pids);
      ("false_claim", Json.Bool r.Lb_faults.Certify.false_claim);
    ]

let find_corpus_entry name =
  match Lb_wakeup.Corpus.find name with
  | Some e -> Some e
  | None ->
    List.find_opt
      (fun (e : Lb_wakeup.Corpus.entry) -> e.Lb_wakeup.Corpus.name = name)
      (Lb_wakeup.Corpus.cheaters ~n_hint:64)

let compute ~jobs (request : Request.t) =
  match request.Request.spec with
  | Request.Experiment { id; quick } -> (
    match List.assoc_opt id (Lb_experiments.Experiments.thunks ~jobs ~quick ()) with
    | Some thunk -> Ok (Lb_experiments.Table.to_json (thunk ()))
    | None ->
      Error
        (Printf.sprintf "unknown experiment %S (have: %s)" id
           (String.concat ", " Lb_experiments.Experiments.ids)))
  | Request.Certify { target; plan; n; ops; seed } -> (
    match Lb_faults.Fault_plan.of_name ~n plan with
    | None ->
      Error
        (Printf.sprintf "unknown fault plan %S (one of: %s, joined with '+')" plan
           (String.concat ", " Lb_faults.Fault_plan.plan_names))
    | Some plan -> (
      match Lb_faults.Targets.find target with
      | Some iface ->
        Ok
          (construction_report_json
             (Lb_faults.Certify.run ~target:iface ~plan ~n ~seed ~ops_per_process:ops ()))
      | None -> (
        match find_corpus_entry target with
        | Some entry ->
          Ok
            (wakeup_report_json
               (Lb_faults.Certify.run_wakeup ~algorithm:entry.Lb_wakeup.Corpus.name
                  ~make:entry.Lb_wakeup.Corpus.make ~plan ~n ~seed
                  ~randomized:entry.Lb_wakeup.Corpus.randomized ()))
        | None ->
          Error
            (Printf.sprintf
               "unknown certification target %S (a construction: adt-tree, herlihy, \
                consensus-list, direct; or a wakeup corpus entry)"
               target))))
  | Request.Conform { target; otype; plan; n; ops; schedules; seed } -> (
    match Lb_conformance.Conform.find_construction target with
    | None ->
      Error
        (Printf.sprintf
           "unknown conformance target %S (adt-tree, herlihy, consensus-list, direct)" target)
    | Some construction -> (
      match Lb_conformance.Fuzz.find_type otype with
      | None ->
        Error
          (Printf.sprintf "unknown object type %S (one of: %s)" otype
             (String.concat ", " Lb_conformance.Fuzz.type_names))
      | Some ot when not (Lb_conformance.Fuzz.supports ~construction ot) ->
        Error
          (Printf.sprintf "construction %S does not implement object type %S" target otype)
      | Some ot -> (
        match Lb_faults.Fault_plan.of_name ~n plan with
        | None ->
          Error
            (Printf.sprintf "unknown fault plan %S (one of: %s, joined with '+')" plan
               (String.concat ", " Lb_faults.Fault_plan.plan_names))
        | Some fault_plan ->
          Ok
            (Lb_conformance.Conform.json_of_cell
               (Lb_conformance.Fuzz.check_cell ~construction ~ot ~plan_name:plan
                  ~plan:fault_plan ~n ~ops ~schedules ~seed ~max_states:200_000 ())))))
  | Request.Echo { tag; size; work } ->
    (* Deterministic fill derived from the tag, so any two runs of the same
       echo produce byte-identical payloads — the drills compare them.
       [work] chains MD5 rounds over the tag: a pure, verifiable CPU spin
       the load generator uses to give cache misses a known cost. *)
    let fill =
      String.init size (fun i -> Char.chr (Char.code 'a' + ((i + String.length tag) mod 26)))
    in
    let digest = ref (Digest.string tag) in
    for _ = 1 to work do
      digest := Digest.string !digest
    done;
    Ok
      (Json.Obj
         ([ ("tag", Json.Str tag); ("size", Json.Int size); ("fill", Json.Str fill) ]
         @ if work = 0 then []
           else [ ("work", Json.Int work); ("digest", Json.Str (Digest.to_hex !digest)) ]))
