(** The computations the service can serve: the binding from a
    {!Request} to the experiment suite and the certification driver.

    This is the one module of [lib/service] that depends on the heavy
    layers ({!Lb_experiments}, {!Lb_faults}, {!Lb_wakeup}); everything
    below it — request, cache, executor, server, client — is generic in
    the compute function, so tests and other drivers can plug in toy
    computations.

    Payload schemas (docs/OBSERVABILITY.md): an experiment request yields
    the table exactly as {!Lb_experiments.Table.to_json} emits it; a
    certification request yields a verdict object ([target], [plan], [n],
    [seed], [status], [certified], [reasons], [notes], and the
    construction-run accounting when applicable).  Both are deterministic
    functions of the request's content hash — the precondition for
    caching them. *)

open Lb_observe

val compute : jobs:int -> Request.t -> (Json.t, string) result
(** Run the request at the given internal fan-out.  [Error] on an unknown
    experiment id, certification target, or fault-plan name. *)
