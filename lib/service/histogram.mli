(** A log-linear latency histogram for the load generator.

    Values (seconds) land in geometric buckets: bucket 0 holds
    everything at or below 1 microsecond, each later bucket is ~4% wider
    than the last, and 640 buckets span past an hour.  Quantiles are
    read back as the geometric midpoint of the bucket the rank falls in,
    clamped into the observed [min, max] — so the relative error of any
    reported percentile is bounded by the bucket spacing (~4%), which is
    the standard trade (HdrHistogram's) for constant-memory percentile
    tracking under sustained load.

    The structure is a pure function of the multiset of added values:
    same observations, same buckets, same quantiles — in any order, on
    any machine.  That determinism is what makes loadgen runs
    comparable across shard counts and against the {!Bench_gate}
    baseline. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one latency in seconds.  NaN and negative values clamp to 0
    (they can only come from clock anomalies; losing them to bucket 0
    beats poisoning the sum). *)

val count : t -> int
val sum : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]] ([Invalid_argument] outside): the
    value at rank [ceil (q * count)], as the owning bucket's geometric
    midpoint clamped into [[min, max]].  0 on an empty histogram.  The
    extreme ranks are exact: [quantile t 0.0] is the observed minimum
    and [quantile t 1.0] the observed maximum. *)

val merge : t -> t -> t
(** Pointwise sum — neither argument is mutated.  Per-client histograms
    merge into the run-wide one. *)

val to_json : t -> Lb_observe.Json.t
(** [{count; sum_s; min_s; max_s; mean_s; p50_s; p90_s; p99_s;
    p999_s}] — the loadgen row schema in BENCH_service.json. *)
