(* The partition function must be cheap (it runs once per forwarded
   request) and stable across processes and OCaml versions — which the
   key's own MD5 hex prefix is, and Hashtbl.hash on arbitrary strings is
   only within one runtime version.  The hex parse is therefore the
   primary path; the Hashtbl fallback exists solely so foreign keys
   degrade to a valid owner instead of an exception. *)
let owner ~shards key =
  if shards < 1 then invalid_arg (Printf.sprintf "Shard.owner: shards %d < 1" shards);
  let prefix = String.sub key 0 (min 8 (String.length key)) in
  let value =
    match int_of_string_opt ("0x" ^ prefix) with
    | Some v -> v
    | None -> Hashtbl.hash key
  in
  value mod shards

let owner_of_request ~shards request = owner ~shards (Request.key request)

let worker_transport ~base i =
  match base with
  | Transport.Unix_socket path -> Transport.Unix_socket (Printf.sprintf "%s-shard-%d" path i)
  | Transport.Tcp { host; port } ->
    Transport.Tcp { host; port = (if port = 0 then 0 else port + 1 + i) }
