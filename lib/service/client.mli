(** The line-JSON client side of the service protocol.

    [call] opens one connection, writes every given JSON value as its own
    line, and reads exactly one response line per line sent — the server
    answers in order.  Reads are multiplexed through [Unix.select] with a
    deadline, so a wedged server yields [Error] rather than a hang.

    Every failure mode is a typed {!error}; no function here raises on
    malformed server behaviour (truncated line, non-JSON reply, a reply
    keyed by an unknown hash) — that is pinned by fuzz tests against
    deliberately broken servers in [suite_service]. *)

open Lb_observe

type error =
  | Connect of { socket : string; reason : string }
  | Send of string
  | Timeout of float  (** the configured deadline, in seconds. *)
  | Closed  (** the server closed the connection before every reply. *)
  | Bad_line of { line : string; reason : string }
      (** a complete reply line that is not valid JSON. *)
  | Unknown_key of { key : string; line : string }
      (** a reply whose ["key"] matches no request in the batch
          ({!request} only). *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val call :
  socket:string -> ?timeout_s:float -> Json.t list -> (Json.t list, error) result
(** Send the lines, await as many responses ([timeout_s] defaults to 60
    seconds of total wall-clock).  An incomplete trailing line at the point
    the expected reply count is reached is ignored — only complete
    (newline-terminated) lines count as replies. *)

val request :
  socket:string -> ?timeout_s:float -> Request.t list -> (Json.t list, error) result
(** {!call} on the canonical serialisations, then validate that every
    keyed reply's ["key"] belongs to the batch ([Unknown_key] otherwise).
    Replies arrive in request order. *)

val wait_ready : socket:string -> ?attempts:int -> ?interval_s:float -> unit -> bool
(** Poll until a [ping] round-trips (true) or [attempts] (default 100)
    spaced [interval_s] (default 0.05 s) are exhausted (false) — for
    scripts that just started a server in the background. *)
