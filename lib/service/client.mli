(** The line-JSON client side of the service protocol.

    [call] opens one connection, writes every given JSON value as its own
    line, and reads exactly one response line per line sent — the server
    answers in order.  Reads are multiplexed through [Unix.select] with a
    deadline, so a wedged server yields [Error] rather than a hang.

    Every failure mode is a typed {!error}; no function here raises on
    malformed server behaviour (truncated line, non-JSON reply, a reply
    keyed by an unknown hash) — that is pinned by fuzz tests against
    deliberately broken servers in [suite_service].

    The retrying layer ({!call_retry}, {!request_retry}) resends the whole
    batch on any failure — connect refusal, timeout, garbled line, dropped
    connection, or a typed ["overload"] refusal — under a bounded
    exponential-backoff {!retry} policy with {e deterministic} seeded
    jitter (the schedule is a pure function of the policy, so drills
    replay exactly).  Resending is safe because request keys are content
    hashes: a line the server already executed comes back as a cache hit,
    never a second execution.  A typed error surfaces only once the
    attempt budget is exhausted. *)

open Lb_observe

type error =
  | Connect of { address : string; reason : string }
      (** [address] is the transport's {!Transport.to_string}. *)
  | Send of string
  | Timeout of float  (** the configured deadline, in seconds. *)
  | Closed  (** the server closed the connection before every reply. *)
  | Bad_line of { line : string; reason : string }
      (** a complete reply line that is not valid JSON. *)
  | Unknown_key of { key : string; line : string }
      (** a reply whose ["key"] matches no request in the batch
          ({!request} only). *)
  | Overload of { attempts : int }
      (** the server refused at admission control on every one of
          [attempts] tries ({!call_retry}/{!request_retry} only). *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val call :
  transport:Transport.t -> ?timeout_s:float -> Json.t list -> (Json.t list, error) result
(** Dial [transport] (Unix socket or TCP, {!Transport.connect}), send the
    lines, await as many responses ([timeout_s] defaults to 60 seconds of
    total wall-clock).  An incomplete trailing line at the point the
    expected reply count is reached is ignored — only complete
    (newline-terminated) lines count as replies. *)

val request :
  transport:Transport.t -> ?timeout_s:float -> Request.t list -> (Json.t list, error) result
(** {!call} on the canonical serialisations, then validate that every
    keyed reply's ["key"] belongs to the batch ([Unknown_key] otherwise).
    Replies arrive in request order. *)

(** {1 Retrying} *)

type retry = {
  attempts : int;  (** total tries, including the first (≥ 1). *)
  base_delay_s : float;  (** backoff after the first failure. *)
  multiplier : float;  (** backoff growth per successive failure. *)
  max_delay_s : float;  (** backoff ceiling. *)
  jitter : float;
      (** spread factor: the delay is scaled by a deterministic uniform in
          [1 - jitter/2, 1 + jitter/2). *)
  seed : int;  (** drives the jitter hash — same seed, same schedule. *)
}

val default_retry : retry
(** [{ attempts = 6; base_delay_s = 0.05; multiplier = 2.0;
      max_delay_s = 1.0; jitter = 0.25; seed = 0 }] — six tries spanning
    roughly 1.6 s of cumulative backoff. *)

val backoff_s : retry -> failures:int -> float
(** The sleep before retrying after the [failures]-th consecutive failure
    (1-based; [Invalid_argument] below 1):
    [min max_delay_s (base_delay_s * multiplier^(failures-1))] scaled by
    the seeded jitter.  Pure — exposed so tests can pin the schedule. *)

val call_retry :
  transport:Transport.t ->
  ?timeout_s:float ->
  ?retry:retry ->
  Json.t list ->
  (Json.t list, error) result
(** {!call} under a retry policy ([timeout_s] is {e per attempt}).  Any
    failed attempt — and any attempt whose replies include a ["status":
    "overload"] refusal — increments [service.retries], records a
    [Service] retry trace event, sleeps {!backoff_s} and resends the
    whole batch.  After [retry.attempts] tries the last error (or
    {!Overload}) is returned. *)

val request_retry :
  transport:Transport.t ->
  ?timeout_s:float ->
  ?retry:retry ->
  Request.t list ->
  (Json.t list, error) result
(** {!request} with {!call_retry} underneath: retries, then validates
    reply keys against the batch. *)

val wait_ready :
  transport:Transport.t -> ?attempts:int -> ?interval_s:float -> unit -> bool
(** Poll until a [ping] round-trips (true) or [attempts] (default 100)
    spaced [interval_s] (default 0.05 s) are exhausted (false) — for
    scripts that just started a server in the background. *)
