(** The line-JSON client side of the service protocol.

    [call] opens one connection, writes every given JSON value as its own
    line, and reads exactly one response line per line sent — the server
    answers in order.  Reads are multiplexed through [Unix.select] with a
    deadline, so a wedged server yields [Error] rather than a hang. *)

open Lb_observe

val call :
  socket:string -> ?timeout_s:float -> Json.t list -> (Json.t list, string) result
(** Send the lines, await as many responses ([timeout_s] defaults to 60
    seconds of total wall-clock).  [Error] on connection failure, timeout,
    early disconnect or an unparseable response line. *)

val wait_ready : socket:string -> ?attempts:int -> ?interval_s:float -> unit -> bool
(** Poll until a [ping] round-trips (true) or [attempts] (default 100)
    spaced [interval_s] (default 0.05 s) are exhausted (false) — for
    scripts that just started a server in the background. *)
