(** Seeded chaos drills: end-to-end crash/recovery exercises over a real
    server, a real socket, a real journal — with invariants checked
    against a chaos-free clean run.

    One drill boots a supervised server ({!Server.supervise}) on a scratch
    transport — a Unix socket by default, or (with [~transport:`Tcp]) an
    ephemeral loopback TCP port resolved race-free through the server's
    [ready] callback — with a scratch cache journal, under one {!Chaos}
    plan, and pushes a fixed seeded workload of echo requests (duplicates
    included) through the retrying client.  Every invariant below is
    transport-independent: the same drill must pass over both.  It then asserts the robustness
    invariants of docs/ROBUSTNESS.md:

    - {e every} client request terminates — in an acknowledged payload
      identical to the clean run's, or (overload drill) in a typed error
      once the retry budget is spent; nothing hangs, nothing raises;
    - no acknowledged result is lost: after all injected crashes, the
      journal reloads into a cache {e byte-identical} to the clean run's
      canonical snapshot;
    - the plan actually fired ({!Chaos.injections} > 0) — a drill that
      injected nothing tested nothing;
    - the overload drill's flood was really refused
      ([service.overload_rejections] > 0).

    Drills are deterministic in [seed] (workload tags, retry jitter,
    garbled bytes); wall-clock fields aside, re-running a drill reproduces
    its report.  The [retry_attempts] and [supervise] knobs exist for
    negative controls: dropping the budget to 1 must fail the
    drop-connection drill, and disabling supervision must fail the crash
    drills — pinned in the chaos test suite, so the drills are known to be
    able to fail. *)

type report = {
  drill : string;
  seed : int;
  transport : string;  (** ["unix"] or ["tcp"]. *)
  passed : bool;
  failures : string list;  (** empty iff [passed]. *)
  requests : int;  (** workload requests sent (flood batch excluded). *)
  acked : int;  (** requests that ended in a verified ["ok"]. *)
  retries : int;  (** client resends ([service.retries]). *)
  recoveries : int;  (** server restarts ([service.recoveries]). *)
  overload_rejections : int;  (** admission refusals ([service.overload_rejections]). *)
  injections : int;  (** chaos firings ({!Chaos.injections}). *)
  elapsed_s : float;
}

val names : string list
(** The drill roster: [short-write], [drop-connection], [garble], [delay],
    [crash-mid-batch], [journal-truncate], [overload]. *)

val run :
  ?seed:int ->
  ?retry_attempts:int ->
  ?supervise:bool ->
  ?transport:[ `Unix | `Tcp ] ->
  string ->
  (report, string) result
(** Run one drill by name ([Error] for an unknown one).  Defaults:
    [seed = 1], [retry_attempts = 8], [supervise = true],
    [transport = `Unix].  Runs inside a fresh metrics registry, so
    [retries] counts exactly this drill. *)

val run_all :
  ?seed:int ->
  ?retry_attempts:int ->
  ?supervise:bool ->
  ?transport:[ `Unix | `Tcp ] ->
  unit ->
  report list
(** Every drill in roster order, each in its own registry. *)

val report_json : report -> Lb_observe.Json.t
(** The drill-report schema: every {!report} field, verbatim. *)

val pp_report : Format.formatter -> report -> unit
(** One line per drill ([PASS]/[FAIL] plus the counters), with failure
    bullets underneath when failing. *)
