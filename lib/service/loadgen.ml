open Lb_observe

type config = {
  clients : int;
  requests_per_client : int;
  warmup : int;
  hit_ratio : float;
  hot_tags : int;
  size : int;
  work : int;
  experiments : bool;
  seed : int;
  timeout_s : float;
}

let default =
  {
    clients = 4;
    requests_per_client = 100;
    warmup = 10;
    hit_ratio = 0.5;
    hot_tags = 16;
    size = 256;
    work = 2000;
    experiments = false;
    seed = 1;
    timeout_s = 30.0;
  }

let validate cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen: clients < 1";
  if cfg.requests_per_client < 1 then invalid_arg "Loadgen: requests_per_client < 1";
  if cfg.warmup < 0 then invalid_arg "Loadgen: warmup < 0";
  if cfg.hit_ratio < 0.0 || cfg.hit_ratio > 1.0 then
    invalid_arg "Loadgen: hit_ratio outside [0,1]";
  if cfg.hot_tags < 1 then invalid_arg "Loadgen: hot_tags < 1";
  if cfg.size < 0 then invalid_arg "Loadgen: size < 0";
  if cfg.work < 0 then invalid_arg "Loadgen: work < 0";
  if cfg.timeout_s <= 0.0 then invalid_arg "Loadgen: timeout_s <= 0"

(* Deterministic draws: a uniform in [0,1) hashed from (seed, client,
   index, salt) — the same trick as the client's retry jitter, so the
   whole request schedule is a pure function of the config. *)
let uniform cfg ~client ~index ~salt =
  float_of_int (Hashtbl.hash (0x10AD6E, cfg.seed, client, index, salt) land 0xFFFFFF)
  /. 16777216.0

let experiment_pool = [| "e1"; "e2"; "e5" |]

let request_at cfg ~client ~index =
  if cfg.experiments && uniform cfg ~client ~index ~salt:3 < 0.02 then
    let k =
      int_of_float (uniform cfg ~client ~index ~salt:4 *. float_of_int (Array.length experiment_pool))
    in
    Request.experiment ~quick:true experiment_pool.(min k (Array.length experiment_pool - 1))
  else if uniform cfg ~client ~index ~salt:0 < cfg.hit_ratio then
    let k = int_of_float (uniform cfg ~client ~index ~salt:1 *. float_of_int cfg.hot_tags) in
    Request.echo ~size:cfg.size ~work:cfg.work
      (Printf.sprintf "lg-s%d-hot-%d" cfg.seed (min k (cfg.hot_tags - 1)))
  else
    Request.echo ~size:cfg.size ~work:cfg.work
      (Printf.sprintf "lg-s%d-c%d-i%d" cfg.seed client index)

let schedule cfg ~client =
  validate cfg;
  List.init (cfg.warmup + cfg.requests_per_client) (fun index -> request_at cfg ~client ~index)

(* ---- the closed-loop driver ---- *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.single_write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Await one complete reply line, keeping any surplus bytes buffered for
   the next call on the same connection. *)
let read_line fd buf ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let has_line () = String.contains (Buffer.contents buf) '\n' in
  let failed = ref None in
  while !failed = None && not (has_line ()) do
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then failed := Some "timeout"
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> failed := Some "timeout"
      | _ -> (
        let bytes = Bytes.create 65536 in
        match Unix.read fd bytes 0 (Bytes.length bytes) with
        | 0 -> failed := Some "closed"
        | n -> Buffer.add_subbytes buf bytes 0 n
        | exception Unix.Unix_error (e, _, _) -> failed := Some (Unix.error_message e))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  match !failed with
  | Some reason -> Error reason
  | None ->
    let data = Buffer.contents buf in
    let cut = String.index data '\n' in
    Buffer.clear buf;
    Buffer.add_substring buf data (cut + 1) (String.length data - cut - 1);
    Ok (String.sub data 0 cut)

type result = {
  config : config;
  shards : int;
  measured : int;
  errors : int;
  elapsed_s : float;
  throughput_rps : float;
  latency : Histogram.t;
}

(* One client: a persistent connection (redialed once per failed call)
   driving its schedule closed-loop — the next request leaves only after
   the previous reply landed. *)
let client_loop ~transport cfg client =
  let requests = List.init (cfg.warmup + cfg.requests_per_client) (fun i -> request_at cfg ~client ~index:i) in
  let hist = Histogram.create () in
  let errors = ref 0 in
  let fd = ref None in
  let buf = Buffer.create 4096 in
  let ensure () =
    match !fd with
    | Some f -> Ok f
    | None -> (
      match Transport.connect transport with
      | Ok f ->
        fd := Some f;
        Ok f
      | Error reason -> Error reason)
  in
  let drop () =
    (match !fd with
    | Some f -> ( try Unix.close f with Unix.Unix_error _ -> ())
    | None -> ());
    fd := None;
    Buffer.clear buf
  in
  let call req =
    let line = Json.to_string (Request.to_json req) ^ "\n" in
    let attempt () =
      match ensure () with
      | Error reason -> Error reason
      | Ok f -> (
        try
          write_all f line;
          read_line f buf ~timeout_s:cfg.timeout_s
        with Unix.Unix_error (e, _, _) ->
          drop ();
          Error (Unix.error_message e))
    in
    match attempt () with
    | Ok reply -> Ok reply
    | Error _ ->
      drop ();
      attempt ()
  in
  let ok_reply reply =
    match Json.parse reply with
    | Ok json -> (
      match Option.bind (Json.member "status" json) Json.to_str_opt with
      | Some "ok" -> true
      | _ -> false)
    | Error _ -> false
  in
  let measured_from = ref (Unix.gettimeofday ()) in
  List.iteri
    (fun i req ->
      if i = cfg.warmup then measured_from := Unix.gettimeofday ();
      let t = Unix.gettimeofday () in
      let outcome = call req in
      let dt = Unix.gettimeofday () -. t in
      let ok = match outcome with Ok reply -> ok_reply reply | Error _ -> false in
      if i >= cfg.warmup then begin
        Histogram.add hist dt;
        if not ok then incr errors
      end)
    requests;
  drop ();
  (hist, !errors, !measured_from, Unix.gettimeofday ())

let run ~transport ?(shards = 1) cfg =
  validate cfg;
  let domains =
    List.init cfg.clients (fun c -> Domain.spawn (fun () -> client_loop ~transport cfg c))
  in
  let outcomes = List.map Domain.join domains in
  let latency =
    List.fold_left (fun acc (h, _, _, _) -> Histogram.merge acc h) (Histogram.create ()) outcomes
  in
  let errors = List.fold_left (fun acc (_, e, _, _) -> acc + e) 0 outcomes in
  let started = List.fold_left (fun acc (_, _, t, _) -> Float.min acc t) infinity outcomes in
  let finished = List.fold_left (fun acc (_, _, _, t) -> Float.max acc t) neg_infinity outcomes in
  let elapsed_s = Float.max 1e-9 (finished -. started) in
  let measured = Histogram.count latency in
  {
    config = cfg;
    shards;
    measured;
    errors;
    elapsed_s;
    throughput_rps = float_of_int measured /. elapsed_s;
    latency;
  }

let config_json cfg =
  Json.Obj
    [
      ("clients", Json.Int cfg.clients);
      ("requests_per_client", Json.Int cfg.requests_per_client);
      ("warmup", Json.Int cfg.warmup);
      ("hit_ratio", Json.Float cfg.hit_ratio);
      ("hot_tags", Json.Int cfg.hot_tags);
      ("size", Json.Int cfg.size);
      ("work", Json.Int cfg.work);
      ("experiments", Json.Bool cfg.experiments);
      ("seed", Json.Int cfg.seed);
      ("timeout_s", Json.Float cfg.timeout_s);
    ]

let result_json r =
  Json.Obj
    [
      ("kind", Json.Str "loadgen");
      ("shards", Json.Int r.shards);
      ("config", config_json r.config);
      ("measured", Json.Int r.measured);
      ("errors", Json.Int r.errors);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("latency", Histogram.to_json r.latency);
    ]

(* Bench_gate-compatible rows: percentiles (and the mean service rate)
   as ns_per_run, named by shard count so 1-shard and N-shard runs land
   as distinct comparable series. *)
let bench_payload r =
  let ns q = Json.Float (Histogram.quantile r.latency q *. 1e9) in
  let row name v = Json.Obj [ ("name", Json.Str name); ("ns_per_run", v) ] in
  let prefix = Printf.sprintf "loadgen/%dshard" r.shards in
  Json.Obj
    [
      ( "benchmarks",
        Json.Arr
          [
            row (prefix ^ "/p50") (ns 0.5);
            row (prefix ^ "/p99") (ns 0.99);
            row (prefix ^ "/p999") (ns 0.999);
            row (prefix ^ "/mean")
              (Json.Float
                 (if r.measured = 0 then 0.0
                  else Histogram.sum r.latency /. float_of_int r.measured *. 1e9));
          ] );
      ("loadgen", result_json r);
    ]

let pp_result ppf r =
  let q p = Histogram.quantile r.latency p *. 1e3 in
  Format.fprintf ppf
    "%d shard(s): %d requests in %.2fs = %.0f req/s  p50=%.2fms p99=%.2fms p999=%.2fms errors=%d"
    r.shards r.measured r.elapsed_s r.throughput_rps (q 0.5) (q 0.99) (q 0.999) r.errors
