open Lb_observe

type stats = { forwarded : int; batches : int; clients : int; reconnects : int }

(* One worker connection: dialed lazily, redialed on failure, with a
   receive buffer for reply lines that persists across batches. *)
type wire = {
  shard : int;
  wtransport : Transport.t;
  mutable wfd : Unix.file_descr option;
  wbuf : Buffer.t;
  mutable wforwarded : int;
}

type client = { fd : Unix.file_descr; buf : Buffer.t }

(* Same line discipline as Server: split complete lines off a buffer,
   keep the trailing partial. *)
let drain_buffer buf =
  let data = Buffer.contents buf in
  let lines = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub data !start (i - !start) :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear buf;
  Buffer.add_substring buf data !start (String.length data - !start);
  List.rev !lines

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.single_write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let error_response msg =
  Json.Obj [ ("status", Json.Str "error"); ("error", Json.Str msg) ]

let wire_drop w =
  (match w.wfd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  w.wfd <- None;
  Buffer.clear w.wbuf

let wire_fd w =
  match w.wfd with
  | Some fd -> Ok fd
  | None -> (
    match Transport.connect w.wtransport with
    | Ok fd ->
      w.wfd <- Some fd;
      Ok fd
    | Error reason -> Error reason)

let reconnect_note w reason =
  Metrics.incr (Metrics.current ()) "service.reconnects";
  Tracer.record
    (Event.Service
       { op = "reconnect"; detail = Printf.sprintf "shard %d: %s" w.shard reason })

(* Send the group's lines down the worker wire; [Error] drops the
   connection so the next attempt redials. *)
let send w lines =
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  match wire_fd w with
  | Error reason -> Error reason
  | Ok fd -> (
    try
      write_all fd payload;
      Ok fd
    with Unix.Unix_error (e, _, _) ->
      wire_drop w;
      Error (Unix.error_message e))

let send_retry w lines =
  match send w lines with
  | Ok fd -> Ok fd
  | Error reason ->
    (* Redial once and resend the whole group.  Safe: request keys are
       content hashes, so a line the worker already executed replays as a
       cache hit, never a second execution. *)
    reconnect_note w reason;
    send w lines

(* Await [n] complete reply lines on the wire. *)
let read_lines w fd n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let count () =
    let k = ref 0 in
    String.iter (fun c -> if c = '\n' then incr k) (Buffer.contents w.wbuf);
    !k
  in
  let failed = ref None in
  while !failed = None && count () < n do
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then failed := Some (Printf.sprintf "timed out after %.1fs" timeout_s)
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> failed := Some (Printf.sprintf "timed out after %.1fs" timeout_s)
      | _ -> (
        let bytes = Bytes.create 65536 in
        match Unix.read fd bytes 0 (Bytes.length bytes) with
        | 0 -> failed := Some "worker closed the connection"
        | k -> Buffer.add_subbytes w.wbuf bytes 0 k
        | exception Unix.Unix_error (e, _, _) -> failed := Some (Unix.error_message e))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  match !failed with
  | Some reason -> Error reason
  | None ->
    let rec take k acc lines =
      if k = 0 then (List.rev acc, lines)
      else
        match lines with
        | l :: rest -> take (k - 1) (l :: acc) rest
        | [] -> (List.rev acc, [])
    in
    let complete = drain_buffer w.wbuf in
    let wanted, surplus = take n [] complete in
    (* A worker never volunteers lines, but if one ever did, dropping the
       surplus beats misattributing it to the next batch. *)
    ignore surplus;
    Ok wanted

let collect w fd lines ~timeout_s =
  match read_lines w fd (List.length lines) ~timeout_s with
  | Ok replies -> Ok replies
  | Error reason -> (
    wire_drop w;
    reconnect_note w reason;
    match send w lines with
    | Error reason -> Error reason
    | Ok fd -> read_lines w fd (List.length lines) ~timeout_s)

let shards_json wires transport =
  Json.Obj
    [
      ("status", Json.Str "ok");
      ("op", Json.Str "shards");
      ( "data",
        Json.Obj
          [
            ("router", Json.Str (Transport.to_string transport));
            ("shards", Json.Int (List.length wires));
            ( "workers",
              Json.Arr
                (List.map
                   (fun w ->
                     let metrics =
                       match
                         Client.call ~transport:w.wtransport ~timeout_s:2.0
                           [ Json.Obj [ ("op", Json.Str "metrics") ] ]
                       with
                       | Ok [ reply ] ->
                         Option.value ~default:Json.Null (Json.member "data" reply)
                       | _ -> Json.Null
                     in
                     Json.Obj
                       [
                         ("shard", Json.Int w.shard);
                         ("address", Json.Str (Transport.to_string w.wtransport));
                         ("forwarded", Json.Int w.wforwarded);
                         ("connected", Json.Bool (w.wfd <> None));
                         ("metrics", metrics);
                       ])
                   wires) );
          ] );
    ]

let route ~transport ~workers ?max_requests ?(worker_timeout_s = 600.0) ?ready
    ?(log = fun _ -> ()) () =
  if workers = [] then invalid_arg "Router.route: no workers";
  let wires =
    List.mapi
      (fun shard wtransport ->
        { shard; wtransport; wfd = None; wbuf = Buffer.create 4096; wforwarded = 0 })
      workers
  in
  let listen_fd, transport = Transport.listen transport in
  Option.iter (fun f -> f transport) ready;
  let stop = ref false in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let on_stop = Sys.Signal_handle (fun _ -> stop := true) in
  let old_int = Sys.signal Sys.sigint on_stop in
  let old_term = Sys.signal Sys.sigterm on_stop in
  let clients = ref [] in
  let forwarded = ref 0 and batches = ref 0 and accepted = ref 0 and reconnects0 = ref 0 in
  reconnects0 := Metrics.counter_value (Metrics.current ()) "service.reconnects";
  let close_client c =
    clients := List.filter (fun c' -> c'.fd != c.fd) !clients;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let write_json c json =
    try write_all c.fd (Json.to_string json ^ "\n") with Unix.Unix_error _ -> ()
  in
  (* Forward a shutdown to every worker (best-effort, fresh connections:
     the persistent wires may be mid-conversation). *)
  let shutdown_workers () =
    List.iter
      (fun w ->
        try
          ignore
            (Client.call ~transport:w.wtransport ~timeout_s:2.0
               [ Json.Obj [ ("op", Json.Str "shutdown") ] ])
        with _ -> ())
      wires
  in
  let handle_line c line queue =
    if String.trim line = "" then queue
    else
      match Json.parse line with
      | Error msg ->
        write_json c (error_response ("bad request line: " ^ msg));
        queue
      | Ok json -> (
        match Option.bind (Json.member "op" json) Json.to_str_opt with
        | Some "ping" ->
          write_json c (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "ping") ]);
          queue
        | Some "metrics" ->
          write_json c
            (Json.Obj
               [
                 ("status", Json.Str "ok");
                 ("op", Json.Str "metrics");
                 ("data", Metrics.to_json (Metrics.current ()));
               ]);
          queue
        | Some "shards" ->
          write_json c (shards_json wires transport);
          queue
        | Some "shutdown" ->
          shutdown_workers ();
          write_json c (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "shutdown") ]);
          stop := true;
          queue
        | Some other ->
          write_json c (error_response (Printf.sprintf "unknown op %S" other));
          queue
        | None -> (
          match Request.of_json json with
          | Ok request ->
            (c, request) :: queue
          | Error msg ->
            write_json c (error_response msg);
            queue))
  in
  log
    (Printf.sprintf "routing %s over %d shard(s): %s" (Transport.to_string transport)
       (List.length wires)
       (String.concat ", " (List.map (fun w -> Transport.to_string w.wtransport) wires)));
  let serve_batch queue =
    incr batches;
    let m = Metrics.current () in
    let shards = List.length wires in
    (* Group by owning shard, preserving per-shard arrival order.  The
       canonical serialisation is what goes down the wire, so a worker's
       reply key always matches what the router hashed. *)
    let groups =
      List.filter_map
        (fun w ->
          match
            List.filter (fun (_, req) -> Shard.owner_of_request ~shards req = w.shard) queue
          with
          | [] -> None
          | items ->
            Some (w, items, List.map (fun (_, req) -> Json.to_string (Request.to_json req)) items))
        wires
    in
    (* Phase 1 — send every group before reading any reply, so the
       workers compute their slices concurrently. *)
    let sent = List.map (fun (w, items, lines) -> (w, items, lines, send_retry w lines)) groups in
    (* Phase 2 — collect, in shard order. *)
    List.iter
      (fun (w, items, lines, st) ->
        let replies =
          match st with
          | Error reason -> Error reason
          | Ok fd -> collect w fd lines ~timeout_s:worker_timeout_s
        in
        match replies with
        | Ok replies ->
          w.wforwarded <- w.wforwarded + List.length items;
          forwarded := !forwarded + List.length items;
          Metrics.incr ~by:(List.length items) m "service.forwarded";
          Metrics.incr ~by:(List.length items) m
            (Printf.sprintf "service.forwarded_shard%d" w.shard);
          List.iter2
            (fun (c, _) reply ->
              try write_all c.fd (reply ^ "\n") with Unix.Unix_error _ -> ())
            items replies
        | Error reason ->
          Metrics.incr ~by:(List.length items) m "service.router_errors";
          Tracer.record
            (Event.Service
               { op = "route-error"; detail = Printf.sprintf "shard %d: %s" w.shard reason });
          List.iter
            (fun (c, req) ->
              write_json c
                (Json.Obj
                   [
                     ("status", Json.Str "error");
                     ("key", Json.Str (Request.key req));
                     ( "error",
                       Json.Str (Printf.sprintf "shard %d unavailable: %s" w.shard reason) );
                   ]))
            items)
      sent;
    Metrics.incr m "service.router_batches";
    log
      (Printf.sprintf "batch of %d across %d shard(s) (%d forwarded total)" (List.length queue)
         (List.length groups) !forwarded)
  in
  (try
     while not !stop do
       let fds = listen_fd :: List.map (fun c -> c.fd) !clients in
       let readable =
         match Unix.select fds [] [] 0.25 with
         | readable, _, _ -> readable
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
       in
       if List.memq listen_fd readable then begin
         match Unix.accept listen_fd with
         | fd, _ ->
           Transport.configure transport fd;
           incr accepted;
           clients := { fd; buf = Buffer.create 256 } :: !clients
         | exception Unix.Unix_error _ -> ()
       end;
       let queue = ref [] in
       List.iter
         (fun c ->
           if List.memq c.fd readable then begin
             let bytes = Bytes.create 65536 in
             match Unix.read c.fd bytes 0 (Bytes.length bytes) with
             | 0 -> close_client c
             | n ->
               Buffer.add_subbytes c.buf bytes 0 n;
               List.iter (fun line -> queue := handle_line c line !queue) (drain_buffer c.buf)
             | exception Unix.Unix_error _ -> close_client c
           end)
         !clients;
       let queue = List.rev !queue in
       if queue <> [] then begin
         serve_batch queue;
         match max_requests with
         | Some limit when !forwarded >= limit ->
           shutdown_workers ();
           stop := true
         | _ -> ()
       end
     done
   with exn ->
     List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
     List.iter wire_drop wires;
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Transport.cleanup transport;
     Sys.set_signal Sys.sigpipe old_pipe;
     Sys.set_signal Sys.sigint old_int;
     Sys.set_signal Sys.sigterm old_term;
     raise exn);
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  List.iter wire_drop wires;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Transport.cleanup transport;
  Sys.set_signal Sys.sigpipe old_pipe;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  let reconnects =
    Metrics.counter_value (Metrics.current ()) "service.reconnects" - !reconnects0
  in
  log (Printf.sprintf "router shutdown after %d forwarded in %d batches" !forwarded !batches);
  { forwarded = !forwarded; batches = !batches; clients = !accepted; reconnects }

(* ---- the in-process fleet ---- *)

type fleet = {
  address : Transport.t;
  shards : Transport.t list;
  stop : unit -> stats;
}

let launch_fleet ~shards ~transport ~executor_of ?max_queue ?(log = fun _ -> ()) () =
  if shards < 1 then invalid_arg (Printf.sprintf "Router.launch_fleet: shards %d < 1" shards);
  let worker_ready = Array.init shards (fun _ -> Atomic.make None) in
  let worker_domains =
    List.init shards (fun i ->
        let listen = Shard.worker_transport ~base:transport i in
        Domain.spawn (fun () ->
            Metrics.with_registry (Metrics.create ()) (fun () ->
                try
                  ignore
                    (Server.supervise ~transport:listen
                       ~executor_of:(fun () -> executor_of i)
                       ?max_queue
                       ~ready:(fun t -> Atomic.set worker_ready.(i) (Some t))
                       ~log:(fun line -> log (Printf.sprintf "[shard %d] %s" i line))
                       ())
                with _ -> ())))
  in
  let rec await what cell k =
    match Atomic.get cell with
    | Some t -> t
    | None ->
      if k = 0 then failwith (Printf.sprintf "Router.launch_fleet: %s never bound" what)
      else begin
        Unix.sleepf 0.01;
        await what cell (k - 1)
      end
  in
  let workers = List.init shards (fun i -> await (Printf.sprintf "shard %d" i) worker_ready.(i) 1000) in
  let router_ready = Atomic.make None in
  let router_stats = Atomic.make None in
  let router_domain =
    Domain.spawn (fun () ->
        Metrics.with_registry (Metrics.create ()) (fun () ->
            try
              let s =
                route ~transport ~workers
                  ~ready:(fun t -> Atomic.set router_ready (Some t))
                  ~log ()
              in
              Atomic.set router_stats (Some s)
            with _ -> ()))
  in
  let address = await "router" router_ready 1000 in
  let stop () =
    (try
       ignore
         (Client.call ~transport:address ~timeout_s:5.0
            [ Json.Obj [ ("op", Json.Str "shutdown") ] ])
     with _ -> ());
    Domain.join router_domain;
    List.iter Domain.join worker_domains;
    match Atomic.get router_stats with
    | Some s -> s
    | None -> { forwarded = 0; batches = 0; clients = 0; reconnects = 0 }
  in
  { address; shards = workers; stop }
