open Lb_observe

type error =
  | Connect of { address : string; reason : string }
  | Send of string
  | Timeout of float
  | Closed
  | Bad_line of { line : string; reason : string }
  | Unknown_key of { key : string; line : string }
  | Overload of { attempts : int }

let clip line = if String.length line <= 120 then line else String.sub line 0 117 ^ "..."

let error_message = function
  | Connect { address; reason } -> Printf.sprintf "cannot connect to %s: %s" address reason
  | Send reason -> Printf.sprintf "send failed: %s" reason
  | Timeout s -> Printf.sprintf "timed out after %.1fs" s
  | Closed -> "server closed the connection early"
  | Bad_line { line; reason } ->
    Printf.sprintf "bad response line %S: %s" (clip line) reason
  | Unknown_key { key; line } ->
    Printf.sprintf "response key %S matches no request in the batch (%s)" key (clip line)
  | Overload { attempts } ->
    Printf.sprintf "server overloaded (still refusing after %d attempts)" attempts

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

let call ~transport ?(timeout_s = 60.0) lines =
  match Transport.connect transport with
  | Error reason ->
    Error (Connect { address = Transport.to_string transport; reason })
  | Ok fd -> (
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    (
      let payload =
        String.concat "" (List.map (fun json -> Json.to_string json ^ "\n") lines)
      in
      match Unix.write_substring fd payload 0 (String.length payload) with
      | exception Unix.Unix_error (e, _, _) ->
        finally ();
        Error (Send (Unix.error_message e))
      | _ ->
        let deadline = Unix.gettimeofday () +. timeout_s in
        let wanted = List.length lines in
        let buf = Buffer.create 4096 in
        let failed = ref None in
        let count_newlines () =
          let n = ref 0 in
          String.iter (fun c -> if c = '\n' then incr n) (Buffer.contents buf);
          !n
        in
        while !failed = None && count_newlines () < wanted do
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then failed := Some (Timeout timeout_s)
          else
            match Unix.select [ fd ] [] [] remaining with
            | [], _, _ -> failed := Some (Timeout timeout_s)
            | _ -> (
              let bytes = Bytes.create 65536 in
              match Unix.read fd bytes 0 (Bytes.length bytes) with
              | 0 -> failed := Some Closed
              | n -> Buffer.add_subbytes buf bytes 0 n
              | exception Unix.Unix_error (e, _, _) ->
                failed := Some (Send (Unix.error_message e)))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        finally ();
        (match !failed with
        | Some e -> Error e
        | None ->
          (* A truncated tail (no trailing newline yet when the count was
             satisfied) is kept: only complete lines were counted, so every
             kept line is exactly one server reply. *)
          let raw =
            String.split_on_char '\n' (Buffer.contents buf)
            |> List.filter (fun l -> String.trim l <> "")
          in
          let rec parse_all acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest -> (
              match Json.parse line with
              | Ok json -> parse_all (json :: acc) rest
              | Error reason -> Error (Bad_line { line; reason }))
          in
          (match parse_all [] raw with
          | Error e -> Error e
          | Ok parsed -> Ok (List.filteri (fun i _ -> i < wanted) parsed)))))

let reply_key reply = Option.bind (Json.member "key" reply) Json.to_str_opt

let validate_keys ~requests replies =
  let keys = List.map Request.key requests in
  let stray =
    List.find_opt
      (fun reply ->
        match reply_key reply with Some k -> not (List.mem k keys) | None -> false)
      replies
  in
  match stray with
  | Some reply ->
    let key = Option.value ~default:"?" (reply_key reply) in
    Error (Unknown_key { key; line = Json.to_string reply })
  | None -> Ok replies

let request ~transport ?timeout_s requests =
  match call ~transport ?timeout_s (List.map Request.to_json requests) with
  | Error e -> Error e
  | Ok replies -> validate_keys ~requests replies

(* ---- the retrying client ---- *)

type retry = {
  attempts : int;
  base_delay_s : float;
  multiplier : float;
  max_delay_s : float;
  jitter : float;
  seed : int;
}

let default_retry =
  { attempts = 6; base_delay_s = 0.05; multiplier = 2.0; max_delay_s = 1.0; jitter = 0.25;
    seed = 0 }

(* Deterministic jitter: a uniform in [0,1) hashed from (seed, failures)
   rather than drawn from threaded RNG state, so a retry schedule is a pure
   function of the policy — replaying a drill replays its exact sleeps. *)
let backoff_s r ~failures =
  if failures < 1 then invalid_arg "Client.backoff_s: failures < 1";
  let base = r.base_delay_s *. (r.multiplier ** float_of_int (failures - 1)) in
  let capped = Float.min r.max_delay_s base in
  let u =
    float_of_int (Hashtbl.hash (0x51CA05, r.seed, failures) land 0xFFFFFF) /. 16777216.0
  in
  capped *. (1.0 -. (r.jitter /. 2.0) +. (r.jitter *. u))

let is_overload reply =
  match Option.bind (Json.member "status" reply) Json.to_str_opt with
  | Some "overload" -> true
  | _ -> false

let call_retry ~transport ?timeout_s ?(retry = default_retry) lines =
  if retry.attempts < 1 then invalid_arg "Client.call_retry: retry.attempts < 1";
  (* Safe to resend wholesale: request keys are content hashes, so a
     repeated line is a cache hit (or an in-flight dedup), never a second
     execution — pinned by the never-double-executes test. *)
  let rec attempt k =
    let outcome =
      match call ~transport ?timeout_s lines with
      | Ok replies when List.exists is_overload replies ->
        Stdlib.Error (Overload { attempts = k })
      | (Ok _ | Error _) as r -> r
    in
    match outcome with
    | Ok replies -> Ok replies
    | Error e ->
      if k >= retry.attempts then
        Error (match e with Overload _ -> Overload { attempts = retry.attempts } | e -> e)
      else begin
        Metrics.incr (Metrics.current ()) "service.retries";
        Tracer.record
          (Event.Service
             { op = "retry"; detail = Printf.sprintf "attempt %d: %s" k (error_message e) });
        Unix.sleepf (backoff_s retry ~failures:k);
        attempt (k + 1)
      end
  in
  attempt 1

let request_retry ~transport ?timeout_s ?retry requests =
  match call_retry ~transport ?timeout_s ?retry (List.map Request.to_json requests) with
  | Error e -> Error e
  | Ok replies -> validate_keys ~requests replies

let wait_ready ~transport ?(attempts = 100) ?(interval_s = 0.05) () =
  let ping = Json.Obj [ ("op", Json.Str "ping") ] in
  let rec go k =
    if k = 0 then false
    else
      match call ~transport ~timeout_s:1.0 [ ping ] with
      | Ok _ -> true
      | Error _ ->
        Unix.sleepf interval_s;
        go (k - 1)
  in
  go attempts
