open Lb_observe

let call ~socket ?(timeout_s = 60.0) lines =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      finally ();
      Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
    | () -> (
      let payload =
        String.concat "" (List.map (fun json -> Json.to_string json ^ "\n") lines)
      in
      match Unix.write_substring fd payload 0 (String.length payload) with
      | exception Unix.Unix_error (e, _, _) ->
        finally ();
        Error (Unix.error_message e)
      | _ ->
        let deadline = Unix.gettimeofday () +. timeout_s in
        let wanted = List.length lines in
        let buf = Buffer.create 4096 in
        let received = ref [] and failed = ref None in
        let count_newlines () =
          let n = ref 0 in
          String.iter (fun c -> if c = '\n' then incr n) (Buffer.contents buf);
          !n
        in
        while
          !failed = None
          && count_newlines () < wanted
        do
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then
            failed := Some (Printf.sprintf "timed out after %.1fs" timeout_s)
          else
            match Unix.select [ fd ] [] [] remaining with
            | [], _, _ -> failed := Some (Printf.sprintf "timed out after %.1fs" timeout_s)
            | _ -> (
              let bytes = Bytes.create 65536 in
              match Unix.read fd bytes 0 (Bytes.length bytes) with
              | 0 -> failed := Some "server closed the connection early"
              | n -> Buffer.add_subbytes buf bytes 0 n
              | exception Unix.Unix_error (e, _, _) ->
                failed := Some (Unix.error_message e))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        finally ();
        (match !failed with
        | Some msg -> Error msg
        | None ->
          let parsed =
            String.split_on_char '\n' (Buffer.contents buf)
            |> List.filter (fun l -> String.trim l <> "")
            |> List.map Json.parse
          in
          (try
             received := List.map (function Ok j -> j | Error e -> failwith e) parsed;
             Ok (List.filteri (fun i _ -> i < wanted) !received)
           with Failure msg -> Error ("bad response line: " ^ msg)))))

let wait_ready ~socket ?(attempts = 100) ?(interval_s = 0.05) () =
  let ping = Json.Obj [ ("op", Json.Str "ping") ] in
  let rec go k =
    if k = 0 then false
    else
      match call ~socket ~timeout_s:1.0 [ ping ] with
      | Ok _ -> true
      | Error _ ->
        Unix.sleepf interval_s;
        go (k - 1)
  in
  go attempts
