(** Typed concurrent histories with pending operations.

    The simple checker in {!Lb_objects.History} only handles {e complete}
    histories (every operation has a response).  Conformance checking under
    fault plans needs the general form: an operation that was invoked but
    never responded (a give-up, a crash, or fuel exhaustion) is {e pending}
    — it may or may not have taken effect, and a linearizability checker
    must consider both.

    Histories are built either from a {!Lb_universal.Harness.result} or by
    tapping the op-lifecycle events ([Op_invoked] / [Op_completed]) a
    {!Lb_observe.Tracer} recorded during the run; the two agree on every
    field except the clock domain (harness clock vs tracer sequence
    numbers), which induce the same real-time precedence order. *)

open Lb_memory

type outcome =
  | Completed of { response : Value.t; responded : int }
  | Pending  (** Invoked, no response: the operation's effect is optional. *)

type op = {
  pid : int;
  seq : int;
  op : Value.t;
  invoked : int;
  outcome : outcome;
  ghost : bool;
      (** A ghost is the extra optional occurrence contributed by a
          crash-recovery restart: the lost attempt may have applied its
          effect before the crash, so the operation can take effect twice. *)
}

type t = op list
(** In ascending invocation order. *)

val completed : t -> op list
val pending : t -> op list

val of_result : Lb_universal.Harness.result -> t
(** Completed stats become completed ops; give-ups and operations still in
    flight when the run ended (crash-stopped pids, fuel exhaustion) become
    pending ops; each entry of [result.restarted] adds one ghost pending
    op. *)

val of_events : ?restarted:(int * int) list -> Lb_observe.Event.stamped list -> t
(** Build a history from a recorded trace ([Tracer.events]).  Timestamps are
    tracer sequence numbers.  [restarted] adds ghost occurrences exactly as
    {!of_result} does (the trace alone does not say which recoveries
    re-invoked an operation). *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
