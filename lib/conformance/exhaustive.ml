open Lb_universal
open Lb_faults
module Sched_tree = Lb_check.Sched_tree
module Metrics = Lb_observe.Metrics

(* Is schedule reduction sound for this plan?  Injectors are driven by the
   global step clock, so under a non-empty plan commuting two steps can
   move a step in or out of a fault window: every step must then be
   treated as dependent with everything (no reduction, but still an
   exhaustive walk of the bounded schedule space). *)
let pure plan = Fault_plan.injectors plan = []

type cert = {
  xc_construction : string;
  xc_object_type : string;
  xc_plan : string;
  xc_model : Lb_memory.Memory_model.t;
  xc_n : int;
  xc_ops : int;
  xc_bounds : Sched_tree.bounds;
  xc_stats : Sched_tree.stats;
  xc_degraded : int;
  xc_counterexample : Fuzz.counterexample option;
}

let cert_ok c = c.xc_counterexample = None

(* One schedule under the DPOR oracle.  The oracle's [choose] needs each
   step's dependency footprint, which is only observable inside the run:
   the registers come from the chosen process's pending invocation (tapped
   from the fault-filter hook), and whether the step was an operation
   boundary — response published, give-up, or crash restart, all of which
   must stay ordered against everything because commuting them changes
   history precedence — only shows in the harness metrics after the step
   executed.  So each decision commits late, when the next scheduling
   point (or the end of the run) reveals the boundary counters' delta. *)
let run_schedule ~construction ~ot ~plan ~model ~n ~ops ~seed ~max_states sched =
  let reg = Metrics.current () in
  let boundary () =
    Metrics.counter_value reg "harness.ops_completed"
    + Metrics.counter_value reg "harness.ops_failed"
    + Metrics.counter_value reg "harness.restarts"
  in
  let impure = not (pure plan) in
  let pending_of = ref (fun (_ : int) -> None) in
  let wrap_hooks (h : Harness.fault_hooks) =
    {
      h with
      Harness.filter =
        (fun ~step ~pending ~runnable ->
          pending_of := pending;
          h.Harness.filter ~step ~pending ~runnable);
    }
  in
  let parked = ref None in
  let commit_parked () =
    match !parked with
    | None -> ()
    | Some (regs, before) ->
      parked := None;
      let blocking = impure || boundary () <> before in
      ignore (Sched_tree.commit sched ~fp:{ Sched_tree.regs; blocking } ~branches:1)
  in
  let scheduler ~step ~runnable =
    commit_parked ();
    match Sched_tree.choose sched ~step ~enabled:runnable with
    | None -> None
    | Some pid ->
      let regs =
        (* A flush pseudo-pid (>= n, see {!Lb_universal.Harness}) writes
           exactly its encoded register; process steps footprint their
           pending invocation. *)
        if pid >= n then [ (pid / n) - 1 ]
        else
          match !pending_of pid with
          | Some inv -> Sched_tree.footprint inv
          | None -> []
      in
      parked := Some (regs, boundary ());
      Some pid
  in
  let result, schedule =
    Fuzz.execute ~construction ~ot ~plan ~n ~ops ~seed ~model ~wrap_hooks ~scheduler ()
  in
  commit_parked ();
  if Sched_tree.interrupted sched then None
  else Some (Fuzz.assess ~construction ~ot ~plan ~n ~ops ~max_states ~schedule result)

let default_bounds = { Sched_tree.no_bounds with Sched_tree.preempt = Some 2 }

let certify_cell ~(construction : Iface.t) ~ot ~plan_name ~plan
    ?(model = Lb_memory.Memory_model.SC) ~n ~ops ~seed ?(bounds = default_bounds)
    ?(max_schedules = 200_000) ~max_states () =
  let degraded = ref 0 in
  let failed = ref None in
  let stats =
    Sched_tree.explore ~bounds ~max_schedules
      ~run:(run_schedule ~construction ~ot ~plan ~model ~n ~ops ~seed ~max_states)
      ~f:(fun (r : Fuzz.run) ->
        match r.Fuzz.verdict with
        | Fuzz.Pass -> true
        | Fuzz.Degraded _ ->
          incr degraded;
          true
        | Fuzz.Fail _ ->
          failed := Some r;
          false)
      ()
  in
  let counterexample =
    Option.map
      (fun r -> Fuzz.shrink_failure ~construction ~ot ~plan ~n ~ops ~seed ~model ~max_states r)
      !failed
  in
  let reg = Metrics.current () in
  Metrics.incr reg "conformance.exhaustive.cells";
  Metrics.incr ~by:stats.Sched_tree.schedules reg "conformance.exhaustive.schedules";
  Metrics.incr ~by:stats.Sched_tree.elided reg "conformance.exhaustive.elided";
  if counterexample <> None then Metrics.incr reg "conformance.exhaustive.failed";
  {
    xc_construction = construction.Iface.name;
    xc_object_type = ot.Fuzz.ot_name;
    xc_plan = plan_name;
    xc_model = model;
    xc_n = n;
    xc_ops = ops;
    xc_bounds = bounds;
    xc_stats = stats;
    xc_degraded = !degraded;
    xc_counterexample = counterexample;
  }

(* ---- mutation certification ---- *)

type mutant_cert = {
  xm_construction : string;
  xm_mutant : string;
  xm_fired : int;
  xm_cert : cert;
}

(* A mutant is certified killed when the bounded-exhaustive walk finds a
   failing schedule; one that never fired cannot be killed regardless. *)
let mutant_cert_killed m = m.xm_fired > 0 && not (cert_ok m.xm_cert)
let mutant_cert_ok m = m.xm_fired = 0 || mutant_cert_killed m

let certify_mutant ~(construction : Iface.t) ~mutant ?model ~n ~ops ~seed ?bounds
    ?max_schedules ~max_states () =
  let mutated, fired = Mutate.wrap mutant construction in
  let ot =
    match Fuzz.find_type "fetch-inc" with Some ot -> ot | None -> assert false
  in
  let cert =
    certify_cell ~construction:mutated ~ot ~plan_name:"none" ~plan:Fault_plan.none ?model
      ~n ~ops ~seed ?bounds ?max_schedules ~max_states ()
  in
  let reg = Metrics.current () in
  Metrics.incr reg
    (if fired () = 0 then "conformance.exhaustive.mutants_inapplicable"
     else if cert_ok cert then "conformance.exhaustive.mutants_survived"
     else "conformance.exhaustive.mutants_killed");
  {
    xm_construction = construction.Iface.name;
    xm_mutant = mutant.Mutate.name;
    xm_fired = fired ();
    xm_cert = { cert with xc_construction = construction.Iface.name };
  }

(* ---- matrices and reports ---- *)

type report = { certs : cert list; mutants : mutant_cert list }

let ok r = List.for_all cert_ok r.certs && List.for_all mutant_cert_ok r.mutants

let matrix ?jobs ?(constructions = Targets.all) ?(types = Fuzz.object_types)
    ?(plans = [ ("none", Fault_plan.none) ]) ?model ~n ~ops ~seed ?bounds ?max_schedules
    ~max_states () =
  let cells =
    List.concat_map
      (fun construction ->
        List.concat_map
          (fun ot ->
            if not (Fuzz.supports ~construction ot) then []
            else List.map (fun plan -> (construction, ot, plan)) plans)
          types)
      constructions
  in
  Lb_exec.Pool.map ?jobs
    (fun (construction, ot, (plan_name, plan)) ->
      certify_cell ~construction ~ot ~plan_name ~plan ?model ~n ~ops ~seed ?bounds
        ?max_schedules ~max_states ())
    cells

let mutant_matrix ?jobs ?(constructions = Targets.all) ?(mutants = Mutate.all) ?model ~n
    ~ops ~seed ?bounds ?max_schedules ~max_states () =
  let cells =
    List.concat_map
      (fun construction -> List.map (fun mutant -> (construction, mutant)) mutants)
      constructions
  in
  Lb_exec.Pool.map ?jobs
    (fun (construction, mutant) ->
      certify_mutant ~construction ~mutant ?model ~n ~ops ~seed ?bounds ?max_schedules
        ~max_states ())
    cells

let pp_cert ppf c =
  Format.fprintf ppf "%-15s | %-12s | %-13s | %a under %a%s%s%s" c.xc_construction
    c.xc_object_type c.xc_plan Sched_tree.pp_stats c.xc_stats Sched_tree.pp_bounds
    c.xc_bounds
    (if Lb_memory.Memory_model.relaxed c.xc_model then
       Printf.sprintf " [%s]" (Lb_memory.Memory_model.to_string c.xc_model)
     else "")
    (if c.xc_degraded > 0 then Printf.sprintf " (%d degraded)" c.xc_degraded else "")
    (match c.xc_counterexample with
    | None -> ""
    | Some cx ->
      Format.asprintf " | COUNTEREXAMPLE |sched| %d -> %d (%a)"
        (List.length cx.Fuzz.original) (List.length cx.Fuzz.minimized) Fuzz.pp_verdict
        cx.Fuzz.minimized_verdict)

let pp_mutant_cert ppf m =
  Format.fprintf ppf "%-15s | %-18s | fired %6d | %s" m.xm_construction m.xm_mutant
    m.xm_fired
    (if m.xm_fired = 0 then "not applicable (never fired)"
     else if mutant_cert_killed m then
       Format.asprintf "KILLED (%a)" Sched_tree.pp_stats m.xm_cert.xc_stats
     else Format.asprintf "SURVIVED (%a)" Sched_tree.pp_stats m.xm_cert.xc_stats)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  if r.certs <> [] then begin
    Format.fprintf ppf "construction    | object type  | plan          | exploration@ ";
    Format.fprintf ppf "%s@ " (String.make 76 '-');
    List.iter (fun c -> Format.fprintf ppf "%a@ " pp_cert c) r.certs
  end;
  if r.mutants <> [] then begin
    Format.fprintf ppf "construction    | mutant             | fired       | outcome@ ";
    Format.fprintf ppf "%s@ " (String.make 76 '-');
    List.iter (fun m -> Format.fprintf ppf "%a@ " pp_mutant_cert m) r.mutants
  end;
  Format.fprintf ppf "verdict: %s@ " (if ok r then "CERTIFIED" else "NON-CONFORMANT");
  Format.fprintf ppf "@]"

(* ---- JSON (for CI artifacts and the service layer) ---- *)

let json_of_bounds (b : Sched_tree.bounds) =
  let opt = function None -> Lb_observe.Json.Null | Some k -> Lb_observe.Json.Int k in
  Lb_observe.Json.(
    Obj
      [
        ("preempt", opt b.Sched_tree.preempt);
        ("fair", opt b.Sched_tree.fair);
        ("length", opt b.Sched_tree.length);
      ])

let json_of_stats (s : Sched_tree.stats) =
  Lb_observe.Json.(
    Obj
      [
        ("schedules", Int s.Sched_tree.schedules);
        ("sleep_blocked", Int s.Sched_tree.sleep_blocked);
        ("deduped", Int s.Sched_tree.deduped);
        ("elided", Int s.Sched_tree.elided);
        ("max_depth", Int s.Sched_tree.max_depth);
        ("exhaustive", Bool (Sched_tree.exhaustive s));
      ])

let json_of_cert c =
  Lb_observe.Json.(
    Obj
      ([
         ("construction", Str c.xc_construction);
         ("object_type", Str c.xc_object_type);
         ("plan", Str c.xc_plan);
         ("model", Str (Lb_memory.Memory_model.to_string c.xc_model));
         ("n", Int c.xc_n);
         ("ops", Int c.xc_ops);
         ("bounds", json_of_bounds c.xc_bounds);
         ("stats", json_of_stats c.xc_stats);
         ("degraded", Int c.xc_degraded);
         ("ok", Bool (cert_ok c));
       ]
      @
      match c.xc_counterexample with
      | None -> []
      | Some cx ->
        [
          ( "counterexample",
            Obj
              [
                ("original_len", Int (List.length cx.Fuzz.original));
                ("minimized", Arr (List.map (fun p -> Int p) cx.Fuzz.minimized));
                ( "verdict",
                  Str (Format.asprintf "%a" Fuzz.pp_verdict cx.Fuzz.minimized_verdict) );
                ("locally_minimal", Bool cx.Fuzz.locally_minimal);
                ("deterministic", Bool cx.Fuzz.deterministic);
              ] );
        ]))

let json_of_mutant_cert m =
  Lb_observe.Json.(
    Obj
      [
        ("construction", Str m.xm_construction);
        ("mutant", Str m.xm_mutant);
        ("fired", Int m.xm_fired);
        ("killed", Bool (mutant_cert_killed m));
        ("ok", Bool (mutant_cert_ok m));
        ("stats", json_of_stats m.xm_cert.xc_stats);
      ])

let json_of_report r =
  Lb_observe.Json.(
    Obj
      [
        ("cells", Arr (List.map json_of_cert r.certs));
        ("mutants", Arr (List.map json_of_mutant_cert r.mutants));
        ("ok", Bool (ok r));
      ])
