open Lb_memory

type step = {
  pid : int;
  seq : int;
  op : Value.t;
  response : Value.t;
  was_pending : bool;
}

type stats = { states : int; memo_hits : int }

type verdict =
  | Linearizable of { witness : step list; stats : stats }
  | Not_linearizable of { stats : stats; completed : int; bad_prefix : int }
  | Budget_exhausted of { stats : stats; budget : int }

exception Out_of_budget

(* Wing–Gong DFS over one history.  Returns the witness or None; raises
   [Out_of_budget] when more than [max_states] distinct search nodes were
   expanded.  Memoization is on failure: a (taken-set, abstract-state) pair
   that already failed to extend to a full linearization never will. *)
let solve ~max_states (spec : Lb_objects.Spec.t) (history : History.t) =
  let ops = Array.of_list history in
  let nops = Array.length ops in
  let is_completed i =
    match ops.(i).History.outcome with History.Completed _ -> true | History.Pending -> false
  in
  let response_of i =
    match ops.(i).History.outcome with
    | History.Completed { response; _ } -> Some response
    | History.Pending -> None
  in
  let responded_of i =
    match ops.(i).History.outcome with
    | History.Completed { responded; _ } -> Some responded
    | History.Pending -> None
  in
  let num_completed = ref 0 in
  for i = 0 to nops - 1 do
    if is_completed i then incr num_completed
  done;
  let num_completed = !num_completed in
  let taken = Array.make nops false in
  let memo = Hashtbl.create 1024 in
  let states = ref 0 in
  let memo_hits = ref 0 in
  let key state =
    let b = Buffer.create (nops + 16) in
    for i = 0 to nops - 1 do
      Buffer.add_char b (if taken.(i) then '1' else '0')
    done;
    Buffer.add_char b '|';
    Buffer.add_string b (Value.to_string state);
    Buffer.contents b
  in
  (* An untaken op is enabled when every completed op that responded before
     its invocation has already been linearized (Wing–Gong minimality: the
     candidate is minimal in the real-time precedence order).  Pending ops
     never precede anything — they have no response. *)
  let enabled i =
    let inv = ops.(i).History.invoked in
    let ok = ref true in
    for j = 0 to nops - 1 do
      if !ok && not taken.(j) && j <> i then
        match responded_of j with
        | Some r when r < inv -> ok := false
        | Some _ | None -> ()
    done;
    !ok
  in
  let rec search state taken_completed =
    if taken_completed = num_completed then Some []
    else begin
      let k = key state in
      if Hashtbl.mem memo k then begin
        incr memo_hits;
        None
      end
      else begin
        incr states;
        if !states > max_states then raise Out_of_budget;
        let result = ref None in
        let try_candidate i =
          if !result = None && not taken.(i) && enabled i then begin
            let o = ops.(i) in
            let state', resp = spec.Lb_objects.Spec.apply state o.History.op in
            let accept, was_pending =
              match response_of i with
              | Some recorded -> (Value.equal recorded resp, false)
              | None -> (true, true)
            in
            if accept then begin
              taken.(i) <- true;
              let taken_completed' = if was_pending then taken_completed else taken_completed + 1 in
              (match search state' taken_completed' with
              | Some rest ->
                result :=
                  Some
                    ({ pid = o.History.pid; seq = o.History.seq; op = o.History.op;
                       response = resp; was_pending }
                    :: rest)
              | None -> ());
              taken.(i) <- false
            end
          end
        in
        (* Completed candidates first: they shrink the goal directly, so the
           DFS converges without speculating on optional pending effects. *)
        for i = 0 to nops - 1 do
          if is_completed i then try_candidate i
        done;
        for i = 0 to nops - 1 do
          if not (is_completed i) then try_candidate i
        done;
        if !result = None then Hashtbl.add memo k ();
        !result
      end
    end
  in
  let witness = search spec.Lb_objects.Spec.init 0 in
  (witness, { states = !states; memo_hits = !memo_hits }, num_completed)

(* The minimal violating prefix: order the completed responses r_1 < ... <
   r_C; the k-th prefix keeps operations completed by r_k, truncates
   operations invoked before r_k but not yet responded to pending, and drops
   the rest.  A prefix of a linearizable history is linearizable, so the
   first failing k certifies exactly where linearizability was lost. *)
let prefix_at history r_k =
  List.filter_map
    (fun (o : History.op) ->
      match o.History.outcome with
      | History.Completed { responded; _ } when responded <= r_k -> Some o
      | History.Completed _ | History.Pending ->
        if o.History.invoked < r_k then Some { o with History.outcome = History.Pending }
        else None)
    history

let bad_prefix ~max_states spec history num_completed =
  let response_times =
    List.filter_map
      (fun (o : History.op) ->
        match o.History.outcome with
        | History.Completed { responded; _ } -> Some responded
        | History.Pending -> None)
      history
    |> List.sort Int.compare
  in
  let rec scan k = function
    | [] -> num_completed
    | r :: rest -> (
      match solve ~max_states spec (prefix_at history r) with
      | None, _, _ -> k
      | Some _, _, _ | (exception Out_of_budget) -> scan (k + 1) rest)
  in
  scan 1 response_times

let check ?(max_states = 200_000) (spec : Lb_objects.Spec.t) (history : History.t) =
  match solve ~max_states spec history with
  | Some witness, stats, _ -> Linearizable { witness; stats }
  | None, stats, completed ->
    Not_linearizable
      { stats; completed; bad_prefix = bad_prefix ~max_states spec history completed }
  | exception Out_of_budget ->
    Budget_exhausted { stats = { states = max_states; memo_hits = 0 }; budget = max_states }

let is_linearizable ?max_states spec history =
  match check ?max_states spec history with
  | Linearizable _ -> true
  | Not_linearizable _ | Budget_exhausted _ -> false

let of_entries (entries : Lb_objects.History.entry list) : History.t =
  List.map
    (fun (e : Lb_objects.History.entry) ->
      {
        History.pid = e.Lb_objects.History.pid;
        seq = 0;
        op = e.Lb_objects.History.op;
        invoked = e.Lb_objects.History.invoked;
        outcome =
          History.Completed
            { response = e.Lb_objects.History.response; responded = e.Lb_objects.History.responded };
        ghost = false;
      })
    entries

let pp_step ppf s =
  Format.fprintf ppf "p%d#%d %a -> %a%s" s.pid s.seq Value.pp s.op Value.pp s.response
    (if s.was_pending then " (pending)" else "")

let pp_verdict ppf = function
  | Linearizable { witness; stats } ->
    Format.fprintf ppf "linearizable (%d ops, %d states)" (List.length witness) stats.states
  | Not_linearizable { stats; completed; bad_prefix } ->
    Format.fprintf ppf "NOT linearizable: first %d of %d responses already violate (%d states)"
      bad_prefix completed stats.states
  | Budget_exhausted { budget; _ } ->
    Format.fprintf ppf "inconclusive: state budget %d exhausted" budget
