open Lb_memory
open Lb_runtime
open Lb_universal

type t = { name : string; description : string }

let all =
  [
    {
      name = "drop-sc-validation";
      description =
        "every SC is replaced by an unconditional Swap reported as a successful SC — the \
         construction commits without checking its link";
    };
    {
      name = "stale-ll";
      description =
        "within one operation, re-LLs of a register are served the first value from a local \
         cache (via a non-linking Validate) — the operation acts on a stale snapshot";
    };
    {
      name = "lost-sc-write";
      description =
        "every SC becomes a Validate: it reports success whenever the link is intact but never \
         writes — the committed state transition is silently lost";
    };
    {
      name = "lost-swap-write";
      description = "every Swap reads the register (Validate) but never writes its value";
    };
  ]

let find name = List.find_opt (fun m -> m.name = name) all

(* Rewrite a free-monad program operation by operation: [rule inv] yields
   the invocation actually issued and a post-map applied to its response
   before the original continuation sees it. *)
let rec rewrite rule (p : 'a Program.t) : 'a Program.t =
  match p with
  | Program.Return _ -> p
  | Program.Toss k -> Program.Toss (fun o -> rewrite rule (k o))
  | Program.Op (inv, k) ->
    let inv', post = rule inv in
    Program.Op (inv', fun resp -> rewrite rule (k (post resp)))

(* One rule instance per object operation: [stale-ll] keeps a per-operation
   cache, so the closure must be fresh for each [apply]. *)
let fresh_rule t fired =
  match t.name with
  | "drop-sc-validation" ->
    fun inv ->
      (match inv with
      | Op.Sc (r, v) ->
        incr fired;
        ( Op.Swap (r, v),
          function Op.Value u -> Op.Flagged (true, u) | (Op.Flagged _ | Op.Ack) as resp -> resp )
      | _ -> (inv, Fun.id))
  | "stale-ll" ->
    let cache = Hashtbl.create 4 in
    fun inv ->
      (match inv with
      | Op.Ll r when Hashtbl.mem cache r ->
        incr fired;
        (Op.Validate r, fun _ -> Op.Value (Hashtbl.find cache r))
      | Op.Ll r ->
        ( inv,
          fun resp ->
            (match resp with Op.Value v -> Hashtbl.replace cache r v | Op.Flagged _ | Op.Ack -> ());
            resp )
      | _ -> (inv, Fun.id))
  | "lost-sc-write" ->
    fun inv ->
      (match inv with
      | Op.Sc (r, _) ->
        incr fired;
        (Op.Validate r, Fun.id)
      | _ -> (inv, Fun.id))
  | "lost-swap-write" ->
    fun inv ->
      (match inv with
      | Op.Swap (r, _) ->
        incr fired;
        ( Op.Validate r,
          function Op.Flagged (_, u) -> Op.Value u | (Op.Value _ | Op.Ack) as resp -> resp )
      | _ -> (inv, Fun.id))
  | other -> invalid_arg (Printf.sprintf "Mutate.fresh_rule: unknown mutant %S" other)

let wrap t (c : Iface.t) =
  let fired = ref 0 in
  let create layout ~n spec =
    let h = c.Iface.create layout ~n spec in
    {
      h with
      Iface.apply =
        (fun ~pid ~seq op ->
          let rule = fresh_rule t fired in
          rewrite rule (h.Iface.apply ~pid ~seq op));
    }
  in
  ({ c with Iface.name = c.Iface.name ^ "+" ^ t.name; create }, fun () -> !fired)
