(** Mutation testing for the conformance checker.

    Each mutant is a known construction bug expressed as a program rewrite
    over the free monad: the wrapped construction issues a different
    shared-memory operation (with its response post-mapped so the original
    continuation still typechecks) and thereby silently weakens LL/SC.  The
    fuzzer's job is to {e kill} every mutant — find a schedule whose history
    the checker rejects.  A mutant that never {e fires} on some construction
    (e.g. a Swap mutant on a construction that never swaps) is reported as
    not-applicable, not as surviving. *)

open Lb_runtime
open Lb_universal

type t = { name : string; description : string }

val all : t list
(** [drop-sc-validation], [stale-ll], [lost-sc-write], [lost-swap-write]. *)

val find : string -> t option

val wrap : t -> Iface.t -> Iface.t * (unit -> int)
(** [wrap m c] is the mutated construction (name suffixed with ["+" ^ m.name])
    and a reader of how many times the mutation fired, cumulative across
    every run of the returned construction. *)

val rewrite :
  (Lb_memory.Op.invocation ->
  Lb_memory.Op.invocation * (Lb_memory.Op.response -> Lb_memory.Op.response)) ->
  'a Program.t ->
  'a Program.t
(** The underlying generic rewriter, exposed for tests. *)
