(** Conformance campaign driver: fuzz matrices, mutation testing, reports.

    The fuzz matrix crosses constructions × object types × fault plans into
    {!Fuzz.check_cell} cells; the mutation matrix crosses constructions ×
    {!Mutate.all} and demands that every applicable mutant be {e killed} —
    some schedule's history must fail the {!Linearize} checker.  [ok] is the
    gate the CLI turns into its exit code and CI asserts in the conformance
    smoke step. *)

open Lb_universal
open Lb_faults

val constructions : Iface.t list
(** {!Lb_faults.Targets.all}: the universal constructions plus the direct
    LL/SC fetch&increment. *)

val find_construction : string -> Iface.t option

type mutant_outcome =
  | Killed of { seed : int; failure : Fuzz.failure; minimized_len : int }
  | Survived of { runs : int }
  | Not_applicable
      (** The mutation never fired on this construction (e.g. a Swap mutant
          on a construction that never swaps) — excluded from the gate. *)

type mutant_cell = {
  mc_construction : string;
  mc_mutant : string;
  fired : int;
  outcome : mutant_outcome;
}

val mutant_killed : mutant_cell -> bool
(** [Killed] or [Not_applicable]. *)

val hunt_mutant :
  construction:Iface.t ->
  mutant:Mutate.t ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  schedules:int ->
  seed:int ->
  max_states:int ->
  unit ->
  mutant_cell

val mutation_matrix :
  ?jobs:int ->
  ?constructions:Iface.t list ->
  ?mutants:Mutate.t list ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  schedules:int ->
  seed:int ->
  max_states:int ->
  unit ->
  mutant_cell list
(** [jobs] fans the (construction, mutant) cells across a
    {!Lb_exec.Pool} (default 1, sequential); every cell is a pure
    function of its key and the seed, and the pool preserves order, so
    the report is identical at every job count. *)

val fuzz_matrix :
  ?jobs:int ->
  ?constructions:Iface.t list ->
  ?types:Fuzz.object_type list ->
  ?plans:(string * Fault_plan.t) list ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  schedules:int ->
  seed:int ->
  max_states:int ->
  unit ->
  Fuzz.cell list
(** Cells a construction does not support (the direct target on anything
    but fetch-inc) are skipped.  [jobs] as in {!mutation_matrix}.  [model]
    (default SC) runs every cell on a memory with that consistency model —
    the constructions use only the fencing LL/SC repertoire, so conformance
    must survive relaxation unchanged (asserted in EXPERIMENTS.md). *)

type report = { cells : Fuzz.cell list; mutants : mutant_cell list }

val ok : report -> bool

val pp_mutant_cell : Format.formatter -> mutant_cell -> unit
val pp_report : Format.formatter -> report -> unit

val json_of_cell : Fuzz.cell -> Lb_observe.Json.t
val json_of_mutant_cell : mutant_cell -> Lb_observe.Json.t
val json_of_report : report -> Lb_observe.Json.t
