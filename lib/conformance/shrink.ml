(* Zeller–Hildebrandt delta debugging (ddmin) over schedules, followed by an
   explicit one-element sweep: the result is 1-minimal — removing any single
   entry loses the property — which is the "locally minimal interleaving"
   the conformance report promises. *)

let split_chunks parts l =
  let len = List.length l in
  let base = len / parts and extra = len mod parts in
  let rec go i acc l =
    if i = parts then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k acc' l = if k = 0 then (List.rev acc', l) else
        match l with [] -> (List.rev acc', []) | x :: r -> take (k - 1) (x :: acc') r
      in
      let chunk, rest = take size [] l in
      go (i + 1) (chunk :: acc) rest
  in
  go 0 [] l

let remove_chunk chunks i = List.concat (List.filteri (fun j _ -> j <> i) chunks)

let ddmin ~test input =
  let rec loop current parts =
    let len = List.length current in
    if len <= 1 then current
    else
      let parts = min parts len in
      let chunks = split_chunks parts current in
      let rec try_subsets i =
        if i >= List.length chunks then None
        else
          let subset = List.nth chunks i in
          if List.length subset < len && subset <> [] && test subset then Some subset
          else try_subsets (i + 1)
      in
      let rec try_complements i =
        if i >= List.length chunks then None
        else
          let complement = remove_chunk chunks i in
          if List.length complement < len && test complement then Some complement
          else try_complements (i + 1)
      in
      match try_subsets 0 with
      | Some subset -> loop subset 2
      | None -> (
        match try_complements 0 with
        | Some complement -> loop complement (max (parts - 1) 2)
        | None -> if parts < len then loop current (min len (2 * parts)) else current)
  in
  if not (test input) then input else loop input 2

let one_minimal_pass ~test l =
  let rec sweep l =
    let len = List.length l in
    let rec try_drop i =
      if i >= len then l
      else
        let candidate = List.filteri (fun j _ -> j <> i) l in
        if test candidate then sweep candidate else try_drop (i + 1)
    in
    try_drop 0
  in
  sweep l

let minimize ~test input =
  let shrunk = ddmin ~test input in
  one_minimal_pass ~test shrunk

let is_one_minimal ~test l =
  test l
  && List.for_all
       (fun i -> not (test (List.filteri (fun j _ -> j <> i) l)))
       (List.init (List.length l) Fun.id)
