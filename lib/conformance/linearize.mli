(** Wing–Gong linearizability checking over histories with pending
    operations.

    The search explores the frontier of minimal (in real-time precedence)
    untaken operations: a completed operation can be linearized next only if
    the specification reproduces its recorded response; a pending operation
    (no response — a give-up, crash, or restart ghost) can be linearized
    next with whatever response the specification produces, or left out
    entirely.  Search nodes are memoized on (taken set, canonical abstract
    state) — the state is a single {!Lb_memory.Value.t}, canonicalized by
    its printed form, the same dedup-key discipline as
    {!Lb_check.Pure_memory.canonical}.

    The verdict is either a witness linearization, a {e certified} violation
    (with the length of the shortest violating response-prefix), or an
    explicit budget exhaustion — never a silent wrong answer. *)

open Lb_memory

type step = {
  pid : int;
  seq : int;
  op : Value.t;
  response : Value.t;
      (** The response the specification produced at this point — for a
          completed op this equals the recorded response. *)
  was_pending : bool;
}

type stats = { states : int; memo_hits : int }

type verdict =
  | Linearizable of { witness : step list; stats : stats }
  | Not_linearizable of {
      stats : stats;
      completed : int;  (** completed operations in the history. *)
      bad_prefix : int;
          (** The first [bad_prefix] responses (in response order) already
              form a non-linearizable sub-history: the violation's minimal
              certificate. *)
    }
  | Budget_exhausted of { stats : stats; budget : int }

val check : ?max_states:int -> Lb_objects.Spec.t -> History.t -> verdict
(** [max_states] bounds the number of distinct DFS nodes expanded
    (default 200_000). *)

val is_linearizable : ?max_states:int -> Lb_objects.Spec.t -> History.t -> bool
(** [Budget_exhausted] counts as [false]. *)

val of_entries : Lb_objects.History.entry list -> History.t
(** Lift a complete history (the {!Lb_objects.History} form) into the
    general form, for differential testing of the two checkers. *)

val pp_step : Format.formatter -> step -> unit
val pp_verdict : Format.formatter -> verdict -> unit
