(** Bounded-exhaustive conformance certification.

    Where {!Fuzz} samples seeded random schedules, this module walks the
    schedule space of one (construction, object type, fault plan) cell
    systematically with {!Lb_check.Sched_tree}'s bounded DPOR: every
    in-bound interleaving of the harness workload is executed and judged
    by the {e same} {!Fuzz.assess} verdict chain as the fuzzer, so a cell
    certificate strengthens the fuzz cell from "no failing schedule
    sampled" to "no failing schedule exists within the bounds" —
    {!Lb_check.Sched_tree.stats}'s [elided] field says exactly how much the bounds
    cut.

    Dependency footprints come from each process's pending shared-memory
    invocation (register overlap, which subsumes LL/SC link-kill
    dependence); operation boundaries — a response published, a give-up,
    a crash restart — are {e blocking} (dependent with everything),
    because commuting them changes history precedence and so possibly the
    linearizability verdict.  Under a non-empty fault plan every step is
    blocking: injectors read the global step clock, so no commutation is
    sound — the walk degrades to bounded enumeration, still exhaustive
    within the bounds.

    Soundness scope is inherited from the sleep-set argument in
    {!Lb_check.Explore.iter_reduced}: the set of distinct verdicts is preserved;
    individual schedule orders are not.  See docs/EXPLORATION.md. *)

open Lb_universal
open Lb_faults

val pure : Fault_plan.t -> bool
(** Whether schedule commutation is sound under this plan (no injectors). *)

type cert = {
  xc_construction : string;
  xc_object_type : string;
  xc_plan : string;
  xc_model : Lb_memory.Memory_model.t;
  xc_n : int;
  xc_ops : int;
  xc_bounds : Lb_check.Sched_tree.bounds;
  xc_stats : Lb_check.Sched_tree.stats;
  xc_degraded : int;  (** schedules that passed with excused degradation. *)
  xc_counterexample : Fuzz.counterexample option;
      (** the first failing schedule found, minimized with {!Shrink}. *)
}

val cert_ok : cert -> bool

val default_bounds : Lb_check.Sched_tree.bounds
(** Pre-emption bound 2, the classic systematic-testing default: most
    concurrency bugs need at most two pre-emptions, and the schedule count
    stays polynomial. *)

val certify_cell :
  construction:Iface.t ->
  ot:Fuzz.object_type ->
  plan_name:string ->
  plan:Fault_plan.t ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?bounds:Lb_check.Sched_tree.bounds ->
  ?max_schedules:int ->
  max_states:int ->
  unit ->
  cert
(** Walk every in-bound schedule of one cell (stopping at the first
    failure, which is then shrunk).  [seed] fixes the workload; the walk
    itself is deterministic.  [max_schedules] (default 200_000) raises
    {!Lb_check.Sched_tree.Schedule_limit} when exceeded.  [model] (default
    SC) runs the cell on a relaxed memory: flush pseudo-pids enter the
    DPOR alphabet with their encoded register as footprint, and since the
    constructions use only the fencing LL/SC repertoire, certificates must
    match SC exactly. *)

(** {1 Mutation certification} *)

type mutant_cert = {
  xm_construction : string;
  xm_mutant : string;
  xm_fired : int;
  xm_cert : cert;  (** the walk over the mutated construction. *)
}

val mutant_cert_killed : mutant_cert -> bool
val mutant_cert_ok : mutant_cert -> bool
(** Killed, or never fired (not applicable). *)

val certify_mutant :
  construction:Iface.t ->
  mutant:Mutate.t ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?bounds:Lb_check.Sched_tree.bounds ->
  ?max_schedules:int ->
  max_states:int ->
  unit ->
  mutant_cert
(** Certify that a mutant is killed by {e some} in-bound schedule on
    fetch&increment under the fault-free plan — a strictly stronger claim
    than {!Conform.hunt_mutant}'s sampled kill. *)

(** {1 Matrices and reports} *)

type report = { certs : cert list; mutants : mutant_cert list }

val ok : report -> bool

val matrix :
  ?jobs:int ->
  ?constructions:Iface.t list ->
  ?types:Fuzz.object_type list ->
  ?plans:(string * Fault_plan.t) list ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?bounds:Lb_check.Sched_tree.bounds ->
  ?max_schedules:int ->
  max_states:int ->
  unit ->
  cert list
(** Certify the (construction x type x plan) product on a domain pool;
    cells are pure functions of their key and {!Lb_exec.Pool.map} is
    order-preserving, so reports are byte-identical at every job count. *)

val mutant_matrix :
  ?jobs:int ->
  ?constructions:Iface.t list ->
  ?mutants:Mutate.t list ->
  ?model:Lb_memory.Memory_model.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?bounds:Lb_check.Sched_tree.bounds ->
  ?max_schedules:int ->
  max_states:int ->
  unit ->
  mutant_cert list

val pp_cert : Format.formatter -> cert -> unit
val pp_mutant_cert : Format.formatter -> mutant_cert -> unit
val pp_report : Format.formatter -> report -> unit
val json_of_cert : cert -> Lb_observe.Json.t
val json_of_mutant_cert : mutant_cert -> Lb_observe.Json.t
val json_of_report : report -> Lb_observe.Json.t
