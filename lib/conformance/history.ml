open Lb_memory

type outcome =
  | Completed of { response : Value.t; responded : int }
  | Pending

type op = {
  pid : int;
  seq : int;
  op : Value.t;
  invoked : int;
  outcome : outcome;
  ghost : bool;
}

type t = op list

let completed t =
  List.filter (fun o -> match o.outcome with Completed _ -> true | Pending -> false) t

let pending t =
  List.filter (fun o -> match o.outcome with Pending -> true | Completed _ -> false) t

let by_invocation t = List.sort (fun a b -> Int.compare a.invoked b.invoked) t

(* A restarted (pid, seq) may have applied its effect before the crash wiped
   the process's volatile state: the re-invocation then applies it again.
   Each restart therefore contributes one extra *optional* occurrence of the
   same operation — a ghost pending op the checker may (but need not)
   linearize.  The ghost is anchored at the original invocation time: the
   lost attempt ran somewhere between invocation and the recorded outcome. *)
let ghosts ~restarted ops =
  List.filter_map
    (fun (pid, seq) ->
      List.find_opt (fun o -> o.pid = pid && o.seq = seq && not o.ghost) ops
      |> Option.map (fun o -> { o with outcome = Pending; ghost = true }))
    restarted

let of_result (r : Lb_universal.Harness.result) =
  let done_ =
    List.map
      (fun (s : Lb_universal.Harness.op_stat) ->
        {
          pid = s.pid;
          seq = s.seq;
          op = s.op;
          invoked = s.invoked;
          outcome = Completed { response = s.response; responded = s.responded };
          ghost = false;
        })
      r.Lb_universal.Harness.stats
  in
  let failed =
    List.map
      (fun (f : Lb_universal.Harness.op_failure) ->
        { pid = f.pid; seq = f.seq; op = f.op; invoked = f.invoked; outcome = Pending; ghost = false })
      r.Lb_universal.Harness.failures
  in
  (* Invoked-but-still-running at run end (crash-stop, fuel exhaustion): no
     response was recorded, but a helping construction may have completed
     the operation on the crashed process's behalf, so its effect can be
     visible in other responses.  Pending, like a give-up. *)
  let unfinished =
    List.map
      (fun (i : Lb_universal.Harness.op_in_flight) ->
        { pid = i.pid; seq = i.seq; op = i.op; invoked = i.invoked; outcome = Pending; ghost = false })
      r.Lb_universal.Harness.in_flight
  in
  let base = done_ @ failed @ unfinished in
  by_invocation (base @ ghosts ~restarted:r.Lb_universal.Harness.restarted base)

let of_events ?(restarted = []) (events : Lb_observe.Event.stamped list) =
  let module E = Lb_observe.Event in
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : E.stamped) ->
      match s.E.event with
      | E.Op_invoked { pid; seq; op } ->
        if not (Hashtbl.mem tbl (pid, seq)) then begin
          Hashtbl.replace tbl (pid, seq)
            { pid; seq; op; invoked = s.E.at; outcome = Pending; ghost = false };
          order := (pid, seq) :: !order
        end
      | E.Op_completed { pid; seq; response; _ } ->
        (match Hashtbl.find_opt tbl (pid, seq) with
        | Some o ->
          Hashtbl.replace tbl (pid, seq)
            { o with outcome = Completed { response; responded = s.E.at } }
        | None -> ())
      | E.Op_failed _ | _ -> ())
    events;
  let base = List.rev_map (fun key -> Hashtbl.find tbl key) !order in
  by_invocation (base @ ghosts ~restarted base)

let pp_op ppf o =
  let status =
    match o.outcome with
    | Completed { response; _ } -> Format.asprintf "-> %a" Value.pp response
    | Pending -> if o.ghost then "pending (restart ghost)" else "pending"
  in
  Format.fprintf ppf "p%d#%d %a @%d %s" o.pid o.seq Value.pp o.op o.invoked status

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun o -> Format.fprintf ppf "%a@ " pp_op o) t;
  Format.fprintf ppf "@]"
