(** Differential schedule fuzzing of the universal constructions.

    A fuzz {e cell} is one (construction, object type, fault plan) triple:
    [schedules] seeded random schedules are driven through the
    {!Lb_universal.Harness} (fault engine armed), every produced history is
    checked with {!Linearize}, and the first failing schedule — if any — is
    minimized with {!Shrink} to a locally-minimal interleaving that replays
    deterministically to the same failure class.

    Give-ups are excused (degraded, not failing) exactly when the plan
    injects spurious SC failures, mirroring {!Lb_faults.Certify}; crash-
    stopped pids are exempt from the completion requirement; crash-recovery
    restarts contribute ghost pending operations to the checked history (see
    {!History}). *)

open Lb_memory
open Lb_runtime
open Lb_universal
open Lb_faults

type object_type = {
  ot_name : string;
  spec_of : n:int -> Lb_objects.Spec.t;
  op_of : n:int -> seed:int -> pid:int -> idx:int -> Value.t;
      (** Deterministic seeded workload: the [idx]-th operation of [pid]. *)
  direct_ok : bool;
      (** Whether the non-oblivious [direct] target implements this type
          (it {e is} fetch&increment and accepts nothing else). *)
}

val object_types : object_type list
(** The fuzzed zoo: fetch-inc, fetch-add, read-inc, fetch-or,
    fetch-multiply, queue, stack, swap, test-set, cas, snapshot,
    consensus. *)

val find_type : string -> object_type option
val type_names : string list

val supports : construction:Iface.t -> object_type -> bool

type failure =
  | Not_linearizable of { states : int; bad_prefix : int; completed : int }
  | Unexcused_give_up of { pid : int; seq : int; reason : string }
  | Starved of { pids : int list }
  | Bound_exceeded of { pid : int; seq : int; cost : int; bound : int }
      (** A fault-free run where an operation's shared-access cost exceeds
          the construction's analytic worst case — the paper's upper-bound
          claim is about time, so overshooting it is a conformance failure
          (and the kill condition for helping-removal mutants that preserve
          linearizability). *)
  | Check_budget of { states : int }

type verdict = Pass | Degraded of string | Fail of failure

type run = {
  verdict : verdict;
  schedule : int list;  (** every scheduling choice taken, in order. *)
  checked_ops : int;
  states : int;
}

val same_class : verdict -> verdict -> bool
(** Same constructor (the shrinker's notion of "reproduces the failure"). *)

val execute :
  construction:Iface.t ->
  ot:object_type ->
  plan:Fault_plan.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?model:Memory_model.t ->
  ?wrap_hooks:(Harness.fault_hooks -> Harness.fault_hooks) ->
  scheduler:Scheduler.choice ->
  unit ->
  Harness.result * int list
(** Drive one execution (construction and fault engine instantiated on a
    fresh memory running [model], default SC) and return the harness result
    plus the recorded schedule.  Under a relaxed model the schedule may
    contain flush pseudo-pids (see {!Harness.run_handle}); the recorded log
    replays them like any other choice.  [wrap_hooks] interposes on the
    fault hooks — the exhaustive checker taps [filter] to read each
    process's pending shared operation for its dependency footprints. *)

val assess :
  construction:Iface.t ->
  ot:object_type ->
  plan:Fault_plan.t ->
  n:int ->
  ops:int ->
  max_states:int ->
  schedule:int list ->
  Harness.result ->
  run
(** Judge an executed run: completion accounting, the analytic cost bound,
    give-up excuses, then {!Linearize}.  [run_once] is [execute] followed
    by [assess]; the exhaustive checker shares this judge so a schedule is
    assessed identically however it was produced. *)

val run_once :
  construction:Iface.t ->
  ot:object_type ->
  plan:Fault_plan.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?model:Memory_model.t ->
  max_states:int ->
  scheduler:Scheduler.choice ->
  unit ->
  run

val tree_scheduler : 'k Lb_check.Sched_tree.sched -> Scheduler.choice
(** View a {!Lb_check.Sched_tree} oracle as a harness scheduler: the
    fuzzer's random sampling ({!Lb_check.Sched_tree.sampler}), replay
    ({!Lb_check.Sched_tree.replayer}) and the exhaustive checker's DPOR
    walk all draw schedules from the same abstraction. *)

val replay :
  construction:Iface.t ->
  ot:object_type ->
  plan:Fault_plan.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?model:Memory_model.t ->
  max_states:int ->
  int list ->
  run
(** Re-run under a recorded schedule (non-runnable entries skipped,
    round-robin after exhaustion).  Deterministic. *)

type counterexample = {
  seed_used : int;
  original : int list;
  minimized : int list;
  minimized_verdict : verdict;
  locally_minimal : bool;
  deterministic : bool;
}

val shrink_failure :
  construction:Iface.t ->
  ot:object_type ->
  plan:Fault_plan.t ->
  n:int ->
  ops:int ->
  seed:int ->
  ?model:Memory_model.t ->
  max_states:int ->
  run ->
  counterexample
(** Minimize a failing run's schedule with {!Shrink.minimize} ([test] =
    same failure class on replay), then certify local minimality and replay
    determinism. *)

type cell = {
  construction : string;
  object_type : string;
  plan_name : string;
  model : Memory_model.t;
  n : int;
  ops : int;
  budget : int;
  runs : int;
  passed : int;
  degraded : int;
  counterexample : counterexample option;
}

val check_cell :
  construction:Iface.t ->
  ot:object_type ->
  plan_name:string ->
  plan:Fault_plan.t ->
  ?model:Memory_model.t ->
  n:int ->
  ops:int ->
  schedules:int ->
  seed:int ->
  max_states:int ->
  unit ->
  cell
(** Fuzz one cell; stops at (and shrinks) the first failure. *)

val cell_ok : cell -> bool

val pp_failure : Format.formatter -> failure -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_cell : Format.formatter -> cell -> unit
