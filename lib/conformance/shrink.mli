(** Deterministic delta-debugging minimization of violating schedules.

    [test] is the interesting-ness predicate (e.g. "replaying this schedule
    prefix still reproduces the same conformance failure class").  All
    functions are fully deterministic: same [test] and input, same output. *)

val ddmin : test:('a list -> bool) -> 'a list -> 'a list
(** Classical ddmin: repeatedly try chunks and chunk-complements at
    increasing granularity.  If [test input] is [false] the input is
    returned unchanged. *)

val minimize : test:('a list -> bool) -> 'a list -> 'a list
(** {!ddmin} followed by a single-element deletion sweep to a fixpoint: the
    result is 1-minimal (removing any one element breaks [test]). *)

val is_one_minimal : test:('a list -> bool) -> 'a list -> bool
(** Does [test] hold on the list but on none of its one-element deletions? *)
