open Lb_universal
open Lb_faults

let constructions = Targets.all
let find_construction = Targets.find

type mutant_outcome =
  | Killed of { seed : int; failure : Fuzz.failure; minimized_len : int }
  | Survived of { runs : int }
  | Not_applicable

type mutant_cell = {
  mc_construction : string;
  mc_mutant : string;
  fired : int;
  outcome : mutant_outcome;
}

let mutant_killed c = match c.outcome with Killed _ | Not_applicable -> true | Survived _ -> false

(* Kill one mutant on one construction: fuzz the mutated construction on
   fetch&increment (the one type every target implements) under the
   fault-free plan until the checker rejects a history.  A mutant that never
   fired cannot be killed and is reported not-applicable. *)
let hunt_mutant ~construction ~mutant ?model ~n ~ops ~schedules ~seed ~max_states () =
  let mutated, fired = Mutate.wrap mutant construction in
  let ot =
    match Fuzz.find_type "fetch-inc" with Some ot -> ot | None -> assert false
  in
  let rec go i =
    if i >= schedules then
      if fired () = 0 then Not_applicable else Survived { runs = schedules }
    else
      let seed_i = seed + i in
      let r =
        Fuzz.run_once ~construction:mutated ~ot ~plan:Fault_plan.none ~n ~ops ~seed:seed_i
          ?model ~max_states ~scheduler:(Lb_runtime.Scheduler.random ~seed:seed_i) ()
      in
      match r.Fuzz.verdict with
      | Fuzz.Fail failure ->
        let cx =
          Fuzz.shrink_failure ~construction:mutated ~ot ~plan:Fault_plan.none ~n ~ops
            ~seed:seed_i ?model ~max_states r
        in
        Killed { seed = seed_i; failure; minimized_len = List.length cx.Fuzz.minimized }
      | Fuzz.Pass | Fuzz.Degraded _ -> go (i + 1)
  in
  let outcome = go 0 in
  let reg = Lb_observe.Metrics.current () in
  Lb_observe.Metrics.incr reg
    (match outcome with
    | Killed _ -> "conformance.mutants_killed"
    | Survived _ -> "conformance.mutants_survived"
    | Not_applicable -> "conformance.mutants_inapplicable");
  {
    mc_construction = construction.Iface.name;
    mc_mutant = mutant.Mutate.name;
    fired = fired ();
    outcome;
  }

(* Both matrices fan their cells across a domain pool.  Every cell is a
   pure function of its (construction, type/mutant, plan, seed) key —
   the fuzzer derives all randomness from the seed — and [Pool.map] is
   order-preserving, so reports are byte-identical at every job
   count. *)
let mutation_matrix ?jobs ?(constructions = constructions) ?(mutants = Mutate.all) ?model
    ~n ~ops ~schedules ~seed ~max_states () =
  let cells =
    List.concat_map
      (fun construction -> List.map (fun mutant -> (construction, mutant)) mutants)
      constructions
  in
  Lb_exec.Pool.map ?jobs
    (fun (construction, mutant) ->
      hunt_mutant ~construction ~mutant ?model ~n ~ops ~schedules ~seed ~max_states ())
    cells

let fuzz_matrix ?jobs ?(constructions = constructions) ?(types = Fuzz.object_types)
    ?(plans = [ ("none", Fault_plan.none) ]) ?model ~n ~ops ~schedules ~seed ~max_states () =
  let cells =
    List.concat_map
      (fun construction ->
        List.concat_map
          (fun ot ->
            if not (Fuzz.supports ~construction ot) then []
            else List.map (fun plan -> (construction, ot, plan)) plans)
          types)
      constructions
  in
  Lb_exec.Pool.map ?jobs
    (fun (construction, ot, (plan_name, plan)) ->
      Fuzz.check_cell ~construction ~ot ~plan_name ~plan ?model ~n ~ops ~schedules ~seed
        ~max_states ())
    cells

type report = { cells : Fuzz.cell list; mutants : mutant_cell list }

let ok r = List.for_all Fuzz.cell_ok r.cells && List.for_all mutant_killed r.mutants

let outcome_string = function
  | Killed { seed; minimized_len; _ } ->
    Printf.sprintf "KILLED (seed %d, minimal schedule %d steps)" seed minimized_len
  | Survived { runs } -> Printf.sprintf "SURVIVED %d schedules" runs
  | Not_applicable -> "not applicable (never fired)"

let pp_mutant_cell ppf c =
  Format.fprintf ppf "%-15s | %-18s | fired %6d | %s" c.mc_construction c.mc_mutant c.fired
    (outcome_string c.outcome)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  if r.cells <> [] then begin
    Format.fprintf ppf "construction    | object type  | plan          | verdict@ ";
    Format.fprintf ppf "%s@ " (String.make 76 '-');
    List.iter (fun c -> Format.fprintf ppf "%a@ " Fuzz.pp_cell c) r.cells
  end;
  if r.mutants <> [] then begin
    Format.fprintf ppf "construction    | mutant             | fired       | outcome@ ";
    Format.fprintf ppf "%s@ " (String.make 76 '-');
    List.iter (fun c -> Format.fprintf ppf "%a@ " pp_mutant_cell c) r.mutants
  end;
  Format.fprintf ppf "verdict: %s@ " (if ok r then "CONFORMANT" else "NON-CONFORMANT");
  Format.fprintf ppf "@]"

(* ---- JSON (for the service layer) ---- *)

let json_of_counterexample (cx : Fuzz.counterexample) =
  Lb_observe.Json.(
    Obj
      [
        ("seed", Int cx.Fuzz.seed_used);
        ("original_len", Int (List.length cx.Fuzz.original));
        ("minimized", Arr (List.map (fun p -> Int p) cx.Fuzz.minimized));
        ("verdict", Str (Format.asprintf "%a" Fuzz.pp_verdict cx.Fuzz.minimized_verdict));
        ("locally_minimal", Bool cx.Fuzz.locally_minimal);
        ("deterministic", Bool cx.Fuzz.deterministic);
      ])

let json_of_cell (c : Fuzz.cell) =
  Lb_observe.Json.(
    Obj
      ([
         ("construction", Str c.Fuzz.construction);
         ("object_type", Str c.Fuzz.object_type);
         ("plan", Str c.Fuzz.plan_name);
         ("model", Str (Lb_memory.Memory_model.to_string c.Fuzz.model));
         ("n", Int c.Fuzz.n);
         ("ops", Int c.Fuzz.ops);
         ("runs", Int c.Fuzz.runs);
         ("passed", Int c.Fuzz.passed);
         ("degraded", Int c.Fuzz.degraded);
         ("ok", Bool (Fuzz.cell_ok c));
       ]
      @
      match c.Fuzz.counterexample with
      | None -> []
      | Some cx -> [ ("counterexample", json_of_counterexample cx) ]))

let json_of_mutant_cell c =
  Lb_observe.Json.(
    Obj
      [
        ("construction", Str c.mc_construction);
        ("mutant", Str c.mc_mutant);
        ("fired", Int c.fired);
        ("outcome", Str (outcome_string c.outcome));
        ("killed", Bool (mutant_killed c));
      ])

let json_of_report r =
  Lb_observe.Json.(
    Obj
      [
        ("cells", Arr (List.map json_of_cell r.cells));
        ("mutants", Arr (List.map json_of_mutant_cell r.mutants));
        ("ok", Bool (ok r));
      ])
