open Lb_memory
open Lb_runtime
open Lb_universal
open Lb_faults

type object_type = {
  ot_name : string;
  spec_of : n:int -> Lb_objects.Spec.t;
  op_of : n:int -> seed:int -> pid:int -> idx:int -> Value.t;
  direct_ok : bool;
}

let h ~seed ~pid ~idx = Coin.hash ~seed ~pid ~idx

let object_types =
  [
    {
      ot_name = "fetch-inc";
      spec_of = (fun ~n:_ -> Lb_objects.Counters.fetch_inc ~bits:30);
      op_of = (fun ~n:_ ~seed:_ ~pid:_ ~idx:_ -> Value.Unit);
      direct_ok = true;
    };
    {
      ot_name = "fetch-add";
      spec_of = (fun ~n:_ -> Lb_objects.Counters.fetch_add ~bits:30);
      op_of = (fun ~n:_ ~seed ~pid ~idx -> Value.Int (1 + (h ~seed ~pid ~idx mod 9)));
      direct_ok = false;
    };
    {
      ot_name = "read-inc";
      spec_of = (fun ~n:_ -> Lb_objects.Counters.read_inc ~bits:30);
      op_of =
        (fun ~n:_ ~seed ~pid ~idx ->
          if h ~seed ~pid ~idx mod 2 = 0 then Lb_objects.Counters.op_inc
          else Lb_objects.Counters.op_read);
      direct_ok = false;
    };
    {
      ot_name = "fetch-or";
      spec_of = (fun ~n:_ -> Lb_objects.Bitwise.fetch_or ~bits:8);
      op_of = (fun ~n:_ ~seed ~pid ~idx -> Value.Int (1 lsl (h ~seed ~pid ~idx mod 8)));
      direct_ok = false;
    };
    {
      ot_name = "fetch-multiply";
      spec_of = (fun ~n:_ -> Lb_objects.Bitwise.fetch_multiply ~bits:16);
      op_of = (fun ~n:_ ~seed ~pid ~idx -> Value.Int (2 + (h ~seed ~pid ~idx mod 3)));
      direct_ok = false;
    };
    {
      ot_name = "queue";
      spec_of = (fun ~n:_ -> Lb_objects.Containers.queue);
      op_of =
        (fun ~n:_ ~seed ~pid ~idx ->
          if h ~seed ~pid ~idx mod 2 = 0 then
            Lb_objects.Containers.op_enq (Value.Int ((100 * pid) + idx))
          else Lb_objects.Containers.op_deq);
      direct_ok = false;
    };
    {
      ot_name = "stack";
      spec_of = (fun ~n:_ -> Lb_objects.Containers.stack);
      op_of =
        (fun ~n:_ ~seed ~pid ~idx ->
          if h ~seed ~pid ~idx mod 2 = 0 then
            Lb_objects.Containers.op_push (Value.Int ((100 * pid) + idx))
          else Lb_objects.Containers.op_pop);
      direct_ok = false;
    };
    {
      ot_name = "swap";
      spec_of = (fun ~n:_ -> Lb_objects.Misc_types.swap_object ~init:(Value.Int 0));
      op_of = (fun ~n:_ ~seed ~pid ~idx -> Value.Int (h ~seed ~pid ~idx mod 5));
      direct_ok = false;
    };
    {
      ot_name = "test-set";
      spec_of = (fun ~n:_ -> Lb_objects.Misc_types.test_and_set);
      op_of =
        (fun ~n:_ ~seed ~pid ~idx ->
          if h ~seed ~pid ~idx mod 3 = 0 then Lb_objects.Misc_types.op_reset
          else Lb_objects.Misc_types.op_test_set);
      direct_ok = false;
    };
    {
      ot_name = "cas";
      spec_of = (fun ~n:_ -> Lb_objects.Misc_types.compare_and_swap ~init:(Value.Int 0));
      op_of =
        (fun ~n:_ ~seed ~pid ~idx ->
          Lb_objects.Misc_types.op_cas
            ~expected:(Value.Int (h ~seed ~pid ~idx mod 3))
            ~new_:(Value.Int (h ~seed ~pid ~idx:(idx + 1000) mod 3)));
      direct_ok = false;
    };
    {
      ot_name = "snapshot";
      spec_of = (fun ~n -> Lb_objects.Misc_types.snapshot ~n);
      op_of =
        (fun ~n:_ ~seed ~pid ~idx ->
          if h ~seed ~pid ~idx mod 3 = 0 then Lb_objects.Misc_types.op_scan
          else Lb_objects.Misc_types.op_update ~segment:pid (Value.Int (h ~seed ~pid ~idx mod 7)));
      direct_ok = false;
    };
    {
      ot_name = "consensus";
      spec_of = (fun ~n:_ -> Lb_objects.Misc_types.consensus);
      op_of = (fun ~n:_ ~seed:_ ~pid ~idx:_ -> Lb_objects.Misc_types.op_propose (Value.Int pid));
      direct_ok = false;
    };
  ]

let find_type name = List.find_opt (fun ot -> ot.ot_name = name) object_types
let type_names = List.map (fun ot -> ot.ot_name) object_types

let supports ~(construction : Iface.t) ot =
  (not (String.equal construction.Iface.name "direct")) || ot.direct_ok

type failure =
  | Not_linearizable of { states : int; bad_prefix : int; completed : int }
  | Unexcused_give_up of { pid : int; seq : int; reason : string }
  | Starved of { pids : int list }
  | Bound_exceeded of { pid : int; seq : int; cost : int; bound : int }
  | Check_budget of { states : int }

type verdict = Pass | Degraded of string | Fail of failure

type run = { verdict : verdict; schedule : int list; checked_ops : int; states : int }

let same_class a b =
  match (a, b) with
  | Pass, Pass -> true
  | Degraded _, Degraded _ -> true
  | Fail (Not_linearizable _), Fail (Not_linearizable _) -> true
  | Fail (Unexcused_give_up _), Fail (Unexcused_give_up _) -> true
  | Fail (Starved _), Fail (Starved _) -> true
  | Fail (Bound_exceeded _), Fail (Bound_exceeded _) -> true
  | Fail (Check_budget _), Fail (Check_budget _) -> true
  | _ -> false

let pp_failure ppf = function
  | Not_linearizable { states; bad_prefix; completed } ->
    Format.fprintf ppf "not linearizable (first %d of %d responses, %d states)" bad_prefix
      completed states
  | Unexcused_give_up { pid; seq; reason } ->
    Format.fprintf ppf "p%d#%d gave up with no fault to excuse it: %s" pid seq reason
  | Starved { pids } ->
    Format.fprintf ppf "starved: {%s}"
      (String.concat ", " (List.map (Printf.sprintf "p%d") pids))
  | Bound_exceeded { pid; seq; cost; bound } ->
    Format.fprintf ppf "p%d#%d cost %d exceeds the analytic wait-free bound %d" pid seq cost
      bound
  | Check_budget { states } -> Format.fprintf ppf "checker budget exhausted (%d states)" states

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Degraded note -> Format.fprintf ppf "degraded (%s)" note
  | Fail f -> Format.fprintf ppf "FAIL: %a" pp_failure f

(* Drive one execution: instantiate construction + fault engine on a fresh
   memory and run the seeded workload under [scheduler], recording every
   choice.  [wrap_hooks] lets a caller interpose on the fault hooks (the
   exhaustive checker taps [filter] to see each process's pending shared
   operation).  Fully deterministic in (construction, ot, plan, n, ops,
   seed, scheduler). *)
let execute ~(construction : Iface.t) ~ot ~plan ~n ~ops ~seed
    ?(model = Memory_model.SC) ?(wrap_hooks = Fun.id) ~scheduler () =
  let spec = ot.spec_of ~n in
  let engine = Fault_engine.instantiate ~seed plan in
  let layout = Layout.create () in
  let handle = construction.Iface.create layout ~n spec in
  let memory = Memory.create ~model () in
  Layout.install layout memory;
  Fault_engine.arm engine memory;
  let bound = construction.Iface.worst_case ~n in
  let fuel = (64 * n * ops * (bound + 8)) + Fault_plan.horizon plan in
  let log = ref [] in
  let recording ~step ~runnable =
    match scheduler ~step ~runnable with
    | Some pid ->
      log := pid :: !log;
      Some pid
    | None -> None
  in
  let workload pid = List.init ops (fun idx -> ot.op_of ~n ~seed ~pid ~idx) in
  let result =
    Harness.run_handle ~memory ~handle ~n ~ops:workload ~scheduler:recording
      ~assignment:(Coin.constant 0) ~fuel
      ~hooks:(wrap_hooks (Fault_engine.hooks engine))
      ()
  in
  (result, List.rev !log)

(* Judge one executed run: completion accounting, the analytic cost bound,
   give-up excuses, then linearizability.  Shared verbatim by the fuzzer
   and the exhaustive checker, so a schedule is judged identically however
   it was produced. *)
let assess ~(construction : Iface.t) ~ot ~plan ~n ~ops ~max_states ~schedule result =
  let spec = ot.spec_of ~n in
  let bound = construction.Iface.worst_case ~n in
  let history = History.of_result result in
  let checked_ops = List.length history in
  let stopped = Fault_plan.crash_stopped plan in
  let reg = Lb_observe.Metrics.current () in
  Lb_observe.Metrics.incr reg "conformance.runs";
  Lb_observe.Metrics.incr ~by:checked_ops reg "conformance.checked_ops";
  let finish verdict states =
    Lb_observe.Metrics.incr reg
      (match verdict with
      | Pass -> "conformance.pass"
      | Degraded _ -> "conformance.degraded"
      | Fail _ -> "conformance.fail");
    if states > 0 then Lb_observe.Metrics.observe_int reg "conformance.states" states;
    { verdict; schedule; checked_ops; states }
  in
  (* Survivors must account for every operation; crash-stopped pids are
     allowed to leave the rest of their queue unrun. *)
  let accounted pid =
    List.length
      (List.filter (fun (s : Harness.op_stat) -> s.Harness.pid = pid) result.Harness.stats)
    + List.length
        (List.filter (fun (f : Harness.op_failure) -> f.Harness.pid = pid) result.Harness.failures)
  in
  let starved =
    List.filter (fun pid -> (not (List.mem pid stopped)) && accounted pid < ops) (List.init n Fun.id)
  in
  if starved <> [] then finish (Fail (Starved { pids = starved })) 0
  else
    (* Conformance is linearizability *plus* the analytic worst-case cost:
       the paper's upper-bound claim is about shared-access time, so a
       fault-free run where an operation overshoots the construction's bound
       is a conformance failure (it kills helping-removal mutants that are
       linearizability-preserving).  Faulty plans relax it, as in Certify. *)
    let over_bound =
      if Fault_plan.has_spurious plan || Fault_plan.has_crash plan then None
      else
        List.find_opt (fun (s : Harness.op_stat) -> s.Harness.cost > bound) result.Harness.stats
    in
    match over_bound with
    | Some s ->
      finish
        (Fail (Bound_exceeded { pid = s.Harness.pid; seq = s.Harness.seq; cost = s.Harness.cost; bound }))
        0
    | None ->
    let unexcused =
      if Fault_plan.has_spurious plan then None
      else
        match result.Harness.failures with
        | [] -> None
        | f :: _ ->
          Some (Unexcused_give_up { pid = f.Harness.pid; seq = f.Harness.seq; reason = f.Harness.reason })
    in
    match unexcused with
    | Some failure -> finish (Fail failure) 0
    | None -> (
      match Linearize.check ~max_states spec history with
      | Linearize.Linearizable { stats; _ } ->
        let gave_up = List.length result.Harness.failures in
        if gave_up > 0 then
          finish
            (Degraded (Printf.sprintf "%d give-up(s) under injected spurious SC failures" gave_up))
            stats.Linearize.states
        else if result.Harness.restarts > 0 then
          finish
            (Degraded (Printf.sprintf "%d crash-recovery restart(s)" result.Harness.restarts))
            stats.Linearize.states
        else finish Pass stats.Linearize.states
      | Linearize.Not_linearizable { stats; completed; bad_prefix } ->
        finish
          (Fail (Not_linearizable { states = stats.Linearize.states; bad_prefix; completed }))
          stats.Linearize.states
      | Linearize.Budget_exhausted { budget; _ } ->
        finish (Fail (Check_budget { states = budget })) budget)

let run_once ~construction ~ot ~plan ~n ~ops ~seed ?model ~max_states ~scheduler () =
  let result, schedule =
    execute ~construction ~ot ~plan ~n ~ops ~seed ?model ~scheduler ()
  in
  assess ~construction ~ot ~plan ~n ~ops ~max_states ~schedule result

(* Both fuzz schedulers are leaves of the {!Lb_check.Sched_tree} oracle:
   sampling and replay draw from the same abstraction the DPOR walk
   exhausts, so a schedule means the same thing in every mode. *)
let tree_scheduler sched ~step ~runnable =
  Lb_check.Sched_tree.choose sched ~step ~enabled:runnable

(* Replay a recorded schedule: consume entries (skipping ones that are not
   runnable at that step), then finish the run round-robin so the verdict is
   always about a completed run.  Deterministic. *)
let replay_scheduler entries = tree_scheduler (Lb_check.Sched_tree.replayer entries)

let replay ~construction ~ot ~plan ~n ~ops ~seed ?model ~max_states schedule =
  run_once ~construction ~ot ~plan ~n ~ops ~seed ?model ~max_states
    ~scheduler:(replay_scheduler schedule) ()

type counterexample = {
  seed_used : int;
  original : int list;
  minimized : int list;
  minimized_verdict : verdict;
  locally_minimal : bool;
  deterministic : bool;  (** replaying [minimized] twice gives equal verdicts. *)
}

type cell = {
  construction : string;
  object_type : string;
  plan_name : string;
  model : Memory_model.t;
  n : int;
  ops : int;
  budget : int;  (** schedules requested. *)
  runs : int;  (** schedules executed (stops at the first failure). *)
  passed : int;
  degraded : int;
  counterexample : counterexample option;
}

let shrink_failure ~construction ~ot ~plan ~n ~ops ~seed ?model ~max_states (failed : run) =
  let verdict_of schedule =
    (replay ~construction ~ot ~plan ~n ~ops ~seed ?model ~max_states schedule).verdict
  in
  let test schedule = same_class (verdict_of schedule) failed.verdict in
  let minimized = Shrink.minimize ~test failed.schedule in
  let v1 = verdict_of minimized and v2 = verdict_of minimized in
  let reg = Lb_observe.Metrics.current () in
  Lb_observe.Metrics.incr ~by:(List.length failed.schedule - List.length minimized) reg
    "conformance.shrink.removed_steps";
  {
    seed_used = seed;
    original = failed.schedule;
    minimized;
    minimized_verdict = v1;
    locally_minimal = Shrink.is_one_minimal ~test minimized;
    deterministic = same_class v1 v2 && v1 = v2;
  }

let check_cell ~(construction : Iface.t) ~ot ~plan_name ~plan
    ?(model = Memory_model.SC) ~n ~ops ~schedules ~seed ~max_states () =
  let passed = ref 0 and degraded = ref 0 in
  let rec go i =
    if i >= schedules then
      {
        construction = construction.Iface.name;
        object_type = ot.ot_name;
        plan_name;
        model;
        n;
        ops;
        budget = schedules;
        runs = schedules;
        passed = !passed;
        degraded = !degraded;
        counterexample = None;
      }
    else
      let seed_i = seed + i in
      let r =
        run_once ~construction ~ot ~plan ~n ~ops ~seed:seed_i ~model ~max_states
          ~scheduler:(tree_scheduler (Lb_check.Sched_tree.sampler ~seed:seed_i)) ()
      in
      match r.verdict with
      | Pass ->
        incr passed;
        go (i + 1)
      | Degraded _ ->
        incr degraded;
        go (i + 1)
      | Fail _ ->
        let cx =
          shrink_failure ~construction ~ot ~plan ~n ~ops ~seed:seed_i ~model ~max_states r
        in
        {
          construction = construction.Iface.name;
          object_type = ot.ot_name;
          plan_name;
          model;
          n;
          ops;
          budget = schedules;
          runs = i + 1;
          passed = !passed;
          degraded = !degraded;
          counterexample = Some cx;
        }
  in
  go 0

let cell_ok c = c.counterexample = None

let pp_cell ppf c =
  Format.fprintf ppf "%-15s | %-12s | %-13s | %4d/%d ok (%d degraded)%s%s" c.construction
    c.object_type c.plan_name c.passed c.runs c.degraded
    (if Memory_model.relaxed c.model then
       Printf.sprintf " [%s]" (Memory_model.to_string c.model)
     else "")
    (match c.counterexample with
    | None -> ""
    | Some cx ->
      Format.asprintf " | COUNTEREXAMPLE seed=%d |sched| %d -> %d (%a)%s" cx.seed_used
        (List.length cx.original) (List.length cx.minimized) pp_verdict cx.minimized_verdict
        (if cx.locally_minimal then ", locally minimal" else ""))
