(** Bounded dynamic partial-order reduction over a persistent scheduler tree.

    This is the dejafu-style systematic-concurrency-testing core shared by
    the pure explorer ({!Explore.iter_dpor}) and the conformance certifier
    ([Lb_conformance.Exhaustive]): one abstraction that can {e exhaust} a
    schedule space (DPOR with dynamically added backtracking points),
    {e sample} it (the seeded random scheduler the fuzzer uses), or
    {e replay} one recorded schedule — all three behind the same
    {!choose}/{!commit} oracle, so a runner written once serves every mode.

    {2 The model}

    A runner executes one schedule at a time (stateless model checking:
    every run restarts from the initial state).  At each scheduling point it
    calls {!choose} with the currently enabled processes, executes the
    returned process's next shared-memory step, and reports the step's
    {e footprint} back with {!commit}.  Two steps are {e dependent} when
    their footprints touch a common register or either is {e blocking}; all
    reduction arguments are relative to this relation (see {!dependent}).

    In exhaustive mode, {!explore} drives the runner repeatedly.  Each
    completed run's trace is folded into a persistent tree whose nodes carry
    {e todo} decisions (discovered backtracking points), {e done} edges
    (explored decisions), and {e sleep} sets (fully-explored siblings that
    pending runs must not repeat).  Races — a step dependent with an earlier
    step of another process that was enabled there — add todo entries
    dynamically, per Flanagan–Godefroid DPOR; sleep sets prune the
    re-execution of already-covered interleavings, per Godefroid's
    sleep-set theorem.

    {2 Bounding}

    Exploration composes three optional {!bounds} (dejafu's combination
    bounding): a pre-emption bound, a fairness bound, and a length bound.
    Out-of-bound schedules are not an error — they are counted in
    the [elided] field of {!stats} and the result honestly reports
    [{!exhaustive} = false].  Pre-emption bounding adds the conservative
    extra backtracking point at the previous context switch (Coons–
    Musuvathi–McKinley BPOR) so low bounds still find most reorderings;
    fairness and length bounding filter schedules without extra points, so
    within-bound coverage is best-effort — the [elided] count is the
    contract, never a silent claim of exhaustiveness. *)

type fp = {
  regs : int list;  (** registers the step may read or write. *)
  blocking : bool;
      (** dependent with {e every} other step: return-publishing steps in
          the pure explorer (commuting a return changes the wakeup
          summary), operation invocation/response boundaries in the
          harness (commuting them changes history precedence), and every
          step under an impure fault plan. *)
}

val dependent : fp -> fp -> bool
(** Register overlap, or either side blocking.  Register overlap subsumes
    LL/SC link-kill dependence: any write-class step on [r] can kill
    another process's outstanding link on [r], and both footprints
    contain [r]. *)

val footprint : Lb_memory.Op.invocation -> int list
(** The registers a shared-memory invocation may read or write — the
    [regs] component of its {!fp}.  [Fence] is statically empty: its effect
    (flushing buffered writes) depends on run-time buffer contents, so
    relaxed-model explorers must union in the issuing process's buffered
    registers (see [Explore.iter_dpor]); under SC a fence is a pure no-op. *)

type bounds = {
  preempt : int option;
      (** max pre-emptive context switches per schedule — a switch away
          from a process that was still enabled. *)
  fair : int option;
      (** max difference between a process's step count (after its next
          step) and the least-stepped enabled process's count. *)
  length : int option;  (** max scheduling decisions per schedule. *)
}

val no_bounds : bounds
val bounded : bounds -> bool
val pp_bounds : Format.formatter -> bounds -> unit

(** {1 The scheduling oracle} *)

type 'k sched
(** One run's scheduling oracle.  ['k] is the runner's state-dedup key
    type (only exercised by {!mark}; samplers and replayers ignore it). *)

val choose : 'k sched -> step:int -> enabled:int list -> int option
(** Pick the next process.  [None] aborts the run: every enabled process
    is asleep, the bounds forbid every choice, or {!mark} hit a visited
    state.  [step] is the caller's global step clock — used only by
    samplers/replayers, so gaps (e.g. harness idle ticks) are fine. *)

val commit : 'k sched -> fp:fp -> branches:int -> int
(** Report the chosen step's footprint and its coin-branch fan-out; the
    returned branch index (in [0 .. branches-1]) selects which branch the
    runner must take.  Exactly one [commit] must follow each successful
    {!choose}.  Sibling branches become mandatory todo entries — coin
    outcomes are resolved eagerly and are not schedule-reducible. *)

val also : 'k sched -> pid:int -> unit
(** Declare [pid] a {e mandatory} alternative to the step just committed:
    it is enqueued as a todo sibling at that node, like a coin branch —
    not schedule-reducible — unless it is asleep there or already
    explored.  Runners must call this for every enabled decision whose
    effect the committed step silently absorbed, because an absorbed
    decision never appears in any trace and an unobserved step can never
    be raced by the backtracking pass.  The canonical client is
    [Explore.iter_dpor] under a relaxed memory model: a fencing step
    drains the issuing process's store buffer, absorbing the enabled
    flush pseudo-decisions — without [also], "flush first, interleave
    other processes, then fence" would be silently unexplored.  Call
    after {!commit}, before the next {!choose}. *)

val mark : 'k sched -> key:'k -> unit
(** Optional state dedup (stateful DPOR), called after {!commit} with a
    canonical key of the resulting state.  A revisit whose stored sleep
    set is covered by the current one aborts the run (the next {!choose}
    returns [None]).  A cut run's race detection would otherwise be
    incomplete — races between its prefix and its never-executed
    continuation go unseen — so {!explore} keeps, per visited state, a
    summary of every [(process, footprint)] step known to occur below it
    (Yang–Chen–Gopalakrishnan–Kirby), races a cut run's prefix against
    that summary as {e virtual steps}, and re-fires the analysis when the
    summary grows later.  The key must determine both the future behaviour
    (memory, per-process continuations) and the outcome-relevant past, as
    {!Explore.iter_reduced}'s key does.  Runners that cannot canonicalize
    state simply never call [mark]. *)

val interrupted : 'k sched -> bool
(** Whether this run was aborted by the oracle (sleep, bound, or dedup) —
    distinguishes oracle aborts from genuine runner outcomes such as a
    stalled harness. *)

(** {1 Exhaustive exploration} *)

type stats = {
  schedules : int;  (** complete runs the callback saw. *)
  sleep_blocked : int;
      (** runs abandoned with every enabled process asleep — provably
          redundant interleavings, no loss. *)
  deduped : int;  (** runs abandoned at a previously-visited state. *)
  elided : int;
      (** schedules provably dropped by the bounds (cut runs plus todo
          entries rejected at insertion) — nonzero means the exploration
          was {e not} exhaustive. *)
  max_depth : int;  (** longest schedule executed, in decisions. *)
}

val exhaustive : stats -> bool
(** [elided = 0]: nothing was cut by a bound, so the outcome set is the
    full one (up to the documented reduction). *)

val pp_stats : Format.formatter -> stats -> unit

exception Schedule_limit of int
(** Raised by {!explore} when the total number of runs (complete or
    aborted) would exceed [max_schedules] — a safety valve against
    state-space blowup, not a bound: there is no honest partial answer at
    this level, so it is an error. *)

val explore :
  ?bounds:bounds ->
  ?max_schedules:int ->
  run:('k sched -> 'r option) ->
  f:('r -> bool) ->
  unit ->
  stats
(** Drive [run] until the scheduler tree has no todo decisions left.
    [run] must execute one schedule under the given oracle from the
    initial state and return [Some result] for a completed run or [None]
    for an aborted one (check {!interrupted} to distinguish oracle aborts
    from runner failures, which are counted as elided).  [f] receives
    each completed run's result; returning [false] stops the exploration
    early (the stats then cover only the explored part).
    [max_schedules] defaults to [200_000]. *)

(** {1 Sampling and replay oracles} *)

val sampler : seed:int -> 'k sched
(** The seeded random oracle — byte-identical to
    {!Lb_runtime.Scheduler.random} with the same seed, so fuzzing samples
    exactly the tree that {!explore} exhausts, with unchanged pinned
    results.  [commit] always selects branch 0. *)

val replayer : int list -> 'k sched
(** Replay a recorded pid schedule: entries not currently enabled are
    skipped, and after exhaustion the run finishes round-robin —
    byte-identical to the conformance replayer's semantics. *)
