(** Exhaustive interleaving exploration — a stateless model checker.

    The paper's adversary is one particular scheduler; this module checks
    algorithm properties against {e all} schedulers, by depth-first
    enumeration of every interleaving of shared-memory operations (and every
    combination of coin outcomes from a finite range).  Feasible for small
    systems — the run count is multinomial in the step counts — so it
    complements the randomized schedule tests with exhaustive certainty at
    small n.

    Local coin tosses are resolved eagerly when a process is about to be
    scheduled (branching over [coin_range]); they are not separately
    interleaved, which is sound for all properties that depend only on
    shared-memory interaction and termination values. *)

open Lb_memory
open Lb_runtime

type 'a event =
  | Stepped of int * Op.invocation * Op.response
      (** a process performed a shared-memory operation. *)
  | Flushed of int * int * Value.t
      (** [Flushed (pid, reg, v)] — a buffered write by [pid] of [v] into
          [reg] reached shared memory (relaxed models only; see
          {!Lb_memory.Memory_model}).  Flushes are scheduler-visible steps:
          the explorers interleave them freely with process steps, and any
          buffers still pending when every process has returned drain
          deterministically at run end (their order is unobservable). *)
  | Returned of int * 'a  (** a process terminated with a result. *)

type 'a run = {
  events : 'a event list;  (** in execution order. *)
  results : (int * 'a) list;  (** id order; complete (every process returned). *)
}

exception Limit_exceeded of int
(** Raised when the run count would exceed [max_runs].  [max_runs] is a
    safety valve against state-space blowup, not a schedule bound: an
    enumeration cut at an arbitrary run count has no honest meaning, so
    overrunning it is an error, never a silently-truncated answer.  To
    explore {e deliberately} incomplete schedule sets, pass
    {!Sched_tree.bounds} to {!iter_dpor}: bounded runs are dropped
    gracefully and counted in the [elided] field of {!Sched_tree.stats}, so the result
    says exactly how much was left unexplored. *)

val iter :
  n:int ->
  program_of:(int -> 'a Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?model:Memory_model.t ->
  ?eager_flush:bool ->
  ?max_runs:int ->
  f:('a run -> unit) ->
  unit ->
  int
(** Enumerate every terminating run; call [f] on each; return the count.
    [coin_range] defaults to [[0]] (deterministic algorithms); [max_runs]
    defaults to 200_000.  All programs must terminate on every schedule —
    a non-terminating branch diverges (use bounded programs).

    [model] (default SC) selects the memory model; under TSO/PSO every
    enabled flush is enumerated as a scheduling choice alongside process
    steps, so the run set covers all bufferings.  [eager_flush] (default
    false) instead commits each step's buffered writes immediately after the
    step — the restricted schedule shape under which a relaxed model's
    outcome set provably coincides with SC (pinned as a property in the test
    suite); it is a no-op under SC. *)

val for_all :
  n:int ->
  program_of:(int -> 'a Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?model:Memory_model.t ->
  ?eager_flush:bool ->
  ?max_runs:int ->
  f:('a run -> bool) ->
  unit ->
  bool

val exists :
  n:int ->
  program_of:(int -> 'a Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?model:Memory_model.t ->
  ?eager_flush:bool ->
  ?max_runs:int ->
  f:('a run -> bool) ->
  unit ->
  bool

(** {1 Derived run predicates} *)

val steppers_before_first_one : int run -> Ids.t option
(** For wakeup condition 3: the set of processes that had performed at least
    one shared-memory operation strictly before the first [Returned (_, 1)]
    event; [None] when nobody returns 1. *)

val wakeup_ok : n:int -> int run -> bool
(** All three wakeup conditions on one run (condition 3 in the
    shared-op-step interpretation above, the one relevant to all corpus
    algorithms). *)

(** {1 Reduced exploration}

    [iter] enumerates the full multinomial schedule space; most of those
    schedules only differ by swapping adjacent steps that touch disjoint
    registers, and many interleavings reconverge to the same state.
    {!iter_reduced} prunes both:

    - {e sleep sets}: after exploring a process's step at a state, the
      step is put to sleep for the sibling subtrees and stays asleep until
      a conflicting step (shared register) executes — every pruned
      schedule differs from an explored one only by commuting adjacent
      independent steps.  A step whose expansion returns is treated as
      dependent with everything, because commuting a [Returned] past a
      [Stepped] changes which processes stepped before it.
    - {e state dedup}: a state is keyed on (canonical memory, per-process
      operation/response/toss histories, the {!steppers_before_first_one}
      summary); reaching a visited key with a sleep set that covers the
      stored one cannot reveal new behaviour and is cut off.

    Soundness scope: reduction preserves the {e set} of distinct
    [(results, wakeup verdict)] outcomes — sound for {!wakeup_ok}-style
    predicates, which depend on the results and on which processes stepped
    before the first 1-return, but {e not} for predicates sensitive to the
    exact event order of every schedule.  The callback sees strictly fewer
    runs; counts are reported in {!stats}.  See docs/PERFORMANCE.md for
    the full argument. *)

type stats = {
  runs : int;  (** runs the callback saw. *)
  sleep_pruned : int;  (** subtrees skipped by sleep sets. *)
  dedup_pruned : int;  (** subtrees skipped as revisited states. *)
}

val iter_reduced :
  n:int ->
  program_of:(int -> int Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:(int run -> unit) ->
  unit ->
  stats
(** Like {!iter} under the reduction above.  [max_runs] bounds the runs
    actually emitted. *)

val for_all_reduced :
  n:int ->
  program_of:(int -> int Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:(int run -> bool) ->
  unit ->
  bool
(** {!for_all} over the reduced schedule set — equivalent to the full
    [for_all] for predicates within the soundness scope above. *)

(** {1 Dynamic partial-order reduction}

    {!iter_reduced} expands {e every} awake process at every state and
    relies on sleep sets plus dedup to cut the tree after the fact.
    {!iter_dpor} inverts this: each state expands {e one} process, and
    alternatives are added back only where a {e race} — a step dependent
    with an earlier co-enabled step of another process — proves the
    reordering can matter ({!Sched_tree}).  The same sleep sets, state
    dedup, and soundness scope as {!iter_reduced} apply (the callback sees
    one representative per distinct [(results, wakeup verdict)] outcome,
    not every schedule), with the same coin-resolution caveat, and
    optional {!Sched_tree.bounds} degrade the exploration gracefully
    instead of raising {!Limit_exceeded}: see docs/EXPLORATION.md. *)

val iter_dpor :
  n:int ->
  program_of:(int -> int Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?model:Memory_model.t ->
  ?bounds:Sched_tree.bounds ->
  ?dedup:bool ->
  ?max_runs:int ->
  f:(int run -> unit) ->
  unit ->
  Sched_tree.stats
(** Explore with bounded DPOR; [f] sees each completed run.  Without
    [bounds] the exploration is exhaustive up to the documented reduction
    ({!Sched_tree.exhaustive} holds); with bounds, cut schedules are
    counted in {!Sched_tree.stats}'s [elided] field.  [dedup] (default [true])
    enables stateful DPOR — cutting covered state revisits, compensated by
    continuation summaries ({!Sched_tree.explore}); [~dedup:false] is pure
    stateless DPOR, whose schedule count is the number of Mazurkiewicz
    traces and can explode on long programs (tree-collect at n=2 already
    does) — use it only on small systems or under [bounds].  [max_runs]
    (default 200_000) caps total run executions and raises
    {!Limit_exceeded} when hit.

    [model] (default SC): under TSO/PSO, enabled flushes join the tree's
    decision alphabet as pseudo-process ids (stable across replays because
    the flushable set is a function of the re-derived state), each with the
    flushed register as footprint; a fencing step's footprint is widened by
    its dynamically buffered registers; and the dedup key includes buffer
    contents — a buffered-but-unflushed write is part of canonical state.
    {!iter_reduced} has no [model] parameter: its static sleep-set
    machinery predates the flush alphabet, so it explores SC only. *)

val for_all_dpor :
  n:int ->
  program_of:(int -> int Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?model:Memory_model.t ->
  ?bounds:Sched_tree.bounds ->
  ?dedup:bool ->
  ?max_runs:int ->
  f:(int run -> bool) ->
  unit ->
  bool
(** {!for_all} over the DPOR-reduced schedule set; stops at the first
    counterexample. *)
