(** Exhaustive interleaving exploration — a stateless model checker.

    The paper's adversary is one particular scheduler; this module checks
    algorithm properties against {e all} schedulers, by depth-first
    enumeration of every interleaving of shared-memory operations (and every
    combination of coin outcomes from a finite range).  Feasible for small
    systems — the run count is multinomial in the step counts — so it
    complements the randomized schedule tests with exhaustive certainty at
    small n.

    Local coin tosses are resolved eagerly when a process is about to be
    scheduled (branching over [coin_range]); they are not separately
    interleaved, which is sound for all properties that depend only on
    shared-memory interaction and termination values. *)

open Lb_memory
open Lb_runtime

type 'a event =
  | Stepped of int * Op.invocation * Op.response
      (** a process performed a shared-memory operation. *)
  | Returned of int * 'a  (** a process terminated with a result. *)

type 'a run = {
  events : 'a event list;  (** in execution order. *)
  results : (int * 'a) list;  (** id order; complete (every process returned). *)
}

exception Limit_exceeded of int
(** Raised when the run count would exceed [max_runs] — exploration is only
    meaningful when it is exhaustive, so truncation is an error, not a
    partial answer. *)

val iter :
  n:int ->
  program_of:(int -> 'a Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:('a run -> unit) ->
  unit ->
  int
(** Enumerate every terminating run; call [f] on each; return the count.
    [coin_range] defaults to [[0]] (deterministic algorithms); [max_runs]
    defaults to 200_000.  All programs must terminate on every schedule —
    a non-terminating branch diverges (use bounded programs). *)

val for_all :
  n:int ->
  program_of:(int -> 'a Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:('a run -> bool) ->
  unit ->
  bool

val exists :
  n:int ->
  program_of:(int -> 'a Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:('a run -> bool) ->
  unit ->
  bool

(** {1 Derived run predicates} *)

val steppers_before_first_one : int run -> Ids.t option
(** For wakeup condition 3: the set of processes that had performed at least
    one shared-memory operation strictly before the first [Returned (_, 1)]
    event; [None] when nobody returns 1. *)

val wakeup_ok : n:int -> int run -> bool
(** All three wakeup conditions on one run (condition 3 in the
    shared-op-step interpretation above, the one relevant to all corpus
    algorithms). *)

(** {1 Reduced exploration}

    [iter] enumerates the full multinomial schedule space; most of those
    schedules only differ by swapping adjacent steps that touch disjoint
    registers, and many interleavings reconverge to the same state.
    {!iter_reduced} prunes both:

    - {e sleep sets}: after exploring a process's step at a state, the
      step is put to sleep for the sibling subtrees and stays asleep until
      a conflicting step (shared register) executes — every pruned
      schedule differs from an explored one only by commuting adjacent
      independent steps.  A step whose expansion returns is treated as
      dependent with everything, because commuting a [Returned] past a
      [Stepped] changes which processes stepped before it.
    - {e state dedup}: a state is keyed on (canonical memory, per-process
      operation/response/toss histories, the {!steppers_before_first_one}
      summary); reaching a visited key with a sleep set that covers the
      stored one cannot reveal new behaviour and is cut off.

    Soundness scope: reduction preserves the {e set} of distinct
    [(results, wakeup verdict)] outcomes — sound for {!wakeup_ok}-style
    predicates, which depend on the results and on which processes stepped
    before the first 1-return, but {e not} for predicates sensitive to the
    exact event order of every schedule.  The callback sees strictly fewer
    runs; counts are reported in {!stats}.  See docs/PERFORMANCE.md for
    the full argument. *)

type stats = {
  runs : int;  (** runs the callback saw. *)
  sleep_pruned : int;  (** subtrees skipped by sleep sets. *)
  dedup_pruned : int;  (** subtrees skipped as revisited states. *)
}

val iter_reduced :
  n:int ->
  program_of:(int -> int Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:(int run -> unit) ->
  unit ->
  stats
(** Like {!iter} under the reduction above.  [max_runs] bounds the runs
    actually emitted. *)

val for_all_reduced :
  n:int ->
  program_of:(int -> int Program.t) ->
  ?inits:(int * Value.t) list ->
  ?coin_range:int list ->
  ?max_runs:int ->
  f:(int run -> bool) ->
  unit ->
  bool
(** {!for_all} over the reduced schedule set — equivalent to the full
    [for_all] for predicates within the soundness scope above. *)
