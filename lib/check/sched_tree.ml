open Lb_memory
open Lb_runtime

type fp = { regs : int list; blocking : bool }

let dependent a b =
  a.blocking || b.blocking || List.exists (fun r -> List.mem r b.regs) a.regs

let footprint = function
  | Op.Ll r | Op.Sc (r, _) | Op.Validate r | Op.Swap (r, _) | Op.Write (r, _) -> [ r ]
  | Op.Move (src, dst) -> [ src; dst ]
  | Op.Fence -> []

type bounds = { preempt : int option; fair : int option; length : int option }

let no_bounds = { preempt = None; fair = None; length = None }
let bounded b = b.preempt <> None || b.fair <> None || b.length <> None

let pp_bounds ppf b =
  if not (bounded b) then Format.pp_print_string ppf "unbounded"
  else begin
    let sep = ref false in
    let one name = function
      | None -> ()
      | Some v ->
        if !sep then Format.pp_print_string ppf ", ";
        sep := true;
        Format.fprintf ppf "%s<=%d" name v
    in
    one "preempt" b.preempt;
    one "fair" b.fair;
    one "length" b.length
  end

(* ---- the per-run oracle ---- *)

(* A sleeping process: it was fully explored at some ancestor node and must
   not be rescheduled until a step dependent with its pending one runs. *)
type entry = { sl_pid : int; sl_fp : fp }

let wake sleep fp = List.filter (fun e -> not (dependent e.sl_fp fp)) sleep
let asleep sleep p = List.exists (fun e -> e.sl_pid = p) sleep

(* One committed decision of the current run, with everything the
   backtracking pass needs to re-inspect the position afterwards. *)
type tstep = {
  t_pid : int;
  t_branch : int;
  t_branches : int;
  t_fp : fp;
  t_enabled : int list;
  t_sleep : entry list;  (* sleep set in force before this step. *)
  t_preempts : int;  (* pre-emptive switches strictly before this step. *)
  mutable t_also : int list;  (* mandatory sibling decisions (see [also]). *)
}

type status = Running | Sleep_blocked | Bound_blocked | Deduped

(* ---- the persistent scheduler tree (types; operations further down) ---- *)

type node = {
  nd_enabled : int list;
  mutable nd_todo : (int * int) list;  (* decisions awaiting exploration *)
  mutable nd_edges : edge list;  (* explored decisions, in DFS order *)
}

and edge = {
  ed_pid : int;
  ed_branch : int;
  ed_fp : fp;
  mutable ed_child : node option;
}

(* What the dedup table remembers about a canonical state (stateful DPOR,
   after Yang et al.): the weakest sleep set it was ever reached with
   (Godefroid's revisit rule), the [(pid, footprint)] of every step known
   to occur below it, and the runs that were cut at it — each cut run's
   prefix must be re-raced against summary entries that arrive later. *)
type 'k vent = {
  mutable v_sleep : int list;
  mutable v_sum : (int * fp) list;
  mutable v_subs : 'k sub list;
}

and 'k sub = {
  s_trace : tstep array;
  s_nodes : node array;
  s_hb : int -> int -> bool;
  s_marks : ('k * int) list;
}

type 'k dpor = {
  d_bounds : bounds;
  d_visited : ('k, 'k vent) Hashtbl.t;  (* canonical state -> bookkeeping *)
  mutable d_prefix : (int * int) list;  (* (pid, branch) decisions to replay *)
  d_div_sleep : entry list;  (* sleep set in force at the divergence point *)
  mutable d_sleep : entry list;
  mutable d_trace : tstep list;  (* reversed *)
  mutable d_depth : int;
  mutable d_preempts : int;
  mutable d_last : int option;
  d_counts : (int, int) Hashtbl.t;
  mutable d_status : status;
  mutable d_marks : ('k * int) list;  (* (state key, depth) along this run *)
  mutable d_cut : 'k option;  (* the covered key this run was cut at *)
  (* A successful [choose] parks (pid, enabled, prefix branch) here until
     the matching [commit] arrives with the footprint. *)
  mutable d_pending : (int * int list * int option) option;
}

type 'k sched = Dpor of 'k dpor | Sample of int | Replay of int list ref

let sampler ~seed = Sample seed
let replayer entries = Replay (ref entries)

let count d p = Option.value (Hashtbl.find_opt d.d_counts p) ~default:0

let step_in_bounds d ~enabled p =
  let b = d.d_bounds in
  (match b.length with None -> true | Some l -> d.d_depth < l)
  && (match b.preempt with
     | None -> true
     | Some k ->
       let extra =
         match d.d_last with Some q when q <> p && List.mem q enabled -> 1 | _ -> 0
       in
       d.d_preempts + extra <= k)
  && (match b.fair with
     | None -> true
     | Some dd ->
       let least = List.fold_left (fun m q -> min m (count d q)) max_int enabled in
       count d p + 1 - least <= dd)

let choose (s : _ sched) ~step ~enabled =
  match s with
  | Sample seed ->
    if enabled = [] then None else Scheduler.random ~seed ~step ~runnable:enabled
  | Replay remaining ->
    let rec pick () =
      match !remaining with
      | [] -> Scheduler.round_robin ~step ~runnable:enabled
      | pid :: rest ->
        remaining := rest;
        if List.mem pid enabled then Some pid else pick ()
    in
    pick ()
  | Dpor d -> (
    if d.d_status <> Running then None
    else begin
      assert (d.d_pending = None);
      match d.d_prefix with
      | (pid, b) :: _ ->
        if not (List.mem pid enabled) then
          failwith "Sched_tree: divergent replay (prefix pid not enabled)";
        d.d_pending <- Some (pid, enabled, Some b);
        Some pid
      | [] -> (
        let awake = List.filter (fun p -> not (asleep d.d_sleep p)) enabled in
        if awake = [] then begin
          d.d_status <- Sleep_blocked;
          None
        end
        else
          match List.filter (step_in_bounds d ~enabled) awake with
          | [] ->
            d.d_status <- Bound_blocked;
            None
          | candidates ->
            (* Prefer continuing the previous process: pre-emption-free by
               construction, which keeps bounded exploration cheap. *)
            let pid =
              match d.d_last with
              | Some q when List.mem q candidates -> q
              | _ -> List.hd candidates
            in
            d.d_pending <- Some (pid, enabled, None);
            Some pid)
    end)

let commit (s : _ sched) ~fp ~branches =
  match s with
  | Sample _ | Replay _ -> 0
  | Dpor d -> (
    match d.d_pending with
    | None -> invalid_arg "Sched_tree.commit: no choice pending"
    | Some (pid, enabled, from_prefix) ->
      d.d_pending <- None;
      let branch = match from_prefix with Some b -> b | None -> 0 in
      let at_divergence =
        from_prefix <> None && List.compare_length_with d.d_prefix 1 = 0
      in
      let sleep_before =
        match from_prefix with
        | None -> d.d_sleep
        | Some _ -> if at_divergence then d.d_div_sleep else []
      in
      d.d_trace <-
        {
          t_pid = pid;
          t_branch = branch;
          t_branches = branches;
          t_fp = fp;
          t_enabled = enabled;
          t_sleep = sleep_before;
          t_preempts = d.d_preempts;
          t_also = [];
        }
        :: d.d_trace;
      (match d.d_last with
      | Some q when q <> pid && List.mem q enabled -> d.d_preempts <- d.d_preempts + 1
      | _ -> ());
      d.d_last <- Some pid;
      Hashtbl.replace d.d_counts pid (count d pid + 1);
      d.d_depth <- d.d_depth + 1;
      (match from_prefix with
      | Some _ ->
        d.d_prefix <- List.tl d.d_prefix;
        if d.d_prefix = [] then d.d_sleep <- wake d.d_div_sleep fp
      | None -> d.d_sleep <- wake d.d_sleep fp);
      branch)

(* A step that silently performs another enabled decision's effect hides
   that decision from every trace, and a decision that never occurs in a
   trace can never be raced — DPOR's backtracking only reverses observed
   steps.  The canonical case is a fence draining the store buffer: the
   drained flush pseudo-decisions vanish from the schedule, so "commit the
   buffered write first, let other processes run, then fence" is never
   explored.  [also] lets the runner declare such absorbed alternatives as
   mandatory siblings of the step just committed; they become todo entries
   like coin branches (not schedule-reducible), restoring completeness. *)
let also (s : _ sched) ~pid =
  match s with
  | Sample _ | Replay _ -> ()
  | Dpor d -> (
    match d.d_trace with
    | [] -> invalid_arg "Sched_tree.also: no committed step"
    | t :: _ -> if not (List.mem pid t.t_also) then t.t_also <- pid :: t.t_also)

let mark (s : _ sched) ~key =
  match s with
  | Sample _ | Replay _ -> ()
  | Dpor d ->
    if d.d_status = Running then begin
      if d.d_prefix <> [] then
        (* Replayed prefix: the state is already in the table (its original
           run marked it) and aborting the replay would orphan the todo —
           but this run's continuation still lies below it, so remember the
           position for the summary pass. *)
        d.d_marks <- (key, d.d_depth) :: d.d_marks
      else begin
        let current = List.map (fun e -> e.sl_pid) d.d_sleep in
        match Hashtbl.find_opt d.d_visited key with
        | Some v when List.for_all (fun p -> List.mem p current) v.v_sleep ->
          d.d_status <- Deduped;
          d.d_cut <- Some key
        | Some v ->
          (* Godefroid's revisit rule: re-explore, remembering the weaker
             (intersected) sleep set for future visits. *)
          v.v_sleep <- List.filter (fun p -> List.mem p current) v.v_sleep;
          d.d_marks <- (key, d.d_depth) :: d.d_marks
        | None ->
          Hashtbl.add d.d_visited key { v_sleep = current; v_sum = []; v_subs = [] };
          d.d_marks <- (key, d.d_depth) :: d.d_marks
      end
    end

let interrupted (s : _ sched) =
  match s with Sample _ | Replay _ -> false | Dpor d -> d.d_status <> Running

(* ---- the persistent scheduler tree: operations ---- *)

let new_node enabled = { nd_enabled = enabled; nd_todo = []; nd_edges = [] }

let has_decision node p =
  List.exists (fun e -> e.ed_pid = p) node.nd_edges
  || List.exists (fun (q, _) -> q = p) node.nd_todo

(* The sleep set in force when a todo of [node] is launched: every process
   other than [skip] whose decisions at [node] are all explored and whose
   subtrees are drained — guaranteed by the DFS order of [find_next], which
   only surfaces a node's todos once every existing subtree is todo-free. *)
let sleep0_of node ~skip =
  let pending p = List.exists (fun (q, _) -> q = p) node.nd_todo in
  let rec gather seen acc = function
    | [] -> List.rev acc
    | e :: rest ->
      if List.mem e.ed_pid seen then gather seen acc rest
      else if e.ed_pid = skip || pending e.ed_pid then gather (e.ed_pid :: seen) acc rest
      else gather (e.ed_pid :: seen) ({ sl_pid = e.ed_pid; sl_fp = e.ed_fp } :: acc) rest
  in
  gather [] [] node.nd_edges

(* Deepest-first: drain every existing subtree before surfacing a node's
   own todos, so [sleep0_of] is sound when a todo is finally launched. *)
let rec find_next node path =
  let rec over_edges = function
    | [] -> None
    | e :: rest -> (
      match e.ed_child with
      | None -> over_edges rest
      | Some child -> (
        match find_next child ((e.ed_pid, e.ed_branch) :: path) with
        | Some _ as found -> found
        | None -> over_edges rest))
  in
  match over_edges node.nd_edges with
  | Some _ as found -> found
  | None -> (
    match node.nd_todo with [] -> None | d :: _ -> Some (path, node, d))

(* ---- exhaustive exploration ---- *)

type stats = {
  schedules : int;
  sleep_blocked : int;
  deduped : int;
  elided : int;
  max_depth : int;
}

let exhaustive s = s.elided = 0

let pp_stats ppf s =
  Format.fprintf ppf "%d schedule%s (%d sleep-blocked, %d deduped, %d elided, depth %d)%s"
    s.schedules
    (if s.schedules = 1 then "" else "s")
    s.sleep_blocked s.deduped s.elided s.max_depth
    (if exhaustive s then "" else " [BOUNDED]")

exception Schedule_limit of int

type counters = {
  mutable c_schedules : int;
  mutable c_sleep_blocked : int;
  mutable c_deduped : int;
  mutable c_elided : int;
  mutable c_depth : int;
}

(* Fold a run's trace into the tree, returning the node at each depth.
   Creating a decision's first edge also enqueues its coin siblings:
   branch outcomes are mandatory, not schedule-reducible. *)
let incorporate root trace =
  let len = Array.length trace in
  if len = 0 then [||]
  else begin
    (match !root with
    | None -> root := Some (new_node trace.(0).t_enabled)
    | Some _ -> ());
    let nodes = Array.make len (Option.get !root) in
    let cursor = ref (Option.get !root) in
    for i = 0 to len - 1 do
      nodes.(i) <- !cursor;
      let t = trace.(i) in
      let node = !cursor in
      let edge =
        match
          List.find_opt
            (fun e -> e.ed_pid = t.t_pid && e.ed_branch = t.t_branch)
            node.nd_edges
        with
        | Some e -> e
        | None ->
          let e = { ed_pid = t.t_pid; ed_branch = t.t_branch; ed_fp = t.t_fp; ed_child = None } in
          node.nd_edges <- node.nd_edges @ [ e ];
          node.nd_todo <-
            List.filter (fun (p, b) -> not (p = t.t_pid && b = t.t_branch)) node.nd_todo;
          for b' = 0 to t.t_branches - 1 do
            if
              b' <> t.t_branch
              && (not
                    (List.exists
                       (fun e -> e.ed_pid = t.t_pid && e.ed_branch = b')
                       node.nd_edges))
              && not (List.mem (t.t_pid, b') node.nd_todo)
            then node.nd_todo <- node.nd_todo @ [ (t.t_pid, b') ]
          done;
          e
      in
      (* Absorbed alternatives (see [also]): mandatory unless the pid is
         asleep here — asleep means the alternative was fully explored at
         an ancestor and nothing dependent ran since, so taking it now
         would only replay a covered interleaving. *)
      List.iter
        (fun p ->
          if (not (asleep t.t_sleep p)) && not (has_decision node p) then
            node.nd_todo <- node.nd_todo @ [ (p, 0) ])
        t.t_also;
      if i + 1 < len then begin
        (match edge.ed_child with
        | None -> edge.ed_child <- Some (new_node trace.(i + 1).t_enabled)
        | Some _ -> ());
        cursor := Option.get edge.ed_child
      end
    done;
    nodes
  end

(* Would scheduling [p] at trace position [i] respect the bounds?  A
   necessary condition only — the run itself re-checks every later step —
   used to reject todo entries at insertion (counted as elided). *)
let insertion_in_bounds bounds trace i p =
  let steps_of q upto =
    let c = ref 0 in
    for j = 0 to upto - 1 do
      if trace.(j).t_pid = q then incr c
    done;
    !c
  in
  (match bounds.length with None -> true | Some l -> i < l)
  && (match bounds.preempt with
     | None -> true
     | Some k ->
       let extra =
         if i > 0 && trace.(i - 1).t_pid <> p && List.mem trace.(i - 1).t_pid trace.(i).t_enabled
         then 1
         else 0
       in
       trace.(i).t_preempts + extra <= k)
  && (match bounds.fair with
     | None -> true
     | Some dd ->
       let least =
         List.fold_left (fun m q -> min m (steps_of q i)) max_int trace.(i).t_enabled
       in
       steps_of p i + 1 - least <= dd)

let plain_add counters bounds nodes trace i p =
  if not (has_decision nodes.(i) p) then begin
    if insertion_in_bounds bounds trace i p then
      nodes.(i).nd_todo <- nodes.(i).nd_todo @ [ (p, 0) ]
    else counters.c_elided <- counters.c_elided + 1
  end

(* Add a backtracking point, plus — under a pre-emption bound — BPOR's
   conservative companion point: the pre-emptive backtrack may lie outside
   the bound, so also try the start of the pre-empted process's segment,
   where taking [p] costs no extra pre-emption. *)
let add_point counters bounds nodes trace i p =
  plain_add counters bounds nodes trace i p;
  if bounds.preempt <> None && i > 0 then begin
    let prev = trace.(i - 1).t_pid in
    if prev <> p && List.mem prev trace.(i).t_enabled then begin
      let k = ref (i - 1) in
      while !k > 0 && trace.(!k - 1).t_pid = prev do
        decr k
      done;
      if List.mem p trace.(!k).t_enabled && not (asleep trace.(!k).t_sleep p) then
        plain_add counters bounds nodes trace !k p
    end
  end

(* Request process [p] at trace position [i] (thread-level backtracking,
   per Flanagan–Godefroid — [p]'s own steps in between do not shield a
   race, they just mean [p]'s segment must start earlier). *)
let request counters bounds nodes trace i p =
  let t = trace.(i) in
  if asleep t.t_sleep p then ()
  else if List.mem p t.t_enabled then add_point counters bounds nodes trace i p
  else
    (* [p] not schedulable at the race point: conservatively re-arm every
       awake alternative there. *)
    List.iter
      (fun q ->
        if q <> t.t_pid && not (asleep t.t_sleep q) then
          add_point counters bounds nodes trace i q)
      t.t_enabled

(* Happens-before over the trace — program order plus pairwise dependence
   — as vector clocks.  [vc.(j).(q)] counts how many steps of process
   index [q] happen before-or-at step [j]; [seq.(j)] is step [j]'s own
   occurrence number within its process. *)
let compute_hb trace =
  let len = Array.length trace in
  let pids =
    Array.fold_left (fun acc t -> if List.mem t.t_pid acc then acc else t.t_pid :: acc) [] trace
  in
  let pidx p =
    let rec go i = function
      | [] -> assert false
      | q :: rest -> if q = p then i else go (i + 1) rest
    in
    go 0 pids
  in
  let m = max (List.length pids) 1 in
  let vc = Array.make_matrix (max len 1) m 0 in
  let seq = Array.make (max len 1) 0 in
  let last_of = Array.make m (-1) in
  for j = 0 to len - 1 do
    let p = pidx trace.(j).t_pid in
    let join i =
      for q = 0 to m - 1 do
        if vc.(i).(q) > vc.(j).(q) then vc.(j).(q) <- vc.(i).(q)
      done
    in
    if last_of.(p) >= 0 then join last_of.(p);
    for i = 0 to j - 1 do
      if dependent trace.(i).t_fp trace.(j).t_fp then join i
    done;
    vc.(j).(p) <- vc.(j).(p) + 1;
    seq.(j) <- vc.(j).(p);
    last_of.(p) <- j
  done;
  fun i j -> i = j || (i < j && vc.(j).(pidx trace.(i).t_pid) >= seq.(i))

let add_backtracks counters bounds nodes trace hb =
  let len = Array.length trace in
  (* A race (i, j) is reversible when no third step bridges it in
     happens-before order; only reversible races need backtracking points
     (source-DPOR): deeper races re-appear as reversible ones in the
     re-explored subtrees. *)
  let reversible i j =
    let bridged = ref false in
    let k = ref (i + 1) in
    while (not !bridged) && !k < j do
      if hb i !k && hb !k j then bridged := true;
      incr k
    done;
    not !bridged
  in
  for j = 1 to len - 1 do
    let p = trace.(j).t_pid in
    let fpj = trace.(j).t_fp in
    for i = j - 1 downto 0 do
      let t = trace.(i) in
      if t.t_pid <> p && dependent t.t_fp fpj && reversible i j then
        request counters bounds nodes trace i p
    done
  done

(* Race the trace's steps against [(q, fq)] steps known to occur somewhere
   below the trace's final state (stateful DPOR's virtual steps): a cut
   run never executed its continuation, so the races its race pass would
   have found against the prefix must be reconstructed from the summary.
   A virtual step happens after every real step, so a race (i, virtual) is
   bridged by any real [k > i] that happens-after [i] and precedes the
   virtual step in happens-before order — [q]'s own steps or steps
   dependent with [fq]. *)
let virtual_backtracks counters bounds nodes trace hb entries =
  let len = Array.length trace in
  List.iter
    (fun (q, fq) ->
      for i = len - 1 downto 0 do
        let t = trace.(i) in
        if t.t_pid <> q && dependent t.t_fp fq then begin
          let bridged = ref false in
          for k = i + 1 to len - 1 do
            if
              (not !bridged)
              && hb i k
              && (trace.(k).t_pid = q || dependent trace.(k).t_fp fq)
            then bridged := true
          done;
          if not !bridged then request counters bounds nodes trace i q
        end
      done)
    entries

(* Grow the summary of [key] by [entries], firing the virtual race pass of
   every run cut at [key] and propagating to the summaries of each such
   run's own ancestors, to a fixpoint (summaries grow monotonically within
   a finite footprint universe, so this terminates). *)
let add_sum visited counters bounds key entries =
  let queue = Queue.create () in
  Queue.add (key, entries) queue;
  while not (Queue.is_empty queue) do
    let k, es = Queue.pop queue in
    let v =
      match Hashtbl.find_opt visited k with
      | Some v -> v
      | None ->
        let v = { v_sleep = []; v_sum = []; v_subs = [] } in
        Hashtbl.add visited k v;
        v
    in
    let fresh = List.filter (fun e -> not (List.mem e v.v_sum)) es in
    if fresh <> [] then begin
      v.v_sum <- v.v_sum @ fresh;
      List.iter
        (fun sub ->
          virtual_backtracks counters bounds sub.s_nodes sub.s_trace sub.s_hb fresh;
          List.iter (fun (k', _) -> Queue.add (k', fresh) queue) sub.s_marks)
        v.v_subs
    end
  done

(* The per-run summary pass: every marked state along the trace learns the
   steps that followed it; a run cut at a covered state [k] additionally
   learns [k]'s summarized continuation (everything below [k] counts as
   below each of its own ancestors too), races its prefix against that
   summary now, and subscribes for entries [k] gains later. *)
let update_summaries visited counters bounds nodes trace hb marks cut =
  let suffix i =
    let acc = ref [] in
    for j = Array.length trace - 1 downto i do
      let e = (trace.(j).t_pid, trace.(j).t_fp) in
      if not (List.mem e !acc) then acc := e :: !acc
    done;
    !acc
  in
  List.iter (fun (k, i) -> add_sum visited counters bounds k (suffix i)) marks;
  match cut with
  | None -> ()
  | Some k ->
    let v =
      match Hashtbl.find_opt visited k with
      | Some v -> v
      | None ->
        let v = { v_sleep = []; v_sum = []; v_subs = [] } in
        Hashtbl.add visited k v;
        v
    in
    let sub = { s_trace = trace; s_nodes = nodes; s_hb = hb; s_marks = marks } in
    v.v_subs <- sub :: v.v_subs;
    virtual_backtracks counters bounds nodes trace hb v.v_sum;
    List.iter (fun (k', _) -> add_sum visited counters bounds k' v.v_sum) marks

let explore ?(bounds = no_bounds) ?(max_schedules = 200_000) ~run ~f () =
  let visited = Hashtbl.create 512 in
  let counters =
    { c_schedules = 0; c_sleep_blocked = 0; c_deduped = 0; c_elided = 0; c_depth = 0 }
  in
  let root = ref None in
  let total = ref 0 in
  let continue_ = ref true in
  let exec prefix div_sleep =
    incr total;
    if !total > max_schedules then raise (Schedule_limit max_schedules);
    let d =
      {
        d_bounds = bounds;
        d_visited = visited;
        d_prefix = prefix;
        d_div_sleep = div_sleep;
        d_sleep = (if prefix = [] then div_sleep else []);
        d_trace = [];
        d_depth = 0;
        d_preempts = 0;
        d_last = None;
        d_counts = Hashtbl.create 16;
        d_status = Running;
        d_marks = [];
        d_cut = None;
        d_pending = None;
      }
    in
    (match run (Dpor d) with
    | Some result ->
      counters.c_schedules <- counters.c_schedules + 1;
      if not (f result) then continue_ := false
    | None -> (
      match d.d_status with
      | Sleep_blocked -> counters.c_sleep_blocked <- counters.c_sleep_blocked + 1
      | Deduped -> counters.c_deduped <- counters.c_deduped + 1
      | Bound_blocked | Running -> counters.c_elided <- counters.c_elided + 1));
    let trace = Array.of_list (List.rev d.d_trace) in
    counters.c_depth <- max counters.c_depth (Array.length trace);
    let nodes = incorporate root trace in
    let hb = compute_hb trace in
    add_backtracks counters bounds nodes trace hb;
    if d.d_marks <> [] || d.d_cut <> None then
      update_summaries visited counters bounds nodes trace hb d.d_marks d.d_cut
  in
  exec [] [];
  (match !root with
  | None -> ()
  | Some r ->
    let rec loop () =
      if !continue_ then
        match find_next r [] with
        | None -> ()
        | Some (path_rev, node, ((p, b) as decision)) ->
          let prefix = List.rev (decision :: path_rev) in
          let div_sleep = sleep0_of node ~skip:p in
          exec prefix div_sleep;
          (* The divergence decision must have become an edge; if the runner
             bailed before reaching it, drop the todo rather than loop. *)
          if List.mem decision node.nd_todo then begin
            node.nd_todo <- List.filter (fun d' -> d' <> decision) node.nd_todo;
            counters.c_elided <- counters.c_elided + 1
          end;
          ignore b;
          loop ()
    in
    loop ());
  {
    schedules = counters.c_schedules;
    sleep_blocked = counters.c_sleep_blocked;
    deduped = counters.c_deduped;
    elided = counters.c_elided;
    max_depth = counters.c_depth;
  }
