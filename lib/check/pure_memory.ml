open Lb_memory

module Regs = Map.Make (Int)
module Pids = Map.Make (Int)

type t = {
  default : Value.t;
  model : Memory_model.t;
  regs : (Value.t * Ids.t) Regs.t;
  (* Per-process store buffers, oldest entry first (issue order) — empty and
     untouched under SC.  Mirrors the mutable memory exactly. *)
  buffers : (int * Value.t) list Pids.t;
}

let create ?(default = Value.Unit) ?(model = Memory_model.SC) ~inits () =
  {
    default;
    model;
    regs =
      List.fold_left (fun regs (r, v) -> Regs.add r (v, Ids.empty) regs) Regs.empty inits;
    buffers = Pids.empty;
  }

let model t = t.model

let state t r =
  if r < 0 then invalid_arg (Printf.sprintf "Pure_memory: negative register index %d" r);
  Option.value ~default:(t.default, Ids.empty) (Regs.find_opt r t.regs)

let peek t r = fst (state t r)
let pset t r = snd (state t r)

let set t r st = { t with regs = Regs.add r st t.regs }

(* ---- store buffers (TSO / PSO) ---- *)

let buffer t pid = Option.value ~default:[] (Pids.find_opt pid t.buffers)

let set_buffer t pid entries =
  {
    t with
    buffers =
      (if entries = [] then Pids.remove pid t.buffers
       else Pids.add pid entries t.buffers);
  }

let buffered_value t ~pid r =
  List.fold_left
    (fun acc (r', v) -> if r' = r then Some v else acc)
    None (buffer t pid)

(* A flushed (or immediate) store: value lands, Pset clears. *)
let apply_store t (r, v) = set t r (v, Ids.empty)

let drain t ~pid =
  let t = List.fold_left apply_store t (buffer t pid) in
  { t with buffers = Pids.remove pid t.buffers }

let flushable t =
  match t.model with
  | Memory_model.SC -> []
  | Memory_model.TSO ->
    Pids.fold
      (fun pid entries acc ->
        match entries with [] -> acc | (r, _) :: _ -> (pid, r) :: acc)
      t.buffers []
    |> List.sort compare
  | Memory_model.PSO ->
    Pids.fold
      (fun pid entries acc ->
        let regs = List.sort_uniq Int.compare (List.map fst entries) in
        List.map (fun r -> (pid, r)) regs @ acc)
      t.buffers []
    |> List.sort compare

let flush t ~pid ~reg =
  let entries = buffer t pid in
  match t.model with
  | Memory_model.SC -> invalid_arg "Pure_memory.flush: no store buffers under SC"
  | Memory_model.TSO -> (
    match entries with
    | (r, v) :: rest when r = reg -> set_buffer (apply_store t (r, v)) pid rest
    | (r, _) :: _ ->
      invalid_arg
        (Printf.sprintf "Pure_memory.flush: TSO head of p%d's buffer is R%d, not R%d" pid r
           reg)
    | [] -> invalid_arg (Printf.sprintf "Pure_memory.flush: p%d's buffer is empty" pid))
  | Memory_model.PSO ->
    let rec remove_first acc = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Pure_memory.flush: p%d has no buffered write to R%d" pid reg)
      | (r, v) :: rest when r = reg -> (v, List.rev_append acc rest)
      | entry :: rest -> remove_first (entry :: acc) rest
    in
    let v, rest = remove_first [] entries in
    set_buffer (apply_store t (reg, v)) pid rest

let buffers t =
  Pids.bindings t.buffers |> List.filter (fun (_, entries) -> entries <> [])

let buffered_regs t ~pid = List.sort_uniq Int.compare (List.map fst (buffer t pid))

let canonical t =
  Regs.bindings t.regs
  |> List.filter (fun (_, (v, ps)) -> not (v = t.default && Ids.is_empty ps))

(* Canonical state must distinguish a buffered-but-unflushed write from both
   "no write" and "write visible": two states that agree on shared registers
   but differ in a buffer diverge once the buffer flushes, so collapsing
   them (as [canonical] alone would) makes dedup unsound under TSO/PSO. *)
let canonical_full t = (canonical t, buffers t)

let apply t ~pid inv =
  let relaxed = Memory_model.relaxed t.model in
  let fence t = if relaxed then drain t ~pid else t in
  match inv with
  | Op.Ll r ->
    let t = fence t in
    let v, ps = state t r in
    (Op.Value v, set t r (v, Ids.add pid ps))
  | Op.Sc (r, nv) ->
    let t = fence t in
    let v, ps = state t r in
    if Ids.mem pid ps then (Op.Flagged (true, v), set t r (nv, Ids.empty))
    else (Op.Flagged (false, v), t)
  | Op.Validate r ->
    let v, ps = state t r in
    let v =
      if relaxed then
        match buffered_value t ~pid r with Some bv -> bv | None -> v
      else v
    in
    (Op.Flagged (Ids.mem pid ps, v), t)
  | Op.Swap (r, nv) ->
    let t = fence t in
    let v, _ = state t r in
    (Op.Value v, set t r (nv, Ids.empty))
  | Op.Move (src, dst) ->
    if src = dst then invalid_arg (Printf.sprintf "Pure_memory: move with equal registers R%d" src);
    let t = fence t in
    let v, _ = state t src in
    (Op.Ack, set t dst (v, Ids.empty))
  | Op.Write (r, v) ->
    if relaxed then (Op.Ack, set_buffer t pid (buffer t pid @ [ (r, v) ]))
    else (Op.Ack, apply_store t (r, v))
  | Op.Fence -> (Op.Ack, fence t)
