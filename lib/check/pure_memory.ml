open Lb_memory

module Regs = Map.Make (Int)

type t = { default : Value.t; regs : (Value.t * Ids.t) Regs.t }

let create ?(default = Value.Unit) ~inits () =
  {
    default;
    regs =
      List.fold_left (fun regs (r, v) -> Regs.add r (v, Ids.empty) regs) Regs.empty inits;
  }

let state t r =
  if r < 0 then invalid_arg (Printf.sprintf "Pure_memory: negative register index %d" r);
  Option.value ~default:(t.default, Ids.empty) (Regs.find_opt r t.regs)

let peek t r = fst (state t r)
let pset t r = snd (state t r)

let set t r st = { t with regs = Regs.add r st t.regs }

let canonical t =
  Regs.bindings t.regs
  |> List.filter (fun (_, (v, ps)) -> not (v = t.default && Ids.is_empty ps))

let apply t ~pid inv =
  match inv with
  | Op.Ll r ->
    let v, ps = state t r in
    (Op.Value v, set t r (v, Ids.add pid ps))
  | Op.Sc (r, nv) ->
    let v, ps = state t r in
    if Ids.mem pid ps then (Op.Flagged (true, v), set t r (nv, Ids.empty))
    else (Op.Flagged (false, v), t)
  | Op.Validate r ->
    let v, ps = state t r in
    (Op.Flagged (Ids.mem pid ps, v), t)
  | Op.Swap (r, nv) ->
    let v, _ = state t r in
    (Op.Value v, set t r (nv, Ids.empty))
  | Op.Move (src, dst) ->
    if src = dst then invalid_arg (Printf.sprintf "Pure_memory: move with equal registers R%d" src);
    let v, _ = state t src in
    (Op.Ack, set t dst (v, Ids.empty))
