open Lb_memory
open Lb_runtime

type 'a event =
  | Stepped of int * Op.invocation * Op.response
  | Returned of int * 'a

type 'a run = { events : 'a event list; results : (int * 'a) list }

exception Limit_exceeded of int

(* A process's exploration state: about to perform an operation, or done.
   Leading coin tosses are resolved (with branching) by [expand]. *)
type 'a proc = Blocked of Op.invocation * (Op.response -> 'a Program.t) | Done of 'a

(* Resolve leading tosses of a program into every reachable [proc],
   branching over the coin range.  The accompanying event list (reversed)
   records terminations discovered during expansion. *)
let rec expand coin_range pid program =
  match program with
  | Program.Return x -> [ (Done x, [ Returned (pid, x) ]) ]
  | Program.Op (inv, k) -> [ (Blocked (inv, k), []) ]
  | Program.Toss k ->
    List.concat_map (fun outcome -> expand coin_range pid (k outcome)) coin_range

let iter ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ]) ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter: empty coin range";
  let count = ref 0 in
  let memory0 = Pure_memory.create ~inits () in
  (* [procs] is a persistent map pid -> proc so branches share state. *)
  let module Pmap = Map.Make (Int) in
  let emit procs events =
    incr count;
    if !count > max_runs then raise (Limit_exceeded max_runs);
    let results =
      Pmap.bindings procs
      |> List.map (fun (pid, p) ->
             match p with
             | Done x -> (pid, x)
             | Blocked _ -> assert false)
    in
    f { events = List.rev events; results }
  in
  let rec go memory procs events =
    let runnable =
      Pmap.fold
        (fun pid p acc -> match p with Blocked _ -> pid :: acc | Done _ -> acc)
        procs []
    in
    match runnable with
    | [] -> emit procs events
    | _ :: _ ->
      List.iter
        (fun pid ->
          match Pmap.find pid procs with
          | Done _ -> assert false
          | Blocked (inv, k) ->
            let response, memory' = Pure_memory.apply memory ~pid inv in
            let stepped = Stepped (pid, inv, response) in
            List.iter
              (fun (proc', expand_events) ->
                go memory' (Pmap.add pid proc' procs) (expand_events @ (stepped :: events)))
              (expand coin_range pid (k response)))
        (List.rev runnable)
  in
  (* Initial expansion of every process (cartesian product over processes). *)
  let rec init pid procs events =
    if pid = n then go memory0 procs events
    else
      List.iter
        (fun (proc, expand_events) ->
          init (pid + 1) (Pmap.add pid proc procs) (expand_events @ events))
        (expand coin_range pid (program_of pid))
  in
  init 0 Pmap.empty [];
  !count

exception Found

let for_all ~n ~program_of ?inits ?coin_range ?max_runs ~f () =
  try
    ignore
      (iter ~n ~program_of ?inits ?coin_range ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false

let exists ~n ~program_of ?inits ?coin_range ?max_runs ~f () =
  not (for_all ~n ~program_of ?inits ?coin_range ?max_runs ~f:(fun run -> not (f run)) ())

let steppers_before_first_one run =
  let rec go stepped = function
    | [] -> None
    | Returned (_, 1) :: _ -> Some stepped
    | Returned (_, _) :: rest -> go stepped rest
    | Stepped (pid, _, _) :: rest -> go (Ids.add pid stepped) rest
  in
  go Ids.empty run.events

let wakeup_ok ~n run =
  let returns_ok = List.for_all (fun (_, v) -> v = 0 || v = 1) run.results in
  let somebody = List.exists (fun (_, v) -> v = 1) run.results in
  let cond3 =
    match steppers_before_first_one run with
    | None -> true
    | Some stepped -> Ids.equal stepped (Ids.range n)
  in
  returns_ok && somebody && cond3
