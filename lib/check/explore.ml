open Lb_memory
open Lb_runtime

type 'a event =
  | Stepped of int * Op.invocation * Op.response
  | Flushed of int * int * Value.t
  | Returned of int * 'a

type 'a run = { events : 'a event list; results : (int * 'a) list }

exception Limit_exceeded of int

(* A process's exploration state: about to perform an operation, or done.
   Leading coin tosses are resolved (with branching) by [expand]. *)
type 'a proc = Blocked of Op.invocation * (Op.response -> 'a Program.t) | Done of 'a

(* Resolve leading tosses of a program into every reachable [proc],
   branching over the coin range.  The accompanying event list (reversed)
   records terminations discovered during expansion; the outcome list
   (chronological) records the toss results that select the branch. *)
let rec expand coin_range pid program =
  match program with
  | Program.Return x -> [ (Done x, [ Returned (pid, x) ], []) ]
  | Program.Op (inv, k) -> [ (Blocked (inv, k), [], []) ]
  | Program.Toss k ->
    List.concat_map
      (fun outcome ->
        List.map
          (fun (proc, events, outcomes) -> (proc, events, outcome :: outcomes))
          (expand coin_range pid (k outcome)))
      coin_range

(* Remove [pid] from a sorted runnable list (no-op when absent). *)
let rec remove_runnable pid = function
  | [] -> []
  | p :: rest -> if p = pid then rest else p :: remove_runnable pid rest

(* Drain every non-empty buffer (ascending pid, issue order within one) and
   record the flushes — run-end quiescence under a relaxed model, and the
   eager-flush discipline after each step.  [events] is newest-first. *)
let drain_all memory events =
  List.fold_left
    (fun (m, evs) (pid, entries) ->
      let evs =
        List.fold_left (fun evs (r, v) -> Flushed (pid, r, v) :: evs) evs entries
      in
      (Pure_memory.drain m ~pid, evs))
    (memory, events) (Pure_memory.buffers memory)

let iter ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ]) ?(model = Memory_model.SC)
    ?(eager_flush = false) ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter: empty coin range";
  let count = ref 0 in
  let memory0 = Pure_memory.create ~inits ~model () in
  (* [procs] is a persistent map pid -> proc so branches share state. *)
  let module Pmap = Map.Make (Int) in
  let emit memory procs events =
    incr count;
    if !count > max_runs then raise (Limit_exceeded max_runs);
    (* Run-end quiescence: remaining buffered writes drain deterministically.
       Their order cannot change results (every process has returned) nor the
       final memory (per-register FIFO), so branching over it would only
       multiply equivalent runs. *)
    let _, events = drain_all memory events in
    let results =
      Pmap.bindings procs
      |> List.map (fun (pid, p) ->
             match p with
             | Done x -> (pid, x)
             | Blocked _ -> assert false)
    in
    f { events = List.rev events; results }
  in
  (* [runnable] is the ascending list of blocked pids, maintained
     incrementally: a pid leaves when its expansion terminates, so no
     per-step scan of the whole process map is needed. *)
  let rec go memory procs runnable events =
    match runnable with
    | [] -> emit memory procs events
    | _ :: _ ->
      List.iter
        (fun pid ->
          match Pmap.find pid procs with
          | Done _ -> assert false
          | Blocked (inv, k) ->
            let response, memory' = Pure_memory.apply memory ~pid inv in
            (* Eager-flush discipline: commit the step's buffered writes
               before anything else runs — the schedule shape whose outcome
               set coincides with SC (tested as a property). *)
            let memory', flush_events =
              if eager_flush then drain_all memory' [] else (memory', [])
            in
            let stepped = Stepped (pid, inv, response) in
            List.iter
              (fun (proc', expand_events, _) ->
                let runnable' =
                  match proc' with
                  | Done _ -> remove_runnable pid runnable
                  | Blocked _ -> runnable
                in
                go memory' (Pmap.add pid proc' procs) runnable'
                  (expand_events @ flush_events @ (stepped :: events)))
              (expand coin_range pid (k response)))
        runnable;
      (* Under a relaxed model every enabled flush is also a scheduling
         choice, interleaved freely with process steps. *)
      List.iter
        (fun (pid, reg) ->
          let memory' = Pure_memory.flush memory ~pid ~reg in
          let v = Pure_memory.peek memory' reg in
          go memory' procs runnable (Flushed (pid, reg, v) :: events))
        (Pure_memory.flushable memory)
  in
  (* Initial expansion of every process (cartesian product over processes).
     [runnable] accumulates in descending order; reversed once at the root. *)
  let rec init pid procs runnable events =
    if pid = n then go memory0 procs (List.rev runnable) events
    else
      List.iter
        (fun (proc, expand_events, _) ->
          let runnable' =
            match proc with Done _ -> runnable | Blocked _ -> pid :: runnable
          in
          init (pid + 1) (Pmap.add pid proc procs) runnable' (expand_events @ events))
        (expand coin_range pid (program_of pid))
  in
  init 0 Pmap.empty [] [];
  !count

exception Found

let for_all ~n ~program_of ?inits ?coin_range ?model ?eager_flush ?max_runs ~f () =
  try
    ignore
      (iter ~n ~program_of ?inits ?coin_range ?model ?eager_flush ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false

let exists ~n ~program_of ?inits ?coin_range ?model ?eager_flush ?max_runs ~f () =
  not
    (for_all ~n ~program_of ?inits ?coin_range ?model ?eager_flush ?max_runs
       ~f:(fun run -> not (f run))
       ())

let steppers_before_first_one run =
  let rec go stepped = function
    | [] -> None
    | Returned (_, 1) :: _ -> Some stepped
    | Returned (_, _) :: rest -> go stepped rest
    | Stepped (pid, _, _) :: rest -> go (Ids.add pid stepped) rest
    (* A flush is the delayed tail of a Write already counted at its step. *)
    | Flushed _ :: rest -> go stepped rest
  in
  go Ids.empty run.events

let wakeup_ok ~n run =
  let returns_ok = List.for_all (fun (_, v) -> v = 0 || v = 1) run.results in
  let somebody = List.exists (fun (_, v) -> v = 1) run.results in
  let cond3 =
    match steppers_before_first_one run with
    | None -> true
    | Some stepped -> Ids.equal stepped (Ids.range n)
  in
  returns_ok && somebody && cond3

(* ---- reduced exploration ---- *)

type stats = { runs : int; sleep_pruned : int; dedup_pruned : int }

(* The registers an invocation can read or write.  Two invocations with
   disjoint footprints commute exactly in [Pure_memory]: same responses,
   same final memory, either order.  This is conservative — e.g. two [Ll]s
   of the same register by different processes also commute — but register
   disjointness is the cheap sound check. *)
let footprint = function
  | Op.Ll r | Op.Sc (r, _) | Op.Validate r | Op.Swap (r, _) | Op.Write (r, _) -> [ r ]
  | Op.Move (src, dst) -> [ src; dst ]
  | Op.Fence -> []

(* The full dependency footprint of a step under the memory's model: fencing
   operations also drain the issuing process's buffer, so their effect
   extends to every register with a pending buffered write.  Buffers are
   empty under SC, making this [footprint inv] there. *)
let step_fp_regs memory ~pid inv =
  let base = footprint inv in
  match inv with
  | Op.Ll _ | Op.Sc _ | Op.Swap _ | Op.Move _ | Op.Fence -> (
    match Pure_memory.buffered_regs memory ~pid with
    | [] -> base
    | buffered -> List.sort_uniq Int.compare (base @ buffered))
  | Op.Validate _ | Op.Write _ -> base

let conflicts a b =
  let fa = footprint a in
  List.exists (fun r -> List.mem r fa) (footprint b)

(* The run-prefix information [wakeup_ok]-style predicates depend on:
   which processes have stepped, frozen at the first [Returned (_, 1)].
   Two prefixes with equal summaries (and equal memory and histories) give
   every extension the same verdict. *)
type summary = Before of Ids.t | After of Ids.t

let update_summary summary chrono_events =
  List.fold_left
    (fun s e ->
      match (s, e) with
      | After _, _ -> s
      | Before stepped, Stepped (pid, _, _) -> Before (Ids.add pid stepped)
      | Before stepped, Returned (_, 1) -> After stepped
      | Before _, Returned (_, _) -> s
      | Before _, Flushed _ -> s)
    summary chrono_events

let iter_reduced ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ])
    ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter_reduced: empty coin range";
  let module Pmap = Map.Make (Int) in
  let memory0 = Pure_memory.create ~inits () in
  let runs = ref 0 in
  let sleep_pruned = ref 0 in
  let dedup_pruned = ref 0 in
  (* Visited states, keyed on (canonical memory, per-pid histories, summary)
     — everything a state's future depends on.  Histories are (invocation,
     response, toss outcomes) triples plus the initial-expansion outcomes,
     so equal keys mean semantically equal continuations even though the
     continuation closures themselves are incomparable.  The stored value is
     the sleep set the state was explored with: a revisit with a sleep
     superset is fully covered (prune); a revisit with new awake pids
     re-explores under the intersection. *)
  let visited = Hashtbl.create 1024 in
  let emit procs events =
    incr runs;
    if !runs > max_runs then raise (Limit_exceeded max_runs);
    let results =
      Pmap.bindings procs
      |> List.map (fun (pid, p) ->
             match p with
             | Done x -> (pid, x)
             | Blocked _ -> assert false)
    in
    f { events = List.rev events; results }
  in
  let pending_inv procs pid =
    match Pmap.find pid procs with
    | Blocked (inv, _) -> inv
    | Done _ -> assert false
  in
  let rec go memory procs hists runnable summary sleep events =
    match runnable with
    | [] -> emit procs events
    | _ :: _ -> (
      let key = (Pure_memory.canonical_full memory, Pmap.bindings hists, summary) in
      match Hashtbl.find_opt visited key with
      | Some old_sleep when Ids.subset old_sleep sleep -> incr dedup_pruned
      | previous ->
        let sleep =
          match previous with
          | Some old_sleep -> Ids.inter old_sleep sleep
          | None -> sleep
        in
        Hashtbl.replace visited key sleep;
        let z = ref sleep in
        List.iter
          (fun pid ->
            if Ids.mem pid !z then incr sleep_pruned
            else
              match Pmap.find pid procs with
              | Done _ -> assert false
              | Blocked (inv, k) ->
                let response, memory' = Pure_memory.apply memory ~pid inv in
                let stepped = Stepped (pid, inv, response) in
                let branches = expand coin_range pid (k response) in
                List.iter
                  (fun (proc', expand_events, outcomes) ->
                    let summary' =
                      update_summary summary (stepped :: List.rev expand_events)
                    in
                    (* A branch that returned is ordered w.r.t. everything
                       (returns move the cond3 frontier), so it wakes every
                       sleeper; an op-only branch wakes just the sleepers
                       whose pending invocation touches a common register. *)
                    let child_sleep =
                      if expand_events <> [] then Ids.empty
                      else
                        Ids.filter
                          (fun p -> not (conflicts (pending_inv procs p) inv))
                          !z
                    in
                    let hists' =
                      Pmap.add pid
                        ((inv, response, outcomes) :: Pmap.find pid hists)
                        hists
                    in
                    let runnable' =
                      match proc' with
                      | Done _ -> remove_runnable pid runnable
                      | Blocked _ -> runnable
                    in
                    go memory' (Pmap.add pid proc' procs) hists' runnable' summary'
                      child_sleep
                      (expand_events @ (stepped :: events)))
                  branches;
                (* Sleepable only if no branch returned: sleeping a returning
                   step would commute a [Returned] past later [Stepped]s,
                   changing the summary of the pruned run's representative. *)
                if List.for_all (fun (_, evs, _) -> evs = []) branches then
                  z := Ids.add pid !z)
          runnable)
  in
  let rec init pid procs hists runnable summary events =
    if pid = n then go memory0 procs hists (List.rev runnable) summary Ids.empty events
    else
      List.iter
        (fun (proc, expand_events, outcomes) ->
          let summary' = update_summary summary (List.rev expand_events) in
          (* The initial expansion is recorded as a pseudo-entry so states
             reached through different initial coin outcomes never merge. *)
          let hists' = Pmap.add pid [ (Op.Validate (-1), Op.Ack, outcomes) ] hists in
          let runnable' =
            match proc with Done _ -> runnable | Blocked _ -> pid :: runnable
          in
          init (pid + 1) (Pmap.add pid proc procs) hists' runnable' summary'
            (expand_events @ events))
        (expand coin_range pid (program_of pid))
  in
  init 0 Pmap.empty Pmap.empty [] (Before Ids.empty) [];
  { runs = !runs; sleep_pruned = !sleep_pruned; dedup_pruned = !dedup_pruned }

let for_all_reduced ~n ~program_of ?inits ?coin_range ?max_runs ~f () =
  try
    ignore
      (iter_reduced ~n ~program_of ?inits ?coin_range ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false

(* ---- dynamic partial-order reduction ---- *)

let iter_dpor ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ])
    ?(model = Memory_model.SC) ?(bounds = Sched_tree.no_bounds) ?(dedup = true)
    ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter_dpor: empty coin range";
  let module Pmap = Map.Make (Int) in
  let memory0 = Pure_memory.create ~inits ~model () in
  (* Flush actions are scheduler-visible decisions, so they need ids in the
     tree's decision alphabet.  flush(p, r) ↦ n*(1+r)+p: injective, disjoint
     from pids 0..n-1, and stable across runs (the same tree node always
     re-derives the same memory, hence the same flushable set). *)
  let flush_id (pid, reg) = (n * (1 + reg)) + pid in
  (* One run under the oracle: the same forced initial expansion and step
     semantics as [iter_reduced], but scheduling decisions, coin-branch
     selection, and state dedup all delegate to the scheduler tree. *)
  let run sched =
    let memory = ref memory0 in
    let procs = ref Pmap.empty in
    let hists = ref Pmap.empty in
    let runnable = ref [] in
    let summary = ref (Before Ids.empty) in
    let events = ref [] in
    let step = ref 0 in
    let aborted = ref false in
    let mark () =
      if dedup then
        Sched_tree.mark sched
          ~key:(Pure_memory.canonical_full !memory, Pmap.bindings !hists, !summary)
    in
    (* Initial expansion: one forced pseudo-decision per process, so initial
       coin branches are siblings in the tree like any other branch. *)
    let pid = ref 0 in
    while (not !aborted) && !pid < n do
      (match Sched_tree.choose sched ~step:!step ~enabled:[ !pid ] with
      | None -> aborted := true
      | Some p ->
        assert (p = !pid);
        let branches = expand coin_range p (program_of p) in
        let blocking = List.exists (fun (_, evs, _) -> evs <> []) branches in
        let b =
          Sched_tree.commit sched
            ~fp:{ Sched_tree.regs = []; blocking }
            ~branches:(List.length branches)
        in
        let proc, expand_events, outcomes = List.nth branches b in
        summary := update_summary !summary (List.rev expand_events);
        hists := Pmap.add p [ (Op.Validate (-1), Op.Ack, outcomes) ] !hists;
        (match proc with
        | Done _ -> ()
        | Blocked _ -> runnable := !runnable @ [ p ]);
        procs := Pmap.add p proc !procs;
        events := expand_events @ !events;
        incr step;
        mark ());
      incr pid
    done;
    (* Flushes stay schedulable after every process has returned: they must
       pass through the tree (not drain silently) so they appear in traces —
       DPOR only backtracks around steps that occur in some executed run, and
       a flush that never executes can never be raced against a read. *)
    let enabled_now () =
      !runnable @ List.map flush_id (Pure_memory.flushable !memory)
    in
    let enabled = ref (enabled_now ()) in
    while (not !aborted) && !enabled <> [] do
      match Sched_tree.choose sched ~step:!step ~enabled:!enabled with
      | None -> aborted := true
      | Some id when id >= n ->
        (* A flush decision: apply the oldest buffered write.  Its footprint
           is the flushed register — this is where a buffered write becomes
           dependent with other processes' accesses. *)
        let pid = id mod n and reg = (id / n) - 1 in
        let memory' = Pure_memory.flush !memory ~pid ~reg in
        let v = Pure_memory.peek memory' reg in
        ignore
          (Sched_tree.commit sched
             ~fp:{ Sched_tree.regs = [ reg ]; blocking = false }
             ~branches:1);
        memory := memory';
        events := Flushed (pid, reg, v) :: !events;
        incr step;
        enabled := enabled_now ();
        mark ()
      | Some pid -> (
        match Pmap.find pid !procs with
        | Done _ -> assert false
        | Blocked (inv, k) ->
          (* The footprint of a fencing step includes the registers its
             buffer drain writes, so compute it before applying.  A fencing
             step also absorbs the enabled flush decisions of its own
             buffer — capture them now and report them to the tree after
             the commit, or "flush early, interleave, then fence" schedules
             would be unexplorable (an absorbed flush never appears in any
             trace, and DPOR only backtracks around observed steps). *)
          let fp_regs = step_fp_regs !memory ~pid inv in
          let absorbed =
            match inv with
            | Op.Ll _ | Op.Sc _ | Op.Swap _ | Op.Move _ | Op.Fence ->
              List.filter (fun (p, _) -> p = pid) (Pure_memory.flushable !memory)
            | Op.Validate _ | Op.Write _ -> []
          in
          let response, memory' = Pure_memory.apply !memory ~pid inv in
          let stepped = Stepped (pid, inv, response) in
          let branches = expand coin_range pid (k response) in
          let blocking = List.exists (fun (_, evs, _) -> evs <> []) branches in
          let b =
            Sched_tree.commit sched
              ~fp:{ Sched_tree.regs = fp_regs; blocking }
              ~branches:(List.length branches)
          in
          List.iter (fun pr -> Sched_tree.also sched ~pid:(flush_id pr)) absorbed;
          let proc', expand_events, outcomes = List.nth branches b in
          summary := update_summary !summary (stepped :: List.rev expand_events);
          hists :=
            Pmap.add pid ((inv, response, outcomes) :: Pmap.find pid !hists) !hists;
          memory := memory';
          procs := Pmap.add pid proc' !procs;
          (match proc' with
          | Done _ -> runnable := remove_runnable pid !runnable
          | Blocked _ -> ());
          events := expand_events @ (stepped :: !events);
          incr step;
          enabled := enabled_now ();
          mark ())
    done;
    if !aborted then None
    else
      let results =
        Pmap.bindings !procs
        |> List.map (fun (pid, p) ->
               match p with
               | Done x -> (pid, x)
               | Blocked _ -> assert false)
      in
      Some { events = List.rev !events; results }
  in
  try
    Sched_tree.explore ~bounds ~max_schedules:max_runs ~run
      ~f:(fun run ->
        f run;
        true)
      ()
  with Sched_tree.Schedule_limit k -> raise (Limit_exceeded k)

let for_all_dpor ~n ~program_of ?inits ?coin_range ?model ?bounds ?dedup ?max_runs ~f () =
  try
    ignore
      (iter_dpor ~n ~program_of ?inits ?coin_range ?model ?bounds ?dedup ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false
