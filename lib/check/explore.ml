open Lb_memory
open Lb_runtime

type 'a event =
  | Stepped of int * Op.invocation * Op.response
  | Returned of int * 'a

type 'a run = { events : 'a event list; results : (int * 'a) list }

exception Limit_exceeded of int

(* A process's exploration state: about to perform an operation, or done.
   Leading coin tosses are resolved (with branching) by [expand]. *)
type 'a proc = Blocked of Op.invocation * (Op.response -> 'a Program.t) | Done of 'a

(* Resolve leading tosses of a program into every reachable [proc],
   branching over the coin range.  The accompanying event list (reversed)
   records terminations discovered during expansion; the outcome list
   (chronological) records the toss results that select the branch. *)
let rec expand coin_range pid program =
  match program with
  | Program.Return x -> [ (Done x, [ Returned (pid, x) ], []) ]
  | Program.Op (inv, k) -> [ (Blocked (inv, k), [], []) ]
  | Program.Toss k ->
    List.concat_map
      (fun outcome ->
        List.map
          (fun (proc, events, outcomes) -> (proc, events, outcome :: outcomes))
          (expand coin_range pid (k outcome)))
      coin_range

(* Remove [pid] from a sorted runnable list (no-op when absent). *)
let rec remove_runnable pid = function
  | [] -> []
  | p :: rest -> if p = pid then rest else p :: remove_runnable pid rest

let iter ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ]) ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter: empty coin range";
  let count = ref 0 in
  let memory0 = Pure_memory.create ~inits () in
  (* [procs] is a persistent map pid -> proc so branches share state. *)
  let module Pmap = Map.Make (Int) in
  let emit procs events =
    incr count;
    if !count > max_runs then raise (Limit_exceeded max_runs);
    let results =
      Pmap.bindings procs
      |> List.map (fun (pid, p) ->
             match p with
             | Done x -> (pid, x)
             | Blocked _ -> assert false)
    in
    f { events = List.rev events; results }
  in
  (* [runnable] is the ascending list of blocked pids, maintained
     incrementally: a pid leaves when its expansion terminates, so no
     per-step scan of the whole process map is needed. *)
  let rec go memory procs runnable events =
    match runnable with
    | [] -> emit procs events
    | _ :: _ ->
      List.iter
        (fun pid ->
          match Pmap.find pid procs with
          | Done _ -> assert false
          | Blocked (inv, k) ->
            let response, memory' = Pure_memory.apply memory ~pid inv in
            let stepped = Stepped (pid, inv, response) in
            List.iter
              (fun (proc', expand_events, _) ->
                let runnable' =
                  match proc' with
                  | Done _ -> remove_runnable pid runnable
                  | Blocked _ -> runnable
                in
                go memory' (Pmap.add pid proc' procs) runnable'
                  (expand_events @ (stepped :: events)))
              (expand coin_range pid (k response)))
        runnable
  in
  (* Initial expansion of every process (cartesian product over processes).
     [runnable] accumulates in descending order; reversed once at the root. *)
  let rec init pid procs runnable events =
    if pid = n then go memory0 procs (List.rev runnable) events
    else
      List.iter
        (fun (proc, expand_events, _) ->
          let runnable' =
            match proc with Done _ -> runnable | Blocked _ -> pid :: runnable
          in
          init (pid + 1) (Pmap.add pid proc procs) runnable' (expand_events @ events))
        (expand coin_range pid (program_of pid))
  in
  init 0 Pmap.empty [] [];
  !count

exception Found

let for_all ~n ~program_of ?inits ?coin_range ?max_runs ~f () =
  try
    ignore
      (iter ~n ~program_of ?inits ?coin_range ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false

let exists ~n ~program_of ?inits ?coin_range ?max_runs ~f () =
  not (for_all ~n ~program_of ?inits ?coin_range ?max_runs ~f:(fun run -> not (f run)) ())

let steppers_before_first_one run =
  let rec go stepped = function
    | [] -> None
    | Returned (_, 1) :: _ -> Some stepped
    | Returned (_, _) :: rest -> go stepped rest
    | Stepped (pid, _, _) :: rest -> go (Ids.add pid stepped) rest
  in
  go Ids.empty run.events

let wakeup_ok ~n run =
  let returns_ok = List.for_all (fun (_, v) -> v = 0 || v = 1) run.results in
  let somebody = List.exists (fun (_, v) -> v = 1) run.results in
  let cond3 =
    match steppers_before_first_one run with
    | None -> true
    | Some stepped -> Ids.equal stepped (Ids.range n)
  in
  returns_ok && somebody && cond3

(* ---- reduced exploration ---- *)

type stats = { runs : int; sleep_pruned : int; dedup_pruned : int }

(* The registers an invocation can read or write.  Two invocations with
   disjoint footprints commute exactly in [Pure_memory]: same responses,
   same final memory, either order.  This is conservative — e.g. two [Ll]s
   of the same register by different processes also commute — but register
   disjointness is the cheap sound check. *)
let footprint = function
  | Op.Ll r | Op.Sc (r, _) | Op.Validate r | Op.Swap (r, _) -> [ r ]
  | Op.Move (src, dst) -> [ src; dst ]

let conflicts a b =
  let fa = footprint a in
  List.exists (fun r -> List.mem r fa) (footprint b)

(* The run-prefix information [wakeup_ok]-style predicates depend on:
   which processes have stepped, frozen at the first [Returned (_, 1)].
   Two prefixes with equal summaries (and equal memory and histories) give
   every extension the same verdict. *)
type summary = Before of Ids.t | After of Ids.t

let update_summary summary chrono_events =
  List.fold_left
    (fun s e ->
      match (s, e) with
      | After _, _ -> s
      | Before stepped, Stepped (pid, _, _) -> Before (Ids.add pid stepped)
      | Before stepped, Returned (_, 1) -> After stepped
      | Before _, Returned (_, _) -> s)
    summary chrono_events

let iter_reduced ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ])
    ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter_reduced: empty coin range";
  let module Pmap = Map.Make (Int) in
  let memory0 = Pure_memory.create ~inits () in
  let runs = ref 0 in
  let sleep_pruned = ref 0 in
  let dedup_pruned = ref 0 in
  (* Visited states, keyed on (canonical memory, per-pid histories, summary)
     — everything a state's future depends on.  Histories are (invocation,
     response, toss outcomes) triples plus the initial-expansion outcomes,
     so equal keys mean semantically equal continuations even though the
     continuation closures themselves are incomparable.  The stored value is
     the sleep set the state was explored with: a revisit with a sleep
     superset is fully covered (prune); a revisit with new awake pids
     re-explores under the intersection. *)
  let visited = Hashtbl.create 1024 in
  let emit procs events =
    incr runs;
    if !runs > max_runs then raise (Limit_exceeded max_runs);
    let results =
      Pmap.bindings procs
      |> List.map (fun (pid, p) ->
             match p with
             | Done x -> (pid, x)
             | Blocked _ -> assert false)
    in
    f { events = List.rev events; results }
  in
  let pending_inv procs pid =
    match Pmap.find pid procs with
    | Blocked (inv, _) -> inv
    | Done _ -> assert false
  in
  let rec go memory procs hists runnable summary sleep events =
    match runnable with
    | [] -> emit procs events
    | _ :: _ -> (
      let key = (Pure_memory.canonical memory, Pmap.bindings hists, summary) in
      match Hashtbl.find_opt visited key with
      | Some old_sleep when Ids.subset old_sleep sleep -> incr dedup_pruned
      | previous ->
        let sleep =
          match previous with
          | Some old_sleep -> Ids.inter old_sleep sleep
          | None -> sleep
        in
        Hashtbl.replace visited key sleep;
        let z = ref sleep in
        List.iter
          (fun pid ->
            if Ids.mem pid !z then incr sleep_pruned
            else
              match Pmap.find pid procs with
              | Done _ -> assert false
              | Blocked (inv, k) ->
                let response, memory' = Pure_memory.apply memory ~pid inv in
                let stepped = Stepped (pid, inv, response) in
                let branches = expand coin_range pid (k response) in
                List.iter
                  (fun (proc', expand_events, outcomes) ->
                    let summary' =
                      update_summary summary (stepped :: List.rev expand_events)
                    in
                    (* A branch that returned is ordered w.r.t. everything
                       (returns move the cond3 frontier), so it wakes every
                       sleeper; an op-only branch wakes just the sleepers
                       whose pending invocation touches a common register. *)
                    let child_sleep =
                      if expand_events <> [] then Ids.empty
                      else
                        Ids.filter
                          (fun p -> not (conflicts (pending_inv procs p) inv))
                          !z
                    in
                    let hists' =
                      Pmap.add pid
                        ((inv, response, outcomes) :: Pmap.find pid hists)
                        hists
                    in
                    let runnable' =
                      match proc' with
                      | Done _ -> remove_runnable pid runnable
                      | Blocked _ -> runnable
                    in
                    go memory' (Pmap.add pid proc' procs) hists' runnable' summary'
                      child_sleep
                      (expand_events @ (stepped :: events)))
                  branches;
                (* Sleepable only if no branch returned: sleeping a returning
                   step would commute a [Returned] past later [Stepped]s,
                   changing the summary of the pruned run's representative. *)
                if List.for_all (fun (_, evs, _) -> evs = []) branches then
                  z := Ids.add pid !z)
          runnable)
  in
  let rec init pid procs hists runnable summary events =
    if pid = n then go memory0 procs hists (List.rev runnable) summary Ids.empty events
    else
      List.iter
        (fun (proc, expand_events, outcomes) ->
          let summary' = update_summary summary (List.rev expand_events) in
          (* The initial expansion is recorded as a pseudo-entry so states
             reached through different initial coin outcomes never merge. *)
          let hists' = Pmap.add pid [ (Op.Validate (-1), Op.Ack, outcomes) ] hists in
          let runnable' =
            match proc with Done _ -> runnable | Blocked _ -> pid :: runnable
          in
          init (pid + 1) (Pmap.add pid proc procs) hists' runnable' summary'
            (expand_events @ events))
        (expand coin_range pid (program_of pid))
  in
  init 0 Pmap.empty Pmap.empty [] (Before Ids.empty) [];
  { runs = !runs; sleep_pruned = !sleep_pruned; dedup_pruned = !dedup_pruned }

let for_all_reduced ~n ~program_of ?inits ?coin_range ?max_runs ~f () =
  try
    ignore
      (iter_reduced ~n ~program_of ?inits ?coin_range ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false

(* ---- dynamic partial-order reduction ---- *)

let iter_dpor ~n ~program_of ?(inits = []) ?(coin_range = [ 0 ])
    ?(bounds = Sched_tree.no_bounds) ?(dedup = true) ?(max_runs = 200_000) ~f () =
  if coin_range = [] then invalid_arg "Explore.iter_dpor: empty coin range";
  let module Pmap = Map.Make (Int) in
  let memory0 = Pure_memory.create ~inits () in
  (* One run under the oracle: the same forced initial expansion and step
     semantics as [iter_reduced], but scheduling decisions, coin-branch
     selection, and state dedup all delegate to the scheduler tree. *)
  let run sched =
    let memory = ref memory0 in
    let procs = ref Pmap.empty in
    let hists = ref Pmap.empty in
    let runnable = ref [] in
    let summary = ref (Before Ids.empty) in
    let events = ref [] in
    let step = ref 0 in
    let aborted = ref false in
    let mark () =
      if dedup then
        Sched_tree.mark sched
          ~key:(Pure_memory.canonical !memory, Pmap.bindings !hists, !summary)
    in
    (* Initial expansion: one forced pseudo-decision per process, so initial
       coin branches are siblings in the tree like any other branch. *)
    let pid = ref 0 in
    while (not !aborted) && !pid < n do
      (match Sched_tree.choose sched ~step:!step ~enabled:[ !pid ] with
      | None -> aborted := true
      | Some p ->
        assert (p = !pid);
        let branches = expand coin_range p (program_of p) in
        let blocking = List.exists (fun (_, evs, _) -> evs <> []) branches in
        let b =
          Sched_tree.commit sched
            ~fp:{ Sched_tree.regs = []; blocking }
            ~branches:(List.length branches)
        in
        let proc, expand_events, outcomes = List.nth branches b in
        summary := update_summary !summary (List.rev expand_events);
        hists := Pmap.add p [ (Op.Validate (-1), Op.Ack, outcomes) ] !hists;
        (match proc with
        | Done _ -> ()
        | Blocked _ -> runnable := !runnable @ [ p ]);
        procs := Pmap.add p proc !procs;
        events := expand_events @ !events;
        incr step;
        mark ());
      incr pid
    done;
    while (not !aborted) && !runnable <> [] do
      match Sched_tree.choose sched ~step:!step ~enabled:!runnable with
      | None -> aborted := true
      | Some pid -> (
        match Pmap.find pid !procs with
        | Done _ -> assert false
        | Blocked (inv, k) ->
          let response, memory' = Pure_memory.apply !memory ~pid inv in
          let stepped = Stepped (pid, inv, response) in
          let branches = expand coin_range pid (k response) in
          let blocking = List.exists (fun (_, evs, _) -> evs <> []) branches in
          let b =
            Sched_tree.commit sched
              ~fp:{ Sched_tree.regs = footprint inv; blocking }
              ~branches:(List.length branches)
          in
          let proc', expand_events, outcomes = List.nth branches b in
          summary := update_summary !summary (stepped :: List.rev expand_events);
          hists :=
            Pmap.add pid ((inv, response, outcomes) :: Pmap.find pid !hists) !hists;
          memory := memory';
          procs := Pmap.add pid proc' !procs;
          (match proc' with
          | Done _ -> runnable := remove_runnable pid !runnable
          | Blocked _ -> ());
          events := expand_events @ (stepped :: !events);
          incr step;
          mark ())
    done;
    if !aborted then None
    else
      let results =
        Pmap.bindings !procs
        |> List.map (fun (pid, p) ->
               match p with
               | Done x -> (pid, x)
               | Blocked _ -> assert false)
      in
      Some { events = List.rev !events; results }
  in
  try
    Sched_tree.explore ~bounds ~max_schedules:max_runs ~run
      ~f:(fun run ->
        f run;
        true)
      ()
  with Sched_tree.Schedule_limit k -> raise (Limit_exceeded k)

let for_all_dpor ~n ~program_of ?inits ?coin_range ?bounds ?dedup ?max_runs ~f () =
  try
    ignore
      (iter_dpor ~n ~program_of ?inits ?coin_range ?bounds ?dedup ?max_runs
         ~f:(fun run -> if not (f run) then raise Found)
         ());
    true
  with Found -> false
