(** Immutable shared memory, for exhaustive exploration.

    Same semantics as {!Lb_memory.Memory}, but [apply] returns a new memory
    instead of mutating — so the model checker can branch on every
    interleaving without copying or undo logs (persistent maps share
    structure between branches). *)

open Lb_memory

type t

val create : ?default:Value.t -> inits:(int * Value.t) list -> unit -> t
(** A memory whose registers all read [default] (unit when omitted) except
    the listed initial bindings. *)

val apply : t -> pid:int -> Op.invocation -> Op.response * t
(** Raises [Invalid_argument] on negative registers or self-moves, like the
    mutable memory. *)

val peek : t -> int -> Value.t
(** Current value of a register, without counting as a shared access. *)

val pset : t -> int -> Ids.t
(** Current Pset of a register. *)

val canonical : t -> (int * (Value.t * Ids.t)) list
(** The bindings that differ from the default state, in ascending register
    order.  Two memories with the same default are observationally equal iff
    their canonical forms are structurally equal ({!Lb_memory.Ids.t} values
    built through the [Ids] API are themselves canonical), so the result is
    usable as a dedup key. *)
