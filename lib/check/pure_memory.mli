(** Immutable shared memory, for exhaustive exploration.

    Same semantics as {!Lb_memory.Memory} — including the {!Lb_memory.Memory_model}
    axis — but [apply] returns a new memory instead of mutating, so the model
    checker can branch on every interleaving without copying or undo logs
    (persistent maps share structure between branches). *)

open Lb_memory

type t

val create :
  ?default:Value.t -> ?model:Memory_model.t -> inits:(int * Value.t) list -> unit -> t
(** A memory whose registers all read [default] (unit when omitted) except
    the listed initial bindings.  [model] defaults to {!Memory_model.SC}. *)

val model : t -> Memory_model.t

val apply : t -> pid:int -> Op.invocation -> Op.response * t
(** Raises [Invalid_argument] on negative registers or self-moves, like the
    mutable memory.  Under a relaxed model, [Write] buffers, [Fence] and the
    synchronisation operations drain the issuing process's buffer first, and
    [Validate] reads buffer-first — see {!Lb_memory.Memory.apply}. *)

val peek : t -> int -> Value.t
(** Current value of a register (shared memory, ignoring buffers), without
    counting as a shared access. *)

val pset : t -> int -> Ids.t
(** Current Pset of a register. *)

(** {1 Store buffers (TSO / PSO)}

    The persistent mirror of {!Lb_memory.Memory}'s buffer interface; see
    there for the semantics.  All raise / return the same way. *)

val flushable : t -> (int * int) list
(** Enabled flush actions as sorted [(pid, reg)] pairs; [[]] under SC. *)

val flush : t -> pid:int -> reg:int -> t
(** Apply the oldest buffered write by [pid] to [reg]; raises
    [Invalid_argument] when [(pid, reg)] is not in {!flushable}. *)

val drain : t -> pid:int -> t
(** Apply [pid]'s whole buffer in issue order and empty it — the fence
    effect.  A no-op when the buffer is empty (in particular under SC). *)

val buffers : t -> (int * (int * Value.t) list) list
(** Non-empty buffers as sorted [(pid, entries)] pairs, oldest entry first. *)

val buffered_regs : t -> pid:int -> int list
(** Sorted registers with a pending buffered write by [pid]. *)

val canonical : t -> (int * (Value.t * Ids.t)) list
(** The {e shared-register} bindings that differ from the default state, in
    ascending register order.  Two memories with the same default and {b no
    buffered writes} are observationally equal iff their canonical forms are
    structurally equal ({!Lb_memory.Ids.t} values built through the [Ids] API
    are themselves canonical).  Under a relaxed model this is {e not} a
    complete state key — a buffered-but-unflushed write is invisible here —
    so dedup must use {!canonical_full}. *)

val canonical_full : t -> (int * (Value.t * Ids.t)) list * (int * (int * Value.t) list) list
(** [(canonical t, buffers t)] — the complete observational state, including
    writes that are issued but not yet visible.  This is the dedup key the
    explorers use; collapsing states that differ only in buffer contents
    would be unsound (they diverge once the buffers flush). *)
