(** Litmus tests: the programs that pin the memory models apart.

    Each test is a tiny free-monad program family with one distinguished
    {e relaxed outcome} — a result vector that a weak model may admit and a
    stronger one must forbid — plus the expected admissibility under each
    {!Lb_memory.Memory_model}.  Outcome sets are computed by {e exhaustive}
    enumeration ({!Explore.iter_dpor} under the given model, flushes
    included in the decision alphabet), so a verdict is a certificate, not a
    sample.

    The catalog and what separates what:

    - {b SB} (store buffering): both stores buffered past both loads —
      admitted by TSO and PSO, forbidden by SC.  This is the test that
      separates SC from everything weaker.
    - {b SB+fence}, {b SB+rmw}: the same shape with a fence (or a fencing
      swap) between store and load — SC-equivalent everywhere; shows fences
      restore SC.
    - {b MP} (message passing): the ready flag overtakes the data — admitted
      by PSO (per-register buffers), forbidden by TSO (one FIFO buffer) and
      SC.  This is the test that separates TSO from PSO.
    - {b MP+fence}, {b MP+rmw}: publication fenced — SC-equivalent.
    - {b LB} (load buffering), {b IRIW} (independent reads of independent
      writes): forbidden by {e all} store-buffer models — the catalog's
      negative space, documenting what TSO/PSO do {e not} relax (loads are
      never delayed; stores commit to everyone at once).

    The paper's own repertoire (LL/SC/validate/swap/move) contains no plain
    store, so every corpus algorithm is SC-equivalent by construction —
    see docs/MEMORY_MODELS.md for why the lower bound's SC assumption is
    about plain-write programs. *)

open Lb_memory
open Lb_runtime

(** A set of result vectors ([(pid, result)] lists in pid order). *)
module Outcomes : Set.S with type elt = (int * int) list

type t = {
  name : string;
  description : string;
  n : int;
  inits : (int * Value.t) list;
  program_of : int -> int Program.t;
  relaxed_outcome : (int * int) list;
      (** the distinguished result vector whose admissibility varies. *)
  admits : Memory_model.t -> bool;
      (** expected: is [relaxed_outcome] reachable under this model? *)
  sc_equivalent : bool;
      (** expected: outcome set identical to SC under {e every} model. *)
}

val catalog : t list
val find : string -> t option
(** Case-insensitive lookup by name. *)

val outcomes : ?max_runs:int -> t -> model:Memory_model.t -> Outcomes.t
(** The exact outcome set under [model], by exhaustive DPOR enumeration. *)

type cell = {
  model : Memory_model.t;
  outcome_count : int;
  admitted : bool;  (** was [relaxed_outcome] reachable? *)
  expected : bool;  (** was it supposed to be? *)
  sc_equal : bool;  (** is the outcome set equal to the SC set? *)
}

val cell_ok : cell -> bool

type verdict = {
  test : t;
  cells : cell list;  (** one per {!Memory_model.all}, in that order. *)
  lattice_ok : bool;
      (** SC ⊆ TSO ⊆ PSO held on this test's actual outcome sets. *)
  ok : bool;
}

val check : ?max_runs:int -> t -> verdict
(** Run one test under all three models and compare against expectations:
    per-model admissibility, the outcome lattice, and (when
    [sc_equivalent]) set equality with SC. *)

val check_all : ?max_runs:int -> unit -> verdict list
(** {!check} over the whole {!catalog}. *)

val all_ok : verdict list -> bool

val distinguishes_all_models : verdict list -> bool
(** The catalog's purpose, checked on actual verdicts: SB separates SC from
    TSO and PSO, MP separates TSO from PSO — so all three models are
    pairwise distinguished by at least one test. *)

val pp_outcome : Format.formatter -> (int * int) list -> unit
val pp_verdict : Format.formatter -> verdict -> unit
