open Lb_memory
open Lb_runtime
open Program.Syntax

module Outcomes = Set.Make (struct
  type t = (int * int) list

  let compare = compare
end)

type t = {
  name : string;
  description : string;
  n : int;
  inits : (int * Value.t) list;
  program_of : int -> int Program.t;
  relaxed_outcome : (int * int) list;
  admits : Memory_model.t -> bool;
  sc_equivalent : bool;
}

(* ---- catalog ---- *)

let i = Value.int
let rd r = Program.map Value.to_int (Program.read r)

(* Two reads packed into one result, first read in the high bit. *)
let rd2 ra rb =
  let* a = rd ra in
  let+ b = rd rb in
  (2 * a) + b

let zeroes k = List.init k (fun r -> (r, i 0))

(* SB — store buffering.  p_i: store R_i := 1; read the other register.
   Both processes reading 0 requires both stores to still be buffered after
   both loads — impossible under SC, the signature relaxation of TSO. *)
let sb_family name description store admits sc_equivalent =
  {
    name;
    description;
    n = 2;
    inits = zeroes 2;
    program_of =
      (fun pid ->
        let* () = store pid in
        rd (1 - pid));
    relaxed_outcome = [ (0, 0); (1, 0) ];
    admits;
    sc_equivalent;
  }

let sb =
  sb_family "SB" "store buffering: both loads may miss both stores"
    (fun pid -> Program.write pid (i 1))
    Memory_model.relaxed false

let sb_fence =
  sb_family "SB+fence" "store buffering with a fence between store and load"
    (fun pid ->
      let* () = Program.write pid (i 1) in
      Program.fence)
    (fun _ -> false)
    true

let sb_rmw =
  sb_family "SB+rmw" "store buffering with the store as a swap (fencing RMW)"
    (fun pid -> Program.map ignore (Program.swap pid (i 1)))
    (fun _ -> false)
    true

(* MP — message passing.  R0 is data, R1 the ready flag.  p0 publishes; p1
   polls once: flag seen but data missed requires the two stores to commit
   out of issue order — admitted by PSO only (TSO buffers are FIFO). *)
let mp_family name description publish admits sc_equivalent =
  {
    name;
    description;
    n = 2;
    inits = zeroes 2;
    program_of =
      (fun pid ->
        if pid = 0 then
          let+ () = publish in
          0
        else rd2 1 0);
    relaxed_outcome = [ (0, 0); (1, 2) ];
    admits;
    sc_equivalent;
  }

let mp =
  mp_family "MP" "message passing: the ready flag may overtake the data"
    (let* () = Program.write 0 (i 1) in
     Program.write 1 (i 1))
    (fun m -> m = Memory_model.PSO)
    false

let mp_fence =
  mp_family "MP+fence" "message passing with a fence between data and flag"
    (let* () = Program.write 0 (i 1) in
     let* () = Program.fence in
     Program.write 1 (i 1))
    (fun _ -> false)
    true

let mp_rmw =
  mp_family "MP+rmw" "message passing publishing the flag with a swap"
    (let* () = Program.write 0 (i 1) in
     Program.map ignore (Program.swap 1 (i 1)))
    (fun _ -> false)
    true

(* LB — load buffering.  p_i: read the other register, then store its own.
   Both loads returning 1 requires loads to see program-order-later stores;
   store buffers delay stores, never advance loads, so no model here admits
   it (it needs genuine load reordering, e.g. ARM without dependencies). *)
let lb =
  {
    name = "LB";
    description = "load buffering: forbidden by every store-buffer model";
    n = 2;
    inits = zeroes 2;
    program_of =
      (fun pid ->
        let* v = rd (1 - pid) in
        let+ () = Program.write pid (i 1) in
        v);
    relaxed_outcome = [ (0, 1); (1, 1) ];
    admits = (fun _ -> false);
    sc_equivalent = true;
  }

(* IRIW — independent reads of independent writes.  Two writers, two readers
   scanning in opposite orders.  The readers disagreeing on the write order
   (both see "their" first write only) needs non-multi-copy-atomic stores;
   a single buffer per writer commits each store to everyone at once, so
   TSO/PSO forbid it like SC does. *)
let iriw =
  {
    name = "IRIW";
    description = "independent reads: store buffers stay multi-copy atomic";
    n = 4;
    inits = zeroes 2;
    program_of =
      (fun pid ->
        match pid with
        | 0 ->
          let+ () = Program.write 0 (i 1) in
          0
        | 1 ->
          let+ () = Program.write 1 (i 1) in
          0
        | 2 -> rd2 0 1
        | _ -> rd2 1 0);
    relaxed_outcome = [ (0, 0); (1, 0); (2, 2); (3, 2) ];
    admits = (fun _ -> false);
    sc_equivalent = true;
  }

let catalog = [ sb; sb_fence; sb_rmw; mp; mp_fence; mp_rmw; lb; iriw ]

let find name =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name) catalog

(* ---- running ---- *)

let outcomes ?(max_runs = 200_000) test ~model =
  let collect = ref Outcomes.empty in
  ignore
    (Explore.iter_dpor ~n:test.n ~program_of:test.program_of ~inits:test.inits ~model
       ~max_runs
       ~f:(fun run -> collect := Outcomes.add run.Explore.results !collect)
       ());
  !collect

type cell = {
  model : Memory_model.t;
  outcome_count : int;
  admitted : bool;
  expected : bool;
  sc_equal : bool;
}

let cell_ok c = c.admitted = c.expected

type verdict = {
  test : t;
  cells : cell list;  (** one per {!Memory_model.all}, in that order. *)
  lattice_ok : bool;
  ok : bool;
}

let check ?max_runs test =
  let per =
    List.map (fun model -> (model, outcomes ?max_runs test ~model)) Memory_model.all
  in
  let sc_set = List.assoc Memory_model.SC per in
  let cells =
    List.map
      (fun (model, set) ->
        {
          model;
          outcome_count = Outcomes.cardinal set;
          admitted = Outcomes.mem test.relaxed_outcome set;
          expected = test.admits model;
          sc_equal = Outcomes.equal set sc_set;
        })
      per
  in
  (* The model lattice, checked — not assumed: weakening the model only adds
     outcomes. *)
  let lattice_ok =
    List.for_all
      (fun (a, set_a) ->
        List.for_all
          (fun (b, set_b) ->
            (not (Memory_model.weaker_or_equal a b)) || Outcomes.subset set_a set_b)
          per)
      per
  in
  let sc_equiv_ok =
    (not test.sc_equivalent) || List.for_all (fun c -> c.sc_equal) cells
  in
  {
    test;
    cells;
    lattice_ok;
    ok = List.for_all cell_ok cells && lattice_ok && sc_equiv_ok;
  }

let check_all ?max_runs () = List.map (check ?max_runs) catalog

let all_ok verdicts = List.for_all (fun v -> v.ok) verdicts

(* The catalog's reason for existing: at least one test must tell every pair
   of models apart.  SB separates SC from {TSO, PSO}; MP separates TSO from
   PSO.  Checked over actual verdicts so a regressed simulator cannot
   silently collapse two models into one. *)
let distinguishes_all_models verdicts =
  let admitted_in name model =
    List.exists
      (fun v ->
        v.test.name = name
        && List.exists (fun c -> c.model = model && c.admitted) v.cells)
      verdicts
  in
  admitted_in "SB" Memory_model.TSO
  && admitted_in "SB" Memory_model.PSO
  && (not (admitted_in "SB" Memory_model.SC))
  && admitted_in "MP" Memory_model.PSO
  && not (admitted_in "MP" Memory_model.TSO)

let pp_outcome ppf o =
  Format.fprintf ppf "{%s}"
    (String.concat "; " (List.map (fun (pid, v) -> Printf.sprintf "p%d=%d" pid v) o))

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>%-8s %s@ " v.test.name v.test.description;
  Format.fprintf ppf "  relaxed outcome %a@ " pp_outcome v.test.relaxed_outcome;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-4s %3d outcomes, relaxed %s (expected %s)%s%s@ "
        (Memory_model.to_string c.model |> String.uppercase_ascii)
        c.outcome_count
        (if c.admitted then "admitted" else "forbidden")
        (if c.expected then "admitted" else "forbidden")
        (if c.sc_equal then "" else ", differs from SC")
        (if cell_ok c then "" else "  << MISMATCH"))
    v.cells;
  if not v.lattice_ok then Format.fprintf ppf "  << LATTICE VIOLATION@ ";
  Format.fprintf ppf "  %s@]" (if v.ok then "ok" else "FAIL")
