open Lb_runtime

type row = {
  n : int;
  measured_worst : int;
  measured_mean : float;
  predicted : int;
  lower_bound : int;
  largest_register : int;
  linearizable : bool;
}

let ceil_log4 n =
  let rec go r pow = if pow >= n then r else go (r + 1) (pow * 4) in
  go 0 1

let sweep ~construction ~spec_of ~ops_of ?(scheduler = Scheduler.round_robin)
    ?(check_linearizability = false) ~ns () =
  List.map
    (fun n ->
      let spec = spec_of n in
      let result =
        Harness.run ~construction ~spec ~n ~ops:(fun pid -> ops_of ~n pid) ~scheduler ()
      in
      if not result.Harness.completed then
        failwith (Printf.sprintf "Complexity.sweep: workload at n = %d ran out of fuel" n);
      let linearizable =
        if check_linearizability || n <= 8 then Harness.check_linearizable ~spec result
        else true
      in
      {
        n;
        measured_worst = result.Harness.max_cost;
        measured_mean = result.Harness.mean_cost;
        predicted = construction.Iface.worst_case ~n;
        lower_bound = ceil_log4 n;
        largest_register = result.Harness.largest_register;
        linearizable;
      })
    ns

let pp_row ppf r =
  Format.fprintf ppf "n = %4d | worst = %5d | mean = %8.2f | predicted <= %5d | log4(n) = %2d | reg size = %6d | lin = %b"
    r.n r.measured_worst r.measured_mean r.predicted r.lower_bound r.largest_register
    r.linearizable

let pp_table ~header ppf rows =
  Format.fprintf ppf "@[<v>%s@ %a@]" header
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    rows
