open Lb_memory
open Lb_runtime

type handle = {
  name : string;
  oblivious : bool;
  n : int;
  apply : pid:int -> seq:int -> Value.t -> Value.t Program.t;
}

type t = {
  name : string;
  oblivious : bool;
  worst_case : n:int -> int;
  create : Layout.t -> n:int -> Lb_objects.Spec.t -> handle;
}
