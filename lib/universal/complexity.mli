(** Complexity sweeps: measured worst-case shared-access cost vs. predictions.

    Used by experiments E7 (Θ(log n) combining tree vs. Θ(n) baseline), E9
    (constant-time direct CAS) and E10 (the sandwich around the wakeup
    bound). *)

open Lb_memory
open Lb_runtime

type row = {
  n : int;
  measured_worst : int;  (** max shared ops over all object operations. *)
  measured_mean : float;
  predicted : int;  (** the construction's own [worst_case ~n]. *)
  lower_bound : int;  (** [⌈log₄ n⌉] — the paper's floor for oblivious constructions. *)
  largest_register : int;
  linearizable : bool;
}

val sweep :
  construction:Iface.t ->
  spec_of:(int -> Lb_objects.Spec.t) ->
  ops_of:(n:int -> int -> Value.t list) ->
  ?scheduler:Scheduler.choice ->
  ?check_linearizability:bool ->
  ns:int list ->
  unit ->
  row list
(** One row per [n]: run the workload ([ops_of ~n pid] per process) through
    the construction and measure.  Linearizability checking is exponential in
    history size, so it is skipped for [n > 8] unless forced. *)

val pp_row : Format.formatter -> row -> unit
val pp_table : header:string -> Format.formatter -> row list -> unit
