open Lb_memory
open Lb_runtime
open Program.Syntax

(* One-shot consensus on a single LL/SC register (Unit = undecided).  At
   most three shared operations:
   - LL: if already decided, that is the answer;
   - else SC my proposal: success decides it;
   - either way a final read returns the (now stable) decision — my SC
     failing means another SC succeeded in the interim. *)
let propose cell v =
  let* current = Program.ll cell in
  if not (Value.equal current Value.Unit) then Program.return current
  else
    let* _ok = Program.sc_flag cell v in
    let* decided = Program.read cell in
    if Value.equal decided Value.Unit then failwith "consensus-list: cell undecided after SC"
    else Program.return decided

let worst_case ~n = (8 * n) + 10

let create layout ~n spec =
  if n <= 0 then invalid_arg "Consensus_list.create: n must be positive";
  let announce = Layout.alloc_array layout ~len:n ~init:Value.Unit in
  (* Cells occupy the open-ended register space after every allocation the
     layout will hand out; cell k lives at [cell_base + k] and reads as the
     memory default (Unit = undecided) until first touched. *)
  let cell_base = Layout.reserve_tail layout in
  let cell k = cell_base + k in
  (* Per-process local replay caches (single-writer: only process [pid]
     touches index [pid]).  [position] is the next cell to inspect; [state]
     the object state after replaying all cells below it; [threaded] the
     keys decided in cells below it. *)
  let position = Array.make n 0 in
  let state = Array.make n spec.Lb_objects.Spec.init in
  let threaded = Array.make n [] in
  let apply ~pid ~seq op =
    if pid < 0 || pid >= n then
      invalid_arg (Printf.sprintf "consensus-list: pid %d out of range" pid);
    let desc = { Codec.Desc.pid; seq; op } in
    let my_key = Codec.Desc.key desc in
    let* _old = Program.swap announce.(pid) (Codec.Desc.encode desc) in
    let rec walk () =
      let k = position.(pid) in
      (* Classic helping rule: propose the announced-but-unthreaded
         operation of process (k mod n), defaulting to my own. *)
      let helped = k mod n in
      let* announced = Program.read announce.(helped) in
      let candidate =
        if Value.equal announced Value.Unit then desc
        else
          let other = Codec.Desc.decode announced in
          if
            Codec.Desc.key other = my_key
            || List.mem (Codec.Desc.key other) threaded.(pid)
          then desc
          else other
      in
      let* decided_value = propose (cell k) (Codec.Desc.encode candidate) in
      let decided = Codec.Desc.decode decided_value in
      let state', response = spec.Lb_objects.Spec.apply state.(pid) decided.Codec.Desc.op in
      position.(pid) <- k + 1;
      state.(pid) <- state';
      threaded.(pid) <- Codec.Desc.key decided :: threaded.(pid);
      if Codec.Desc.key decided = my_key then Program.return response else walk ()
    in
    walk ()
  in
  { Iface.name = "consensus-list"; oblivious = true; n; apply }

let construction = { Iface.name = "consensus-list"; oblivious = true; worst_case; create }
