(** The universal-construction interface.

    An [n]-process universal construction, instantiated with a sequential
    specification, yields a {!handle}: a factory of programs, one per object
    operation, that processes run against the shared memory.  A construction
    is {e oblivious} when it uses the specification only through its opaque
    [apply] function — the paper's lower bound says every oblivious
    construction over LL/SC/validate/move/swap has worst-case shared-access
    time Ω(log n). *)

open Lb_memory
open Lb_runtime

type handle = {
  name : string;
  oblivious : bool;
  n : int;
  apply : pid:int -> seq:int -> Value.t -> Value.t Program.t;
      (** The program performing one operation.  [seq] must be strictly
          increasing per process (0, 1, 2, ...); the (pid, seq) pair
          identifies the operation instance. *)
}

type t = {
  name : string;
  oblivious : bool;
  worst_case : n:int -> int;
      (** The construction's own worst-case bound on shared-memory operations
          per object operation (the quantity compared against measurements
          and against the Ω(log n) lower bound). *)
  create : Layout.t -> n:int -> Lb_objects.Spec.t -> handle;
      (** Allocates the construction's registers from the layout (callers
          install the layout into the memory before running). *)
}
