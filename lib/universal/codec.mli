(** Wire format of the universal constructions.

    Both constructions keep three kinds of data in (unbounded-size) shared
    registers: operation descriptors, cumulative sets of descriptors, and the
    root record pairing the object state with the map of responses to every
    operation ever applied.  This module is the single place that knows how
    those are encoded as {!Lb_memory.Value.t}. *)

open Lb_memory

(** {1 Operation descriptors} *)

module Desc : sig
  type t = { pid : int; seq : int; op : Value.t }

  val key : t -> int * int
  (** [(pid, seq)] — unique per operation instance. *)

  val compare : t -> t -> int
  (** By key; the deterministic order in which batched operations are applied
      to the object state. *)

  val encode : t -> Value.t
  val decode : Value.t -> t
end

(** {1 Cumulative descriptor sets}

    Encoded as a [Value.List] of encoded descriptors, sorted by key and
    duplicate-free.  Sets only ever grow (unions), which is what makes the
    combining tree's "try twice" merge sound. *)

module Dset : sig
  val empty : Value.t
  val singleton : Desc.t -> Value.t
  val decode : Value.t -> Desc.t list
  (** Sorted by key. *)

  val union : Value.t -> Value.t -> Value.t
  val add : Value.t -> Desc.t -> Value.t
  val subset : Value.t -> Value.t -> bool
  val cardinal : Value.t -> int
  val mem : Value.t -> int * int -> bool
end

(** {1 The root record}

    [state] is the current object state; [responses] maps the key of every
    applied operation to its response.  The response map doubles as the
    "done" set preventing re-application. *)

module Root : sig
  type t = { state : Value.t; responses : ((int * int) * Value.t) list (* sorted by key *) }

  val initial : Value.t -> Value.t
  (** Encoded record with the given initial state and no responses. *)

  val encode : t -> Value.t
  val decode : Value.t -> t
  val find_response : t -> key:int * int -> Value.t option
  val is_done : t -> key:int * int -> bool

  val absorb : Lb_objects.Spec.t -> t -> Desc.t list -> t
  (** Apply, in key order, every descriptor not yet in the response map;
      record the new responses. *)
end
