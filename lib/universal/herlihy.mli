(** The O(n) oblivious universal construction (classical baseline).

    Herlihy-style announce-and-help: each process publishes its operation
    descriptor in a single-writer announce register, then twice attempts to
    install a new root record — link-load the root, collect {e all} [n]
    announce registers, apply every collected operation not yet reflected in
    the response map, store-conditional.  The same two-attempt helping
    argument as in {!Adt_tree} guarantees the operation is applied, because
    the second successful competitor must have collected the announces after
    this process published.

    Cost per object operation: announce = 1; two attempts of
    (LL + n validates + SC) = 2(n + 2); final response read = 1 — worst case
    [2n + 6].  Linear in [n]: the baseline the combining tree beats, with
    the crossover visible in experiment E7. *)

val construction : Iface.t
(** [name = "herlihy"], [oblivious = true], [worst_case ~n = 2n + 6]. *)
