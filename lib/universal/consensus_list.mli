(** Herlihy's consensus-based universal construction.

    The paper's related work traces universal constructions to Herlihy
    [17, 18], whose classic construction threads operations onto a list of
    cells, each cell decided by a {e consensus} object; Jayanti, Tan and
    Toueg [25] prove that oblivious universal constructions built from
    consensus objects cost Ω(n) per operation.  This module implements the
    construction with each one-shot consensus object realised from a single
    LL/SC register in at most three shared operations, giving the classic
    O(n) worst case — a second, structurally different Θ(n) baseline next to
    {!Herlihy} (experiment E14).

    Layout: an announce register per process and an unbounded array of
    consensus cells.  To perform an operation, a process announces its
    descriptor and then walks the cell sequence from its last known
    position.  At cell [k] it proposes — following the classic round-robin
    helping rule — the announced-but-unthreaded operation of process
    [k mod n] if any, else its own.  The cell's consensus decides which
    descriptor occupies position [k]; the walker replays decided cells
    through the sequential specification, so when its own descriptor is
    decided it knows the object state just before it and hence its
    response.  Helping bounds the walk: by the time [n] fresh cells have
    been decided after an announce, every earlier announce (including this
    one) has been threaded. *)

val construction : Iface.t
(** [name = "consensus-list"], [oblivious = true]; the worst case reported
    is for the harness's workloads: at most [4·(ops_before + n) + 2] shared
    operations, where the per-[n] bound exposed here assumes single-use
    workloads (one operation per process), i.e. [worst_case ~n = 4n + 6]. *)
