open Lb_memory
open Lb_runtime
open Program.Syntax

let compare_and_swap layout ~init =
  let reg = Layout.alloc layout ~init in
  let apply ~pid:_ ~seq:_ op =
    let expected, new_ = Value.to_pair op in
    let* v = Program.ll reg in
    if not (Value.equal v expected) then
      Program.return (Value.pair (Value.bool false) v)
    else
      let* ok, u = Program.sc reg new_ in
      if ok then Program.return (Value.pair (Value.bool true) v)
      else if not (Value.equal u expected) then
        (* Another process changed the value after our LL; at its change the
           state differed from [expected], so failing there is a legal
           linearization. *)
        Program.return (Value.pair (Value.bool false) u)
      else failwith "direct CAS: distinct-values precondition violated (ABA)"
  in
  { Iface.name = "direct-cas"; oblivious = false; n = max_int; apply }

let fetch_inc_retry layout ?(max_attempts = 4096) () =
  let reg = Layout.alloc layout ~init:(Value.Int 0) in
  let apply ~pid:_ ~seq:_ op =
    (match op with
    | Value.Unit -> ()
    | _ -> invalid_arg "fetch_inc_retry: operation must be Unit");
    Program.retry_until ~max_attempts (fun () ->
        let* v = Program.ll reg in
        let* ok = Program.sc_flag reg (Value.Int (Value.to_int v + 1)) in
        Program.return (if ok then Some v else None))
  in
  { Iface.name = "fetch-inc-retry"; oblivious = false; n = max_int; apply }
