(** Workload driver for implemented objects.

    Runs [n] processes, each with a list of object operations, against a
    construction handle.  Operations execute one at a time per process (a
    process invokes its next operation only after the previous one
    responded), interleaved at shared-memory-operation granularity by a
    {!Lb_runtime.Scheduler.choice}.  The driver records, per operation: its
    response, its invocation/response times on a global clock, and its exact
    shared-memory operation count — the paper's shared-access cost.

    The recorded history feeds {!Lb_objects.History.is_linearizable}; the
    cost maxima feed the complexity experiments. *)

open Lb_memory
open Lb_runtime

type op_stat = {
  pid : int;
  seq : int;
  op : Value.t;
  response : Value.t;
  invoked : int;
  responded : int;
  cost : int;  (** shared-memory operations this operation took. *)
}

type result = {
  stats : op_stat list;  (** in global response order. *)
  max_cost : int;
  mean_cost : float;
  total_shared_ops : int;
  completed : bool;  (** all scheduled operations ran to completion. *)
  largest_register : int;
  history : Lb_objects.History.entry list;
}

val run_handle :
  memory:Memory.t ->
  handle:Iface.handle ->
  n:int ->
  ops:(int -> Value.t list) ->
  ?scheduler:Scheduler.choice ->
  ?assignment:Coin.assignment ->
  ?fuel:int ->
  unit ->
  result
(** Drive a pre-installed handle ([memory] must already contain the layout's
    initial values). *)

val run :
  construction:Iface.t ->
  spec:Lb_objects.Spec.t ->
  n:int ->
  ops:(int -> Value.t list) ->
  ?scheduler:Scheduler.choice ->
  ?fuel:int ->
  unit ->
  result
(** Instantiate the construction on a fresh memory and drive it. *)

val check_linearizable : spec:Lb_objects.Spec.t -> result -> bool
