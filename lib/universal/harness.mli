(** Workload driver for implemented objects.

    Runs [n] processes, each with a list of object operations, against a
    construction handle.  Operations execute one at a time per process (a
    process invokes its next operation only after the previous one
    responded), interleaved at shared-memory-operation granularity by a
    {!Lb_runtime.Scheduler.choice}.  The driver records, per operation: its
    response, its invocation/response times on a global clock, and its exact
    shared-memory operation count — the paper's shared-access cost.

    The recorded history feeds {!Lb_objects.History.is_linearizable}; the
    cost maxima feed the complexity experiments. *)

open Lb_memory
open Lb_runtime

type op_stat = {
  pid : int;
  seq : int;
  op : Value.t;
  response : Value.t;
  invoked : int;
  responded : int;
  cost : int;
      (** shared-memory operations this operation took, including work lost
          to crash-recovery restarts. *)
}

type op_failure = {
  pid : int;
  seq : int;
  op : Value.t;
  reason : string;  (** the [Failure] message the operation gave up with. *)
  cost : int;  (** shared ops spent before giving up — still part of t(R). *)
  invoked : int;
  gave_up : int;
}
(** An operation that raised [Failure] mid-run — e.g. a bounded retry loop
    exhausted by injected spurious SC failures.  The driver records it and
    moves on instead of crashing: graceful degradation, so a certification
    sweep can report the failure rather than die on it. *)

type op_in_flight = {
  pid : int;
  seq : int;
  op : Value.t;
  invoked : int;
  cost : int;  (** shared ops spent so far, including restart-lost work. *)
}
(** An operation that was invoked and was still running when the run ended —
    its pid was crash-stopped, or fuel ran out.  It never responded and never
    gave up, yet it may have taken effect (a helping construction can
    complete a crashed announcer's operation on its behalf), so
    linearizability checking must treat it as a pending occurrence. *)

(** Fault interposition points of the driver, all optional (see
    {!Lb_faults.Fault_engine} for the implementation built on top):
    - [filter] restricts which runnable pids may be scheduled this step
      (crash-stop, crash-recovery windows, delays, stalled regions).
      [pending] exposes each runnable process's next shared-memory
      operation, so region stalls can look at target registers.
    - [note_step] is called after a pid executed one shared-memory step —
      the accurate per-process step count (scheduling decisions alone would
      overcount processes advanced only through local tosses).
    - [recover] names pids whose in-flight operation must be restarted from
      scratch this step (crash-recovery: volatile state lost, the operation
      is re-invoked with the same (pid, seq) descriptor).
    - [may_unblock] tells the driver whether an all-blocked configuration
      can still unblock later (pending recovery or window expiry); if not,
      the run stalls immediately instead of burning fuel. *)
type fault_hooks = {
  filter :
    step:int -> pending:(int -> Op.invocation option) -> runnable:int list -> int list;
  note_step : step:int -> pid:int -> unit;
  recover : step:int -> int list;
  may_unblock : step:int -> bool;
}

type result = {
  stats : op_stat list;  (** in global response order. *)
  failures : op_failure list;  (** operations that gave up, in give-up order. *)
  in_flight : op_in_flight list;
      (** operations still running when the run ended, in pid order. *)
  restarts : int;  (** crash-recovery re-invocations performed. *)
  restarted : (int * int) list;
      (** the [(pid, seq)] descriptors that were re-invoked at least once, in
          restart order with duplicates kept — a restarted operation may have
          applied its effect before the crash, so linearizability checking
          must treat each restart as a possible extra (pending) occurrence of
          the same operation. *)
  max_cost : int;
  mean_cost : float;
  total_shared_ops : int;
  completed : bool;  (** all scheduled operations ran to completion. *)
  largest_register : int;
  history : Lb_objects.History.entry list;
}

val run_handle :
  memory:Memory.t ->
  handle:Iface.handle ->
  n:int ->
  ops:(int -> Value.t list) ->
  ?scheduler:Scheduler.choice ->
  ?assignment:Coin.assignment ->
  ?fuel:int ->
  ?hooks:fault_hooks ->
  unit ->
  result
(** Drive a pre-installed handle ([memory] must already contain the layout's
    initial values).  When [memory] runs a relaxed model
    ({!Lb_memory.Memory_model}), every enabled store-buffer flush joins the
    scheduler's choice set as a pseudo-pid [n*(1+r)+p] — the
    {!Lb_runtime.System} encoding — and once the run is quiescent, remaining
    buffers drain deterministically.  Fault hooks only ever see real pids. *)

val run :
  construction:Iface.t ->
  spec:Lb_objects.Spec.t ->
  n:int ->
  ops:(int -> Value.t list) ->
  ?scheduler:Scheduler.choice ->
  ?fuel:int ->
  ?hooks:fault_hooks ->
  unit ->
  result
(** Instantiate the construction on a fresh memory and drive it. *)

val check_linearizable : spec:Lb_objects.Spec.t -> result -> bool
