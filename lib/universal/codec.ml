open Lb_memory

module Desc = struct
  type t = { pid : int; seq : int; op : Value.t }

  let key d = (d.pid, d.seq)

  let compare a b =
    let c = Int.compare a.pid b.pid in
    if c <> 0 then c else Int.compare a.seq b.seq

  let encode d = Value.triple (Value.Int d.pid) (Value.Int d.seq) d.op

  let decode v =
    let pid, seq, op = Value.to_triple v in
    { pid = Value.to_int pid; seq = Value.to_int seq; op }
end

module Dset = struct
  let empty = Value.List []
  let singleton d = Value.List [ Desc.encode d ]
  let decode v = List.map Desc.decode (Value.to_list v)

  let encode ds = Value.List (List.map Desc.encode ds)

  (* Merge two sorted duplicate-free lists. *)
  let rec merge xs ys =
    match xs, ys with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      let c = Desc.compare x y in
      if c < 0 then x :: merge xs' ys
      else if c > 0 then y :: merge xs ys'
      else x :: merge xs' ys'

  let union a b = encode (merge (decode a) (decode b))
  let add a d = union a (singleton d)

  let subset a b =
    let keys v = List.map Desc.key (decode v) in
    let kb = keys b in
    List.for_all (fun k -> List.mem k kb) (keys a)

  let cardinal v = List.length (Value.to_list v)
  let mem v key = List.exists (fun d -> Desc.key d = key) (decode v)
end

module Root = struct
  type t = { state : Value.t; responses : ((int * int) * Value.t) list }

  let encode_key (pid, seq) = Value.Pair (Value.Int pid, Value.Int seq)

  let decode_key v =
    let pid, seq = Value.to_pair v in
    (Value.to_int pid, Value.to_int seq)

  let encode t =
    Value.Pair
      ( t.state,
        Value.List (List.map (fun (k, resp) -> Value.Pair (encode_key k, resp)) t.responses) )

  let decode v =
    let state, responses = Value.to_pair v in
    {
      state;
      responses =
        List.map
          (fun entry ->
            let k, resp = Value.to_pair entry in
            (decode_key k, resp))
          (Value.to_list responses);
    }

  let initial state = encode { state; responses = [] }

  let find_response t ~key = List.assoc_opt key t.responses
  let is_done t ~key = List.mem_assoc key t.responses

  let insert_response responses key resp =
    let rec go = function
      | [] -> [ (key, resp) ]
      | ((k, _) as entry) :: rest ->
        if compare key k < 0 then (key, resp) :: entry :: rest else entry :: go rest
    in
    go responses

  let absorb spec t descs =
    List.fold_left
      (fun t (d : Desc.t) ->
        let key = Desc.key d in
        if is_done t ~key then t
        else
          let state', response = spec.Lb_objects.Spec.apply t.state d.op in
          { state = state'; responses = insert_response t.responses key response })
      t
      (List.sort Desc.compare descs)
end
