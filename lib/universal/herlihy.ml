open Lb_memory
open Lb_runtime
open Program.Syntax

let worst_case ~n = (2 * n) + 6

let create layout ~n spec =
  if n <= 0 then invalid_arg "Herlihy.create: n must be positive";
  let announce = Layout.alloc_array layout ~len:n ~init:Codec.Dset.empty in
  let root_rec = Layout.alloc layout ~init:(Codec.Root.initial spec.Lb_objects.Spec.init) in
  let collect () =
    Program.fold_list
      (fun acc reg ->
        let* published = Program.read reg in
        Program.return (List.rev_append (Codec.Dset.decode published) acc))
      [] (Array.to_list announce)
  in
  let attempt () =
    let* current = Program.ll root_rec in
    let* descs = collect () in
    let record = Codec.Root.absorb spec (Codec.Root.decode current) descs in
    let* _ok = Program.sc_flag root_rec (Codec.Root.encode record) in
    Program.return ()
  in
  let apply ~pid ~seq op =
    if pid < 0 || pid >= n then invalid_arg (Printf.sprintf "herlihy: pid %d out of range" pid);
    let desc = { Codec.Desc.pid; seq; op } in
    let key = Codec.Desc.key desc in
    (* The announce register only ever needs the latest descriptor: a process
       issues operation [seq + 1] only after operation [seq]'s response was
       installed in the root record, so overwriting cannot lose anything. *)
    let* _old = Program.swap announce.(pid) (Codec.Dset.singleton desc) in
    let* () = attempt () in
    let* () = attempt () in
    let* final = Program.read root_rec in
    match Codec.Root.find_response (Codec.Root.decode final) ~key with
    | Some response -> Program.return response
    | None ->
      failwith
        (Printf.sprintf "herlihy: response for (p%d, #%d) missing after two attempts" pid seq)
  in
  { Iface.name = "herlihy"; oblivious = true; n; apply }

let construction = { Iface.name = "herlihy"; oblivious = true; worst_case; create }
