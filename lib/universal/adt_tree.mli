(** The O(log n) oblivious universal construction (tightness side).

    Modelled on the Group-Update idea of Afek, Dauber and Touitou that the
    paper cites as the matching upper bound: processes sit at the leaves of a
    binary combining tree; pending operations propagate towards the root as
    cumulative descriptor sets; the root register holds the object state plus
    the response of every operation ever applied, and a successful SC on it
    applies a whole batch at once.

    The per-node merge is attempted {e twice}; the standard helping argument
    makes that sufficient: if both of my SCs on a node fail, the second
    successful competitor must have link-loaded the node after the first
    competitor's successful SC, hence after my child update — so {e its}
    union already carried my operation upward.  The same argument applies at
    the root record, so after two absorb attempts my response is present.

    Cost accounting per object operation, with [L = ⌈log₂ (max n 2)⌉]:
    leaf update (validate + swap) = 2; per tree level two merge attempts of
    (LL + 2 validates + SC) = 8L; two absorb attempts of (LL + validate +
    SC) = 6; final response read = 1.  Worst case [8L + 9] — deterministic,
    wait-free, and independent of the schedule, for {e any} object type:
    this is what makes the paper's Ω(log n) bound tight (given unbounded
    registers, which the root record exploits). *)

val construction : Iface.t
(** [name = "adt-tree"], [oblivious = true],
    [worst_case ~n = 8·⌈log₂ (max n 2)⌉ + 9]. *)

val levels : int -> int
(** [⌈log₂ (max n 2)⌉] — tree height used for [n] processes. *)
