(** Non-oblivious direct implementations — the sublogarithmic escape hatch.

    The paper's closing point: sublogarithmic-time implementations exist but
    must exploit the semantics of the implemented type, so they can never
    come from an oblivious universal construction.  Two classics: *)

open Lb_memory

val compare_and_swap : Layout.t -> init:Value.t -> Iface.handle
(** A wait-free compare&swap over a single LL/SC register in {e at most two}
    shared-memory operations, independent of [n].  Operation encoding is
    that of {!Lb_objects.Misc_types.compare_and_swap}:
    [Pair (expected, new_)] with response [Pair (Bool ok, previous)].

    It relies on a distinct-values precondition (no value is written twice —
    tag values with the writer and a sequence number to guarantee it): a
    failed SC returns the register's {e current} value [u], and [u ≠
    expected] then certifies that the CAS can linearize as a failure at the
    SC.  If [u = expected] (an ABA the precondition excludes) the program
    raises [Failure] rather than silently mis-linearizing. *)

val fetch_inc_retry : Layout.t -> ?max_attempts:int -> unit -> Iface.handle
(** The textbook lock-free LL/SC retry loop for fetch&increment (operation
    [Unit], response the previous counter value).  O(1) without contention
    but {e not wait-free}: each failed SC means another process succeeded,
    so under adversarial contention one operation can take O(n) steps —
    the ablation benchmark measures exactly that.  Raises [Failure] after
    [max_attempts] (default 4096) failed attempts. *)
