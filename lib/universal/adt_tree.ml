open Lb_memory
open Lb_runtime
open Program.Syntax

let levels n =
  let n = max n 2 in
  let rec go l pow = if pow >= n then l else go (l + 1) (pow * 2) in
  go 0 1

let worst_case ~n = (8 * levels n) + 9

let create layout ~n spec =
  if n <= 0 then invalid_arg "Adt_tree.create: n must be positive";
  let height = levels n in
  let m = 1 lsl height in
  (* Heap layout: internal nodes 1 .. m-1; leaf i sits at heap index m + i.
     Index 0 of [internal] is unused. *)
  let internal =
    Array.init m (fun j -> if j = 0 then -1 else Layout.alloc layout ~init:Codec.Dset.empty)
  in
  let leaves = Layout.alloc_array layout ~len:m ~init:Codec.Dset.empty in
  let root_rec = Layout.alloc layout ~init:(Codec.Root.initial spec.Lb_objects.Spec.init) in
  let reg_of_heap j = if j < m then internal.(j) else leaves.(j - m) in
  (* One merge attempt at internal node [j]: fold both children into it. *)
  let merge_once j =
    let* current = Program.ll internal.(j) in
    let* left = Program.read (reg_of_heap (2 * j)) in
    let* right = Program.read (reg_of_heap ((2 * j) + 1)) in
    let merged = Codec.Dset.union current (Codec.Dset.union left right) in
    let* _ok = Program.sc_flag internal.(j) merged in
    Program.return ()
  in
  let absorb_once () =
    let* current = Program.ll root_rec in
    let* pending = Program.read internal.(1) in
    let record = Codec.Root.absorb spec (Codec.Root.decode current) (Codec.Dset.decode pending) in
    let* _ok = Program.sc_flag root_rec (Codec.Root.encode record) in
    Program.return ()
  in
  let apply ~pid ~seq op =
    if pid < 0 || pid >= n then invalid_arg (Printf.sprintf "adt-tree: pid %d out of range" pid);
    let desc = { Codec.Desc.pid; seq; op } in
    let key = Codec.Desc.key desc in
    (* Publish at the leaf: the leaf is single-writer, so validate-then-swap
       cannot lose concurrent updates. *)
    let* image = Program.read leaves.(pid) in
    let* _old = Program.swap leaves.(pid) (Codec.Dset.add image desc) in
    (* Climb the tree, two merge attempts per node. *)
    let rec climb j =
      if j < 1 then Program.return ()
      else
        let* () = merge_once j in
        let* () = merge_once j in
        climb (j / 2)
    in
    let* () = climb ((m + pid) / 2) in
    let* () = absorb_once () in
    let* () = absorb_once () in
    let* final = Program.read root_rec in
    match Codec.Root.find_response (Codec.Root.decode final) ~key with
    | Some response -> Program.return response
    | None ->
      failwith
        (Printf.sprintf "adt-tree: response for (p%d, #%d) missing after two absorb attempts"
           pid seq)
  in
  { Iface.name = "adt-tree"; oblivious = true; n; apply }

let construction = { Iface.name = "adt-tree"; oblivious = true; worst_case; create }
