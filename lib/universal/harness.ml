open Lb_memory
open Lb_runtime

type op_stat = {
  pid : int;
  seq : int;
  op : Value.t;
  response : Value.t;
  invoked : int;
  responded : int;
  cost : int;
}

type result = {
  stats : op_stat list;
  max_cost : int;
  mean_cost : float;
  total_shared_ops : int;
  completed : bool;
  largest_register : int;
  history : Lb_objects.History.entry list;
}

(* Per-process driver state: the current operation runs in a fresh
   [Process.t] so its shared-op count is exactly the operation's cost. *)
type slot = {
  pid : int;
  mutable queue : Value.t list;
  mutable seq : int;
  mutable current : (Value.t * Value.t Process.t * int (* invoked at *)) option;
}

let run_handle ~memory ~handle ~n ~ops ?(scheduler = Scheduler.round_robin)
    ?(assignment = Coin.constant 0) ?fuel () =
  let slots = Array.init n (fun pid -> { pid; queue = ops pid; seq = 0; current = None }) in
  (* The clock ticks at every invocation, every shared-memory operation, and
     every response, so distinct events never share a timestamp and the
     real-time precedence fed to the linearizability checker is exact. *)
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let stats = ref [] in
  let start_next slot =
    match slot.queue with
    | [] -> ()
    | op :: rest ->
      slot.queue <- rest;
      let program = handle.Iface.apply ~pid:slot.pid ~seq:slot.seq op in
      slot.current <- Some (op, Process.create ~id:slot.pid program, tick ());
      slot.seq <- slot.seq + 1
  in
  Array.iter start_next slots;
  let finish slot op (proc : Value.t Process.t) invoked response =
    stats :=
      {
        pid = slot.pid;
        seq = slot.seq - 1;
        op;
        response;
        invoked;
        responded = tick ();
        cost = Process.shared_ops proc;
      }
      :: !stats;
    slot.current <- None;
    start_next slot
  in
  let runnable () =
    Array.to_list slots |> List.filter_map (fun s -> Option.map (fun _ -> s.pid) s.current)
  in
  let total_ops = Array.fold_left (fun acc s -> acc + List.length s.queue + 1) 0 slots in
  let default_fuel = 64 * total_ops * (n + Adt_tree.levels n + 8) in
  let fuel = Option.value ~default:default_fuel fuel in
  let rec drive step remaining =
    match runnable () with
    | [] -> true
    | pids ->
      if remaining = 0 then false
      else (
        match scheduler ~step ~runnable:pids with
        | None -> false
        | Some pid ->
          let slot = slots.(pid) in
          (match slot.current with
          | None -> assert false
          | Some (op, proc, invoked) ->
            Process.advance_local proc assignment;
            (match Process.status proc with
            | Process.Terminated response ->
              (* Terminated on local steps alone (possible for zero-cost ops). *)
              finish slot op proc invoked response
            | Process.Running ->
              ignore (Process.exec_op proc memory ~round:(-1));
              ignore (tick ());
              (match Process.status proc with
              | Process.Terminated response -> finish slot op proc invoked response
              | Process.Running -> ())));
          drive (step + 1) (remaining - 1))
  in
  let completed = drive 0 fuel in
  let stats = List.rev !stats in
  let costs = List.map (fun s -> s.cost) stats in
  let max_cost = List.fold_left max 0 costs in
  let mean_cost =
    if stats = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 costs) /. float_of_int (List.length stats)
  in
  let history =
    List.map
      (fun (s : op_stat) ->
        Lb_objects.History.entry ~pid:s.pid ~op:s.op ~response:s.response ~invoked:s.invoked
          ~responded:s.responded)
      stats
  in
  {
    stats;
    max_cost;
    mean_cost;
    total_shared_ops = Memory.total_ops memory;
    completed;
    largest_register = Memory.largest_value_size memory;
    history;
  }

let run ~construction ~spec ~n ~ops ?scheduler ?fuel () =
  let layout = Layout.create () in
  let handle = construction.Iface.create layout ~n spec in
  let memory = Memory.create () in
  Layout.install layout memory;
  run_handle ~memory ~handle ~n ~ops ?scheduler ?fuel ()

let check_linearizable ~spec result =
  Lb_objects.History.is_linearizable spec result.history
