open Lb_memory
open Lb_runtime

type op_stat = {
  pid : int;
  seq : int;
  op : Value.t;
  response : Value.t;
  invoked : int;
  responded : int;
  cost : int;
}

type op_failure = {
  pid : int;
  seq : int;
  op : Value.t;
  reason : string;
  cost : int;
  invoked : int;
  gave_up : int;
}

type op_in_flight = {
  pid : int;
  seq : int;
  op : Value.t;
  invoked : int;
  cost : int;
}

type fault_hooks = {
  filter :
    step:int -> pending:(int -> Op.invocation option) -> runnable:int list -> int list;
  note_step : step:int -> pid:int -> unit;
  recover : step:int -> int list;
  may_unblock : step:int -> bool;
}

type result = {
  stats : op_stat list;
  failures : op_failure list;
  in_flight : op_in_flight list;
  restarts : int;
  restarted : (int * int) list;
  max_cost : int;
  mean_cost : float;
  total_shared_ops : int;
  completed : bool;
  largest_register : int;
  history : Lb_objects.History.entry list;
}

(* Per-process driver state: the current operation runs in a fresh
   [Process.t] so its shared-op count is exactly the operation's cost.
   [lost] accumulates the shared ops of attempts abandoned by a
   crash-recovery restart, so the final stat still accounts every operation
   toward the paper's t(R). *)
type slot = {
  pid : int;
  mutable queue : Value.t list;
  mutable seq : int;
  mutable current : (Value.t * Value.t Process.t * int (* invoked at *)) option;
  mutable lost : int;
}

let run_handle ~memory ~handle ~n ~ops ?(scheduler = Scheduler.round_robin)
    ?(assignment = Coin.constant 0) ?fuel ?hooks () =
  Lb_observe.Tracer.attach_memory memory;
  let slots =
    Array.init n (fun pid -> { pid; queue = ops pid; seq = 0; current = None; lost = 0 })
  in
  (* The clock ticks at every invocation, every shared-memory operation, and
     every response, so distinct events never share a timestamp and the
     real-time precedence fed to the linearizability checker is exact. *)
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let stats = ref [] in
  let failures = ref [] in
  let restarts = ref 0 in
  let restarted = ref [] in
  let start_next slot =
    match slot.queue with
    | [] -> ()
    | op :: rest ->
      slot.queue <- rest;
      let program = handle.Iface.apply ~pid:slot.pid ~seq:slot.seq op in
      if Lb_observe.Tracer.active () then
        Lb_observe.Tracer.record
          (Lb_observe.Event.Op_invoked { pid = slot.pid; seq = slot.seq; op });
      slot.current <- Some (op, Process.create ~id:slot.pid program, tick ());
      slot.lost <- 0;
      slot.seq <- slot.seq + 1
  in
  Array.iter start_next slots;
  let finish slot op (proc : Value.t Process.t) invoked response =
    let cost = Process.shared_ops proc + slot.lost in
    Lb_observe.Metrics.observe_int (Lb_observe.Metrics.current ()) "harness.op_cost" cost;
    Lb_observe.Metrics.incr (Lb_observe.Metrics.current ()) "harness.ops_completed";
    if Lb_observe.Tracer.active () then
      Lb_observe.Tracer.record
        (Lb_observe.Event.Op_completed
           { pid = slot.pid; seq = slot.seq - 1; op; response; cost });
    stats :=
      {
        pid = slot.pid;
        seq = slot.seq - 1;
        op;
        response;
        invoked;
        responded = tick ();
        cost;
      }
      :: !stats;
    slot.current <- None;
    start_next slot
  in
  let fail slot op (proc : Value.t Process.t) invoked reason =
    let cost = Process.shared_ops proc + slot.lost in
    Lb_observe.Metrics.incr (Lb_observe.Metrics.current ()) "harness.ops_failed";
    if Lb_observe.Tracer.active () then
      Lb_observe.Tracer.record
        (Lb_observe.Event.Op_failed { pid = slot.pid; seq = slot.seq - 1; op; reason; cost });
    failures :=
      {
        pid = slot.pid;
        seq = slot.seq - 1;
        op;
        reason;
        cost;
        invoked;
        gave_up = tick ();
      }
      :: !failures;
    slot.current <- None;
    start_next slot
  in
  (* Advance a slot's process through its local coin tosses; operations that
     terminate on local steps alone (zero shared cost) complete here, which
     may immediately start — and settle — the slot's next operation. *)
  let rec settle slot =
    match slot.current with
    | None -> ()
    | Some (op, proc, invoked) ->
      Process.advance_local proc assignment;
      (match Process.status proc with
      | Process.Terminated response ->
        finish slot op proc invoked response;
        settle slot
      | Process.Running -> ())
  in
  let runnable () =
    Array.iter settle slots;
    Array.to_list slots |> List.filter_map (fun s -> Option.map (fun _ -> s.pid) s.current)
  in
  let pending pid =
    match slots.(pid).current with
    | Some (_, proc, _) -> Process.pending_op proc
    | None -> None
  in
  (* Crash-recovery restart: the in-flight operation is re-invoked from
     scratch with the same (pid, seq) descriptor — the model of a process
     that lost its volatile state and retries its pending operation. *)
  let restart pid =
    let slot = slots.(pid) in
    match slot.current with
    | None -> ()
    | Some (op, proc, invoked) ->
      slot.lost <- slot.lost + Process.shared_ops proc;
      let program = handle.Iface.apply ~pid ~seq:(slot.seq - 1) op in
      slot.current <- Some (op, Process.create ~id:pid program, invoked);
      Lb_observe.Metrics.incr (Lb_observe.Metrics.current ()) "harness.restarts";
      restarted := (pid, slot.seq - 1) :: !restarted;
      incr restarts
  in
  let total_ops = Array.fold_left (fun acc s -> acc + List.length s.queue + 1) 0 slots in
  let default_fuel = 64 * total_ops * (n + Adt_tree.levels n + 8) in
  let fuel = Option.value ~default:default_fuel fuel in
  let exec slot op proc invoked =
    match (try Ok (Process.exec_op proc memory ~round:(-1)) with Failure msg -> Error msg) with
    | Error msg -> fail slot op proc invoked msg
    | Ok _ ->
      ignore (tick ());
      (match Process.status proc with
      | Process.Terminated response -> finish slot op proc invoked response
      | Process.Running -> ())
  in
  (* Under a relaxed memory model, enabled store-buffer flushes join the
     schedulable set as pseudo-pids [n*(1+r)+p] — the same encoding as
     {!Lb_runtime.System} — so schedulers and the DPOR oracle decide flush
     order like any other step.  Fault hooks never see pseudo-pids: faults
     target processes, and a flush is the memory acting, not a process. *)
  let flush_ids () =
    List.map (fun (p, r) -> (n * (1 + r)) + p) (Memory.flushable memory)
  in
  let rec drive step remaining =
    (match hooks with
    | Some h -> List.iter restart (h.recover ~step)
    | None -> ());
    match runnable () with
    | [] ->
      (* Quiescent: every operation responded, so remaining buffered stores
         drain in a deterministic order no one can observe. *)
      List.iter (fun (pid, _) -> Memory.drain memory ~pid) (Memory.buffers memory);
      true
    | pids ->
      if remaining = 0 then false
      else (
        let allowed =
          match hooks with
          | Some h -> h.filter ~step ~pending ~runnable:pids
          | None -> pids
        in
        match allowed @ flush_ids () with
        | [] ->
          (* Everyone left is crashed, delayed or stalled.  Tick idly while a
             recovery or window expiry can still unblock the run. *)
          (match hooks with
          | Some h when h.may_unblock ~step -> drive (step + 1) (remaining - 1)
          | Some _ | None -> false)
        | _ :: _ as choices -> (
          match scheduler ~step ~runnable:choices with
          | None -> false
          | Some pid ->
            if Lb_observe.Tracer.active () then
              Lb_observe.Tracer.record
                (Lb_observe.Event.Sched { step; chosen = pid; runnable = choices });
            if pid >= n then Memory.flush memory ~pid:(pid mod n) ~reg:((pid / n) - 1)
            else begin
              let slot = slots.(pid) in
              match slot.current with
              | None -> assert false
              | Some (op, proc, invoked) ->
                exec slot op proc invoked;
                (match hooks with Some h -> h.note_step ~step ~pid | None -> ())
            end;
            drive (step + 1) (remaining - 1)))
  in
  let completed = drive 0 fuel in
  (* Operations still holding a slot when the run stopped (a crash-stopped
     pid, or fuel exhaustion) were invoked but never responded and never
     gave up.  They may have taken effect — e.g. a helping construction
     completes a crashed announcer's operation on its behalf — so the
     linearizability checker must see them as pending occurrences. *)
  let in_flight =
    Array.to_list slots
    |> List.filter_map (fun slot ->
           match slot.current with
           | None -> None
           | Some (op, proc, invoked) ->
             Some
               {
                 pid = slot.pid;
                 seq = slot.seq - 1;
                 op;
                 invoked;
                 cost = Process.shared_ops proc + slot.lost;
               })
  in
  let stats = List.rev !stats in
  let costs = List.map (fun (s : op_stat) -> s.cost) stats in
  let max_cost = List.fold_left max 0 costs in
  let mean_cost =
    if stats = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 costs) /. float_of_int (List.length stats)
  in
  let history =
    List.map
      (fun (s : op_stat) ->
        Lb_objects.History.entry ~pid:s.pid ~op:s.op ~response:s.response ~invoked:s.invoked
          ~responded:s.responded)
      stats
  in
  {
    stats;
    failures = List.rev !failures;
    in_flight;
    restarts = !restarts;
    restarted = List.rev !restarted;
    max_cost;
    mean_cost;
    total_shared_ops = Memory.total_ops memory;
    completed;
    largest_register = Memory.largest_value_size memory;
    history;
  }

let run ~construction ~spec ~n ~ops ?scheduler ?fuel ?hooks () =
  let layout = Layout.create () in
  let handle = construction.Iface.create layout ~n spec in
  let memory = Memory.create () in
  Layout.install layout memory;
  run_handle ~memory ~handle ~n ~ops ?scheduler ?fuel ?hooks ()

let check_linearizable ~spec result =
  Lb_objects.History.is_linearizable spec result.history
