(** Facade: one module exposing the whole reproduction.

    The library reproduces Jayanti's PODC 1998 lower bound: any
    implementation of fetch&increment, fetch&and/or/complement/multiply,
    queue, stack or read+increment from LL/SC/validate/move/swap shared
    memory has worst-case (expected) shared-access time Ω(log n) — and the
    bound is tight for oblivious universal constructions.

    Layering, bottom-up:
    - {!Value}, {!Bitvec}, {!Ids}, {!Op}, {!Register}, {!Memory}, {!Layout}:
      the shared-memory model of Section 3;
    - {!Coin}, {!Program}, {!Process}, {!System}, {!Scheduler}: algorithms as
      schedulable step machines;
    - {!Move_spec}, {!Source_movers}, {!Secretive}: Section 4's secretive
      complete schedules;
    - {!Round}, {!All_run}, {!S_run}, {!Upsets}, {!Indistinguishability},
      {!Lower_bound}: the Section 5 adversary and the Theorem 6.1 analysis;
    - {!Spec}, {!Counters}, {!Bitwise}, {!Containers}, {!Misc_types},
      {!Atomic}, {!History}: object types and linearizability;
    - {!Iface}, {!Adt_tree}, {!Herlihy}, {!Direct}, {!Harness},
      {!Complexity}: universal constructions and their measurement;
    - {!Pure_memory}, {!Explore}, {!Sched_tree}: the model-checking layer —
      value-semantics shared memory, full/reduced interleaving enumeration,
      and the bounded-DPOR scheduler tree behind [--exhaustive];
    - {!Json}, {!Event}, {!Tracer}, {!Trace_file}, {!Trace_diff}, {!Metrics},
      {!Bench_out}: the observability layer — structured trace events, the
      metrics registry and machine-readable benchmark artifacts;
    - {!Pool}: the domain pool — deterministic order-preserving parallel
      [map] with per-task metric/trace capture merged at join;
    - {!Fault_plan}, {!Fault_engine}, {!Retry}, {!Fault_targets}, {!Faults}:
      fault injection (crashes, recovery, weak LL/SC, delays) and the
      wait-freedom-under-adversity certification driver;
    - {!Conf_history}, {!Linearize}, {!Mutate}, {!Schedule_fuzz}, {!Shrink},
      {!Conformance}, {!Exhaustive}: the conformance subsystem — histories
      with pending operations, the Wing–Gong checker, mutation testing,
      differential schedule fuzzing, counterexample shrinking, and
      bounded-exhaustive certification over {!Sched_tree}'s DPOR;
    - {!Problem}, {!Reductions}, {!Direct_algorithms}, {!Randomized},
      {!Cheaters}, {!Corpus}: the wakeup problem and its algorithm corpus;
    - {!Hw_memory}, {!Hw_recorder}, {!Hw_run}, {!Hw_harness}, {!Hw_bench}:
      the hardware backend — the same free-monad programs interpreted on
      real OCaml 5 domains over [Atomic] LL/SC cells (Blelloch–Wei tagged
      indirection), with recorded histories certified by {!Linearize}.

    Two libraries sit {e above} this facade in the dependency DAG and so
    cannot be re-exported from it: [Lb_experiments] (E1–E14 as
    table-producing thunks) and [Lb_service] (the batched request server
    with a content-keyed result cache behind [lowerbound serve] /
    [lowerbound request]).  Executables that need them depend on them
    directly.  The full layer map is docs/ARCHITECTURE.md. *)

(* Shared-memory model *)
module Value = Lb_memory.Value
module Bitvec = Lb_memory.Bitvec
module Ids = Lb_memory.Ids
module Op = Lb_memory.Op
module Register = Lb_memory.Register
module Memory = Lb_memory.Memory
module Memory_model = Lb_memory.Memory_model
module Layout = Lb_memory.Layout
module Profile = Lb_memory.Profile

(* Runtime *)
module Coin = Lb_runtime.Coin
module Program = Lb_runtime.Program
module Process = Lb_runtime.Process
module System = Lb_runtime.System
module Scheduler = Lb_runtime.Scheduler

(* Secretive schedules (Section 4) *)
module Move_spec = Lb_secretive.Move_spec
module Source_movers = Lb_secretive.Source_movers
module Secretive = Lb_secretive.Secretive

(* Adversary (Section 5) and the lower bound (Section 6) *)
module Round = Lb_adversary.Round
module All_run = Lb_adversary.All_run
module S_run = Lb_adversary.S_run
module Upsets = Lb_adversary.Upsets
module Indistinguishability = Lb_adversary.Indistinguishability
module Claims = Lb_adversary.Claims
module Lower_bound = Lb_adversary.Lower_bound

(* Object types *)
module Spec = Lb_objects.Spec
module Counters = Lb_objects.Counters
module Bitwise = Lb_objects.Bitwise
module Containers = Lb_objects.Containers
module Misc_types = Lb_objects.Misc_types
module Atomic = Lb_objects.Atomic
module History = Lb_objects.History

(* Universal constructions *)
module Iface = Lb_universal.Iface
module Codec = Lb_universal.Codec
module Adt_tree = Lb_universal.Adt_tree
module Herlihy = Lb_universal.Herlihy
module Consensus_list = Lb_universal.Consensus_list
module Direct = Lb_universal.Direct
module Harness = Lb_universal.Harness
module Complexity = Lb_universal.Complexity

(* Exhaustive checking *)
module Pure_memory = Lb_check.Pure_memory
module Explore = Lb_check.Explore
module Sched_tree = Lb_check.Sched_tree
module Litmus = Lb_check.Litmus

(* Extensions (Section 7) *)
module Rmw = Lb_extensions.Rmw

(* Observability *)
module Json = Lb_observe.Json
module Event = Lb_observe.Event
module Tracer = Lb_observe.Tracer
module Trace_file = Lb_observe.Trace_file
module Trace_diff = Lb_observe.Trace_diff
module Metrics = Lb_observe.Metrics
module Bench_out = Lb_observe.Bench_out
module Bench_gate = Lb_observe.Bench_gate

(* Parallel execution *)
module Pool = Lb_exec.Pool

(* Fault injection and certification *)
module Fault_plan = Lb_faults.Fault_plan
module Fault_engine = Lb_faults.Fault_engine
module Retry = Lb_faults.Retry
module Fault_targets = Lb_faults.Targets
module Faults = Lb_faults.Certify

(* Conformance *)
module Conf_history = Lb_conformance.History
module Linearize = Lb_conformance.Linearize
module Mutate = Lb_conformance.Mutate
module Schedule_fuzz = Lb_conformance.Fuzz
module Shrink = Lb_conformance.Shrink
module Conformance = Lb_conformance.Conform
module Exhaustive = Lb_conformance.Exhaustive

(* Hardware backend *)
module Hw_memory = Lb_hardware.Hw_memory
module Hw_recorder = Lb_hardware.Recorder
module Hw_run = Lb_hardware.Hw_run
module Hw_harness = Lb_hardware.Hw_harness
module Hw_bench = Lb_hardware.Hw_bench

(* Wakeup *)
module Problem = Lb_wakeup.Problem
module Reductions = Lb_wakeup.Reductions
module Direct_algorithms = Lb_wakeup.Direct_algorithms
module Randomized = Lb_wakeup.Randomized
module Cheaters = Lb_wakeup.Cheaters
module Corpus = Lb_wakeup.Corpus

(** Analyze a corpus entry at [n] processes under the Theorem 6.1 adversary
    with the deterministic toss assignment. *)
let analyze_entry (entry : Corpus.entry) ~n ~max_rounds =
  let program_of, inits = entry.Corpus.make ~n in
  Lower_bound.analyze ~n ~program_of ~inits ~max_rounds ()

(** Analyze under a seeded uniform toss assignment (for randomized
    algorithms). *)
let analyze_entry_seeded (entry : Corpus.entry) ~n ~seed ~max_rounds =
  let program_of, inits = entry.Corpus.make ~n in
  Lower_bound.analyze ~n ~program_of ~inits ~assignment:(Coin.uniform ~seed) ~max_rounds ()
