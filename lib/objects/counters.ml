open Lb_memory

let mask bits =
  if bits < 1 || bits > 62 then
    invalid_arg (Printf.sprintf "Counters: bits = %d outside [1, 62]" bits);
  (1 lsl bits) - 1

let fetch_inc ~bits =
  let m = mask bits in
  {
    Spec.name = Printf.sprintf "fetch&inc[%d]" bits;
    init = Value.Int 0;
    apply =
      (fun state op ->
        match op with
        | Value.Unit -> (Value.Int ((Value.to_int state + 1) land m), state)
        | _ -> invalid_arg "fetch&inc: operation must be Unit");
  }

let fetch_add ~bits =
  let m = mask bits in
  {
    Spec.name = Printf.sprintf "fetch&add[%d]" bits;
    init = Value.Int 0;
    apply =
      (fun state op -> (Value.Int ((Value.to_int state + Value.to_int op) land m), state));
  }

let op_inc = Value.Str "inc"
let op_read = Value.Str "read"

let read_inc ~bits =
  let m = mask bits in
  {
    Spec.name = Printf.sprintf "read+inc[%d]" bits;
    init = Value.Int 0;
    apply =
      (fun state op ->
        match op with
        | Value.Str "inc" -> (Value.Int ((Value.to_int state + 1) land m), Value.Unit)
        | Value.Str "read" -> (state, state)
        | _ -> invalid_arg "read+inc: operation must be \"inc\" or \"read\"");
  }
