open Lb_memory

type t = {
  name : string;
  init : Value.t;
  apply : Value.t -> Value.t -> Value.t * Value.t;
}

let with_init t init = { t with init }

let run_sequential t ops =
  let state, rev_responses =
    List.fold_left
      (fun (state, acc) op ->
        let state', response = t.apply state op in
        (state', response :: acc))
      (t.init, []) ops
  in
  (List.rev rev_responses, state)
