(** Wide bitwise object types (Theorem 6.2, item 2).

    The paper needs [k]-bit objects with [k >= n], so states are
    [Value.Bits] of the given width.  Operations that take a vector argument
    accept either [Value.Bits] (of matching width) or [Value.Int] (encoded
    into the width). *)


val fetch_and : bits:int -> Spec.t
(** Operation [v]: state becomes [state AND v]; returns the previous state.
    Initial state: all ones (as the wakeup reduction requires). *)

val fetch_or : bits:int -> Spec.t
(** Initial state: all zeroes; state becomes [state OR v]. *)

val fetch_complement : bits:int -> Spec.t
(** Operation [Value.Int i]: complements bit [i] (0-indexed); returns the
    previous state.  Initial state: all zeroes. *)

val fetch_multiply : bits:int -> Spec.t
(** Operation [v]: state becomes [state * v mod 2^bits]; returns the previous
    state.  Initial state: 1. *)
