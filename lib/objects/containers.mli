(** Queue and stack object types (Theorem 6.2, item 3).

    Queue state is [Value.List] with the {e front} first; stack state is
    [Value.List] with the {e top} first. *)

open Lb_memory

val queue : Spec.t
(** Operations: [Value.Pair (Str "enq", v)] appends [v] at the rear and
    returns [Unit]; [Value.Str "deq"] removes and returns the front element,
    or returns [Str "empty"] on the empty queue. *)

val stack : Spec.t
(** Operations: [Value.Pair (Str "push", v)] pushes [v]; [Value.Str "pop"]
    removes and returns the top, or [Str "empty"]. *)

val op_enq : Value.t -> Value.t
val op_deq : Value.t
val op_push : Value.t -> Value.t
val op_pop : Value.t

val queue_with_items : int -> Spec.t
(** [queue_with_items n] initially contains [Int 1, ..., Int n] with [n] at
    the rear — the initial configuration of the paper's dequeue-based wakeup
    algorithm. *)

val stack_with_items : int -> Spec.t
(** [stack_with_items n] initially contains [Int 1, ..., Int n] with [1] on
    top and [n] at the bottom: since each process pops exactly once, whoever
    pops [n] is the [n]-th popper and learns everyone is up.  (The stack
    variant of the paper's dequeue construction.) *)
