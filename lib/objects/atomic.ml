open Lb_memory

type t = { spec : Spec.t; mutable state : Value.t; mutable applied : int }

let create spec = { spec; state = spec.Spec.init; applied = 0 }
let spec t = t.spec
let state t = t.state

let apply t op =
  let state', response = t.spec.Spec.apply t.state op in
  t.state <- state';
  t.applied <- t.applied + 1;
  response

let applied t = t.applied
