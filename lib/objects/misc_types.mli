(** Further object types: swap, test&set, compare&swap, consensus.

    These appear in the paper's related-work and open-problems discussion
    (Cypher's swap-object bound, the constant-time compare&swap construction
    from LL/SC, consensus-based universal constructions) and round out the
    type zoo for the universal-construction experiments. *)

open Lb_memory

val swap_object : init:Value.t -> Spec.t
(** Operation [v]: state becomes [v]; returns the previous state. *)

val test_and_set : Spec.t
(** State is [Bool]; operation [Str "test&set"] sets it and returns the
    previous value; [Str "reset"] clears it and returns [Unit]. *)

val compare_and_swap : init:Value.t -> Spec.t
(** Operation [Pair (expected, new_)]: if the state equals [expected] it
    becomes [new_]; the response is [Pair (Bool succeeded, previous)]. *)

val consensus : Spec.t
(** Operation [Pair (Str "propose", v)]: the first proposal decides;
    every proposal returns the decided value. *)

val snapshot : n:int -> Spec.t
(** An [n]-segment atomic snapshot object (the paper's Section 1 lists
    snapshot implementations among the known constant-time LL/SC
    constructions).  State: a list of [n] segment values, initially [Unit].
    Operations: [op_update ~segment v] overwrites one segment and returns
    [Unit]; [op_scan] returns the whole segment list atomically. *)

val op_update : segment:int -> Value.t -> Value.t
val op_scan : Value.t

val op_test_set : Value.t
val op_reset : Value.t
val op_cas : expected:Value.t -> new_:Value.t -> Value.t
val op_propose : Value.t -> Value.t
