(** A live atomic (linearizable-by-construction) object instance.

    This is the sequential oracle: operations apply instantaneously in the
    order they arrive.  Corollary 6.1's hypothesis speaks of processes
    communicating "via a single linearizable object O of type T" — the
    object-level wakeup algorithms of Theorem 6.2 are validated against this
    oracle before being compiled onto shared memory through a universal
    construction. *)

open Lb_memory

type t

val create : Spec.t -> t
val spec : t -> Spec.t
val state : t -> Value.t

val apply : t -> Value.t -> Value.t
(** Apply one operation atomically, returning its response. *)

val applied : t -> int
(** Number of operations applied so far. *)
