(** Counter-like object types (Theorem 6.2, items 1 and 4).

    States are [Value.Int] with wrap-around modulo [2^bits]; [bits] is the
    paper's [k] and must satisfy [1 <= bits <= 62] (the lower-bound
    experiments only need [k >= log n]; the genuinely wide objects live in
    {!Bitwise}). *)

open Lb_memory

val fetch_inc : bits:int -> Spec.t
(** Operation [Value.Unit]: add 1, return the previous state. *)

val fetch_add : bits:int -> Spec.t
(** Operation [Value.Int v]: add [v], return the previous state. *)

val read_inc : bits:int -> Spec.t
(** Two operations: [Value.Str "inc"] adds 1 and returns [Value.Unit] (just
    an acknowledgement — this is why the wakeup reduction needs {e two}
    operations and the bound drops to ½·log₄ n); [Value.Str "read"] returns
    the state. *)

val op_inc : Value.t
val op_read : Value.t
