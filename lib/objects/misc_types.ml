open Lb_memory

let swap_object ~init =
  {
    Spec.name = "swap-object";
    init;
    apply = (fun state op -> (op, state));
  }

let op_test_set = Value.Str "test&set"
let op_reset = Value.Str "reset"

let test_and_set =
  {
    Spec.name = "test&set";
    init = Value.Bool false;
    apply =
      (fun state op ->
        match op with
        | Value.Str "test&set" -> (Value.Bool true, state)
        | Value.Str "reset" -> (Value.Bool false, Value.Unit)
        | _ -> invalid_arg "test&set: operation must be \"test&set\" or \"reset\"");
  }

let op_cas ~expected ~new_ = Value.Pair (expected, new_)

let compare_and_swap ~init =
  {
    Spec.name = "compare&swap";
    init;
    apply =
      (fun state op ->
        let expected, new_ = Value.to_pair op in
        if Value.equal state expected then (new_, Value.Pair (Value.Bool true, state))
        else (state, Value.Pair (Value.Bool false, state)));
  }

let op_propose v = Value.Pair (Value.Str "propose", v)

let op_update ~segment v = Value.Pair (Value.Str "update", Value.Pair (Value.Int segment, v))
let op_scan = Value.Str "scan"

let snapshot ~n =
  if n <= 0 then invalid_arg "Misc_types.snapshot: n must be positive";
  {
    Spec.name = Printf.sprintf "snapshot[%d]" n;
    init = Value.List (List.init n (fun _ -> Value.Unit));
    apply =
      (fun state op ->
        match op with
        | Value.Pair (Value.Str "update", Value.Pair (Value.Int segment, v)) ->
          if segment < 0 || segment >= n then
            invalid_arg (Printf.sprintf "snapshot: segment %d out of range" segment);
          let segments =
            List.mapi (fun i old -> if i = segment then v else old) (Value.to_list state)
          in
          (Value.List segments, Value.Unit)
        | Value.Str "scan" -> (state, state)
        | _ -> invalid_arg "snapshot: operation must be update or scan");
  }

(* Undecided = empty list; decided v = [v]. *)
let consensus =
  {
    Spec.name = "consensus";
    init = Value.List [];
    apply =
      (fun state op ->
        match op, Value.to_list state with
        | Value.Pair (Value.Str "propose", v), [] -> (Value.List [ v ], v)
        | Value.Pair (Value.Str "propose", _), [ decided ] -> (state, decided)
        | _ -> invalid_arg "consensus: operation must be a proposal");
  }
