open Lb_memory

type entry = {
  pid : int;
  op : Value.t;
  response : Value.t;
  invoked : int;
  responded : int;
}

let entry ~pid ~op ~response ~invoked ~responded =
  if responded < invoked then invalid_arg "History.entry: responded before invoked";
  { pid; op; response; invoked; responded }

(* Wing-Gong DFS.  At each step the candidates are the remaining entries that
   are "minimal" in the real-time order: no other remaining entry responded
   before their invocation.  A candidate is viable if applying its operation
   to the current abstract state yields exactly its recorded response. *)
let linearization spec entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  let remaining = Array.make n true in
  let visited = Hashtbl.create 256 in
  let key state =
    let buf = Buffer.create (n + 32) in
    Array.iter (fun r -> Buffer.add_char buf (if r then '1' else '0')) remaining;
    Buffer.add_char buf '|';
    Buffer.add_string buf (Value.to_string state);
    Buffer.contents buf
  in
  let minimal i =
    remaining.(i)
    && not
         (Array.exists
            (fun j -> remaining.(j) && entries.(j).responded < entries.(i).invoked)
            (Array.init n (fun j -> j)))
  in
  let rec search state acc count =
    if count = n then Some (List.rev acc)
    else
      let k = key state in
      if Hashtbl.mem visited k then None
      else begin
        Hashtbl.add visited k ();
        let rec try_candidates i =
          if i = n then None
          else if minimal i then begin
            let e = entries.(i) in
            let state', response = spec.Spec.apply state e.op in
            if Value.equal response e.response then begin
              remaining.(i) <- false;
              match search state' (e :: acc) (count + 1) with
              | Some _ as witness -> witness
              | None ->
                remaining.(i) <- true;
                try_candidates (i + 1)
            end
            else try_candidates (i + 1)
          end
          else try_candidates (i + 1)
        in
        try_candidates 0
      end
  in
  search spec.Spec.init [] 0

let is_linearizable spec entries = Option.is_some (linearization spec entries)

let pp_entry ppf e =
  Format.fprintf ppf "p%d: %a -> %a @@ [%d, %d]" e.pid Value.pp e.op Value.pp e.response
    e.invoked e.responded
