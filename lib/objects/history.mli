(** Concurrent histories and linearizability checking.

    A history is a set of completed operations, each with its operation
    value, its response, and the (global, totally ordered) times at which it
    was invoked and at which it responded.  The history is {e linearizable}
    w.r.t. a sequential specification if there is a total order of the
    operations that (a) respects real time — if [e] responded before [f] was
    invoked, [e] precedes [f] — and (b) is a legal sequential execution of
    the specification producing exactly the recorded responses.

    The checker is the classical Wing–Gong search with memoisation on
    (object state, set of remaining operations); worst-case exponential but
    fast on the harness's histories. *)

open Lb_memory

type entry = {
  pid : int;
  op : Value.t;
  response : Value.t;
  invoked : int;  (** global time of the invocation. *)
  responded : int;  (** global time of the response; [>= invoked]. *)
}

val entry :
  pid:int -> op:Value.t -> response:Value.t -> invoked:int -> responded:int -> entry

val linearization : Spec.t -> entry list -> entry list option
(** A witness order if the history is linearizable, [None] otherwise. *)

val is_linearizable : Spec.t -> entry list -> bool

val pp_entry : Format.formatter -> entry -> unit
