open Lb_memory

let op_enq v = Value.Pair (Value.Str "enq", v)
let op_deq = Value.Str "deq"
let op_push v = Value.Pair (Value.Str "push", v)
let op_pop = Value.Str "pop"

let queue =
  {
    Spec.name = "queue";
    init = Value.List [];
    apply =
      (fun state op ->
        let items = Value.to_list state in
        match op with
        | Value.Pair (Value.Str "enq", v) -> (Value.List (items @ [ v ]), Value.Unit)
        | Value.Str "deq" -> (
          match items with
          | [] -> (state, Value.Str "empty")
          | front :: rest -> (Value.List rest, front))
        | _ -> invalid_arg "queue: operation must be enq or deq");
  }

let stack =
  {
    Spec.name = "stack";
    init = Value.List [];
    apply =
      (fun state op ->
        let items = Value.to_list state in
        match op with
        | Value.Pair (Value.Str "push", v) -> (Value.List (v :: items), Value.Unit)
        | Value.Str "pop" -> (
          match items with
          | [] -> (state, Value.Str "empty")
          | top :: rest -> (Value.List rest, top))
        | _ -> invalid_arg "stack: operation must be push or pop");
  }

let items n = List.init n (fun i -> Value.Int (i + 1))

let queue_with_items n = Spec.with_init queue (Value.List (items n))

(* Stack top must be popped n-th to reveal "everyone is up": put n deepest.
   Top-first representation with 1 on top, n at the bottom. *)
let stack_with_items n = Spec.with_init stack (Value.List (items n))
