(** Sequential specifications of object types.

    A type [T] is given by an initial state and a deterministic transition
    function [apply : state -> operation -> state * response], all over
    {!Lb_memory.Value.t}.  Universal constructions take a [Spec.t] and treat
    [apply] as a black box — which is exactly the paper's notion of an
    {e oblivious} universal construction: it cannot exploit the semantics of
    the type it is instantiated with. *)

open Lb_memory

type t = {
  name : string;
  init : Value.t;
  apply : Value.t -> Value.t -> Value.t * Value.t;
      (** [apply state op = (state', response)].  Must be pure and total on
          the operations the type supports; may raise [Invalid_argument] on
          malformed operations (a harness bug, not a data condition). *)
}

val with_init : t -> Value.t -> t
(** Same type, different initial state (e.g. a queue initially containing
    [n] items, as Theorem 6.2 requires). *)

val run_sequential : t -> Value.t list -> Value.t list * Value.t
(** Apply the operations in order from the initial state; returns the
    responses and the final state — the reference for linearizability
    checking and for differential tests of the universal constructions. *)
