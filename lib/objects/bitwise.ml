open Lb_memory

let to_vector ~bits op =
  match op with
  | Value.Bits v ->
    if Bitvec.width v <> bits then
      invalid_arg
        (Printf.sprintf "Bitwise: operand width %d does not match object width %d"
           (Bitvec.width v) bits)
    else v
  | Value.Int n -> Bitvec.of_int ~width:bits n
  | _ -> invalid_arg "Bitwise: operand must be Bits or Int"

let binary name ~bits ~init f =
  {
    Spec.name = Printf.sprintf "%s[%d]" name bits;
    init = Value.Bits init;
    apply =
      (fun state op ->
        let s = Value.to_bits state in
        (Value.Bits (f s (to_vector ~bits op)), state));
  }

let fetch_and ~bits = binary "fetch&and" ~bits ~init:(Bitvec.ones bits) Bitvec.logand
let fetch_or ~bits = binary "fetch&or" ~bits ~init:(Bitvec.zero bits) Bitvec.logor
let fetch_multiply ~bits = binary "fetch&multiply" ~bits ~init:(Bitvec.one bits) Bitvec.mul

let fetch_complement ~bits =
  {
    Spec.name = Printf.sprintf "fetch&complement[%d]" bits;
    init = Value.Bits (Bitvec.zero bits);
    apply =
      (fun state op ->
        let s = Value.to_bits state in
        (Value.Bits (Bitvec.complement_bit s (Value.to_int op)), state));
  }
