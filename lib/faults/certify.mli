(** Certification driver: runs constructions (and wakeup algorithms) under
    fault plans and returns structured verdicts instead of raising.

    A run is {e certified} when every non-crashed process completed its
    operations within the construction's analytic wait-free bound and the
    completed responses are consistent; {e degraded} when injected adversity
    forced a reported give-up or a bound excess that the plan excuses
    (spurious SC failures break wait-freedom of lock-free retry loops by
    design — the requirement is that the implementation reports it
    gracefully); {e violated} when a survivor starved, a recovered process
    never finished, an operation gave up with no spurious faults to excuse
    it, or the responses are inconsistent. *)

open Lb_runtime
open Lb_universal

type status = Certified | Degraded | Violated

type role = Survivor | Crashed | Recovered

type process_report = {
  pid : int;
  role : role;
  expected : int;
  completed : int;
  failed : int;
  max_cost : int;  (** worst completed-operation cost; 0 if none completed. *)
  bound : int;  (** analytic worst case; relaxed x2 for recovered pids. *)
  within_bound : bool;
  shared_ops : int;  (** the paper's t(p, R), from the memory's accounting. *)
  spurious_sc : int;  (** spurious SC failures injected against this pid. *)
}

type report = {
  target : string;
  plan : Fault_plan.t;
  n : int;
  seed : int;
  status : status;
  reasons : string list;  (** certification violations. *)
  notes : string list;  (** graceful degradations — reported, not fatal. *)
  processes : process_report list;
  spurious_injected : int;
  restarts : int;
  failures : Harness.op_failure list;
  consistent : bool;
  consistency : string;  (** which consistency check ran. *)
  total_shared_ops : int;
  raw : Harness.result;
}

val certified : report -> bool
(** [status <> Violated] — degraded-but-reported passes certification. *)

val failure_events : report -> Lb_observe.Event.t list
(** The report's give-ups as {!Lb_observe.Event.Op_failed} trace events —
    the same payload a live tracer records, so verdict tables and traces
    agree on what failed.  {!pp_report} prints these. *)

val run :
  target:Iface.t ->
  plan:Fault_plan.t ->
  n:int ->
  ?seed:int ->
  ?ops_per_process:int ->
  unit ->
  report
(** One certification run of a fetch&increment workload ([ops_per_process]
    operations per process, default 1) under the plan.  Consistency check:
    full linearizability when every effect is accounted for in the history;
    counter consistency (distinct responses with at most one hole per
    unaccounted operation) when crashed or given-up operations may have
    taken effect without responding. *)

val grid :
  targets:Iface.t list ->
  plans:Fault_plan.t list ->
  ns:int list ->
  ?seed:int ->
  ?ops_per_process:int ->
  unit ->
  report list
(** The sweep: targets x plans x n. *)

(** {1 Wakeup certification}

    Wakeup algorithms run whole programs under {!Lb_runtime.System}, so
    their certification is built on {!Lb_runtime.System.run_diagnosed} and
    {!Fault_engine.choice} rather than the harness: crash-recovery resumes
    in place (checkpointed local state) instead of re-invoking. *)

type wakeup_report = {
  algorithm : string;
  wplan : Fault_plan.t;
  wn : int;
  wseed : int;
  wstatus : status;
  wreasons : string list;
  wnotes : string list;
  diagnostics : System.diagnostics;
  results : (int * int) list;  (** terminated pid -> returned value. *)
  woke : int list;  (** pids that returned 1. *)
  crashed_pids : int list;
  false_claim : bool;
      (** someone claimed wakeup while another process never took a
          shared-memory step — the correctness violation the lower bound's
          adversary manufactures. *)
}

val run_wakeup :
  algorithm:string ->
  make:(n:int -> (int -> int Lb_runtime.Program.t) * (int * Lb_memory.Value.t) list) ->
  plan:Fault_plan.t ->
  n:int ->
  ?seed:int ->
  ?randomized:bool ->
  ?fuel:int ->
  unit ->
  wakeup_report
(** [make ~n] yields the per-pid program and the initial register values
    (the {!Lb_wakeup.Problem} instance shape).  [randomized] selects a
    seeded uniform coin assignment instead of the constant one. *)

(** {1 Printing} *)

val status_string : status -> string
val pp_status : Format.formatter -> status -> unit
val pp_report : Format.formatter -> report -> unit
val pp_wakeup_report : Format.formatter -> wakeup_report -> unit
