open Lb_memory
open Lb_runtime
open Lb_universal
open Program.Syntax

(* The direct LL/SC retry loop as a certifiable target.  It is only
   lock-free, so unlike the universal constructions it can legitimately give
   up under adversity; [Retry.bounded] makes the give-up a reported failure
   (with its retry count) instead of a crash.  The spec argument is ignored:
   this target *is* fetch&increment — the non-oblivious contrast to the
   universal constructions. *)
let direct_create layout ~n (_spec : Lb_objects.Spec.t) =
  let reg = Layout.alloc layout ~init:(Value.Int 0) in
  let max_attempts = (2 * n) + 4 in
  let apply ~pid:_ ~seq:_ op =
    (match op with
    | Value.Unit -> ()
    | _ -> invalid_arg "direct: operation must be Unit");
    let* outcome =
      Retry.bounded ~max_attempts (fun ~attempt:_ ->
          let* v = Program.ll reg in
          let* ok = Program.sc_flag reg (Value.Int (Value.to_int v + 1)) in
          Program.return (if ok then Some v else None))
    in
    Program.return (Retry.exn_or ~label:"direct fetch&inc" outcome)
  in
  { Iface.name = "direct"; oblivious = false; n; apply }

let direct =
  {
    Iface.name = "direct";
    oblivious = false;
    worst_case = (fun ~n -> 2 * ((2 * n) + 4));
    create = direct_create;
  }

let all = [ Adt_tree.construction; Herlihy.construction; Consensus_list.construction; direct ]

let find name = List.find_opt (fun (c : Iface.t) -> c.Iface.name = name) all
