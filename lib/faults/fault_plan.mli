(** Declarative, composable fault plans.

    A plan is a named list of {e injectors}, each a deterministic (given the
    engine's seed) description of one adversity:

    - [crash_stop ~pid ~after]: [pid] takes [after] shared-memory steps,
      then is never scheduled again (crash-stop, mid-operation).
    - [crash_recover ~pid ~after ~restart]: as above, but [restart] global
      steps after the crash the process comes back.  Under the
      {!Lb_universal.Harness} driver its in-flight operation is re-invoked
      from scratch (volatile state lost); under a {!Lb_runtime.System} run
      it resumes where it stopped (checkpointed local state) — the two
      standard recovery models.
    - [spurious_sc_rate r]: every SC fails spuriously with probability [r]
      (deterministically derived from the engine seed).  Weak LL/SC: the
      failed SC changes nothing and {e keeps} the Pset intact.
    - [spurious_sc_at ~pid ~at]: [pid]'s [k]-th SC (1-based) fails
      spuriously for each [k] in [at] — the surgical variant for tests.
    - [delay ~pid ~from_step ~duration]: [pid] is unschedulable during the
      global-step window — an adversarial starvation window.
    - [stall_region ~regs ~from_step ~duration]: any process whose pending
      operation touches one of [regs] is blocked during the window — a
      stalled memory region / slow home node.

    Plans are {e data}; {!Fault_engine.instantiate} turns one into the
    mutable run state that interposes on {!Lb_memory.Memory.apply} and the
    scheduler. *)

type injector =
  | Crash_stop of { pid : int; after : int }
  | Crash_recover of { pid : int; after : int; restart : int }
  | Spurious_sc_rate of float
  | Spurious_sc_at of { pid : int; at : int list }
  | Delay of { pid : int; from_step : int; duration : int }
  | Stall_region of { regs : int list; from_step : int; duration : int }

type t
(** A named, immutable list of injectors. *)

val none : t
(** The empty plan: a run under [none] is a fault-free run. *)

val name : t -> string
val injectors : t -> injector list

(** {1 Constructors} — one single-injector plan per injector kind. *)

val crash_stop : pid:int -> after:int -> t
val crash_recover : pid:int -> after:int -> restart:int -> t
val spurious_sc_rate : float -> t
val spurious_sc_at : pid:int -> at:int list -> t
val delay : pid:int -> from_step:int -> duration:int -> t
val stall_region : regs:int list -> from_step:int -> duration:int -> t

val compose : ?name:string -> t list -> t
(** Concatenate the injectors of several plans. *)

val horizon : t -> int
(** Steps beyond the workload the run must be given before concluding that a
    process starved: the last window expiry / recovery deadline. *)

val has_crash : t -> bool
(** Does the plan contain any crash-stop or crash-recover injector? *)

val has_spurious : t -> bool
(** Does the plan contain any spurious-SC injector? *)

val crash_stopped : t -> int list
(** Pids the plan crash-stops (sorted, deduplicated). *)

val crash_recovering : t -> int list
(** Pids the plan crashes and later recovers. *)

val pp_injector : Format.formatter -> injector -> unit
val pp : Format.formatter -> t -> unit

(** {1 The named plan grammar}

    The CLI's [--plan] argument: one of {!plan_names}, or several joined
    with ["+"] (e.g. ["crash-stop+spurious-sc"]), each instantiated at the
    run's process count. *)

val named : n:int -> (string * t) list
(** The built-in plans ([crash-stop], [crash-recover], [spurious-sc],
    [delay], [stall], [chaos], …) instantiated for [n] processes. *)

val of_name : n:int -> string -> t option
(** Parse a [--plan] argument: a {!plan_names} entry or several joined
    with ["+"]; [None] if any component is unknown. *)

val parse_joined :
  table:(string * 'a) list -> compose:(name:string -> 'a list -> 'a) -> string -> 'a option
(** The ['+']-joined plan grammar, generic over the plan type: resolve each
    ['+']-separated component in [table], compose the results under the
    user's spelling, [None] if any component is unknown.  {!of_name} is
    this applied to {!named}; the service layer's chaos plans
    ([Lb_service.Chaos]) share the same grammar. *)

val plan_names : string list
(** The names {!of_name} accepts as components. *)
