type injector =
  | Crash_stop of { pid : int; after : int }
  | Crash_recover of { pid : int; after : int; restart : int }
  | Spurious_sc_rate of float
  | Spurious_sc_at of { pid : int; at : int list }
  | Delay of { pid : int; from_step : int; duration : int }
  | Stall_region of { regs : int list; from_step : int; duration : int }

type t = { name : string; injectors : injector list }

let none = { name = "none"; injectors = [] }
let injectors t = t.injectors
let name t = t.name

let crash_stop ~pid ~after =
  if after < 0 then invalid_arg "Fault_plan.crash_stop: negative step count";
  { name = Printf.sprintf "crash-stop(p%d@%d)" pid after; injectors = [ Crash_stop { pid; after } ] }

let crash_recover ~pid ~after ~restart =
  if after < 0 || restart <= 0 then
    invalid_arg "Fault_plan.crash_recover: after must be >= 0 and restart > 0";
  {
    name = Printf.sprintf "crash-recover(p%d@%d+%d)" pid after restart;
    injectors = [ Crash_recover { pid; after; restart } ];
  }

let spurious_sc_rate rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault_plan.spurious_sc_rate: rate outside [0, 1]";
  { name = Printf.sprintf "spurious-sc(%.2f)" rate; injectors = [ Spurious_sc_rate rate ] }

let spurious_sc_at ~pid ~at =
  if List.exists (fun k -> k <= 0) at then
    invalid_arg "Fault_plan.spurious_sc_at: SC indices are 1-based";
  {
    name =
      Printf.sprintf "spurious-sc(p%d@{%s})" pid (String.concat "," (List.map string_of_int at));
    injectors = [ Spurious_sc_at { pid; at = List.sort_uniq Int.compare at } ];
  }

let delay ~pid ~from_step ~duration =
  if from_step < 0 || duration <= 0 then
    invalid_arg "Fault_plan.delay: from_step must be >= 0 and duration > 0";
  {
    name = Printf.sprintf "delay(p%d@[%d,%d))" pid from_step (from_step + duration);
    injectors = [ Delay { pid; from_step; duration } ];
  }

let stall_region ~regs ~from_step ~duration =
  if from_step < 0 || duration <= 0 then
    invalid_arg "Fault_plan.stall_region: from_step must be >= 0 and duration > 0";
  {
    name =
      Printf.sprintf "stall({%s}@[%d,%d))"
        (String.concat "," (List.map (Printf.sprintf "R%d") regs))
        from_step (from_step + duration);
    injectors = [ Stall_region { regs; from_step; duration } ];
  }

let compose ?name plans =
  let injectors = List.concat_map (fun p -> p.injectors) plans in
  let name =
    match name with
    | Some n -> n
    | None -> (
      match plans with
      | [] -> "none"
      | _ -> String.concat " + " (List.map (fun p -> p.name) plans))
  in
  { name; injectors }

(* The run horizon a plan needs beyond the workload itself: delay and stall
   windows must be allowed to expire, crash-recovery restart countdowns to
   elapse, before the driver may conclude that a process starved. *)
let horizon t =
  List.fold_left
    (fun acc -> function
      | Crash_stop _ | Spurious_sc_rate _ | Spurious_sc_at _ -> acc
      | Crash_recover { after; restart; _ } -> max acc (after + restart + 1)
      | Delay { from_step; duration; _ } | Stall_region { from_step; duration; _ } ->
        max acc (from_step + duration + 1))
    0 t.injectors

let has_crash t =
  List.exists
    (function
      | Crash_stop _ | Crash_recover _ -> true
      | Spurious_sc_rate _ | Spurious_sc_at _ | Delay _ | Stall_region _ -> false)
    t.injectors

let has_spurious t =
  List.exists
    (function
      | Spurious_sc_rate r -> r > 0.0
      | Spurious_sc_at _ -> true
      | Crash_stop _ | Crash_recover _ | Delay _ | Stall_region _ -> false)
    t.injectors

let crash_stopped t =
  List.filter_map
    (function
      | Crash_stop { pid; _ } -> Some pid
      | Crash_recover _ | Spurious_sc_rate _ | Spurious_sc_at _ | Delay _ | Stall_region _ ->
        None)
    t.injectors
  |> List.sort_uniq Int.compare

let crash_recovering t =
  List.filter_map
    (function
      | Crash_recover { pid; _ } -> Some pid
      | Crash_stop _ | Spurious_sc_rate _ | Spurious_sc_at _ | Delay _ | Stall_region _ -> None)
    t.injectors
  |> List.sort_uniq Int.compare

let pp_injector ppf = function
  | Crash_stop { pid; after } -> Format.fprintf ppf "crash-stop p%d after %d steps" pid after
  | Crash_recover { pid; after; restart } ->
    Format.fprintf ppf "crash p%d after %d steps, recover %d steps later" pid after restart
  | Spurious_sc_rate rate -> Format.fprintf ppf "spurious SC failure at rate %.2f" rate
  | Spurious_sc_at { pid; at } ->
    Format.fprintf ppf "spurious SC failure for p%d's SC #%s" pid
      (String.concat ",#" (List.map string_of_int at))
  | Delay { pid; from_step; duration } ->
    Format.fprintf ppf "delay p%d during steps [%d, %d)" pid from_step (from_step + duration)
  | Stall_region { regs; from_step; duration } ->
    Format.fprintf ppf "stall {%s} during steps [%d, %d)"
      (String.concat ", " (List.map (Printf.sprintf "R%d") regs))
      from_step (from_step + duration)

let pp ppf t =
  match t.injectors with
  | [] -> Format.fprintf ppf "%s (no faults)" t.name
  | injectors ->
    Format.fprintf ppf "%s:@ %a" t.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         pp_injector)
      injectors

(* ---- the canonical named plans (the CLI's plan grammar) ---- *)

let named ~n =
  let crash_stop_plan =
    compose ~name:"crash-stop"
      (crash_stop ~pid:0 ~after:1
      :: (if n >= 4 then [ crash_stop ~pid:1 ~after:3 ] else []))
  in
  [
    ("none", none);
    (crash_stop_plan.name, crash_stop_plan);
    ( "crash-recover",
      compose ~name:"crash-recover" [ crash_recover ~pid:0 ~after:2 ~restart:(6 * n) ] );
    ("spurious-sc", compose ~name:"spurious-sc" [ spurious_sc_rate 0.1 ]);
    ("delay", compose ~name:"delay" [ delay ~pid:0 ~from_step:3 ~duration:(4 * n) ]);
    ("stall", compose ~name:"stall" [ stall_region ~regs:[ 0; 1 ] ~from_step:2 ~duration:(2 * n) ]);
    ( "chaos",
      compose ~name:"chaos"
        ([ spurious_sc_rate 0.05; delay ~pid:0 ~from_step:2 ~duration:(2 * n) ]
        @ (if n >= 3 then [ crash_stop ~pid:1 ~after:3 ] else [])) );
  ]

(* The '+'-joined plan grammar, generic over the plan type so that other
   plan vocabularies (the service layer's Chaos_plan) parse identically:
   a name is either one table entry or several joined with '+', and the
   composite keeps the user's spelling as its name. *)
let parse_joined ~table ~compose name =
  let find one = List.assoc_opt one table in
  match String.split_on_char '+' name with
  | [ one ] -> find one
  | parts ->
    let resolved = List.map find parts in
    if List.exists Option.is_none resolved then None
    else Some (compose ~name (List.filter_map Fun.id resolved))

let of_name ~n name =
  parse_joined ~table:(named ~n) ~compose:(fun ~name plans -> compose ~name plans) name

let plan_names = [ "none"; "crash-stop"; "crash-recover"; "spurious-sc"; "delay"; "stall"; "chaos" ]
