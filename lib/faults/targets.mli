(** The certifiable targets: the three universal constructions plus the
    direct (non-oblivious, lock-free) LL/SC fetch&increment retry loop,
    built on {!Retry.bounded} so that under injected adversity it reports
    its give-up (with retry count) instead of crashing. *)

open Lb_universal

val direct : Iface.t
(** Direct fetch&increment: LL; SC(+1); retry — bounded at [2n + 4]
    attempts.  Only meaningful with a fetch&increment workload; the spec
    argument of [create] is ignored. *)

val all : Iface.t list
(** [adt-tree; herlihy; consensus-list; direct]. *)

val find : string -> Iface.t option
