(** Bounded retry with backoff, as a program combinator.

    Unlike {!Lb_runtime.Program.retry_until} — which raises on exhaustion,
    because in the fault-free model exceeding a helping bound is a bug —
    this combinator returns the exhaustion as a value, so programs running
    under injected faults (spurious SC failures, adversarial delays) can
    degrade gracefully and report their retry count.

    Accounting: every attempt's shared-memory operations run through the
    ordinary {!Lb_memory.Memory.apply} path, so retries count toward the
    paper's per-process shared-access time t(p, R) exactly like first
    tries.  Backoff steps are local coin tosses: free in the shared-access
    measure, but visible to (and schedulable by) the adversary. *)

open Lb_runtime

type 'a outcome = Completed of { result : 'a; attempts : int } | Exhausted of { attempts : int }

val attempts : 'a outcome -> int

val bounded :
  ?backoff:(attempt:int -> int) ->
  max_attempts:int ->
  (attempt:int -> 'a option Program.t) ->
  'a outcome Program.t
(** [bounded ~max_attempts body] runs [body ~attempt] (attempts numbered
    from 1) until it yields [Some x] or [max_attempts] attempts are spent.
    Between attempts, [backoff ~attempt] local coin tosses are performed
    (default none). *)

val exn_or : label:string -> 'a outcome -> 'a
(** Unwrap, raising [Failure "<label>: gave up after k attempts ..."] on
    exhaustion — for contexts (the certification harness) that convert the
    failure into a structured, per-operation report entry. *)
