open Lb_runtime
open Program.Syntax

type 'a outcome = Completed of { result : 'a; attempts : int } | Exhausted of { attempts : int }

let attempts = function Completed { attempts; _ } | Exhausted { attempts } -> attempts

let rec tosses k = if k <= 0 then Program.return () else Program.bind Program.toss (fun _ -> tosses (k - 1))

let bounded ?(backoff = fun ~attempt:_ -> 0) ~max_attempts body =
  if max_attempts <= 0 then invalid_arg "Retry.bounded: max_attempts must be positive";
  let rec go attempt =
    let* outcome = body ~attempt in
    match outcome with
    | Some result -> Program.return (Completed { result; attempts = attempt })
    | None ->
      if attempt >= max_attempts then Program.return (Exhausted { attempts = attempt })
      else
        let* () = tosses (backoff ~attempt) in
        go (attempt + 1)
  in
  go 1

let exn_or ~label outcome =
  match outcome with
  | Completed { result; _ } -> result
  | Exhausted { attempts } ->
    failwith (Printf.sprintf "%s: gave up after %d attempts (SC never succeeded)" label attempts)
