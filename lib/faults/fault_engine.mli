(** Instantiates a {!Fault_plan.t} into per-run mutable state and the two
    interposition points the rest of the system exposes:

    - a {!Lb_memory.Memory.interposer} (installed with {!arm}) that injects
      weak-LL/SC spurious failures — deterministically in the engine seed;
    - scheduling hooks: {!hooks} for the {!Lb_universal.Harness} driver
      (crash-stop, crash-recovery with operation re-invocation, delays,
      region stalls), and {!choice} for plain {!Lb_runtime.System} runs
      (where a crash-recover pid simply resumes — checkpointed local state —
      and an all-blocked step reads as a stall).

    Step counting is exact: a pid's crash budget is decremented only when it
    {e executes} a shared-memory operation ([note_step]), never when it is
    merely advanced through local coin tosses — the double-count bug of the
    old hand-rolled crash scheduler. *)

open Lb_memory
open Lb_runtime

type t

val instantiate : ?seed:int -> Fault_plan.t -> t
(** Fresh run state.  Two engines with the same plan and seed behave
    identically — fault injection is replayable. *)

val arm : t -> Memory.t -> unit
(** Install this engine's spurious-SC interposer on the memory.  Required
    before the run if the plan has spurious injectors; harmless otherwise. *)

val hooks : t -> Lb_universal.Harness.fault_hooks
(** The harness-facing hooks (crash/recover/delay/stall + step counting). *)

val choice : t -> ?pending:(int -> Op.invocation option) -> Scheduler.choice -> Scheduler.choice
(** Wrap a scheduler for a {!Lb_runtime.System} run: filters crashed,
    delayed and stalled pids, counts executed steps.  [pending] (typically
    [fun pid -> Process.pending_op (System.process sys pid)]) enables
    stall-region filtering; without it region stalls are inert. *)

(** {1 Run accounting} *)

val spurious_injected : t -> int
(** Total spurious SC failures injected (only SCs that would have
    succeeded count — an SC that had already lost its link fails for the
    strong-semantics reason). *)

val spurious_of : t -> pid:int -> int
(** Spurious SC failures injected against [pid]. *)

val steps_of : t -> pid:int -> int
(** Shared-memory steps [pid] has executed, as counted by the engine. *)

val crashed : t -> Ids.t
(** Pids currently crashed (crash observed, not recovered). *)

val recovered : t -> int list
(** Pids that crashed and have since recovered, in recovery order. *)

val plan : t -> Fault_plan.t
(** The plan this engine was instantiated from. *)

val seed : t -> int
(** The seed all injection decisions derive from. *)
