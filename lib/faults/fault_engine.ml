open Lb_memory
open Lb_runtime

type crash = {
  after : int;
  restart : int option; (* None = crash-stop *)
  mutable crashed_at : int option;
  mutable recovered : bool;
}

type t = {
  plan : Fault_plan.t;
  seed : int;
  steps : (int, int) Hashtbl.t; (* pid -> executed shared-memory steps *)
  crash : (int, crash) Hashtbl.t;
  sc_seen : (int, int) Hashtbl.t; (* pid -> SC invocations observed *)
  ats : (int, int list) Hashtbl.t; (* pid -> 1-based SC indices to fail *)
  rate : float; (* combined spurious rate *)
  delays : (int * int * int) list; (* pid, from, until *)
  stalls : (int list * int * int) list; (* regs, from, until *)
  mutable spurious_total : int;
  spurious_by : (int, int) Hashtbl.t;
  mutable memory : Memory.t option;
}

let instantiate ?(seed = 0) plan =
  let t =
    {
      plan;
      seed;
      steps = Hashtbl.create 16;
      crash = Hashtbl.create 8;
      sc_seen = Hashtbl.create 16;
      ats = Hashtbl.create 8;
      rate = 0.0;
      delays = [];
      stalls = [];
      spurious_total = 0;
      spurious_by = Hashtbl.create 8;
      memory = None;
    }
  in
  let rate = ref 1.0 (* probability that no rate injector fires *) in
  let delays = ref [] and stalls = ref [] in
  List.iter
    (fun injector ->
      match (injector : Fault_plan.injector) with
      | Crash_stop { pid; after } ->
        if not (Hashtbl.mem t.crash pid) then
          Hashtbl.add t.crash pid { after; restart = None; crashed_at = None; recovered = false }
      | Crash_recover { pid; after; restart } ->
        if not (Hashtbl.mem t.crash pid) then
          Hashtbl.add t.crash pid
            { after; restart = Some restart; crashed_at = None; recovered = false }
      | Spurious_sc_rate r -> rate := !rate *. (1.0 -. r)
      | Spurious_sc_at { pid; at } ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt t.ats pid) in
        Hashtbl.replace t.ats pid (List.sort_uniq Int.compare (at @ existing))
      | Delay { pid; from_step; duration } ->
        delays := (pid, from_step, from_step + duration) :: !delays
      | Stall_region { regs; from_step; duration } ->
        stalls := (regs, from_step, from_step + duration) :: !stalls)
    (Fault_plan.injectors plan);
  { t with rate = 1.0 -. !rate; delays = !delays; stalls = !stalls }

let arm t memory =
  t.memory <- Some memory;
  Memory.set_interposer memory
    (Some
       (fun ~pid invocation ->
         match invocation with
         | Op.Sc (r, _) ->
           let k = 1 + Option.value ~default:0 (Hashtbl.find_opt t.sc_seen pid) in
           Hashtbl.replace t.sc_seen pid k;
           let wanted =
             (match Hashtbl.find_opt t.ats pid with
             | Some at -> List.mem k at
             | None -> false)
             || t.rate > 0.0
                && float_of_int (Coin.hash ~seed:t.seed ~pid ~idx:k mod 1_000_000)
                   /. 1_000_000.0
                   < t.rate
           in
           (* Only a would-be-successful SC can fail *spuriously*; if the
              Pset lost [pid] the SC fails for the strong-semantics reason
              and no fault is injected (or counted). *)
           if wanted && Ids.mem pid (Memory.pset memory r) then begin
             t.spurious_total <- t.spurious_total + 1;
             Hashtbl.replace t.spurious_by pid
               (1 + Option.value ~default:0 (Hashtbl.find_opt t.spurious_by pid));
             Memory.Fail_sc
           end
           else Memory.Proceed
         | Op.Ll _ | Op.Validate _ | Op.Swap _ | Op.Move _ | Op.Write _ | Op.Fence ->
           Memory.Proceed))

let taken t pid = Option.value ~default:0 (Hashtbl.find_opt t.steps pid)

let note_step t ~step:_ ~pid = Hashtbl.replace t.steps pid (taken t pid + 1)

(* A pid is crashed once it has taken its budget of steps; a crash-recover
   pid un-crashes [restart] global steps after the crash was first observed. *)
let crashed_now t ~step pid =
  match Hashtbl.find_opt t.crash pid with
  | None -> false
  | Some c ->
    if c.recovered then false
    else if taken t pid < c.after then false
    else begin
      if c.crashed_at = None then begin
        c.crashed_at <- Some step;
        if Lb_observe.Tracer.active () then
          Lb_observe.Tracer.record (Lb_observe.Event.Crash { pid; step })
      end;
      match c.restart, c.crashed_at with
      | None, _ -> true
      | Some r, Some s -> step < s + r
      | Some _, None -> assert false
    end

let delayed t ~step pid =
  List.exists (fun (p, from_, until) -> p = pid && from_ <= step && step < until) t.delays

let stalled t ~step invocation =
  match invocation with
  | None -> false
  | Some inv ->
    let touched = Op.registers inv in
    List.exists
      (fun (regs, from_, until) ->
        from_ <= step && step < until && List.exists (fun r -> List.mem r regs) touched)
      t.stalls

let filter t ~step ~pending ~runnable =
  List.filter
    (fun pid ->
      (not (crashed_now t ~step pid))
      && (not (delayed t ~step pid))
      && not (stalled t ~step (pending pid)))
    runnable

let recoveries t ~step =
  Hashtbl.fold
    (fun pid c acc ->
      match c.restart, c.crashed_at with
      | Some r, Some s when (not c.recovered) && step >= s + r ->
        c.recovered <- true;
        if Lb_observe.Tracer.active () then
          Lb_observe.Tracer.record (Lb_observe.Event.Recovery { pid; step });
        pid :: acc
      | _ -> acc)
    t.crash []
  |> List.sort Int.compare

let may_unblock t ~step =
  Hashtbl.fold
    (fun _ c acc -> acc || (c.restart <> None && not c.recovered))
    t.crash false
  || List.exists (fun (_, _, until) -> step < until) t.delays
  || List.exists (fun (_, _, until) -> step < until) t.stalls

let hooks t =
  {
    Lb_universal.Harness.filter = (fun ~step ~pending ~runnable -> filter t ~step ~pending ~runnable);
    note_step = (fun ~step ~pid -> note_step t ~step ~pid);
    recover = (fun ~step -> recoveries t ~step);
    may_unblock = (fun ~step -> may_unblock t ~step);
  }

let choice t ?(pending = fun _ -> None) inner ~step ~runnable =
  match filter t ~step ~pending ~runnable with
  | [] -> None
  | allowed -> (
    match inner ~step ~runnable:allowed with
    | Some pid ->
      note_step t ~step ~pid;
      Some pid
    | None -> None)

let spurious_injected t = t.spurious_total
let spurious_of t ~pid = Option.value ~default:0 (Hashtbl.find_opt t.spurious_by pid)
let steps_of t ~pid = taken t pid

let crashed t =
  Hashtbl.fold
    (fun pid c acc -> if c.crashed_at <> None && not c.recovered then Ids.add pid acc else acc)
    t.crash Ids.empty

let recovered t =
  Hashtbl.fold (fun pid c acc -> if c.recovered then pid :: acc else acc) t.crash []
  |> List.sort Int.compare

let plan t = t.plan
let seed t = t.seed
