open Lb_memory
open Lb_runtime
open Lb_universal

type status = Certified | Degraded | Violated

type role = Survivor | Crashed | Recovered

type process_report = {
  pid : int;
  role : role;
  expected : int;
  completed : int;
  failed : int;
  max_cost : int; (* worst completed-operation cost; 0 if none completed *)
  bound : int; (* analytic worst case, relaxed x2 for recovered pids *)
  within_bound : bool;
  shared_ops : int; (* t(p, R) from the memory's accounting *)
  spurious_sc : int;
}

type report = {
  target : string;
  plan : Fault_plan.t;
  n : int;
  seed : int;
  status : status;
  reasons : string list; (* certification violations *)
  notes : string list; (* graceful degradations, reported not fatal *)
  processes : process_report list;
  spurious_injected : int;
  restarts : int;
  failures : Harness.op_failure list;
  consistent : bool;
  consistency : string; (* which consistency check ran *)
  total_shared_ops : int;
  raw : Harness.result;
}

let certified r = r.status <> Violated

let failure_events r =
  List.map
    (fun (f : Harness.op_failure) ->
      Lb_observe.Event.Op_failed
        { pid = f.Harness.pid; seq = f.Harness.seq; op = f.Harness.op; reason = f.Harness.reason; cost = f.Harness.cost })
    r.failures

let publish_metrics r =
  let reg = Lb_observe.Metrics.current () in
  Lb_observe.Metrics.incr reg "certify.runs";
  Lb_observe.Metrics.incr reg
    (match r.status with
    | Certified -> "certify.certified"
    | Degraded -> "certify.degraded"
    | Violated -> "certify.violated");
  Lb_observe.Metrics.incr ~by:r.spurious_injected reg "certify.spurious_injected";
  Lb_observe.Metrics.incr ~by:r.restarts reg "certify.restarts";
  Lb_observe.Metrics.observe_int reg "certify.total_shared_ops" r.total_shared_ops

(* Fetch&increment responses of the completed operations must be distinct
   and form 0 .. max with at most [holes] missing values — one hole per
   operation that may have taken effect without responding (a crashed
   process's in-flight operation, or a published-then-given-up one). *)
let counter_consistent ~holes responses =
  let sorted = List.sort_uniq Int.compare responses in
  List.length sorted = List.length responses
  && (match List.rev sorted with
     | [] -> true
     | max_v :: _ ->
       List.for_all (fun v -> v >= 0) sorted
       && max_v - (List.length sorted - 1) <= holes)

let run ~target ~plan ~n ?(seed = 1) ?(ops_per_process = 1) () =
  if n <= 0 then invalid_arg "Certify.run: n must be positive";
  let spec = Lb_objects.Counters.fetch_inc ~bits:62 in
  let engine = Fault_engine.instantiate ~seed plan in
  let layout = Layout.create () in
  let handle = target.Iface.create layout ~n spec in
  let memory = Memory.create () in
  Layout.install layout memory;
  Fault_engine.arm engine memory;
  let bound = target.Iface.worst_case ~n in
  let fuel = (64 * n * ops_per_process * (bound + 8)) + Fault_plan.horizon plan in
  let result =
    Harness.run_handle ~memory ~handle ~n
      ~ops:(fun _ -> List.init ops_per_process (fun _ -> Value.Unit))
      ~scheduler:Scheduler.round_robin ~assignment:(Coin.uniform ~seed) ~fuel
      ~hooks:(Fault_engine.hooks engine) ()
  in
  let in_range pids = List.filter (fun p -> p >= 0 && p < n) pids in
  let stopped = in_range (Fault_plan.crash_stopped plan) in
  let recovering = in_range (Fault_plan.crash_recovering plan) in
  let role_of pid =
    if List.mem pid stopped then Crashed
    else if List.mem pid recovering then Recovered
    else Survivor
  in
  let reasons = ref [] and notes = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let spurious_excused = Fault_plan.has_spurious plan in
  let processes =
    List.init n (fun pid ->
        let role = role_of pid in
        let mine = List.filter (fun (s : Harness.op_stat) -> s.Harness.pid = pid) result.Harness.stats in
        let completed = List.length mine in
        let failed =
          List.length
            (List.filter (fun (f : Harness.op_failure) -> f.Harness.pid = pid) result.Harness.failures)
        in
        let max_cost =
          List.fold_left (fun acc (s : Harness.op_stat) -> max acc s.Harness.cost) 0 mine
        in
        let bound = match role with Recovered -> 2 * bound | Survivor | Crashed -> bound in
        let within_bound = max_cost <= bound in
        (match role with
        | Survivor | Recovered ->
          let who = match role with Recovered -> "recovered process" | _ -> "survivor" in
          if completed + failed < ops_per_process then
            violation "%s p%d starved: %d of %d operations unaccounted for" who pid
              (ops_per_process - completed - failed) ops_per_process;
          if failed > 0 then
            if spurious_excused then
              note "p%d gave up on %d operation(s) under injected spurious SC failures" pid failed
            else violation "p%d gave up on %d operation(s) with no spurious faults to excuse it" pid failed;
          if not within_bound then
            if spurious_excused then
              note "p%d exceeded the analytic bound (%d > %d) due to injected retries" pid max_cost
                bound
            else violation "p%d exceeded the analytic wait-free bound: %d > %d" pid max_cost bound
        | Crashed ->
          if completed < ops_per_process && failed = 0 then
            note "crashed p%d left an operation in flight (helped or lost atomically)" pid);
        {
          pid;
          role;
          expected = ops_per_process;
          completed;
          failed;
          max_cost;
          bound;
          within_bound;
          shared_ops = Memory.ops_of memory ~pid;
          spurious_sc = Fault_engine.spurious_of engine ~pid;
        })
  in
  (* Consistency of the completed operations' responses.  Full
     linearizability when every effect is accounted for in the history;
     counter consistency (distinct responses, bounded holes) when crashed or
     given-up operations may have taken effect without responding. *)
  let in_flight_crashed =
    List.filter (fun (p : process_report) -> p.role = Crashed && p.completed + p.failed < p.expected) processes
    |> List.length
  in
  let holes = in_flight_crashed + List.length result.Harness.failures in
  let consistent, consistency =
    if holes = 0 && not (Fault_plan.has_crash plan) then
      if n * ops_per_process <= 32 then
        (Harness.check_linearizable ~spec result, "linearizable (Wing–Gong)")
      else (true, "linearizability skipped (history too large)")
    else
      ( counter_consistent ~holes
          (List.map (fun (s : Harness.op_stat) -> Value.to_int s.Harness.response) result.Harness.stats),
        Printf.sprintf "counter-consistent modulo %d unaccounted operation(s)" holes )
  in
  if not consistent then violation "responses are not %s" consistency;
  if Fault_engine.spurious_injected engine > 0 then
    note "%d spurious SC failure(s) injected" (Fault_engine.spurious_injected engine);
  if result.Harness.restarts > 0 then
    note "%d crash-recovery re-invocation(s)" result.Harness.restarts;
  let status =
    if !reasons <> [] then Violated
    else if List.exists (fun (p : process_report) -> p.failed > 0 || not p.within_bound) processes
    then Degraded
    else Certified
  in
  let report =
    {
      target = target.Iface.name;
      plan;
      n;
      seed;
      status;
      reasons = List.rev !reasons;
      notes = List.rev !notes;
      processes;
      spurious_injected = Fault_engine.spurious_injected engine;
      restarts = result.Harness.restarts;
      failures = result.Harness.failures;
      consistent;
      consistency;
      total_shared_ops = result.Harness.total_shared_ops;
      raw = result;
    }
  in
  publish_metrics report;
  report

let grid ~targets ~plans ~ns ?(seed = 1) ?(ops_per_process = 1) () =
  List.concat_map
    (fun target ->
      List.concat_map
        (fun plan -> List.map (fun n -> run ~target ~plan ~n ~seed ~ops_per_process ()) ns)
        plans)
    targets

(* ---- wakeup certification (System-based, with run diagnostics) ---- *)

type wakeup_report = {
  algorithm : string;
  wplan : Fault_plan.t;
  wn : int;
  wseed : int;
  wstatus : status;
  wreasons : string list;
  wnotes : string list;
  diagnostics : System.diagnostics;
  results : (int * int) list; (* terminated pid -> returned value *)
  woke : int list;
  crashed_pids : int list;
  false_claim : bool;
}

let run_wakeup ~algorithm ~make ~plan ~n ?(seed = 1) ?(randomized = false) ?fuel () =
  if n <= 0 then invalid_arg "Certify.run_wakeup: n must be positive";
  let program_of, inits = make ~n in
  let memory = Memory.create () in
  List.iter (fun (r, v) -> Memory.set_init memory r v) inits;
  let engine = Fault_engine.instantiate ~seed plan in
  Fault_engine.arm engine memory;
  let assignment = if randomized then Coin.uniform ~seed else Coin.constant 0 in
  let sys = System.create ~memory ~assignment ~n program_of in
  let pending pid = Process.pending_op (System.process sys pid) in
  let choice = Fault_engine.choice engine ~pending Scheduler.round_robin in
  let fuel = Option.value ~default:((1000 * n) + Fault_plan.horizon plan) fuel in
  let diagnostics = System.run_diagnosed sys choice ~fuel in
  let results =
    System.results sys |> Array.to_list
    |> List.mapi (fun pid r -> Option.map (fun v -> (pid, v)) r)
    |> List.filter_map Fun.id
  in
  let woke = List.filter_map (fun (pid, v) -> if v = 1 then Some pid else None) results in
  let crashed_pids = Ids.elements (Fault_engine.crashed engine) in
  let zero_step =
    List.filter_map
      (fun (pid, k) ->
        if k = 0 && List.mem pid diagnostics.System.unfinished then Some pid else None)
      diagnostics.System.ops_per_process
  in
  let reasons = ref [] and notes = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  List.iter
    (fun (pid, v) -> if v <> 0 && v <> 1 then violation "p%d returned %d (not 0/1)" pid v)
    results;
  (match woke, zero_step with
  | winner :: _, _ :: _ ->
    violation "p%d claimed wakeup while {%s} never took a shared-memory step" winner
      (String.concat ", " (List.map (Printf.sprintf "p%d") zero_step))
  | _, _ -> ());
  List.iter
    (fun pid ->
      if not (List.mem pid crashed_pids) then
        violation "survivor p%d did not terminate (%s)" pid
          (Format.asprintf "%a" System.pp_outcome diagnostics.System.outcome))
    diagnostics.System.unfinished;
  if crashed_pids <> [] && woke = [] && !reasons = [] then
    note "wakeup unattained under crashes — survivors declined to claim it (graceful)";
  let wstatus = if !reasons <> [] then Violated else if !notes <> [] then Degraded else Certified in
  {
    algorithm;
    wplan = plan;
    wn = n;
    wseed = seed;
    wstatus;
    wreasons = List.rev !reasons;
    wnotes = List.rev !notes;
    diagnostics;
    results;
    woke;
    crashed_pids;
    false_claim = woke <> [] && zero_step <> [];
  }

(* ---- printing ---- *)

let status_string = function
  | Certified -> "CERTIFIED"
  | Degraded -> "DEGRADED"
  | Violated -> "VIOLATED"

let pp_status ppf s = Format.pp_print_string ppf (status_string s)

let role_string = function Survivor -> "survivor" | Crashed -> "crashed" | Recovered -> "recovered"

let pp_process ppf (p : process_report) =
  Format.fprintf ppf "p%-3d | %-9s | %5d/%d | %6d | %5s | %5d | %6d | %8d" p.pid
    (role_string p.role) p.completed p.expected p.failed
    (if p.completed = 0 then "-" else string_of_int p.max_cost)
    p.bound p.shared_ops p.spurious_sc

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s under %s (n = %d, seed = %d): %a@ " r.target
    (Fault_plan.name r.plan) r.n r.seed pp_status r.status;
  Format.fprintf ppf "consistency: %s -> %b; spurious injected: %d; restarts: %d; total ops: %d@ "
    r.consistency r.consistent r.spurious_injected r.restarts r.total_shared_ops;
  Format.fprintf ppf "pid  | role      |  done  | failed | worst | bound | t(p,R) | spurious@ ";
  Format.fprintf ppf "%s@ " (String.make 74 '-');
  List.iter (fun p -> Format.fprintf ppf "%a@ " pp_process p) r.processes;
  (* Failures are rendered through the trace-event vocabulary, so a verdict
     table and a recorded trace show the same give-up lines. *)
  List.iter (fun e -> Format.fprintf ppf "%a@ " Lb_observe.Event.pp e) (failure_events r);
  List.iter (fun s -> Format.fprintf ppf "violation: %s@ " s) r.reasons;
  List.iter (fun s -> Format.fprintf ppf "note: %s@ " s) r.notes;
  Format.fprintf ppf "@]"

let pp_wakeup_report ppf r =
  Format.fprintf ppf "@[<v>%s under %s (n = %d, seed = %d): %a@ " r.algorithm
    (Fault_plan.name r.wplan) r.wn r.wseed pp_status r.wstatus;
  (* The run line is the diagnostics rendered as its Run_end trace event, so
     a wakeup verdict and a recorded trace end on the same summary. *)
  Format.fprintf ppf "run: %a@ " Lb_observe.Event.pp (System.diagnostics_event r.diagnostics);
  Format.fprintf ppf "woke: {%s}; crashed: {%s}@ "
    (String.concat ", " (List.map (Printf.sprintf "p%d") r.woke))
    (String.concat ", " (List.map (Printf.sprintf "p%d") r.crashed_pids));
  List.iter (fun s -> Format.fprintf ppf "violation: %s@ " s) r.wreasons;
  List.iter (fun s -> Format.fprintf ppf "note: %s@ " s) r.wnotes;
  Format.fprintf ppf "@]"
