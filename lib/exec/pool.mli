(** A fixed pool of domains with deterministic, order-preserving results.

    [map ~jobs f xs] computes [List.map f xs], running up to [jobs] tasks
    concurrently on stdlib [Domain]s.  Results come back in input order
    regardless of completion order, and observability is scheduling-proof:
    each task runs under a fresh domain-local {!Lb_observe.Metrics}
    registry (and, when the caller is tracing, a fresh ring
    {!Lb_observe.Tracer}), and those captures are merged into the caller's
    registry/tracer {e in task index order} at join.  A same-seed run
    therefore produces identical tables, metrics and traces at any job
    count — [~jobs:1] literally {e is} [List.map].

    Tasks are claimed dynamically from an atomic counter, so uneven task
    costs (the large-[n] rows of an experiment table) balance across
    domains.  The calling domain participates as a worker; [jobs - 1]
    helper domains are spawned at most.

    Nested pools are not detected: callers fanning out at an outer level
    should pass [~jobs:1] (the default) to inner levels. *)

val default_jobs : unit -> int
(** Job count for "auto": [LOWERBOUND_JOBS] from the environment if set to
    a positive integer, otherwise [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs] is [List.map f xs] evaluated on up to [jobs] domains.

    [jobs] defaults to [1] (fully sequential — parallelism is strictly
    opt-in); [~jobs:0] means {!default_jobs}[ ()]; negative values raise
    [Invalid_argument].

    If one or more tasks raise, the remaining tasks still run to
    completion, every task's metrics/trace captures — including what a
    failing task published before it raised — are still merged, and then
    the exception of the {e lowest-indexed} failing task re-raises with its
    original backtrace — again independent of scheduling. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map] with the task index passed to [f]. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [map] for effects only. *)
