(* A fixed pool of domains with deterministic, order-preserving results.

   Design constraints, in priority order:
   1. [map ~jobs:1] must be byte-identical to [List.map] — it IS
      [List.map], no domains, no registry juggling — so sequential runs
      (the determinism baseline the trace-diff gate checks) are untouched.
   2. At [jobs > 1], results, metrics and traces must not depend on
      scheduling: each task runs under a fresh domain-local metrics
      registry (and, when the caller is tracing, a fresh ring sink), and
      the captures are folded into the caller's registry/tracer in task
      index order at join.  Same seed, any jobs => same observable output.
   3. Stdlib only: [Domain.spawn] + an [Atomic] work counter; tasks are
      claimed dynamically so uneven row costs (e.g. the large-n rows of an
      experiment table) balance across domains. *)

open Lb_observe

let default_jobs () =
  match Sys.getenv_opt "LOWERBOUND_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some 0 -> Domain.recommended_domain_count ()
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve_jobs = function
  | None -> 1
  | Some 0 -> Domain.recommended_domain_count ()
  | Some j when j >= 1 -> j
  | Some j -> invalid_arg (Printf.sprintf "Pool: negative jobs %d" j)

type 'b capture =
  | Pending
  | Done of 'b * Metrics.t * Event.stamped list
  | Raised of exn * Printexc.raw_backtrace * Metrics.t * Event.stamped list

let map ?jobs f xs =
  let jobs = resolve_jobs jobs in
  match xs with
  | [] -> []
  | _ when jobs = 1 -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n Pending in
    (* Decided in the caller's domain: workers are born untraced. *)
    let traced = Tracer.active () in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let registry = Metrics.create () in
          let tracer = if traced then Some (Tracer.ring ()) else None in
          let run () = Metrics.with_registry registry (fun () -> f input.(i)) in
          let outcome =
            try
              Ok (match tracer with Some t -> Tracer.with_tracer t run | None -> run ())
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          (* Even a failing task keeps what it published before the raise —
             exactly what a sequential run would have left behind. *)
          let events = match tracer with Some t -> Tracer.events t | None -> [] in
          results.(i) <-
            (match outcome with
            | Ok y -> Done (y, registry, events)
            | Error (e, bt) -> Raised (e, bt, registry, events));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's first worker. *)
    worker ();
    List.iter Domain.join helpers;
    (* Join: fold every task's captures into the caller's ambient registry
       and tracer in task order, so the merged result is exactly what a
       sequential run would have produced.  The first exception (by task
       index, not by completion time) re-raises after all domains joined. *)
    let into = Metrics.current () in
    Array.iter
      (function
        | Done (_, registry, events) | Raised (_, _, registry, events) ->
          Metrics.merge ~into registry;
          Tracer.absorb events
        | Pending -> ())
      results;
    Array.iter
      (function Raised (e, bt, _, _) -> Printexc.raise_with_backtrace e bt | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function Done (y, _, _) -> y | Raised _ | Pending -> assert false)
         results)

let mapi ?jobs f xs = map ?jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs)
