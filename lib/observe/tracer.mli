(** Event sinks and the ambient tracer.

    A tracer stamps {!Event.t}s with a per-run sequence number and stores
    them in a bounded ring buffer (the default — keeps the most recent
    events, counts what it drops) or streams them to a channel as JSONL,
    one compact JSON object per line.

    Instrumented code does not thread a tracer through every call: it asks
    the {e ambient} tracer ({!record}), installed for the extent of a run
    with {!install} or {!with_tracer}.  When no tracer is installed,
    {!active} is false and every instrumentation site reduces to one ref
    read — runs with tracing disabled are bit-identical to, and within
    noise as fast as, untraced runs (checked by [test/suite_observe.ml]
    and the E7 overhead gate). *)

open Lb_memory

type t

val ring : ?capacity:int -> unit -> t
(** In-memory sink keeping the most recent [capacity] (default [1 lsl 20])
    events. *)

val on_channel : out_channel -> t
(** Streaming sink: each event is written immediately as one JSONL line.
    {!events} on a channel sink is empty — the artifact {e is} the trace. *)

val emit : t -> Event.t -> unit
(** Stamp and record one event. *)

val events : t -> Event.stamped list
(** Recorded events, oldest first (ring sinks only). *)

val emitted : t -> int
(** Total events emitted, including any dropped by a full ring. *)

val dropped : t -> int
(** Events a ring sink has overwritten; 0 for channel sinks. *)

val flush : t -> unit
(** Flush a channel sink; no-op for rings. *)

(** {1 The ambient tracer} *)

val install : t option -> unit
(** Make the given tracer the ambient one (or uninstall with [None]). *)

val installed : unit -> t option

val active : unit -> bool
(** True iff a tracer is installed — the guard every instrumentation site
    checks before constructing an event. *)

val record : Event.t -> unit
(** Emit to the ambient tracer; no-op when none is installed. *)

val with_tracer : t -> (unit -> 'a) -> 'a
(** Install for the extent of the callback, restoring the previous ambient
    tracer afterwards (exception-safe).

    The ambient tracer is {e domain-local}: installing only affects the
    calling domain, and a fresh domain starts untraced.  {!Lb_exec.Pool}
    gives each parallel task its own ring sink and {!absorb}s the captured
    events into the parent's tracer in task order at join. *)

val absorb : Event.stamped list -> unit
(** Re-emit previously captured events into the ambient tracer (re-stamping
    them with the ambient sequence); no-op when none is installed. *)

val attach_memory : Memory.t -> unit
(** If a tracer is active, install a {!Lb_memory.Memory.tap} on the memory
    that records every applied operation as a {!Event.Shared_access}
    (spurious SC failures flagged).  No-op when tracing is off, so
    executors can call it unconditionally at memory-creation time. *)
