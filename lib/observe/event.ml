open Lb_memory

type run_outcome = All_terminated | Out_of_fuel | Stalled

type t =
  | Shared_access of {
      pid : int;
      invocation : Op.invocation;
      response : Op.response;
      spurious : bool;
    }
  | Coin_toss of { pid : int; idx : int; outcome : int }
  | Sched of { step : int; chosen : int; runnable : int list }
  | Round of { index : int }
  | Crash of { pid : int; step : int }
  | Recovery of { pid : int; step : int }
  | Op_invoked of { pid : int; seq : int; op : Value.t }
  | Op_completed of { pid : int; seq : int; op : Value.t; response : Value.t; cost : int }
  | Op_failed of { pid : int; seq : int; op : Value.t; reason : string; cost : int }
  | Run_end of {
      outcome : run_outcome;
      steps : int;
      ops : (int * int) list;
      unfinished : int list;
    }
  | Service of { op : string; detail : string }

type stamped = { at : int; event : t }

let kind = function
  | Shared_access _ -> "access"
  | Coin_toss _ -> "toss"
  | Sched _ -> "sched"
  | Round _ -> "round"
  | Crash _ -> "crash"
  | Recovery _ -> "recovery"
  | Op_invoked _ -> "invoke"
  | Op_completed _ -> "complete"
  | Op_failed _ -> "give-up"
  | Run_end _ -> "end"
  | Service _ -> "service"

let kinds =
  [ "access"; "toss"; "sched"; "round"; "crash"; "recovery"; "invoke"; "complete";
    "give-up"; "end"; "service" ]

let equal_outcome (a : run_outcome) b = a = b

let equal a b =
  match (a, b) with
  | Shared_access a, Shared_access b ->
    a.pid = b.pid
    && Op.equal_invocation a.invocation b.invocation
    && Op.equal_response a.response b.response
    && a.spurious = b.spurious
  | Coin_toss a, Coin_toss b -> a.pid = b.pid && a.idx = b.idx && a.outcome = b.outcome
  | Sched a, Sched b -> a.step = b.step && a.chosen = b.chosen && a.runnable = b.runnable
  | Round a, Round b -> a.index = b.index
  | Crash a, Crash b -> a.pid = b.pid && a.step = b.step
  | Recovery a, Recovery b -> a.pid = b.pid && a.step = b.step
  | Op_invoked a, Op_invoked b -> a.pid = b.pid && a.seq = b.seq && Value.equal a.op b.op
  | Op_completed a, Op_completed b ->
    a.pid = b.pid && a.seq = b.seq && Value.equal a.op b.op
    && Value.equal a.response b.response && a.cost = b.cost
  | Op_failed a, Op_failed b ->
    a.pid = b.pid && a.seq = b.seq && Value.equal a.op b.op
    && String.equal a.reason b.reason && a.cost = b.cost
  | Run_end a, Run_end b ->
    equal_outcome a.outcome b.outcome && a.steps = b.steps && a.ops = b.ops
    && a.unfinished = b.unfinished
  | Service a, Service b -> String.equal a.op b.op && String.equal a.detail b.detail
  | ( ( Shared_access _ | Coin_toss _ | Sched _ | Round _ | Crash _ | Recovery _
      | Op_invoked _ | Op_completed _ | Op_failed _ | Run_end _ | Service _ ),
      _ ) ->
    false

let equal_stamped a b = a.at = b.at && equal a.event b.event

(* ---- JSON codec ---- *)

(* Values serialise as tagged arrays — compact and unambiguous:
   ["u"] | ["b", bool] | ["i", int] | ["s", str] | ["p", v, v]
   | ["l", v...] | ["v", width, "0101..."] (bits, MSB first). *)
let rec json_of_value : Value.t -> Json.t = function
  | Value.Unit -> Json.Arr [ Json.Str "u" ]
  | Value.Bool b -> Json.Arr [ Json.Str "b"; Json.Bool b ]
  | Value.Int i -> Json.Arr [ Json.Str "i"; Json.Int i ]
  | Value.Str s -> Json.Arr [ Json.Str "s"; Json.Str s ]
  | Value.Pair (a, b) -> Json.Arr [ Json.Str "p"; json_of_value a; json_of_value b ]
  | Value.List l -> Json.Arr (Json.Str "l" :: List.map json_of_value l)
  | Value.Bits v ->
    let w = Bitvec.width v in
    let s = String.init w (fun i -> if Bitvec.get v (w - 1 - i) then '1' else '0') in
    Json.Arr [ Json.Str "v"; Json.Int w; Json.Str s ]

let rec value_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Arr (Json.Str "u" :: []) -> Ok Value.Unit
  | Json.Arr [ Json.Str "b"; Json.Bool b ] -> Ok (Value.Bool b)
  | Json.Arr [ Json.Str "i"; Json.Int i ] -> Ok (Value.Int i)
  | Json.Arr [ Json.Str "s"; Json.Str s ] -> Ok (Value.Str s)
  | Json.Arr [ Json.Str "p"; a; b ] ->
    let* a = value_of_json a in
    let* b = value_of_json b in
    Ok (Value.Pair (a, b))
  | Json.Arr (Json.Str "l" :: items) ->
    let* items =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = value_of_json item in
          Ok (v :: acc))
        (Ok []) items
    in
    Ok (Value.List (List.rev items))
  | Json.Arr [ Json.Str "v"; Json.Int w; Json.Str s ] ->
    if String.length s <> w || w <= 0 then Error "bad bits encoding"
    else begin
      let v = ref (Bitvec.zero w) in
      (try
         String.iteri
           (fun i c ->
             match c with
             | '1' -> v := Bitvec.set !v (w - 1 - i) true
             | '0' -> ()
             | _ -> raise Exit)
           s;
         Ok (Value.Bits !v)
       with Exit -> Error "bad bits digit")
    end
  | _ -> Error "bad value encoding"

let json_of_invocation : Op.invocation -> Json.t = function
  | Op.Ll r -> Json.Obj [ ("op", Json.Str "ll"); ("reg", Json.Int r) ]
  | Op.Sc (r, v) ->
    Json.Obj [ ("op", Json.Str "sc"); ("reg", Json.Int r); ("value", json_of_value v) ]
  | Op.Validate r -> Json.Obj [ ("op", Json.Str "validate"); ("reg", Json.Int r) ]
  | Op.Swap (r, v) ->
    Json.Obj [ ("op", Json.Str "swap"); ("reg", Json.Int r); ("value", json_of_value v) ]
  | Op.Move (src, dst) ->
    Json.Obj [ ("op", Json.Str "move"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Op.Write (r, v) ->
    Json.Obj [ ("op", Json.Str "write"); ("reg", Json.Int r); ("value", json_of_value v) ]
  | Op.Fence -> Json.Obj [ ("op", Json.Str "fence") ]

let invocation_of_json j =
  let ( let* ) = Result.bind in
  let int_field k =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "invocation: missing int field %S" k)
  in
  let value_field k =
    match Json.member k j with
    | Some v -> value_of_json v
    | None -> Error (Printf.sprintf "invocation: missing field %S" k)
  in
  match Option.bind (Json.member "op" j) Json.to_str_opt with
  | Some "ll" ->
    let* r = int_field "reg" in
    Ok (Op.Ll r)
  | Some "sc" ->
    let* r = int_field "reg" in
    let* v = value_field "value" in
    Ok (Op.Sc (r, v))
  | Some "validate" ->
    let* r = int_field "reg" in
    Ok (Op.Validate r)
  | Some "swap" ->
    let* r = int_field "reg" in
    let* v = value_field "value" in
    Ok (Op.Swap (r, v))
  | Some "move" ->
    let* src = int_field "src" in
    let* dst = int_field "dst" in
    Ok (Op.Move (src, dst))
  | Some "write" ->
    let* r = int_field "reg" in
    let* v = value_field "value" in
    Ok (Op.Write (r, v))
  | Some "fence" -> Ok Op.Fence
  | Some other -> Error (Printf.sprintf "invocation: unknown op %S" other)
  | None -> Error "invocation: missing op tag"

let json_of_response : Op.response -> Json.t = function
  | Op.Value v -> Json.Obj [ ("value", json_of_value v) ]
  | Op.Flagged (b, v) -> Json.Obj [ ("flag", Json.Bool b); ("value", json_of_value v) ]
  | Op.Ack -> Json.Str "ack"

let response_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Str "ack" -> Ok Op.Ack
  | Json.Obj _ -> (
    let* v =
      match Json.member "value" j with
      | Some v -> value_of_json v
      | None -> Error "response: missing value"
    in
    match Option.bind (Json.member "flag" j) Json.to_bool_opt with
    | Some b -> Ok (Op.Flagged (b, v))
    | None -> Ok (Op.Value v))
  | _ -> Error "response: bad shape"

let outcome_string = function
  | All_terminated -> "all-terminated"
  | Out_of_fuel -> "out-of-fuel"
  | Stalled -> "stalled"

let outcome_of_string = function
  | "all-terminated" -> Ok All_terminated
  | "out-of-fuel" -> Ok Out_of_fuel
  | "stalled" -> Ok Stalled
  | s -> Error (Printf.sprintf "unknown outcome %S" s)

let ints l = Json.Arr (List.map (fun i -> Json.Int i) l)

let pairs l =
  Json.Arr (List.map (fun (a, b) -> Json.Arr [ Json.Int a; Json.Int b ]) l)

let to_json { at; event } =
  let fields =
    match event with
    | Shared_access { pid; invocation; response; spurious } ->
      [ ("pid", Json.Int pid);
        ("invocation", json_of_invocation invocation);
        ("response", json_of_response response) ]
      @ if spurious then [ ("spurious", Json.Bool true) ] else []
    | Coin_toss { pid; idx; outcome } ->
      [ ("pid", Json.Int pid); ("idx", Json.Int idx); ("outcome", Json.Int outcome) ]
    | Sched { step; chosen; runnable } ->
      [ ("step", Json.Int step); ("chosen", Json.Int chosen); ("runnable", ints runnable) ]
    | Round { index } -> [ ("index", Json.Int index) ]
    | Crash { pid; step } -> [ ("pid", Json.Int pid); ("step", Json.Int step) ]
    | Recovery { pid; step } -> [ ("pid", Json.Int pid); ("step", Json.Int step) ]
    | Op_invoked { pid; seq; op } ->
      [ ("pid", Json.Int pid); ("seq", Json.Int seq); ("opv", json_of_value op) ]
    | Op_completed { pid; seq; op; response; cost } ->
      [ ("pid", Json.Int pid); ("seq", Json.Int seq); ("opv", json_of_value op);
        ("response", json_of_value response); ("cost", Json.Int cost) ]
    | Op_failed { pid; seq; op; reason; cost } ->
      [ ("pid", Json.Int pid); ("seq", Json.Int seq); ("opv", json_of_value op);
        ("reason", Json.Str reason); ("cost", Json.Int cost) ]
    | Run_end { outcome; steps; ops; unfinished } ->
      [ ("outcome", Json.Str (outcome_string outcome)); ("steps", Json.Int steps);
        ("ops", pairs ops); ("unfinished", ints unfinished) ]
    | Service { op; detail } -> [ ("op", Json.Str op); ("detail", Json.Str detail) ]
  in
  Json.Obj (("at", Json.Int at) :: ("kind", Json.Str (kind event)) :: fields)

let of_json j =
  let ( let* ) = Result.bind in
  let int_field k =
    match Option.bind (Json.member k j) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "event: missing int field %S" k)
  in
  let str_field k =
    match Option.bind (Json.member k j) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "event: missing string field %S" k)
  in
  let value_field k =
    match Json.member k j with
    | Some v -> value_of_json v
    | None -> Error (Printf.sprintf "event: missing field %S" k)
  in
  let ints_field k =
    match Option.bind (Json.member k j) Json.to_list_opt with
    | None -> Error (Printf.sprintf "event: missing list field %S" k)
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Json.to_int_opt item with
          | Some i -> Ok (i :: acc)
          | None -> Error (Printf.sprintf "event: non-int in %S" k))
        (Ok []) items
      |> Result.map List.rev
  in
  let pairs_field k =
    match Option.bind (Json.member k j) Json.to_list_opt with
    | None -> Error (Printf.sprintf "event: missing list field %S" k)
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Json.Arr [ Json.Int a; Json.Int b ] -> Ok ((a, b) :: acc)
          | _ -> Error (Printf.sprintf "event: non-pair in %S" k))
        (Ok []) items
      |> Result.map List.rev
  in
  let* at = int_field "at" in
  let* kind = str_field "kind" in
  let* event =
    match kind with
    | "access" ->
      let* pid = int_field "pid" in
      let* invocation =
        match Json.member "invocation" j with
        | Some inv -> invocation_of_json inv
        | None -> Error "event: missing invocation"
      in
      let* response =
        match Json.member "response" j with
        | Some r -> response_of_json r
        | None -> Error "event: missing response"
      in
      let spurious =
        Option.value ~default:false (Option.bind (Json.member "spurious" j) Json.to_bool_opt)
      in
      Ok (Shared_access { pid; invocation; response; spurious })
    | "toss" ->
      let* pid = int_field "pid" in
      let* idx = int_field "idx" in
      let* outcome = int_field "outcome" in
      Ok (Coin_toss { pid; idx; outcome })
    | "sched" ->
      let* step = int_field "step" in
      let* chosen = int_field "chosen" in
      let* runnable = ints_field "runnable" in
      Ok (Sched { step; chosen; runnable })
    | "round" ->
      let* index = int_field "index" in
      Ok (Round { index })
    | "crash" ->
      let* pid = int_field "pid" in
      let* step = int_field "step" in
      Ok (Crash { pid; step })
    | "recovery" ->
      let* pid = int_field "pid" in
      let* step = int_field "step" in
      Ok (Recovery { pid; step })
    | "invoke" ->
      let* pid = int_field "pid" in
      let* seq = int_field "seq" in
      let* op = value_field "opv" in
      Ok (Op_invoked { pid; seq; op })
    | "complete" ->
      let* pid = int_field "pid" in
      let* seq = int_field "seq" in
      let* op = value_field "opv" in
      let* response = value_field "response" in
      let* cost = int_field "cost" in
      Ok (Op_completed { pid; seq; op; response; cost })
    | "give-up" ->
      let* pid = int_field "pid" in
      let* seq = int_field "seq" in
      let* op = value_field "opv" in
      let* reason = str_field "reason" in
      let* cost = int_field "cost" in
      Ok (Op_failed { pid; seq; op; reason; cost })
    | "end" ->
      let* outcome = Result.bind (str_field "outcome") outcome_of_string in
      let* steps = int_field "steps" in
      let* ops = pairs_field "ops" in
      let* unfinished = ints_field "unfinished" in
      Ok (Run_end { outcome; steps; ops; unfinished })
    | "service" ->
      let* op = str_field "op" in
      let* detail = str_field "detail" in
      Ok (Service { op; detail })
    | other -> Error (Printf.sprintf "event: unknown kind %S" other)
  in
  Ok { at; event }

(* ---- printing ---- *)

let pp_pids ppf pids =
  Format.fprintf ppf "{%s}" (String.concat ", " (List.map (Printf.sprintf "p%d") pids))

let pp ppf event =
  let tag = kind event in
  match event with
  | Shared_access { pid; invocation; response; spurious } ->
    Format.fprintf ppf "%-8s p%d %a -> %a%s" tag pid Op.pp_invocation invocation
      Op.pp_response response
      (if spurious then " (spurious)" else "")
  | Coin_toss { pid; idx; outcome } ->
    Format.fprintf ppf "%-8s p%d toss #%d -> %d" tag pid idx outcome
  | Sched { step; chosen; runnable } ->
    Format.fprintf ppf "%-8s step %d: p%d of %a" tag step chosen pp_pids runnable
  | Round { index } -> Format.fprintf ppf "%-8s -- round %d --" tag index
  | Crash { pid; step } -> Format.fprintf ppf "%-8s p%d at step %d" tag pid step
  | Recovery { pid; step } -> Format.fprintf ppf "%-8s p%d at step %d" tag pid step
  | Op_invoked { pid; seq; op } ->
    Format.fprintf ppf "%-8s p%d op #%d %a" tag pid seq Value.pp op
  | Op_completed { pid; seq; op; response; cost } ->
    Format.fprintf ppf "%-8s p%d op #%d %a -> %a (cost %d)" tag pid seq Value.pp op
      Value.pp response cost
  | Op_failed { pid; seq; op; reason; cost } ->
    Format.fprintf ppf "%-8s p%d op #%d %a: %s (cost %d)" tag pid seq Value.pp op reason
      cost
  | Run_end { outcome; steps; ops; unfinished } ->
    Format.fprintf ppf "%-8s %s after %d steps; ops:" tag (outcome_string outcome) steps;
    List.iter (fun (pid, k) -> Format.fprintf ppf " p%d=%d" pid k) ops;
    if unfinished <> [] then Format.fprintf ppf "; unfinished: %a" pp_pids unfinished
  | Service { op; detail } -> Format.fprintf ppf "%-8s %s: %s" tag op detail

let pp_stamped ppf { at; event } = Format.fprintf ppf "[%6d] %a" at pp event
