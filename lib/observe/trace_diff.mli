(** Structural diff of two traces — the debugging story for "why did this
    schedule differ from that one".

    Traces of deterministic runs (same algorithm, same n, same seed, same
    fault plan) are event-for-event identical, stamps included, so the diff
    of two such runs is empty; the first divergence between two {e
    different} runs pinpoints the step where a schedule, coin toss or
    injected fault changed the execution.  The comparison is positional:
    event [i] of the left trace against event [i] of the right, with
    leftover suffixes reported per side. *)

type side = Left | Right

type entry =
  | Mismatch of { index : int; left : Event.stamped; right : Event.stamped }
      (** The traces disagree at position [index]. *)
  | Only of { side : side; index : int; event : Event.stamped }
      (** One trace is longer; [event] is position [index] of that side. *)

val compute : ?kinds:string list -> Event.stamped list -> Event.stamped list -> entry list
(** Diff entries in position order; [[]] iff the traces agree.  [kinds]
    restricts the comparison to events of the given {!Event.kinds} (both
    traces are filtered before comparing).

    One boundary case is deliberately forgiven: when the {e only} entry is
    a single trailing [Run_end] surplus on either side — every compared
    position agreed and one recorder simply detached before the run-end
    marker was emitted — the diff is [[]].  Any disagreement before the
    boundary, or a surplus of more than the run-end marker, still
    reports. *)

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> entry list -> unit
(** One line per entry; prints nothing for an empty diff. *)
