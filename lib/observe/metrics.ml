type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

type hist_state = {
  bounds : float array; (* strictly increasing upper bounds; +inf is implicit *)
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of int ref | Gauge of float ref | Histogram of hist_state

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 32
let default : t = create ()

(* Domain-local, so pool workers (Lb_exec.Pool) each publish into their own
   registry and the sequential single-domain behaviour is unchanged. *)
let ambient = Domain.DLS.new_key (fun () -> default)
let current () = Domain.DLS.get ambient
let set_current t = Domain.DLS.set ambient t

let with_registry t f =
  let previous = Domain.DLS.get ambient in
  Domain.DLS.set ambient t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient previous) f

let reset t = Hashtbl.reset t

let kind_error name ~wanted =
  invalid_arg (Printf.sprintf "Metrics: %S is not a %s" name wanted)

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.add t name (Counter (ref by))
  | Some (Counter r) -> r := !r + by
  | Some (Gauge _ | Histogram _) -> kind_error name ~wanted:"counter"

let counter_value t name =
  match Hashtbl.find_opt t name with
  | None -> 0
  | Some (Counter r) -> !r
  | Some (Gauge _ | Histogram _) -> kind_error name ~wanted:"counter"

let set_gauge t name v =
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.add t name (Gauge (ref v))
  | Some (Gauge r) -> r := v
  | Some (Counter _ | Histogram _) -> kind_error name ~wanted:"gauge"

let gauge_value t name =
  match Hashtbl.find_opt t name with
  | None -> None
  | Some (Gauge r) -> Some !r
  | Some (Counter _ | Histogram _) -> kind_error name ~wanted:"gauge"

(* Powers of two up to 2^16: sized for shared-access counts. *)
let default_bounds = Array.init 17 (fun i -> float_of_int (1 lsl i))

let fresh_hist bounds =
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
  }

let declare_histogram t name ~bounds =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  if bounds = [] || not (increasing bounds) then
    invalid_arg "Metrics.declare_histogram: bounds must be non-empty and strictly increasing";
  match Hashtbl.find_opt t name with
  | None -> Hashtbl.add t name (Histogram (fresh_hist (Array.of_list bounds)))
  | Some (Histogram _) -> ()
  | Some (Counter _ | Gauge _) -> kind_error name ~wanted:"histogram"

let hist_of t name =
  match Hashtbl.find_opt t name with
  | None ->
    let h = fresh_hist default_bounds in
    Hashtbl.add t name (Histogram h);
    h
  | Some (Histogram h) -> h
  | Some (Counter _ | Gauge _) -> kind_error name ~wanted:"histogram"

let observe t name v =
  let h = hist_of t name in
  let rec bucket i =
    if i >= Array.length h.bounds then i else if v <= h.bounds.(i) then i else bucket (i + 1)
  in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let observe_int t name v = observe t name (float_of_int v)

let histogram t name =
  match Hashtbl.find_opt t name with
  | None -> None
  | Some (Histogram h) ->
    let buckets =
      List.init (Array.length h.counts) (fun i ->
          let bound =
            if i < Array.length h.bounds then h.bounds.(i) else Float.infinity
          in
          (bound, h.counts.(i)))
    in
    Some
      { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max; buckets }
  | Some (Counter _ | Gauge _) -> kind_error name ~wanted:"histogram"

let merge ~into src =
  (* Names in sorted order so a merge's effect (and any kind-mismatch error)
     is deterministic regardless of hashtable iteration order. *)
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) src [] |> List.sort String.compare in
  List.iter
    (fun name ->
      match Hashtbl.find src name with
      | Counter r -> incr ~by:!r into name
      | Gauge r -> set_gauge into name !r
      | Histogram h ->
        (match Hashtbl.find_opt into name with
        | None ->
          declare_histogram into name ~bounds:(Array.to_list h.bounds)
        | Some (Histogram _) -> ()
        | Some (Counter _ | Gauge _) -> kind_error name ~wanted:"histogram");
        let dst = hist_of into name in
        if dst.bounds <> h.bounds then
          invalid_arg
            (Printf.sprintf "Metrics.merge: histogram %S bucket bounds differ" name);
        Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
        dst.h_count <- dst.h_count + h.h_count;
        dst.h_sum <- dst.h_sum +. h.h_sum;
        if h.h_min < dst.h_min then dst.h_min <- h.h_min;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max)
    names

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare

let bound_json b = if b = Float.infinity then Json.Str "inf" else Json.Float b

let to_json t =
  let collect f =
    names t
    |> List.filter_map (fun name ->
           Option.map (fun j -> (name, j)) (f name (Hashtbl.find t name)))
  in
  let counters =
    collect (fun _ -> function Counter r -> Some (Json.Int !r) | _ -> None)
  in
  let gauges = collect (fun _ -> function Gauge r -> Some (Json.Float !r) | _ -> None) in
  let histograms =
    collect (fun name -> function
      | Histogram _ ->
        let h = Option.get (histogram t name) in
        Some
          (Json.Obj
             [
               ("count", Json.Int h.count);
               ("sum", Json.Float h.sum);
               ("min", if h.count = 0 then Json.Null else Json.Float h.min);
               ("max", if h.count = 0 then Json.Null else Json.Float h.max);
               ( "buckets",
                 Json.Arr
                   (List.map
                      (fun (le, n) -> Json.Obj [ ("le", bound_json le); ("n", Json.Int n) ])
                      h.buckets) );
             ])
      | _ -> None)
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms) ]

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t name with
      | Counter r -> Format.fprintf ppf "%-32s counter %d@." name !r
      | Gauge r -> Format.fprintf ppf "%-32s gauge   %g@." name !r
      | Histogram _ ->
        let h = Option.get (histogram t name) in
        Format.fprintf ppf "%-32s hist    count=%d sum=%g%s@." name h.count h.sum
          (if h.count = 0 then "" else Printf.sprintf " min=%g max=%g" h.min h.max))
    (names t)
