let path ?(dir = ".") ~suite () = Filename.concat dir ("BENCH_" ^ suite ^ ".json")

let read ?dir ~suite () =
  let file = path ?dir ~suite () in
  if not (Sys.file_exists file) then Ok []
  else
    let ic = open_in file in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse contents with
    | Ok (Json.Arr snapshots) -> Ok snapshots
    | Ok _ -> Error (Printf.sprintf "%s: expected a JSON array of snapshots" file)
    | Error e -> Error e

let append ?dir ~suite ?(meta = []) data =
  let file = path ?dir ~suite () in
  (* A corrupt trajectory starts over instead of failing the bench run. *)
  let existing = match read ?dir ~suite () with Ok l -> l | Error _ -> [] in
  let snapshot =
    Json.Obj
      (("timestamp", Json.Float (Unix.gettimeofday ()))
      :: ("suite", Json.Str suite)
      :: meta
      @ [ ("data", data) ])
  in
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (Json.Arr (existing @ [ snapshot ])));
      output_char oc '\n');
  Sys.rename tmp file;
  file
