(** JSONL persistence for traces.

    A trace file is one compact JSON object per line ({!Event.to_json} of
    each stamped event), in stamp order.  Blank lines are ignored on load;
    anything else that fails to parse is a hard error carrying the line
    number, not a skip — a trace that silently loses events cannot be
    trusted as a diffing artifact. *)

val save : string -> Event.stamped list -> unit
(** Write the events to the path (truncating), one JSONL line each. *)

val load : string -> (Event.stamped list, string) result
(** Read a trace back; the inverse of {!save}. *)
