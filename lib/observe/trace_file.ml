let save path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (Event.to_json e));
          output_char oc '\n')
        events)

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go line_no acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (line_no + 1) acc
          | line -> (
            match Result.bind (Json.parse line) Event.of_json with
            | Ok e -> go (line_no + 1) (e :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path line_no e))
        in
        go 1 [])
