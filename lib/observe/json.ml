type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | (Null | Bool _ | Int _ | Float _ | Str _ | Arr _ | Obj _), _ -> false

(* ---- writer ---- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent d = Buffer.add_char buf '\n'; Buffer.add_string buf (String.make (2 * d) ' ') in
  let rec go d = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_string f)
    | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then indent (d + 1);
          go (d + 1) item)
        items;
      if pretty then indent d;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then indent (d + 1);
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (d + 1) item)
        fields;
      if pretty then indent d;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string ~pretty:true v)

(* ---- parser ---- *)

exception Fail of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then (pos := !pos + k; value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let cp =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           add_utf8 buf cp
         | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') -> is_float := true; true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) -> Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ---- accessors ---- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None
