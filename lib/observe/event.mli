(** The structured trace-event vocabulary.

    Every observable thing a run does — a shared-memory access, a coin toss,
    a scheduling decision, an adversary round boundary, a crash or recovery,
    an object-operation lifecycle transition, the run's final outcome — is
    one typed event.  Instrumented modules ({!Lb_memory.Memory} via its tap,
    [Lb_runtime.Process]/[System], the [Lb_adversary] engine,
    [Lb_universal.Harness], [Lb_faults.Fault_engine]) construct these and
    hand them to the ambient {!Tracer}; the tracer stamps each with a
    per-run sequence number ({!stamped]).

    Events are pure data over {!Lb_memory} types, so they serialise: every
    event round-trips through {!to_json}/{!of_json} bit-exactly, which is
    what makes traces diffable artifacts (see {!Trace_diff} and
    docs/OBSERVABILITY.md for the wire schema). *)

open Lb_memory

(** Typed version of a generic executor's terminal outcome (mirrors
    [Lb_runtime.System.outcome], which cannot be referenced from here —
    the runtime depends on this library, not vice versa). *)
type run_outcome = All_terminated | Out_of_fuel | Stalled

type t =
  | Shared_access of {
      pid : int;
      invocation : Op.invocation;
      response : Op.response;
      spurious : bool;
          (** True when a fault interposer made this SC fail spuriously. *)
    }  (** One {!Lb_memory.Memory.apply}, recorded by the memory tap. *)
  | Coin_toss of { pid : int; idx : int; outcome : int }
      (** The [idx]-th toss of [pid] (0-indexed), as drawn from the run's
          toss assignment. *)
  | Sched of { step : int; chosen : int; runnable : int list }
      (** A scheduling decision: at global step [step], [chosen] was picked
          out of [runnable]. *)
  | Round of { index : int }
      (** An adversary round boundary (1-indexed), emitted by the Figure-2
          engine at the start of each round. *)
  | Crash of { pid : int; step : int }
      (** The fault engine first observed [pid] as crashed at [step]. *)
  | Recovery of { pid : int; step : int }
      (** [pid] recovered (its operation is re-invoked / it resumes). *)
  | Op_invoked of { pid : int; seq : int; op : Value.t }
      (** The harness handed object operation [(pid, seq)] to a process. *)
  | Op_completed of {
      pid : int;
      seq : int;
      op : Value.t;
      response : Value.t;
      cost : int;  (** shared-memory operations, including restarted work. *)
    }
  | Op_failed of { pid : int; seq : int; op : Value.t; reason : string; cost : int }
      (** An operation gave up ([Failure] mid-run) — same payload the
          certification verdict tables print. *)
  | Run_end of {
      outcome : run_outcome;
      steps : int;
      ops : (int * int) list;  (** per-pid shared-operation counts. *)
      unfinished : int list;
    }  (** [Lb_runtime.System.run_diagnosed]'s diagnostics, as an event. *)
  | Service of { op : string; detail : string }
      (** A service-layer lifecycle event ([op] one of ["recovery"],
          ["overload"], ["chaos"], ["retry"], …): recorded by the server
          supervisor, the admission controller and the chaos engine so
          that a [serve --trace] stream shows crashes, restarts and
          injected adversity alongside the computations they interrupt. *)

type stamped = { at : int; event : t }
(** [at] is the tracer's per-run sequence number: 0 for the first recorded
    event, strictly increasing, gap-free (unlike wall-clock timestamps it
    is deterministic, so traces of equal runs are byte-equal). *)

val kind : t -> string
(** Short tag used for filtering and as the JSON ["kind"] field: one of
    {!kinds}. *)

val kinds : string list
(** All valid kind tags: ["access"; "toss"; "sched"; "round"; "crash";
    "recovery"; "invoke"; "complete"; "give-up"; "end"; "service"]. *)

val equal : t -> t -> bool
val equal_stamped : stamped -> stamped -> bool

val to_json : stamped -> Json.t
val of_json : Json.t -> (stamped, string) result
(** Inverse of {!to_json}: [of_json (to_json e) = Ok e] for every event. *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering, e.g.
    [access   p3 LL(R0) -> 5] or [crash    p1 at step 14]. *)

val pp_stamped : Format.formatter -> stamped -> unit
(** [pp] prefixed with the sequence number: [[   12] access p3 ...]. *)
