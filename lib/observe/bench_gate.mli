(** The benchmark regression gate's comparison logic, as pure data.

    [bench/check.exe] compares the latest [BENCH_simulator.json] snapshot
    against the committed baseline.  The policy, encoded here so the test
    suite can pin it:

    - a benchmark present in both that slowed beyond the tolerance is a
      {e regression} — the only thing that fails the gate;
    - a baseline benchmark {e missing} from the current run is a warning
      (benches get renamed, subsets get run);
    - a current benchmark with {e no baseline entry yet} is a warning —
      newly added benchmarks (the service cold/warm pair, say) must never
      fail the gate before a baseline for them is committed. *)

type comparison = {
  name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;  (** current / baseline; 1.0 when the baseline is 0. *)
  regressed : bool;
}

type verdict = {
  compared : comparison list;  (** in baseline order. *)
  missing : string list;  (** in the baseline, absent from the current run. *)
  added : string list;  (** in the current run, no baseline yet. *)
}

val compare : tolerance:float -> baseline:(string * float) list -> current:(string * float) list -> verdict
(** [tolerance] is fractional: [0.30] flags ratios above [1.30]. *)

val ok : verdict -> bool
(** No regressions — missing and added entries never fail the gate. *)

val benchmarks_of_payload : Json.t -> (string * float) list
(** Extract [(name, ns_per_run)] pairs from a
    [{"benchmarks": [{"name", "ns_per_run"}, ...]}] payload (the
    [BENCH_simulator.json] data schema); ill-shaped entries are skipped. *)

val pp : Format.formatter -> verdict -> unit
(** The gate's report: one line per comparison, then warnings for missing
    and newly added benchmarks. *)
