open Lb_memory

type sink =
  | Ring of { slots : Event.stamped option array; capacity : int }
  | Channel of out_channel

type t = { mutable seq : int; sink : sink }

let ring ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Tracer.ring: capacity must be positive";
  { seq = 0; sink = Ring { slots = Array.make capacity None; capacity } }

let on_channel oc = { seq = 0; sink = Channel oc }

let emit t event =
  let stamped = { Event.at = t.seq; event } in
  t.seq <- t.seq + 1;
  match t.sink with
  | Ring { slots; capacity } -> slots.(stamped.Event.at mod capacity) <- Some stamped
  | Channel oc ->
    output_string oc (Json.to_string (Event.to_json stamped));
    output_char oc '\n'

let events t =
  match t.sink with
  | Channel _ -> []
  | Ring { slots; capacity } ->
    let first = max 0 (t.seq - capacity) in
    List.init (t.seq - first) (fun i -> slots.((first + i) mod capacity))
    |> List.filter_map Fun.id

let emitted t = t.seq

let dropped t =
  match t.sink with Channel _ -> 0 | Ring { capacity; _ } -> max 0 (t.seq - capacity)

let flush t = match t.sink with Channel oc -> Stdlib.flush oc | Ring _ -> ()

(* ---- ambient tracer ---- *)

(* Domain-local: pool workers trace into their own sinks (merged in task
   order at join), and the one-ref-read fast path stays uncontended. *)
let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install o = Domain.DLS.set ambient o
let installed () = Domain.DLS.get ambient
let active () = Option.is_some (Domain.DLS.get ambient)
let record event =
  match Domain.DLS.get ambient with None -> () | Some t -> emit t event

let with_tracer t f =
  let previous = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient previous) f

let absorb events = List.iter (fun (s : Event.stamped) -> record s.Event.event) events

let attach_memory memory =
  if active () then
    Memory.set_tap memory
      (Some
         (fun ~pid invocation response ~spurious ->
           record (Event.Shared_access { pid; invocation; response; spurious })))
