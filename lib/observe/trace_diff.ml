type side = Left | Right

type entry =
  | Mismatch of { index : int; left : Event.stamped; right : Event.stamped }
  | Only of { side : side; index : int; event : Event.stamped }

let compute ?kinds left right =
  let keep =
    match kinds with
    | None -> fun _ -> true
    | Some ks -> fun (e : Event.stamped) -> List.mem (Event.kind e.Event.event) ks
  in
  let left = List.filter keep left and right = List.filter keep right in
  let rec go index l r acc =
    match (l, r) with
    | [], [] -> List.rev acc
    | a :: l, b :: r ->
      let acc =
        if Event.equal_stamped a b then acc else Mismatch { index; left = a; right = b } :: acc
      in
      go (index + 1) l r acc
    | a :: l, [] -> go (index + 1) l [] (Only { side = Left; index; event = a } :: acc)
    | [], b :: r -> go (index + 1) [] r (Only { side = Right; index; event = b } :: acc)
  in
  match go 0 left right [] with
  (* One recorder detached just before the run-end marker, the other just
     after: the executions agree on every step, so a lone trailing Run_end
     surplus is a capture-boundary artefact, not a divergence. *)
  | [ Only { event; _ } ] when Event.kind event.Event.event = "end" -> []
  | entries -> entries

let side_string = function Left -> "left only " | Right -> "right only"

let pp_entry ppf = function
  | Mismatch { index; left; right } ->
    Format.fprintf ppf "@[<v 2>#%d differs:@ - %a@ + %a@]" index Event.pp_stamped left
      Event.pp_stamped right
  | Only { side; index; event } ->
    Format.fprintf ppf "#%d %s: %a" index (side_string side) Event.pp_stamped event

let pp ppf entries =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) entries
