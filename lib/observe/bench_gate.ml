type comparison = {
  name : string;
  baseline_ns : float;
  current_ns : float;
  ratio : float;
  regressed : bool;
}

type verdict = {
  compared : comparison list;
  missing : string list;
  added : string list;
}

let compare ~tolerance ~baseline ~current =
  let compared, missing =
    List.fold_left
      (fun (compared, missing) (name, base) ->
        match List.assoc_opt name current with
        | None -> (compared, name :: missing)
        | Some ns ->
          let ratio = if base > 0.0 then ns /. base else 1.0 in
          (* The gate compares multiplicatively, not via [ratio]: dividing
             and re-comparing rounds twice, so a run at exactly
             base * (1 + tolerance) could flip to REGRESSION on floating
             noise.  [ratio] is display-only. *)
          let c =
            {
              name;
              baseline_ns = base;
              current_ns = ns;
              ratio;
              regressed = ns > base *. (1.0 +. tolerance);
            }
          in
          (c :: compared, missing))
      ([], []) baseline
  in
  let added =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name baseline then None else Some name)
      current
  in
  { compared = List.rev compared; missing = List.rev missing; added }

let ok verdict = List.for_all (fun c -> not c.regressed) verdict.compared

let benchmarks_of_payload payload =
  match Json.member "benchmarks" payload with
  | Some (Json.Arr entries) ->
    List.filter_map
      (fun entry ->
        match (Json.member "name" entry, Json.member "ns_per_run" entry) with
        | Some name, Some ns -> (
          match (Json.to_str_opt name, Json.to_float_opt ns) with
          | Some name, Some ns -> Some (name, ns)
          | _ -> None)
        | _ -> None)
      entries
  | _ -> []

let pp ppf verdict =
  List.iter
    (fun c ->
      Format.fprintf ppf "%-45s %12.0f -> %12.0f  (%+6.1f%%)%s@." c.name c.baseline_ns
        c.current_ns
        ((c.ratio -. 1.0) *. 100.0)
        (if c.regressed then "  REGRESSION" else ""))
    verdict.compared;
  List.iter
    (fun name -> Format.fprintf ppf "%-45s missing from the current run (warning)@." name)
    verdict.missing;
  List.iter
    (fun name ->
      Format.fprintf ppf "%-45s new benchmark, no baseline yet (warning)@." name)
    verdict.added
