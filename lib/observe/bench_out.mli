(** Machine-readable benchmark artifacts: the [BENCH_*.json] trajectory.

    Each bench run {e appends} one timestamped snapshot to
    [BENCH_<suite>.json], so the file accumulates the performance
    trajectory across runs/commits — the diffable evidence every future
    perf PR measures itself against.  The file is a JSON array of snapshot
    objects:

    {v
    [ { "timestamp": 1754450000.0,   // unix epoch, seconds
        "suite": "experiments",
        ...meta fields...,
        "data": <payload> },
      ... ]
    v}

    Writes are atomic (temp file + rename).  A missing or unparseable file
    starts a fresh trajectory rather than failing the bench run — the
    artifact must never be the reason a benchmark doesn't run.  The
    per-suite payload schemas are documented in docs/OBSERVABILITY.md. *)

val path : ?dir:string -> suite:string -> unit -> string
(** [dir] defaults to the current directory; the file is
    [dir/BENCH_<suite>.json]. *)

val append : ?dir:string -> suite:string -> ?meta:(string * Json.t) list -> Json.t -> string
(** Append one snapshot with the current wall-clock timestamp and return
    the path written.  [meta] fields are spliced into the snapshot object
    between ["suite"] and ["data"]. *)

val read : ?dir:string -> suite:string -> unit -> (Json.t list, string) result
(** The snapshots recorded so far, oldest first; [Ok []] when the file does
    not exist. *)
