(** A minimal JSON tree, writer and parser.

    The observability layer needs machine-readable artifacts (JSONL traces,
    [BENCH_*.json] snapshots, metrics dumps) without adding a dependency the
    container does not bake in, so this is a small self-contained codec: the
    seven JSON shapes, a compact writer (one line per value — the JSONL
    invariant), an indented writer for artifact files, and a strict
    recursive-descent parser that round-trips everything the writer emits.

    Numbers: integers that fit an OCaml [int] parse as {!Int}; everything
    else parses as {!Float}.  Strings are UTF-8; the writer escapes control
    characters, the parser decodes [\uXXXX] escapes (no surrogate pairs —
    the writer never produces them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality.  Object fields compare in order — two objects with
    the same fields in different orders are {e not} equal, which is the
    right notion for trace round-trip checks (the writer emits fields in a
    fixed order). *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default: no newlines, so a value is exactly one JSONL line.
    [~pretty:true] indents — for [BENCH_*.json] files meant to be read (and
    diffed) by humans too. *)

val pp : Format.formatter -> t -> unit
(** Pretty (indented) rendering. *)

val parse : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed); the error
    string carries a character offset. *)

(** {1 Accessors}

    Total lookups for digging into parsed artifacts; [None] on shape
    mismatch. *)

val member : string -> t -> t option
(** Field of an {!Obj}, [None] for absent fields and non-objects. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts {!Int} too (widened). *)

val to_bool_opt : t -> bool option
val to_str_opt : t -> string option
val to_list_opt : t -> t list option
