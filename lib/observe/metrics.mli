(** The metrics registry: named counters, gauges and histograms that
    experiments, the harness and the certification driver publish into.

    A registry is a flat name → metric map.  Names are dotted strings
    ("harness.op_cost", "certify.restarts"); a name's metric kind is fixed
    by its first use and a kind mismatch raises [Invalid_argument] — a
    counter silently read as a gauge is a reporting bug, not a recoverable
    condition.

    There is always a {e current} registry ({!current}, initially
    {!default}) that instrumented code publishes into; tests and drivers
    swap in a fresh one with {!set_current} or {!with_registry} to get an
    isolated window.  Snapshots serialise with {!to_json} — the
    ["metrics"] block of the [BENCH_*.json] schema (docs/OBSERVABILITY.md). *)

type t

val create : unit -> t
val default : t
(** The process-wide registry, current at startup. *)

val current : unit -> t
val set_current : t -> unit

val with_registry : t -> (unit -> 'a) -> 'a
(** Make [t] current for the extent of the callback (exception-safe).

    The ambient registry is {e domain-local}: a freshly spawned domain
    starts at {!default}, and [set_current]/[with_registry] only affect the
    calling domain.  {!Lb_exec.Pool} exploits this to give each parallel
    task an isolated registry, merged deterministically at join. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters add, gauges take the source value
    (last-write-wins, so merging task registries in task order reproduces
    the sequential result), histograms add bucket counts and combine
    count/sum/min/max.  Raises [Invalid_argument] on a metric-kind mismatch
    or differing histogram bucket bounds. *)

val reset : t -> unit
(** Forget every metric. *)

(** {1 Counters} — monotonically increasing integers. *)

val incr : ?by:int -> t -> string -> unit
val counter_value : t -> string -> int
(** 0 for names never incremented. *)

(** {1 Gauges} — last-write-wins floats. *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option

(** {1 Histograms} — bucketed distributions with exact count/sum/min/max.

    Buckets are cumulative-style upper bounds (le); observations above the
    last bound land in an implicit +∞ bucket.  The default bounds are the
    powers of two up to 2{^16} — sized for shared-access counts, the
    quantity the paper is about. *)

type histogram = {
  count : int;
  sum : float;
  min : float;  (** +∞ when empty. *)
  max : float;  (** -∞ when empty. *)
  buckets : (float * int) list;  (** (upper bound, observations ≤ bound). *)
}

val declare_histogram : t -> string -> bounds:float list -> unit
(** Pre-declare bucket bounds (strictly increasing).  Observing an
    undeclared name creates the histogram with the default bounds. *)

val observe : t -> string -> float -> unit
val observe_int : t -> string -> int -> unit
val histogram : t -> string -> histogram option

(** {1 Snapshots} *)

val names : t -> string list
(** Sorted names of every registered metric. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, one metric per line, sorted by name. *)
