open Lb_memory
open Lb_runtime
open Program.Syntax

let blind ~n:_ =
  let program_of _pid =
    let* _v = Program.ll 0 in
    Program.return 1
  in
  (program_of, [ (0, Value.Int 0) ])

let fixed_ops ~k ~n:_ =
  let reg = 0 in
  let program_of _pid =
    let rec loop remaining =
      if remaining = 0 then Program.return 1
      else
        let* v = Program.ll reg in
        let* _ok = Program.sc_flag reg (Value.Int (Value.to_int v + 1)) in
        loop (remaining - 1)
    in
    loop (max 1 (k / 2))
  in
  (program_of, [ (reg, Value.Int 0) ])

let lucky ~threshold ~n =
  if threshold <= 0 then invalid_arg "Cheaters.lucky: threshold must be positive";
  let collect, inits = Direct_algorithms.naive_collect ~n in
  let program_of pid =
    let* outcome = Program.toss_bounded threshold in
    if outcome = 0 then
      let* _v = Program.ll 0 in
      Program.return 1
    else collect pid
  in
  (program_of, inits)

(* Fault-plan duals.  Each cheater truncates its own collect; the dual plan
   keeps the algorithm honest (naive collect) and moves the truncation into
   the environment — the adversary crash-stops processes at the same step
   budget the cheater would have stopped at.  The crucial asymmetry, and the
   point of the re-expression: a crashed honest process never *claims*
   wakeup, so the dual runs degrade gracefully where the cheaters violate
   condition (3).  Cheating is an algorithmic property, not an environmental
   one. *)

let blind_plan ~n =
  Lb_faults.Fault_plan.compose ~name:"cheater-blind"
    (List.init n (fun pid -> Lb_faults.Fault_plan.crash_stop ~pid ~after:1))

let fixed_ops_plan ~k ~n =
  let after = 2 * max 1 (k / 2) in
  Lb_faults.Fault_plan.compose ~name:(Printf.sprintf "cheater-fixed-ops-%d" k)
    (List.init n (fun pid -> Lb_faults.Fault_plan.crash_stop ~pid ~after))

let lucky_plan ~threshold ~seed ~n =
  if threshold <= 0 then invalid_arg "Cheaters.lucky_plan: threshold must be positive";
  Lb_faults.Fault_plan.compose ~name:(Printf.sprintf "cheater-lucky-%d" threshold)
    (List.filter_map
       (fun pid ->
         if Lb_runtime.Coin.hash ~seed ~pid ~idx:0 mod threshold = 0 then
           Some (Lb_faults.Fault_plan.crash_stop ~pid ~after:1)
         else None)
       (List.init n Fun.id))
