open Lb_memory
open Lb_runtime
open Program.Syntax

let blind ~n:_ =
  let program_of _pid =
    let* _v = Program.ll 0 in
    Program.return 1
  in
  (program_of, [ (0, Value.Int 0) ])

let fixed_ops ~k ~n:_ =
  let reg = 0 in
  let program_of _pid =
    let rec loop remaining =
      if remaining = 0 then Program.return 1
      else
        let* v = Program.ll reg in
        let* _ok = Program.sc_flag reg (Value.Int (Value.to_int v + 1)) in
        loop (remaining - 1)
    in
    loop (max 1 (k / 2))
  in
  (program_of, [ (reg, Value.Int 0) ])

let lucky ~threshold ~n =
  if threshold <= 0 then invalid_arg "Cheaters.lucky: threshold must be positive";
  let collect, inits = Direct_algorithms.naive_collect ~n in
  let program_of pid =
    let* outcome = Program.toss_bounded threshold in
    if outcome = 0 then
      let* _v = Program.ll 0 in
      Program.return 1
    else collect pid
  in
  (program_of, inits)
