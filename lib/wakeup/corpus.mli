(** The wakeup algorithm corpus driven by the experiments.

    Entries bundle a name, a program factory, and metadata (randomized?
    correct? known worst-case upper bound).  The correct corpus contains the
    direct algorithms, the randomized ones, and every Theorem 6.2 reduction
    compiled through each oblivious universal construction; the cheater
    corpus contains the failure-injection algorithms of {!Cheaters}. *)

open Lb_memory
open Lb_runtime

type entry = {
  name : string;
  make : n:int -> (int -> int Program.t) * (int * Value.t) list;
  randomized : bool;
  correct : bool;  (** a genuine wakeup solution? *)
  worst_case : (n:int -> int) option;  (** known worst-case shared ops per process. *)
}

val naive : entry
val post_collect : entry
(** Swap-phase coverage: single-writer bulletins + validate collect. *)

val move_collect : entry
(** Move-phase coverage: bulletins gathered through register-to-register
    moves — drives the secretive-schedule machinery with real information
    flow. *)

val tree_collect : entry
(** The non-oblivious O(log n) wakeup with n-bit registers (mask combining
    tree) — see {!Direct_algorithms.tree_collect}. *)

val two_counter : entry
val backoff_collect : entry

val reduction_entries : construction:Lb_universal.Iface.t -> entry list
(** One entry per Theorem 6.2 object type, compiled through the given
    construction; named ["<object> via <construction>"]. *)

val log_wakeup : entry
(** The tight upper bound: fetch&inc compiled through the O(log n) combining
    tree — a deterministic wakeup algorithm with worst case
    [8⌈log₂ n⌉ + 9] shared operations per process. *)

val correct_algorithms : unit -> entry list
val cheaters : n_hint:int -> entry list
(** Cheater entries; [n_hint] sizes the [fixed_ops] cheater to stay below
    [log₄ n]. *)

val find : string -> entry option
(** Look up a correct-corpus entry by name. *)
