(** Deliberately incorrect wakeup "solutions" — failure injection for the
    Theorem 6.1 machinery.

    Each claims to solve wakeup in o(log n) shared-memory operations.  The
    lower-bound analysis must {e catch} them: the winner's UP-set [S] after
    [r < log₄ n] operations has at most [4^r < n] processes, so the
    (S, A)-run is a concrete run in which the winner still returns 1 while
    the processes outside [S] never take a step — a violation of wakeup
    condition (3) that {!Lb_adversary.Lower_bound.analyze} reports as a
    {!Lb_adversary.Lower_bound.violation}. *)

open Lb_runtime

val blind : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Every process performs one LL on [R0] and returns 1 — "everyone is
    surely up by now". *)

val fixed_ops : k:int -> n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Every process LL/SC-increments a counter [k] times, then returns 1 —
    however large [k] is, for [4^k < n] the adversary finds the violating
    run. *)

val lucky : threshold:int -> n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Randomized cheater: tosses a coin; on outcome [0] (probability
    [1/threshold] under a uniform assignment) returns 1 after a single LL,
    otherwise runs the correct naive collect.  Caught on the toss
    assignments where some process gets lucky. *)

(** {1 Fault-plan duals}

    Each cheater truncates its own collect early; the dual plan keeps the
    algorithm honest (the naive collect) and moves the truncation into the
    environment, crash-stopping processes at the step budget the cheater
    would have stopped at.  The asymmetry this exposes is the point: a
    crashed honest process never {e claims} wakeup, so the dual runs degrade
    gracefully under {!Lb_faults.Certify.run_wakeup} where the cheaters
    produce condition-(3) violations.  Cheating is an algorithmic property,
    not an environmental one. *)

val blind_plan : n:int -> Lb_faults.Fault_plan.t
(** Crash-stop every process after its single shared-memory operation. *)

val fixed_ops_plan : k:int -> n:int -> Lb_faults.Fault_plan.t
(** Crash-stop every process after the [2 * max 1 (k / 2)] shared operations
    its {!fixed_ops} counterpart performs. *)

val lucky_plan : threshold:int -> seed:int -> n:int -> Lb_faults.Fault_plan.t
(** Crash-stop each "lucky" process (probability [1/threshold] under the
    seeded hash — the same coin geometry as {!lucky}) after one operation;
    the unlucky ones run the full collect. *)
