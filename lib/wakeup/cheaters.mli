(** Deliberately incorrect wakeup "solutions" — failure injection for the
    Theorem 6.1 machinery.

    Each claims to solve wakeup in o(log n) shared-memory operations.  The
    lower-bound analysis must {e catch} them: the winner's UP-set [S] after
    [r < log₄ n] operations has at most [4^r < n] processes, so the
    (S, A)-run is a concrete run in which the winner still returns 1 while
    the processes outside [S] never take a step — a violation of wakeup
    condition (3) that {!Lb_adversary.Lower_bound.analyze} reports as a
    {!Lb_adversary.Lower_bound.violation}. *)

open Lb_runtime

val blind : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Every process performs one LL on [R0] and returns 1 — "everyone is
    surely up by now". *)

val fixed_ops : k:int -> n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Every process LL/SC-increments a counter [k] times, then returns 1 —
    however large [k] is, for [4^k < n] the adversary finds the violating
    run. *)

val lucky : threshold:int -> n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Randomized cheater: tosses a coin; on outcome [0] (probability
    [1/threshold] under a uniform assignment) returns 1 after a single LL,
    otherwise runs the correct naive collect.  Caught on the toss
    assignments where some process gets lucky. *)
