open Lb_memory
open Lb_runtime
open Lb_universal
open Program.Syntax

type t = {
  name : string;
  uses : int;
  spec : n:int -> Lb_objects.Spec.t;
  decide : n:int -> pid:int -> apply:(Value.t -> Value.t Program.t) -> int Program.t;
}

let counter_bits = 62

(* Return-1 test on the first [n] bits of a vector: bit j must equal
   [expected j]. *)
let first_bits_match v ~n ~expected =
  let rec go j = j >= n || (Bitvec.get v j = expected j && go (j + 1)) in
  go 0

let fetch_inc =
  {
    name = "fetch&inc";
    uses = 1;
    spec = (fun ~n:_ -> Lb_objects.Counters.fetch_inc ~bits:counter_bits);
    decide =
      (fun ~n ~pid:_ ~apply ->
        let* response = apply Value.Unit in
        Program.return (if Value.to_int response = n - 1 then 1 else 0));
  }

let fetch_and =
  {
    name = "fetch&and";
    uses = 1;
    spec = (fun ~n -> Lb_objects.Bitwise.fetch_and ~bits:n);
    decide =
      (fun ~n ~pid ~apply ->
        let mask = Bitvec.set (Bitvec.ones n) pid false in
        let* response = apply (Value.Bits mask) in
        let won = first_bits_match (Value.to_bits response) ~n ~expected:(fun j -> j = pid) in
        Program.return (if won then 1 else 0));
  }

let fetch_or =
  {
    name = "fetch&or";
    uses = 1;
    spec = (fun ~n -> Lb_objects.Bitwise.fetch_or ~bits:n);
    decide =
      (fun ~n ~pid ~apply ->
        let mine = Bitvec.set (Bitvec.zero n) pid true in
        let* response = apply (Value.Bits mine) in
        let won = first_bits_match (Value.to_bits response) ~n ~expected:(fun j -> j <> pid) in
        Program.return (if won then 1 else 0));
  }

let fetch_complement =
  {
    name = "fetch&complement";
    uses = 1;
    spec = (fun ~n -> Lb_objects.Bitwise.fetch_complement ~bits:n);
    decide =
      (fun ~n ~pid ~apply ->
        let* response = apply (Value.Int pid) in
        let won = first_bits_match (Value.to_bits response) ~n ~expected:(fun j -> j <> pid) in
        Program.return (if won then 1 else 0));
  }

let fetch_multiply =
  {
    name = "fetch&multiply";
    uses = 1;
    spec = (fun ~n -> Lb_objects.Bitwise.fetch_multiply ~bits:n);
    decide =
      (fun ~n ~pid:_ ~apply ->
        let* response = apply (Value.Int 2) in
        let nth = Bitvec.shift_left (Bitvec.one n) (n - 1) in
        Program.return (if Bitvec.equal (Value.to_bits response) nth then 1 else 0));
  }

let queue =
  {
    name = "queue";
    uses = 1;
    spec = (fun ~n -> Lb_objects.Containers.queue_with_items n);
    decide =
      (fun ~n ~pid:_ ~apply ->
        let* response = apply Lb_objects.Containers.op_deq in
        Program.return (if Value.equal response (Value.Int n) then 1 else 0));
  }

let stack =
  {
    name = "stack";
    uses = 1;
    spec = (fun ~n -> Lb_objects.Containers.stack_with_items n);
    decide =
      (fun ~n ~pid:_ ~apply ->
        let* response = apply Lb_objects.Containers.op_pop in
        Program.return (if Value.equal response (Value.Int n) then 1 else 0));
  }

let read_inc =
  {
    name = "read+inc";
    uses = 2;
    spec = (fun ~n:_ -> Lb_objects.Counters.read_inc ~bits:counter_bits);
    decide =
      (fun ~n ~pid:_ ~apply ->
        let* _ack = apply Lb_objects.Counters.op_inc in
        let* value = apply Lb_objects.Counters.op_read in
        Program.return (if Value.to_int value = n then 1 else 0));
  }

let all =
  [ fetch_inc; fetch_and; fetch_or; fetch_complement; fetch_multiply; queue; stack; read_inc ]

let oracle_program t ~n oracle ~pid =
  t.decide ~n ~pid ~apply:(fun op -> Program.return (Lb_objects.Atomic.apply oracle op))

let program t ~construction ~n =
  let layout = Layout.create () in
  let handle = construction.Iface.create layout ~n (t.spec ~n) in
  let inits = Layout.inits layout in
  let program_of pid =
    let seq = ref 0 in
    let apply op =
      let this_seq = !seq in
      incr seq;
      handle.Iface.apply ~pid ~seq:this_seq op
    in
    t.decide ~n ~pid ~apply
  in
  (program_of, inits)
