open Lb_runtime
open Lb_universal

type entry = {
  name : string;
  make : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list;
  randomized : bool;
  correct : bool;
  worst_case : (n:int -> int) option;
}

let naive =
  {
    name = "naive-collect";
    make = (fun ~n -> Direct_algorithms.naive_collect ~n);
    randomized = false;
    correct = true;
    worst_case = Some (fun ~n -> 2 * n);
  }

let post_collect =
  {
    name = "post-collect";
    make = (fun ~n -> Direct_algorithms.post_collect ~n);
    randomized = false;
    correct = true;
    worst_case = Some (fun ~n -> n + 1);
  }

let move_collect =
  {
    name = "move-collect";
    make = (fun ~n -> Direct_algorithms.move_collect ~n);
    randomized = false;
    correct = true;
    worst_case = Some (fun ~n -> (2 * n) + 1);
  }

let tree_collect =
  {
    name = "tree-collect";
    make = (fun ~n -> Direct_algorithms.tree_collect ~n);
    randomized = false;
    correct = true;
    worst_case = Some (fun ~n -> (8 * Adt_tree.levels n) + 2);
  }

let two_counter =
  {
    name = "two-counter";
    make = (fun ~n -> Randomized.two_counter ~n);
    randomized = true;
    correct = true;
    worst_case = Some (fun ~n -> (2 * n) + 2);
  }

let backoff_collect =
  {
    name = "backoff-collect";
    make = (fun ~n -> Randomized.backoff_collect ~n);
    randomized = true;
    correct = true;
    worst_case = Some (fun ~n -> (2 * n) + 3);
  }

let reduction_entry ~construction (reduction : Reductions.t) =
  {
    name = Printf.sprintf "%s via %s" reduction.Reductions.name construction.Iface.name;
    make = (fun ~n -> Reductions.program reduction ~construction ~n);
    randomized = false;
    correct = true;
    worst_case =
      Some (fun ~n -> reduction.Reductions.uses * construction.Iface.worst_case ~n);
  }

let reduction_entries ~construction =
  List.map (reduction_entry ~construction) Reductions.all

let log_wakeup = reduction_entry ~construction:Adt_tree.construction Reductions.fetch_inc

let correct_algorithms () =
  [ naive; post_collect; move_collect; tree_collect; two_counter; backoff_collect ]
  @ reduction_entries ~construction:Adt_tree.construction
  @ reduction_entries ~construction:Herlihy.construction

let cheaters ~n_hint =
  let below_log = max 1 (Lb_adversary.Lower_bound.ceil_log4 n_hint - 1) in
  [
    {
      name = "cheater-blind";
      make = (fun ~n -> Cheaters.blind ~n);
      randomized = false;
      correct = false;
      worst_case = Some (fun ~n:_ -> 1);
    };
    {
      name = Printf.sprintf "cheater-fixed-%d" below_log;
      make = (fun ~n -> Cheaters.fixed_ops ~k:below_log ~n);
      randomized = false;
      correct = false;
      worst_case = Some (fun ~n:_ -> below_log);
    };
    {
      name = "cheater-lucky";
      make = (fun ~n -> Cheaters.lucky ~threshold:4 ~n);
      randomized = true;
      correct = false;
      worst_case = None;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) (correct_algorithms ())
