open Lb_memory
open Lb_runtime
open Program.Syntax

let two_counter ~n =
  let reg_a = 0 and reg_b = 1 in
  let program_of _pid =
    let* choice = Program.toss_bounded 2 in
    let chosen = if choice = 0 then reg_a else reg_b in
    let* () =
      Program.retry_until ~max_attempts:n (fun () ->
          let* v = Program.ll chosen in
          let* ok = Program.sc_flag chosen (Value.Int (Value.to_int v + 1)) in
          Program.return (if ok then Some () else None))
    in
    let* a = Program.read reg_a in
    let* b = Program.read reg_b in
    Program.return (if Value.to_int a + Value.to_int b = n then 1 else 0)
  in
  (program_of, [ (reg_a, Value.Int 0); (reg_b, Value.Int 0) ])

let backoff_collect ~n =
  let scratch = 1 in
  let collect, inits = Direct_algorithms.naive_collect ~n in
  let program_of pid =
    let* delay = Program.toss_bounded 4 in
    let rec spin k =
      if k = 0 then collect pid
      else
        let* _ = Program.ll scratch in
        spin (k - 1)
    in
    spin delay
  in
  (program_of, (scratch, Value.Unit) :: inits)
