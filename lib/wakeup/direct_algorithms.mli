(** Wakeup algorithms written directly against LL/SC shared memory (no
    object layer).

    [naive_collect] is the folklore O(n) solution: a single register holds
    the set of processes known to be up; each process LL/SCs itself into the
    set until its SC succeeds, and returns 1 iff the set it successfully
    installed is full.  Worst case ≤ 2n shared operations (every failed SC
    is another process's success, and each process succeeds once).

    [tournament construction via a universal fetch&inc] lives in
    {!Corpus}; the O(log n)-worst-case wakeup upper bound is obtained there
    by compiling {!Reductions.fetch_inc} through {!Lb_universal.Adt_tree}. *)

open Lb_runtime

val naive_collect : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Per-process programs and the register initialisation ([R0] starts as the
    empty id set). *)

val post_collect : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Single-writer solution exercising the {e swap} phase of the adversary:
    process [p] swaps its id into its own register [R_p], then validates all
    [n] registers and returns 1 iff it saw every process posted.  Correct
    because posts are first operations and never retracted: the globally
    last process to start reading sees everyone.  Worst case [n + 1]
    operations. *)

val tree_collect : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** The semantics-exploiting O(log n) wakeup with {e small} registers: a
    combining tree whose node registers hold [n]-bit arrival masks (bit [i]
    set iff [p_i]'s leaf update reached the node).  A process publishes its
    bit at its leaf, climbs the tree with two LL/read/read/SC merge attempts
    per node (union of masks is idempotent and monotone, so the same
    two-attempt helping argument as in the oblivious tree applies), then
    reads the root and returns 1 iff the mask is full.

    Worst case [8⌈log₂ (max n 2)⌉ + 2] shared operations with registers of
    exactly [n] bits — compare {!Lb_universal.Adt_tree}, which achieves the
    same time {e obliviously} but needs unbounded registers (experiment
    E13).  The floor of Theorem 6.1 applies to both. *)

val move_collect : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
(** Variant exercising the {e move} phase: after posting, process [p]
    gathers each [R_q] by [move(R_q, scratch_p)] followed by a validate of
    its private scratch register — information flows through moves, which is
    exactly the case the secretive-schedule machinery (Section 4) and the
    move UP-rules (Section 5.3) exist for.  Worst case [2n + 1]
    operations. *)
