(** Randomized wakeup algorithms — the lower bound's item (3): it holds even
    under randomization, with the worst-case {e expected} complexity bounded
    below (Lemma 3.1, experiment E8).

    [two_counter]: each process tosses a coin to pick one of two counter
    registers, LL/SC-increments the chosen one (retrying; at most [n]
    attempts, as in the naive collect), then reads both counters and returns
    1 iff their sum is [n].  Correct for every coin outcome: whoever performs
    the globally last increment reads sum [n] afterwards (counters only
    grow, and each process increments exactly once), and a sum of [n] can
    only be observed after all [n] processes have stepped.

    [backoff_collect]: the naive collect preceded by a coin-tossed number
    (0-3) of dummy LL operations on a scratch register — semantically inert
    randomization that exercises toss-assignment alignment between the
    (All, A)- and (S, A)-runs. *)

open Lb_runtime

val two_counter : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
val backoff_collect : n:int -> (int -> int Program.t) * (int * Lb_memory.Value.t) list
